// External-memory graph traversal — the buffered repository tree's original
// application (Buchsbaum et al. [12], the structure whose bounds the COLA
// matches cache-obliviously).
//
//   build/examples/graph_traversal [vertices]
//
// Breadth-first search over a synthetic sparse graph stored as an edge
// dictionary: edges keyed by (source << 32 | dest). The frontier expansion
// does one range query per vertex (its adjacency list) and marks visits
// with inserts. We run the identical traversal over the BRT, the COLA, and
// the B-tree and compare DAM transfers — insert-heavy graph construction is
// where the write-optimized structures win.
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <vector>

#include "brt/brt.hpp"
#include "btree/btree.hpp"
#include "cola/cola.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "dam/dam_mem_model.hpp"

using namespace costream;

namespace {

constexpr std::uint64_t kEdgesPerVertex = 8;

std::uint64_t edge_key(std::uint64_t src, std::uint64_t dst) {
  return (src << 32) | dst;
}

// Build + BFS, generic over the dictionary type.
template <class D>
void run(const char* name, D& dict, dam::dam_mem_model& mm, std::uint64_t n) {
  Timer timer;
  // 1. Construction from an edge STREAM: edges arrive in arbitrary order
  //    (crawler output, event logs), i.e. random (src, dst) pairs — the
  //    insert pattern that motivates buffered structures. A backbone
  //    v -> v+1 is woven in so the graph is connected.
  Xoshiro256 rng(7);
  const std::uint64_t total_edges = n * kEdgesPerVertex;
  for (std::uint64_t e = 0; e < total_edges; ++e) {
    if (e % kEdgesPerVertex == 0) {
      const std::uint64_t v = e / kEdgesPerVertex;
      dict.insert(edge_key(v, (v + 1) % n), 1);
    } else {
      dict.insert(edge_key(rng.below(n), rng.below(n)), 1);
    }
  }
  const double build_s = timer.seconds();
  const std::uint64_t build_transfers = mm.stats().transfers;

  // 2. BFS from vertex 0 using range queries over adjacency lists.
  timer.reset();
  std::vector<std::uint8_t> visited(n, 0);
  std::deque<std::uint64_t> frontier{0};
  visited[0] = 1;
  std::uint64_t reached = 1;
  while (!frontier.empty()) {
    const std::uint64_t v = frontier.front();
    frontier.pop_front();
    dict.range_for_each(edge_key(v, 0), edge_key(v, 0xffffffffULL),
                        [&](Key k, Value) {
                          const std::uint64_t dst = k & 0xffffffffULL;
                          if (!visited[dst]) {
                            visited[dst] = 1;
                            ++reached;
                            frontier.push_back(dst);
                          }
                        });
  }
  const double bfs_s = timer.seconds();

  std::printf("%-8s build %.2fs (%.4f transfers/edge) | BFS %.2fs reached"
              " %llu/%llu | total modeled disk %.1fs\n",
              name, build_s,
              static_cast<double>(build_transfers) /
                  static_cast<double>(n * kEdgesPerVertex),
              bfs_s, static_cast<unsigned long long>(reached),
              static_cast<unsigned long long>(n), mm.modeled_seconds());
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;
  const std::uint64_t mem = 1 << 21;  // 2 MiB "RAM": the edge set spills
  std::printf("External-memory BFS: %llu vertices, %llu edges each\n\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(kEdgesPerVertex));

  {
    brt::Brt<Key, Value, dam::dam_mem_model> d(4096, 4, dam::dam_mem_model(4096, mem));
    run("BRT", d, d.mm(), n);
  }
  {
    cola::Gcola<Key, Value, dam::dam_mem_model> d(cola::ColaConfig{4, 0.1},
                                                  dam::dam_mem_model(4096, mem));
    run("4-COLA", d, d.mm(), n);
  }
  {
    btree::BTree<Key, Value, dam::dam_mem_model> d(4096, dam::dam_mem_model(4096, mem));
    run("B-tree", d, d.mm(), n);
  }

  std::printf("\nexpected shape: BRT and COLA build the edge set with a"
              " fraction of the B-tree's transfers (buffered/merged writes);"
              " the COLA additionally keeps adjacency lists contiguous, so its"
              " BFS range scans are competitive.\n");
  return 0;
}
