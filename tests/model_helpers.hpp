// Shared helpers for the model-based (randomized differential) tests: every
// dictionary is driven through the same operation traces and compared
// against a std::map reference with the library's semantics (upsert +
// blind delete).
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/entry.hpp"
#include "common/workload.hpp"

namespace costream::testing {

/// Reference dictionary with the library's semantics.
class RefDict {
 public:
  void insert(Key k, Value v) { m_[k] = v; }
  void erase(Key k) { m_.erase(k); }
  std::optional<Value> find(Key k) const {
    const auto it = m_.find(k);
    if (it == m_.end()) return std::nullopt;
    return it->second;
  }
  std::vector<Entry<>> range(Key lo, Key hi) const {
    std::vector<Entry<>> out;
    for (auto it = m_.lower_bound(lo); it != m_.end() && it->first <= hi; ++it) {
      out.push_back(Entry<>{it->first, it->second});
    }
    return out;
  }
  const std::map<Key, Value>& map() const { return m_; }

 private:
  std::map<Key, Value> m_;
};

/// Collect a structure's range output into a vector.
template <class D>
std::vector<Entry<>> collect_range(const D& d, Key lo, Key hi) {
  std::vector<Entry<>> out;
  d.range_for_each(lo, hi, [&](Key k, Value v) { out.push_back(Entry<>{k, v}); });
  return out;
}

/// Drive `dict` and the reference through the same trace; verify finds on
/// every op, ranges periodically, and call `checker` (e.g. invariants) every
/// `check_every` operations.
template <class D, class Checker>
void run_model_trace(D& dict, const std::vector<TraceOp>& ops, Checker&& checker,
                     std::size_t check_every = 64, bool use_ranges = true) {
  RefDict ref;
  std::size_t i = 0;
  for (const TraceOp& op : ops) {
    switch (op.kind) {
      case TraceOpKind::kInsert:
        dict.insert(op.key, op.value);
        ref.insert(op.key, op.value);
        break;
      case TraceOpKind::kErase:
        dict.erase(op.key);
        ref.erase(op.key);
        break;
      case TraceOpKind::kFind: {
        const auto got = dict.find(op.key);
        const auto want = ref.find(op.key);
        ASSERT_EQ(got.has_value(), want.has_value()) << "op " << i << " key " << op.key;
        if (want) {
          ASSERT_EQ(*got, *want) << "op " << i << " key " << op.key;
        }
        break;
      }
      case TraceOpKind::kRange: {
        if (!use_ranges) break;
        const auto got = collect_range(dict, op.key, op.hi);
        const auto want = ref.range(op.key, op.hi);
        ASSERT_EQ(got.size(), want.size()) << "op " << i;
        for (std::size_t j = 0; j < got.size(); ++j) {
          ASSERT_EQ(got[j].key, want[j].key) << "op " << i << " pos " << j;
          ASSERT_EQ(got[j].value, want[j].value) << "op " << i << " pos " << j;
        }
        break;
      }
    }
    if (++i % check_every == 0) {
      ASSERT_NO_THROW(checker()) << "op " << i;
    }
  }
  // Final full verification against the reference.
  ASSERT_NO_THROW(checker());
  for (const auto& [k, v] : ref.map()) {
    const auto got = dict.find(k);
    ASSERT_TRUE(got.has_value()) << "final key " << k;
    ASSERT_EQ(*got, v) << "final key " << k;
  }
}

}  // namespace costream::testing
