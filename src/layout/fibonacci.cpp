#include "layout/fibonacci.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

namespace costream::layout {

namespace {

constexpr std::array<std::uint64_t, kMaxFibIndex + 1> make_fib_table() {
  std::array<std::uint64_t, kMaxFibIndex + 1> t{};
  t[0] = 0;
  t[1] = 1;
  for (int i = 2; i <= kMaxFibIndex; ++i) t[i] = t[i - 1] + t[i - 2];
  return t;
}

constexpr auto kFib = make_fib_table();

}  // namespace

std::uint64_t fib(int k) noexcept {
  assert(k >= 0 && k <= kMaxFibIndex);
  return kFib[static_cast<std::size_t>(k)];
}

bool is_fib(std::uint64_t n) noexcept {
  if (n == 0) return true;
  const auto it = std::lower_bound(kFib.begin() + 2, kFib.end(), n);
  return it != kFib.end() && *it == n;
}

std::uint64_t largest_fib_below(std::uint64_t h) noexcept {
  assert(h >= 2);
  // First Fibonacci >= h, then step back past duplicates of value 1.
  const auto it = std::lower_bound(kFib.begin() + 2, kFib.end(), h);
  assert(it != kFib.begin() + 2);
  return *(it - 1);
}

int fib_index_at_most(std::uint64_t n) noexcept {
  assert(n >= 1);
  const auto it = std::upper_bound(kFib.begin() + 2, kFib.end(), n);
  return static_cast<int>((it - kFib.begin()) - 1);
}

std::uint64_t fibonacci_factor(std::uint64_t h) noexcept {
  assert(h >= 1);
  // Peel off the largest Fibonacci term until a Fibonacci number remains;
  // this computes the smallest term of the Zeckendorf decomposition.
  while (!is_fib(h)) h -= largest_fib_below(h);
  return h;
}

int buffer_height_index(int j) noexcept {
  assert(j >= 1);
  // H(j) = j - ceil(2 log_phi j); phi = (1+sqrt5)/2.
  static const double kLogPhi = std::log((1.0 + std::sqrt(5.0)) / 2.0);
  const double two_log = 2.0 * std::log(static_cast<double>(j)) / kLogPhi;
  return j - static_cast<int>(std::ceil(two_log - 1e-9));
}

namespace {

template <class IndexFn>
std::vector<std::uint64_t> buffer_heights_impl(std::uint64_t h, int j0,
                                               std::uint64_t min_height,
                                               IndexFn index_fn) {
  std::vector<std::uint64_t> heights;
  const std::uint64_t x = fibonacci_factor(h);
  const int k = fib_index_at_most(x);
  for (int j = j0; j <= k; ++j) {
    const int hj = index_fn(j);
    if (hj < 1 || hj > kMaxFibIndex) continue;
    const std::uint64_t bh = fib(hj);
    if (bh < min_height) continue;
    heights.push_back(bh);
  }
  std::sort(heights.begin(), heights.end());
  heights.erase(std::unique(heights.begin(), heights.end()), heights.end());
  return heights;
}

}  // namespace

std::vector<std::uint64_t> paper_buffer_heights(std::uint64_t h, int j0,
                                                std::uint64_t min_height) {
  return buffer_heights_impl(h, j0, min_height,
                             [](int j) { return buffer_height_index(j); });
}

std::vector<std::uint64_t> practical_buffer_heights(std::uint64_t h, int delta,
                                                    std::uint64_t min_height) {
  return buffer_heights_impl(h, /*j0=*/delta + 1, min_height,
                             [delta](int j) { return j - delta; });
}

}  // namespace costream::layout
