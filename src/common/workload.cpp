#include "common/workload.hpp"

#include <stdexcept>

namespace costream {

const char* to_string(KeyOrder order) noexcept {
  switch (order) {
    case KeyOrder::kRandom: return "random";
    case KeyOrder::kAscending: return "ascending";
    case KeyOrder::kDescending: return "descending";
    case KeyOrder::kClustered: return "clustered";
    case KeyOrder::kZipfHot: return "zipf-hot";
  }
  return "unknown";
}

KeyOrder key_order_from_string(const std::string& name) {
  if (name == "random") return KeyOrder::kRandom;
  if (name == "ascending") return KeyOrder::kAscending;
  if (name == "descending") return KeyOrder::kDescending;
  if (name == "clustered") return KeyOrder::kClustered;
  if (name == "zipf-hot") return KeyOrder::kZipfHot;
  throw std::invalid_argument("unknown key order: " + name);
}

KeyStream::KeyStream(KeyOrder order, std::uint64_t n, std::uint64_t seed)
    : order_(order), n_(n), seed_(seed) {}

std::uint64_t KeyStream::key_at(std::uint64_t i) const noexcept {
  switch (order_) {
    case KeyOrder::kRandom:
      // Stateless: hash (seed, i). Matches the paper's "N random elements"
      // (uniform 64-bit keys; collisions possible and handled as upserts).
      return mix64(seed_ ^ mix64(i + 1));
    case KeyOrder::kAscending:
      return i;
    case KeyOrder::kDescending:
      return n_ - 1 - i;
    case KeyOrder::kClustered: {
      // Runs of 256 sequential keys from a hashed base: sequential locality
      // with random placement, between the sorted and random extremes.
      const std::uint64_t run = i / 256, off = i % 256;
      return (mix64(seed_ ^ run) & ~0xffULL) | off;
    }
    case KeyOrder::kZipfHot: {
      // 90% of keys land in a 2^16-element hot range; the rest are uniform.
      const std::uint64_t h = mix64(seed_ ^ mix64(i + 0x5eedULL));
      if (h % 10 != 0) return (h >> 32) & 0xffffULL;
      return h | (1ULL << 63);
    }
  }
  return i;
}

std::vector<std::uint64_t> KeyStream::take(std::uint64_t count) const {
  std::vector<std::uint64_t> keys;
  keys.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) keys.push_back(key_at(i));
  return keys;
}

std::vector<TraceOp> generate_ops(std::uint64_t count, std::uint64_t key_universe,
                             const OpMix& mix, std::uint64_t seed) {
  if (key_universe == 0) throw std::invalid_argument("empty key universe");
  std::vector<TraceOp> ops;
  ops.reserve(count);
  Xoshiro256 rng(seed);
  const double total = mix.insert + mix.erase + mix.find + mix.range;
  for (std::uint64_t i = 0; i < count; ++i) {
    const double pick = rng.unit() * total;
    TraceOp op{};
    op.key = rng.below(key_universe);
    op.value = rng();
    if (pick < mix.insert) {
      op.kind = TraceOpKind::kInsert;
    } else if (pick < mix.insert + mix.erase) {
      op.kind = TraceOpKind::kErase;
    } else if (pick < mix.insert + mix.erase + mix.find) {
      op.kind = TraceOpKind::kFind;
    } else {
      op.kind = TraceOpKind::kRange;
      op.hi = op.key + rng.below(key_universe / 16 + 1);
    }
    ops.push_back(op);
  }
  return ops;
}

}  // namespace costream
