// Shuttle tree — the paper's main result (Section 2).
//
// A strongly weight-balanced search tree (SWBST: for fanout parameter c and
// every node v, w(v) = Theta(c^h(v)), all leaves at the same depth) in which
// every internal node carries, per child pointer, a linked list of buffers
// of doubly-exponentially increasing sizes. An inserted element "shuttles"
// down the root-to-leaf path, pausing in buffers; a buffer that overflows
// pours its entire contents into the next buffer in the list, and the
// largest buffer pours into the child node. Elements therefore cross block
// boundaries only in bulk, giving inserts
// O((log_{B+1}N)/B^{Theta(1/(loglogB)^2)} + (log^2 N)/B) amortized transfers
// while searches stay O(log_{B+1} N).
//
// Buffer sizes follow the paper's Fibonacci-factor schedule: a node whose
// child height h has Fibonacci factor x(h) = F_k owns buffers of heights
// F_H(j), j <= k (layout/fibonacci.hpp). Two documented substitutions at
// laptop scale (DESIGN.md section 1.3):
//   * buffers are contiguous sorted arrays with capacity c^height instead of
//     recursive shuttle trees (same capacity schedule, same flush pattern);
//   * the buffer-height index uses the practical offset H(j) = j - delta
//     (delta = 2) because the paper's H(j) = j - ceil(2 log_phi j) only goes
//     positive for trees of height >= F_12 = 144;
//   * the vEB layout (Figure 1) is recomputed by relayout() every time the
//     element count doubles, instead of being maintained inside a PMA with
//     flexible rebalance windows. The PMA itself is built and validated
//     separately (pma/pma.hpp). Layout addresses drive the DAM accounting.
//
// With use_buffers = false this degenerates to the plain SWBST (the
// no-buffer ablation arm and the substrate the paper builds on).
//
// Extension beyond the paper: erase() is supported via tombstones that
// annihilate at the leaves; deletions do not rebalance (the paper analyzes
// inserts only), so the weight lower bound is maintained only under
// insert-dominated workloads.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/entry.hpp"
#include "common/loser_tree.hpp"
#include "common/snapshot.hpp"
#include "common/span.hpp"
#include "dam/mem_model.hpp"
#include "layout/fibonacci.hpp"

namespace costream::shuttle {

struct ShuttleConfig {
  unsigned fanout = 4;     // the SWBST balance parameter c
  int buffer_delta = 2;    // practical buffer-height-index offset
  bool use_buffers = true; // false = plain SWBST
  std::uint64_t max_buffer_items = 1ULL << 22;  // safety clamp on c^F
  // Ingest growth factor g (default 2 = the paper's geometry): edge-buffer
  // capacities scale by g/2, so a g-tuned tree absorbs g/2 times more
  // entries per buffer tier before pouring — the shuttle-tree analogue of
  // the COLA's growth-factor lever. Search cost per buffer stays one binary
  // search; pours get bulkier and rarer.
  unsigned growth = 2;
};

struct ShuttleStats {
  std::uint64_t buffer_flushes = 0;
  std::uint64_t buffer_items_moved = 0;
  std::uint64_t leaf_batches = 0;
  std::uint64_t node_splits = 0;
  std::uint64_t root_grows = 0;
  std::uint64_t relayouts = 0;
};

template <class K = Key, class V = Value, class MM = dam::null_mem_model>
class ShuttleTree {
 public:
  static constexpr std::uint32_t kNull = 0xffffffffu;

  explicit ShuttleTree(ShuttleConfig cfg = ShuttleConfig{}, MM mm = MM{})
      : cfg_(cfg), mm_(std::move(mm)) {
    if (cfg_.fanout < 2) throw std::invalid_argument("shuttle: fanout must be >= 2");
    if (cfg_.growth < 2) throw std::invalid_argument("shuttle: growth must be >= 2");
    root_ = new_node(/*height=*/1);
  }

  // -- observers --------------------------------------------------------------

  const ShuttleConfig& config() const noexcept { return cfg_; }
  const ShuttleStats& stats() const noexcept { return stats_; }
  MM& mm() noexcept { return mm_; }
  int height() const noexcept { return nodes_[root_].height; }

  /// Leaf-resident entries (items still in buffers are counted separately).
  std::uint64_t leaf_entries() const noexcept { return nodes_[root_].weight; }

  std::uint64_t buffered_items() const noexcept { return buffered_items_; }

  std::optional<V> find(const K& key) const {
    std::uint32_t id = root_;
    while (true) {
      const Node& n = nodes_[id];
      touch_node(id);
      if (n.height == 1) {
        const auto it = std::lower_bound(n.entries.begin(), n.entries.end(), key,
                                         EntryKeyLess{});
        if (it != n.entries.end() && it->key == key) return it->value;
        return std::nullopt;
      }
      const std::size_t e = edge_index(n, key);
      // Buffers from smallest (newest) to largest (oldest).
      for (const Buffer& b : n.ebufs[e]) {
        if (b.items.empty()) continue;
        touch_buffer(b, b.items.size());
        const auto it = std::lower_bound(
            b.items.begin(), b.items.end(), key,
            [](const Item& a, const K& k) { return a.key < k; });
        if (it != b.items.end() && it->key == key) {
          if (it->tombstone) return std::nullopt;
          return it->value;
        }
      }
      id = n.kids[e];
    }
  }

  /// Visit live entries in [lo, hi] ascending, newest copy per key — one
  /// code path with the cursor API (bounded seek on the dictionary-owned
  /// scratch cursor, allocation-free in steady state; the bound prunes
  /// whole subtrees at seek, like the old recursive collect did).
  template <class Fn>
  void range_for_each(const K& lo, const K& hi, Fn&& fn) const {
    if (hi < lo) return;
    Cursor c(this, &scan_state_);
    for (c.seek(lo, hi); c.valid(); c.next()) {
      const Entry<K, V>& e = c.entry();
      fn(e.key, e.value);
    }
  }

  /// Visit every live entry ascending. A dedicated unbounded scan rather
  /// than a range query with sentinel bounds: std::numeric_limits<K>::min()
  /// is the smallest POSITIVE value for floating-point K and a
  /// default-constructed object for composite keys, either of which would
  /// silently drop entries.
  template <class Fn>
  void for_each(Fn&& fn) const {
    Cursor c(this, &scan_state_);
    for (c.seek_first(); c.valid(); c.next()) {
      const Entry<K, V>& e = c.entry();
      fn(e.key, e.value);
    }
  }

  // -- mutators ---------------------------------------------------------------

  void insert(const K& key, const V& value) { put(Item{key, value, false}); }
  void erase(const K& key) { put(Item{key, V{}, true}); }

  /// Bulk upsert (batch contract in api/dictionary.hpp). The internals have
  /// always been batch-shaped — buffers pour whole contents downward — so
  /// this simply normalizes the run once and shuttles it down the edge
  /// buffers in a single root-to-leaf delivery instead of n of them.
  void insert_batch(Span<Entry<K, V>> run) {
    if (run.empty()) return;
    std::vector<Item>& batch = batch_scratch_;
    batch.clear();
    batch.reserve(run.size());
    for (const Entry<K, V>& e : run) {
      batch.push_back(Item{e.key, e.value, false});
    }
    sort_dedup_newest_wins(batch, put_scratch_);  // put() is idle here
    ingest(batch);
  }

  /// Bulk blind delete (batch contract in api/dictionary.hpp): the
  /// tombstones shuttle down the edge buffers exactly like insertions — one
  /// normalized run, one root-to-leaf delivery — and annihilate at the
  /// leaves. Duplicate keys in the run collapse to a single tombstone.
  void erase_batch(Span<K> keys) {
    if (keys.empty()) return;
    std::vector<Item>& batch = batch_scratch_;
    batch.clear();
    batch.reserve(keys.size());
    for (const K& k : keys) batch.push_back(Item{k, V{}, true});
    sort_dedup_newest_wins(batch, put_scratch_);
    ingest(batch);
  }

  /// Mixed put/erase batch: the LAST op on a key within the batch wins
  /// (put-vs-erase included); the normalized run — tombstones riding along —
  /// shuttles down in a single delivery with fused overflow pours.
  void apply_batch(Span<Op<K, V>> ops) {
    if (ops.empty()) return;
    std::vector<Item>& batch = batch_scratch_;
    batch.clear();
    batch.reserve(ops.size());
    for (const Op<K, V>& o : ops) {
      batch.push_back(Item{o.key, o.value, o.erase});
    }
    sort_dedup_newest_wins(batch, put_scratch_);
    ingest(batch);
  }

  // Deprecated pointer-form batch shims (one release; migration note in
  // api/dictionary.hpp — CI's deprecated-api lint rejects in-repo callers).
  void insert_batch(const Entry<K, V>* data, std::size_t n) {
    insert_batch(Span<Entry<K, V>>(data, n));
  }
  void erase_batch(const K* keys, std::size_t n) {
    erase_batch(Span<K>(keys, n));
  }
  void apply_batch(const Op<K, V>* ops, std::size_t n) {
    apply_batch(Span<Op<K, V>>(ops, n));
  }

  /// Mutation epoch: bumped by every mutator (see snapshot()).
  std::uint64_t mutation_epoch() const noexcept { return mutation_epoch_; }

  /// Point-in-time snapshot (contract in api/dictionary.hpp). In-place
  /// structure: the live contents materialize into one immutable segment,
  /// cached per mutation epoch; the handle stays valid across mutations.
  snap::Snapshot<K, V> snapshot() const {
    if (snap_cache_ && snap_epoch_ == mutation_epoch_) return snap_cache_;
    snap_cache_ = snap::materialize<K, V>(*this, mutation_epoch_);
    snap_epoch_ = mutation_epoch_;
    return snap_cache_;
  }

  /// Recompute the Figure-1 recursive layout and reassign every node's and
  /// buffer's logical address (normally triggered automatically when the
  /// element count doubles; public for benches/tests).
  void relayout() {
    ++stats_.relayouts;
    layout_cursor_ = 0;
    for (Node& n : nodes_) {
      n.base = kNoAddr;
      for (auto& list : n.ebufs) {
        for (Buffer& b : list) b.base = kNoAddr;
      }
    }
    const int h = nodes_[root_].height;
    // Round the height up to a Fibonacci number for the top-level split.
    std::uint64_t f0 = 1;
    for (int k = 2; k <= layout::kMaxFibIndex; ++k) {
      if (layout::fib(k) >= static_cast<std::uint64_t>(h)) {
        f0 = layout::fib(k);
        break;
      }
    }
    std::vector<std::uint32_t> leaves, frontier;
    place(root_, f0, leaves, frontier);
    // Safety sweep: anything the recursion missed (height mismatches from
    // rounding) is appended at the end, preserving completeness.
    for (std::uint32_t id = 0; id < nodes_.size(); ++id) {
      if (!alive_[id]) continue;
      if (nodes_[id].base == kNoAddr) assign_node(id);
      for (auto& list : nodes_[id].ebufs) {
        for (Buffer& b : list) {
          if (b.base == kNoAddr) assign_buffer(b);
        }
      }
    }
    fresh_base_ = layout_cursor_;
    last_layout_weight_ = std::max<std::uint64_t>(1, nodes_[root_].weight);
  }

  // -- verification -----------------------------------------------------------

  void check_invariants() const {
    std::uint64_t counted_buffered = 0;
    check_rec(root_, nodes_[root_].height, nullptr, nullptr, counted_buffered);
    if (counted_buffered != buffered_items_) {
      throw std::logic_error("shuttle: buffered item drift");
    }
  }

 private:
  static constexpr std::uint64_t kNoAddr = ~0ULL;

  struct Item {
    K key;
    V value;
    bool tombstone;
  };

  struct Buffer {
    std::uint64_t height = 0;       // shuttle-tree height this buffer stands for
    std::uint64_t capacity = 0;     // c^height (clamped)
    std::vector<Item> items;        // sorted, unique keys
    std::uint64_t base = kNoAddr;   // layout address
  };

  struct Node {
    int height = 1;
    std::uint64_t weight = 0;  // leaf-resident entries in subtree
    std::uint32_t parent = kNull;
    K min_key{};
    std::vector<std::uint32_t> kids;
    std::vector<K> routers;                 // routers.size() == kids.size()-1
    std::vector<std::vector<Buffer>> ebufs; // one list per edge, heights ascending
    std::vector<Entry<K, V>> entries;       // leaves only
    std::uint64_t base = kNoAddr;
  };

  // -- geometry ---------------------------------------------------------------

  std::uint64_t cpow(std::uint64_t e) const noexcept {
    std::uint64_t r = 1;
    for (std::uint64_t i = 0; i < e; ++i) {
      if (r > cfg_.max_buffer_items) return cfg_.max_buffer_items;
      r *= cfg_.fanout;
    }
    return std::min<std::uint64_t>(r, cfg_.max_buffer_items);
  }

  /// Edge-buffer capacity for a buffer standing for height `e`: the paper's
  /// c^e schedule scaled by the ingest growth factor (g/2; identity at the
  /// default g = 2). Multiply before dividing so odd factors scale too
  /// (g = 3 -> 1.5x, not a silent no-op); base <= 2^22 and g <= 2^32 keep
  /// the product well inside 64 bits.
  std::uint64_t buffer_cap(std::uint64_t e) const noexcept {
    const std::uint64_t base = cpow(e);
    const std::uint64_t scaled = base * static_cast<std::uint64_t>(cfg_.growth) / 2;
    return std::min<std::uint64_t>(std::max<std::uint64_t>(scaled, base),
                                   cfg_.max_buffer_items);
  }

  std::uint64_t weight_threshold(int height) const noexcept { return 2 * cpow(height); }
  std::size_t leaf_cap() const noexcept { return 2 * cfg_.fanout; }

  /// Fresh buffer list for an edge of a node at `parent_height`.
  std::vector<Buffer> make_edge_buffers(int parent_height) const {
    std::vector<Buffer> list;
    if (!cfg_.use_buffers || parent_height < 2) return list;
    for (std::uint64_t bh :
         layout::practical_buffer_heights(parent_height - 1, cfg_.buffer_delta)) {
      Buffer b;
      b.height = bh;
      b.capacity = buffer_cap(bh);
      list.push_back(std::move(b));
    }
    return list;
  }

  std::uint32_t new_node(int height) {
    const std::uint32_t id = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
    alive_.push_back(1);
    nodes_[id].height = height;
    nodes_[id].base = fresh_base_;
    fresh_base_ += 4096;  // fresh nodes park in the tail region until relayout
    return id;
  }

  std::size_t edge_index(const Node& n, const K& key) const {
    return static_cast<std::size_t>(
        std::upper_bound(n.routers.begin(), n.routers.end(), key) - n.routers.begin());
  }

  // -- DAM accounting ---------------------------------------------------------

  void touch_node(std::uint32_t id) const {
    mm_.touch(nodes_[id].base == kNoAddr ? 0 : nodes_[id].base, 256);
  }

  void touch_buffer(const Buffer& b, std::uint64_t items) const {
    mm_.touch(b.base == kNoAddr ? 0 : b.base, items * sizeof(Item));
  }

  void touch_buffer_write(const Buffer& b, std::uint64_t items) const {
    mm_.touch_write(b.base == kNoAddr ? 0 : b.base, items * sizeof(Item));
  }

  // -- insertion --------------------------------------------------------------

  void put(Item item) {
    // Reusable one-item batch: the single-op hot path allocates nothing in
    // steady state.
    std::vector<Item>& batch = put_scratch_;
    batch.clear();
    batch.push_back(std::move(item));
    ingest(batch);
  }

  /// Deliver a normalized batch tree-wide, then restore balance and layout
  /// invariants. `batch` contents are consumed; its storage is retained by
  /// the caller's scratch.
  void ingest(std::vector<Item>& batch) {
    ++mutation_epoch_;
    dirty_leaves_.clear();
    flush_depth_ = 0;
    push_batch(root_, batch.data(), batch.data() + batch.size());
    for (const std::uint32_t leaf : dirty_leaves_) fix_upward(leaf);
    // Amortized layout maintenance: rebuild when the tree doubles.
    if (nodes_[root_].weight >= 2 * last_layout_weight_ &&
        nodes_[root_].weight >= 64) {
      relayout();
    }
  }

  /// Carrier buffer for buffer-to-buffer pours. Two frames per recursion
  /// depth (a pour can read from one carrier while writing the next), reused
  /// so the cascade allocates nothing in steady state; deque-backed so
  /// references stay valid when deeper recursion grows the pool.
  std::vector<Item>& flush_frame(std::size_t slot) {
    while (slot >= flush_frames_.size()) flush_frames_.emplace_back();
    return flush_frames_[slot];
  }

  /// Deliver the sorted, unique-key run [first, last) (newest-wins already
  /// applied within it) to node `id`. Structural fixes are deferred to
  /// fix_upward.
  void push_batch(std::uint32_t id, Item* first, Item* last) {
    if (first == last) return;
    Node& n = nodes_[id];
    touch_node(id);
    if (n.height == 1) {
      apply_leaf(id, first, last);
      return;
    }
    // Partition by routers (the run is sorted, so slices are contiguous).
    Item* it = first;
    for (std::size_t e = 0; e < n.kids.size() && it != last; ++e) {
      Item* stop = last;
      if (e < n.routers.size()) {
        stop = std::lower_bound(it, last, n.routers[e],
                                [](const Item& a, const K& k) { return a.key < k; });
      }
      if (stop != it) deliver_to_edge(id, e, it, stop);
      it = stop;
    }
  }

  /// Number of keys present in both the run [first, last) and buffer `b`
  /// (read-only two-pointer scan).
  std::size_t count_dups(const Buffer& b, const Item* first, const Item* last) const {
    std::size_t dups = 0, o = 0;
    const Item* a = first;
    while (a != last && o < b.items.size()) {
      if (a->key < b.items[o].key) {
        ++a;
      } else if (b.items[o].key < a->key) {
        ++o;
      } else {
        ++dups;
        ++a;
        ++o;
      }
    }
    return dups;
  }

  /// Insert [first, last) (newer than everything in the edge's buffers)
  /// into the smallest buffer that keeps it; when a tier would overflow,
  /// merge that buffer and the incoming run straight into a carrier and keep
  /// cascading — the overflowing intermediate is never written back, so a
  /// run crossing j tiers costs one pass per tier (the same per-tier cost
  /// the single-op trickle pays) instead of three.
  void deliver_to_edge(std::uint32_t id, std::size_t e, Item* first, Item* last) {
    // Note: buffer flushes can trigger leaf applications deeper in the tree,
    // which only append to dirty_leaves_ (no structural changes here), so
    // iterating this node's edges in the caller stays valid.
    Node& n = nodes_[id];
    if (n.ebufs[e].empty()) {
      push_batch(n.kids[e], first, last);
      return;
    }
    const std::size_t tiers = n.ebufs[e].size();
    for (std::size_t level = 0; level < tiers; ++level) {
      Buffer& b = nodes_[id].ebufs[e][level];
      const std::size_t added = static_cast<std::size_t>(last - first);
      const std::size_t merged_n =
          b.items.size() + added - count_dups(b, first, last);
      if (merged_n <= b.capacity) {
        merge_into_buffer(b, first, last, merged_n);
        return;
      }
      // Overflow: pour buffer + run into a carrier and continue down.
      ++stats_.buffer_flushes;
      stats_.buffer_items_moved += b.items.size();
      buffered_items_ -= b.items.size();
      touch_buffer(b, b.items.size());
      touch_buffer_write(b, b.items.size());
      std::vector<Item>& carrier = flush_frame(2 * flush_depth_ + (level & 1));
      carrier.clear();
      carrier.reserve(merged_n);
      Item* a = first;
      std::size_t o = 0;
      while (a != last && o < b.items.size()) {
        if (a->key < b.items[o].key) {
          carrier.push_back(std::move(*a++));
        } else if (b.items[o].key < a->key) {
          carrier.push_back(std::move(b.items[o++]));
        } else {  // duplicate: the newer (incoming) copy wins
          carrier.push_back(std::move(*a++));
          ++o;
        }
      }
      while (a != last) carrier.push_back(std::move(*a++));
      while (o < b.items.size()) carrier.push_back(std::move(b.items[o++]));
      b.items.clear();  // keeps capacity for the refill
      first = carrier.data();
      last = first + carrier.size();
    }
    // Fell past the largest buffer: the run goes to the child.
    ++flush_depth_;  // deeper deliveries use their own carrier frames
    push_batch(nodes_[id].kids[e], first, last);
    --flush_depth_;
  }

  /// Merge the newer run [first, last) (sorted, unique keys) into buffer
  /// `b`, newest-wins on duplicates; `merged_n` is the precomputed merged
  /// size (old + added - dups, at most b.capacity). In-place backward merge:
  /// duplicates only shrink the contribution of the NEWER run, so merged_n
  /// is never below the old size and the writer can never overtake the
  /// unread older tail. Allocation-free once b.items reaches its high-water
  /// mark.
  void merge_into_buffer(Buffer& b, Item* first, Item* last, std::size_t merged_n) {
    if (first == last) return;
    touch_buffer(b, b.items.size());
    touch_buffer_write(b, merged_n);
    const std::size_t old_n = b.items.size();
    b.items.resize(merged_n);
    std::size_t w = merged_n, o = old_n;
    Item* a = last;
    while (a != first && o > 0) {
      if (b.items[o - 1].key < a[-1].key) {
        b.items[--w] = std::move(*--a);
      } else if (a[-1].key < b.items[o - 1].key) {
        --o;
        --w;
        if (w != o) b.items[w] = std::move(b.items[o]);
      } else {  // duplicate: the newer copy wins, the older one is dropped
        --o;
        b.items[--w] = std::move(*--a);
      }
    }
    while (a != first) b.items[--w] = std::move(*--a);
    // Any remaining older prefix is already in place (w == o here).
    buffered_items_ += merged_n - old_n;
  }

  /// Apply the sorted run [first, last) to a leaf: upserts replace or
  /// extend, tombstones annihilate. Updates weights/min keys up the path;
  /// records the leaf for the deferred split pass. The merge target is a
  /// reusable scratch (tombstones can shrink the result, which rules out the
  /// in-place backward merge the buffers use).
  void apply_leaf(std::uint32_t id, const Item* first, const Item* last) {
    ++stats_.leaf_batches;
    Node& leaf = nodes_[id];
    std::int64_t delta = 0;
    std::vector<Entry<K, V>>& merged = leaf_scratch_;
    merged.clear();
    merged.reserve(leaf.entries.size() + static_cast<std::size_t>(last - first));
    const Item* a = first;
    std::size_t o = 0;
    while (a != last && o < leaf.entries.size()) {
      if (a->key < leaf.entries[o].key) {
        if (!a->tombstone) {
          merged.push_back(Entry<K, V>{a->key, a->value});
          ++delta;
        }
        ++a;
      } else if (leaf.entries[o].key < a->key) {
        merged.push_back(std::move(leaf.entries[o++]));
      } else {
        if (a->tombstone) {
          --delta;  // annihilate
        } else {
          merged.push_back(Entry<K, V>{a->key, a->value});
        }
        ++a;
        ++o;
      }
    }
    for (; a != last; ++a) {
      if (!a->tombstone) {
        merged.push_back(Entry<K, V>{a->key, a->value});
        ++delta;
      }
    }
    for (; o < leaf.entries.size(); ++o) merged.push_back(std::move(leaf.entries[o]));
    mm_.touch_write(leaf.base == kNoAddr ? 0 : leaf.base, merged.size() * sizeof(Entry<K, V>));
    leaf.entries.assign(std::make_move_iterator(merged.begin()),
                        std::make_move_iterator(merged.end()));

    // Weight/min-key propagation.
    if (!leaf.entries.empty()) leaf.min_key = leaf.entries.front().key;
    std::uint32_t v = id;
    while (v != kNull) {
      Node& nv = nodes_[v];
      nv.weight = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(nv.weight) + delta);
      if (nv.height > 1 && !nv.kids.empty()) {
        nv.min_key = nodes_[nv.kids.front()].min_key;
      }
      v = nv.parent;
    }
    dirty_leaves_.push_back(id);
  }

  // -- balancing --------------------------------------------------------------

  bool over_threshold(std::uint32_t id) const {
    const Node& n = nodes_[id];
    if (n.height == 1) return n.entries.size() > leaf_cap();
    return n.weight > weight_threshold(n.height);
  }

  void fix_upward(std::uint32_t leaf) {
    std::uint32_t v = leaf;
    while (v != kNull) {
      const std::uint32_t parent = nodes_[v].parent;
      if (over_threshold(v)) {
        if (parent == kNull) {
          grow_root();
          // grow_root splits the old root under the new one; continue from
          // the new root.
          v = root_;
          continue;
        }
        const std::size_t ci = child_index_of(parent, v);
        split_until_ok(parent, ci);
      }
      v = parent;
    }
  }

  std::size_t child_index_of(std::uint32_t parent, std::uint32_t kid) const {
    const Node& p = nodes_[parent];
    for (std::size_t i = 0; i < p.kids.size(); ++i) {
      if (p.kids[i] == kid) return i;
    }
    throw std::logic_error("shuttle: broken parent pointer");
  }

  /// Split the child at `ci` (and the pieces it produces) until every piece
  /// satisfies its threshold.
  void split_until_ok(std::uint32_t parent, std::size_t ci) {
    std::size_t end = ci + 1;
    std::size_t i = ci;
    while (i < end) {
      if (over_threshold(nodes_[parent].kids[i]) &&
          splittable(nodes_[parent].kids[i])) {
        split_child(parent, i);
        ++end;
      } else {
        ++i;
      }
    }
  }

  bool splittable(std::uint32_t id) const {
    const Node& n = nodes_[id];
    return n.height == 1 ? n.entries.size() >= 2 : n.kids.size() >= 2;
  }

  void grow_root() {
    ++stats_.root_grows;
    const std::uint32_t old_root = root_;
    const std::uint32_t nr = new_node(nodes_[old_root].height + 1);
    Node& r = nodes_[nr];
    r.kids.push_back(old_root);
    r.ebufs.push_back(make_edge_buffers(r.height));
    r.weight = nodes_[old_root].weight;
    r.min_key = nodes_[old_root].min_key;
    nodes_[old_root].parent = nr;
    root_ = nr;
    split_until_ok(root_, 0);
  }

  /// Split child `ci` of `parent` into two siblings of the same height; edge
  /// buffers partition by the new router.
  void split_child(std::uint32_t parent, std::size_t ci) {
    ++stats_.node_splits;
    const std::uint32_t vid = nodes_[parent].kids[ci];
    const std::uint32_t wid = new_node(nodes_[vid].height);
    Node& v = nodes_[vid];
    Node& w = nodes_[wid];
    w.parent = parent;
    K router{};

    if (v.height == 1) {
      const std::size_t mid = v.entries.size() / 2;
      w.entries.assign(v.entries.begin() + static_cast<std::ptrdiff_t>(mid),
                       v.entries.end());
      v.entries.resize(mid);
      v.weight = v.entries.size();
      w.weight = w.entries.size();
      v.min_key = v.entries.front().key;
      w.min_key = w.entries.front().key;
      router = w.min_key;
    } else {
      // Split children at the weight midpoint.
      const std::uint64_t total = v.weight;
      std::uint64_t acc = 0;
      std::size_t m = 1;
      for (; m < v.kids.size() - 1; ++m) {
        acc += nodes_[v.kids[m - 1]].weight;
        if (acc * 2 >= total) break;
      }
      w.kids.assign(v.kids.begin() + static_cast<std::ptrdiff_t>(m), v.kids.end());
      w.routers.assign(v.routers.begin() + static_cast<std::ptrdiff_t>(m),
                       v.routers.end());
      w.ebufs.assign(std::make_move_iterator(v.ebufs.begin() + static_cast<std::ptrdiff_t>(m)),
                     std::make_move_iterator(v.ebufs.end()));
      router = v.routers[m - 1];
      v.kids.resize(m);
      v.routers.resize(m - 1);
      v.ebufs.resize(m);
      std::uint64_t vw = 0, ww = 0;
      for (std::uint32_t k : v.kids) vw += nodes_[k].weight;
      for (std::uint32_t k : w.kids) {
        ww += nodes_[k].weight;
        nodes_[k].parent = wid;
      }
      // Items still buffered on the moved edges stay with their edges; they
      // are not part of weight.
      v.weight = vw;
      w.weight = ww;
      w.min_key = nodes_[w.kids.front()].min_key;
      v.min_key = nodes_[v.kids.front()].min_key;
    }

    // Register the new sibling with the parent; the parent's edge buffers
    // for v split by the router.
    Node& p = nodes_[parent];
    p.routers.insert(p.routers.begin() + static_cast<std::ptrdiff_t>(ci), router);
    p.kids.insert(p.kids.begin() + static_cast<std::ptrdiff_t>(ci) + 1, wid);
    std::vector<Buffer> wlist;
    wlist.reserve(p.ebufs[ci].size());
    for (Buffer& b : p.ebufs[ci]) {
      Buffer nb;
      nb.height = b.height;
      nb.capacity = b.capacity;
      const auto split_at = std::lower_bound(
          b.items.begin(), b.items.end(), router,
          [](const Item& a, const K& k) { return a.key < k; });
      nb.items.assign(std::make_move_iterator(split_at),
                      std::make_move_iterator(b.items.end()));
      b.items.erase(split_at, b.items.end());
      wlist.push_back(std::move(nb));
    }
    p.ebufs.insert(p.ebufs.begin() + static_cast<std::ptrdiff_t>(ci) + 1,
                   std::move(wlist));
  }

  // -- cursors ----------------------------------------------------------------

  /// In-order successor leaf of `id` (kNull past the rightmost leaf): walk
  /// up to the first ancestor with a right sibling edge, then down its
  /// leftmost spine. Amortized O(1) hops per leaf over a full scan.
  std::uint32_t next_leaf(std::uint32_t id) const {
    std::uint32_t v = id;
    while (true) {
      const std::uint32_t p = nodes_[v].parent;
      if (p == kNull) return kNull;
      touch_node(p);
      const std::size_t ci = child_index_of(p, v);
      if (ci + 1 < nodes_[p].kids.size()) {
        std::uint32_t d = nodes_[p].kids[ci + 1];
        while (nodes_[d].height > 1) {
          touch_node(d);
          d = nodes_[d].kids.front();
        }
        touch_node(d);
        return d;
      }
      v = p;
    }
  }

  /// One source of a cursor's fused merge: an edge-buffer span, or (one per
  /// cursor) the leaf walker that streams the leaf entries in order across
  /// leaf boundaries.
  struct CurSrc {
    const Item* at = nullptr;
    const Item* end = nullptr;
    const ShuttleTree* walker = nullptr;  // set: this is the leaf walker
    std::uint32_t leaf = kNull;
    std::uint32_t idx = 0;

    bool alive() const { return walker != nullptr ? leaf != kNull : at != end; }
    const K& key() const {
      return walker != nullptr ? walker->nodes_[leaf].entries[idx].key : at->key;
    }
    const V& value() const {
      return walker != nullptr ? walker->nodes_[leaf].entries[idx].value
                               : at->value;
    }
    bool tomb() const { return walker == nullptr && at->tombstone; }
    void advance() {
      if (walker == nullptr) {
        ++at;
        return;
      }
      ++idx;
      while (leaf != kNull && idx >= walker->nodes_[leaf].entries.size()) {
        leaf = walker->next_leaf(leaf);
        idx = 0;
      }
    }
  };

  /// Reusable cursor scratch (high-water sized, allocation-free across
  /// seeks). Source order IS the newest-wins priority: pre-order DFS emits
  /// a node's edge buffers (smallest tier first — the newest) before its
  /// descendants', and any two sources that can hold the same key lie on
  /// one root-to-leaf path, where DFS order equals depth order; the leaf
  /// walker — the oldest data — comes last.
  struct CursorState {
    std::vector<CurSrc> srcs;
    LoserTree<K> tree;
    Entry<K, V> cur{};
    bool valid = false;
    bool bounded = false;
    K hi{};
    K last{};
    bool have_last = false;
  };

 public:
  /// Resumable ordered cursor (Dictionary cursor contract in
  /// api/dictionary.hpp): tombstones buffered on the path suppress the
  /// shadowed leaf entries below them, newest buffer copy wins per key. Any
  /// mutation invalidates the cursor until the next seek.
  class Cursor {
   public:
    Cursor() = default;

    void seek(const K& lo) { do_seek(&lo, nullptr); }
    void seek(const K& lo, const K& hi) {
      if (hi < lo) {
        st_->valid = false;
        return;
      }
      do_seek(&lo, &hi);
    }
    void seek_first() { do_seek(nullptr, nullptr); }

    bool valid() const { return st_->valid; }
    const Entry<K, V>& entry() const { return st_->cur; }

    void next() {
      CursorState& st = *st_;
      if (!st.valid) return;
      CurSrc& s = st.srcs[st.tree.top()];
      s.advance();
      st.tree.replay(s.alive(), s.alive() ? s.key() : K{});
      advance_to_live();
    }

   private:
    friend class ShuttleTree;
    explicit Cursor(const ShuttleTree* d)
        : d_(d), own_(std::make_unique<CursorState>()), st_(own_.get()) {}
    Cursor(const ShuttleTree* d, CursorState* st) : d_(d), st_(st) {}

    void do_seek(const K* lo, const K* hi) {
      CursorState& st = *st_;
      const ShuttleTree& d = *d_;
      st.bounded = hi != nullptr;
      if (hi != nullptr) st.hi = *hi;
      st.have_last = false;
      st.valid = false;
      st.srcs.clear();
      d.gather_buffer_sources(d.root_, lo, hi, st.srcs);
      // The leaf walker starts at the first leaf entry >= lo, found by one
      // router descent; later leaves only hold larger keys.
      std::uint32_t id = d.root_;
      while (d.nodes_[id].height > 1) {
        d.touch_node(id);
        id = d.nodes_[id]
                 .kids[lo != nullptr ? d.edge_index(d.nodes_[id], *lo) : 0];
      }
      d.touch_node(id);
      CurSrc w;
      w.walker = &d;
      w.leaf = id;
      if (lo != nullptr) {
        const auto& entries = d.nodes_[id].entries;
        w.idx = static_cast<std::uint32_t>(
            std::lower_bound(entries.begin(), entries.end(), *lo,
                             EntryKeyLess{}) -
            entries.begin());
      }
      while (w.leaf != kNull && w.idx >= d.nodes_[w.leaf].entries.size()) {
        w.leaf = d.next_leaf(w.leaf);
        w.idx = 0;
      }
      if (w.leaf != kNull) st.srcs.push_back(w);
      st.tree.reset(st.srcs.size());
      for (std::size_t i = 0; i < st.srcs.size(); ++i) {
        st.tree.declare(i, st.srcs[i].key());
      }
      st.tree.build();
      advance_to_live();
    }

    void advance_to_live() {
      CursorState& st = *st_;
      while (st.tree.top_alive()) {
        CurSrc& s = st.srcs[st.tree.top()];
        const K& k = s.key();
        if (st.bounded && st.hi < k) break;
        const bool dup = st.have_last && !(st.last < k);
        if (!dup) {
          st.last = k;
          st.have_last = true;
          if (!s.tomb()) {
            st.cur.key = k;
            st.cur.value = s.value();
            st.valid = true;
            return;
          }
        }
        s.advance();
        st.tree.replay(s.alive(), s.alive() ? s.key() : K{});
      }
      st.valid = false;
    }

    const ShuttleTree* d_ = nullptr;
    std::unique_ptr<CursorState> own_;
    CursorState* st_ = nullptr;
  };

  /// Detached cursor (Dictionary concept); creation allocates once, steady-
  /// state seeks and nexts allocate nothing.
  Cursor make_cursor() const { return Cursor(this); }

 private:
  /// Pre-order DFS gathering every nonempty edge buffer whose edge range
  /// intersects [lo, hi] as a positioned span source.
  void gather_buffer_sources(std::uint32_t id, const K* lo, const K* hi,
                             std::vector<CurSrc>& srcs) const {
    const Node& n = nodes_[id];
    touch_node(id);
    if (n.height == 1) return;
    for (std::size_t e = 0; e < n.kids.size(); ++e) {
      const K* clo = e == 0 ? nullptr : &n.routers[e - 1];
      const K* chi = e == n.routers.size() ? nullptr : &n.routers[e];
      if (clo != nullptr && hi != nullptr && *hi < *clo) continue;
      if (chi != nullptr && lo != nullptr && *chi <= *lo) continue;
      for (const Buffer& b : n.ebufs[e]) {  // smallest (newest) tier first
        if (b.items.empty()) continue;
        touch_buffer(b, b.items.size());
        const Item* bb = b.items.data();
        const Item* be = bb + b.items.size();
        if (lo != nullptr) {
          bb = std::lower_bound(
              bb, be, *lo, [](const Item& a, const K& k) { return a.key < k; });
        }
        if (bb != be) {
          CurSrc s;
          s.at = bb;
          s.end = be;
          srcs.push_back(s);
        }
      }
      gather_buffer_sources(n.kids[e], lo, hi, srcs);
    }
  }

  // -- layout (Figure 1) --------------------------------------------------------

  void assign_node(std::uint32_t id) {
    Node& n = nodes_[id];
    const std::uint64_t bytes =
        64 + n.entries.capacity() * sizeof(Entry<K, V>) + n.kids.size() * 16;
    n.base = layout_cursor_;
    layout_cursor_ += std::max<std::uint64_t>(bytes, 64);
  }

  void assign_buffer(Buffer& b) {
    b.base = layout_cursor_;
    layout_cursor_ += std::max<std::uint64_t>(b.capacity * sizeof(Item), 64);
  }

  /// Emit buffers of exactly `bh` on every edge of node `id`.
  void emit_buffers_of_height(std::uint32_t id, std::uint64_t bh) {
    if (bh == 0) return;
    for (auto& list : nodes_[id].ebufs) {
      for (Buffer& b : list) {
        if (b.height == bh && b.base == kNoAddr) assign_buffer(b);
      }
    }
  }

  /// Recursive Figure-1 placement of the height-f recursive subtree rooted
  /// at `id`. Appends the subtree's bottom nodes to `leaves` and their
  /// children to `frontier`.
  void place(std::uint32_t id, std::uint64_t f, std::vector<std::uint32_t>& leaves,
             std::vector<std::uint32_t>& frontier) {
    Node& n = nodes_[id];
    if (f <= 1 || n.height == 1) {
      if (n.base == kNoAddr) assign_node(id);
      // The very smallest buffers ride along with their node.
      for (auto& list : n.ebufs) {
        for (Buffer& b : list) {
          if (b.height <= 1 && b.base == kNoAddr) assign_buffer(b);
        }
      }
      leaves.push_back(id);
      for (std::uint32_t k : n.kids) frontier.push_back(k);
      return;
    }
    const std::uint64_t hs = layout::largest_fib_below(f);  // bottom height
    const std::uint64_t htop = f - hs;
    const int k = layout::fib_index_at_most(hs);

    std::vector<std::uint32_t> top_leaves, mid;
    place(id, htop, top_leaves, mid);
    // Height-F_H(k) buffers of the top subtree's leaves come right after it.
    const int top_tier = k - cfg_.buffer_delta;
    if (top_tier >= 1) {
      for (std::uint32_t v : top_leaves) {
        emit_buffers_of_height(v, layout::fib(top_tier));
      }
    }
    // Each bottom recursive subtree, followed by its leaves' next-tier
    // buffers.
    const int bot_tier = k + 1 - cfg_.buffer_delta;
    for (std::uint32_t m : mid) {
      std::vector<std::uint32_t> bl, bf;
      place(m, hs, bl, bf);
      if (bot_tier >= 1) {
        for (std::uint32_t v : bl) emit_buffers_of_height(v, layout::fib(bot_tier));
      }
      leaves.insert(leaves.end(), bl.begin(), bl.end());
      frontier.insert(frontier.end(), bf.begin(), bf.end());
    }
  }

  // -- invariants ---------------------------------------------------------------

  void check_rec(std::uint32_t id, int expect_height, const K* lo, const K* hi,
                 std::uint64_t& counted_buffered) const {
    const Node& n = nodes_[id];
    if (n.height != expect_height) throw std::logic_error("shuttle: ragged heights");
    if (n.height == 1) {
      if (!n.kids.empty() || !n.ebufs.empty()) {
        throw std::logic_error("shuttle: leaf with children/buffers");
      }
      if (n.weight != n.entries.size()) throw std::logic_error("shuttle: leaf weight");
      if (id != root_ && n.entries.size() > leaf_cap()) {
        throw std::logic_error("shuttle: overfull leaf");
      }
      for (std::size_t i = 0; i < n.entries.size(); ++i) {
        if (i > 0 && !(n.entries[i - 1].key < n.entries[i].key)) {
          throw std::logic_error("shuttle: leaf unsorted");
        }
        if (lo != nullptr && n.entries[i].key < *lo) throw std::logic_error("shuttle: leaf lo");
        if (hi != nullptr && !(n.entries[i].key < *hi)) throw std::logic_error("shuttle: leaf hi");
      }
      if (!n.entries.empty() && n.min_key > n.entries.front().key) {
        throw std::logic_error("shuttle: min_key overstated");
      }
      return;
    }
    if (n.kids.size() != n.routers.size() + 1) throw std::logic_error("shuttle: arity");
    if (n.ebufs.size() != n.kids.size()) throw std::logic_error("shuttle: edge buffers arity");
    if (id != root_ && n.weight > weight_threshold(n.height)) {
      throw std::logic_error("shuttle: overweight node");
    }
    std::uint64_t w = 0;
    for (std::size_t e = 0; e < n.kids.size(); ++e) {
      const K* clo = e == 0 ? lo : &n.routers[e - 1];
      const K* chi = e == n.routers.size() ? hi : &n.routers[e];
      const std::vector<Buffer>& list = n.ebufs[e];
      for (std::size_t bi = 0; bi < list.size(); ++bi) {
        const Buffer& b = list[bi];
        if (bi > 0 && !(list[bi - 1].height < b.height)) {
          throw std::logic_error("shuttle: buffer heights not ascending");
        }
        if (b.items.size() > b.capacity) throw std::logic_error("shuttle: overfull buffer");
        counted_buffered += b.items.size();
        for (std::size_t i = 0; i < b.items.size(); ++i) {
          if (i > 0 && !(b.items[i - 1].key < b.items[i].key)) {
            throw std::logic_error("shuttle: buffer unsorted");
          }
          if (clo != nullptr && b.items[i].key < *clo) {
            throw std::logic_error("shuttle: buffer item below range");
          }
          if (chi != nullptr && !(b.items[i].key < *chi)) {
            throw std::logic_error("shuttle: buffer item above range");
          }
        }
      }
      if (nodes_[n.kids[e]].parent != id) throw std::logic_error("shuttle: parent pointer");
      check_rec(n.kids[e], expect_height - 1, clo, chi, counted_buffered);
      w += nodes_[n.kids[e]].weight;
    }
    if (w != n.weight) throw std::logic_error("shuttle: weight drift");
    for (std::size_t i = 1; i < n.routers.size(); ++i) {
      if (!(n.routers[i - 1] < n.routers[i])) throw std::logic_error("shuttle: routers unsorted");
    }
  }

  ShuttleConfig cfg_;
  std::vector<Node> nodes_;
  std::vector<std::uint8_t> alive_;
  std::uint32_t root_ = kNull;
  std::uint64_t buffered_items_ = 0;
  std::vector<std::uint32_t> dirty_leaves_;
  // Reusable scratch: single-op batch, bulk batch, leaf merge target, and
  // per-recursion-depth pour carriers — the steady-state insert path
  // allocates nothing once these reach their high-water capacities.
  std::vector<Item> put_scratch_, batch_scratch_;
  std::vector<Entry<K, V>> leaf_scratch_;
  std::deque<std::vector<Item>> flush_frames_;
  std::size_t flush_depth_ = 0;
  // Dictionary-owned cursor scratch backing range_for_each/for_each.
  mutable CursorState scan_state_;
  // Snapshot cache: one materialized segment per mutation epoch (see snapshot()).
  std::uint64_t mutation_epoch_ = 0;
  mutable snap::Snapshot<K, V> snap_cache_;
  mutable std::uint64_t snap_epoch_ = 0;
  ShuttleStats stats_;
  mutable MM mm_;
  // Layout state.
  std::uint64_t layout_cursor_ = 0;
  std::uint64_t fresh_base_ = 1ULL << 44;  // park new nodes past the laid-out region
  std::uint64_t last_layout_weight_ = 1;
};

}  // namespace costream::shuttle
