// Tests for the DAM-model simulator: LRU behavior, transfer classification,
// and the disk-time model that drives the figure benches.
#include <gtest/gtest.h>

#include "dam/dam_mem_model.hpp"

namespace costream::dam {
namespace {

TEST(DamModel, FirstTouchIsATransfer) {
  dam_mem_model mm(4096, 1 << 20);
  mm.touch(0, 8);
  EXPECT_EQ(mm.stats().transfers, 1u);
  EXPECT_EQ(mm.stats().accesses, 1u);
}

TEST(DamModel, RepeatTouchHitsCache) {
  dam_mem_model mm(4096, 1 << 20);
  mm.touch(0, 8);
  mm.touch(100, 8);
  mm.touch(4000, 8);
  EXPECT_EQ(mm.stats().transfers, 1u) << "same block, one transfer";
}

TEST(DamModel, StraddlingAccessTouchesTwoBlocks) {
  dam_mem_model mm(4096, 1 << 20);
  mm.touch(4090, 16);  // crosses the 4096 boundary
  EXPECT_EQ(mm.stats().transfers, 2u);
  EXPECT_EQ(mm.stats().blocks_touched, 2u);
}

TEST(DamModel, SequentialClassification) {
  dam_mem_model mm(4096, 1 << 20);
  for (int b = 0; b < 8; ++b) mm.touch(static_cast<std::uint64_t>(b) * 4096, 8);
  EXPECT_EQ(mm.stats().transfers, 8u);
  EXPECT_EQ(mm.stats().random_transfers, 1u) << "only the first miss is random";
  EXPECT_EQ(mm.stats().sequential_transfers, 7u);
}

TEST(DamModel, RandomClassification) {
  dam_mem_model mm(4096, 1 << 20);
  mm.touch(0, 8);
  mm.touch(10 * 4096, 8);
  mm.touch(3 * 4096, 8);
  EXPECT_EQ(mm.stats().random_transfers, 3u);
  EXPECT_EQ(mm.stats().sequential_transfers, 0u);
}

TEST(DamModel, EvictsLruVictim) {
  // Cache of 2 blocks.
  dam_mem_model mm(4096, 2 * 4096);
  mm.touch(0 * 4096, 8);  // A
  mm.touch(1 * 4096, 8);  // B
  mm.touch(0 * 4096, 8);  // A again: A is MRU
  mm.touch(2 * 4096, 8);  // C evicts B
  EXPECT_EQ(mm.stats().evictions, 1u);
  mm.touch(0 * 4096, 8);  // A still cached
  EXPECT_EQ(mm.stats().transfers, 3u);
  mm.touch(1 * 4096, 8);  // B was evicted: transfer again
  EXPECT_EQ(mm.stats().transfers, 4u);
}

TEST(DamModel, WorkingSetWithinMemoryNeverEvicts) {
  dam_mem_model mm(4096, 64 * 4096);
  for (int round = 0; round < 10; ++round) {
    for (int b = 0; b < 64; ++b) mm.touch(static_cast<std::uint64_t>(b) * 4096, 4096);
  }
  EXPECT_EQ(mm.stats().transfers, 64u);
  EXPECT_EQ(mm.stats().evictions, 0u);
}

TEST(DamModel, ClearCacheForcesColdStart) {
  dam_mem_model mm(4096, 1 << 20);
  mm.touch(0, 8);
  mm.clear_cache();
  mm.touch(0, 8);
  EXPECT_EQ(mm.stats().transfers, 2u);
  EXPECT_EQ(mm.cached_blocks(), 1u);
}

TEST(DamModel, ResetStatsKeepsCache) {
  dam_mem_model mm(4096, 1 << 20);
  mm.touch(0, 8);
  mm.reset_stats();
  mm.touch(0, 8);  // still cached
  EXPECT_EQ(mm.stats().transfers, 0u);
  EXPECT_EQ(mm.stats().accesses, 1u);
}

TEST(DamModel, ModeledTimeChargesSeeksOnlyForRandom) {
  DiskParams disk;
  disk.seek_seconds = 0.01;
  disk.bandwidth_bytes_per_second = 4096.0 * 100;  // 100 blocks/s
  dam_mem_model mm(4096, 1 << 20, disk);
  for (int b = 0; b < 10; ++b) mm.touch(static_cast<std::uint64_t>(b) * 4096, 8);
  // 1 random (0.01s seek) + 10 transfers * 0.01s bandwidth each.
  EXPECT_NEAR(mm.modeled_seconds(), 0.01 + 10 * 0.01, 1e-9);
}

TEST(DamModel, MinimumOneBlockOfMemory) {
  dam_mem_model mm(4096, 0);
  mm.touch(0, 8);
  mm.touch(4096, 8);
  mm.touch(0, 8);
  EXPECT_EQ(mm.stats().transfers, 3u) << "single-block cache thrashes";
}

TEST(DamModel, ZeroLengthTouchCountsOneByte) {
  dam_mem_model mm(4096, 1 << 20);
  mm.touch(0, 0);
  EXPECT_EQ(mm.stats().blocks_touched, 1u);
}

TEST(DamModel, RejectsZeroBlockSize) {
  EXPECT_THROW(dam_mem_model(0, 1 << 20), std::invalid_argument);
}

TEST(DamModel, LargeRangeTouchesEveryBlockOnce) {
  dam_mem_model mm(4096, 1 << 30);
  mm.touch(0, 64 * 4096);
  EXPECT_EQ(mm.stats().transfers, 64u);
  EXPECT_EQ(mm.stats().sequential_transfers, 63u);
}

TEST(DamModel, DirtyEvictionCostsAWriteback) {
  dam_mem_model mm(4096, 2 * 4096);  // 2-block cache
  mm.touch_write(0 * 4096, 8);       // A, dirty
  mm.touch(1 * 4096, 8);             // B, clean
  mm.touch(2 * 4096, 8);             // C evicts A (LRU) -> writeback
  EXPECT_EQ(mm.stats().evictions, 1u);
  EXPECT_EQ(mm.stats().writebacks, 1u);
  EXPECT_EQ(mm.stats().transfers, 4u);  // 3 misses + 1 writeback
}

TEST(DamModel, CleanEvictionIsFree) {
  dam_mem_model mm(4096, 2 * 4096);
  mm.touch(0 * 4096, 8);
  mm.touch(1 * 4096, 8);
  mm.touch(2 * 4096, 8);  // evicts clean block 0
  EXPECT_EQ(mm.stats().evictions, 1u);
  EXPECT_EQ(mm.stats().writebacks, 0u);
  EXPECT_EQ(mm.stats().transfers, 3u);
}

TEST(DamModel, ClearCacheFlushesDirtyBlocks) {
  dam_mem_model mm(4096, 1 << 20);
  mm.touch_write(0, 8);
  mm.touch(4096, 8);
  mm.clear_cache();
  EXPECT_EQ(mm.stats().writebacks, 1u);
  EXPECT_EQ(mm.stats().transfers, 3u);  // 2 misses + 1 flush writeback
}

TEST(DamModel, RewritingADirtyBlockWritesBackOnce) {
  dam_mem_model mm(4096, 1 << 20);
  for (int i = 0; i < 100; ++i) mm.touch_write(static_cast<std::uint64_t>(i) * 8, 8);
  mm.clear_cache();
  EXPECT_EQ(mm.stats().writebacks, 1u) << "dirtiness coalesces per block";
}

}  // namespace
}  // namespace costream::dam
