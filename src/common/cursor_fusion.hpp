// K-source cursor fusion — the cached-key loser tree generalized from its
// per-structure call sites (each structure's Cursor fuses its own levels /
// segments / buffers) into a reusable component that fuses WHOLE DICTIONARY
// CURSORS: any k objects satisfying the Dictionary cursor contract
// (api/dictionary.hpp) merge into one ordered, deduplicated stream that
// itself satisfies the same contract.
//
// Two consumers:
//   * the sharded dictionary's cursor (shard/sharded_dictionary.hpp): a
//     sharded range scan is exactly a k-way fusion of per-shard cursors —
//     the shards partition the keyspace, so the fusion degenerates to a
//     k-way ordered concatenation-by-merge;
//   * api::merge_join_k: the k-way leapfrog join drives the same LoserTree
//     directly (it needs min-tracking plus per-source re-seek, not a merged
//     union stream).
//
// Inner cursors already suppress their own tombstones and duplicates, so
// the fusion's only residual dedup is ACROSS sources: when two sources
// surface the same key, the smaller source index wins (callers order
// sources newest-first, same convention as the per-structure fusions) and
// the losers' copies are consumed silently. Repeated seeks are
// allocation-free once the tree's node arrays reach their high-water size —
// the inner cursors own their scratch, the fusion owns only the tree.
#pragma once

#include <cstddef>
#include <vector>

#include "common/entry.hpp"
#include "common/loser_tree.hpp"

namespace costream {

template <class C, class K = Key, class V = Value>
class FusedCursorSet {
 public:
  /// The underlying cursors, in priority order (index 0 wins key ties).
  /// Callers populate/replace this before the first seek; the set does not
  /// reorder it.
  std::vector<C>& sources() noexcept { return srcs_; }
  const std::vector<C>& sources() const noexcept { return srcs_; }

  void seek(const K& lo) { do_seek(&lo, nullptr); }
  void seek(const K& lo, const K& hi) {
    if (hi < lo) {
      valid_ = false;
      return;
    }
    do_seek(&lo, &hi);
  }
  void seek_first() { do_seek(nullptr, nullptr); }

  bool valid() const noexcept { return valid_; }
  const Entry<K, V>& entry() const noexcept { return cur_; }

  void next() {
    if (!valid_) return;
    C& c = srcs_[tree_.top()];
    c.next();
    tree_.replay(c.valid(), c.valid() ? c.entry().key : K{});
    settle();
  }

 private:
  void do_seek(const K* lo, const K* hi) {
    have_last_ = false;
    valid_ = false;
    tree_.reset(srcs_.size());
    for (std::size_t i = 0; i < srcs_.size(); ++i) {
      C& c = srcs_[i];
      if (lo == nullptr) {
        c.seek_first();
      } else if (hi == nullptr) {
        c.seek(*lo);
      } else {
        c.seek(*lo, *hi);
      }
      if (c.valid()) tree_.declare(i, c.entry().key);
    }
    tree_.build();
    settle();
  }

  /// Surface the merged head, consuming cross-source duplicates of the last
  /// surfaced key (the winner of a tie — the smallest source index — was
  /// surfaced first; the losers are older copies).
  void settle() {
    while (tree_.top_alive()) {
      C& c = srcs_[tree_.top()];
      const K& k = c.entry().key;
      if (!have_last_ || last_ < k) {
        last_ = k;
        have_last_ = true;
        cur_ = c.entry();
        valid_ = true;
        return;
      }
      c.next();
      tree_.replay(c.valid(), c.valid() ? c.entry().key : K{});
    }
    valid_ = false;
  }

  std::vector<C> srcs_;
  LoserTree<K> tree_;
  Entry<K, V> cur_{};
  K last_{};
  bool have_last_ = false;
  bool valid_ = false;
};

}  // namespace costream
