// Model-based mixed-op fuzz harness: seeded randomized traces of
// put / erase / put_batch / erase_batch / apply_batch / find / range /
// cursor / snapshot operations, replayed against a std::map reference
// (blind-delete semantics) across every structure and DictConfig preset —
// g in {2, 4, 8, 16} for the growth family, classic / tiered / staged for
// the COLA cascade modes, S in {1, 2, 4} for the sharded facade. The
// oracle is pure differential: every find is compared, ranges are
// compared, held-open snapshots are re-verified against frozen model
// stamps (contents, cursor probes, and epoch) across the mutation storms
// between take and verify, structural invariants run periodically, and
// the final contents are swept in full.
//
// On divergence the harness first truncates the trace to the failing
// prefix, then greedily delta-shrinks it (chunked removal with re-replay),
// and FAILs with the seed plus the minimal trace printed in replayable
// form — paste the dump into a regression test, or rerun with the seed.
//
// The seed corpus defaults to a small fixed set (deterministic CI); set
// MIXED_FUZZ_SEEDS=<count> to widen the sweep locally or in the dedicated
// CI fuzz leg.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "api/presets.hpp"
#include "brt/brt.hpp"
#include "btree/btree.hpp"
#include "cob/cob_tree.hpp"
#include "cola/cola.hpp"
#include "cola/deamortized_cola.hpp"
#include "cola/deamortized_fc_cola.hpp"
#include "common/rng.hpp"
#include "common/snapshot.hpp"
#include "model_helpers.hpp"
#include "shard/sharded_dictionary.hpp"
#include "shuttle/shuttle_tree.hpp"

namespace costream {
namespace {

struct FuzzOp {
  enum class Kind {
    kPut,
    kErase,
    kPutBatch,
    kEraseBatch,
    kApplyBatch,
    kIngestThenFind, // apply_batch, then IMMEDIATELY find every batch key
                     // with no drain in between — read-your-writes for the
                     // submitting thread; on sharded arms this lands while
                     // the worker is still applying, exercising the
                     // optimistic overlay/retry read path
    kFind,
    kRange,
    kCursorSeek,   // re-seek the replay's persistent cursor at `key`
    kCursorNext,   // advance it one entry (re-seeking first if a mutation
                   // invalidated it — the snapshot-at-seek protocol)
    kSnapshotTake, // push dict.snapshot() + a frozen model copy onto the
                   // replay's rolling window of held snapshots
    kSnapshotVerify // pick a held snapshot (key % window) and verify it
                    // still reads EXACTLY its frozen stamp — for_each,
                    // a cursor seek probe, and the stamped epoch — no
                    // matter how many mutations landed since the take
  };
  Kind kind = Kind::kPut;
  Key key = 0;
  Value value = 0;
  Key hi = 0;                   // kRange
  std::vector<Entry<>> entries; // kPutBatch
  std::vector<Key> keys;        // kEraseBatch
  std::vector<Op<>> ops;        // kApplyBatch
};

std::vector<FuzzOp> make_trace(std::uint64_t seed, std::size_t count, Key universe) {
  Xoshiro256 rng(seed);
  std::vector<FuzzOp> trace;
  trace.reserve(count);
  const auto key = [&] { return static_cast<Key>(rng.below(universe)); };
  for (std::size_t i = 0; i < count; ++i) {
    FuzzOp op;
    const std::uint64_t pick = rng.below(100);
    if (pick < 20) {
      op.kind = FuzzOp::Kind::kPut;
      op.key = key();
      op.value = rng();
    } else if (pick < 30) {
      op.kind = FuzzOp::Kind::kErase;
      op.key = key();
    } else if (pick < 45) {
      op.kind = FuzzOp::Kind::kPutBatch;
      const std::size_t n = 1 + rng.below(48);
      op.entries.reserve(n);
      for (std::size_t j = 0; j < n; ++j) op.entries.push_back(Entry<>{key(), rng()});
    } else if (pick < 57) {
      op.kind = FuzzOp::Kind::kEraseBatch;
      const std::size_t n = 1 + rng.below(48);
      op.keys.reserve(n);
      for (std::size_t j = 0; j < n; ++j) op.keys.push_back(key());
    } else if (pick < 75) {
      op.kind = pick < 70 ? FuzzOp::Kind::kApplyBatch
                          : FuzzOp::Kind::kIngestThenFind;
      const std::size_t n = 1 + rng.below(48);
      op.ops.reserve(n);
      for (std::size_t j = 0; j < n; ++j) {
        if (rng.below(100) < 45) {
          op.ops.push_back(Op<>::del(key()));
        } else {
          op.ops.push_back(Op<>::put(key(), rng()));
        }
      }
    } else if (pick < 85) {
      op.kind = FuzzOp::Kind::kFind;
      op.key = key();
    } else if (pick < 92) {
      op.kind = FuzzOp::Kind::kRange;
      op.key = key();
      op.hi = op.key + rng.below(universe / 8 + 1);
    } else if (pick < 95) {
      op.kind = FuzzOp::Kind::kCursorSeek;
      op.key = key();
    } else if (pick < 98) {
      op.kind = FuzzOp::Kind::kCursorNext;
    } else if (pick < 99) {
      op.kind = FuzzOp::Kind::kSnapshotTake;
    } else {
      op.kind = FuzzOp::Kind::kSnapshotVerify;
      op.key = key();  // selects the held snapshot AND the cursor probe point
    }
    trace.push_back(std::move(op));
  }
  return trace;
}

std::string dump_trace(const std::vector<FuzzOp>& trace) {
  std::ostringstream os;
  std::size_t shown = 0;
  for (const FuzzOp& op : trace) {
    if (++shown > 400) {
      os << "  ... (" << trace.size() - 400 << " more ops)\n";
      break;
    }
    switch (op.kind) {
      case FuzzOp::Kind::kPut:
        os << "  put " << op.key << " " << op.value << "\n";
        break;
      case FuzzOp::Kind::kErase:
        os << "  erase " << op.key << "\n";
        break;
      case FuzzOp::Kind::kPutBatch:
        os << "  put_batch";
        for (const Entry<>& e : op.entries) os << " " << e.key << ":" << e.value;
        os << "\n";
        break;
      case FuzzOp::Kind::kEraseBatch:
        os << "  erase_batch";
        for (Key k : op.keys) os << " " << k;
        os << "\n";
        break;
      case FuzzOp::Kind::kApplyBatch:
        os << "  apply_batch";
        for (const Op<>& o : op.ops) {
          if (o.erase) {
            os << " del:" << o.key;
          } else {
            os << " put:" << o.key << ":" << o.value;
          }
        }
        os << "\n";
        break;
      case FuzzOp::Kind::kIngestThenFind:
        os << "  ingest_then_find";
        for (const Op<>& o : op.ops) {
          if (o.erase) {
            os << " del:" << o.key;
          } else {
            os << " put:" << o.key << ":" << o.value;
          }
        }
        os << "\n";
        break;
      case FuzzOp::Kind::kFind:
        os << "  find " << op.key << "\n";
        break;
      case FuzzOp::Kind::kRange:
        os << "  range " << op.key << " " << op.hi << "\n";
        break;
      case FuzzOp::Kind::kCursorSeek:
        os << "  cursor_seek " << op.key << "\n";
        break;
      case FuzzOp::Kind::kCursorNext:
        os << "  cursor_next\n";
        break;
      case FuzzOp::Kind::kSnapshotTake:
        os << "  snapshot_take\n";
        break;
      case FuzzOp::Kind::kSnapshotVerify:
        os << "  snapshot_verify " << op.key << "\n";
        break;
    }
  }
  return os.str();
}

struct Divergence {
  std::size_t op_index;  // first trace index whose effects diverge
  std::string what;
};

/// Replay `trace` against a fresh dictionary and the reference; the first
/// observable divergence (find/range mismatch or invariant violation) is
/// returned instead of asserted, so the shrinker can re-run freely.
template <class D>
std::optional<Divergence> replay(D& dict, const std::vector<FuzzOp>& trace) {
  testing::RefDict ref;
  // Persistent cursor, exercised interleaved with mutations. Contract
  // (api/dictionary.hpp): the stream is the snapshot at the last seek, and
  // any mutation invalidates the cursor until it is re-seeked — so the
  // harness tracks a dirty flag and the resume point (one past the last
  // surfaced key) and re-seeks there before stepping a dirtied cursor.
  // Rolling window of snapshots held open across the rest of the trace —
  // every mutation storm between a take and its verifies runs with these
  // handles pinning segments. Each take stamps a frozen model copy and the
  // epoch; verification checks all three survive (contract: a Snapshot is
  // immutable no matter what the source dictionary does afterwards).
  struct HeldSnapshot {
    snap::Snapshot<> snap;
    std::uint64_t stamped_epoch = 0;
    std::map<Key, Value> frozen;
  };
  std::vector<HeldSnapshot> held;
  auto cursor = dict.make_cursor();
  bool cursor_dirty = true;
  bool cursor_has_pos = false;  // a seek has happened at some point
  Key cursor_resume = 0;        // next expected key lower bound
  const auto cursor_expect = [&](std::size_t i,
                                 Key from) -> std::optional<Divergence> {
    const auto it = ref.map().lower_bound(from);
    if (it == ref.map().end()) {
      if (cursor.valid()) {
        std::ostringstream os;
        os << "cursor at key " << cursor.entry().key << ", model says drained"
           << " (from " << from << ")";
        return Divergence{i, os.str()};
      }
      cursor_resume = from;  // stays drained until re-seeked
      return std::nullopt;
    }
    if (!cursor.valid()) {
      std::ostringstream os;
      os << "cursor drained, model says " << it->first << ":" << it->second
         << " (from " << from << ")";
      return Divergence{i, os.str()};
    }
    if (cursor.entry().key != it->first || cursor.entry().value != it->second) {
      std::ostringstream os;
      os << "cursor at " << cursor.entry().key << ":" << cursor.entry().value
         << ", model says " << it->first << ":" << it->second << " (from "
         << from << ")";
      return Divergence{i, os.str()};
    }
    cursor_resume = it->first + 1;  // universe keys are far from overflow
    return std::nullopt;
  };
  const auto check = [&](std::size_t i) -> std::optional<Divergence> {
    if constexpr (requires { dict.check_invariants(); }) {
      try {
        dict.check_invariants();
      } catch (const std::logic_error& e) {
        return Divergence{i, std::string("invariant: ") + e.what()};
      }
    }
    return std::nullopt;
  };
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const FuzzOp& op = trace[i];
    switch (op.kind) {
      case FuzzOp::Kind::kPut:
        dict.insert(op.key, op.value);
        ref.insert(op.key, op.value);
        cursor_dirty = true;
        break;
      case FuzzOp::Kind::kErase:
        dict.erase(op.key);
        ref.erase(op.key);
        cursor_dirty = true;
        break;
      case FuzzOp::Kind::kPutBatch:
        dict.insert_batch(op.entries);
        for (const Entry<>& e : op.entries) ref.insert(e.key, e.value);
        cursor_dirty = true;
        break;
      case FuzzOp::Kind::kEraseBatch:
        dict.erase_batch(op.keys);
        for (Key k : op.keys) ref.erase(k);
        cursor_dirty = true;
        break;
      case FuzzOp::Kind::kApplyBatch:
        dict.apply_batch(op.ops);
        for (const Op<>& o : op.ops) {
          if (o.erase) {
            ref.erase(o.key);
          } else {
            ref.insert(o.key, o.value);
          }
        }
        cursor_dirty = true;
        break;
      case FuzzOp::Kind::kCursorSeek: {
        cursor.seek(op.key);
        cursor_dirty = false;
        cursor_has_pos = true;
        if (auto d = cursor_expect(i, op.key)) return d;
        break;
      }
      case FuzzOp::Kind::kCursorNext: {
        if (!cursor_has_pos) {  // self-sufficient after shrinking
          cursor.seek(Key{0});
          cursor_dirty = false;
          cursor_has_pos = true;
          if (auto d = cursor_expect(i, 0)) return d;
          break;
        }
        const Key from = cursor_resume;
        if (cursor_dirty) {
          cursor.seek(from);  // snapshot-at-seek: resume on fresh state
          cursor_dirty = false;
        } else {
          cursor.next();
        }
        if (auto d = cursor_expect(i, from)) return d;
        break;
      }
      case FuzzOp::Kind::kSnapshotTake: {
        if constexpr (requires { dict.snapshot(); }) {
          held.push_back(HeldSnapshot{dict.snapshot(), 0, ref.map()});
          held.back().stamped_epoch = held.back().snap.epoch();
          if (held.size() > 3) held.erase(held.begin());
        }
        break;
      }
      case FuzzOp::Kind::kSnapshotVerify: {
        if (held.empty()) break;  // shrinker may drop the take; stay total
        const HeldSnapshot& h = held[op.key % held.size()];
        if (h.snap.epoch() != h.stamped_epoch) {
          std::ostringstream os;
          os << "held snapshot epoch " << h.snap.epoch() << ", stamped "
             << h.stamped_epoch;
          return Divergence{i, os.str()};
        }
        std::map<Key, Value> seen;
        h.snap.for_each([&](const Key& k, const Value& v) { seen[k] = v; });
        if (seen != h.frozen) {
          std::ostringstream os;
          os << "held snapshot reads " << seen.size()
             << " entries, stamped model has " << h.frozen.size()
             << " (or values diverged)";
          return Divergence{i, os.str()};
        }
        // A fresh cursor over the held snapshot must land exactly where the
        // frozen model says, even though the live structure has moved on.
        auto sc = h.snap.make_cursor();
        sc.seek(op.key);
        const auto it = h.frozen.lower_bound(op.key);
        if (it == h.frozen.end()) {
          if (sc.valid()) {
            std::ostringstream os;
            os << "held-snapshot cursor at " << sc.entry().key
               << ", stamped model says drained (from " << op.key << ")";
            return Divergence{i, os.str()};
          }
        } else if (!sc.valid() || sc.entry().key != it->first ||
                   sc.entry().value != it->second) {
          std::ostringstream os;
          os << "held-snapshot cursor ";
          if (sc.valid()) {
            os << "at " << sc.entry().key << ":" << sc.entry().value;
          } else {
            os << "drained";
          }
          os << ", stamped model says " << it->first << ":" << it->second
             << " (from " << op.key << ")";
          return Divergence{i, os.str()};
        }
        break;
      }
      case FuzzOp::Kind::kIngestThenFind: {
        dict.apply_batch(op.ops);
        for (const Op<>& o : op.ops) {
          if (o.erase) {
            ref.erase(o.key);
          } else {
            ref.insert(o.key, o.value);
          }
        }
        cursor_dirty = true;
        // Read-your-writes: the call above has been acknowledged, so every
        // batch key must read back exactly per the model — no drain, which
        // on sharded arms races the still-applying worker through the
        // acknowledged-pending overlay.
        for (const Op<>& o : op.ops) {
          const auto got = dict.find(o.key);
          const auto want = ref.find(o.key);
          if (got != want) {
            std::ostringstream os;
            os << "ingest_then_find(" << o.key << ") = "
               << (got ? std::to_string(*got) : "nothing") << ", model says "
               << (want ? std::to_string(*want) : "nothing");
            return Divergence{i, os.str()};
          }
        }
        break;
      }
      case FuzzOp::Kind::kFind: {
        const auto got = dict.find(op.key);
        const auto want = ref.find(op.key);
        if (got != want) {
          std::ostringstream os;
          os << "find(" << op.key << ") = "
             << (got ? std::to_string(*got) : "nothing") << ", model says "
             << (want ? std::to_string(*want) : "nothing");
          return Divergence{i, os.str()};
        }
        break;
      }
      case FuzzOp::Kind::kRange: {
        const auto got = testing::collect_range(dict, op.key, op.hi);
        const auto want = ref.range(op.key, op.hi);
        if (got.size() != want.size()) {
          std::ostringstream os;
          os << "range [" << op.key << ", " << op.hi << "] returned "
             << got.size() << " entries, model says " << want.size();
          return Divergence{i, os.str()};
        }
        for (std::size_t j = 0; j < got.size(); ++j) {
          if (got[j].key != want[j].key || got[j].value != want[j].value) {
            std::ostringstream os;
            os << "range [" << op.key << ", " << op.hi << "] pos " << j << ": got "
               << got[j].key << ":" << got[j].value << ", model says "
               << want[j].key << ":" << want[j].value;
            return Divergence{i, os.str()};
          }
        }
        break;
      }
    }
    if (i % 24 == 23) {
      if (auto d = check(i)) return d;
    }
  }
  if (auto d = check(trace.empty() ? 0 : trace.size() - 1)) return d;
  // Final sweep: the full ordered contents must match the model exactly.
  const auto got =
      testing::collect_range(dict, 0, std::numeric_limits<Key>::max());
  const std::size_t last = trace.empty() ? 0 : trace.size() - 1;
  if (got.size() != ref.map().size()) {
    std::ostringstream os;
    os << "final sweep: " << got.size() << " live entries, model says "
       << ref.map().size();
    return Divergence{last, os.str()};
  }
  std::size_t j = 0;
  for (const auto& [k, v] : ref.map()) {
    if (got[j].key != k || got[j].value != v) {
      std::ostringstream os;
      os << "final sweep pos " << j << ": got " << got[j].key << ":"
         << got[j].value << ", model says " << k << ":" << v;
      return Divergence{last, os.str()};
    }
    ++j;
  }
  return std::nullopt;
}

template <class MakeDict>
std::optional<Divergence> replay_fresh(MakeDict& make, const std::vector<FuzzOp>& t) {
  auto dict = make();
  return replay(dict, t);
}

/// Greedy chunked delta-shrink of a failing trace: drop spans that do not
/// make the failure disappear, halving the span size until single ops.
template <class MakeDict>
std::vector<FuzzOp> shrink_trace(MakeDict& make, std::vector<FuzzOp> t) {
  for (std::size_t chunk = t.size() / 2; chunk >= 1; chunk /= 2) {
    for (std::size_t at = 0; at + chunk <= t.size();) {
      std::vector<FuzzOp> candidate;
      candidate.reserve(t.size() - chunk);
      candidate.insert(candidate.end(), t.begin(),
                       t.begin() + static_cast<std::ptrdiff_t>(at));
      candidate.insert(candidate.end(),
                       t.begin() + static_cast<std::ptrdiff_t>(at + chunk), t.end());
      if (replay_fresh(make, candidate)) {
        t = std::move(candidate);  // still fails without the span: keep it out
      } else {
        at += chunk;
      }
    }
    if (chunk == 1) break;
  }
  return t;
}

std::size_t seed_corpus_size() {
  const char* env = std::getenv("MIXED_FUZZ_SEEDS");
  if (env == nullptr || *env == '\0') return 2;
  const long v = std::atol(env);
  return v > 0 ? static_cast<std::size_t>(v) : 2;
}

/// Run the seed corpus for one (label, factory) configuration; on a
/// divergence, shrink and FAIL with the replayable trace.
template <class MakeDict>
void fuzz_config(const std::string& label, MakeDict make,
                 std::size_t trace_len = 1500, Key universe = 400) {
  const std::size_t seeds = seed_corpus_size();
  // Per-config seed base so configurations explore different traces.
  std::uint64_t base = 0xcbf29ce484222325ULL;
  for (const char c : label) {
    base = (base ^ static_cast<std::uint64_t>(c)) * 0x100000001b3ULL;
  }
  for (std::size_t s = 0; s < seeds; ++s) {
    const std::uint64_t seed = (base >> 32) + s;
    const std::vector<FuzzOp> trace = make_trace(seed, trace_len, universe);
    auto fail = replay_fresh(make, trace);
    if (!fail) continue;
    std::vector<FuzzOp> prefix(trace.begin(),
                               trace.begin() + static_cast<std::ptrdiff_t>(
                                                   fail->op_index + 1));
    const std::vector<FuzzOp> minimal = shrink_trace(make, std::move(prefix));
    FAIL() << label << " diverges from the model (seed " << seed << ", op "
           << fail->op_index << "): " << fail->what << "\n"
           << "minimal replay (" << minimal.size() << " ops):\n"
           << dump_trace(minimal);
  }
}

/// A deliberately buggy dictionary (erase_batch silently drops its last
/// key) used to prove the harness is not vacuous: the oracle must flag it
/// and the shrinker must reduce the trace to a handful of ops.
class BuggyDict {
 public:
  void insert(Key k, Value v) { m_[k] = v; }
  void insert_batch(costream::Span<Entry<>> batch) {
    for (const Entry<>& e : batch) m_[e.key] = e.value;
  }
  void erase(Key k) { m_.erase(k); }
  void erase_batch(costream::Span<Key> keys) {
    for (std::size_t i = 0; i + 1 < keys.size(); ++i) m_.erase(keys[i]);  // bug: last key kept
  }
  void apply_batch(costream::Span<Op<>> ops) {
    for (const Op<>& o : ops) {
      if (o.erase) {
        m_.erase(o.key);
      } else {
        m_[o.key] = o.value;
      }
    }
  }
  std::optional<Value> find(Key k) const {
    const auto it = m_.find(k);
    if (it == m_.end()) return std::nullopt;
    return it->second;
  }
  template <class Fn>
  void range_for_each(Key lo, Key hi, Fn&& fn) const {
    for (auto it = m_.lower_bound(lo); it != m_.end() && it->first <= hi; ++it) {
      fn(it->first, it->second);
    }
  }

  class Cursor {
   public:
    explicit Cursor(const std::map<Key, Value>* m) : m_(m) {}
    void seek(Key lo) { reposition(m_->lower_bound(lo)); }
    void seek(Key lo, Key hi) {
      reposition(m_->lower_bound(lo));
      if (valid_ && cur_.key > hi) valid_ = false;
    }
    void seek_first() { reposition(m_->begin()); }
    void next() {
      if (valid_) reposition(m_->upper_bound(cur_.key));
    }
    bool valid() const { return valid_; }
    const Entry<>& entry() const { return cur_; }

   private:
    void reposition(std::map<Key, Value>::const_iterator it) {
      valid_ = it != m_->end();
      if (valid_) cur_ = Entry<>{it->first, it->second};
    }
    const std::map<Key, Value>* m_;
    Entry<> cur_{};
    bool valid_ = false;
  };
  Cursor make_cursor() const { return Cursor(&m_); }

 private:
  std::map<Key, Value> m_;
};

TEST(MixedOpFuzz, HarnessCatchesAndShrinksPlantedBug) {
  auto make = [] { return BuggyDict{}; };
  std::optional<Divergence> fail;
  std::vector<FuzzOp> trace;
  for (std::uint64_t seed = 1; seed <= 16 && !fail; ++seed) {
    trace = make_trace(seed, 1500, 400);
    fail = replay_fresh(make, trace);
  }
  ASSERT_TRUE(fail.has_value()) << "oracle missed a dictionary that drops erases";
  std::vector<FuzzOp> prefix(
      trace.begin(), trace.begin() + static_cast<std::ptrdiff_t>(fail->op_index + 1));
  const std::vector<FuzzOp> minimal = shrink_trace(make, std::move(prefix));
  ASSERT_TRUE(replay_fresh(make, minimal).has_value())
      << "shrinker lost the failure";
  EXPECT_LE(minimal.size(), 4u)
      << "shrinker left a bloated trace:\n" << dump_trace(minimal);
}

TEST(MixedOpFuzz, ColaClassic) {
  for (const unsigned g : {2u, 4u, 8u, 16u}) {
    fuzz_config("cola-classic-g" + std::to_string(g),
                [g] { return cola::Gcola<>(cola::ColaConfig{g, 0.1}); });
  }
}

TEST(MixedOpFuzz, ColaTiered) {
  for (const unsigned g : {2u, 4u, 8u, 16u}) {
    fuzz_config("cola-tiered-g" + std::to_string(g), [g] {
      cola::ColaConfig cfg;
      cfg.growth = g;
      cfg.pointer_density = 0.0;
      cfg.tiered = true;
      return cola::Gcola<>(cfg);
    });
  }
}

TEST(MixedOpFuzz, ColaStaged) {
  for (const unsigned g : {2u, 4u, 8u, 16u}) {
    fuzz_config("cola-staged-g" + std::to_string(g),
                [g] { return cola::Gcola<>(cola::ingest_tuned(g, 24)); });
  }
}

TEST(MixedOpFuzz, ColaClassicStaged) {
  // Classic (lookahead) cascade behind an L0 arena — the fourth cascade
  // mode; flushes widen normalized tombstone-carrying runs into Slot form.
  for (const unsigned g : {2u, 4u}) {
    fuzz_config("cola-classic-staged-g" + std::to_string(g), [g] {
      cola::ColaConfig cfg;
      cfg.growth = g;
      cfg.staging_capacity = 96;
      return cola::Gcola<>(cfg);
    });
  }
}

TEST(MixedOpFuzz, ColaFilterSimdAblationCorners) {
  // The four knob corners of the data-parallel engine: fingerprint filters
  // on/off x SIMD kernels on/off. The differential oracle must be blind to
  // both — filters may only skip DEFINITELY-absent segments (a false
  // negative would surface here as a find divergence), and the vector
  // kernels are contractually bit-identical to the scalar reference the
  // simd=false arm runs. ingest_tuned already fuzzes the default corner
  // (filters on, simd on) in ColaStaged; these arms pin the other three
  // plus an explicit all-on corner on the pure-tiered (unstaged) mode.
  for (const bool filters : {false, true}) {
    for (const bool use_simd : {false, true}) {
      const std::string label = std::string("cola-staged-filters") +
                                (filters ? "1" : "0") + "-simd" +
                                (use_simd ? "1" : "0");
      fuzz_config(label, [filters, use_simd] {
        cola::ColaConfig cfg = cola::ingest_tuned(8, 24);
        cfg.filters = filters;
        cfg.simd = use_simd;
        return cola::Gcola<>(cfg);
      }, 900);
    }
  }
  fuzz_config("cola-tiered-filters1-simd1", [] {
    cola::ColaConfig cfg;
    cfg.growth = 4;
    cfg.pointer_density = 0.0;
    cfg.tiered = true;
    cfg.filters = true;
    return cola::Gcola<>(cfg);
  }, 900);
}

TEST(MixedOpFuzz, ColaBackgroundCompaction) {
  // Background-compaction arms: deep tiered folds defer to the process
  // pool and install below post-snapshot arrivals at a later mutation.
  // The differential oracle (finds, ranges, cursors, held snapshots,
  // invariants) must be blind to whether a fold ran inline or deferred.
  // The deferred-install arm suppresses opportunistic installs so folds
  // stay in flight across the longest possible mutation/read windows.
  for (const unsigned c : {1u, 2u}) {
    fuzz_config("cola-bg" + std::to_string(c), [c] {
      cola::ColaConfig cfg = cola::ingest_tuned(8, 24);
      cfg.compaction_threads = c;
      return cola::Gcola<>(cfg);
    });
    fuzz_config("cola-bg" + std::to_string(c) + "-deferred-install", [c] {
      cola::ColaConfig cfg = cola::ingest_tuned(2, 8);
      cfg.compaction_threads = c;
      cfg.unsafe_defer_install = true;
      return cola::Gcola<>(cfg);
    });
  }
  // Tight retention + background: forced tombstone folds become scheduled
  // compactions with the forced priority class.
  fuzz_config("cola-bg2-tight-threshold", [] {
    cola::ColaConfig cfg = cola::ingest_tuned(8, 24);
    cfg.compaction_threads = 2;
    cfg.tombstone_threshold = 0.05;
    return cola::Gcola<>(cfg);
  });
}

TEST(MixedOpFuzz, BackgroundCompactionPlantedBugOracleBites) {
  // Self-test for the compaction oracle: unsafe_break_install_order makes
  // a finished fold install ABOVE segments that arrived after its snapshot
  // point, so stale fold output shadows newer values — the differential
  // harness must catch that as a divergence on some seed. If every seed
  // passes, the fuzz arms above are toothless against install-ordering
  // bugs and this suite must fail.
  // g >= 3 is essential: with g = 2 a level holds at most one segment, so
  // nothing can ever stack above an in-flight fold at its target level
  // (level_committed_full blocks the arrival) and the bug has no window.
  std::optional<Divergence> fail;
  for (const unsigned g : {8u, 4u}) {
    auto make = [g] {
      cola::ColaConfig cfg = cola::ingest_tuned(g, 8);
      cfg.compaction_threads = 1;
      cfg.unsafe_defer_install = true;  // maximize arrivals above the fold
      cfg.unsafe_break_install_order = true;
      return cola::Gcola<>(cfg);
    };
    for (std::uint64_t seed = 1; seed <= 24 && !fail; ++seed) {
      fail = replay_fresh(make, make_trace(seed, 2000, 400));
    }
    if (fail) break;
  }
  ASSERT_TRUE(fail.has_value())
      << "oracle missed a broken fold install ordering";
}

TEST(MixedOpFuzz, ColaTightTombstoneThreshold) {
  // An aggressive retention bound exercises the forced bottom folds on
  // every erase-heavy stretch of the trace.
  fuzz_config("cola-staged-tight-threshold", [] {
    cola::ColaConfig cfg = cola::ingest_tuned(8, 24);
    cfg.tombstone_threshold = 0.05;
    return cola::Gcola<>(cfg);
  });
}

TEST(MixedOpFuzz, Shuttle) {
  for (const unsigned g : {2u, 4u, 8u, 16u}) {
    fuzz_config("shuttle-g" + std::to_string(g), [g] {
      shuttle::ShuttleConfig cfg;
      cfg.growth = g;
      return shuttle::ShuttleTree<>(cfg);
    });
  }
}

TEST(MixedOpFuzz, Deamortized) {
  for (const unsigned g : {2u, 4u, 8u, 16u}) {
    fuzz_config("deam-g" + std::to_string(g),
                [g] { return cola::DeamortizedCola<>(g); }, 900);
  }
}

TEST(MixedOpFuzz, DeamortizedFc) {
  for (const unsigned g : {2u, 4u, 8u, 16u}) {
    fuzz_config("fc-deam-g" + std::to_string(g),
                [g] { return cola::DeamortizedFcCola<>(g); }, 900);
  }
}

TEST(MixedOpFuzz, Baselines) {
  fuzz_config("btree", [] { return btree::BTree<>(512); });
  fuzz_config("brt", [] { return brt::Brt<>(512); });
  fuzz_config("cob", [] { return cob::CobTree<>(); }, 1000);
}

/// Splitters spreading the fuzz universe (default 400) over S shards, so
/// the sharded arms genuinely scatter, drain, and fuse across shards
/// instead of degenerating into shard 0.
std::vector<Key> fuzz_splitters(std::size_t shards, Key universe = 400) {
  std::vector<Key> sp;
  for (std::size_t i = 1; i < shards; ++i) sp.push_back(universe * i / shards);
  return sp;
}

TEST(MixedOpFuzz, ShardedColaCascadeModes) {
  // The concrete hot path: Gcola inners across the cascade modes, behind
  // real worker threads and SPSC queues. Interleaved finds (barrier-free,
  // served from the pending overlay + published views while the worker
  // races ahead), ingest_then_find read-your-writes probes, ranges, and
  // cursor ops; S = 1 is the single-worker degenerate case.
  for (const std::size_t s : {1u, 2u, 4u}) {
    for (const unsigned g : {2u, 8u}) {
      fuzz_config("sharded-s" + std::to_string(s) + "-staged-g" + std::to_string(g),
                  [s, g] {
                    shard::ShardedConfig<> sc;
                    sc.shards = s;
                    sc.splitters = fuzz_splitters(s);
                    return shard::ShardedDictionary<cola::Gcola<>>(
                        sc, [g](std::size_t) {
                          return cola::Gcola<>(cola::ingest_tuned(g, 24));
                        });
                  },
                  900);
    }
    fuzz_config("sharded-s" + std::to_string(s) + "-classic",
                [s] {
                  shard::ShardedConfig<> sc;
                  sc.shards = s;
                  sc.splitters = fuzz_splitters(s);
                  return shard::ShardedDictionary<cola::Gcola<>>(
                      sc, [](std::size_t) {
                        return cola::Gcola<>(cola::ColaConfig{2, 0.1});
                      });
                },
                900);
  }
}

TEST(MixedOpFuzz, ShardedBackgroundCompaction) {
  // compaction_threads in {1, 2} x S in {1, 2, 4}: shard worker threads
  // submit folds to the ONE shared pool while the facade's barrier-free
  // reads and held snapshots race the installs.
  for (const std::size_t s : {1u, 2u, 4u}) {
    for (const unsigned c : {1u, 2u}) {
      fuzz_config("sharded-s" + std::to_string(s) + "-bg" + std::to_string(c),
                  [s, c] {
                    shard::ShardedConfig<> sc;
                    sc.shards = s;
                    sc.splitters = fuzz_splitters(s);
                    return shard::ShardedDictionary<cola::Gcola<>>(
                        sc, [c](std::size_t) {
                          cola::ColaConfig cfg = cola::ingest_tuned(8, 24);
                          cfg.compaction_threads = c;
                          return cola::Gcola<>(cfg);
                        });
                  },
                  900);
    }
  }
}

TEST(MixedOpFuzz, ShardedEveryInnerPreset) {
  // Every structure kind as the shard inner (type-erased), S in {2, 4} —
  // the facade's semantics must be kind-independent.
  for (const char* kind :
       {"cola", "shuttle", "deam", "fc-deam", "btree", "brt", "cob"}) {
    for (const std::size_t s : {2u, 4u}) {
      fuzz_config(
          std::string("sharded-any-") + kind + "-s" + std::to_string(s),
          [kind, s] {
            shard::ShardedConfig<> sc;
            sc.shards = s;
            sc.splitters = fuzz_splitters(s);
            return shard::ShardedDictionary<api::AnyDictionary>(
                sc, [kind](std::size_t) {
                  return api::make_dictionary(kind,
                                              api::DictConfig::ingest_tuned(8, 24));
                });
          },
          500);
    }
  }
}

TEST(MixedOpFuzz, ShardedSnapshotHoldersAcrossShardCounts) {
  // The acceptance sweep for snapshot isolation behind the facade: S in
  // {1, 2, 4} (1 = the single-worker degenerate case), staged Gcola
  // inners whose folds keep retiring the very segments the held snapshots
  // pin. Longer traces bias toward more take/verify pairs per run; the
  // drain barrier inside snapshot() races real worker threads here.
  for (const std::size_t s : {1u, 2u, 4u}) {
    fuzz_config("sharded-snap-s" + std::to_string(s),
                [s] {
                  shard::ShardedConfig<> sc;
                  sc.shards = s;
                  sc.splitters = fuzz_splitters(s);
                  return shard::ShardedDictionary<cola::Gcola<>>(
                      sc, [](std::size_t) {
                        return cola::Gcola<>(cola::ingest_tuned(2, 24));
                      });
                },
                1200);
  }
}

TEST(MixedOpFuzz, ShardedLearnedSplittersViaPresets) {
  // The make_dictionary(cfg.shards > 1) path: splitters learn from the
  // first batch (or fall back to key-prefix defaults when the trace opens
  // with a single op) — both must be invisible to the differential oracle.
  for (const unsigned g : {2u, 8u}) {
    fuzz_config("sharded-presets-cola-g" + std::to_string(g),
                [g] {
                  return api::make_dictionary(
                      "cola", api::DictConfig::concurrent(g, 4, 24));
                },
                600);
  }
}

TEST(MixedOpFuzz, AnyDictionaryPresets) {
  // The type-erased facade forwards erase_batch/apply_batch faithfully for
  // every kind x ingest-tuned preset (DictConfig threading included).
  for (const char* kind : {"cola", "shuttle", "deam", "fc-deam", "btree", "brt", "cob"}) {
    for (const unsigned g : {2u, 8u}) {
      fuzz_config(
          std::string("any-") + kind + "-g" + std::to_string(g),
          [kind, g] {
            return api::make_dictionary(kind, api::DictConfig::ingest_tuned(g, 24));
          },
          600);
    }
  }
}

}  // namespace
}  // namespace costream
