// Genericity tests: the structures are templated on key/value types; prove
// they work with a non-trivial ordered key (composite) and a non-POD value.
// This guards against accidental uint64_t assumptions creeping into the
// implementations (e.g. the COLA's lookahead machinery must not depend on
// the value type, since targets moved to a dedicated field).
#include <gtest/gtest.h>

#include <compare>
#include <cstdint>
#include <map>
#include <string>

#include "brt/brt.hpp"
#include "btree/btree.hpp"
#include "cola/cola.hpp"
#include "cola/deamortized_cola.hpp"
#include "shuttle/shuttle_tree.hpp"

namespace costream {
namespace {

// A composite key: (shard, sequence). Ordered lexicographically.
struct ShardKey {
  std::uint32_t shard = 0;
  std::uint64_t seq = 0;
  friend constexpr auto operator<=>(const ShardKey&, const ShardKey&) = default;
};

// A value with real copy semantics.
struct Payload {
  std::string body;
  friend bool operator==(const Payload& a, const Payload& b) { return a.body == b.body; }
};

ShardKey key_of(std::uint64_t i) {
  return ShardKey{static_cast<std::uint32_t>(i % 7), i * 2654435761u};
}

Payload value_of(std::uint64_t i) { return Payload{"v" + std::to_string(i)}; }

template <class D>
void exercise_generic(D& d) {
  std::map<ShardKey, Payload> ref;
  for (std::uint64_t i = 0; i < 3'000; ++i) {
    const ShardKey k = key_of(i);
    const Payload v = value_of(i);
    d.insert(k, v);
    ref[k] = v;
  }
  for (const auto& [k, v] : ref) {
    const auto got = d.find(k);
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(*got, v);
  }
  ASSERT_FALSE(d.find(ShardKey{99, 0}).has_value());
  // Overwrite a band of keys.
  for (std::uint64_t i = 0; i < 100; ++i) {
    d.insert(key_of(i), Payload{"updated"});
  }
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_EQ(d.find(key_of(i)).value().body, "updated");
  }
}

TEST(GenericTypes, Cola) {
  cola::Gcola<ShardKey, Payload> d;
  exercise_generic(d);
  d.check_invariants();
}

TEST(GenericTypes, BasicCola) {
  cola::Gcola<ShardKey, Payload> d(cola::ColaConfig{4, 0.0});
  exercise_generic(d);
  d.check_invariants();
}

TEST(GenericTypes, DeamortizedCola) {
  cola::DeamortizedCola<ShardKey, Payload> d;
  exercise_generic(d);
  d.check_invariants();
}

TEST(GenericTypes, BTree) {
  btree::BTree<ShardKey, Payload> d(512);
  exercise_generic(d);
  d.check_invariants();
}

TEST(GenericTypes, Brt) {
  brt::Brt<ShardKey, Payload> d(512);
  exercise_generic(d);
  d.check_invariants();
}

TEST(GenericTypes, Shuttle) {
  shuttle::ShuttleTree<ShardKey, Payload> d;
  exercise_generic(d);
  d.check_invariants();
}

TEST(GenericTypes, ColaRangeOverComposite) {
  cola::Gcola<ShardKey, Payload> d;
  for (std::uint64_t i = 0; i < 1'000; ++i) {
    d.insert(ShardKey{static_cast<std::uint32_t>(i % 4), i}, value_of(i));
  }
  // Range = everything in shard 2.
  std::uint64_t count = 0;
  d.range_for_each(ShardKey{2, 0}, ShardKey{2, ~0ULL}, [&](const ShardKey& k, const Payload&) {
    ASSERT_EQ(k.shard, 2u);
    ++count;
  });
  EXPECT_EQ(count, 250u);
}

TEST(GenericTypes, BTreeEraseComposite) {
  btree::BTree<ShardKey, Payload> d(512);
  for (std::uint64_t i = 0; i < 2'000; ++i) d.insert(key_of(i), value_of(i));
  for (std::uint64_t i = 0; i < 2'000; i += 2) {
    ASSERT_TRUE(d.erase(key_of(i)));
  }
  d.check_invariants();
  for (std::uint64_t i = 0; i < 2'000; ++i) {
    EXPECT_EQ(d.find(key_of(i)).has_value(), i % 2 == 1) << i;
  }
}

}  // namespace
}  // namespace costream
