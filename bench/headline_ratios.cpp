// The paper's Section-4 headline numbers, regenerated as one table:
//
//   "Our COLA implementation runs 790 times faster for random insertions,
//    3.1 times slower for insertions of sorted data, and 3.5 times slower
//    for searches."  (plus the 2-vs-4-vs-8-COLA ratios quoted in the text)
//
// This binary runs compact versions of the Figure 2-4 workloads and prints
// paper-vs-measured rows; EXPERIMENTS.md records a full run.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_common.hpp"
#include "btree/btree.hpp"
#include "cola/cola.hpp"
#include "common/rng.hpp"

namespace cb = costream::bench;
using namespace costream;

namespace {

struct Measured {
  double random_insert_cola_over_btree;   // paper: 790
  double sorted_insert_btree_over_cola4;  // paper: 3.1
  double search_btree_over_cola4;         // paper: 3.5
  double random_cola4_over_cola2;         // paper: 1.1
  double sorted_cola4_over_cola2;         // paper: 1.1
  double random_cola4_over_cola8;         // paper: 1.4
  double search_cola4_over_cola2;         // paper: 1.4
};

/// Effective rate = min(wall, modeled): the binding resource wins. The
/// paper's out-of-core COLA was CPU-bound while its B-tree was seek-bound.
template <class D>
double effective_insert_rate(D& d, dam::dam_mem_model& mm, const KeyStream& ks) {
  Timer t;
  for (std::uint64_t i = 0; i < ks.size(); ++i) d.insert(ks.key_at(i), i);
  const double wall = static_cast<double>(ks.size()) / t.seconds();
  const double secs = mm.modeled_seconds();
  const double modeled = secs > 0 ? static_cast<double>(ks.size()) / secs : wall;
  return std::min(wall, modeled);
}

/// Wall-clock rate — the paper-comparable number for the CPU-bound arms
/// (sorted inserts keep both structures' working sets cached; see Fig 3).
template <class D>
double wall_insert_rate(D& d, const KeyStream& ks) {
  Timer t;
  for (std::uint64_t i = 0; i < ks.size(); ++i) d.insert(ks.key_at(i), i);
  return static_cast<double>(ks.size()) / t.seconds();
}

template <class D>
double modeled_search_rate(const D& d, dam::dam_mem_model& mm, const KeyStream& built,
                           std::uint64_t searches, std::uint64_t seed) {
  mm.clear_cache();
  mm.reset_stats();
  Xoshiro256 rng(seed);
  for (std::uint64_t q = 0; q < searches; ++q) {
    (void)d.find(built.key_at(rng.below(built.size())));
  }
  const double secs = mm.modeled_seconds();
  return secs > 0 ? static_cast<double>(searches) / secs : 0.0;
}

}  // namespace

int main() {
  const BenchOptions opts = BenchOptions::from_env(1ULL << 20);
  const std::uint64_t mem = cb::scaled_memory_bytes(opts.max_n);
  const std::uint64_t searches = std::min<std::uint64_t>(1ULL << 14, opts.max_n);
  std::printf("Headline ratios at N=%llu (paper ran N=2^30; shapes, not absolutes)\n",
              static_cast<unsigned long long>(opts.max_n));

  Measured m{};
  const KeyStream random_keys(KeyOrder::kRandom, opts.max_n, opts.seed);
  const KeyStream sorted_keys(KeyOrder::kDescending, opts.max_n, opts.seed);

  auto make_cola = [&](unsigned g) {
    return cola::Gcola<Key, Value, dam::dam_mem_model>(
        cola::ColaConfig{g, 0.1}, dam::dam_mem_model(4096, mem));
  };

  // Random inserts (Fig 2 arm): effective = min(wall, modeled).
  double rate_cola2_rand, rate_cola4_rand, rate_cola8_rand, rate_btree_rand;
  {
    auto c2 = make_cola(2);
    rate_cola2_rand = effective_insert_rate(c2, c2.mm(), random_keys);
    auto c4 = make_cola(4);
    rate_cola4_rand = effective_insert_rate(c4, c4.mm(), random_keys);
    auto c8 = make_cola(8);
    rate_cola8_rand = effective_insert_rate(c8, c8.mm(), random_keys);
    btree::BTree<Key, Value, dam::dam_mem_model> b(4096, dam::dam_mem_model(4096, mem));
    rate_btree_rand = effective_insert_rate(b, b.mm(), random_keys);
  }
  m.random_insert_cola_over_btree = rate_cola2_rand / rate_btree_rand;
  m.random_cola4_over_cola2 = rate_cola4_rand / rate_cola2_rand;
  m.random_cola4_over_cola8 = rate_cola4_rand / rate_cola8_rand;

  // Sorted inserts (Fig 3 arm; CPU-bound in the paper, so wall clock) +
  // searches on the sorted build (Fig 4 arm; disk-bound, so modeled).
  {
    auto c2 = make_cola(2);
    const double sc2 = wall_insert_rate(c2, sorted_keys);
    auto c4 = make_cola(4);
    const double sc4 = wall_insert_rate(c4, sorted_keys);
    btree::BTree<Key, Value, dam::dam_mem_model> b(4096, dam::dam_mem_model(4096, mem));
    const double sb = wall_insert_rate(b, sorted_keys);
    m.sorted_insert_btree_over_cola4 = sb / sc4;
    m.sorted_cola4_over_cola2 = sc4 / sc2;

    const double q_c2 = modeled_search_rate(c2, c2.mm(), sorted_keys, searches, 7);
    const double q_c4 = modeled_search_rate(c4, c4.mm(), sorted_keys, searches, 7);
    const double q_b = modeled_search_rate(b, b.mm(), sorted_keys, searches, 7);
    m.search_btree_over_cola4 = q_b / q_c4;
    m.search_cola4_over_cola2 = q_c4 / q_c2;
  }

  Table t({"metric", "paper", "measured"}, 44);
  auto row = [&](const char* metric, const char* paper, double val) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", val);
    t.add_row({metric, paper, buf});
  };
  row("random inserts: 2-COLA / B-tree", "790", m.random_insert_cola_over_btree);
  row("sorted inserts: B-tree / 4-COLA", "3.1", m.sorted_insert_btree_over_cola4);
  row("searches:       B-tree / 4-COLA", "3.5", m.search_btree_over_cola4);
  row("random inserts: 4-COLA / 2-COLA", "1.1", m.random_cola4_over_cola2);
  row("sorted inserts: 4-COLA / 2-COLA", "1.1", m.sorted_cola4_over_cola2);
  row("random inserts: 4-COLA / 8-COLA", "1.4", m.random_cola4_over_cola8);
  row("searches:       4-COLA / 2-COLA", "1.4", m.search_cola4_over_cola2);
  std::printf("\n");
  t.print();
  std::printf("\nNote: the 790x magnitude depends on N/M and seek:bandwidth"
              " ratios; at laptop scale the shape criterion is orders-of-"
              "magnitude COLA advantage on random inserts, and single-digit"
              " B-tree advantages on sorted inserts and searches.\n");
  return 0;
}
