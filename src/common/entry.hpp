// The element type shared by every dictionary in the library.
//
// The paper's experimental setup (Section 4) stores 64-bit keys and 64-bit
// values padded to 32 bytes per element, with some of the padding reused for
// lookahead-pointer bookkeeping. We keep Entry minimal (key + value) and let
// each structure add its own bookkeeping fields, which is equivalent and
// keeps the public API clean.
#pragma once

#include <algorithm>
#include <compare>
#include <concepts>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

namespace costream {

using Key = std::uint64_t;
using Value = std::uint64_t;

/// A key/value pair. Ordered by key only: dictionaries never compare values.
template <class K = Key, class V = Value>
struct Entry {
  K key{};
  V value{};

  friend constexpr bool operator==(const Entry& a, const Entry& b) noexcept {
    return a.key == b.key;
  }
  friend constexpr auto operator<=>(const Entry& a, const Entry& b) noexcept {
    return a.key <=> b.key;
  }
};

/// One operation of a mixed put/erase batch (apply_batch — contract in
/// api/dictionary.hpp). `erase` marks a blind delete: the value is ignored
/// and the write-optimized structures carry it as a tombstone. Ordered by
/// key only, like Entry, so batch normalization (sort_dedup_newest_wins)
/// applies to Op runs unchanged — the LAST op on a key within a batch wins,
/// whether it is a put or an erase.
template <class K = Key, class V = Value>
struct Op {
  K key{};
  V value{};
  bool erase = false;

  static constexpr Op put(const K& k, const V& v) { return Op{k, v, false}; }
  static constexpr Op del(const K& k) { return Op{k, V{}, true}; }
};

/// Compare an entry against a bare key (heterogeneous lookups).
struct EntryKeyLess {
  template <class K, class V>
  constexpr bool operator()(const Entry<K, V>& e, const K& k) const noexcept {
    return e.key < k;
  }
  template <class K, class V>
  constexpr bool operator()(const K& k, const Entry<K, V>& e) const noexcept {
    return k < e.key;
  }
};

/// Stable bottom-up merge sort by `.key`, using caller-provided scratch
/// instead of std::stable_sort's internal temporary buffer — the batch
/// normalization path stays allocation-free once `scratch` reaches its
/// high-water capacity. Ties keep input order.
///
/// The inner merge is branch-light (conditional select + pointer bumps
/// instead of a taken/not-taken branch per element): merge passes over
/// random keys are mispredict-bound, and this sort sits on every batch
/// normalization hot path in the library.
template <class It>
void stable_sort_by_key(std::vector<It>& v, std::vector<It>& scratch) {
  const std::size_t n = v.size();
  scratch.resize(n);
  It* src = v.data();
  It* dst = scratch.data();
  for (std::size_t width = 1; width < n; width *= 2) {
    for (std::size_t lo = 0; lo < n; lo += 2 * width) {
      const std::size_t mid = std::min(lo + width, n);
      const std::size_t hi = std::min(lo + 2 * width, n);
      It* a = src + lo;
      It* ae = src + mid;
      It* b = ae;
      It* be = src + hi;
      It* w = dst + lo;
      while (a != ae && b != be) {
        const bool take_b = b->key < a->key;  // left run first on ties: stable
        It* pick = take_b ? b : a;            // pointer select: cmov, no branch
        *w++ = std::move(*pick);
        a += !take_b;
        b += take_b;
      }
      w = std::move(a, ae, w);
      std::move(b, be, w);
    }
    std::swap(src, dst);
  }
  if (src != v.data()) v.swap(scratch);
}

/// True when the run is already sorted by key ascending (duplicates
/// allowed). One O(n) pass — cheap insurance that lets presorted feeds
/// (log-structured sources, merge outputs, replication streams) skip the
/// merge sort entirely.
template <class It>
bool is_sorted_by_key(const std::vector<It>& v) noexcept {
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i].key < v[i - 1].key) return false;
  }
  return true;
}

/// Stable LSD radix sort by an unsigned-integral `.key` — byte passes with
/// counting scatters: zero comparisons, zero branch mispredicts, which on
/// random keys beats any merge sort by ~3x. Passes whose byte is uniform
/// across the run (common for small key ranges) are skipped. Used by
/// sort_dedup_newest_wins when the key type allows; ties keep input order
/// (counting sort is stable), so newest-wins dedup semantics are identical
/// to the merge-sort path.
template <class It>
  requires std::unsigned_integral<decltype(It::key)>
void radix_sort_by_key(std::vector<It>& v, std::vector<It>& scratch) {
  using KeyT = decltype(It::key);
  const std::size_t n = v.size();
  if (n < 2) return;
  scratch.resize(n);
  It* src = v.data();
  It* dst = scratch.data();
  std::uint32_t hist[256];
  for (std::size_t pass = 0; pass < sizeof(KeyT); ++pass) {
    const unsigned shift = static_cast<unsigned>(pass * 8);
    std::memset(hist, 0, sizeof hist);
    for (std::size_t i = 0; i < n; ++i) {
      ++hist[static_cast<std::size_t>((src[i].key >> shift) & 0xff)];
    }
    // Uniform byte: every element lands in one bucket — nothing moves.
    if (hist[static_cast<std::size_t>((src[0].key >> shift) & 0xff)] == n) continue;
    std::uint32_t sum = 0;
    for (std::uint32_t& h : hist) {
      const std::uint32_t c = h;
      h = sum;
      sum += c;
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[hist[static_cast<std::size_t>((src[i].key >> shift) & 0xff)]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != v.data()) v.swap(scratch);
}

/// Stable sort by key ascending with the fastest applicable algorithm —
/// duplicates KEPT, in input order (the stable tie rule newest-wins dedup
/// relies on). Presorted feeds are detected in O(n) and skip the sort
/// outright; random integral-key runs take the radix sort, everything else
/// the branch-light merge sort. This is sort_dedup_newest_wins minus the
/// dedup pass — callers that dedup elsewhere (the SoA plane kernels in
/// cola/kernels.hpp dedup after widening) sort through here so both paths
/// share one algorithm-selection policy.
template <class It>
void sort_by_key(std::vector<It>& batch, std::vector<It>& scratch) {
  if (is_sorted_by_key(batch)) return;
  // Radix wins on larger runs of integral keys; below ~128 elements its
  // per-pass histogram work (256 counters x key bytes) dominates and the
  // merge sort is cheaper.
  if constexpr (std::unsigned_integral<decltype(It::key)>) {
    if (batch.size() >= 128) {
      radix_sort_by_key(batch, scratch);
      return;
    }
  }
  stable_sort_by_key(batch, scratch);
}

/// Normalize an ingest batch in place: stable-sort by key ascending and
/// collapse duplicate keys so the LAST occurrence in input order survives
/// (newest wins — matching repeated insert() calls). Works on any element
/// type with a `.key` member, so each structure can normalize batches of its
/// internal item type (tombstones ride along untouched). `scratch` is the
/// sort's merge buffer, reused across batches.
template <class It>
void sort_dedup_newest_wins(std::vector<It>& batch, std::vector<It>& scratch) {
  sort_by_key(batch, scratch);
  std::size_t w = 0;
  for (std::size_t r = 0; r < batch.size(); ++r) {
    if (r + 1 < batch.size() && batch[r + 1].key == batch[r].key) continue;
    if (w != r) batch[w] = std::move(batch[r]);
    ++w;
  }
  batch.resize(w);
}

}  // namespace costream
