// Shuttle tree bench — the paper's Section 2 claims, measured:
//
//   * searches stay O(log_{B+1} N) (like the CO B-tree / B-tree);
//   * inserts get cheaper than a plain SWBST / B-tree because elements move
//     down in buffered bulk (the buffers-on ablation arm);
//   * the Figure-1 layout: search transfers with vs without relayout().
#include <cmath>
#include <cstdio>

#include "bench/bench_common.hpp"
#include "btree/btree.hpp"
#include "cob/cob_tree.hpp"
#include "common/rng.hpp"
#include "shuttle/shuttle_tree.hpp"

namespace cb = costream::bench;
using namespace costream;

namespace {

constexpr std::uint64_t kBlock = 4096;

struct Row {
  std::string name;
  double insert_tpo;
  double search_tpo;
};

template <class D>
Row measure(const std::string& name, D& d, dam::dam_mem_model& mm,
            const KeyStream& ks, std::uint64_t searches) {
  for (std::uint64_t i = 0; i < ks.size(); ++i) d.insert(ks.key_at(i), i);
  const double ins =
      static_cast<double>(mm.stats().transfers) / static_cast<double>(ks.size());
  Xoshiro256 rng(23);
  std::uint64_t total = 0;
  for (std::uint64_t q = 0; q < searches; ++q) {
    mm.clear_cache();
    mm.reset_stats();
    (void)d.find(ks.key_at(rng.below(ks.size())));
    total += mm.stats().transfers;
  }
  return Row{name, ins, static_cast<double>(total) / static_cast<double>(searches)};
}

}  // namespace

int main() {
  const BenchOptions opts = BenchOptions::from_env(1ULL << 19);
  const std::uint64_t mem = cb::scaled_memory_bytes(opts.max_n);
  const std::uint64_t searches = opts.fast ? 20 : 200;
  const KeyStream ks(KeyOrder::kRandom, opts.max_n, opts.seed);
  std::printf("Shuttle tree vs baselines, N=%llu, B=4096, M=%s\n\n",
              static_cast<unsigned long long>(opts.max_n),
              format_bytes(static_cast<double>(mem)).c_str());

  std::vector<Row> rows;
  std::uint64_t flushes = 0, buffered = 0;
  {
    shuttle::ShuttleTree<Key, Value, dam::dam_mem_model> d(
        shuttle::ShuttleConfig{}, dam::dam_mem_model(kBlock, mem));
    rows.push_back(measure("shuttle (buffers on)", d, d.mm(), ks, searches));
    flushes = d.stats().buffer_flushes;
    buffered = d.buffered_items();
  }
  {
    shuttle::ShuttleConfig cfg;
    cfg.use_buffers = false;
    shuttle::ShuttleTree<Key, Value, dam::dam_mem_model> d(
        cfg, dam::dam_mem_model(kBlock, mem));
    rows.push_back(measure("SWBST (buffers off)", d, d.mm(), ks, searches));
  }
  {
    cob::CobTree<Key, Value, dam::dam_mem_model> d{dam::dam_mem_model(kBlock, mem)};
    rows.push_back(measure("CO B-tree", d, d.mm(), ks, searches));
  }
  {
    btree::BTree<Key, Value, dam::dam_mem_model> d(kBlock, dam::dam_mem_model(kBlock, mem));
    rows.push_back(measure("B-tree", d, d.mm(), ks, searches));
  }

  Table t({"structure", "insert transfers/op", "search transfers/op (cold)"}, 28);
  for (const Row& r : rows) {
    char a[32], b[32];
    std::snprintf(a, sizeof a, "%.4f", r.insert_tpo);
    std::snprintf(b, sizeof b, "%.2f", r.search_tpo);
    t.add_row({r.name, a, b});
  }
  t.print();
  std::printf("\nshuttle buffer flushes: %llu, items still buffered: %llu\n",
              static_cast<unsigned long long>(flushes),
              static_cast<unsigned long long>(buffered));

  // Layout ablation: fresh-region addresses vs Figure-1 layout.
  {
    shuttle::ShuttleTree<Key, Value, dam::dam_mem_model> d(
        shuttle::ShuttleConfig{}, dam::dam_mem_model(kBlock, mem));
    for (std::uint64_t i = 0; i < ks.size(); ++i) d.insert(ks.key_at(i), i);
    Xoshiro256 rng(29);
    auto probe = [&](const char* label) {
      std::uint64_t total = 0;
      for (std::uint64_t q = 0; q < searches; ++q) {
        d.mm().clear_cache();
        d.mm().reset_stats();
        (void)d.find(ks.key_at(rng.below(ks.size())));
        total += d.mm().stats().transfers;
      }
      std::printf("search transfers %-28s %.2f\n", label,
                  static_cast<double>(total) / static_cast<double>(searches));
    };
    probe("(incremental layout):");
    d.relayout();
    probe("(fresh Figure-1 relayout):");
  }
  return 0;
}
