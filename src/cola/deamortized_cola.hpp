// Deamortized (basic) COLA — paper Section 3, Lemma 21 / Theorem 22,
// generalized to a runtime growth factor g.
//
// The amortized COLA occasionally performs a merge that touches the entire
// structure (Theta(N) work on one unlucky insert). The deamortization bounds
// every insert by O(g log_g N) moves while keeping the amortized transfer
// cost:
//
//  * every level k keeps g arrays of capacity g^k (the paper's construction
//    is the g = 2 point: two arrays of 2^k);
//  * a level is "unsafe" while all g of its arrays hold items; unsafe levels
//    are g-way merged incrementally into an empty array of the next level;
//  * each insert places its item into level 0 and then spends a move budget
//    of m = g*k + 2 (k = number of levels) advancing merges, scanning unsafe
//    levels left to right;
//  * Lemma 21 (generalized): with this budget two adjacent levels are never
//    simultaneously unsafe, so a merge always finds an empty target array —
//    a level refills only after g full deliveries from the level above,
//    which takes at least as long as its own merge drains at g moves per
//    insert.
//
// Queries see only completed ("full") arrays: an in-progress merge copies
// items, sources stay visible until the merge completes, and the partially
// filled target is hidden — so a query never observes a half-merged level.
// (This is the basic deamortization; the lookahead-pointer variant with
// shadow/visible arrays, Theorem 24, is in deamortized_fc_cola.hpp.)
//
// Same upsert/tombstone semantics as Gcola. Arrays carry fill sequence
// numbers so "newest wins" is well defined across the g arrays of a level.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/entry.hpp"
#include "common/loser_tree.hpp"
#include "common/snapshot.hpp"
#include "common/span.hpp"
#include "dam/mem_model.hpp"

namespace costream::cola {

struct DeamortizedStats {
  std::uint64_t inserts = 0;
  std::uint64_t merges_started = 0;
  std::uint64_t merges_completed = 0;
  std::uint64_t total_moves = 0;
  std::uint64_t max_moves_per_insert = 0;  // the worst-case bound under test
};

template <class K = Key, class V = Value, class MM = dam::null_mem_model>
class DeamortizedCola {
 public:
  explicit DeamortizedCola(unsigned growth = 2, MM mm = MM{})
      : growth_(growth), mm_(std::move(mm)) {
    if (growth_ < 2 || growth_ > 256) {
      throw std::invalid_argument("deamortized cola: growth must be in [2, 256]");
    }
    ensure_level(0);
  }
  explicit DeamortizedCola(MM mm) : DeamortizedCola(2, std::move(mm)) {}

  unsigned growth() const noexcept { return growth_; }
  const DeamortizedStats& stats() const noexcept { return stats_; }
  MM& mm() noexcept { return mm_; }
  std::size_t level_count() const noexcept { return levels_.size(); }

  /// Physical items currently held in full (queryable) arrays plus items in
  /// unsafe sources not yet superseded. (Copies in in-progress merge targets
  /// are not double counted: targets are invisible until completion.)
  std::uint64_t item_count() const noexcept {
    std::uint64_t n = 0;
    for (const Level& lv : levels_) {
      for (std::size_t a = 0; a < lv.arr.size(); ++a) {
        if (lv.state[a] == State::kFull) n += lv.arr[a].size();
      }
    }
    return n;
  }

  void insert(const K& key, const V& value) { put(key, value, false); }
  void erase(const K& key) { put(key, V{}, true); }

  /// Bulk upsert (batch contract in api/dictionary.hpp). The deamortized
  /// machinery moves a budgeted number of items per operation — a batch
  /// cannot shortcut the level walk without breaking the worst-case move
  /// bound — so the batch is normalized once (sort + newest-wins dedup) and
  /// fed through the budgeted path: duplicates are collapsed up front and
  /// the incremental merges see sorted, cache-friendly input.
  void insert_batch(Span<Entry<K, V>> batch) {
    if (batch.empty()) return;
    std::vector<Entry<K, V>>& run = batch_scratch_;
    run.assign(batch.begin(), batch.end());
    sort_dedup_newest_wins(run, batch_sort_scratch_);
    for (const Entry<K, V>& e : run) put(e.key, e.value, false);
  }

  /// Bulk blind delete (batch contract in api/dictionary.hpp): duplicate
  /// keys collapse to one tombstone, then each rides the budgeted path. A
  /// tombstone is an item to the incremental merges — advance_merge moves
  /// and (at the deepest data) drops it within the same per-op budget of
  /// g*k + 2 moves — so Lemma 21's worst-case bound is unchanged for
  /// erase-heavy feeds (max_moves_per_insert stays under test).
  void erase_batch(Span<K> keys) {
    if (keys.empty()) return;
    std::vector<Op<K, V>>& run = op_scratch_;
    run.clear();
    run.reserve(keys.size());
    for (const K& k : keys) run.push_back(Op<K, V>::del(k));
    sort_dedup_newest_wins(run, op_sort_scratch_);
    for (const Op<K, V>& o : run) put(o.key, o.value, true);
  }

  /// Mixed put/erase batch: normalize once (the LAST op on a key wins,
  /// put-vs-erase included) and feed the budgeted path — the deamortized
  /// machinery cannot shortcut the level walk without breaking the
  /// worst-case move bound, so batching buys the dedup and sorted,
  /// cache-friendly input, not fewer budget charges.
  void apply_batch(Span<Op<K, V>> ops) {
    if (ops.empty()) return;
    std::vector<Op<K, V>>& run = op_scratch_;
    run.assign(ops.begin(), ops.end());
    sort_dedup_newest_wins(run, op_sort_scratch_);
    for (const Op<K, V>& o : run) put(o.key, o.value, o.erase);
  }

  // Deprecated pointer-form batch shims (one release; migration note in
  // api/dictionary.hpp — CI's deprecated-api lint rejects in-repo callers).
  void insert_batch(const Entry<K, V>* data, std::size_t n) {
    insert_batch(Span<Entry<K, V>>(data, n));
  }
  void erase_batch(const K* keys, std::size_t n) {
    erase_batch(Span<K>(keys, n));
  }
  void apply_batch(const Op<K, V>* ops, std::size_t n) {
    apply_batch(Span<Op<K, V>>(ops, n));
  }

  /// Mutation epoch: bumped by every mutator (see snapshot()).
  std::uint64_t mutation_epoch() const noexcept { return mutation_epoch_; }

  /// Point-in-time snapshot (contract in api/dictionary.hpp). The
  /// deamortized arrays are reused in place by the incremental merges, so
  /// the live contents materialize into one immutable segment, cached per
  /// mutation epoch; the handle stays valid across mutations.
  snap::Snapshot<K, V> snapshot() const {
    if (snap_cache_ && snap_epoch_ == mutation_epoch_) return snap_cache_;
    snap_cache_ = snap::materialize<K, V>(*this, mutation_epoch_);
    snap_epoch_ = mutation_epoch_;
    return snap_cache_;
  }

  std::optional<V> find(const K& key) const {
    // Newest wins: scan levels from the smallest, and within a level check
    // arrays in descending fill-sequence order. One pass collects the full
    // arrays into reusable scratch, one sort orders them — O(g log g) per
    // level, not O(g^2) of a repeated arg-max.
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      const Level& lv = levels_[l];
      auto& order = find_order_scratch_;
      order.clear();
      for (std::size_t i = 0; i < lv.arr.size(); ++i) {
        if (lv.state[i] == State::kFull) {
          order.emplace_back(lv.seq[i], static_cast<std::uint32_t>(i));
        }
      }
      std::sort(order.begin(), order.end(),
                [](const auto& x, const auto& y) { return x.first > y.first; });
      for (const auto& ord : order) {
        const std::size_t a = ord.second;
        const auto& arr = lv.arr[a];
        touch_binary_search(l, a, arr.size());
        const auto it =
            std::lower_bound(arr.begin(), arr.end(), key,
                             [](const Item& e, const K& k) { return e.key < k; });
        if (it != arr.end() && it->key == key) {
          if (it->tombstone) return std::nullopt;
          return it->value;
        }
      }
    }
    return std::nullopt;
  }

  /// Visit live entries in [lo, hi] ascending, newest value per key — one
  /// code path with the cursor API (bounded seek on the dictionary-owned
  /// scratch cursor, allocation-free in steady state).
  template <class Fn>
  void range_for_each(const K& lo, const K& hi, Fn&& fn) const {
    if (hi < lo) return;
    Cursor c(this, &scan_state_);
    for (c.seek(lo, hi); c.valid(); c.next()) {
      const Entry<K, V>& e = c.entry();
      fn(e.key, e.value);
    }
  }

  /// Visit every live entry ascending (dedicated unbounded scan; sentinel
  /// bounds would drop entries for floating-point or composite keys).
  template <class Fn>
  void for_each(Fn&& fn) const {
    Cursor c(this, &scan_state_);
    for (c.seek_first(); c.valid(); c.next()) {
      const Entry<K, V>& e = c.entry();
      fn(e.key, e.value);
    }
  }

  /// Lemma 21 under test: no two adjacent unsafe levels; unsafe levels have
  /// a consistent in-progress merge; arrays sorted with unique keys.
  void check_invariants() const {
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      const Level& lv = levels_[l];
      if (lv.unsafe && l + 1 < levels_.size() && levels_[l + 1].unsafe) {
        throw std::logic_error("deamortized cola: adjacent unsafe levels");
      }
      if (lv.unsafe) {
        for (std::size_t a = 0; a < lv.arr.size(); ++a) {
          if (lv.state[a] != State::kFull) {
            throw std::logic_error(
                "deamortized cola: unsafe level without all arrays full");
          }
        }
        if (l + 1 >= levels_.size()) {
          throw std::logic_error("deamortized cola: unsafe level without target level");
        }
        const Level& nxt = levels_[l + 1];
        if (nxt.state[lv.target_arr] != State::kFilling) {
          throw std::logic_error("deamortized cola: merge target not filling");
        }
      }
      for (std::size_t a = 0; a < lv.arr.size(); ++a) {
        if (lv.state[a] == State::kEmpty && !lv.arr[a].empty()) {
          throw std::logic_error("deamortized cola: nonempty empty array");
        }
        if (lv.arr[a].size() > array_cap(l)) {
          throw std::logic_error("deamortized cola: array overfull");
        }
        for (std::size_t i = 1; i < lv.arr[a].size(); ++i) {
          if (!(lv.arr[a][i - 1].key < lv.arr[a][i].key)) {
            throw std::logic_error("deamortized cola: array unsorted");
          }
        }
      }
    }
  }

 private:
  struct Item {
    K key;
    V value;
    bool tombstone;
  };

  enum class State : std::uint8_t { kEmpty, kFull, kFilling };

  struct Level {
    // g arrays per level; parallel state/seq/base vectors (sized at
    // ensure_level, never resized after).
    std::vector<std::vector<Item>> arr;
    std::vector<State> state;
    std::vector<std::uint64_t> seq;   // fill sequence; larger = newer
    std::vector<std::uint64_t> base;  // logical offsets for DAM accounting
    // In-progress g-way merge of THIS level's arrays into the next level:
    bool unsafe = false;
    std::vector<std::size_t> pos;  // cursor per source array
    std::size_t target_arr = 0;    // which array of level l+1 receives
    bool drop_tombstones = false;  // decided when the merge starts
  };

  // -- cursors ----------------------------------------------------------------

  struct CurSrc {
    const Item* at = nullptr;
    const Item* end = nullptr;
  };

  /// Reusable cursor scratch (high-water sized, allocation-free across
  /// seeks). Sources are ordered (level ascending, fill sequence descending
  /// within a level) — the newest-wins priority order — so the loser tree's
  /// smaller-index-wins tie rule surfaces the newest copy of every key.
  struct CursorState {
    std::vector<CurSrc> srcs;
    LoserTree<K> tree;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> order;
    Entry<K, V> cur{};
    bool valid = false;
    bool bounded = false;
    K hi{};
    K last{};
    bool have_last = false;
  };

 public:
  /// Resumable ordered cursor (Dictionary cursor contract in
  /// api/dictionary.hpp) over the full (queryable) arrays — an in-progress
  /// merge's hidden target is never surfaced, exactly like find(). Any
  /// mutation invalidates the cursor until the next seek; open a cursor on
  /// snapshot() instead for the pinned, mutation-proof semantics.
  class Cursor {
   public:
    Cursor() = default;

    void seek(const K& lo) { do_seek(&lo, nullptr); }
    void seek(const K& lo, const K& hi) {
      if (hi < lo) {
        st_->valid = false;
        return;
      }
      do_seek(&lo, &hi);
    }
    void seek_first() { do_seek(nullptr, nullptr); }

    bool valid() const { return st_->valid; }
    const Entry<K, V>& entry() const { return st_->cur; }

    void next() {
      CursorState& st = *st_;
      if (!st.valid) return;
      CurSrc& s = st.srcs[st.tree.top()];
      ++s.at;
      st.tree.replay(s.at != s.end, s.at != s.end ? s.at->key : K{});
      advance_to_live();
    }

   private:
    friend class DeamortizedCola;
    explicit Cursor(const DeamortizedCola* d)
        : d_(d), own_(std::make_unique<CursorState>()), st_(own_.get()) {}
    Cursor(const DeamortizedCola* d, CursorState* st) : d_(d), st_(st) {}

    void do_seek(const K* lo, const K* hi) {
      CursorState& st = *st_;
      const DeamortizedCola& d = *d_;
      st.bounded = hi != nullptr;
      if (hi != nullptr) st.hi = *hi;
      st.have_last = false;
      st.valid = false;
      st.srcs.clear();
      for (std::size_t l = 0; l < d.levels_.size(); ++l) {
        const Level& lv = d.levels_[l];
        auto& order = st.order;
        order.clear();
        for (std::size_t a = 0; a < lv.arr.size(); ++a) {
          if (lv.state[a] == State::kFull && !lv.arr[a].empty()) {
            order.emplace_back(lv.seq[a], static_cast<std::uint32_t>(a));
          }
        }
        std::sort(order.begin(), order.end(),
                  [](const auto& x, const auto& y) { return x.first > y.first; });
        for (const auto& ord : order) {
          const auto& arr = lv.arr[ord.second];
          const Item* b = arr.data();
          const Item* e = b + arr.size();
          if (lo != nullptr) {
            b = std::lower_bound(
                b, e, *lo, [](const Item& s, const K& k) { return s.key < k; });
          }
          if (b != e) st.srcs.push_back(CurSrc{b, e});
        }
      }
      st.tree.reset(st.srcs.size());
      for (std::size_t i = 0; i < st.srcs.size(); ++i) {
        st.tree.declare(i, st.srcs[i].at->key);
      }
      st.tree.build();
      advance_to_live();
    }

    void advance_to_live() {
      CursorState& st = *st_;
      while (st.tree.top_alive()) {
        CurSrc& s = st.srcs[st.tree.top()];
        const K& k = s.at->key;
        if (st.bounded && st.hi < k) break;
        const bool dup = st.have_last && !(st.last < k);
        if (!dup) {
          st.last = k;
          st.have_last = true;
          if (!s.at->tombstone) {
            st.cur.key = k;
            st.cur.value = s.at->value;
            st.valid = true;
            return;
          }
        }
        ++s.at;
        st.tree.replay(s.at != s.end, s.at != s.end ? s.at->key : K{});
      }
      st.valid = false;
    }

    const DeamortizedCola* d_ = nullptr;
    std::unique_ptr<CursorState> own_;
    CursorState* st_ = nullptr;
  };

  /// Detached cursor (Dictionary concept); creation allocates once, steady-
  /// state seeks and nexts allocate nothing.
  Cursor make_cursor() const { return Cursor(this); }

 private:

  /// Capacity of one array of level l: g^l (saturating).
  std::uint64_t array_cap(std::size_t l) const noexcept {
    std::uint64_t c = 1;
    for (std::size_t i = 0; i < l; ++i) {
      if (c > (std::uint64_t{1} << 58) / growth_) return std::uint64_t{1} << 58;
      c *= growth_;
    }
    return c;
  }

  void ensure_level(std::size_t l) {
    while (levels_.size() <= l) {
      Level lv;
      const std::uint64_t cap = array_cap(levels_.size());
      lv.arr.resize(growth_);
      lv.state.assign(growth_, State::kEmpty);
      lv.seq.assign(growth_, 0);
      lv.base.resize(growth_);
      lv.pos.assign(growth_, 0);
      for (unsigned a = 0; a < growth_; ++a) {
        lv.base[a] = next_base_;
        next_base_ += cap * sizeof(Item);
      }
      levels_.push_back(std::move(lv));
    }
  }

  void touch_binary_search(std::size_t l, std::size_t a, std::size_t n) const {
    // Account ~log2(n) probes of one Item each.
    std::size_t probes = 1;
    for (std::size_t m = n; m > 1; m >>= 1) ++probes;
    for (std::size_t i = 0; i < probes; ++i) {
      mm_.touch(levels_[l].base[a] + (n >> (i + 1)) * sizeof(Item), sizeof(Item));
    }
  }

  void put(const K& key, const V& value, bool tombstone) {
    ++mutation_epoch_;
    ++stats_.inserts;
    ensure_level(0);
    Level& l0 = levels_[0];
    std::size_t slot = l0.arr.size();
    for (std::size_t a = 0; a < l0.arr.size(); ++a) {
      if (l0.state[a] == State::kEmpty) {
        slot = a;
        break;
      }
    }
    // With budget m = g*k + 2 >= g + 2, an unsafe level 0 always finishes its
    // merge (g items) within one insert, so a free array must exist here.
    if (slot == l0.arr.size()) {
      throw std::logic_error("deamortized cola: level 0 has no free array");
    }
    l0.arr[slot].clear();
    l0.arr[slot].push_back(Item{key, value, tombstone});
    l0.state[slot] = State::kFull;
    l0.seq[slot] = ++seq_counter_;
    mm_.touch_write(l0.base[slot], sizeof(Item));
    maybe_start_merge(0);

    // Spend the move budget on unsafe levels, left to right.
    std::uint64_t budget = growth_ * levels_.size() + 2;
    std::uint64_t moves = 0;
    for (std::size_t l = 0; l < levels_.size() && budget > 0; ++l) {
      if (!levels_[l].unsafe) continue;
      moves += advance_merge(l, &budget);
    }
    stats_.total_moves += moves;
    stats_.max_moves_per_insert = std::max(stats_.max_moves_per_insert, moves);
  }

  /// If level l now holds items in all g arrays, begin the g-way merge into
  /// an empty array of level l+1.
  void maybe_start_merge(std::size_t l) {
    if (levels_[l].unsafe) return;
    for (std::size_t a = 0; a < levels_[l].arr.size(); ++a) {
      if (levels_[l].state[a] != State::kFull) return;
    }
    ensure_level(l + 1);  // may reallocate levels_: take references only after
    Level& lv = levels_[l];
    Level& nxt = levels_[l + 1];
    std::size_t tgt = nxt.arr.size();
    for (std::size_t a = 0; a < nxt.arr.size(); ++a) {
      if (nxt.state[a] == State::kEmpty) {
        tgt = a;
        break;
      }
    }
    // Lemma 21: adjacent levels are never simultaneously unsafe, so an empty
    // target must exist.
    if (tgt == nxt.arr.size()) {
      throw std::logic_error("deamortized cola: no empty target array");
    }
    lv.unsafe = true;
    std::fill(lv.pos.begin(), lv.pos.end(), std::size_t{0});
    lv.target_arr = tgt;
    nxt.state[tgt] = State::kFilling;
    nxt.arr[tgt].clear();
    std::size_t total = 0;
    for (const auto& src : lv.arr) total += src.size();
    nxt.arr[tgt].reserve(total);
    // Tombstones may be discarded iff nothing deeper can hold their key:
    // every level > l+1 empty and the sibling arrays at l+1 empty.
    bool deeper_data = false;
    for (std::size_t j = l + 1; j < levels_.size() && !deeper_data; ++j) {
      for (std::size_t a = 0; a < levels_[j].arr.size(); ++a) {
        if (j == l + 1 && a == tgt) continue;
        if (levels_[j].state[a] != State::kEmpty) deeper_data = true;
      }
    }
    lv.drop_tombstones = !deeper_data;
    ++stats_.merges_started;
  }

  /// Advance level l's g-way merge by up to *budget steps; each step emits
  /// the smallest remaining key (the newest copy by fill sequence) and
  /// consumes every source copy of that key. Decrements *budget by the steps
  /// performed and returns them. Completes the merge (and possibly cascades
  /// a new unsafe level) when the sources drain.
  std::uint64_t advance_merge(std::size_t l, std::uint64_t* budget) {
    Level& lv = levels_[l];
    Level& nxt = levels_[l + 1];
    auto& out = nxt.arr[lv.target_arr];
    std::uint64_t moves = 0;

    while (*budget > 0) {
      // Smallest key among unfinished sources; ties resolved to the newest
      // (largest seq) copy.
      std::size_t win = lv.arr.size();
      for (std::size_t a = 0; a < lv.arr.size(); ++a) {
        if (lv.pos[a] >= lv.arr[a].size()) continue;
        if (win == lv.arr.size()) {
          win = a;
          continue;
        }
        const K& ka = lv.arr[a][lv.pos[a]].key;
        const K& kw = lv.arr[win][lv.pos[win]].key;
        if (ka < kw || (ka == kw && lv.seq[a] > lv.seq[win])) win = a;
      }
      if (win == lv.arr.size()) break;  // sources drained
      const Item item = lv.arr[win][lv.pos[win]];
      // Consume every copy of this key (the non-winners are shadowed).
      for (std::size_t a = 0; a < lv.arr.size(); ++a) {
        if (lv.pos[a] < lv.arr[a].size() && lv.arr[a][lv.pos[a]].key == item.key) {
          ++lv.pos[a];
          mm_.touch(lv.base[a] + lv.pos[a] * sizeof(Item), sizeof(Item));
        }
      }
      if (!(item.tombstone && lv.drop_tombstones)) {
        out.push_back(item);
        mm_.touch_write(nxt.base[lv.target_arr] + out.size() * sizeof(Item),
                        sizeof(Item));
      }
      --*budget;
      ++moves;
    }

    bool drained = true;
    for (std::size_t a = 0; a < lv.arr.size(); ++a) {
      if (lv.pos[a] < lv.arr[a].size()) drained = false;
    }
    if (drained) {
      // Merge complete: sources become empty, target becomes visible.
      for (std::size_t a = 0; a < lv.arr.size(); ++a) {
        lv.arr[a].clear();
        lv.state[a] = State::kEmpty;
      }
      lv.unsafe = false;
      nxt.state[lv.target_arr] = State::kFull;
      nxt.seq[lv.target_arr] = ++seq_counter_;
      ++stats_.merges_completed;
      maybe_start_merge(l + 1);
    }
    return moves;
  }

  unsigned growth_;
  std::vector<Level> levels_;
  std::uint64_t next_base_ = 0;
  std::uint64_t seq_counter_ = 0;
  std::vector<Entry<K, V>> batch_scratch_, batch_sort_scratch_;  // batch staging, reused
  std::vector<Op<K, V>> op_scratch_, op_sort_scratch_;  // mixed-op staging, reused
  // find() array-ordering scratch (mutable: find is const, scratch reused).
  mutable std::vector<std::pair<std::uint64_t, std::uint32_t>> find_order_scratch_;
  // Dictionary-owned cursor scratch backing range_for_each/for_each.
  mutable CursorState scan_state_;
  // Snapshot cache: one materialized segment per mutation epoch (see snapshot()).
  std::uint64_t mutation_epoch_ = 0;
  mutable snap::Snapshot<K, V> snap_cache_;
  mutable std::uint64_t snap_epoch_ = 0;
  DeamortizedStats stats_;
  mutable MM mm_;
};

}  // namespace costream::cola
