// Immutable checksummed segment spill files — the on-disk form of one
// sorted Gcola segment once a fold past spill_depth lands it on storage.
//
// Layout:
//   [u64 magic "COSSEG01"]
//   block*   : [u32 crc32c(body)] [u32 count] count x { u64 k, u64 v, u8 f }
//   index    : per block { u64 offset, u32 count, u64 min_key, u64 max_key }
//   tail(32) : { u64 index_offset, u32 index_crc, u32 block_count,
//                u64 total_count, u64 magic }
//
// Entries are strictly ascending by key across the whole file; flags bit0
// marks a tombstone. The per-block (min_key, max_key) fences in the footer
// are the disk analogue of the in-memory fence-key vectors: a cursor seek
// binary-searches the fences and decodes only the one block that can hold
// the key. Blocks are decoded through a shared LRU BlockCache so repeated
// seeks into a hot block cost zero device reads.
//
// Every read path validates CRCs and structure before trusting a byte;
// any mismatch throws CorruptionError (never UB on a bit-flipped file).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/crc32c.hpp"
#include "storage/env.hpp"

namespace costream::storage {

inline constexpr std::uint64_t kSegmentMagic = 0x434f535345473031ULL;  // COSSEG01

struct SegmentEntry {
  std::uint64_t key;
  std::uint64_t value;
  std::uint8_t flags;  // bit0 = tombstone
};

inline constexpr std::uint8_t kEntryTombstone = 1;

namespace seg_detail {

inline constexpr std::size_t kEntryBytes = 17;
inline constexpr std::size_t kBlockHeaderBytes = 8;
inline constexpr std::size_t kIndexEntryBytes = 28;
inline constexpr std::size_t kTailBytes = 32;

inline void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out.append(b, 4);
}

inline void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.append(b, 8);
}

inline std::uint32_t get_u32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline std::uint64_t get_u64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline std::string segment_name(std::uint64_t seg_id) {
  return "seg-" + std::to_string(seg_id) + ".seg";
}

}  // namespace seg_detail

/// Streams ascending entries into a segment file. finish() writes the
/// footer and fsyncs; the caller still owns making the NAME durable
/// (sync_dir) before referencing the file from the manifest.
class SegmentWriter {
 public:
  SegmentWriter(StorageEnv& env, const std::string& name,
                std::size_t block_bytes = 4096)
      : file_(env.create(name)),
        entries_per_block_(std::max<std::size_t>(
            1, (block_bytes - seg_detail::kBlockHeaderBytes) /
                   seg_detail::kEntryBytes)) {
    out_.resize(kWriteChunkBytes);
    std::memcpy(out_.data(), &kSegmentMagic, 8);
    out_len_ = 8;
  }

  /// Entries arrive in ascending key order. They are encoded in place
  /// into a staging buffer that reaches the file in large chunks — at
  /// spill rates, per-entry string appends and a write(2) pair per block
  /// cost more than the encode itself.
  void add(const SegmentEntry& e) {
    if (in_block_ == 0) {
      begin_block();
      block_min_ = e.key;
    }
    std::memcpy(p_, &e.key, 8);
    std::memcpy(p_ + 8, &e.value, 8);
    p_[16] = static_cast<char>(e.flags);
    p_ += seg_detail::kEntryBytes;
    block_max_ = e.key;
    ++in_block_;
    ++total_count_;
    if (in_block_ >= entries_per_block_) end_block();
  }

  /// Flush the last block, write index + tail, fsync the file.
  void finish() {
    end_block();
    const std::uint64_t index_offset = flushed_ + out_len_;
    std::string index;
    index.reserve(index_.size() * seg_detail::kIndexEntryBytes);
    for (const auto& b : index_) {
      seg_detail::put_u64(index, b.offset);
      seg_detail::put_u32(index, b.count);
      seg_detail::put_u64(index, b.min_key);
      seg_detail::put_u64(index, b.max_key);
    }
    std::string tail;
    seg_detail::put_u64(tail, index_offset);
    seg_detail::put_u32(tail, crc32c(index.data(), index.size()));
    seg_detail::put_u32(tail, static_cast<std::uint32_t>(index_.size()));
    seg_detail::put_u64(tail, total_count_);
    seg_detail::put_u64(tail, kSegmentMagic);
    if (out_len_ > 0) file_->append(out_.data(), out_len_);
    out_len_ = 0;
    file_->append(index.data(), index.size());
    file_->append(tail.data(), tail.size());
    file_->sync();
  }

  std::uint64_t total_count() const noexcept { return total_count_; }

 private:
  struct BlockMeta {
    std::uint64_t offset;
    std::uint32_t count;
    std::uint64_t min_key;
    std::uint64_t max_key;
  };

  // Staged bytes reach the file in chunks of this size (plus whatever
  // finish() still holds) — one write(2) per ~16 blocks at the default
  // block size instead of two per block.
  static constexpr std::size_t kWriteChunkBytes = 256u << 10;

  /// Open a block: header placeholder plus room for a full block's
  /// entries. `p_` walks the entry region (stable until end_block — no
  /// resize happens while a block is open).
  void begin_block() {
    block_start_ = out_len_;
    const std::size_t need = seg_detail::kBlockHeaderBytes +
                             entries_per_block_ * seg_detail::kEntryBytes;
    if (out_len_ + need > out_.size()) {
      out_.resize(std::max(out_len_ + need, out_.size() * 2));
    }
    p_ = out_.data() + block_start_ + seg_detail::kBlockHeaderBytes;
  }

  /// Close the open block: trim to the entries actually written, patch
  /// the CRC/count header, record the fence keys, maybe drain the buffer.
  void end_block() {
    if (in_block_ == 0) return;
    const std::size_t body_len = in_block_ * seg_detail::kEntryBytes;
    out_len_ = block_start_ + seg_detail::kBlockHeaderBytes + body_len;
    char* base = out_.data() + block_start_;
    const std::uint32_t crc =
        crc32c(base + seg_detail::kBlockHeaderBytes, body_len);
    const std::uint32_t count32 = static_cast<std::uint32_t>(in_block_);
    std::memcpy(base, &crc, 4);
    std::memcpy(base + 4, &count32, 4);
    index_.push_back({flushed_ + block_start_, count32, block_min_, block_max_});
    in_block_ = 0;
    if (out_len_ >= kWriteChunkBytes) {
      file_->append(out_.data(), out_len_);
      flushed_ += out_len_;
      out_len_ = 0;
    }
  }

  std::unique_ptr<WritableFile> file_;
  std::size_t entries_per_block_;
  // Staging arena: out_[0, out_len_) holds encoded blocks not yet written;
  // out_.size() is capacity only (no zero-filling resize per block).
  std::string out_;
  std::size_t out_len_ = 0;
  std::uint64_t flushed_ = 0;
  std::size_t block_start_ = 0;
  char* p_ = nullptr;
  std::size_t in_block_ = 0;
  std::uint64_t block_min_ = 0;
  std::uint64_t block_max_ = 0;
  std::vector<BlockMeta> index_;
  std::uint64_t total_count_ = 0;
};

/// Shared LRU cache of decoded blocks, keyed by (file id, block index),
/// bounded by decoded byte size. Blocks are immutable shared_ptrs, so a
/// cursor keeps its block alive even across eviction.
class BlockCache {
 public:
  using Block = std::vector<SegmentEntry>;
  using Key = std::pair<std::uint64_t, std::uint32_t>;

  explicit BlockCache(std::size_t capacity_bytes = 1u << 20)
      : capacity_(capacity_bytes) {}

  std::shared_ptr<const Block> find(const Key& k) {
    auto it = map_.find(k);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.where);
    return it->second.block;
  }

  void insert(const Key& k, std::shared_ptr<const Block> block) {
    if (map_.count(k) != 0) return;
    const std::size_t bytes = block->size() * sizeof(SegmentEntry);
    lru_.push_front(k);
    map_.emplace(k, Slot{std::move(block), lru_.begin()});
    used_ += bytes;
    while (used_ > capacity_ && !lru_.empty()) {
      const Key victim = lru_.back();
      auto vit = map_.find(victim);
      used_ -= vit->second.block->size() * sizeof(SegmentEntry);
      map_.erase(vit);
      lru_.pop_back();
    }
  }

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

 private:
  struct Slot {
    std::shared_ptr<const Block> block;
    std::list<Key>::iterator where;
  };

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::list<Key> lru_;
  std::map<Key, Slot> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Read-side view of one segment file: footer index held in memory,
/// blocks decoded on demand through the BlockCache, validated end to end.
class SegmentReader {
 public:
  SegmentReader(StorageEnv& env, const std::string& name,
                std::uint64_t cache_file_id, BlockCache* cache)
      : file_(env.open_read(name)),
        name_(name),
        cache_file_id_(cache_file_id),
        cache_(cache) {
    const std::uint64_t fsize = file_->size();
    if (fsize < 8 + seg_detail::kTailBytes) {
      throw CorruptionError("segment " + name + ": file too small");
    }
    char head[8];
    read_fully(*file_, 0, head, 8);
    if (seg_detail::get_u64(head) != kSegmentMagic) {
      throw CorruptionError("segment " + name + ": bad magic");
    }
    char tail[seg_detail::kTailBytes];
    read_fully(*file_, fsize - seg_detail::kTailBytes, tail,
               seg_detail::kTailBytes);
    if (seg_detail::get_u64(tail + 24) != kSegmentMagic) {
      throw CorruptionError("segment " + name + ": bad tail magic");
    }
    const std::uint64_t index_offset = seg_detail::get_u64(tail);
    const std::uint32_t index_crc = seg_detail::get_u32(tail + 8);
    const std::uint32_t block_count = seg_detail::get_u32(tail + 12);
    total_count_ = seg_detail::get_u64(tail + 16);
    const std::uint64_t index_bytes =
        static_cast<std::uint64_t>(block_count) * seg_detail::kIndexEntryBytes;
    if (index_offset < 8 ||
        index_offset + index_bytes + seg_detail::kTailBytes != fsize) {
      throw CorruptionError("segment " + name + ": inconsistent footer");
    }
    std::string index(static_cast<std::size_t>(index_bytes), '\0');
    if (index_bytes > 0) read_fully(*file_, index_offset, index.data(), index.size());
    if (crc32c(index.data(), index.size()) != index_crc) {
      throw CorruptionError("segment " + name + ": index CRC mismatch");
    }
    blocks_.reserve(block_count);
    std::uint64_t counted = 0;
    for (std::uint32_t i = 0; i < block_count; ++i) {
      const char* p = index.data() + i * seg_detail::kIndexEntryBytes;
      BlockMeta m{seg_detail::get_u64(p), seg_detail::get_u32(p + 8),
                  seg_detail::get_u64(p + 12), seg_detail::get_u64(p + 20)};
      if (m.offset < 8 || m.offset >= index_offset || m.count == 0 ||
          m.min_key > m.max_key ||
          (!blocks_.empty() && m.min_key <= blocks_.back().max_key)) {
        throw CorruptionError("segment " + name + ": invalid block index");
      }
      counted += m.count;
      blocks_.push_back(m);
    }
    if (counted != total_count_) {
      throw CorruptionError("segment " + name + ": entry count mismatch");
    }
  }

  std::uint64_t total_count() const noexcept { return total_count_; }
  std::size_t block_count() const noexcept { return blocks_.size(); }
  std::uint64_t min_key() const { return blocks_.empty() ? 0 : blocks_.front().min_key; }
  std::uint64_t max_key() const { return blocks_.empty() ? 0 : blocks_.back().max_key; }

  /// Decode block `bi`, via the cache when one is attached.
  std::shared_ptr<const BlockCache::Block> load_block(std::uint32_t bi) {
    const BlockCache::Key key{cache_file_id_, bi};
    if (cache_ != nullptr) {
      if (auto hit = cache_->find(key)) return hit;
    }
    const BlockMeta& m = blocks_[bi];
    const std::size_t body_bytes = m.count * seg_detail::kEntryBytes;
    std::string raw(seg_detail::kBlockHeaderBytes + body_bytes, '\0');
    read_fully(*file_, m.offset, raw.data(), raw.size());
    const std::uint32_t crc = seg_detail::get_u32(raw.data());
    const std::uint32_t count = seg_detail::get_u32(raw.data() + 4);
    const char* body = raw.data() + seg_detail::kBlockHeaderBytes;
    if (count != m.count || crc32c(body, body_bytes) != crc) {
      throw CorruptionError("segment " + name_ + ": block CRC mismatch");
    }
    auto block = std::make_shared<BlockCache::Block>();
    block->reserve(m.count);
    std::uint64_t prev = 0;
    for (std::uint32_t i = 0; i < m.count; ++i, body += seg_detail::kEntryBytes) {
      SegmentEntry e{seg_detail::get_u64(body), seg_detail::get_u64(body + 8),
                     static_cast<std::uint8_t>(body[16])};
      if (i > 0 && e.key <= prev) {
        throw CorruptionError("segment " + name_ + ": unsorted block");
      }
      prev = e.key;
      block->push_back(e);
    }
    if (block->front().key != m.min_key || block->back().key != m.max_key) {
      throw CorruptionError("segment " + name_ + ": fence/block mismatch");
    }
    if (cache_ != nullptr) cache_->insert(key, block);
    return block;
  }

  /// Forward cursor with fence-key accelerated seeks, matching the
  /// in-memory cursor contract (seek / next / valid / entry). With
  /// `suppress_tombstones` (the read-path default) deleted keys are
  /// skipped; recovery iterates raw to preserve newest-wins replay.
  class Cursor {
   public:
    Cursor(SegmentReader& r, bool suppress_tombstones)
        : r_(&r), suppress_(suppress_tombstones) {}

    /// Position at the first entry with key >= `key`.
    void seek(std::uint64_t key) {
      // Fences prune to the single candidate block: the first block whose
      // max_key admits the key.
      std::size_t lo = 0, hi = r_->blocks_.size();
      while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (r_->blocks_[mid].max_key < key) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo == r_->blocks_.size()) {
        invalidate();
        return;
      }
      bi_ = static_cast<std::uint32_t>(lo);
      block_ = r_->load_block(bi_);
      i_ = static_cast<std::size_t>(
          std::lower_bound(block_->begin(), block_->end(), key,
                           [](const SegmentEntry& e, std::uint64_t k) {
                             return e.key < k;
                           }) -
          block_->begin());
      settle();
    }

    void seek_first() {
      if (r_->blocks_.empty()) {
        invalidate();
        return;
      }
      bi_ = 0;
      block_ = r_->load_block(0);
      i_ = 0;
      settle();
    }

    void next() {
      ++i_;
      settle();
    }

    bool valid() const noexcept { return block_ != nullptr; }
    const SegmentEntry& entry() const { return (*block_)[i_]; }

   private:
    void settle() {
      for (;;) {
        while (block_ != nullptr && i_ >= block_->size()) {
          if (bi_ + 1 >= r_->blocks_.size()) {
            invalidate();
            return;
          }
          ++bi_;
          block_ = r_->load_block(bi_);
          i_ = 0;
        }
        if (block_ == nullptr) return;
        if (suppress_ && ((*block_)[i_].flags & kEntryTombstone) != 0) {
          ++i_;
          continue;
        }
        return;
      }
    }

    void invalidate() {
      block_ = nullptr;
      i_ = 0;
    }

    SegmentReader* r_;
    bool suppress_;
    std::uint32_t bi_ = 0;
    std::size_t i_ = 0;
    std::shared_ptr<const BlockCache::Block> block_;
  };

  Cursor make_cursor(bool suppress_tombstones = true) {
    return Cursor(*this, suppress_tombstones);
  }

  /// Recovery path: stream every entry (tombstones included) in order.
  template <class Fn>
  void for_each_raw(Fn&& fn) {
    for (std::uint32_t bi = 0; bi < blocks_.size(); ++bi) {
      auto block = load_block(bi);
      for (const auto& e : *block) fn(e);
    }
  }

 private:
  struct BlockMeta {
    std::uint64_t offset;
    std::uint32_t count;
    std::uint64_t min_key;
    std::uint64_t max_key;
  };

  std::unique_ptr<RandomReadFile> file_;
  std::string name_;
  std::uint64_t cache_file_id_;
  BlockCache* cache_;
  std::vector<BlockMeta> blocks_;
  std::uint64_t total_count_ = 0;
};

}  // namespace costream::storage
