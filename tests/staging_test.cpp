// Staging L0 + growth-factor tests: the unsorted append arena in front of
// the COLA levels (cola.hpp) must be invisible to every read path — find,
// for_each, range_for_each — while it holds unflushed entries, duplicates,
// and tombstones, for every preset growth factor. Also covers the
// DictConfig threading (api/presets.hpp) and the sorted-run normalization
// fast path (common/entry.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "api/presets.hpp"
#include "cola/cola.hpp"
#include "cola/lookahead_array.hpp"
#include "common/rng.hpp"
#include "common/workload.hpp"
#include "model_helpers.hpp"

namespace costream::cola {
namespace {

using testing::collect_range;

/// All live entries via for_each.
template <class D>
std::map<Key, Value> collect_all(const D& d) {
  std::map<Key, Value> out;
  d.for_each([&](Key k, Value v) {
    EXPECT_EQ(out.count(k), 0u) << "for_each emitted key twice: " << k;
    out[k] = v;
  });
  return out;
}

TEST(StagingL0, AbsorbsWithoutCascading) {
  Gcola<> c(ingest_tuned(4, 16));  // arena = 64 entries
  for (std::uint64_t i = 0; i < 63; ++i) c.insert(i, i * 10);
  EXPECT_EQ(c.staged_count(), 63u);
  EXPECT_EQ(c.stats().merges, 0u) << "no cascade before the arena fills";
  EXPECT_EQ(c.item_count(), 63u);
  c.check_invariants();
  c.insert(63, 630);  // 64th entry fills the arena -> one flush
  EXPECT_EQ(c.staged_count(), 0u);
  EXPECT_EQ(c.stats().stage_flushes, 1u);
  EXPECT_GE(c.stats().merges, 1u);
  for (std::uint64_t i = 0; i < 64; ++i) ASSERT_EQ(c.find(i).value(), i * 10);
}

TEST(StagingL0, FindReadsThroughUnflushedArena) {
  Gcola<> c(ingest_tuned(4, 64));
  // Deep copy first (flushed), then a newer staged copy of the same keys.
  for (std::uint64_t i = 0; i < 200; ++i) c.insert(i, i);
  c.flush_stage();
  for (std::uint64_t i = 0; i < 50; ++i) c.insert(i, 1000 + i);  // stays staged
  ASSERT_GT(c.staged_count(), 0u);
  for (std::uint64_t i = 0; i < 200; ++i) {
    ASSERT_EQ(c.find(i).value(), i < 50 ? 1000 + i : i) << i;
  }
  // Staged duplicate of a staged key: the later append wins.
  c.insert(7, 7777);
  EXPECT_EQ(c.find(7).value(), 7777u);
  c.check_invariants();
}

TEST(StagingL0, TombstonesInArenaHideDeeperCopies) {
  Gcola<> c(ingest_tuned(2, 128));
  for (std::uint64_t i = 0; i < 100; ++i) c.insert(i, i);
  c.flush_stage();
  for (std::uint64_t i = 0; i < 100; i += 2) c.erase(i);  // tombstones staged
  ASSERT_GT(c.staged_count(), 0u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    if (i % 2 == 0) {
      ASSERT_FALSE(c.find(i).has_value()) << i;
    } else {
      ASSERT_EQ(c.find(i).value(), i) << i;
    }
  }
  // Re-insert over a staged tombstone: newest wins again.
  c.insert(4, 44);
  EXPECT_EQ(c.find(4).value(), 44u);
  const auto all = collect_all(c);
  EXPECT_EQ(all.count(2), 0u);
  EXPECT_EQ(all.at(4), 44u);
  EXPECT_EQ(all.at(5), 5u);
}

TEST(StagingL0, ScansMergeArenaNewestWins) {
  Gcola<> c(ingest_tuned(4, 256));
  // Levels: keys 0..499 with value k. Arena: odd keys rewritten, plus fresh
  // keys past the level range, plus tombstones — all unflushed.
  for (std::uint64_t k = 0; k < 500; ++k) c.insert(k, k);
  c.flush_stage();
  for (std::uint64_t k = 1; k < 500; k += 2) c.insert(k, 9000 + k);
  for (std::uint64_t k = 600; k < 650; ++k) c.insert(k, k);
  for (std::uint64_t k = 0; k < 500; k += 100) c.erase(k);
  ASSERT_GT(c.staged_count(), 0u);

  std::map<Key, Value> want;
  for (std::uint64_t k = 0; k < 500; ++k) want[k] = (k % 2 == 1) ? 9000 + k : k;
  for (std::uint64_t k = 1; k < 500; k += 2) want[k] = 9000 + k;
  for (std::uint64_t k = 600; k < 650; ++k) want[k] = k;
  for (std::uint64_t k = 0; k < 500; k += 100) want.erase(k);

  EXPECT_EQ(collect_all(c), want);

  // Bounded range crossing arena-only and level-only regions.
  const auto got = collect_range(c, 450, 620);
  std::vector<Entry<>> expect;
  for (const auto& [k, v] : want) {
    if (k >= 450 && k <= 620) expect.push_back(Entry<>{k, v});
  }
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, expect[i].key);
    EXPECT_EQ(got[i].value, expect[i].value);
  }
  c.check_invariants();
}

// Audit regression (ISSUE 3): the ordered scan paths — for_each and
// range_for_each — must skip any key whose NEWEST unflushed arena entry is
// a tombstone, exactly as the newest-first find path does. Exercised with
// erase_batch runs (multi-entry tombstone runs in the arena, the shape the
// single-op tests never produced) over all three shadowing cases: a deeper
// level copy, an older arena copy, and no copy at all (blind tombstone).
TEST(StagingL0, ScansSkipBatchTombstonesInArena) {
  Gcola<> c(ingest_tuned(4, 256));  // tiered levels behind the arena
  for (std::uint64_t k = 0; k < 300; ++k) c.insert(k, k);
  c.flush_stage();
  // Older arena copies for 200..249, then one erase_batch covering: level
  // keys (0..49), arena keys (200..224), and absent keys (900..919).
  for (std::uint64_t k = 200; k < 250; ++k) c.insert(k, 5000 + k);
  std::vector<Key> victims;
  for (std::uint64_t k = 0; k < 50; ++k) victims.push_back(k);
  for (std::uint64_t k = 200; k < 225; ++k) victims.push_back(k);
  for (std::uint64_t k = 900; k < 920; ++k) victims.push_back(k);
  c.erase_batch(victims);
  ASSERT_GT(c.staged_count(), 0u) << "tombstones must still be unflushed";

  std::map<Key, Value> want;
  for (std::uint64_t k = 50; k < 300; ++k) want[k] = k;
  for (std::uint64_t k = 200; k < 250; ++k) want[k] = 5000 + k;
  for (std::uint64_t k = 200; k < 225; ++k) want.erase(k);
  EXPECT_EQ(collect_all(c), want);

  // Bounded ranges crossing each shadowed region.
  for (const auto& [lo, hi] : std::vector<std::pair<Key, Key>>{
           {0, 60}, {190, 260}, {880, 930}, {0, 1000}}) {
    const auto got = collect_range(c, lo, hi);
    std::vector<Entry<>> expect;
    for (const auto& [k, v] : want) {
      if (k >= lo && k <= hi) expect.push_back(Entry<>{k, v});
    }
    ASSERT_EQ(got.size(), expect.size()) << "range [" << lo << ", " << hi << "]";
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].key, expect[i].key);
      EXPECT_EQ(got[i].value, expect[i].value);
    }
  }
  // A newer staged put run resurrects over the staged tombstone run.
  std::vector<Entry<>> back;
  for (std::uint64_t k = 10; k < 20; ++k) back.push_back(Entry<>{k, 7000 + k});
  c.insert_batch(back);
  const auto all = collect_all(c);
  EXPECT_EQ(all.count(5), 0u);
  EXPECT_EQ(all.at(15), 7015u);
  c.check_invariants();
}

// The same audit for the CLASSIC cascade behind a staging arena — scan()'s
// merged staged view (rather than scan_tiered's cursor fan) is the code
// under test here.
TEST(ClassicStaging, ScansSkipBatchTombstonesInArena) {
  ColaConfig cfg;  // tiered stays false: classic cascade + lookahead
  cfg.growth = 4;
  cfg.staging_capacity = 512;
  Gcola<> c(cfg);
  for (std::uint64_t k = 0; k < 300; ++k) c.insert(k, k);
  c.flush_stage();
  std::vector<Key> victims;
  for (std::uint64_t k = 100; k < 150; ++k) victims.push_back(k);
  for (std::uint64_t k = 700; k < 720; ++k) victims.push_back(k);  // absent
  c.erase_batch(victims);
  ASSERT_GT(c.staged_count(), 0u);

  std::map<Key, Value> want;
  for (std::uint64_t k = 0; k < 300; ++k) {
    if (k < 100 || k >= 150) want[k] = k;
  }
  EXPECT_EQ(collect_all(c), want);
  const auto got = collect_range(c, 90, 160);
  std::vector<Entry<>> expect;
  for (const auto& [k, v] : want) {
    if (k >= 90 && k <= 160) expect.push_back(Entry<>{k, v});
  }
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, expect[i].key);
  }
  c.check_invariants();
}

// Mixed apply_batch staged and UNFLUSHED: within-batch put-vs-erase
// shadowing (last op wins) must be visible to find and both scan paths
// straight from the arena.
TEST(StagingL0, ApplyBatchShadowingVisibleWhileStaged) {
  Gcola<> c(ingest_tuned(2, 128));
  for (std::uint64_t k = 0; k < 40; ++k) c.insert(k, k);
  c.flush_stage();
  std::vector<Op<>> ops;
  ops.push_back(Op<>::put(1, 100));
  ops.push_back(Op<>::del(1));          // erase shadows the put: 1 gone
  ops.push_back(Op<>::del(2));
  ops.push_back(Op<>::put(2, 200));     // put shadows the erase: 2 = 200
  ops.push_back(Op<>::del(50));         // blind erase of an absent key
  ops.push_back(Op<>::put(60, 600));    // fresh key
  c.apply_batch(ops);
  ASSERT_GT(c.staged_count(), 0u);
  EXPECT_FALSE(c.find(1).has_value());
  EXPECT_EQ(c.find(2).value(), 200u);
  EXPECT_FALSE(c.find(50).has_value());
  EXPECT_EQ(c.find(60).value(), 600u);
  const auto all = collect_all(c);
  EXPECT_EQ(all.count(1), 0u);
  EXPECT_EQ(all.at(2), 200u);
  EXPECT_EQ(all.count(50), 0u);
  EXPECT_EQ(all.at(60), 600u);
  // And identically after the cascade carries the batch down.
  c.flush_stage();
  EXPECT_FALSE(c.find(1).has_value());
  EXPECT_EQ(c.find(2).value(), 200u);
  EXPECT_EQ(collect_all(c), all);
  c.check_invariants();
}

TEST(StagingL0, BatchLargerThanArenaFlushesOnce) {
  Gcola<> c(ingest_tuned(2, 8));  // tiny arena: 16 entries
  std::vector<Entry<>> batch;
  for (std::uint64_t i = 0; i < 100; ++i) batch.push_back(Entry<>{i, i});
  c.insert_batch(batch);
  EXPECT_EQ(c.staged_count(), 0u) << "oversized batch drains through the arena";
  for (std::uint64_t i = 0; i < 100; ++i) ASSERT_EQ(c.find(i).value(), i);
  c.check_invariants();
}

class StagingModel
    : public ::testing::TestWithParam<std::pair<unsigned, std::uint64_t>> {};

TEST_P(StagingModel, MixedTraceMatchesReference) {
  const auto [g, seed] = GetParam();
  Gcola<> c(ingest_tuned(g, 32));
  const auto ops = generate_ops(6'000, 1'500, OpMix{}, seed);
  testing::run_model_trace(c, ops, [&] { c.check_invariants(); });
}

INSTANTIATE_TEST_SUITE_P(
    GrowthSeeds, StagingModel,
    ::testing::Values(std::pair<unsigned, std::uint64_t>{2, 71},
                      std::pair<unsigned, std::uint64_t>{4, 72},
                      std::pair<unsigned, std::uint64_t>{8, 73},
                      std::pair<unsigned, std::uint64_t>{16, 74}));

// Classic (non-tiered) levels behind a staging arena — the combination
// make_lookahead_array exposes via batch_hint: flushes normalize the arena,
// widen to Slot form, and run the CLASSIC cascade with lookahead pointers
// intact, while reads merge the staged view over globally sorted levels.
class ClassicStagingModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClassicStagingModel, MixedTraceMatchesReference) {
  ColaConfig cfg;  // tiered stays false: classic cascade + lookahead
  cfg.growth = 4;
  cfg.staging_capacity = 96;
  Gcola<> c(cfg);
  const auto ops = generate_ops(6'000, 1'500, OpMix{}, GetParam());
  testing::run_model_trace(c, ops, [&] { c.check_invariants(); });
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassicStagingModel, ::testing::Values(91, 92));

TEST(ClassicStaging, LookaheadArrayFactoryWithBatchHint) {
  auto c = make_lookahead_array(4096, 0.5, 0.1, dam::null_mem_model{}, 64);
  EXPECT_GT(c.config().staging_capacity, 0u);
  EXPECT_FALSE(c.config().tiered);
  for (std::uint64_t i = 0; i < 5'000; ++i) c.insert(mix64(i) % 2'000, i);
  c.erase(mix64(3) % 2'000);
  std::map<Key, Value> ref;
  for (std::uint64_t i = 0; i < 5'000; ++i) ref[mix64(i) % 2'000] = i;
  ref.erase(mix64(3) % 2'000);
  EXPECT_EQ(collect_all(c), ref);
  c.check_invariants();
}

// The g != 2 cascade WITHOUT staging: the capacity-aware target walk and
// lookahead rebuild must hold for every preset growth factor.
class GrowthCascadeModel : public ::testing::TestWithParam<unsigned> {};

TEST_P(GrowthCascadeModel, MixedTraceMatchesReference) {
  Gcola<> c(ColaConfig{GetParam(), 0.1});
  const auto ops = generate_ops(6'000, 1'500, OpMix{}, 80 + GetParam());
  testing::run_model_trace(c, ops, [&] { c.check_invariants(); });
}

INSTANTIATE_TEST_SUITE_P(Growth, GrowthCascadeModel, ::testing::Values(4u, 8u, 16u));

TEST(StagingL0, ChurnStaysBounded) {
  // Regression: a bounded live set under endless churn (erase + reinsert)
  // must not grow physical size without bound. The tiered trivial-move path
  // skips the bottom compaction, so it must alternate with real folds that
  // strip tombstones and dedup shadowed copies.
  Gcola<> c(ingest_tuned(4, 64));
  const std::uint64_t live = 2'048;
  for (std::uint64_t k = 0; k < live; ++k) c.insert(k, k);
  std::uint64_t peak = 0;
  for (int round = 0; round < 400; ++round) {
    for (std::uint64_t k = 0; k < live; k += 4) {
      c.erase(k);
      c.insert(k, static_cast<Value>(round));
    }
    peak = std::max(peak, c.item_count());
  }
  // Generous bound: garbage between two bottom folds is a constant factor
  // of the live set plus staging; unbounded growth blows far past this.
  EXPECT_LT(peak, 40 * live) << "churn accumulates garbage without bound";
  c.check_invariants();
  for (std::uint64_t k = 0; k < live; ++k) ASSERT_TRUE(c.find(k).has_value()) << k;
}

TEST(StagingL0, SingleOpArenaRunsStayLogarithmic) {
  // Regression: singleton puts must not leave one run per insert in the
  // arena (find() probes every run). The binary-counter tail merge keeps
  // the run count logarithmic in the arena occupancy.
  Gcola<> c(ingest_tuned(16, 256));  // arena 4096, never flushed below
  for (std::uint64_t i = 0; i < 4'000; ++i) c.insert(mix64(i), i);
  ASSERT_GT(c.staged_count(), 0u);
  EXPECT_LE(c.stage_run_count(), 16u) << "arena runs grow linearly with puts";
  for (std::uint64_t i = 0; i < 4'000; i += 97) {
    ASSERT_EQ(c.find(mix64(i)).value(), i) << i;
  }
  c.check_invariants();
}

TEST(StagingL0, TinyMixedOpBatchesKeepArenaRunsLogarithmic) {
  // Regression (code review, PR 3): singleton erase_batch/apply_batch (and
  // size-1 insert_batch) runs must counter-merge the arena tail like put()
  // does — otherwise every tiny batch leaves its own run and find() probes
  // them all.
  Gcola<> c(ingest_tuned(16, 256));  // arena 4096, never flushed below
  for (std::uint64_t i = 0; i < 1'200; ++i) {
    const Key k = mix64(i) % 4'000;
    switch (i % 3) {
      case 0: {
        const Entry<> e{k, i};
        c.insert_batch({&e, 1});
        break;
      }
      case 1:
        c.erase_batch({&k, 1});
        break;
      default: {
        const Op<> o = Op<>::put(k, i);
        c.apply_batch({&o, 1});
        break;
      }
    }
  }
  ASSERT_GT(c.staged_count(), 0u);
  EXPECT_LE(c.stage_run_count(), 16u) << "tiny batches grow arena runs linearly";
  c.check_invariants();
}

TEST(DictConfigThreading, PresetsBuildEveryKind) {
  for (const char* kind : {"cola", "shuttle", "deam", "fc-deam", "btree", "brt", "cob"}) {
    for (const unsigned g : {2u, 4u, 8u, 16u}) {
      api::AnyDictionary d = api::make_dictionary(kind, api::DictConfig::ingest_tuned(g));
      for (std::uint64_t i = 0; i < 300; ++i) d.insert(mix64(i) % 100, i);
      std::vector<Entry<>> batch;
      for (std::uint64_t i = 0; i < 64; ++i) batch.push_back(Entry<>{i, 7'000 + i});
      d.insert_batch(batch);
      for (std::uint64_t i = 0; i < 64; ++i) {
        ASSERT_EQ(d.find(i).value(), 7'000 + i) << kind << " g=" << g << " key " << i;
      }
    }
  }
  EXPECT_THROW(api::make_dictionary("nope"), std::invalid_argument);
}

TEST(DictConfigThreading, ConfigMapsOntoStructureConfigs) {
  const api::DictConfig c = api::DictConfig::ingest_tuned(8, 512);
  const ColaConfig cc = api::to_cola_config(c);
  EXPECT_EQ(cc.growth, 8u);
  EXPECT_EQ(cc.staging_capacity, 8u * 512u);
  EXPECT_TRUE(cc.tiered);
  EXPECT_EQ(cc.pointer_density, 0.0);
  const shuttle::ShuttleConfig sc = api::to_shuttle_config(c);
  EXPECT_EQ(sc.growth, 8u);
  const api::DictConfig plain;
  EXPECT_EQ(api::to_cola_config(plain).staging_capacity, 0u);
}

TEST(SortedRunDetection, PresortedBatchMatchesShuffled) {
  // Identical content, one feed presorted (skips the merge sort) and one
  // shuffled — results must be byte-for-byte equal, including newest-wins
  // on duplicates inside the batch.
  std::vector<Entry<>> sorted_feed, shuffled;
  for (std::uint64_t i = 0; i < 1'000; ++i) sorted_feed.push_back(Entry<>{i / 2, i});
  EXPECT_TRUE(is_sorted_by_key(sorted_feed));
  shuffled = sorted_feed;
  Xoshiro256 rng(99);
  for (std::size_t i = shuffled.size(); i-- > 1;) {
    std::swap(shuffled[i], shuffled[rng.below(i + 1)]);
  }
  EXPECT_FALSE(is_sorted_by_key(shuffled));

  Gcola<> a, b;
  a.insert_batch(sorted_feed);
  // The shuffled feed loses the duplicate ORDER (shuffling reorders equal
  // keys), so dedup newest-wins picks a different survivor; normalize the
  // comparison by asserting against the sorted feed's own semantics instead.
  for (std::uint64_t k = 0; k < 500; ++k) {
    ASSERT_EQ(a.find(k).value(), 2 * k + 1) << "last duplicate must win";
  }
  b.insert_batch(shuffled);
  EXPECT_EQ(a.item_count(), b.item_count());
  a.check_invariants();
  b.check_invariants();
}

}  // namespace
}  // namespace costream::cola
