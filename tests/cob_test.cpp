// Cache-oblivious B-tree tests: differential testing, index/PMA consistency,
// and the vEB-index search bound.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "cob/cob_tree.hpp"
#include "common/rng.hpp"
#include "common/workload.hpp"
#include "dam/dam_mem_model.hpp"
#include "model_helpers.hpp"

namespace costream::cob {
namespace {

TEST(CobTree, EmptyFind) {
  CobTree<> t;
  EXPECT_FALSE(t.find(1).has_value());
  t.check_invariants();
}

TEST(CobTree, SingleAndUpsert) {
  CobTree<> t;
  t.insert(5, 1);
  EXPECT_EQ(t.find(5).value(), 1u);
  t.insert(5, 2);
  EXPECT_EQ(t.find(5).value(), 2u);
  EXPECT_EQ(t.size(), 1u);
  t.check_invariants();
}

class CobOrders : public ::testing::TestWithParam<KeyOrder> {};

TEST_P(CobOrders, BulkInsertFindAll) {
  CobTree<> t;
  const KeyStream ks(GetParam(), 20'000, 8);
  std::map<Key, Value> ref;
  for (std::uint64_t i = 0; i < ks.size(); ++i) {
    t.insert(ks.key_at(i), i);
    ref[ks.key_at(i)] = i;
    if (i % 4'096 == 0) t.check_invariants();
  }
  t.check_invariants();
  EXPECT_EQ(t.size(), ref.size());
  for (const auto& [k, v] : ref) ASSERT_EQ(t.find(k).value(), v) << k;
}

INSTANTIATE_TEST_SUITE_P(Orders, CobOrders,
                         ::testing::Values(KeyOrder::kRandom, KeyOrder::kAscending,
                                           KeyOrder::kDescending, KeyOrder::kClustered),
                         [](const auto& info) { return to_string(info.param); });

class CobModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CobModel, MixedTraceMatchesReference) {
  CobTree<> t;
  const auto ops = generate_ops(5'000, 1'200, OpMix{}, GetParam());
  testing::run_model_trace(t, ops, [&] { t.check_invariants(); });
}

INSTANTIATE_TEST_SUITE_P(Seeds, CobModel, ::testing::Values(41, 42, 43, 44));

TEST(CobTree, EraseReturnsPresence) {
  CobTree<> t;
  t.insert(1, 1);
  t.insert(2, 2);
  EXPECT_TRUE(t.erase(1));
  EXPECT_FALSE(t.erase(1));
  EXPECT_FALSE(t.find(1).has_value());
  EXPECT_TRUE(t.find(2).has_value());
  t.check_invariants();
}

TEST(CobTree, EraseEverythingThenReuse) {
  CobTree<> t;
  for (std::uint64_t i = 0; i < 2'000; ++i) t.insert(i, i);
  for (std::uint64_t i = 0; i < 2'000; ++i) ASSERT_TRUE(t.erase(i)) << i;
  EXPECT_TRUE(t.empty());
  t.check_invariants();
  t.insert(7, 70);
  EXPECT_EQ(t.find(7).value(), 70u);
}

TEST(CobTree, RangeMatchesReference) {
  CobTree<> t;
  testing::RefDict ref;
  Xoshiro256 rng(55);
  for (int i = 0; i < 10'000; ++i) {
    const Key k = rng.below(50'000);
    t.insert(k, static_cast<Value>(i));
    ref.insert(k, static_cast<Value>(i));
  }
  for (int q = 0; q < 100; ++q) {
    const Key lo = rng.below(50'000);
    const Key hi = lo + rng.below(2'000);
    const auto got = testing::collect_range(t, lo, hi);
    const auto want = ref.range(lo, hi);
    ASSERT_EQ(got.size(), want.size()) << q;
    for (std::size_t j = 0; j < got.size(); ++j) {
      ASSERT_EQ(got[j].key, want[j].key);
      ASSERT_EQ(got[j].value, want[j].value);
    }
  }
}

TEST(CobTree, SearchTransfersAreLogB) {
  // The CO B-tree's reason to exist: O(log_{B+1} N) search transfers without
  // knowing B. Verify cold searches cost far fewer transfers than a binary
  // search over the PMA region would (log2 N - log2 B ~ 7 at this scale).
  CobTree<Key, Value, dam::dam_mem_model> t{dam::dam_mem_model(4096, 1 << 20)};
  const std::uint64_t n = 1 << 16;
  for (std::uint64_t i = 0; i < n; ++i) t.insert(mix64(i), i);
  Xoshiro256 rng(66);
  std::uint64_t total = 0;
  const int probes = 100;
  for (int q = 0; q < probes; ++q) {
    t.mm().clear_cache();
    t.mm().reset_stats();
    t.find(mix64(rng.below(n)));
    total += t.mm().stats().transfers;
  }
  const double avg = static_cast<double>(total) / probes;
  EXPECT_LT(avg, 8.0) << "vEB index + one-segment scan should stay in single digits";
}

TEST(CobTree, PmaStatsExposed) {
  CobTree<> t;
  for (std::uint64_t i = 0; i < 5'000; ++i) t.insert(i, i);
  EXPECT_GT(t.pma().stats().rebalances, 0u);
  EXPECT_GT(t.pma().stats().resizes, 0u);
}

}  // namespace
}  // namespace costream::cob
