// Bounded single-producer / single-consumer ring — the cross-thread handoff
// primitive of the sharded ingest front end (shard/sharded_dictionary.hpp).
//
// Each slot is a reusable object the producer fills IN PLACE (the shard
// dispatcher swaps its scatter scratch into the slot's vector), so slot
// payload capacity circulates between producer and consumer and the steady
// state allocates nothing. The ring itself is two cache-line-separated
// monotone counters:
//
//   producer:  begin_push() -> fill slot -> commit_push()   (release)
//   consumer:  peek() -> consume slot -> pop()              (release)
//
// commit_push publishes the slot contents to the consumer's peek (acquire),
// and pop publishes the recycled slot back to the producer's fullness check
// (acquire), so both directions carry a happens-before edge and the payload
// itself needs no atomics. begin_push blocks (yield-spin) while the ring is
// full: the consumer is the backpressure — a producer can never outrun a
// shard by more than the ring capacity.
//
// Exactly ONE producer thread and ONE consumer thread may touch a ring;
// the sharded dictionary guarantees that by construction (one caller-facing
// facade thread, one worker per shard).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

namespace costream::shard {

template <class T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two, minimum 2.
  explicit SpscRing(std::size_t min_slots) {
    std::size_t cap = 2;
    while (cap < min_slots) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  /// Producer: the slot the next push will publish. Blocks (yield-spin)
  /// while the ring is full; the returned slot's previous payload has
  /// already been consumed and may be reused in place.
  T* begin_push() {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    while (t - head_.load(std::memory_order_acquire) == slots_.size()) {
      std::this_thread::yield();
    }
    return &slots_[t & mask_];
  }

  /// Producer: publish the slot returned by begin_push.
  void commit_push() {
    tail_.store(tail_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  /// Consumer: the oldest unconsumed slot, or nullptr when empty.
  T* peek() {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_.load(std::memory_order_acquire)) return nullptr;
    return &slots_[h & mask_];
  }

  /// Consumer: recycle the slot returned by peek back to the producer.
  void pop() {
    head_.store(head_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer cursor
};

}  // namespace costream::shard
