// A logical address space for structures that allocate regions (B-tree
// nodes, shuttle-tree nodes and buffers). A bump allocator is enough: the
// structures that care about *placement* (shuttle tree, CO B-tree) override
// addresses with their layout pass; everything else only needs stable,
// disjoint regions so the DAM cache sees distinct blocks.
#pragma once

#include <cstdint>

namespace costream::dam {

class AddressSpace {
 public:
  /// Allocate `bytes`, aligned to `align` (power of two). Returns the offset.
  std::uint64_t allocate(std::uint64_t bytes, std::uint64_t align = 64) noexcept {
    next_ = (next_ + align - 1) & ~(align - 1);
    const std::uint64_t at = next_;
    next_ += bytes;
    return at;
  }

  std::uint64_t bytes_used() const noexcept { return next_; }
  void reset() noexcept { next_ = 0; }

 private:
  std::uint64_t next_ = 0;
};

}  // namespace costream::dam
