// Differential tests for the data-parallel kernel layer: every vector
// kernel in common/simd.hpp and cola/kernels.hpp is driven against its
// scalar reference across lengths 0..257, duplicate patterns, tombstone
// flags, and unaligned base pointers, at every dispatch tier the host CPU
// supports. The contract under test is BIT-IDENTICAL output — the scalar
// fallback is the spec, the vector tiers are obligated to match it exactly,
// which is what lets the COSTREAM_SIMD=scalar CI leg stand in for the
// vector build's semantics.
//
// The per-segment fingerprint filter (common/filter.hpp) is tested here
// too: the structural no-false-negative guarantee, block-granular sizing,
// and a measured false-positive rate pinned to the design point
// filt::kDesignFpr within tolerance.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cola/kernels.hpp"
#include "common/filter.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"

namespace costream {
namespace {

using K = std::uint64_t;
using V = std::uint64_t;
using Buf = cola::kern::RunBuf<K, V>;
using View = cola::kern::RunView<K, V>;

/// Every dispatch tier this machine can actually execute. kScalar is always
/// testable; the vector tiers join only when cpuid says their instructions
/// exist (calling an AVX2 body on a non-AVX2 part would fault, not fail).
std::vector<simd::Isa> testable_isas() {
  std::vector<simd::Isa> tiers{simd::Isa::kScalar};
  const simd::Isa hw = simd::detail::detect_isa();
  if (hw >= simd::Isa::kSse42) tiers.push_back(simd::Isa::kSse42);
  if (hw >= simd::Isa::kAvx2) tiers.push_back(simd::Isa::kAvx2);
  return tiers;
}

/// A sorted key run of length n with duplicate-heavy steps: each key
/// advances by 0 (duplicate), 1, or a larger stride, so runs contain equal
/// neighbors, dense stretches, and gaps — every shape the prefix scans
/// branch on. Keys start at `base` so two runs can be made overlapping or
/// disjoint at will.
std::vector<K> sorted_keys(std::size_t n, std::uint64_t seed, K base) {
  Xoshiro256 rng(seed);
  std::vector<K> keys(n);
  K k = base;
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = k;
    const std::uint64_t step = rng.below(10);
    if (step >= 3) k += 1 + rng.below(4);  // 70%: advance
    // else: hold — next key duplicates this one
  }
  return keys;
}

/// Fill a plane-form run over the given keys with pseudo-random values and
/// ~1-in-5 tombstone flags, so merges must carry both payload planes.
Buf make_run(const std::vector<K>& keys, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Buf b;
  for (const K& k : keys) {
    b.push_back(k, rng(), rng.below(5) == 0 ? std::uint8_t{1} : std::uint8_t{0});
  }
  return b;
}

// -- simd primitives ---------------------------------------------------------

TEST(SimdKernels, LowerBoundMatchesReferenceAllLengthsAndTiers) {
  const auto tiers = testable_isas();
  // +3 slack so an offset base still has n valid elements behind it.
  for (std::size_t n = 0; n <= 257; ++n) {
    const std::vector<K> backing = sorted_keys(n + 3, 77 * n + 1, 1000);
    for (std::size_t off = 0; off < 3; ++off) {  // unaligned bases
      const K* keys = backing.data() + off;
      std::vector<K> probes{0, ~0ull};
      for (std::size_t i = 0; i < n; i += (n > 64 ? 7 : 1)) {
        probes.push_back(keys[i]);
        probes.push_back(keys[i] + 1);
        probes.push_back(keys[i] == 0 ? 0 : keys[i] - 1);
      }
      for (const K probe : probes) {
        const std::size_t want = simd::lower_bound_ref(keys, n, probe);
        for (const simd::Isa isa : tiers) {
          ASSERT_EQ(want, simd::lower_bound_keys(keys, n, probe, isa))
              << "n=" << n << " off=" << off << " probe=" << probe
              << " isa=" << simd::isa_name(isa);
        }
      }
    }
  }
}

TEST(SimdKernels, MultiLowerBoundMatchesReferenceAcrossWidthsAndTiers) {
  const auto tiers = testable_isas();
  // Batch widths from a lone run up to the kernel's cap, over runs of
  // deliberately mismatched lengths (0, tiny, straddling the scan cutoff,
  // and deep enough to take several interleaved halving rounds).
  const std::size_t lens[] = {0, 1, 2, 7, 31, 32, 33, 100, 257, 1024, 5000};
  for (const std::size_t m :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{7},
        simd::kMultiProbeMax}) {
    std::vector<std::vector<K>> runs;
    std::vector<const K*> bases;
    std::vector<std::size_t> ns;
    for (std::size_t i = 0; i < m; ++i) {
      runs.push_back(
          sorted_keys(lens[i % (sizeof(lens) / sizeof(lens[0]))], 91 * i + 3,
                      /*base=*/200 * i));
      ns.push_back(runs.back().size());
    }
    for (const auto& r : runs) bases.push_back(r.data());  // stable post-push
    std::vector<K> probes{0, ~0ull};
    Xoshiro256 rng(19);
    for (int i = 0; i < 64; ++i) probes.push_back(rng.below(200 * m + 500));
    for (const K probe : probes) {
      std::vector<std::size_t> want(m);
      simd::multi_lower_bound_ref(bases.data(), ns.data(), m, probe, want.data());
      for (std::size_t i = 0; i < m; ++i) {
        ASSERT_EQ(want[i], simd::lower_bound_ref(bases[i], ns[i], probe));
      }
      for (const simd::Isa isa : tiers) {
        std::vector<std::size_t> got(m, ~std::size_t{0});
        simd::multi_lower_bound_keys(bases.data(), ns.data(), m, probe,
                                     got.data(), isa);
        ASSERT_EQ(want, got) << "m=" << m << " probe=" << probe
                             << " isa=" << simd::isa_name(isa);
      }
    }
  }
}

TEST(SimdKernels, PrefixLessMatchesReferenceAllLengthsAndTiers) {
  const auto tiers = testable_isas();
  for (std::size_t n = 0; n <= 257; ++n) {
    const std::vector<K> backing = sorted_keys(n + 3, 31 * n + 7, 500);
    for (std::size_t off = 0; off < 3; ++off) {
      const K* keys = backing.data() + off;
      std::vector<K> bounds{0, ~0ull};
      for (std::size_t i = 0; i < n; i += (n > 64 ? 5 : 1)) {
        bounds.push_back(keys[i]);
        bounds.push_back(keys[i] + 1);
      }
      for (const K bound : bounds) {
        const std::size_t want = simd::prefix_less_ref(keys, n, bound);
        for (const simd::Isa isa : tiers) {
          ASSERT_EQ(want, simd::prefix_less_keys(keys, n, bound, isa))
              << "n=" << n << " off=" << off << " bound=" << bound
              << " isa=" << simd::isa_name(isa);
        }
      }
    }
  }
}

TEST(SimdKernels, PrefixDistinctMatchesReferenceAllLengthsAndTiers) {
  const auto tiers = testable_isas();
  for (std::size_t n = 0; n <= 257; ++n) {
    for (std::uint64_t variant = 0; variant < 3; ++variant) {
      const std::vector<K> backing = sorted_keys(n + 3, 13 * n + variant, 9);
      for (std::size_t off = 0; off < 3; ++off) {
        const K* keys = backing.data() + off;
        const std::size_t want = simd::prefix_distinct_ref(keys, n);
        for (const simd::Isa isa : tiers) {
          ASSERT_EQ(want, simd::prefix_distinct_keys(keys, n, isa))
              << "n=" << n << " off=" << off << " variant=" << variant
              << " isa=" << simd::isa_name(isa);
        }
      }
    }
  }
}

// Hand-built duplicate edge shapes the random generator may miss: runs of
// all-equal keys, duplicates straddling the 4-wide vector boundary, and a
// lone trailing duplicate pair.
TEST(SimdKernels, PrefixDistinctDuplicateEdgeShapes) {
  const auto tiers = testable_isas();
  const std::vector<std::vector<K>> shapes = {
      {5, 5, 5, 5, 5, 5, 5, 5, 5},          // all equal from index 0
      {1, 2, 3, 4, 4, 5, 6, 7, 8},          // dup pair across lanes 3|4
      {1, 2, 3, 4, 5, 6, 7, 8, 8},          // dup at the very tail
      {1, 1},                               // minimal dup
      {1, 2},                               // minimal distinct
      {1},                                  // singleton: no successor
      {0, ~0ull, ~0ull},                    // extreme values
  };
  for (const auto& keys : shapes) {
    const std::size_t want = simd::prefix_distinct_ref(keys.data(), keys.size());
    for (const simd::Isa isa : tiers) {
      ASSERT_EQ(want, simd::prefix_distinct_keys(keys.data(), keys.size(), isa));
    }
  }
}

// -- run kernels -------------------------------------------------------------

TEST(RunKernels, MergeMatchesReferenceAcrossShapes) {
  const auto tiers = testable_isas();
  const std::size_t lens[] = {0, 1, 2, 3, 5, 8, 16, 33, 128, 257};
  for (const std::size_t an : lens) {
    for (const std::size_t bn : lens) {
      // Overlapping key ranges (base 50 vs 60) force equal-key collisions;
      // the duplicate-heavy generator adds intra-run equal neighbors.
      const Buf a = make_run(sorted_keys(an, an * 31 + bn, 50), 11);
      const Buf b = make_run(sorted_keys(bn, bn * 17 + an, 60), 22);
      Buf want(a), got(a);  // oversize scratch; resized below
      want.resize(an + bn);
      got.resize(an + bn);
      const std::size_t wn = cola::kern::merge_pair_newest_wins_ref(
          a.keys.data(), a.vals.data(), a.flags.data(), an, b.keys.data(),
          b.vals.data(), b.flags.data(), bn, want.keys.data(),
          want.vals.data(), want.flags.data());
      want.resize(wn);
      for (const simd::Isa isa : tiers) {
        got.resize(an + bn);
        const std::size_t gn = cola::kern::merge_pair_newest_wins(
            a.keys.data(), a.vals.data(), a.flags.data(), an, b.keys.data(),
            b.vals.data(), b.flags.data(), bn, got.keys.data(),
            got.vals.data(), got.flags.data(), isa);
        got.resize(gn);
        ASSERT_EQ(want.keys, got.keys) << simd::isa_name(isa);
        ASSERT_EQ(want.vals, got.vals) << simd::isa_name(isa);
        ASSERT_EQ(want.flags, got.flags) << simd::isa_name(isa);
      }
    }
  }
}

TEST(RunKernels, MergeIntoReportsDroppedDuplicates) {
  Buf a, b, out;
  for (K k = 0; k < 10; ++k) a.push_back(k, k, 0);
  for (K k = 5; k < 15; ++k) b.push_back(k, k + 100, k == 7 ? 1 : 0);
  const std::size_t dropped =
      cola::kern::merge_into(a.view(), b.view(), out, simd::Isa::kScalar);
  EXPECT_EQ(5u, dropped);  // keys 5..9 collide
  ASSERT_EQ(15u, out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(static_cast<K>(i), out.keys[i]);
    // Collided keys carry the NEWER run's value and flags.
    EXPECT_EQ(out.keys[i] >= 5 ? out.keys[i] + 100 : out.keys[i], out.vals[i]);
    EXPECT_EQ(out.keys[i] == 7 ? 1 : 0, out.flags[i]);
  }
}

TEST(RunKernels, DedupMatchesReferenceAcrossShapesAndOffsets) {
  const auto tiers = testable_isas();
  for (std::size_t n = 0; n <= 257; n += (n < 40 ? 1 : 13)) {
    for (const std::size_t from : {std::size_t{0}, std::min<std::size_t>(n, 3)}) {
      const Buf base = make_run(sorted_keys(n, n * 7 + from, 0), 33);
      Buf want(base);
      const std::size_t wd = cola::kern::dedup_newest_wins_ref(want, from);
      for (const simd::Isa isa : tiers) {
        Buf got(base);
        const std::size_t gd = cola::kern::dedup_newest_wins(got, from, isa);
        ASSERT_EQ(wd, gd) << "n=" << n << " isa=" << simd::isa_name(isa);
        ASSERT_EQ(want.keys, got.keys) << simd::isa_name(isa);
        ASSERT_EQ(want.vals, got.vals) << simd::isa_name(isa);
        ASSERT_EQ(want.flags, got.flags) << simd::isa_name(isa);
      }
    }
  }
}

TEST(RunKernels, DedupKeepsNewestOfEachGroup) {
  Buf b;
  b.push_back(1, 10, 0);
  b.push_back(1, 11, 1);  // newest of key 1: tombstone, value 11
  b.push_back(2, 20, 0);
  b.push_back(3, 30, 1);
  b.push_back(3, 31, 0);
  b.push_back(3, 32, 0);  // newest of key 3
  for (const simd::Isa isa : testable_isas()) {
    Buf got(b);
    EXPECT_EQ(3u, cola::kern::dedup_newest_wins(got, 0, isa));
    ASSERT_EQ(3u, got.size());
    EXPECT_EQ((std::vector<K>{1, 2, 3}), got.keys);
    EXPECT_EQ((std::vector<V>{11, 20, 32}), got.vals);
    EXPECT_EQ((std::vector<std::uint8_t>{1, 0, 0}), got.flags);
  }
}

/// Reference collapse: fold runs left to right with the scalar merge, newer
/// (righter) run winning ties — the semantics collapse_runs must preserve
/// no matter how it pairs the rounds.
Buf collapse_ref(const Buf& buf, const std::vector<std::uint32_t>& run_list) {
  Buf acc, tmp;
  for (std::size_t r = 0; r < run_list.size(); ++r) {
    const std::size_t b = run_list[r];
    const std::size_t e =
        r + 1 < run_list.size() ? run_list[r + 1] : buf.size();
    tmp.resize(acc.size() + (e - b));
    const std::size_t w = cola::kern::merge_pair_newest_wins_ref(
        acc.keys.data(), acc.vals.data(), acc.flags.data(), acc.size(),
        buf.keys.data() + b, buf.vals.data() + b, buf.flags.data() + b, e - b,
        tmp.keys.data(), tmp.vals.data(), tmp.flags.data());
    tmp.resize(w);
    acc.swap(tmp);
  }
  return acc;
}

TEST(RunKernels, CollapseRunsMatchesSequentialReference) {
  const auto tiers = testable_isas();
  for (const std::size_t nruns : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                  std::size_t{5}, std::size_t{8}}) {
    Buf base;
    std::vector<std::uint32_t> run_list;
    Xoshiro256 rng(nruns * 101);
    for (std::size_t r = 0; r < nruns; ++r) {
      run_list.push_back(static_cast<std::uint32_t>(base.size()));
      // Each arena run is sorted and unique (post-dedup), like the staging
      // arena's invariant; runs overlap so cross-run newest-wins matters.
      std::vector<K> keys = sorted_keys(5 + rng.below(40), r * 7 + 3, r * 4);
      Buf run = make_run(keys, r + 1);
      cola::kern::dedup_newest_wins_ref(run, 0);
      base.append(run.view());
    }
    const Buf want = collapse_ref(base, run_list);
    for (const simd::Isa isa : tiers) {
      Buf got(base), tmp;
      std::vector<std::uint32_t> runs = run_list, tmp_runs;
      std::uint64_t final_dups = 0;
      cola::kern::collapse_runs(got, runs, tmp, tmp_runs, isa, &final_dups);
      ASSERT_EQ(want.keys, got.keys) << "runs=" << nruns << " "
                                     << simd::isa_name(isa);
      ASSERT_EQ(want.vals, got.vals) << simd::isa_name(isa);
      ASSERT_EQ(want.flags, got.flags) << simd::isa_name(isa);
      // Boundary list must describe the result, not a stale round.
      if (got.empty()) {
        EXPECT_TRUE(runs.empty());
      } else {
        ASSERT_EQ(1u, runs.size());
        EXPECT_EQ(0u, runs[0]);
      }
      EXPECT_LE(final_dups, base.size() - got.size() + 0u);
    }
  }
}

// -- fingerprint filters ------------------------------------------------------

TEST(Filters, NoFalseNegativesEver) {
  Xoshiro256 rng(42);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{100}, std::size_t{5000}}) {
    std::vector<K> keys(n);
    for (K& k : keys) k = rng();
    const std::vector<std::uint64_t> f = filt::build_filter(keys.data(), n);
    ASSERT_EQ(filt::filter_words_for(n), f.size());
    ASSERT_EQ(0u, f.size() % filt::kBlockWords);
    for (const K& k : keys) {
      ASSERT_TRUE(filt::filter_may_contain(f.data(), f.size(), filt::key_hash(k)));
    }
  }
}

TEST(Filters, MeasuredFprNearDesignPoint) {
  // Insert 50k random keys, probe 200k keys guaranteed absent, and pin the
  // measured false-positive rate to the design constant the DAM filter
  // bound and cola's ablation benches both quote. The tolerance band is
  // generous (half to double) because blocked designs wobble with load
  // imbalance across blocks, but tight enough to catch a broken hash, a
  // mis-sized table, or a probe-count regression — any of which move the
  // rate by an order of magnitude.
  const std::size_t n = 50000;
  Xoshiro256 rng(7);
  std::vector<K> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = rng() | 1ull;  // odd keys only
  const std::vector<std::uint64_t> f = filt::build_filter(keys.data(), n);

  std::size_t hits = 0;
  const std::size_t probes = 200000;
  for (std::size_t i = 0; i < probes; ++i) {
    const K absent = rng() & ~1ull;  // even keys: disjoint from the inserts
    if (filt::filter_may_contain(f.data(), f.size(), filt::key_hash(absent))) {
      ++hits;
    }
  }
  const double fpr = static_cast<double>(hits) / static_cast<double>(probes);
  EXPECT_GE(fpr, filt::kDesignFpr * 0.5) << "measured " << fpr;
  EXPECT_LE(fpr, filt::kDesignFpr * 2.0) << "measured " << fpr;
}

TEST(Filters, SizingIsBlockGranularAndNonZero) {
  EXPECT_EQ(filt::kBlockWords, filt::filter_words_for(0));  // one block floor
  EXPECT_EQ(filt::kBlockWords, filt::filter_words_for(1));
  EXPECT_EQ(filt::kBlockWords, filt::filter_words_for(51));  // 510 bits
  EXPECT_EQ(2 * filt::kBlockWords, filt::filter_words_for(52));  // 520 bits
  // ~10 bits per key at scale.
  const std::size_t words = filt::filter_words_for(1 << 20);
  const double bits_per_key = static_cast<double>(words * 64) / (1 << 20);
  EXPECT_GE(bits_per_key, 10.0);
  EXPECT_LT(bits_per_key, 10.1);
}

TEST(Filters, HashabilityTraitGatesMinting) {
  struct Padded {
    std::uint32_t a;
    std::uint64_t b;  // 4 padding bytes between a and b
    auto operator<=>(const Padded&) const = default;
  };
  static_assert(filt::filter_hashable_v<std::uint64_t>);
  static_assert(filt::filter_hashable_v<std::uint32_t>);
  static_assert(!filt::filter_hashable_v<Padded>);
  SUCCEED();
}

}  // namespace
}  // namespace costream
