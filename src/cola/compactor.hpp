// Background compaction engine: the process-shared executor that takes
// tiered fold work off the mutating thread (cola.hpp enqueues, installs,
// and keeps every STRUCTURAL mutation on the writer thread — the executor
// only ever computes over immutable inputs).
//
// Division of labor. A FoldJob is a pure function over ref-counted
// immutable segments (snap::Segment): the writer snapshots the fold's
// input segment refs and enqueues; the job runs the same plane-kernel
// newest-wins collapse the synchronous path uses (cola/kernels.hpp),
// strips tombstones when the fold lands past all older data, and mints
// the output's Bloom filter — all without touching the owning Gcola. The
// writer installs the finished planes as a new segment at its next
// mutation (an atomic-with-respect-to-readers segment-set swap + epoch
// bump), so single-writer discipline is preserved end to end and the
// durable tier's WAL-synced-before-install invariant holds for free: the
// spill observer still fires on the writer thread, inside a mutator.
//
// Intra-fold parallelism. Large folds are cut at key pivots (taken from
// the largest input run) into independent sub-ranges: every input span is
// split at the pivots with a lower_bound per cut, so all copies of a key
// land in the same sub-range and the newest-wins tie-break (higher span
// index wins) is preserved per sub-range. Sub-merges run on the pool with
// the SUBMITTING thread participating (it claims unclaimed sub-tasks), so
// nested parallelism can never deadlock the pool.
//
// One pool per process. Every Gcola — including the S shards of a
// ShardedDictionary — shares Pool::instance(), sized to the LARGEST
// compaction_threads any structure asked for (capped at the hardware
// thread count), so S shards with 2 compaction threads each contend for
// one bounded pool instead of oversubscribing S*2 cores. The queue is
// bounded; a saturated queue rejects the submit and the writer folds
// inline (writer-assist backpressure — compaction debt can never grow
// unboundedly). Forced folds (tombstone/staleness pressure) jump the
// queue: they are the retention policy's correctness valve, not an
// optimization.
//
// COSTREAM_COMPACTION=sync is the escape hatch: it clamps every structure
// to inline folds, which must be (and is CI-verified to be) behaviorally
// identical to background mode on the differential suites.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "cola/kernels.hpp"
#include "common/filter.hpp"
#include "common/simd.hpp"
#include "common/snapshot.hpp"

namespace costream::cola::compact {

/// Process-wide escape hatch: COSTREAM_COMPACTION=sync forces every fold
/// inline regardless of configuration (differential CI, bisection).
inline bool sync_forced() noexcept {
  static const bool v = [] {
    const char* e = std::getenv("COSTREAM_COMPACTION");
    return e != nullptr && std::string_view(e) == "sync";
  }();
  return v;
}

/// The process-shared compaction pool: grow-only worker set, bounded
/// two-priority queue, and a cooperative batch runner for intra-fold
/// sub-merges. Thread-safe; one instance per process (leaked on purpose —
/// detached workers live until process exit, so no static-destruction
/// join ordering problems).
class Pool {
 public:
  static Pool& instance() {
    static Pool* p = new Pool();  // intentionally leaked (reachable)
    return *p;
  }

  /// Grow the worker set to at least n threads (capped at the hardware
  /// thread count). Called from every Gcola constructor that enables
  /// background compaction, so the pool is sized to the largest request.
  void ensure_threads(unsigned n) {
    if (n == 0) return;
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    n = std::min(n, hw);
    std::lock_guard<std::mutex> lk(m_);
    while (workers_ < n) {
      spawn_worker();
      ++workers_;
    }
  }

  unsigned threads() const {
    std::lock_guard<std::mutex> lk(m_);
    return workers_;
  }

  /// Enqueue a job runner. Returns false when there are no workers or the
  /// queue is saturated — the caller must then run the work inline
  /// (writer-assist backpressure). `forced` jobs (retention-pressure
  /// folds) jump the queue and ignore the bound: there is at most one
  /// in-flight fold per structure, so forced depth is bounded by the
  /// number of live structures. `depth_out`, when non-null, receives the
  /// queue depth right after the push (per-structure peak tracking).
  bool submit(std::function<void()> fn, bool forced,
              std::uint64_t* depth_out) {
    {
      std::lock_guard<std::mutex> lk(m_);
      if (workers_ == 0) return false;
      if (!forced && q_.size() >= queue_cap()) return false;
      if (forced) {
        q_.push_front(std::move(fn));
      } else {
        q_.push_back(std::move(fn));
      }
      queue_peak_ = std::max<std::uint64_t>(queue_peak_, q_.size());
      if (depth_out != nullptr) *depth_out = q_.size();
    }
    cv_.notify_one();
    return true;
  }

  /// Run `tasks` to completion using idle workers AND the calling thread:
  /// the caller claims unclaimed tasks itself, so this completes even when
  /// every worker is busy (including when the caller IS a worker running a
  /// fold that fans out sub-merges — nested use cannot deadlock).
  void run_batch(std::vector<std::function<void()>>& tasks) {
    const std::size_t n = tasks.size();
    if (n == 0) return;
    if (n == 1) {
      tasks[0]();
      return;
    }
    auto batch = std::make_shared<Batch>();
    batch->tasks = &tasks;
    batch->n = n;
    std::size_t helpers = 0;
    {
      std::lock_guard<std::mutex> lk(m_);
      helpers = std::min<std::size_t>(workers_, n - 1);
      for (std::size_t i = 0; i < helpers; ++i) {
        // Front of the queue: sub-merges extend a fold already holding a
        // worker; starving them behind whole queued folds inverts priority.
        q_.push_front([batch] { batch->drain(); });
      }
      queue_peak_ = std::max<std::uint64_t>(queue_peak_, q_.size());
    }
    if (helpers > 0) cv_.notify_all();
    batch->drain();
    batch->wait();
  }

  /// High-water queue depth since process start (observability).
  std::uint64_t queue_peak() const {
    std::lock_guard<std::mutex> lk(m_);
    return queue_peak_;
  }

 private:
  Pool() = default;

  struct Batch {
    std::vector<std::function<void()>>* tasks = nullptr;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex m;
    std::condition_variable cv;

    void drain() {
      for (std::size_t i; (i = next.fetch_add(1, std::memory_order_relaxed)) < n;) {
        (*tasks)[i]();
        if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
          std::lock_guard<std::mutex> lk(m);
          cv.notify_all();
        }
      }
    }
    void wait() {
      std::unique_lock<std::mutex> lk(m);
      cv.wait(lk, [&] { return done.load(std::memory_order_acquire) >= n; });
    }
  };

  std::size_t queue_cap() const { return 2 * workers_ + 2; }

  void spawn_worker() {
    std::thread([this] {
      for (;;) {
        std::function<void()> fn;
        {
          std::unique_lock<std::mutex> lk(m_);
          cv_.wait(lk, [&] { return !q_.empty(); });
          fn = std::move(q_.front());
          q_.pop_front();
        }
        fn();
      }
    }).detach();
  }

  mutable std::mutex m_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> q_;
  unsigned workers_ = 0;
  std::uint64_t queue_peak_ = 0;
};

namespace detail {

/// Serial newest-wins collapse of sorted spans (ordered oldest -> newest)
/// into `out` — the same gather-then-pairwise-rounds shape the synchronous
/// fold uses in cache, with caller-owned scratch so concurrent sub-merges
/// never share buffers. `final_dups` receives the final round's drop count
/// (the distinct-duplicated-keys sample the staleness estimator consumes).
template <class K, class V>
void collapse_spans_serial(const std::vector<kern::RunView<K, V>>& spans,
                           std::size_t total, simd::Isa isa,
                           kern::RunBuf<K, V>& out, kern::RunBuf<K, V>& tmp,
                           std::vector<std::uint32_t>& runs,
                           std::vector<std::uint32_t>& runs_scratch,
                           std::uint64_t* final_dups) {
  if (final_dups != nullptr) *final_dups = 0;
  if (spans.empty()) {
    out.clear();
    return;
  }
  if (spans.size() == 1) {
    out.assign(spans[0]);
    return;
  }
  out.resize(total);
  runs.clear();
  std::size_t w = 0;
  for (std::size_t i = 0; i < spans.size(); i += 2) {
    runs.push_back(static_cast<std::uint32_t>(w));
    if (i + 1 >= spans.size()) {  // odd span out: carry over
      std::copy_n(spans[i].keys, spans[i].n, out.keys.data() + w);
      std::copy_n(spans[i].vals, spans[i].n, out.vals.data() + w);
      std::copy_n(spans[i].flags, spans[i].n, out.flags.data() + w);
      w += spans[i].n;
      break;
    }
    w += kern::merge_pair_newest_wins(
        spans[i].keys, spans[i].vals, spans[i].flags, spans[i].n,
        spans[i + 1].keys, spans[i + 1].vals, spans[i + 1].flags,
        spans[i + 1].n, out.keys.data() + w, out.vals.data() + w,
        out.flags.data() + w, isa);
  }
  out.resize(w);
  if (spans.size() <= 2 && final_dups != nullptr) *final_dups = total - w;
  kern::collapse_runs(out, runs, tmp, runs_scratch, isa, final_dups);
}

}  // namespace detail

// Folds at least this large consider the range-partitioned parallel merge
// (elements; below it the partition bookkeeping costs more than it buys).
inline constexpr std::size_t kParallelFoldCutoff = std::size_t{1} << 16;

/// Newest-wins k-way fold of `spans` (ordered oldest -> newest, `total`
/// elements in all) into `out`. When `ways > 1` and the fold is large, the
/// key range is cut at pivots drawn from the largest span into up to
/// `ways` disjoint sub-ranges — every span split at the same pivots by
/// lower_bound, so all copies of a key share a sub-range and per-range
/// span order (and therefore the newest-wins tie-break) is untouched —
/// merged independently on the pool, and the output planes stitched back
/// in key order. `final_dups` sums the sub-merges' distinct-duplicate
/// samples (keys never straddle a cut, so the sum is the same statistic
/// the serial fold reports).
template <class K, class V>
void fold_spans(const std::vector<kern::RunView<K, V>>& spans,
                std::size_t total, unsigned ways, simd::Isa isa,
                kern::RunBuf<K, V>& out, std::uint64_t* final_dups) {
  kern::RunBuf<K, V> tmp;
  std::vector<std::uint32_t> runs, runs_scratch;
  if (ways <= 1 || total < kParallelFoldCutoff || spans.size() < 2) {
    detail::collapse_spans_serial(spans, total, isa, out, tmp, runs,
                                  runs_scratch, final_dups);
    return;
  }
  // Pivots: evenly spaced keys of the largest span (the best single proxy
  // for the fold's key distribution). Equal pivots collapse, so skewed
  // inputs degrade to fewer, larger sub-ranges — never to wrong ones.
  std::size_t largest = 0;
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].n > spans[largest].n) largest = i;
  }
  std::vector<K> pivots;
  for (unsigned p = 1; p < ways; ++p) {
    const K& k = spans[largest].keys[spans[largest].n * p / ways];
    if (pivots.empty() || pivots.back() < k) pivots.push_back(k);
  }
  if (pivots.empty()) {
    detail::collapse_spans_serial(spans, total, isa, out, tmp, runs,
                                  runs_scratch, final_dups);
    return;
  }
  const std::size_t parts = pivots.size() + 1;
  // cuts[s][p]: first index of span s belonging to part p (cuts[s][0] = 0,
  // cuts[s][parts] = n). lower_bound at each pivot sends every copy of the
  // pivot key right, uniformly across spans.
  std::vector<std::vector<std::size_t>> cuts(spans.size());
  for (std::size_t s = 0; s < spans.size(); ++s) {
    cuts[s].resize(parts + 1);
    cuts[s][0] = 0;
    cuts[s][parts] = spans[s].n;
    for (std::size_t p = 0; p < pivots.size(); ++p) {
      cuts[s][p + 1] = static_cast<std::size_t>(
          std::lower_bound(spans[s].keys, spans[s].keys + spans[s].n,
                           pivots[p]) -
          spans[s].keys);
    }
  }
  struct Part {
    std::vector<kern::RunView<K, V>> spans;
    std::size_t total = 0;
    kern::RunBuf<K, V> out, tmp;
    std::vector<std::uint32_t> runs, runs_scratch;
    std::uint64_t dups = 0;
  };
  std::vector<Part> part(parts);
  for (std::size_t p = 0; p < parts; ++p) {
    for (std::size_t s = 0; s < spans.size(); ++s) {
      const std::size_t b = cuts[s][p], e = cuts[s][p + 1];
      if (b == e) continue;  // empty sub-span; order of the rest is kept
      part[p].spans.push_back(kern::RunView<K, V>{
          spans[s].keys + b, spans[s].vals + b, spans[s].flags + b, e - b});
      part[p].total += e - b;
    }
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(parts);
  for (std::size_t p = 0; p < parts; ++p) {
    Part* pp = &part[p];
    tasks.push_back([pp, isa] {
      detail::collapse_spans_serial(pp->spans, pp->total, isa, pp->out,
                                    pp->tmp, pp->runs, pp->runs_scratch,
                                    &pp->dups);
    });
  }
  Pool::instance().run_batch(tasks);
  std::size_t w = 0;
  std::uint64_t dups = 0;
  for (const Part& pp : part) {
    w += pp.out.size();
    dups += pp.dups;
  }
  out.resize(w);
  std::size_t at = 0;
  for (const Part& pp : part) {
    std::copy_n(pp.out.keys.data(), pp.out.size(), out.keys.data() + at);
    std::copy_n(pp.out.vals.data(), pp.out.size(), out.vals.data() + at);
    std::copy_n(pp.out.flags.data(), pp.out.size(), out.flags.data() + at);
    at += pp.out.size();
  }
  if (final_dups != nullptr) *final_dups = dups;
}

/// One deferred fold: immutable inputs snapshotted by the writer, outputs
/// owned by the job, and a tiny claimed/done state machine so a saturated
/// or impatient writer can claim the job and run it inline (writer
/// assist) without racing the pool worker. The job NEVER touches the
/// owning structure: it reads ref-counted segments and writes only its
/// own buffers, so it is safe regardless of what the writer does —
/// including destroying the structure (the pool's shared_ptr keeps the
/// job alive; its segment refs keep the inputs alive).
template <class K, class V>
class FoldJob {
 public:
  // -- writer-filled inputs (immutable once enqueued) --
  std::vector<snap::SegmentRef<K, V>> inputs;  // oldest -> newest
  bool drop_tombstones = false;
  bool mint_filter = false;
  simd::Isa isa = simd::Isa::kScalar;
  unsigned ways = 1;  // intra-fold sub-merge parallelism

  // -- job-filled outputs (valid after done()) --
  kern::RunBuf<K, V> out;
  std::vector<std::uint64_t> filter_words;
  std::uint64_t final_dups = 0;
  std::uint64_t tombstones_dropped = 0;
  std::uint64_t fold_ns = 0;

  /// Exactly one runner wins the claim (pool worker vs assisting writer).
  bool try_claim() {
    int expected = 0;
    return state_.compare_exchange_strong(expected, 1,
                                          std::memory_order_acq_rel);
  }

  bool done() const {
    return state_.load(std::memory_order_acquire) == 2;
  }

  /// Block until the (already claimed, by someone) job completes.
  void wait_done() {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] { return state_.load(std::memory_order_acquire) == 2; });
  }

  /// Execute the fold. Caller must hold the claim.
  void run() {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<kern::RunView<K, V>> spans;
    spans.reserve(inputs.size());
    std::size_t total = 0;
    for (const snap::SegmentRef<K, V>& seg : inputs) {
      spans.push_back(kern::RunView<K, V>{seg->keys.data(), seg->vals.data(),
                                          seg->flags.data(), seg->size()});
      total += seg->size();
    }
    fold_spans(spans, total, ways, isa, out, &final_dups);
    if (drop_tombstones) strip();
    if constexpr (filt::filter_hashable_v<K>) {
      if (mint_filter && !out.empty()) {
        filter_words = filt::build_filter(out.keys.data(), out.keys.size());
      }
    }
    fold_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    {
      std::lock_guard<std::mutex> lk(m_);
      state_.store(2, std::memory_order_release);
    }
    cv_.notify_all();
  }

 private:
  void strip() {
    constexpr std::uint8_t kTomb =
        static_cast<std::uint8_t>(snap::Item<K, V>::kFlagTombstone);
    std::size_t w = 0;
    for (std::size_t r = 0; r < out.size(); ++r) {
      if ((out.flags[r] & kTomb) != 0) {
        ++tombstones_dropped;
        continue;
      }
      out.keys[w] = out.keys[r];
      out.vals[w] = out.vals[r];
      out.flags[w] = out.flags[r];
      ++w;
    }
    out.resize(w);
  }

  std::atomic<int> state_{0};  // 0 queued, 1 claimed/running, 2 done
  std::mutex m_;
  std::condition_variable cv_;
};

}  // namespace costream::cola::compact
