// Memory-model policy shared by every data structure in the library.
//
// The paper analyzes all structures in the Disk Access Machine (DAM) model
// [Aggarwal & Vitter]: an internal memory of M bytes organized into B-byte
// blocks in front of an arbitrarily large external memory; cost = number of
// block transfers. The *cache-oblivious* model is the same, except B and M
// are unknown to the algorithm.
//
// We preserve cache-obliviousness by construction: each structure reports its
// memory accesses (offset, length) against a logical address space that
// mirrors its real layout, and never sees B or M. The policy decides what to
// do with those reports:
//
//   * null_mem_model  — compiles to nothing; used for wall-clock benches.
//   * dam_mem_model   — LRU cache of M bytes over B-byte blocks; counts
//                       sequential and random transfers and models disk time
//                       (dam/dam_mem_model.hpp).
//
// Structures take `MM` as a template parameter and call
// `mm.touch(offset, len)` (read) / `mm.touch_write(offset, len)` (write).
#pragma once

#include <concepts>
#include <cstdint>

namespace costream::dam {

template <class MM>
concept MemModel = requires(MM m, std::uint64_t off, std::uint64_t len) {
  { m.touch(off, len) };
  { m.touch_write(off, len) };
};

/// The zero-cost model: all accounting compiles away.
struct null_mem_model {
  static constexpr bool kCounting = false;
  void touch(std::uint64_t, std::uint64_t) const noexcept {}
  void touch_write(std::uint64_t, std::uint64_t) const noexcept {}
};

static_assert(MemModel<null_mem_model>);

}  // namespace costream::dam
