// Cache-oblivious B-tree baseline — Bender, Demaine, Farach-Colton
// (reference [6] of the paper). The paper's shuttle tree "retains the
// asymptotic search cost of the CO B-tree while improving the insert cost",
// so this structure is the search-optimal cache-oblivious baseline the
// shuttle tree is measured against.
//
// Construction (the classic two-piece design):
//   * the entries live in key order inside a packed-memory array (pma::Pma);
//   * a static search tree in van Emde Boas layout indexes the PMA, one
//     index node per PMA segment, keyed by the segment's leader (its first
//     occupied element).
//
// Searches descend the vEB index — O(log_{B+1} N) transfers, cache-
// obliviously — and finish with a one-segment scan (a segment is Theta(log N)
// contiguous elements, O(1) blocks). Inserts place the element via the PMA
// (amortized O((log^2 N)/B) moves) and patch the index in place: PMA
// rebalances preserve element order, so segment leaders change value but not
// order, and in-place key updates keep the BST property intact. Only a
// capacity change (PMA resize) rebuilds the index, which is amortized O(1)
// per update.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/entry.hpp"
#include "common/snapshot.hpp"
#include "common/span.hpp"
#include "dam/mem_model.hpp"
#include "layout/veb_static.hpp"
#include "pma/pma.hpp"

namespace costream::cob {

template <class K = Key, class V = Value, class MM = dam::null_mem_model>
class CobTree {
 public:
  using Ent = Entry<K, V>;
  using P = pma::Pma<Ent, MM>;
  using slot_t = typename P::slot_t;
  static constexpr slot_t npos = P::npos;

  /// The index lives in its own logical region far above the PMA region so
  /// the DAM cache sees them as distinct blocks.
  static constexpr std::uint64_t kIndexRegion = 1ULL << 40;

  explicit CobTree(MM mm = MM{}) : pma_(std::move(mm)) { rebuild_index(); }

  std::uint64_t size() const noexcept { return pma_.size(); }
  bool empty() const noexcept { return pma_.empty(); }
  MM& mm() noexcept { return pma_.mm(); }
  const P& pma() const noexcept { return pma_; }

  std::optional<V> find(const K& key) const {
    const slot_t s = predecessor_slot(key);
    if (s == npos) return std::nullopt;
    const Ent& e = pma_.at(s);
    if (e.key == key) return e.value;
    return std::nullopt;
  }

  /// Upsert.
  void insert(const K& key, const V& value) {
    ++mutation_epoch_;
    const slot_t pred = predecessor_slot(key);
    if (pred != npos) {
      Ent& e = pma_.at(pred);
      if (e.key == key) {
        e.value = value;
        return;
      }
    }
    pma_.insert_after(pred, Ent{key, value});
    sync_index();
  }

  /// Bulk upsert (batch contract in api/dictionary.hpp): normalize the run
  /// once, then insert in ascending key order. Consecutive keys land in the
  /// same or adjacent PMA segments, so rebalance windows overlap and the
  /// vEB descent reuses the same root-to-segment path blocks. An empty
  /// structure takes the pure bulk-load path: one rolling-predecessor PMA
  /// placement and a single index rebuild.
  void insert_batch(Span<Ent> batch) {
    if (batch.empty()) return;
    ++mutation_epoch_;
    std::vector<Ent>& run = batch_scratch_;
    run.assign(batch.begin(), batch.end());
    sort_dedup_newest_wins(run, batch_sort_scratch_);
    if (pma_.empty()) {
      pma_.insert_batch_after(npos, run.data(), run.size());
      rebuild_index();
      return;
    }
    for (const Ent& e : run) insert(e.key, e.value);
  }

  /// Bulk delete (batch contract in api/dictionary.hpp): sort the keys once
  /// and erase ascending — successive keys hit the same or adjacent PMA
  /// segments, so the vEB descents and rebalance windows overlap. Duplicate
  /// keys collapse to one erase; absent keys are no-ops.
  void erase_batch(Span<K> keys) {
    if (keys.empty()) return;
    std::vector<K>& ks = erase_scratch_;
    ks.assign(keys.begin(), keys.end());
    std::sort(ks.begin(), ks.end());
    ks.erase(std::unique(ks.begin(), ks.end()), ks.end());
    for (const K& k : ks) erase(k);
  }

  /// Mixed put/erase batch: normalize once (the LAST op on a key wins),
  /// apply ascending — upserts through insert(), deletes through erase(),
  /// no tombstones anywhere in the PMA.
  void apply_batch(Span<Op<K, V>> ops) {
    if (ops.empty()) return;
    std::vector<Op<K, V>>& run = op_scratch_;
    run.assign(ops.begin(), ops.end());
    sort_dedup_newest_wins(run, op_sort_scratch_);
    for (const Op<K, V>& o : run) {
      if (o.erase) {
        erase(o.key);
      } else {
        insert(o.key, o.value);
      }
    }
  }

  // Deprecated pointer-form batch shims (one release; migration note in
  // api/dictionary.hpp — CI's deprecated-api lint rejects in-repo callers).
  void insert_batch(const Ent* data, std::size_t n) {
    insert_batch(Span<Ent>(data, n));
  }
  void erase_batch(const K* keys, std::size_t n) {
    erase_batch(Span<K>(keys, n));
  }
  void apply_batch(const Op<K, V>* ops, std::size_t n) {
    apply_batch(Span<Op<K, V>>(ops, n));
  }

  /// Mutation epoch: bumped by every mutator (see snapshot()).
  std::uint64_t mutation_epoch() const noexcept { return mutation_epoch_; }

  /// Point-in-time snapshot (contract in api/dictionary.hpp). In-place
  /// structure: the live contents materialize into one immutable segment,
  /// cached per mutation epoch; the handle stays valid across mutations.
  snap::Snapshot<K, V> snapshot() const {
    if (snap_cache_ && snap_epoch_ == mutation_epoch_) return snap_cache_;
    snap_cache_ = snap::materialize<K, V>(*this, mutation_epoch_);
    snap_epoch_ = mutation_epoch_;
    return snap_cache_;
  }

  /// Returns true if the key existed.
  bool erase(const K& key) {
    ++mutation_epoch_;
    const slot_t s = predecessor_slot(key);
    if (s == npos || pma_.at(s).key != key) return false;
    pma_.erase(s);
    sync_index();
    return true;
  }

  /// Visit entries with lo <= key <= hi in ascending order — one code path
  /// with the cursor API.
  template <class Fn>
  void range_for_each(const K& lo, const K& hi, Fn&& fn) const {
    if (hi < lo) return;
    Cursor c(this, &scan_state_);
    for (c.seek(lo, hi); c.valid(); c.next()) {
      const Ent& e = c.entry();
      fn(e.key, e.value);
    }
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    Cursor c(this, &scan_state_);
    for (c.seek_first(); c.valid(); c.next()) {
      const Ent& e = c.entry();
      fn(e.key, e.value);
    }
  }

  // -- cursor -----------------------------------------------------------------

  /// Cursor scratch: a positional PMA cursor plus the bound. The vEB index
  /// accelerates the seek (one descent); next() is the PMA's amortized-O(1)
  /// occupied-slot walk.
  struct CursorState {
    typename P::Cursor pc{};
    bool valid = false;
    bool bounded = false;
    K hi{};
    Ent cur{};
  };

  /// Resumable ordered cursor (Dictionary cursor contract in
  /// api/dictionary.hpp). Any mutation invalidates the cursor (PMA
  /// rebalances relocate elements) until the next seek.
  class Cursor {
   public:
    Cursor() = default;

    void seek(const K& lo) { do_seek(&lo, nullptr); }
    void seek(const K& lo, const K& hi) {
      if (hi < lo) {
        st_->valid = false;
        return;
      }
      do_seek(&lo, &hi);
    }
    void seek_first() { do_seek(nullptr, nullptr); }

    bool valid() const { return st_->valid; }
    const Ent& entry() const { return st_->cur; }

    void next() {
      CursorState& st = *st_;
      if (!st.valid) return;
      st.pc.next();
      settle();
    }

   private:
    friend class CobTree;
    explicit Cursor(const CobTree* d)
        : d_(d), own_(std::make_unique<CursorState>()), st_(own_.get()) {}
    Cursor(const CobTree* d, CursorState* st) : d_(d), st_(st) {}

    void do_seek(const K* lo, const K* hi) {
      CursorState& st = *st_;
      const CobTree& d = *d_;
      st.bounded = hi != nullptr;
      if (hi != nullptr) st.hi = *hi;
      st.valid = false;
      st.pc = d.pma_.make_cursor();
      if (d.pma_.empty()) return;
      if (lo == nullptr) {
        st.pc.seek_first();
      } else {
        // vEB descent to the predecessor segment, then adjust to the first
        // slot at-or-after lo.
        const slot_t pred = d.predecessor_slot(*lo);
        if (pred == npos) {
          st.pc.seek_first();
        } else if (d.pma_.at(pred).key < *lo) {
          st.pc.seek_slot(pred);
          st.pc.next();
        } else {
          st.pc.seek_slot(pred);
        }
      }
      settle();
    }

    void settle() {
      CursorState& st = *st_;
      if (!st.pc.valid()) {
        st.valid = false;
        return;
      }
      const Ent& e = st.pc.item();
      if (st.bounded && st.hi < e.key) {
        st.valid = false;
        return;
      }
      st.cur = e;
      st.valid = true;
    }

    const CobTree* d_ = nullptr;
    std::unique_ptr<CursorState> own_;
    CursorState* st_ = nullptr;
  };

  /// Detached cursor (Dictionary concept).
  Cursor make_cursor() const { return Cursor(this); }

  /// Structural checks: PMA invariants, global order, index consistency.
  void check_invariants() const {
    pma_.check_invariants();
    // Entries ascend strictly.
    bool have_prev = false;
    K prev{};
    for (slot_t s = pma_.first(); s != npos; s = pma_.next(s)) {
      const K& k = pma_.at(s).key;
      if (have_prev && !(prev < k)) throw std::logic_error("cob: order violated");
      prev = k;
      have_prev = true;
    }
    // Index soundness: leaders never overstate a segment's first key (erases
    // may leave them understated, which searches tolerate), and the key
    // sequence stored in the index is non-decreasing.
    if (!pma_.empty()) {
      if (index_.size() != segments()) throw std::logic_error("cob: index size drift");
      const std::uint64_t ss = pma_.segment_slots();
      for (std::uint64_t g = 0; g < segments(); ++g) {
        if (g > 0 && index_.key_of_rank(g) < index_.key_of_rank(g - 1)) {
          throw std::logic_error("cob: index keys decrease");
        }
        for (std::uint64_t s = g * ss; s < (g + 1) * ss; ++s) {
          if (pma_.occupied(s)) {
            if (pma_.at(s).key < index_.key_of_rank(g)) {
              throw std::logic_error("cob: index leader overstates segment");
            }
            break;
          }
        }
      }
    }
  }

 private:
  std::uint64_t segments() const noexcept { return pma_.capacity() / pma_.segment_slots(); }

  /// Leaders for every segment; empty segments inherit the nearest leader to
  /// the left (or, for leading empties, the first real leader), keeping the
  /// sequence non-decreasing so BST search stays sound.
  std::vector<K> compute_leaders() const {
    const std::uint64_t segs = segments();
    const std::uint64_t ss = pma_.segment_slots();
    std::vector<K> leaders(segs);
    std::vector<bool> known(segs, false);
    for (std::uint64_t g = 0; g < segs; ++g) {
      for (std::uint64_t s = g * ss; s < (g + 1) * ss; ++s) {
        if (pma_.occupied(s)) {
          leaders[g] = pma_.at(s).key;
          known[g] = true;
          break;
        }
      }
    }
    // Fill empties: left-to-right inheritance, then leading empties from the
    // first known leader.
    K first_known{};
    bool have_first = false;
    for (std::uint64_t g = 0; g < segs; ++g) {
      if (known[g] && !have_first) {
        first_known = leaders[g];
        have_first = true;
      }
    }
    if (!have_first) return {};  // empty structure
    K prev = first_known;
    for (std::uint64_t g = 0; g < segs; ++g) {
      if (known[g]) {
        prev = leaders[g];
      } else {
        leaders[g] = prev;
      }
    }
    return leaders;
  }

  void rebuild_index() {
    index_.build(compute_leaders(), kIndexRegion);
    index_epoch_ = pma_.resize_epoch();
  }

  /// After a PMA mutation: rebuild on resize, otherwise patch the leaders of
  /// the segments the last rebalance touched.
  void sync_index() {
    if (pma_.resize_epoch() != index_epoch_ || index_.size() != segments()) {
      rebuild_index();
      return;
    }
    const auto [lo, hi] = pma_.last_rebalanced_range();
    const std::uint64_t ss = pma_.segment_slots();
    const std::uint64_t g_lo = lo / ss;
    const std::uint64_t g_hi = (hi + ss - 1) / ss;
    K prev{};
    bool have_prev = false;
    if (g_lo > 0) {
      prev = index_.key_of_rank(g_lo - 1);
      have_prev = true;
    }
    // Two passes as in compute_leaders, restricted to the window. Leading
    // empties with no left neighbor take the first known leader in-window;
    // if the whole window is empty the old keys are left untouched (they are
    // still non-decreasing and bound the window correctly).
    std::vector<K> fresh(g_hi - g_lo);
    std::vector<bool> known(g_hi - g_lo, false);
    for (std::uint64_t g = g_lo; g < g_hi; ++g) {
      for (std::uint64_t s = g * ss; s < (g + 1) * ss; ++s) {
        if (pma_.occupied(s)) {
          fresh[g - g_lo] = pma_.at(s).key;
          known[g - g_lo] = true;
          break;
        }
      }
    }
    if (!have_prev) {
      for (std::uint64_t i = 0; i < fresh.size(); ++i) {
        if (known[i]) {
          prev = fresh[i];
          have_prev = true;
          break;
        }
      }
      if (!have_prev) return;  // window (and prefix) fully empty
    }
    for (std::uint64_t i = 0; i < fresh.size(); ++i) {
      if (known[i]) {
        prev = fresh[i];
      } else {
        fresh[i] = prev;
      }
      index_.update_key(g_lo + i, fresh[i], pma_.mm());
    }
    // Right clamp: erases can leave leaders to the right of the window
    // understated below the freshly patched values, which would break the
    // BST's non-decreasing key order. Raise them to `prev` (still a lower
    // bound on their segments' first keys, since every key right of the
    // window exceeds every key inside it).
    for (std::uint64_t g = g_hi; g < segments(); ++g) {
      if (!(index_.key_of_rank(g) < prev)) break;
      index_.update_key(g, prev, pma_.mm());
    }
  }

  /// Slot of the largest key <= `key`, or npos. vEB descent plus a segment
  /// scan; empty segments fall back to pma_.prev().
  slot_t predecessor_slot(const K& key) const {
    if (pma_.empty() || index_.empty()) return npos;
    const std::int64_t seg = index_.predecessor_rank(key, pma_.mm());
    if (seg < 0) return npos;
    const std::uint64_t ss = pma_.segment_slots();
    const std::uint64_t base = static_cast<std::uint64_t>(seg) * ss;
    slot_t best = npos;
    for (std::uint64_t s = base; s < base + ss && s < pma_.capacity(); ++s) {
      if (!pma_.occupied(s)) continue;
      if (pma_.at(s).key <= key) {
        best = s;
      } else {
        break;
      }
    }
    if (best != npos) return best;
    // Segment empty or its first key exceeds `key` (possible when the leader
    // was inherited or went stale after an erase — leaders only ever
    // understate): walk back to the true predecessor.
    slot_t s = pma_.prev(base);
    while (s != npos && key < pma_.at(s).key) s = pma_.prev(s);
    return s;
  }

  mutable P pma_;
  mutable layout::VebStaticTree<K, MM> index_;
  std::uint64_t index_epoch_ = ~0ULL;
  // Dictionary-owned cursor scratch backing range_for_each/for_each.
  mutable CursorState scan_state_;
  // Snapshot cache: one materialized segment per mutation epoch (see
  // snapshot()).
  std::uint64_t mutation_epoch_ = 0;
  mutable snap::Snapshot<K, V> snap_cache_;
  mutable std::uint64_t snap_epoch_ = 0;
  std::vector<Ent> batch_scratch_, batch_sort_scratch_;  // insert_batch staging, reused
  std::vector<K> erase_scratch_;                         // erase_batch staging, reused
  std::vector<Op<K, V>> op_scratch_, op_sort_scratch_;   // apply_batch staging, reused
};

}  // namespace costream::cob
