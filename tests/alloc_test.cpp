// Allocation-counting hook for the hot-path guarantees: this binary
// replaces global operator new/delete with counting versions, warms each
// write-optimized structure past its scratch high-water marks, and then
// asserts that the steady-state single-op insert path performs ZERO heap
// allocations — the reusable-scratch contract of the COLA cascade, the
// shuttle tree's in-place buffer merges, and the BRT's flush frames.
//
// "Steady state" excludes structural growth (a brand-new level or node, a
// layout rebuild): those allocate by design and amortize away. The windows
// below are sized to sit strictly between growth events for deterministic
// workloads, so the assertions are exact, not statistical.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "brt/brt.hpp"
#include "cola/cola.hpp"
#include "common/entry.hpp"
#include "common/rng.hpp"
#include "common/snapshot.hpp"
#include "shuttle/shuttle_tree.hpp"

namespace {
// Plain (non-atomic) counter: the tests are single-threaded and the counter
// must itself stay allocation-free.
std::uint64_t g_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocs;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}

// GCC pairs these frees against the replaced operator new and flags a
// mismatch; the pairing is in fact consistent (every new above allocates
// with malloc/aligned_alloc).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace costream {
namespace {

/// Allocations performed by `fn`.
template <class Fn>
std::uint64_t count_allocs(Fn&& fn) {
  const std::uint64_t before = g_allocs;
  fn();
  return g_allocs - before;
}

TEST(AllocFree, ColaSteadyStateSingleInserts) {
  cola::Gcola<> d;
  // Warm past the 2^16 cascade so every scratch vector has seen its
  // high-water merge; the next deeper cascade is at ~2^17 items, safely
  // outside the measurement window.
  std::uint64_t s = 7;
  for (std::uint64_t i = 0; i < 70'000; ++i) d.insert(splitmix64(s), i);
  const std::uint64_t allocs = count_allocs([&] {
    for (std::uint64_t i = 0; i < 4'000; ++i) d.insert(splitmix64(s), i);
  });
  EXPECT_EQ(allocs, 0u) << "single-op COLA insert path allocates in steady state";
  d.check_invariants();
}

TEST(AllocFree, ColaSteadyStateErases) {
  cola::Gcola<> d;
  std::uint64_t s = 11;
  for (std::uint64_t i = 0; i < 70'000; ++i) d.insert(splitmix64(s), i);
  const std::uint64_t allocs = count_allocs([&] {
    std::uint64_t e = 11;
    for (std::uint64_t i = 0; i < 2'000; ++i) d.erase(splitmix64(e));
  });
  EXPECT_EQ(allocs, 0u) << "tombstone path allocates in steady state";
}

TEST(AllocFree, ColaSteadyStateBatches) {
  cola::Gcola<> d;
  std::uint64_t s = 13;
  std::vector<Entry<>> batch(256);
  // Warm up with the same batch shape the window uses.
  for (int round = 0; round < 256; ++round) {
    for (auto& e : batch) e = Entry<>{splitmix64(s), 1};
    d.insert_batch(batch);
  }
  const std::uint64_t allocs = count_allocs([&] {
    for (int round = 0; round < 16; ++round) {
      for (auto& e : batch) e = Entry<>{splitmix64(s), 2};
      d.insert_batch(batch);
    }
  });
  EXPECT_EQ(allocs, 0u) << "batch COLA insert path allocates in steady state";
  d.check_invariants();
}

TEST(AllocFree, ColaSteadyStateGrowthFactorCascades) {
  // The g != 2 cascade reuses the same scratch contract. Large g merges into
  // the deepest level far more often than g = 2 (its level count is tiny),
  // and each such merge that pushes the level past its all-time high grows
  // the content scratch once — a structural event, not a hot-loop leak. So:
  // per-op, almost every insert must be allocation-free, and the residual
  // total must stay within the deepest-merge growth budget.
  for (const unsigned g : {4u, 16u}) {
    cola::Gcola<> d(cola::ColaConfig{g, 0.1});
    std::uint64_t s = 29 + g;
    for (std::uint64_t i = 0; i < 70'000; ++i) d.insert(splitmix64(s), i);
    std::uint64_t allocating_ops = 0, total = 0;
    for (std::uint64_t i = 0; i < 4'000; ++i) {
      const std::uint64_t a = count_allocs([&] { d.insert(splitmix64(s), i); });
      if (a != 0) ++allocating_ops;
      total += a;
    }
    EXPECT_LE(allocating_ops, 2u) << "g=" << g << " cascade allocates repeatedly";
    EXPECT_LE(total, 4u) << "g=" << g << " residual exceeds structural budget";
    d.check_invariants();
  }
}

TEST(AllocFree, ColaStagingArenaSteadyState) {
  // Staged inserts append into a reserved arena with zero allocations.
  // Since the snapshot redesign a flush MINTS ref-counted immutable
  // segments (the frozen arena run, plus cascade fold outputs) instead of
  // recycling level storage in place — that is what lets open snapshots
  // outlive folds — so the steady state is structural, not absolute:
  // every insert OFF a flush boundary allocates nothing, and the residual
  // total stays within a fixed per-flush minting budget.
  //
  // Budget accounting per minted segment in the SoA layout: the shared
  // control block plus three plane vectors (keys/vals/flags), and with
  // filters armed (the ingest_tuned default) one fingerprint-filter vector
  // — 5 allocations; a flush can mint the frozen arena run plus cascade
  // fold outputs. Run both filter arms so the filter's O(1)-allocations
  // cost is pinned separately from the plane minting.
  for (const bool filters : {false, true}) {
    cola::ColaConfig cfg = cola::ingest_tuned(4, 64);  // arena = 256 entries
    cfg.filters = filters;
    cola::Gcola<> d(cfg);
    std::uint64_t s = 37;
    for (std::uint64_t i = 0; i < 70'000; ++i) d.insert(splitmix64(s), i);
    constexpr std::uint64_t kWindow = 4'000;
    std::uint64_t allocating_ops = 0, total = 0;
    for (std::uint64_t i = 0; i < kWindow; ++i) {
      const std::uint64_t a = count_allocs([&] { d.insert(splitmix64(s), i); });
      if (a != 0) ++allocating_ops;
      total += a;
    }
    const std::uint64_t flushes = kWindow / 256 + 1;  // arena drains in window
    EXPECT_LE(allocating_ops, flushes)
        << "filters=" << filters
        << ": staged inserts allocate off the flush boundary";
    // 4 allocations per planes-only segment, +1 when filters are armed,
    // times a small per-flush segment count.
    const std::uint64_t per_seg = filters ? 5u : 4u;
    EXPECT_LE(total, flushes * per_seg * 4)
        << "filters=" << filters
        << ": per-flush segment minting exceeds the structural budget";
    d.check_invariants();
  }
}

TEST(AllocFree, SegmentRefcountChurnLeaksNothing) {
  // The leak oracle for the ref-counted segment tier: hold a rolling window
  // of snapshots open across heavy ingest (folds keep retiring the segments
  // the snapshots pin), then drop everything — the process-wide live
  // segment count must return exactly to its starting value. Leaked
  // segments (a fold forgetting to release, a snapshot cache cycle) show up
  // as a nonzero delta here long before ASan would notice anything.
  const std::int64_t before = snap::live_segment_count().load();
  {
    cola::Gcola<> d(cola::ingest_tuned(4, 64));
    std::uint64_t s = 41;
    std::vector<snap::Snapshot<>> held;
    for (int round = 0; round < 64; ++round) {
      for (std::uint64_t i = 0; i < 512; ++i) d.insert(splitmix64(s), i);
      held.push_back(d.snapshot());
      if (held.size() > 4) held.erase(held.begin());  // retire the oldest
    }
    EXPECT_GT(snap::live_segment_count().load(), before)
        << "churn produced no live segments — the oracle is vacuous";
    // Every held snapshot must still read exactly its stamped contents.
    for (const snap::Snapshot<>& snap : held) {
      std::uint64_t n = 0;
      snap.for_each([&](const Key&, const Value&) { ++n; });
      EXPECT_GT(n, 0u);
    }
  }
  EXPECT_EQ(snap::live_segment_count().load(), before)
      << "segments leaked after snapshot churn";
}

TEST(AllocFree, ShuttleSteadyStateSingleInserts) {
  shuttle::ShuttleTree<> d;
  std::uint64_t s = 17;
  // Saturate a bounded universe so the window is pure upsert traffic: no
  // splits, no relayout, weights frozen.
  for (std::uint64_t k = 0; k < 4'096; ++k) d.insert(k, k);
  for (std::uint64_t i = 0; i < 100'000; ++i) d.insert(splitmix64(s) % 4'096, i);
  // The per-op path itself is allocation-free: merges are in place, the put
  // batch / carrier frames / leaf scratch are all reused. What remains is
  // vector capacity growth when a deep buffer's fill crosses its all-time
  // high — a geometric, O(log cap)-per-buffer-lifetime structural event that
  // rare large pours keep discovering for a long time. Assert both facts:
  // the overwhelming majority of inserts allocate nothing, and whole
  // sub-windows run allocation-free end to end.
  std::uint64_t allocating_ops = 0, total = 0;
  std::uint64_t min_subwindow = ~0ULL;
  for (int sub = 0; sub < 8; ++sub) {
    const std::uint64_t in_sub = count_allocs([&] {
      for (std::uint64_t i = 0; i < 500; ++i) {
        const std::uint64_t a = count_allocs([&] { d.insert(splitmix64(s) % 4'096, i); });
        if (a != 0) ++allocating_ops;
      }
    });
    total += in_sub;
    min_subwindow = std::min(min_subwindow, in_sub);
  }
  EXPECT_EQ(min_subwindow, 0u) << "no allocation-free stretch of 500 inserts";
  EXPECT_LE(allocating_ops, 4u) << "more than 0.1% of steady-state inserts allocate";
  EXPECT_LE(total, 8u) << "residual capacity growth exceeds the structural budget";
  d.check_invariants();
}

TEST(AllocFree, BrtSteadyStateSingleInserts) {
  brt::Brt<> d;
  std::uint64_t s = 23;
  // Bounded universe: leaves stop splitting once the key space is dense, so
  // the window sees flushes and leaf applies but no structural growth.
  for (std::uint64_t i = 0; i < 120'000; ++i) d.insert(splitmix64(s) % 20'000, i);
  const std::uint64_t allocs = count_allocs([&] {
    for (std::uint64_t i = 0; i < 2'000; ++i) d.insert(splitmix64(s) % 20'000, i);
  });
  EXPECT_EQ(allocs, 0u) << "single-op BRT insert path allocates in steady state";
  d.check_invariants();
}

}  // namespace
}  // namespace costream
