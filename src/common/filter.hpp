// Per-segment fingerprint filters: a register-blocked Bloom filter minted
// once per segment at fold/flush time (O(1) per element) and stored next to
// the fence keys in snap::Segment.
//
// Why segments need them: fence keys prune a segment only when the probe key
// falls outside its [min_key, max_key] span. Under uniform-random feeds every
// tiered segment spans essentially the whole keyspace, fences prune nothing,
// and a point read pays one binary search per segment per level. A filter
// answers "definitely absent" for (1 - FPR) of the segments a fence cannot
// rule out, collapsing the expected probe count from `segs` to
// 1 + FPR * (segs - 1) (see dam/bounds.hpp::cola_filter_search_transfer_bound).
//
// Layout: the classic cache-line-blocked design. The filter is an array of
// 64-byte blocks (8 x u64). A key hashes once; the high half selects the
// block via the fastrange multiply-shift (no division), the low half seeds
// kProbes double-hashed bit positions inside that block's 512 bits. A lookup
// therefore touches exactly ONE cache line regardless of k — the whole probe
// costs a hash, a line fetch, and six masked tests.
//
// Sizing: kBitsPerKey = 10 bits/key and kProbes = 6 give an ideal-Bloom FPR
// of (1 - e^(-6/10))^6 ~ 0.8%; confining probes to one 512-bit block costs
// accuracy for locality, landing measured FPR near kDesignFpr (~1.4%) —
// tests/kernel_test.cpp asserts this within tolerance, and check_invariants
// asserts the structural guarantee that makes filters safe to trust on the
// read path: NO false negatives, ever.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <type_traits>
#include <vector>

namespace costream::filt {

inline constexpr std::size_t kBlockWords = 8;    // 8 x u64 = one cache line
inline constexpr std::size_t kBlockBits = kBlockWords * 64;
inline constexpr std::size_t kBitsPerKey = 10;
inline constexpr int kProbes = 6;

/// The FPR the (bits/key, probes, blocked) design point targets; the
/// measured-rate test and the DAM filter bound both reference this one
/// constant so design and validation cannot drift apart.
inline constexpr double kDesignFpr = 0.014;

/// splitmix64 finalizer: full-avalanche mixing so that dense integer keys
/// (the common benchmark feed) spread over blocks and probe bits.
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Key types filters can hash deterministically: integrals, padding-free
/// trivially-copyable types (byte representation IS the value — padding
/// bytes would differ between equal keys and break the no-false-negative
/// guarantee), or anything with a usable std::hash. Other key types simply
/// never get filters minted (fences still work); the knob degrades, the
/// build does not break.
template <class K>
inline constexpr bool filter_hashable_v =
    std::is_integral_v<K> || std::has_unique_object_representations_v<K> ||
    std::is_invocable_r_v<std::size_t, std::hash<K>, const K&>;

/// One hash per key, shared by insert and lookup. Integral keys take the
/// mixer directly; padding-free types mix their bytes word-wise; the rest
/// route through std::hash when one exists.
template <class K>
inline std::uint64_t key_hash(const K& key) noexcept {
  if constexpr (std::is_integral_v<K>) {
    return mix64(static_cast<std::uint64_t>(key));
  } else if constexpr (std::has_unique_object_representations_v<K>) {
    unsigned char bytes[sizeof(K)];
    std::memcpy(bytes, &key, sizeof(K));
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    std::size_t i = 0;
    for (; i + 8 <= sizeof(K); i += 8) {
      std::uint64_t w;
      std::memcpy(&w, bytes + i, 8);
      h = mix64(h ^ w);
    }
    if (i < sizeof(K)) {
      std::uint64_t tail = 0;
      std::memcpy(&tail, bytes + i, sizeof(K) - i);
      h = mix64(h ^ tail);
    }
    return h;
  } else if constexpr (std::is_invocable_r_v<std::size_t, std::hash<K>,
                                             const K&>) {
    return mix64(static_cast<std::uint64_t>(std::hash<K>{}(key)));
  } else {
    return 0;  // unreachable at runtime: filters are never minted for such K
  }
}

/// Words needed for n keys at the design density, rounded up to whole
/// blocks (never zero blocks: an empty filter vector means "no filter").
inline std::size_t filter_words_for(std::size_t n) noexcept {
  const std::size_t bits = n * kBitsPerKey;
  const std::size_t blocks = bits == 0 ? 1 : (bits + kBlockBits - 1) / kBlockBits;
  return blocks * kBlockWords;
}

namespace detail {

/// fastrange: maps a 32-bit hash fragment uniformly onto [0, nblocks)
/// with one multiply and one shift — no modulo in the probe path.
inline std::size_t pick_block(std::uint64_t h, std::size_t nblocks) noexcept {
  const std::uint64_t hi = h >> 32;
  return static_cast<std::size_t>((hi * static_cast<std::uint64_t>(nblocks)) >> 32);
}

}  // namespace detail

/// Set the kProbes bits for hash h. `words` must hold filter_words_for-many
/// words (a whole number of blocks).
inline void filter_insert(std::uint64_t* words, std::size_t nwords,
                          std::uint64_t h) noexcept {
  const std::size_t block = detail::pick_block(h, nwords / kBlockWords);
  std::uint64_t* blk = words + block * kBlockWords;
  // Double hashing inside the block: bit_i = h1 + i*h2 (mod 512), h2 odd
  // so the probe sequence walks all residues.
  std::uint32_t h1 = static_cast<std::uint32_t>(h);
  const std::uint32_t h2 = static_cast<std::uint32_t>(h >> 13) | 1u;
  for (int i = 0; i < kProbes; ++i) {
    const std::uint32_t bit = h1 & (kBlockBits - 1);
    blk[bit >> 6] |= 1ull << (bit & 63);
    h1 += h2;
  }
}

/// Test the kProbes bits for hash h; false means DEFINITELY absent.
inline bool filter_may_contain(const std::uint64_t* words, std::size_t nwords,
                               std::uint64_t h) noexcept {
  const std::size_t block = detail::pick_block(h, nwords / kBlockWords);
  const std::uint64_t* blk = words + block * kBlockWords;
  std::uint32_t h1 = static_cast<std::uint32_t>(h);
  const std::uint32_t h2 = static_cast<std::uint32_t>(h >> 13) | 1u;
  for (int i = 0; i < kProbes; ++i) {
    const std::uint32_t bit = h1 & (kBlockBits - 1);
    if ((blk[bit >> 6] & (1ull << (bit & 63))) == 0) return false;
    h1 += h2;
  }
  return true;
}

/// Mint a filter over a dense key plane — the per-fold path: one pass,
/// one hash + one line write per key.
template <class K>
inline std::vector<std::uint64_t> build_filter(const K* keys, std::size_t n) {
  std::vector<std::uint64_t> words(filter_words_for(n), 0);
  for (std::size_t i = 0; i < n; ++i) {
    filter_insert(words.data(), words.size(), key_hash(keys[i]));
  }
  return words;
}

}  // namespace costream::filt
