// Cache-aware lookahead array — paper Section 3, "Cache-aware update/query
// tradeoff".
//
// The lookahead array generalizes the COLA by a growth factor g: with
// g = Theta(B^eps) it matches the B^eps-tree of Brodal & Fagerberg:
// O(log_{B^eps+1} N) transfers per query and O((log_{B^eps+1} N)/B^(1-eps))
// per insert. The only cache-AWARE ingredient is the choice of g — the
// machinery is the same Gcola, so this header is a thin policy wrapper that
// converts (block size B, eps) into a growth factor.
//
//   eps = 0  -> g = 2            (the COLA / BRT point)
//   eps = 1  -> g = B            (the B-tree point)
//   eps = .5 -> g = sqrt(B)      (the classic compromise: searches ~2x
//                                 slower, inserts ~sqrt(B)/2 faster than a
//                                 B-tree)
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "cola/cola.hpp"

namespace costream::cola {

/// Growth factor for a lookahead array tuned to block size `block_bytes`
/// and tradeoff exponent `eps` in [0, 1]. B is measured in elements, as in
/// the paper's analysis.
inline unsigned lookahead_growth(std::uint64_t block_bytes, double eps,
                                 std::size_t element_bytes = 32) {
  const double b_elems =
      std::max<double>(2.0, static_cast<double>(block_bytes) /
                                static_cast<double>(element_bytes));
  const double g = std::pow(b_elems, eps);
  return static_cast<unsigned>(std::clamp(g, 2.0, 65536.0));
}

/// Factory: a Gcola parametrized as the cache-aware lookahead array. A
/// nonzero `batch_hint` additionally fronts the levels with a staging L0
/// arena of g * batch_hint entries (cola.hpp), which pushes the insert
/// bound's constant down by the number of batches the arena absorbs.
template <class K = Key, class V = Value, class MM = dam::null_mem_model>
Gcola<K, V, MM> make_lookahead_array(std::uint64_t block_bytes, double eps,
                                     double pointer_density = 0.1, MM mm = MM{},
                                     std::size_t batch_hint = 0) {
  ColaConfig cfg;
  cfg.growth = lookahead_growth(block_bytes, eps);
  cfg.pointer_density = pointer_density;
  cfg.staging_capacity = batch_hint == 0
                             ? 0
                             : static_cast<std::size_t>(cfg.growth) * batch_hint;
  return Gcola<K, V, MM>(cfg, std::move(mm));
}

}  // namespace costream::cola
