// Deamortized-COLA-with-lookahead tests — Theorem 24. Everything the basic
// deamortized suite checks (bounded per-insert work, atomic visibility)
// plus: pointer buffers are consistent, flip atomically, actually produce
// windowed (O(1)-probe) level searches, and never corrupt query results
// while a rebuild is mid-flight.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>

#include "cola/deamortized_fc_cola.hpp"
#include "common/rng.hpp"
#include "common/workload.hpp"
#include "model_helpers.hpp"

namespace costream::cola {
namespace {

TEST(DeamortizedFc, EmptyFind) {
  DeamortizedFcCola<> c;
  EXPECT_FALSE(c.find(1).has_value());
  c.check_invariants();
}

TEST(DeamortizedFc, InsertAndFindAll) {
  DeamortizedFcCola<> c;
  const KeyStream ks(KeyOrder::kRandom, 20'000, 4);
  std::map<Key, Value> ref;
  for (std::uint64_t i = 0; i < ks.size(); ++i) {
    c.insert(ks.key_at(i), i);
    ref[ks.key_at(i)] = i;
  }
  c.check_invariants();
  for (const auto& [k, v] : ref) ASSERT_EQ(c.find(k).value(), v) << k;
}

TEST(DeamortizedFc, InvariantsHoldAfterEveryInsert) {
  DeamortizedFcCola<> c;
  for (std::uint64_t i = 0; i < 4'096; ++i) {
    c.insert(mix64(i), i);
    ASSERT_NO_THROW(c.check_invariants()) << i;
  }
}

TEST(DeamortizedFc, QueriesCorrectMidRebuild) {
  // Interleave every insert with probes for known keys: pointer buffers are
  // mid-rebuild much of the time, and queries must never be wrong.
  DeamortizedFcCola<> c;
  const KeyStream ks(KeyOrder::kRandom, 8'192, 9);
  for (std::uint64_t i = 0; i < ks.size(); ++i) {
    c.insert(ks.key_at(i), i);
    const std::uint64_t probe = i / 2;  // something inserted a while ago
    ASSERT_TRUE(c.find(ks.key_at(probe)).has_value()) << i;
    ASSERT_FALSE(c.find(ks.key_at(i) ^ 0x5555555555555555ULL).has_value()) << i;
  }
}

TEST(DeamortizedFc, WorstCaseMovesAreLogarithmic) {
  // Theorem 24: O(log N) worst-case including pointer copies.
  DeamortizedFcCola<> c;
  const std::uint64_t n = 1 << 16;
  for (std::uint64_t i = 0; i < n; ++i) c.insert(mix64(i), i);
  EXPECT_LE(c.stats().max_moves_per_insert, 3 * c.level_count() + 4);
  EXPECT_LE(c.stats().max_moves_per_insert,
            3 * static_cast<std::uint64_t>(std::log2(static_cast<double>(n))) + 10);
}

TEST(DeamortizedFc, PointerCopiesActuallyHappen) {
  DeamortizedFcCola<> c;
  for (std::uint64_t i = 0; i < 1 << 14; ++i) c.insert(mix64(i), i);
  EXPECT_GT(c.stats().pointer_copies, 0u);
  EXPECT_GT(c.stats().merges_completed, 0u);
}

TEST(DeamortizedFc, WindowedSearchesDominateOnStableData) {
  // Build, then query heavily with no interleaved inserts: pointer buffers
  // are complete, so most per-level searches should use windows.
  DeamortizedFcCola<> c;
  const KeyStream ks(KeyOrder::kRandom, 1 << 15, 6);
  for (std::uint64_t i = 0; i < ks.size(); ++i) c.insert(ks.key_at(i), i);
  // Drain pending rebuilds with no-op-ish inserts of fresh keys.
  for (std::uint64_t i = 0; i < 64; ++i) c.insert((1ULL << 62) + i, i);
  const auto before = c.stats();
  Xoshiro256 rng(11);
  const int probes = 2'000;
  for (int q = 0; q < probes; ++q) {
    ASSERT_TRUE(c.find(ks.key_at(rng.below(ks.size()))).has_value());
  }
  const auto after = c.stats();
  const std::uint64_t windowed = after.windowed_level_searches - before.windowed_level_searches;
  const std::uint64_t full = after.full_level_searches - before.full_level_searches;
  EXPECT_GT(windowed, full) << "windowed=" << windowed << " full=" << full;
}

TEST(DeamortizedFc, UpsertNewestWins) {
  DeamortizedFcCola<> c;
  for (std::uint64_t round = 0; round < 50; ++round) {
    for (std::uint64_t k = 0; k < 64; ++k) c.insert(k, round * 100 + k);
  }
  for (std::uint64_t k = 0; k < 64; ++k) {
    ASSERT_EQ(c.find(k).value(), 49 * 100 + k) << k;
  }
  c.check_invariants();
}

TEST(DeamortizedFc, TombstonesHide) {
  DeamortizedFcCola<> c;
  for (std::uint64_t i = 0; i < 1'024; ++i) c.insert(i, i);
  for (std::uint64_t i = 0; i < 1'024; i += 2) c.erase(i);
  for (std::uint64_t i = 0; i < 1'024; ++i) {
    if (i % 2 == 0) {
      ASSERT_FALSE(c.find(i).has_value()) << i;
    } else {
      ASSERT_EQ(c.find(i).value(), i) << i;
    }
  }
  c.check_invariants();
}

class DeamortizedFcModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeamortizedFcModel, MixedTraceMatchesReference) {
  DeamortizedFcCola<> c;
  const auto ops = generate_ops(5'000, 1'200, OpMix{}, GetParam());
  testing::run_model_trace(c, ops, [&] { c.check_invariants(); });
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeamortizedFcModel, ::testing::Values(61, 62, 63, 64));

// Growth-factor generalization: g arrays per level, per-array lookahead
// windows, budget (g+1)*k + 4.
class DeamortizedFcGrowthModel : public ::testing::TestWithParam<unsigned> {};

TEST_P(DeamortizedFcGrowthModel, MixedTraceMatchesReference) {
  DeamortizedFcCola<> c(GetParam());
  const auto ops = generate_ops(5'000, 1'200, OpMix{}, 50 + GetParam());
  testing::run_model_trace(c, ops, [&] { c.check_invariants(); });
}

INSTANTIATE_TEST_SUITE_P(Growth, DeamortizedFcGrowthModel,
                         ::testing::Values(4u, 8u, 16u));

TEST(DeamortizedFc, GrowthWindowedSearchesStillDominate) {
  // The pointer machinery must keep paying off at g != 2: on stable data
  // most level searches use bounded windows, for every preset growth.
  for (const unsigned g : {4u, 16u}) {
    DeamortizedFcCola<> c(g);
    for (std::uint64_t i = 0; i < 1 << 14; ++i) c.insert(mix64(i), i);
    for (std::uint64_t q = 0; q < 2'000; ++q) (void)c.find(mix64(q * 7));
    const auto& st = c.stats();
    EXPECT_GT(st.windowed_level_searches, st.full_level_searches) << "g=" << g;
    EXPECT_LE(st.max_moves_per_insert, (g + 1) * c.level_count() + 4) << "g=" << g;
  }
}

TEST(DeamortizedFc, RangeQueryAscendingNewestWins) {
  DeamortizedFcCola<> c;
  for (std::uint64_t i = 0; i < 2'000; ++i) c.insert(i % 500, i);
  std::map<Key, Value> got;
  c.range_for_each(0, 499, [&](Key k, Value v) {
    ASSERT_FALSE(got.count(k));
    got[k] = v;
  });
  EXPECT_EQ(got.size(), 500u);
  for (const auto& [k, v] : got) {
    EXPECT_EQ(v % 500, k) << "value from the newest round for key " << k;
    EXPECT_GE(v, 1500u) << "newest round wins";
  }
}

}  // namespace
}  // namespace costream::cola
