// The element type shared by every dictionary in the library.
//
// The paper's experimental setup (Section 4) stores 64-bit keys and 64-bit
// values padded to 32 bytes per element, with some of the padding reused for
// lookahead-pointer bookkeeping. We keep Entry minimal (key + value) and let
// each structure add its own bookkeeping fields, which is equivalent and
// keeps the public API clean.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <utility>
#include <vector>

namespace costream {

using Key = std::uint64_t;
using Value = std::uint64_t;

/// A key/value pair. Ordered by key only: dictionaries never compare values.
template <class K = Key, class V = Value>
struct Entry {
  K key{};
  V value{};

  friend constexpr bool operator==(const Entry& a, const Entry& b) noexcept {
    return a.key == b.key;
  }
  friend constexpr auto operator<=>(const Entry& a, const Entry& b) noexcept {
    return a.key <=> b.key;
  }
};

/// Compare an entry against a bare key (heterogeneous lookups).
struct EntryKeyLess {
  template <class K, class V>
  constexpr bool operator()(const Entry<K, V>& e, const K& k) const noexcept {
    return e.key < k;
  }
  template <class K, class V>
  constexpr bool operator()(const K& k, const Entry<K, V>& e) const noexcept {
    return k < e.key;
  }
};

/// Stable bottom-up merge sort by `.key`, using caller-provided scratch
/// instead of std::stable_sort's internal temporary buffer — the batch
/// normalization path stays allocation-free once `scratch` reaches its
/// high-water capacity. Ties keep input order.
template <class It>
void stable_sort_by_key(std::vector<It>& v, std::vector<It>& scratch) {
  const std::size_t n = v.size();
  scratch.resize(n);
  for (std::size_t width = 1; width < n; width *= 2) {
    for (std::size_t lo = 0; lo < n; lo += 2 * width) {
      const std::size_t mid = std::min(lo + width, n);
      const std::size_t hi = std::min(lo + 2 * width, n);
      std::size_t a = lo, b = mid, w = lo;
      while (a < mid && b < hi) {
        if (v[b].key < v[a].key) {
          scratch[w++] = std::move(v[b++]);
        } else {
          scratch[w++] = std::move(v[a++]);  // left run first on ties: stable
        }
      }
      while (a < mid) scratch[w++] = std::move(v[a++]);
      while (b < hi) scratch[w++] = std::move(v[b++]);
    }
    v.swap(scratch);
  }
}

/// Normalize an ingest batch in place: stable-sort by key ascending and
/// collapse duplicate keys so the LAST occurrence in input order survives
/// (newest wins — matching repeated insert() calls). Works on any element
/// type with a `.key` member, so each structure can normalize batches of its
/// internal item type (tombstones ride along untouched). `scratch` is the
/// sort's merge buffer, reused across batches.
template <class It>
void sort_dedup_newest_wins(std::vector<It>& batch, std::vector<It>& scratch) {
  stable_sort_by_key(batch, scratch);
  std::size_t w = 0;
  for (std::size_t r = 0; r < batch.size(); ++r) {
    if (r + 1 < batch.size() && batch[r + 1].key == batch[r].key) continue;
    if (w != r) batch[w] = std::move(batch[r]);
    ++w;
  }
  batch.resize(w);
}

}  // namespace costream
