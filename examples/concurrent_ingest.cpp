// Concurrent ingest example: one Dictionary facade, S single-writer shards.
//
// Scenario: a telemetry collector receives batches of (sensor, reading)
// pairs faster than one cascade can absorb them. ShardedDictionary
// range-partitions the keyspace across S ingest-tuned COLA shards, each
// owned by its own worker thread behind an SPSC queue: the caller's
// insert_batch returns as soon as the per-shard runs are queued, the
// workers run the cascades in parallel, and every read (find, range scan,
// cursor) takes a drain barrier first — so the facade behaves exactly like
// any other dictionary here, just faster under sustained load.
//
// Build: part of the default cmake build; run ./examples/concurrent_ingest
#include <cstdio>
#include <vector>

#include "cola/cola.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "shard/sharded_dictionary.hpp"

using namespace costream;

int main() {
  constexpr std::uint64_t kN = 1 << 20;
  constexpr std::size_t kBatch = 1024;

  const auto run = [](std::size_t shards) {
    shard::ShardedConfig<> sc;
    sc.shards = shards;
    shard::ShardedDictionary<cola::Gcola<>> d(sc, [](std::size_t) {
      return cola::Gcola<>(cola::ingest_tuned(8, kBatch));
    });
    Xoshiro256 rng(7);
    std::vector<Entry<>> batch;
    batch.reserve(kBatch);
    Timer t;
    for (std::uint64_t i = 0; i < kN;) {
      batch.clear();
      for (std::size_t j = 0; j < kBatch; ++j, ++i) {
        batch.push_back(Entry<>{rng(), i});
      }
      d.insert_batch(batch);
    }
    d.flush_stage();  // land every queued cascade inside the timing
    const double secs = t.seconds();
    std::printf("  S=%zu: %8.0f inserts/sec  (splitters learned from batch 1,"
                " %llu runs dispatched)\n",
                shards, static_cast<double>(kN) / secs,
                static_cast<unsigned long long>(d.stats().jobs));

    // Reads see everything, immediately: the drain barrier is implicit.
    std::uint64_t scanned = 0;
    d.range_for_each(0, ~0ULL, [&](Key, Value) { ++scanned; });
    std::printf("        full scan through the fused sharded cursor: %llu live"
                " entries\n",
                static_cast<unsigned long long>(scanned));
    return scanned;
  };

  std::printf("ingesting %llu random entries, batch %zu:\n",
              static_cast<unsigned long long>(kN), kBatch);
  const std::uint64_t base = run(1);
  for (const std::size_t s : {2u, 4u}) {
    if (run(s) != base) {
      std::printf("shard count changed visible contents (bug!)\n");
      return 1;
    }
  }
  std::printf("identical contents at every shard count: yes\n");
  return 0;
}
