// Fixed-width table printer for the figure benches. Each bench prints the
// same rows/series the corresponding paper figure plots, e.g.
//
//   # Fig 2: COLA vs B-tree (random inserts)
//   N        2-COLA     4-COLA     8-COLA     B-tree
//   2^16     1.21M      1.34M      1.30M      401.2k
//   ...
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

namespace costream {

class Table {
 public:
  explicit Table(std::vector<std::string> headers, int col_width = 14)
      : headers_(std::move(headers)), col_width_(col_width) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print(std::ostream& os = std::cout) const {
    print_cells(os, headers_);
    for (const auto& row : rows_) print_cells(os, row);
    os.flush();
  }

 private:
  void print_cells(std::ostream& os, const std::vector<std::string>& cells) const {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::string cell = cells[i];
      if (static_cast<int>(cell.size()) < col_width_ && i + 1 != cells.size()) {
        cell.append(static_cast<std::size_t>(col_width_) - cell.size(), ' ');
      } else if (i + 1 != cells.size()) {
        cell.push_back(' ');
      }
      os << cell;
    }
    os << '\n';
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  int col_width_;
};

/// "2^20" style labels for the x-axis of the figures.
inline std::string pow2_label(std::uint64_t n) {
  unsigned bit = 0;
  while ((1ULL << (bit + 1)) <= n) ++bit;
  if ((1ULL << bit) == n) return "2^" + std::to_string(bit);
  return std::to_string(n);
}

}  // namespace costream
