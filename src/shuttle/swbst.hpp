// Strongly weight-balanced search tree (SWBST) — the balanced-tree substrate
// the shuttle tree is built on (paper Section 2; original construction in
// Arge & Vitter, "Optimal external memory interval management").
//
// Invariant: for fanout parameter c > 1 and every node v, w(v) = Theta(c^h(v))
// with all leaves at the same depth. Splitting a node that exceeds its
// weight threshold keeps the invariant; Lemma 1 of the paper gives the
// consequences (degree Theta(c), O(c^d) descendants of height >= h-d,
// amortized O(1)/O(log N) split charges).
//
// Implementation-wise the SWBST is exactly the shuttle tree with buffers
// disabled — every element travels straight to its leaf — so this header
// provides the configured alias rather than a duplicate tree. Tests exercise
// the weight invariant through ShuttleTree::check_invariants().
#pragma once

#include "shuttle/shuttle_tree.hpp"

namespace costream::shuttle {

template <class K = Key, class V = Value, class MM = dam::null_mem_model>
class Swbst : public ShuttleTree<K, V, MM> {
 public:
  explicit Swbst(unsigned fanout = 4, MM mm = MM{})
      : ShuttleTree<K, V, MM>(make_config(fanout), std::move(mm)) {}

 private:
  static ShuttleConfig make_config(unsigned fanout) {
    ShuttleConfig cfg;
    cfg.fanout = fanout;
    cfg.use_buffers = false;
    return cfg;
  }
};

}  // namespace costream::shuttle
