// Buffered repository tree tests: differential testing with buffered
// (deferred) operation semantics, buffer flush behavior, and the structural
// invariants (bounded buffers, uniform leaf depth).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "brt/brt.hpp"
#include "common/workload.hpp"
#include "dam/dam_mem_model.hpp"
#include "model_helpers.hpp"

namespace costream::brt {
namespace {

TEST(Brt, EmptyFind) {
  Brt<> t;
  EXPECT_FALSE(t.find(1).has_value());
  t.check_invariants();
}

TEST(Brt, InsertVisibleImmediately) {
  // Buffered inserts must still be observable by searches right away.
  Brt<> t(256);
  for (std::uint64_t i = 0; i < 100; ++i) {
    t.insert(i, i * 10);
    ASSERT_EQ(t.find(i).value(), i * 10) << i;
  }
  t.check_invariants();
}

TEST(Brt, UpsertNewestWinsAcrossBufferAndLeaf) {
  Brt<> t(256);
  // Push enough data that early keys reach the leaves, then overwrite.
  for (std::uint64_t i = 0; i < 2'000; ++i) t.insert(i, 1);
  for (std::uint64_t i = 0; i < 100; ++i) t.insert(i, 2);
  for (std::uint64_t i = 0; i < 100; ++i) ASSERT_EQ(t.find(i).value(), 2u) << i;
  t.check_invariants();
}

TEST(Brt, TombstoneHidesImmediately) {
  Brt<> t(256);
  for (std::uint64_t i = 0; i < 2'000; ++i) t.insert(i, i);
  t.erase(7);
  EXPECT_FALSE(t.find(7).has_value());
  // Deleting a never-inserted key is harmless.
  t.erase(1 << 30);
  EXPECT_FALSE(t.find(1 << 30).has_value());
  t.check_invariants();
}

TEST(Brt, TombstoneThenReinsert) {
  Brt<> t(256);
  for (std::uint64_t i = 0; i < 2'000; ++i) t.insert(i, i);
  t.erase(42);
  t.insert(42, 999);
  EXPECT_EQ(t.find(42).value(), 999u);
}

class BrtModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BrtModel, MixedTraceMatchesReference) {
  Brt<> t(256);
  const auto ops = generate_ops(6'000, 1'500, OpMix{}, GetParam());
  testing::run_model_trace(t, ops, [&] { t.check_invariants(); });
}

INSTANTIATE_TEST_SUITE_P(Seeds, BrtModel, ::testing::Values(11, 12, 13, 14));

TEST(Brt, RangeMergesBuffersAndLeaves) {
  Brt<> t(256);
  // Old data at the leaves, fresh overwrites still buffered.
  for (std::uint64_t i = 0; i < 3'000; ++i) t.insert(i, 1);
  for (std::uint64_t i = 10; i < 20; ++i) t.insert(i, 2);
  t.erase(15);
  std::map<Key, Value> got;
  t.range_for_each(10, 20, [&](Key k, Value v) { got[k] = v; });
  EXPECT_EQ(got.size(), 10u);  // 11 keys minus the tombstoned 15
  EXPECT_EQ(got.count(15), 0u);
  for (std::uint64_t i = 10; i <= 20; ++i) {
    if (i == 15) continue;
    ASSERT_EQ(got[i], i < 20 ? 2u : 1u) << i;
  }
}

TEST(Brt, FlushesHappenAndMoveElements) {
  Brt<> t(256);
  for (std::uint64_t i = 0; i < 20'000; ++i) t.insert(mix64(i), i);
  EXPECT_GT(t.stats().flushes, 0u);
  EXPECT_GT(t.stats().buffered_elements_moved, 0u);
  EXPECT_GT(t.stats().splits, 0u);
  t.check_invariants();
}

TEST(Brt, InsertTransfersBeatBTreeShape) {
  // The BRT's reason to exist: amortized O((log N)/B) insert transfers.
  // Out-of-core random inserts must cost well under one transfer per insert.
  Brt<Key, Value, dam::dam_mem_model> t(4096, 4, dam::dam_mem_model(4096, 1 << 18));
  const std::uint64_t n = 1 << 16;
  for (std::uint64_t i = 0; i < n; ++i) t.insert(mix64(i), i);
  const double per_insert =
      static_cast<double>(t.mm().stats().transfers) / static_cast<double>(n);
  EXPECT_LT(per_insert, 0.5) << "buffering must batch block writes";
}

TEST(Brt, ItemCountTracksPhysicalItems) {
  Brt<> t(256);
  for (std::uint64_t i = 0; i < 1'000; ++i) t.insert(i, i);
  EXPECT_EQ(t.item_count(), 1'000u);
  t.insert(0, 5);  // duplicate: superseded copy disappears once applied
  EXPECT_LE(t.item_count(), 1'001u);
}

}  // namespace
}  // namespace costream::brt
