// ShardedDictionary: the concurrent-ingest facade. Differential model
// traces over several inner kinds, the shard-count-invariance guarantee
// (visible contents never depend on S or on the splitters), splitter
// learning, the drain-barrier read protocol, epoch-enforced cursor
// invalidation, and the k-way merge_join_k driver.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/presets.hpp"
#include "btree/btree.hpp"
#include "cola/cola.hpp"
#include "common/rng.hpp"
#include "model_helpers.hpp"
#include "shard/sharded_dictionary.hpp"
#include "shuttle/shuttle_tree.hpp"

namespace costream {
namespace {

using shard::ShardedConfig;
using shard::ShardedDictionary;

/// Splitters spreading a small [0, universe) key range over S shards.
std::vector<Key> even_splitters(std::size_t shards, Key universe) {
  std::vector<Key> sp;
  for (std::size_t i = 1; i < shards; ++i) {
    sp.push_back(universe * i / shards);
  }
  return sp;
}

ShardedDictionary<cola::Gcola<>> make_sharded_cola(std::size_t shards,
                                                   Key universe,
                                                   unsigned g = 4) {
  ShardedConfig<> sc;
  sc.shards = shards;
  sc.splitters = even_splitters(shards, universe);
  return ShardedDictionary<cola::Gcola<>>(
      sc, [g](std::size_t) { return cola::Gcola<>(cola::ingest_tuned(g, 24)); });
}

TEST(Sharded, ModelTraceColaInner) {
  for (const std::size_t s : {1u, 2u, 4u}) {
    auto d = make_sharded_cola(s, 512);
    const auto ops = generate_ops(4'000, 512, OpMix{}, /*seed=*/17);
    testing::run_model_trace(d, ops, [&] { d.check_invariants(); });
  }
}

TEST(Sharded, ModelTraceShuttleInner) {
  ShardedConfig<> sc;
  sc.shards = 4;
  sc.splitters = even_splitters(4, 512);
  ShardedDictionary<shuttle::ShuttleTree<>> d(
      sc, [](std::size_t) { return shuttle::ShuttleTree<>(); });
  const auto ops = generate_ops(4'000, 512, OpMix{}, /*seed=*/29);
  testing::run_model_trace(d, ops, [&] { d.check_invariants(); });
}

TEST(Sharded, ModelTraceAnyDictionaryInner) {
  ShardedConfig<> sc;
  sc.shards = 2;
  sc.splitters = even_splitters(2, 512);
  ShardedDictionary<api::AnyDictionary> d(sc, [](std::size_t) {
    return api::make_dictionary("btree", api::DictConfig{});
  });
  const auto ops = generate_ops(2'000, 512, OpMix{}, /*seed=*/31);
  testing::run_model_trace(d, ops, [&] { d.check_invariants(); });
}

// The headline guarantee of range partitioning: the shard count (and the
// splitter placement) is INVISIBLE. The same deterministic mixed-op
// sequence replayed at S = 1, 2, 4, 8 — with deliberately skewed splitters
// in one arm — must produce byte-identical full sweeps and finds.
TEST(Sharded, ShardCountNeverChangesVisibleContents) {
  const Key universe = 600;
  Xoshiro256 rng(99);
  std::vector<Op<>> script;
  for (int i = 0; i < 6000; ++i) {
    const Key k = rng.below(universe);
    if (rng.below(100) < 30) {
      script.push_back(Op<>::del(k));
    } else {
      script.push_back(Op<>::put(k, rng()));
    }
  }

  const auto replay = [&](auto& d) {
    // Mix delivery shapes: single ops, then batches of varying size.
    std::size_t i = 0;
    for (; i < 500; ++i) {
      if (script[i].erase) {
        d.erase(script[i].key);
      } else {
        d.insert(script[i].key, script[i].value);
      }
    }
    std::size_t batch = 3;
    while (i < script.size()) {
      const std::size_t take = std::min(batch, script.size() - i);
      d.apply_batch({script.data() + i, take});
      i += take;
      batch = batch * 2 + 1;
      if (batch > 700) batch = 3;
    }
  };

  auto reference = make_sharded_cola(1, universe);
  replay(reference);
  const auto want = testing::collect_range(reference, 0, universe);
  ASSERT_FALSE(want.empty());

  for (const std::size_t s : {2u, 4u, 8u}) {
    auto d = make_sharded_cola(s, universe);
    replay(d);
    const auto got = testing::collect_range(d, 0, universe);
    ASSERT_EQ(got.size(), want.size()) << "S=" << s;
    for (std::size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(got[j].key, want[j].key) << "S=" << s << " pos " << j;
      EXPECT_EQ(got[j].value, want[j].value) << "S=" << s << " pos " << j;
    }
  }

  // Skewed splitters: most of the keyspace lands in shard 0. Still the
  // same contents.
  {
    ShardedConfig<> sc;
    sc.shards = 3;
    sc.splitters = {universe - 20, universe - 10};
    ShardedDictionary<cola::Gcola<>> d(
        sc, [](std::size_t) { return cola::Gcola<>(cola::ingest_tuned(2, 24)); });
    replay(d);
    const auto got = testing::collect_range(d, 0, universe);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(got[j].key, want[j].key) << "skewed pos " << j;
      EXPECT_EQ(got[j].value, want[j].value) << "skewed pos " << j;
    }
  }
}

TEST(Sharded, LearnedSplittersBalanceUniformFeed) {
  ShardedConfig<> sc;
  sc.shards = 4;
  sc.learn_sample_min = 64;
  ShardedDictionary<btree::BTree<>> d(sc,
                                      [](std::size_t) { return btree::BTree<>(512); });
  // First mutation is a large batch: quantile learning fires.
  std::vector<Entry<>> batch;
  Xoshiro256 rng(7);
  for (int i = 0; i < 4096; ++i) batch.push_back(Entry<>{rng(), 1});
  d.insert_batch(batch);
  EXPECT_EQ(d.stats().learned_splitters, 1u);
  ASSERT_EQ(d.splitters().size(), 3u);
  EXPECT_LT(d.splitters()[0], d.splitters()[1]);
  EXPECT_LT(d.splitters()[1], d.splitters()[2]);

  // Keep feeding from the same distribution; shards stay roughly balanced.
  for (int r = 0; r < 8; ++r) {
    batch.clear();
    for (int i = 0; i < 4096; ++i) batch.push_back(Entry<>{rng(), 2});
    d.insert_batch(batch);
  }
  d.check_invariants();
  std::size_t total = 0;
  std::vector<std::size_t> per_shard;
  for (std::size_t s = 0; s < 4; ++s) {
    std::size_t count = 0;
    auto c = d.shard(s).make_cursor();
    for (c.seek_first(); c.valid(); c.next()) ++count;
    per_shard.push_back(count);
    total += count;
  }
  ASSERT_GT(total, 30000u);
  for (const std::size_t count : per_shard) {
    EXPECT_GT(count, total / 8) << "a shard holds far less than its share";
    EXPECT_LT(count, total / 2) << "a shard holds far more than its share";
  }
}

TEST(Sharded, SmallFirstMutationFallsBackToPrefixDefaults) {
  ShardedConfig<> sc;
  sc.shards = 4;
  ShardedDictionary<btree::BTree<>> d(sc,
                                      [](std::size_t) { return btree::BTree<>(512); });
  d.insert(42, 1);  // single op: key-prefix defaults freeze
  EXPECT_EQ(d.stats().learned_splitters, 0u);
  ASSERT_EQ(d.splitters().size(), 3u);
  // Uniform 64-bit keys then spread across all four shards.
  std::vector<Entry<>> batch;
  Xoshiro256 rng(11);
  for (int i = 0; i < 4096; ++i) batch.push_back(Entry<>{rng(), 1});
  d.insert_batch(batch);
  d.check_invariants();
  for (std::size_t s = 0; s < 4; ++s) {
    auto c = d.shard(s).make_cursor();
    c.seek_first();
    EXPECT_TRUE(c.valid()) << "shard " << s << " got no keys";
  }
}

// Epoch enforcement: any mutation — including ones routed to a DIFFERENT
// shard than the cursor is positioned in — invalidates the cursor until
// re-seek. This is the drain-barrier contract from api/dictionary.hpp.
TEST(Sharded, CursorPinsItsSnapshotAcrossMutations) {
  // The snapshot cursor contract (api/dictionary.hpp): a seek pins the
  // then-current fused snapshot, so mutations — in ANY shard — neither
  // invalidate the cursor nor leak into its stream; a re-seek pins the
  // newer snapshot and observes them.
  auto d = make_sharded_cola(4, 400);
  std::vector<Entry<>> batch;
  for (Key k = 0; k < 400; k += 2) batch.push_back(Entry<>{k, k + 1});
  d.insert_batch(batch);

  auto c = d.make_cursor();
  c.seek(0);
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.entry().key, 0u);
  c.next();
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.entry().key, 2u);

  d.insert(399, 7);  // routes to the LAST shard; the pinned stream is unmoved
  ASSERT_TRUE(c.valid()) << "a mutation must not invalidate a pinned cursor";
  std::size_t rest = 0;
  bool saw_399 = false;
  for (; c.valid(); c.next()) {
    saw_399 = saw_399 || c.entry().key == 399u;
    ++rest;
  }
  EXPECT_EQ(rest, 199u) << "pinned stream lost entries (2..398 evens)";
  EXPECT_FALSE(saw_399) << "post-seek insert leaked into the pinned stream";

  c.seek(399);  // re-seek pins the newer snapshot: the insert is visible
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.entry().key, 399u);
  EXPECT_EQ(c.entry().value, 7u);

  d.erase(2);
  c.seek(2);
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.entry().key, 4u) << "erase must be visible after re-seek";

  // Bounded seek: nothing past hi is surfaced.
  c.seek(10, 14);
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.entry().key, 10u);
  c.next();
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.entry().key, 12u);
  c.next();
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.entry().key, 14u);
  c.next();
  EXPECT_FALSE(c.valid());
}

// Hammer the drain barrier: long alternation of async batch dispatch and
// immediate reads. Every read must see every prior write (the barrier), and
// the final sweep must match a model.
TEST(Sharded, DrainBarrierReadYourWrites) {
  auto d = make_sharded_cola(4, 1 << 16, /*g=*/8);
  std::map<Key, Value> model;
  Xoshiro256 rng(5);
  std::vector<Op<>> batch;
  for (int round = 0; round < 200; ++round) {
    batch.clear();
    const std::size_t n = 1 + rng.below(96);
    for (std::size_t i = 0; i < n; ++i) {
      const Key k = rng.below(1 << 16);
      if (rng.below(100) < 25) {
        batch.push_back(Op<>::del(k));
        model.erase(k);
      } else {
        const Value v = rng();
        batch.push_back(Op<>::put(k, v));
        model[k] = v;
      }
    }
    d.apply_batch(batch);
    // Immediate point reads: the per-shard drain barrier must make every
    // op of the batch visible.
    for (int probe = 0; probe < 4; ++probe) {
      const Key k = rng.below(1 << 16);
      const auto it = model.find(k);
      const auto got = d.find(k);
      ASSERT_EQ(got.has_value(), it != model.end()) << "round " << round;
      if (it != model.end()) {
        ASSERT_EQ(*got, it->second);
      }
    }
  }
  const auto got = testing::collect_range(d, 0, ~0ULL);
  ASSERT_EQ(got.size(), model.size());
  std::size_t j = 0;
  for (const auto& [k, v] : model) {
    ASSERT_EQ(got[j].key, k);
    ASSERT_EQ(got[j].value, v);
    ++j;
  }
}

TEST(Sharded, PresetsBuildShardedFacade) {
  for (const char* kind : {"cola", "shuttle", "btree"}) {
    auto d = api::make_dictionary(kind, api::DictConfig::concurrent(4, 4, 24));
    EXPECT_EQ(d.name(), std::string(kind) + "-s4");
    std::vector<Entry<>> batch;
    for (Key k = 0; k < 300; ++k) batch.push_back(Entry<>{k * 7, k});
    d.insert_batch(batch);
    for (Key k = 0; k < 300; ++k) {
      const auto got = d.find(k * 7);
      ASSERT_TRUE(got.has_value()) << kind << " key " << k * 7;
      EXPECT_EQ(*got, k);
    }
    std::size_t seen = 0;
    d.range_for_each(0, ~0ULL, [&](Key, Value) { ++seen; });
    EXPECT_EQ(seen, 300u);
  }
}

TEST(Sharded, ConfigValidation) {
  const auto build = [](std::size_t shards, std::vector<Key> splitters) {
    ShardedConfig<> sc;
    sc.shards = shards;
    sc.splitters = std::move(splitters);
    ShardedDictionary<btree::BTree<>> d(
        sc, [](std::size_t) { return btree::BTree<>(512); });
  };
  EXPECT_THROW(build(0, {}), std::invalid_argument);
  // Not strictly ascending.
  EXPECT_THROW(build(4, (std::vector<Key>{10, 10, 20})), std::invalid_argument);
  // Wrong splitter count.
  EXPECT_THROW(build(4, (std::vector<Key>{10, 20})), std::invalid_argument);
}

TEST(Sharded, WorkerExceptionSurfacesStickyAndTearsDownCleanly) {
  // An inner structure that throws on its worker thread must not
  // std::terminate the process, must not wedge the drain barrier (jobs are
  // counted even when dropped), and must surface the exception on the
  // facade thread — stickily — on the next call. Destruction afterwards
  // must join the workers without hanging (the regression this guards).
  struct ThrowingDict {
    cola::Gcola<> inner;
    void apply_batch(costream::Span<Op<>> /*ops*/) {
      throw std::runtime_error("inner dict exploded");
    }
    std::optional<Value> find(const Key& k) const { return inner.find(k); }
    auto make_cursor() const { return inner.make_cursor(); }
  };
  ShardedConfig<> sc;
  sc.shards = 2;
  sc.splitters = {256};
  // Parenthesized value-init: list-init would copy-list-initialize `inner`
  // through Gcola's explicit default constructor and trip -Werror.
  ShardedDictionary<ThrowingDict> d(sc,
                                    [](std::size_t) { return ThrowingDict(); });
  for (Key k = 0; k < 8; ++k) d.insert(k, k + 1);
  // find() is barrier-free and may legitimately race ahead of the failure
  // landing; drain() is the ordered barrier that waits for the worker to
  // pop (and drop) every job. Either the drain or the find after it must
  // surface the sticky exception.
  bool threw = false;
  std::string what;
  try {
    d.drain();
    (void)d.find(1);
  } catch (const std::runtime_error& e) {
    threw = true;
    what = e.what();
  }
  EXPECT_TRUE(threw) << "worker exception never reached the facade thread";
  EXPECT_EQ(what, "inner dict exploded");
  // Sticky: every later call — reads and writes alike — rethrows.
  EXPECT_THROW((void)d.find(300), std::runtime_error);
  EXPECT_THROW(d.insert(1, 1), std::runtime_error);
  EXPECT_THROW((void)d.find(1), std::runtime_error);
}

// ---- merge_join_k -----------------------------------------------------------

// The TSan hammer (CI runs this binary under -fsanitize=thread): detached
// snapshot cursors scan on reader threads while the facade ingests >= 10^6
// mixed mutations — the shard workers fold and retire the very segments
// the readers stand on. Refcount pinning means the readers must observe
// EXACTLY their stamped contents (count and epoch), with no torn reads for
// TSan to flag. This is the scan-under-ingest guarantee the old
// drain-barrier protocol could not offer at all.
TEST(Sharded, SnapshotScansSurviveConcurrentIngestStorm) {
  auto d = make_sharded_cola(4, 1 << 20, /*g=*/4);
  std::vector<Op<>> batch;
  Xoshiro256 rng(17);
  auto mutate = [&](std::size_t ops) {
    batch.clear();
    batch.reserve(ops);
    for (std::size_t i = 0; i < ops; ++i) {
      const Key k = rng.below(1 << 20);
      if (rng.below(100) < 25) {
        batch.push_back(Op<>::del(k));
      } else {
        batch.push_back(Op<>::put(k, k + 1));
      }
    }
    d.apply_batch(batch);
  };
  mutate(50'000);  // seed contents so the snapshot pins real segments

  const auto snap = d.snapshot();
  const std::uint64_t stamped_epoch = snap.epoch();
  std::size_t stamped_count = 0;
  snap.for_each([&](const Key&, const Value&) { ++stamped_count; });
  ASSERT_GT(stamped_count, 0u);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scans{0};
  std::atomic<bool> ok{true};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      // One cursor per thread (cursors are not shared); the snapshot
      // handle itself is free-threaded.
      while (!stop.load(std::memory_order_acquire)) {
        auto c = snap.make_cursor();
        std::size_t n = 0;
        for (c.seek_first(); c.valid(); c.next()) ++n;
        if (n != stamped_count || c.epoch() != stamped_epoch) {
          ok.store(false, std::memory_order_release);
        }
        scans.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // >= 10^6 mutations while the readers scan: folds cascade constantly at
  // g=4 with a small staging arena.
  for (int round = 0; round < 250; ++round) mutate(4'096);
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_TRUE(ok.load()) << "a concurrent scan diverged from its stamp";
  EXPECT_GT(scans.load(), 0u);
  // And the snapshot still reads its stamp after the storm.
  std::size_t after = 0;
  snap.for_each([&](const Key&, const Value&) { ++after; });
  EXPECT_EQ(after, stamped_count);
  EXPECT_EQ(snap.epoch(), stamped_epoch);
}

TEST(MergeJoinK, MatchesPairwiseAndModel) {
  // Three structures of different kinds with a known overlap pattern.
  cola::Gcola<> a(cola::ingest_tuned(4, 64));
  btree::BTree<> b(512);
  shuttle::ShuttleTree<> c;
  std::set<Key> ka, kb, kc;
  Xoshiro256 rng(123);
  for (int i = 0; i < 4000; ++i) {
    const Key k = rng.below(2000);
    switch (rng.below(7)) {
      case 0: a.insert(k, k + 1), ka.insert(k); break;
      case 1: b.insert(k, k + 2), kb.insert(k); break;
      case 2: c.insert(k, k + 3), kc.insert(k); break;
      case 3:  // seed three-way matches often enough to be interesting
        a.insert(k, k + 1), ka.insert(k);
        b.insert(k, k + 2), kb.insert(k);
        c.insert(k, k + 3), kc.insert(k);
        break;
      case 4: a.insert(k, k + 1), ka.insert(k);
              b.insert(k, k + 2), kb.insert(k); break;
      case 5: b.insert(k, k + 2), kb.insert(k);
              c.insert(k, k + 3), kc.insert(k); break;
      default: a.insert(k, k + 1), ka.insert(k);
               c.insert(k, k + 3), kc.insert(k); break;
    }
  }
  std::vector<Key> want;
  for (const Key k : ka) {
    if (kb.count(k) != 0 && kc.count(k) != 0) want.push_back(k);
  }
  ASSERT_FALSE(want.empty());

  std::vector<Key> got;
  api::merge_join_k(a, b, c, [&](Key k, const std::array<Value, 3>& vals) {
    EXPECT_EQ(vals[0], k + 1);
    EXPECT_EQ(vals[1], k + 2);
    EXPECT_EQ(vals[2], k + 3);
    got.push_back(k);
  });
  ASSERT_EQ(got, want);

  // k = 2 degenerates to the pairwise merge_join.
  std::vector<Key> got2, want2;
  api::merge_join(a, b, [&](Key k, Value, Value) { want2.push_back(k); });
  api::merge_join_k(a, b, [&](Key k, const std::array<Value, 2>&) {
    got2.push_back(k);
  });
  EXPECT_EQ(got2, want2);
}

TEST(MergeJoinK, EmptySideShortCircuits) {
  btree::BTree<> a(512), b(512), c(512);
  a.insert(1, 1);
  b.insert(1, 1);
  std::size_t rows = 0;
  api::merge_join_k(a, b, c,
                    [&](Key, const std::array<Value, 3>&) { ++rows; });
  EXPECT_EQ(rows, 0u);
}

TEST(MergeJoinK, JoinsShardedWithUnsharded) {
  auto s = make_sharded_cola(4, 4096, /*g=*/8);
  btree::BTree<> b(512);
  cola::Gcola<> p;
  for (Key k = 0; k < 4096; k += 3) s.insert(k, k);
  for (Key k = 0; k < 4096; k += 5) b.insert(k, k);
  for (Key k = 0; k < 4096; k += 7) p.insert(k, k);
  std::vector<Key> got;
  api::merge_join_k(s, b, p, [&](Key k, const std::array<Value, 3>&) {
    got.push_back(k);
  });
  std::vector<Key> want;
  for (Key k = 0; k < 4096; k += 3 * 5 * 7) want.push_back(k);
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace costream
