// Workload generators for the paper's experiments (Section 4) and for the
// property-test suites.
//
// The paper inserts three key orders into the dictionaries: random (Fig 2),
// descending [N-1..0] (Fig 3, best case for the B-tree), and ascending
// (Fig 5). We add a few extra distributions (clustered, zipf-like hotspots)
// used by the ablation benches and the randomized tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace costream {

enum class KeyOrder {
  kRandom,      // uniform random 64-bit keys (duplicates possible, like the paper)
  kAscending,   // 0, 1, 2, ...
  kDescending,  // N-1, N-2, ..., 0
  kClustered,   // runs of sequential keys starting at random bases
  kZipfHot,     // 90% of inserts drawn from a small hot range, 10% uniform
};

/// Human-readable name, used in bench output headers.
const char* to_string(KeyOrder order) noexcept;

/// Parse a name as printed by to_string(); throws std::invalid_argument.
KeyOrder key_order_from_string(const std::string& name);

/// A reproducible stream of keys. Generation is O(1) per key with no large
/// buffer, so benches can stream billions of keys if asked to.
class KeyStream {
 public:
  KeyStream(KeyOrder order, std::uint64_t n, std::uint64_t seed = 42);

  /// The i-th key of the stream (stateless for random orders, so the stream
  /// can be replayed for verification).
  std::uint64_t key_at(std::uint64_t i) const noexcept;

  std::uint64_t size() const noexcept { return n_; }
  KeyOrder order() const noexcept { return order_; }

  /// Materialize the first `count` keys (tests and small benches).
  std::vector<std::uint64_t> take(std::uint64_t count) const;

 private:
  KeyOrder order_;
  std::uint64_t n_;
  std::uint64_t seed_;
};

/// Mixed operation trace for integration tests: a reproducible sequence of
/// insert/erase/find/range operations with tunable proportions.
struct OpMix {
  double insert = 0.70;
  double erase = 0.10;
  double find = 0.15;
  double range = 0.05;
};

enum class TraceOpKind { kInsert, kErase, kFind, kRange };

/// One step of a generated test trace. (Named TraceOp to keep it distinct
/// from costream::Op, the public mixed-batch operation in common/entry.hpp:
/// a TraceOp describes what a test DRIVER does, including reads.)
struct TraceOp {
  TraceOpKind kind;
  std::uint64_t key;
  std::uint64_t value;  // for inserts
  std::uint64_t hi;     // for ranges: query [key, hi]
};

/// Generate `count` operations over a bounded key universe so erases and
/// finds hit existing keys with reasonable probability.
std::vector<TraceOp> generate_ops(std::uint64_t count, std::uint64_t key_universe,
                                  const OpMix& mix, std::uint64_t seed);

}  // namespace costream
