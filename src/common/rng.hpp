// Deterministic, fast pseudo-random number generation for workloads and
// property tests. We avoid <random> engines in hot loops: benchmarks generate
// hundreds of millions of keys and std::mt19937_64 is both slower and harder
// to seed reproducibly across standard-library versions.
#pragma once

#include <cstdint>

namespace costream {

/// SplitMix64: used to seed other generators and as a cheap stateless hash.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
inline constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of a single value; handy for hashing loop indices into keys.
inline constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256**: the workhorse generator. Satisfies
/// std::uniform_random_bit_generator so it can drive <random> distributions
/// in tests when convenient.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x9eadbeefcafef00dULL) noexcept {
    // Seed the four lanes through SplitMix64 as recommended by the authors;
    // guarantees a non-zero state for any seed.
    std::uint64_t s = seed;
    for (auto& lane : state_) lane = splitmix64(s);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). Unbiased enough for workloads (Lemire-style
  /// multiply-shift; the bias is < 2^-64 * bound which is irrelevant here).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    const unsigned __int128 wide =
        static_cast<unsigned __int128>(operator()()) * bound;
    return static_cast<std::uint64_t>(wide >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double unit() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace costream
