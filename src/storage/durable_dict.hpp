// DurableDictionary: the crash-consistent tier over a tiered Gcola.
//
// Serving stays in memory — finds, cursors, and range scans delegate to the
// inner Gcola — while every mutation is made durable BEFORE it is applied:
//
//   mutation call -> one WAL record (per-record CRC32C, stamped with the
//   last seqno the call consumed, group-commit batched per the fsync
//   policy) -> inner apply -> maybe checkpoint.
//
// Folds landing at or past spill_depth stream their segment to an
// immutable checksummed spill file (segment_file.hpp) through the Gcola's
// FoldObserver hook, and every spill installs a manifest tying the current
// WAL epoch to the live segment set. Checkpoint = fold EVERYTHING into one
// stripped full-state segment (Gcola::compact_all), advance covered_seqno
// to the last assigned seqno, rotate the WAL, install the manifest, and
// garbage-collect the WAL files and orphan segments that the new manifest
// obsoletes.
//
// A size-triggered checkpoint that fails is DEFERRED, not thrown: the
// mutation that tripped it already succeeded (WAL + memory + seqno), so
// the failure lands in stats.checkpoint_failures / last_checkpoint_error()
// and the next window retries. Only an explicit checkpoint() call throws.
//
// Recovery (the constructor) replays manifest -> segments (in manifest
// order: creation order == content-age order, so newest-wins replay
// reconstructs the merge view) -> WAL tail (records past covered_seqno,
// torn tails truncated). The segment-id counter is seeded past every
// manifest-live id BEFORE replay so replay-minted in-memory segment ids
// never collide with on-disk ones, and replay must reach the
// manifest-vouched durable seqno — falling short means acknowledged
// records were destroyed, not torn. That, or any missing/corrupt state,
// degrades to READ-ONLY mode — reads serve whatever was recovered,
// mutations throw ReadOnlyError — unless cfg.strict, which throws
// instead. Never UB.
//
// Correctness of the always-installed manifest: a spill's manifest keeps
// the OLD covered_seqno, so its segments only ever hold data the WAL tail
// also holds; replaying a segment first and the (in-seqno-order) WAL tail
// after converges to the pre-crash state because the last operation on a
// key wins. covered_seqno advances ONLY after a full-state fold has been
// spilled and synced.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cola/cola.hpp"
#include "common/entry.hpp"
#include "common/error.hpp"
#include "storage/env.hpp"
#include "storage/manifest.hpp"
#include "storage/segment_file.hpp"
#include "storage/wal.hpp"

namespace costream::storage {

struct DurableConfig {
  cola::ColaConfig inner = cola::ingest_tuned(8, 1024);
  FsyncPolicy fsync_policy = FsyncPolicy::kBatch;
  // Group-commit window under kBatch: records accumulate until this many
  // buffered bytes, then one write+fsync covers them all. ~1 MiB (~50k ops
  // at 21 bytes each) keeps fsync count negligible at ingest rates; lower
  // it to bound the durability lag, or use kAlways for per-record fsync.
  std::size_t group_commit_bytes = 1u << 20;
  std::size_t wal_segment_bytes = 4u << 20;
  // Checkpoint when this many WAL bytes accumulate since the last one.
  std::size_t checkpoint_wal_bytes = 8u << 20;
  // Folds landing at or past this level spill to segment files. Each
  // spill pays a segment write plus a manifest install (several fsyncs),
  // so the default targets levels big enough to amortize that: at the
  // default g=8 inner, level 6 holds 2*(g-1)*g^5 = 458752 entries (~7.5
  // MiB segments). Shallower levels stay memory-resident with the WAL (as
  // bounded by checkpoint_wal_bytes) covering them. Shallow settings are
  // for tests that want spills often.
  std::size_t spill_depth = 6;
  std::size_t segment_block_bytes = 4096;
  std::size_t block_cache_bytes = 1u << 20;
  // Strict mode: throw CorruptionError from recovery instead of degrading
  // to read-only.
  bool strict = false;
};

struct DurableStats {
  std::uint64_t wal_records = 0;
  std::uint64_t checkpoints = 0;
  // Automatic (size-triggered) checkpoints that failed and were deferred.
  // The mutation that triggered them still succeeded — the WAL carries
  // durability — so the failure surfaces here (and in
  // last_checkpoint_error()) instead of as a throw from the mutator.
  std::uint64_t checkpoint_failures = 0;
  std::uint64_t segments_spilled = 0;
  std::uint64_t segments_retired = 0;
  std::uint64_t recovered_segment_entries = 0;
  std::uint64_t recovered_wal_records = 0;
  bool wal_tail_torn = false;
};

class DurableDictionary {
  using Cola = cola::Gcola<Key, Value>;

 public:
  /// Open (recovering if state exists) against a borrowed env — the fault
  /// harness's spelling, so it keeps its handle for crash control.
  DurableDictionary(StorageEnv& env, DurableConfig cfg = {})
      : st_(std::make_unique<State>(nullptr, env, cfg)) {}

  /// Open against an owned env (the production spelling: PosixEnv on a
  /// directory).
  DurableDictionary(std::unique_ptr<StorageEnv> env, DurableConfig cfg = {})
      : st_(std::make_unique<State>(std::move(env), cfg)) {}

  DurableDictionary(DurableDictionary&&) noexcept = default;
  DurableDictionary& operator=(DurableDictionary&&) noexcept = default;

  // -- mutators (WAL first, memory second) ---------------------------------

  void insert(const Key& k, const Value& v) {
    const Op<> op = Op<>::put(k, v);
    st_->apply_ops(&op, 1);
  }

  void erase(const Key& k) {
    const Op<> op = Op<>::del(k);
    st_->apply_ops(&op, 1);
  }

  void insert_batch(Span<Entry<>> batch) {
    st_->insert_entries(batch.data(), batch.size());
  }

  void erase_batch(Span<Key> keys) {
    st_->ops_scratch.clear();
    st_->ops_scratch.reserve(keys.size());
    for (const Key& k : keys) st_->ops_scratch.push_back(Op<>::del(k));
    st_->apply_ops(st_->ops_scratch.data(), keys.size());
  }

  void apply_batch(Span<Op<>> ops) { st_->apply_ops(ops.data(), ops.size()); }

  // Deprecated pointer-form batch shims (one release; migration note in
  // api/dictionary.hpp — CI's deprecated-api lint rejects in-repo callers).
  void insert_batch(const Entry<>* data, std::size_t n) {
    insert_batch(Span<Entry<>>(data, n));
  }
  void erase_batch(const Key* keys, std::size_t n) {
    erase_batch(Span<Key>(keys, n));
  }
  void apply_batch(const Op<>* ops, std::size_t n) {
    apply_batch(Span<Op<>>(ops, n));
  }

  /// Drain the inner staging arena (memory-only: the arena's content is
  /// already WAL-logged, so this changes layout, not durability).
  void flush_stage() {
    st_->throw_if_read_only();
    st_->inner.flush_stage();
  }

  /// Group-commit barrier: every record appended so far is durable on
  /// return (modulo a lying device).
  void sync() {
    st_->throw_if_read_only();
    st_->wal->sync();
  }

  /// Force a checkpoint: full-state fold spilled, covered_seqno advanced,
  /// WAL rotated, obsolete files collected.
  void checkpoint() {
    st_->throw_if_read_only();
    st_->checkpoint();
  }

  // -- reads (served from memory; legal in read-only mode) -----------------

  std::optional<Value> find(const Key& k) const { return st_->inner.find(k); }

  /// Point-in-time snapshot of the in-memory state (contract in
  /// api/dictionary.hpp): a passthrough to the inner COLA's ref-counted
  /// segment snapshot. Durability is orthogonal — the snapshot pins what
  /// the memory tier holds NOW, which already reflects every accepted op.
  snap::Snapshot<Key, Value> snapshot() const { return st_->inner.snapshot(); }

  auto make_cursor() const { return st_->inner.make_cursor(); }

  template <class Fn>
  void range_for_each(const Key& lo, const Key& hi, Fn&& fn) const {
    st_->inner.range_for_each(lo, hi, std::forward<Fn>(fn));
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    st_->inner.for_each(std::forward<Fn>(fn));
  }

  // -- observability -------------------------------------------------------

  /// Last sequence number assigned (== number of ops accepted since the
  /// directory was created, across every process generation).
  std::uint64_t seqno() const noexcept { return st_->seqno; }
  /// Highest seqno the WAL believes durable under the fsync policy.
  std::uint64_t durable_seqno() const noexcept {
    return st_->wal ? std::max(st_->covered_seqno, st_->wal->durable_seqno())
                    : st_->covered_seqno;
  }
  /// Seqno reconstructed by recovery when this instance opened.
  std::uint64_t last_recovered_seqno() const noexcept {
    return st_->last_recovered_seqno;
  }
  bool read_only() const noexcept { return st_->read_only; }
  /// True when a failed WAL append could not be unwound from the device:
  /// the epoch is wedged (every mutation throws) and exactly one
  /// unacknowledged record MAY survive to the next recovery. Reopen to
  /// resolve it.
  bool wal_poisoned() const noexcept {
    return st_->wal != nullptr && st_->wal->poisoned();
  }
  const std::string& corruption_detail() const noexcept {
    return st_->corruption_detail;
  }
  /// Detail of the most recent failed AUTOMATIC (size-triggered)
  /// checkpoint; empty once a later checkpoint succeeds. Mutators never
  /// throw for a deferred checkpoint failure — poll this (or
  /// stats.checkpoint_failures) for storage health. An explicit
  /// checkpoint() call still throws on failure.
  const std::string& last_checkpoint_error() const noexcept {
    return st_->last_checkpoint_error;
  }
  const DurableStats& storage_stats() const noexcept { return st_->stats; }
  std::size_t live_segment_files() const noexcept { return st_->live.size(); }
  const Cola& inner() const noexcept { return st_->inner; }
  Cola& inner_mut() noexcept { return st_->inner; }
  void check_invariants() const { st_->inner.check_invariants(); }

 private:
  struct State;

  /// The Gcola-side spill hook. Runs inside a fold, so it must not throw:
  /// failures are recorded and the disk live-set is left unchanged (the
  /// WAL still covers everything, so a missed spill costs nothing but the
  /// checkpoint that would have advanced covered_seqno).
  ///
  /// Background compaction keeps the WAL-synced-before-install invariant
  /// for free: with compaction_threads > 0 the Gcola still fires this hook
  /// on the MUTATING thread, at the moment the finished fold installs
  /// (poll/assist) — never from a pool worker — so the WAL barrier below
  /// runs before the spill file lands exactly as in the inline path, and
  /// State needs no extra locking.
  struct Spiller final : Cola::FoldObserver {
    State* st = nullptr;
    bool full_state = false;  // checkpoint: segment replaces the live set
    bool failed = false;
    std::string error;

    void on_segment_spill(std::uint64_t seg_id, std::size_t level,
                          const Op<Key, Value>* items, std::size_t n,
                          const std::uint64_t* consumed,
                          std::size_t n_consumed) override {
      try {
        // WAL barrier BEFORE the segment lands: every op a fold can spill
        // must already be durable in the log, or a crash would leave a
        // manifest-referenced segment holding ops beyond the durable WAL —
        // phantom future data that recovery could not place on the seqno
        // axis. (Replay converges by last-op-wins only when segment
        // content is a subset of covered-prefix + durable WAL tail.)
        if (n > 0 && st->wal) st->wal->sync();
        std::vector<SegmentMeta> live;
        if (!full_state) {
          live.reserve(st->live.size() + 1);
          std::unordered_set<std::uint64_t> gone(consumed,
                                                 consumed + n_consumed);
          for (const auto& s : st->live) {
            if (gone.count(s.seg_id) == 0) live.push_back(s);
          }
        }
        if (n > 0) {
          const std::string name = seg_detail::segment_name(seg_id);
          SegmentWriter w(*st->env, name, st->cfg.segment_block_bytes);
          for (std::size_t i = 0; i < n; ++i) {
            w.add({items[i].key, items[i].value,
                   items[i].erase ? kEntryTombstone : std::uint8_t{0}});
          }
          w.finish();
          st->env->sync_dir();
          live.push_back({name, seg_id, static_cast<std::uint32_t>(level),
                          static_cast<std::uint64_t>(n)});
        }
        Manifest m;
        m.covered_seqno = st->covered_seqno;
        // The sync barrier above makes every logged record durable; stamp
        // that boundary so replay can tell corruption in the vouched-for
        // region from a legal tear of unsynced appends.
        m.durable_seqno = std::max(
            st->covered_seqno, st->wal ? st->wal->durable_seqno() : 0);
        m.next_file_no = st->wal ? st->wal->file_no() + 1 : st->next_wal_no;
        m.segments = live;
        install_manifest(*st->env, m);
        st->stats.segments_retired += st->live.size() + (n > 0 ? 1 : 0) - live.size();
        st->live = std::move(live);
        if (n > 0) ++st->stats.segments_spilled;
      } catch (const std::exception& e) {
        failed = true;
        error = e.what();
      }
    }
  };

  struct State {
    std::unique_ptr<StorageEnv> owned_env;
    StorageEnv* env;
    DurableConfig cfg;
    Cola inner;
    Spiller spiller;
    std::unique_ptr<WalWriter> wal;
    std::vector<SegmentMeta> live;
    BlockCache cache;
    std::uint64_t seqno = 0;
    std::uint64_t covered_seqno = 0;
    std::uint64_t next_wal_no = 0;
    std::uint64_t last_recovered_seqno = 0;
    std::uint64_t wal_bytes_at_checkpoint = 0;
    bool read_only = false;
    std::string corruption_detail;
    std::string last_checkpoint_error;
    DurableStats stats;
    std::vector<Op<>> ops_scratch;
    std::vector<Op<>> replay_scratch;

    State(std::unique_ptr<StorageEnv> owned, StorageEnv& borrowed,
          DurableConfig c)
        : owned_env(std::move(owned)),
          env(&borrowed),
          cfg(c),
          inner(c.inner),
          cache(c.block_cache_bytes) {
      spiller.st = this;
      recover();
    }

    State(std::unique_ptr<StorageEnv> owned, DurableConfig c)
        : owned_env(std::move(owned)),
          env(owned_env.get()),
          cfg(c),
          inner(c.inner),
          cache(c.block_cache_bytes) {
      spiller.st = this;
      recover();
    }

    void throw_if_read_only() const {
      if (read_only) {
        throw ReadOnlyError("durable dictionary is read-only: " +
                            corruption_detail);
      }
    }

    void apply_ops(const Op<>* ops, std::size_t n) {
      throw_if_read_only();
      if (n == 0) return;
      const std::uint64_t last = seqno + n;  // one seqno per op in the call
      wal->append_ops(last, ops, n);  // throws before memory is touched
      ++stats.wal_records;
      seqno = last;
      inner.apply_batch(Span<Op<>>(ops, n));
      maybe_checkpoint();
    }

    /// Pure-insert bulk path: WAL-log the entries directly (flags = 0) and
    /// feed the inner structure its native Entry-wide insert_batch, skipping
    /// the Entry -> Op widening copy apply_ops would need.
    void insert_entries(const Entry<>* data, std::size_t n) {
      throw_if_read_only();
      if (n == 0) return;
      const std::uint64_t last = seqno + n;  // one seqno per entry
      wal->append_puts(last, data, n);  // throws before memory is touched
      ++stats.wal_records;
      seqno = last;
      inner.insert_batch(Span<Entry<>>(data, n));
      maybe_checkpoint();
    }

    void maybe_checkpoint() {
      if (wal->bytes_logged() - wal_bytes_at_checkpoint <
          cfg.checkpoint_wal_bytes) {
        return;
      }
      try {
        checkpoint();
      } catch (const CrashError&) {
        throw;  // scheduled power cut: the whole process is going down
      } catch (const IOError& e) {
        // The mutation that triggered this call already fully succeeded
        // (record WAL-appended per policy, memory applied, seqno
        // advanced), so a throw here would make callers believe the op
        // was NOT applied when it durably was. Durability never needed
        // the checkpoint — the WAL still carries everything — so defer:
        // record the failure for health observers and retry once another
        // checkpoint_wal_bytes window accumulates (immediate per-op
        // retries would pay a full compact_all per mutation).
        ++stats.checkpoint_failures;
        last_checkpoint_error = e.what();
        wal_bytes_at_checkpoint = wal->bytes_logged();
      }
    }

    /// Fold everything to one spilled segment, advance covered_seqno, open
    /// a new WAL epoch, install the manifest, collect obsolete files.
    void checkpoint() {
      spiller.failed = false;
      // Drain the staging arena under NORMAL spill semantics first. The
      // folds it cascades are incremental (consumed segments replaced by
      // their merge); flagging them full_state would install a manifest
      // whose live set is just that partial fold — silently dropping the
      // previous checkpoint's full-state segment, whose content the WAL no
      // longer covers. compact_all's own flush is then a no-op, so exactly
      // its one final all-levels fold runs as the full-state spill.
      inner.flush_stage();
      if (spiller.failed) {
        spiller.failed = false;
        throw IOError("checkpoint pre-flush spill failed: " + spiller.error);
      }
      spiller.full_state = true;
      const bool produced = inner.compact_all(cfg.spill_depth);
      spiller.full_state = false;
      if (spiller.failed) {
        spiller.failed = false;
        // covered_seqno did NOT advance; WAL keeps everything. Durability
        // is intact — the checkpoint just didn't happen.
        throw IOError("checkpoint spill failed: " + spiller.error);
      }
      if (!produced) {
        // Empty dictionary (or fold annihilated to nothing with no spilled
        // sources): the live set is whatever the observer last installed,
        // or — when no observer call fired — must become empty by hand.
        if (!live.empty() && inner.item_count() == 0) {
          live.clear();
        }
      }
      // covered_seqno (and with it durable_seqno's floor) advances in
      // memory only once the manifest that PROVES it is durably installed;
      // a throw anywhere below leaves the old honest value, with the WAL
      // (synced by rotate) still carrying everything.
      const std::uint64_t new_covered = seqno;
      wal->rotate();  // sync + fresh "wal-<n>.log", name durable
      Manifest m;
      m.covered_seqno = new_covered;
      m.durable_seqno = std::max(new_covered, wal->durable_seqno());
      m.next_file_no = wal->file_no() + 1;
      m.segments = live;
      install_manifest(*env, m);
      covered_seqno = new_covered;
      wal_bytes_at_checkpoint = wal->bytes_logged();
      ++stats.checkpoints;
      last_checkpoint_error.clear();
      gc();
    }

    /// Remove WAL files older than the current epoch and segment files the
    /// manifest no longer references. Transient EIO is retried; permanent
    /// failures propagate (the files are merely stale, and the next
    /// checkpoint retries the collection).
    void gc() {
      std::unordered_set<std::string> keep;
      for (const auto& s : live) keep.insert(s.name);
      for (const auto& name : env->list()) {
        std::uint64_t no;
        if (wal_detail::parse_wal_name(name, no)) {
          if (no < wal->file_no()) {
            with_retry(*env, [&] { env->remove_file(name); });
          }
        } else if (name.size() > 4 && name.compare(0, 4, "seg-") == 0 &&
                   keep.count(name) == 0) {
          with_retry(*env, [&] { env->remove_file(name); });
        }
      }
      with_retry(*env, [&] { env->sync_dir(); });
    }

    /// Rebuild memory from disk: manifest -> segments -> WAL tail. See the
    /// file header for the protocol and the degradation rules.
    void recover() {
      try {
        std::uint64_t max_seg_id = 0;
        // The durable-WAL boundary this recovery can vouch for: what the
        // manifest proved fsynced at install time (0 with no manifest —
        // then every CRC break is classified as a tear, which is the only
        // sound reading when nothing durable was ever promised).
        std::uint64_t wal_durable = 0;
        auto mopt = with_retry(*env, [&] { return load_manifest(*env); });
        if (mopt.has_value()) {
          covered_seqno = mopt->covered_seqno;
          wal_durable = std::max(mopt->covered_seqno, mopt->durable_seqno);
          next_wal_no = mopt->next_file_no;
          live = std::move(mopt->segments);
          for (const auto& s : live) {
            max_seg_id = std::max(max_seg_id, s.seg_id);
          }
          // Seed the in-memory segment-id counter past every manifest-live
          // id BEFORE any replay apply_batch runs: replay mints in-memory
          // segment ids, and an id shared with an on-disk segment would be
          // reported as consumed by the first post-recovery fold past
          // spill_depth — wrongly retiring (and then gc'ing) the live file,
          // which loses the covered prefix once the WAL no longer holds it.
          inner.set_next_seg_id(max_seg_id + 1);
          for (const auto& s : live) replay_segment(s);
        }
        const WalReplayResult wres = replay_wal(
            *env, covered_seqno, wal_durable, cfg.strict,
            [&](const WalRecord& rec) {
              replay_scratch.clear();
              replay_scratch.reserve(rec.entries.size());
              for (const auto& e : rec.entries) {
                replay_scratch.push_back(
                    (e.flags & 1u) != 0 ? Op<>::del(e.key)
                                        : Op<>::put(e.key, e.value));
              }
              inner.apply_batch(replay_scratch);
              ++stats.recovered_wal_records;
            });
        stats.wal_tail_torn = wres.tore;
        // Replay must REACH the boundary the manifest vouched fsynced: a
        // break — or wholesale WAL-file loss — below it cannot be a legal
        // tear, because a sync barrier covered those records. replay_wal
        // catches breaks FOLLOWED by an intact durable record; this check
        // catches the complement, where the vouched tail itself (or every
        // WAL file) was destroyed and replay would otherwise silently
        // accept the shorter prefix and reissue acknowledged seqnos.
        if (std::max(covered_seqno, wres.last_seqno) < wal_durable) {
          throw CorruptionError(
              "wal: replay reached seqno " +
              std::to_string(std::max(covered_seqno, wres.last_seqno)) +
              " but the manifest vouches fsynced records through " +
              std::to_string(wal_durable) +
              " — acknowledged-durable records are missing");
        }
        seqno = std::max(covered_seqno, wres.last_seqno);
        last_recovered_seqno = seqno;
        next_wal_no = std::max(next_wal_no, wres.next_file_no);
        // A fresh epoch per process generation: never append to a possibly
        // torn pre-crash file.
        wal = std::make_unique<WalWriter>(
            *env,
            WalOptions{cfg.fsync_policy, cfg.group_commit_bytes,
                       cfg.wal_segment_bytes},
            next_wal_no);
        inner.set_fold_observer(&spiller, cfg.spill_depth);
        gc_orphan_segments();
      } catch (const CrashError&) {
        throw;  // scheduled power cut mid-recovery: the harness reopens
      } catch (const TransientIOError&) {
        throw;  // retries exhausted: device trouble, not corruption
      } catch (const CorruptionError& e) {
        degrade(e.what());
      } catch (const IOError& e) {
        // A file the manifest references is gone or unreadable — that is
        // corruption of the store, not a transient device condition.
        degrade(e.what());
      }
    }

    void replay_segment(const SegmentMeta& s) {
      SegmentReader r(*env, s.name, s.seg_id, &cache);
      replay_scratch.clear();
      r.for_each_raw([&](const SegmentEntry& e) {
        replay_scratch.push_back((e.flags & kEntryTombstone) != 0
                                     ? Op<>::del(e.key)
                                     : Op<>::put(e.key, e.value));
        if (replay_scratch.size() >= 4096) {
          inner.apply_batch(replay_scratch);
          stats.recovered_segment_entries += replay_scratch.size();
          replay_scratch.clear();
        }
      });
      inner.apply_batch(replay_scratch);
      stats.recovered_segment_entries += replay_scratch.size();
      replay_scratch.clear();
    }

    /// Drop segment files no manifest references (crashed spills). Best
    /// effort at open: a failure here just leaves garbage for the next gc —
    /// only a scheduled power cut propagates (the harness must see it).
    void gc_orphan_segments() {
      try {
        std::unordered_set<std::string> keep;
        for (const auto& s : live) keep.insert(s.name);
        for (const auto& name : env->list()) {
          if (name.size() > 4 && name.compare(0, 4, "seg-") == 0 &&
              keep.count(name) == 0) {
            env->remove_file(name);
          }
        }
        env->sync_dir();
      } catch (const CrashError&) {
        throw;
      } catch (const IOError&) {
        // stale files stay; the next checkpoint's gc retries
      }
    }

    void degrade(const std::string& why) {
      if (cfg.strict) throw CorruptionError(why);
      read_only = true;
      corruption_detail = why;
      wal.reset();
      inner.set_fold_observer(nullptr, 0);
    }
  };

  std::unique_ptr<State> st_;
};

}  // namespace costream::storage
