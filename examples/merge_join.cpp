// merge_join example: join two (or k) write-optimized dictionaries by key
// using the cursor API — no materialization, no templating on any structure.
//
// Scenario: a metrics pipeline keeps request counters in an ingest-tuned
// COLA (hot write path) and a slowly-changing user -> region table in a
// B-tree (point-lookup heavy). A report wants (user, requests, region) for
// every user present in BOTH — exactly api::merge_join. A second report
// additionally filters by an opt-in consent table: a THREE-way
// intersection, exactly api::merge_join_k — one leapfrog pass instead of
// joining pairwise through a materialized intermediate.
//
// The joins are cursor-driven: each side advances with next() while close
// to the frontier and re-seeks (leapfrog) across gaps — which the COLA
// turns into whole-segment skips via its fence keys — so a sparse overlap
// costs O(matches) seeks instead of a full scan of any side.
//
// Build: part of the default cmake build; run ./examples/merge_join
#include <array>
#include <cstdio>
#include <vector>

#include "api/dictionary.hpp"
#include "btree/btree.hpp"
#include "cola/cola.hpp"
#include "common/rng.hpp"

using namespace costream;

int main() {
  // Request counters: bursty ingest, batched, erase-on-expiry — the COLA's
  // home turf.
  cola::Gcola<> requests(cola::ingest_tuned(8, 1024));
  // Region assignments: small, stable, lookup-oriented.
  btree::BTree<> regions;

  Xoshiro256 rng(42);
  std::vector<Entry<>> batch;
  for (int round = 0; round < 64; ++round) {
    batch.clear();
    for (int i = 0; i < 1024; ++i) {
      const Key user = rng.below(100'000);
      batch.push_back(Entry<>{user, rng.below(50) + 1});
    }
    requests.insert_batch(batch);
  }
  // Only every 16th user has a region assignment: the join is sparse, the
  // leapfrog seeks skip the unassigned runs.
  for (Key user = 0; user < 100'000; user += 16) {
    regions.insert(user, user % 7);  // 7 regions
  }

  std::uint64_t rows = 0, by_region[7] = {};
  api::merge_join(requests, regions, [&](Key user, Value reqs, Value region) {
    ++rows;
    by_region[region] += reqs;
    if (rows <= 5) {
      std::printf("  user %-6llu requests %-3llu region %llu\n",
                  static_cast<unsigned long long>(user),
                  static_cast<unsigned long long>(reqs),
                  static_cast<unsigned long long>(region));
    }
  });
  std::printf("  ...\njoined %llu users with a region assignment\n",
              static_cast<unsigned long long>(rows));
  for (int r = 0; r < 7; ++r) {
    std::printf("  region %d: %llu requests\n", r,
                static_cast<unsigned long long>(by_region[r]));
  }

  // The k-way driver: restrict the report to users who also appear in a
  // consent table (every 24th user). One pass over three structures; the
  // sink receives each side's value in argument order.
  btree::BTree<> consent;
  for (Key user = 0; user < 100'000; user += 24) consent.insert(user, 1);
  std::uint64_t consented = 0;
  api::merge_join_k(requests, regions, consent,
                    [&](Key, const std::array<Value, 3>&) { ++consented; });
  std::printf("3-way join: %llu consenting users with a region assignment\n",
              static_cast<unsigned long long>(consented));

  // The same call works on type-erased dictionaries (e.g. when the concrete
  // structure is a deployment choice).
  api::AnyDictionary erased_requests("cola", std::move(requests));
  api::AnyDictionary erased_regions("btree", std::move(regions));
  std::uint64_t erased_rows = 0;
  api::merge_join(erased_requests, erased_regions,
                  [&](Key, Value, Value) { ++erased_rows; });
  std::printf("type-erased join agrees: %s\n",
              erased_rows == rows ? "yes" : "NO (bug!)");
  return erased_rows == rows ? 0 : 1;
}
