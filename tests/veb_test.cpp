// Static vEB-layout search tree tests: correctness of predecessor queries,
// the layout being a permutation, in-place key updates, and the
// cache-oblivious block-crossing bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "dam/dam_mem_model.hpp"
#include "layout/veb_static.hpp"

namespace costream::layout {
namespace {

using Tree = VebStaticTree<std::uint64_t>;

std::vector<std::uint64_t> sorted_random_keys(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::set<std::uint64_t> s;
  while (s.size() < n) s.insert(rng());
  return {s.begin(), s.end()};
}

std::int64_t ref_predecessor(const std::vector<std::uint64_t>& keys, std::uint64_t q) {
  const auto it = std::upper_bound(keys.begin(), keys.end(), q);
  return static_cast<std::int64_t>(it - keys.begin()) - 1;
}

TEST(VebStatic, EmptyTree) {
  Tree t;
  dam::null_mem_model mm;
  t.build({});
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.predecessor_rank(5, mm), -1);
}

TEST(VebStatic, SingleKey) {
  Tree t;
  dam::null_mem_model mm;
  t.build({10});
  EXPECT_EQ(t.predecessor_rank(9, mm), -1);
  EXPECT_EQ(t.predecessor_rank(10, mm), 0);
  EXPECT_EQ(t.predecessor_rank(11, mm), 0);
}

class VebSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VebSizes, PredecessorMatchesReference) {
  const std::size_t n = GetParam();
  const auto keys = sorted_random_keys(n, 0xabc + n);
  Tree t;
  dam::null_mem_model mm;
  t.build(keys);
  Xoshiro256 rng(99);
  for (int q = 0; q < 2'000; ++q) {
    const std::uint64_t probe = rng();
    EXPECT_EQ(t.predecessor_rank(probe, mm), ref_predecessor(keys, probe)) << probe;
  }
  // Exact keys are their own predecessor.
  for (std::size_t i = 0; i < n; i += std::max<std::size_t>(1, n / 50)) {
    EXPECT_EQ(t.predecessor_rank(keys[i], mm), static_cast<std::int64_t>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, VebSizes,
                         ::testing::Values(2, 3, 7, 8, 15, 64, 100, 1023, 4096, 10'000));

TEST(VebStatic, LayoutIsAPermutation) {
  const auto keys = sorted_random_keys(1'000, 5);
  Tree t;
  t.build(keys);
  std::vector<bool> seen(keys.size(), false);
  for (std::size_t r = 0; r < keys.size(); ++r) {
    const auto pos = t.position_of_rank(r);
    ASSERT_LT(pos, keys.size());
    ASSERT_FALSE(seen[pos]) << "position reused";
    seen[pos] = true;
    EXPECT_EQ(t.rank_of_position(pos), static_cast<std::int64_t>(r));
  }
}

TEST(VebStatic, RootIsFirstInLayout) {
  // The vEB order always places the subtree root first.
  const auto keys = sorted_random_keys(513, 6);
  Tree t;
  t.build(keys);
  // The root is the middle rank of the balanced BST.
  EXPECT_EQ(t.position_of_rank(keys.size() / 2), 0u);
}

TEST(VebStatic, UpdateKeyInPlace) {
  auto keys = sorted_random_keys(300, 17);
  Tree t;
  dam::null_mem_model mm;
  t.build(keys);
  // Shift every key up by a constant (order preserved) and re-query.
  for (std::size_t r = 0; r < keys.size(); ++r) {
    keys[r] += 1000;
    t.update_key(r, keys[r], mm);
  }
  Xoshiro256 rng(3);
  for (int q = 0; q < 1'000; ++q) {
    const std::uint64_t probe = rng();
    EXPECT_EQ(t.predecessor_rank(probe, mm), ref_predecessor(keys, probe));
  }
}

TEST(VebStatic, SearchTransfersAreLogBOfN) {
  // The cache-oblivious bound: a root-to-leaf walk crosses O(log_B n) blocks.
  // With n = 2^16 nodes of 16 bytes and B = 4096 (256 nodes/block),
  // log_B n = log(65536)/log(257) ~ 2; allow a factor-3 constant. A pointer
  // -chasing layout would pay ~log2(n) - 8 = 8+ transfers for the bottom
  // levels alone.
  const std::size_t n = 1 << 16;
  const auto keys = sorted_random_keys(n, 123);
  VebStaticTree<std::uint64_t, dam::dam_mem_model> t;
  t.build(keys);
  dam::dam_mem_model mm(4096, 1 << 20);
  Xoshiro256 rng(4);
  const int probes = 200;
  std::uint64_t total = 0;
  for (int q = 0; q < probes; ++q) {
    mm.clear_cache();
    mm.reset_stats();
    t.predecessor_rank(rng(), mm);
    total += mm.stats().transfers;
  }
  const double avg = static_cast<double>(total) / probes;
  const double logb = std::log(static_cast<double>(n)) / std::log(4096.0 / 16.0);
  EXPECT_LT(avg, 3.0 * logb + 2.0) << "avg transfers " << avg;
}

TEST(VebStatic, DuplicateKeysReturnRightmost) {
  // Inherited segment leaders produce duplicate keys; predecessor must pick
  // the rightmost rank with key <= probe for the CO B-tree's scan to start
  // in the nearest segment.
  std::vector<std::uint64_t> keys{5, 5, 5, 9, 9, 12};
  Tree t;
  dam::null_mem_model mm;
  t.build(keys);
  EXPECT_EQ(t.predecessor_rank(5, mm), 2);
  EXPECT_EQ(t.predecessor_rank(8, mm), 2);
  EXPECT_EQ(t.predecessor_rank(9, mm), 4);
  EXPECT_EQ(t.predecessor_rank(100, mm), 5);
  EXPECT_EQ(t.predecessor_rank(4, mm), -1);
}

}  // namespace
}  // namespace costream::layout
