// PosixEnv: the production StorageEnv over one real directory. Every
// durability edge the protocols rely on maps to the POSIX primitive that
// provides it: append -> write(2) loop, sync -> fsync(2), namespace commit
// -> fsync of the directory fd, atomic replace -> rename(2). Short writes
// and EINTR are looped; genuine errors surface as IOError with errno text.
#pragma once

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "storage/env.hpp"

namespace costream::storage {

namespace posix_detail {

[[noreturn]] inline void throw_errno(const std::string& what) {
  throw IOError(what + ": " + std::strerror(errno));
}

class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  int get() const noexcept { return fd_; }

 private:
  int fd_ = -1;
};

}  // namespace posix_detail

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  void append(const void* data, std::size_t n) override {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      const ::ssize_t w = ::write(fd_.get(), p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        posix_detail::throw_errno("write " + path_);
      }
      p += w;
      n -= static_cast<std::size_t>(w);
      size_ += static_cast<std::uint64_t>(w);
    }
  }

  void sync() override {
    if (::fsync(fd_.get()) != 0) posix_detail::throw_errno("fsync " + path_);
  }

  std::uint64_t size() const noexcept override { return size_; }

  void truncate_to(std::uint64_t size) override {
    if (::ftruncate(fd_.get(), static_cast<::off_t>(size)) != 0) {
      posix_detail::throw_errno("ftruncate " + path_);
    }
    size_ = size;
  }

 private:
  posix_detail::Fd fd_;
  std::string path_;
  std::uint64_t size_ = 0;
};

class PosixRandomReadFile final : public RandomReadFile {
 public:
  PosixRandomReadFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  std::size_t read(std::uint64_t offset, void* buf, std::size_t n) override {
    for (;;) {
      const ::ssize_t r =
          ::pread(fd_.get(), buf, n, static_cast<::off_t>(offset));
      if (r < 0) {
        if (errno == EINTR) continue;
        posix_detail::throw_errno("pread " + path_);
      }
      return static_cast<std::size_t>(r);
    }
  }

  std::uint64_t size() override {
    struct ::stat st{};
    if (::fstat(fd_.get(), &st) != 0) posix_detail::throw_errno("fstat " + path_);
    return static_cast<std::uint64_t>(st.st_size);
  }

 private:
  posix_detail::Fd fd_;
  std::string path_;
};

class PosixEnv final : public StorageEnv {
 public:
  /// Roots the env at `dir`, creating the directory if absent.
  explicit PosixEnv(std::string dir) : dir_(std::move(dir)) {
    if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
      posix_detail::throw_errno("mkdir " + dir_);
    }
  }

  std::unique_ptr<WritableFile> create(const std::string& name) override {
    const std::string p = path(name);
    const int fd = ::open(p.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) posix_detail::throw_errno("create " + p);
    return std::make_unique<PosixWritableFile>(fd, p);
  }

  std::unique_ptr<RandomReadFile> open_read(const std::string& name) override {
    const std::string p = path(name);
    const int fd = ::open(p.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) posix_detail::throw_errno("open " + p);
    return std::make_unique<PosixRandomReadFile>(fd, p);
  }

  bool exists(const std::string& name) override {
    struct ::stat st{};
    return ::stat(path(name).c_str(), &st) == 0;
  }

  std::vector<std::string> list() override {
    ::DIR* d = ::opendir(dir_.c_str());
    if (d == nullptr) posix_detail::throw_errno("opendir " + dir_);
    std::vector<std::string> names;
    while (struct ::dirent* e = ::readdir(d)) {
      const std::string n = e->d_name;
      if (n != "." && n != "..") names.push_back(n);
    }
    ::closedir(d);
    return names;
  }

  void rename_file(const std::string& from, const std::string& to) override {
    if (::rename(path(from).c_str(), path(to).c_str()) != 0) {
      posix_detail::throw_errno("rename " + path(from));
    }
  }

  void remove_file(const std::string& name) override {
    if (::unlink(path(name).c_str()) != 0) {
      posix_detail::throw_errno("unlink " + path(name));
    }
  }

  void truncate_file(const std::string& name, std::uint64_t size) override {
    if (::truncate(path(name).c_str(), static_cast<::off_t>(size)) != 0) {
      posix_detail::throw_errno("truncate " + path(name));
    }
  }

  void sync_dir() override {
    const int fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) posix_detail::throw_errno("open dir " + dir_);
    posix_detail::Fd guard(fd);
    if (::fsync(fd) != 0) posix_detail::throw_errno("fsync dir " + dir_);
  }

  void sleep_us(std::uint64_t us) override {
    struct ::timespec ts{};
    ts.tv_sec = static_cast<::time_t>(us / 1'000'000);
    ts.tv_nsec = static_cast<long>((us % 1'000'000) * 1000);
    ::nanosleep(&ts, nullptr);
  }

  const std::string& dir() const noexcept { return dir_; }

 private:
  std::string path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

}  // namespace costream::storage
