// Static search tree in van Emde Boas layout (Prokop; used by the
// cache-oblivious B-tree of Bender, Demaine, Farach-Colton — reference [6]
// of the paper, and our CO B-tree baseline's index).
//
// A balanced binary search tree over m keys is serialized so that the top
// half (by height) is stored first, followed by each bottom subtree in
// left-to-right order, recursively. A root-to-leaf walk then crosses
// O(log_B m) block boundaries for every block size B simultaneously — the
// cache-oblivious search bound.
//
// The tree is static in *shape* but supports in-place key updates
// (update_key): the CO B-tree stores one node per PMA segment and segment
// leader keys change under rebalances while their relative order is
// preserved, so patching keys in place keeps the BST property intact.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "dam/mem_model.hpp"

namespace costream::layout {

/// One laid-out node: 16 bytes so that a 4 KiB block holds 256 nodes.
template <class K>
struct VebNode {
  K key;                 // search key (the rank-r leader)
  std::uint32_t left;    // position in the layout array, kNull if none
  std::uint32_t right;
};

template <class K, class MM = dam::null_mem_model>
class VebStaticTree {
 public:
  static constexpr std::uint32_t kNull = 0xffffffffu;
  using Node = VebNode<K>;

  VebStaticTree() = default;

  /// Rebuild the tree over `keys` (must be sorted ascending). `base_offset`
  /// is where the node array lives in the owner's logical address space.
  void build(const std::vector<K>& keys, std::uint64_t base_offset = 0) {
    base_offset_ = base_offset;
    nodes_.clear();
    pos_of_rank_.assign(keys.size(), kNull);
    root_ = kNull;
    if (keys.empty()) return;

    // 1. Build the shape: a balanced BST over ranks, in a scratch arena.
    scratch_.clear();
    scratch_.reserve(keys.size());
    const std::int64_t root_scratch = build_shape(0, static_cast<std::int64_t>(keys.size()));

    // 2. Serialize in vEB order.
    nodes_.resize(keys.size());
    next_pos_ = 0;
    int height = 0;
    for (std::size_t n = keys.size(); n > 0; n >>= 1) ++height;
    std::vector<std::int64_t> frontier;
    veb_place(root_scratch, height, frontier);

    // 3. Resolve child pointers and keys.
    for (const Scratch& s : scratch_) {
      Node& node = nodes_[s.pos];
      node.key = keys[static_cast<std::size_t>(s.rank)];
      node.left = s.left >= 0 ? scratch_[static_cast<std::size_t>(s.left)].pos : kNull;
      node.right = s.right >= 0 ? scratch_[static_cast<std::size_t>(s.right)].pos : kNull;
      pos_of_rank_[static_cast<std::size_t>(s.rank)] = s.pos;
    }
    root_ = scratch_[static_cast<std::size_t>(root_scratch)].pos;
    scratch_.clear();
    scratch_.shrink_to_fit();
    fill_rank_of_pos();
  }

  bool empty() const noexcept { return nodes_.empty(); }
  std::size_t size() const noexcept { return nodes_.size(); }
  std::uint64_t bytes() const noexcept { return nodes_.size() * sizeof(Node); }

  /// Rank of the largest key <= `key` (predecessor rank), or -1 if `key` is
  /// smaller than every key. Charges one MM touch per node visited.
  std::int64_t predecessor_rank(const K& key, MM& mm) const {
    std::uint32_t pos = root_;
    std::int64_t best = -1;
    while (pos != kNull) {
      mm.touch(base_offset_ + pos * sizeof(Node), sizeof(Node));
      const Node& n = nodes_[pos];
      if (!(key < n.key)) {  // n.key <= key
        best = rank_at(pos);
        pos = n.right;
      } else {
        pos = n.left;
      }
    }
    return best;
  }

  /// Patch the key of the rank-r node in place. The caller guarantees the
  /// global order of keys is unchanged (PMA rebalances preserve order).
  void update_key(std::size_t rank, const K& key, MM& mm) {
    assert(rank < pos_of_rank_.size());
    const std::uint32_t pos = pos_of_rank_[rank];
    mm.touch_write(base_offset_ + pos * sizeof(Node), sizeof(Node));
    nodes_[pos].key = key;
  }

  const K& key_of_rank(std::size_t rank) const {
    return nodes_[pos_of_rank_[rank]].key;
  }

  /// For layout tests: the vEB position of the rank-r node.
  std::uint32_t position_of_rank(std::size_t rank) const { return pos_of_rank_[rank]; }

 private:
  struct Scratch {
    std::int64_t rank;
    std::int64_t left = -1;   // scratch indices
    std::int64_t right = -1;
    std::uint32_t pos = kNull;  // final vEB position
  };

  /// Balanced BST over ranks [lo, hi); returns scratch index of the root.
  std::int64_t build_shape(std::int64_t lo, std::int64_t hi) {
    if (lo >= hi) return -1;
    const std::int64_t mid = lo + (hi - lo) / 2;
    const std::int64_t me = static_cast<std::int64_t>(scratch_.size());
    scratch_.push_back(Scratch{mid, -1, -1, kNull});
    // Children are appended after, so `me` stays valid (indices, not refs).
    const std::int64_t l = build_shape(lo, mid);
    const std::int64_t r = build_shape(mid + 1, hi);
    scratch_[static_cast<std::size_t>(me)].left = l;
    scratch_[static_cast<std::size_t>(me)].right = r;
    return me;
  }

  /// Emit the height-`h` subtree rooted at scratch index `t` in vEB order;
  /// `frontier` collects the roots hanging below depth h.
  void veb_place(std::int64_t t, int h, std::vector<std::int64_t>& frontier) {
    if (t < 0) return;
    if (h <= 1) {
      scratch_[static_cast<std::size_t>(t)].pos = next_pos_++;
      frontier.push_back(scratch_[static_cast<std::size_t>(t)].left);
      frontier.push_back(scratch_[static_cast<std::size_t>(t)].right);
      return;
    }
    const int top_h = h / 2;
    const int bot_h = h - top_h;
    std::vector<std::int64_t> mid;
    veb_place(t, top_h, mid);
    for (std::int64_t f : mid) veb_place(f, bot_h, frontier);
  }

  std::int64_t rank_at(std::uint32_t pos) const { return rank_of_pos_[pos]; }

 public:
  /// For tests: rank stored at a vEB position.
  std::int64_t rank_of_position(std::uint32_t pos) const { return rank_of_pos_[pos]; }

 private:
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> pos_of_rank_;
  std::vector<std::int64_t> rank_of_pos_;
  std::vector<Scratch> scratch_;
  std::uint32_t root_ = kNull;
  std::uint32_t next_pos_ = 0;
  std::uint64_t base_offset_ = 0;

  void fill_rank_of_pos() {
    rank_of_pos_.assign(nodes_.size(), -1);
    for (std::size_t r = 0; r < pos_of_rank_.size(); ++r) {
      rank_of_pos_[pos_of_rank_[r]] = static_cast<std::int64_t>(r);
    }
  }
};

}  // namespace costream::layout
