// The element type shared by every dictionary in the library.
//
// The paper's experimental setup (Section 4) stores 64-bit keys and 64-bit
// values padded to 32 bytes per element, with some of the padding reused for
// lookahead-pointer bookkeeping. We keep Entry minimal (key + value) and let
// each structure add its own bookkeeping fields, which is equivalent and
// keeps the public API clean.
#pragma once

#include <compare>
#include <cstdint>

namespace costream {

using Key = std::uint64_t;
using Value = std::uint64_t;

/// A key/value pair. Ordered by key only: dictionaries never compare values.
template <class K = Key, class V = Value>
struct Entry {
  K key{};
  V value{};

  friend constexpr bool operator==(const Entry& a, const Entry& b) noexcept {
    return a.key == b.key;
  }
  friend constexpr auto operator<=>(const Entry& a, const Entry& b) noexcept {
    return a.key <=> b.key;
  }
};

/// Compare an entry against a bare key (heterogeneous lookups).
struct EntryKeyLess {
  template <class K, class V>
  constexpr bool operator()(const Entry<K, V>& e, const K& k) const noexcept {
    return e.key < k;
  }
  template <class K, class V>
  constexpr bool operator()(const K& k, const Entry<K, V>& e) const noexcept {
    return k < e.key;
  }
};

}  // namespace costream
