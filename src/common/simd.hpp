// Data-parallel scalar/SSE4.2/AVX2 primitives with runtime CPU dispatch —
// the instruction-level substrate under the cola kernel layer
// (cola/kernels.hpp) and the snapshot read path (common/snapshot.hpp).
//
// Three tiers, selected once per process:
//
//   kScalar  plain C++ loops — always compiled, the correctness reference
//            every vector variant is differentially tested against
//            (tests/kernel_test.cpp). Forced with COSTREAM_SIMD=scalar.
//   kSse42   branchless binary search and 2-wide 64-bit compares (PCMPGTQ
//            is an SSE4.2 instruction, which is why this tier exists at
//            all — SSE2 cannot compare packed 64-bit integers).
//   kAvx2    4-wide 64-bit compares + movemask: vectorized lower-bound
//            tails, bulk-advance prefix scans for the merge kernels, and
//            adjacent-duplicate detection for the dedup kernel.
//
// The AVX2/SSE4.2 bodies are compiled via function target attributes, so
// no build flags change and the binary stays runnable on any x86-64: the
// vector bodies are only ever CALLED when cpuid says the ISA exists.
// active_isa() probes cpuid once and honors the COSTREAM_SIMD environment
// override (scalar | sse42 | avx2 | native), clamped to what the CPU
// actually supports — the CI force-scalar leg runs the whole test suite
// with COSTREAM_SIMD=scalar to keep the fallback from rotting.
//
// Only unsigned 64-bit keys (the library default) take the vector paths;
// any other key type transparently falls back to the scalar reference,
// dispatch included — callers never need to care.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <type_traits>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define COSTREAM_SIMD_X86 1
#include <immintrin.h>
#endif

namespace costream::simd {

enum class Isa : int { kScalar = 0, kSse42 = 1, kAvx2 = 2 };

inline const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kAvx2: return "avx2";
    case Isa::kSse42: return "sse42";
    default: return "scalar";
  }
}

namespace detail {

inline Isa detect_isa() noexcept {
#if COSTREAM_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return Isa::kSse42;
#endif
  return Isa::kScalar;
}

inline Isa resolve_isa() noexcept {
  const Isa hw = detect_isa();
  const char* env = std::getenv("COSTREAM_SIMD");
  if (env == nullptr || std::strcmp(env, "native") == 0) return hw;
  if (std::strcmp(env, "scalar") == 0) return Isa::kScalar;
  // Requested tiers are clamped to the hardware: asking for avx2 on a
  // machine without it must not crash, it just gives what exists.
  if (std::strcmp(env, "sse42") == 0 || std::strcmp(env, "sse4.2") == 0) {
    return hw < Isa::kSse42 ? hw : Isa::kSse42;
  }
  if (std::strcmp(env, "avx2") == 0) return hw;
  return hw;  // unrecognized value: native behavior
}

}  // namespace detail

/// The process-wide dispatch tier: cpuid, clamped by COSTREAM_SIMD.
/// Resolved once (first call) and constant afterwards.
inline Isa active_isa() noexcept {
  static const Isa isa = detail::resolve_isa();
  return isa;
}

// -- scalar reference kernels (always compiled, any key type) -----------------

/// First index i in [0, n) with !(keys[i] < key) — the textbook branching
/// binary search, kept deliberately plain: this is the reference the
/// vector variants are differentially tested against.
template <class K>
inline std::size_t lower_bound_ref(const K* keys, std::size_t n, const K& key) noexcept {
  std::size_t lo = 0, hi = n;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (keys[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Count of LEADING elements strictly less than `bound` (stops at the
/// first element >= bound). Scalar reference for the merge kernels'
/// bulk-advance scans.
template <class K>
inline std::size_t prefix_less_ref(const K* keys, std::size_t n, const K& bound) noexcept {
  std::size_t i = 0;
  while (i < n && keys[i] < bound) ++i;
  return i;
}

/// Count of LEADING elements with no adjacent duplicate: the largest m
/// such that keys[i] != keys[i+1] for all i < m (so m <= n - 1 when a
/// duplicate pair exists, n otherwise — the last element never has a
/// successor to collide with). Scalar reference for the dedup kernel.
template <class K>
inline std::size_t prefix_distinct_ref(const K* keys, std::size_t n) noexcept {
  if (n == 0) return 0;
  std::size_t i = 0;
  while (i + 1 < n && !(keys[i] == keys[i + 1])) ++i;
  return i + 1 < n ? i : n;
}

/// Cap on the batch width of multi_lower_bound_keys: callers probe at most
/// one tiered level's segments at a time (<= growth - 1), so 32 state
/// slots cover every supported configuration without heap scratch.
inline constexpr std::size_t kMultiProbeMax = 32;

/// `out[i] = lower_bound(bases[i][0..ns[i]), key)` for m independent sorted
/// runs — the scalar reference runs them one after another.
template <class K>
inline void multi_lower_bound_ref(const K* const* bases, const std::size_t* ns,
                                  std::size_t m, const K& key,
                                  std::size_t* out) noexcept {
  for (std::size_t i = 0; i < m; ++i) out[i] = lower_bound_ref(bases[i], ns[i], key);
}

#if COSTREAM_SIMD_X86

// -- vector kernels (u64 keys) ------------------------------------------------
//
// 64-bit unsigned compares: x86 has only SIGNED packed-64 compares, so both
// operands are sign-flipped (xor with 2^63) first — the standard trick.

namespace detail {

inline constexpr std::uint64_t kSignFlip = 0x8000000000000000ull;

__attribute__((target("avx2"))) inline std::size_t
prefix_less_avx2(const std::uint64_t* keys, std::size_t n, std::uint64_t bound) noexcept {
  const __m256i flip = _mm256_set1_epi64x(static_cast<long long>(kSignFlip));
  const __m256i vb =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<long long>(bound)), flip);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vk = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i)), flip);
    // ge mask: keys[i] >= bound  <=>  NOT (keys[i] < bound)
    const __m256i lt = _mm256_cmpgt_epi64(vb, vk);
    const unsigned mask = static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(lt)));
    if (mask != 0xfu) {
      // First zero bit = first element not less than bound.
      return i + static_cast<std::size_t>(__builtin_ctz(~mask & 0xfu));
    }
  }
  for (; i < n && keys[i] < bound; ++i) {
  }
  return i;
}

__attribute__((target("sse4.2"))) inline std::size_t
prefix_less_sse42(const std::uint64_t* keys, std::size_t n, std::uint64_t bound) noexcept {
  const __m128i flip = _mm_set1_epi64x(static_cast<long long>(kSignFlip));
  const __m128i vb =
      _mm_xor_si128(_mm_set1_epi64x(static_cast<long long>(bound)), flip);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i vk = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i)), flip);
    const __m128i lt = _mm_cmpgt_epi64(vb, vk);
    const unsigned mask = static_cast<unsigned>(_mm_movemask_pd(_mm_castsi128_pd(lt)));
    if (mask != 0x3u) {
      return i + static_cast<std::size_t>(__builtin_ctz(~mask & 0x3u));
    }
  }
  if (i < n && keys[i] < bound) ++i;
  return i;
}

/// Branchless binary search narrowed to a vector linear scan: halving with
/// conditional-move steps (no mispredicts on random probes) keeps the
/// invariant "answer lies in [base, base+len]" until the window fits one
/// scan chunk, then the prefix scan above finishes inside it. Each step
/// prefetches BOTH candidate midpoints of the next level before this
/// level's compare resolves — a cold probe is a serial chain of dependent
/// cache misses (one per halving), and overlapping level d+1's miss with
/// level d's load roughly halves the chain on out-of-cache segments.
__attribute__((target("avx2"))) inline std::size_t
lower_bound_avx2(const std::uint64_t* keys, std::size_t n, std::uint64_t key) noexcept {
  const std::uint64_t* base = keys;
  std::size_t len = n;
  while (len > 32) {
    const std::size_t half = len / 2;
    __builtin_prefetch(base + half / 2 - 1);
    __builtin_prefetch(base + half + (len - half) / 2 - 1);
    base += base[half - 1] < key ? half : 0;  // cmov, no mispredict
    len -= half;
  }
  return static_cast<std::size_t>(base - keys) +
         prefix_less_avx2(base, len, key);
}

__attribute__((target("sse4.2"))) inline std::size_t
lower_bound_sse42(const std::uint64_t* keys, std::size_t n, std::uint64_t key) noexcept {
  const std::uint64_t* base = keys;
  std::size_t len = n;
  while (len > 8) {
    const std::size_t half = len / 2;
    __builtin_prefetch(base + half / 2 - 1);
    __builtin_prefetch(base + half + (len - half) / 2 - 1);
    base += base[half - 1] < key ? half : 0;
    len -= half;
  }
  return static_cast<std::size_t>(base - keys) +
         prefix_less_sse42(base, len, key);
}

/// Interleaved multi-run lower bound: one halving ROUND advances every
/// still-wide search by one step, so the m dependent cache-miss chains a
/// serial loop would walk one after another run concurrently — the round
/// prefetches every search's midpoint first, then resolves the compares.
/// A point lookup that must probe every segment of a tiered level is
/// latency-bound on exactly those chains; overlapping them is worth far
/// more than any in-cache vector width. Tails finish with the vector
/// prefix scans.
__attribute__((target("avx2"))) inline void
multi_lower_bound_avx2(const std::uint64_t* const* bases, const std::size_t* ns,
                       std::size_t m, std::uint64_t key,
                       std::size_t* out) noexcept {
  const std::uint64_t* cur[kMultiProbeMax];
  std::size_t len[kMultiProbeMax];
  bool again = false;
  for (std::size_t i = 0; i < m; ++i) {
    cur[i] = bases[i];
    len[i] = ns[i];
    again |= len[i] > 32;
  }
  while (again) {
    for (std::size_t i = 0; i < m; ++i) {
      if (len[i] > 32) __builtin_prefetch(cur[i] + len[i] / 2 - 1);
    }
    again = false;
    for (std::size_t i = 0; i < m; ++i) {
      if (len[i] <= 32) continue;
      const std::size_t half = len[i] / 2;
      cur[i] += cur[i][half - 1] < key ? half : 0;  // cmov, no mispredict
      len[i] -= half;
      again |= len[i] > 32;
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    out[i] = static_cast<std::size_t>(cur[i] - bases[i]) +
             prefix_less_avx2(cur[i], len[i], key);
  }
}

__attribute__((target("sse4.2"))) inline void
multi_lower_bound_sse42(const std::uint64_t* const* bases, const std::size_t* ns,
                        std::size_t m, std::uint64_t key,
                        std::size_t* out) noexcept {
  const std::uint64_t* cur[kMultiProbeMax];
  std::size_t len[kMultiProbeMax];
  bool again = false;
  for (std::size_t i = 0; i < m; ++i) {
    cur[i] = bases[i];
    len[i] = ns[i];
    again |= len[i] > 8;
  }
  while (again) {
    for (std::size_t i = 0; i < m; ++i) {
      if (len[i] > 8) __builtin_prefetch(cur[i] + len[i] / 2 - 1);
    }
    again = false;
    for (std::size_t i = 0; i < m; ++i) {
      if (len[i] <= 8) continue;
      const std::size_t half = len[i] / 2;
      cur[i] += cur[i][half - 1] < key ? half : 0;
      len[i] -= half;
      again |= len[i] > 8;
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    out[i] = static_cast<std::size_t>(cur[i] - bases[i]) +
             prefix_less_sse42(cur[i], len[i], key);
  }
}

/// AVX2 adjacent-duplicate scan: compares keys[i..i+3] against
/// keys[i+1..i+4] four pairs at a time.
__attribute__((target("avx2"))) inline std::size_t
prefix_distinct_avx2(const std::uint64_t* keys, std::size_t n) noexcept {
  if (n == 0) return 0;
  std::size_t i = 0;
  while (i + 5 <= n) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i + 1));
    const __m256i eq = _mm256_cmpeq_epi64(a, b);
    const unsigned mask = static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(eq)));
    if (mask != 0) return i + static_cast<std::size_t>(__builtin_ctz(mask));
    i += 4;
  }
  while (i + 1 < n && keys[i] != keys[i + 1]) ++i;
  return i + 1 < n ? i : n;
}

}  // namespace detail

#endif  // COSTREAM_SIMD_X86

// -- dispatch front ends ------------------------------------------------------
//
// u64 keys route to the tier `isa` selects; every other key type takes the
// scalar reference regardless. All variants return bit-identical results —
// that equivalence is what tests/kernel_test.cpp pins down.

template <class K>
inline std::size_t lower_bound_keys(const K* keys, std::size_t n, const K& key,
                                    Isa isa) noexcept {
#if COSTREAM_SIMD_X86
  if constexpr (sizeof(K) == 8 && std::is_integral_v<K> && std::is_unsigned_v<K>) {
    if (isa == Isa::kAvx2) {
      return detail::lower_bound_avx2(reinterpret_cast<const std::uint64_t*>(keys), n,
                                      static_cast<std::uint64_t>(key));
    }
    if (isa == Isa::kSse42) {
      return detail::lower_bound_sse42(reinterpret_cast<const std::uint64_t*>(keys), n,
                                       static_cast<std::uint64_t>(key));
    }
  }
#endif
  (void)isa;
  return lower_bound_ref(keys, n, key);
}

/// Lower bound of the SAME key in m independent sorted runs (m <=
/// kMultiProbeMax). Tier selection as above; every tier fills out[] with
/// bit-identical positions — only the order the memory system sees the
/// probes in changes.
template <class K>
inline void multi_lower_bound_keys(const K* const* bases, const std::size_t* ns,
                                   std::size_t m, const K& key, std::size_t* out,
                                   Isa isa) noexcept {
#if COSTREAM_SIMD_X86
  if constexpr (sizeof(K) == 8 && std::is_integral_v<K> && std::is_unsigned_v<K>) {
    if (isa == Isa::kAvx2) {
      detail::multi_lower_bound_avx2(
          reinterpret_cast<const std::uint64_t* const*>(bases), ns, m,
          static_cast<std::uint64_t>(key), out);
      return;
    }
    if (isa == Isa::kSse42) {
      detail::multi_lower_bound_sse42(
          reinterpret_cast<const std::uint64_t* const*>(bases), ns, m,
          static_cast<std::uint64_t>(key), out);
      return;
    }
  }
#endif
  (void)isa;
  multi_lower_bound_ref(bases, ns, m, key, out);
}

template <class K>
inline std::size_t prefix_less_keys(const K* keys, std::size_t n, const K& bound,
                                    Isa isa) noexcept {
#if COSTREAM_SIMD_X86
  if constexpr (sizeof(K) == 8 && std::is_integral_v<K> && std::is_unsigned_v<K>) {
    if (isa == Isa::kAvx2) {
      return detail::prefix_less_avx2(reinterpret_cast<const std::uint64_t*>(keys), n,
                                      static_cast<std::uint64_t>(bound));
    }
    if (isa == Isa::kSse42) {
      return detail::prefix_less_sse42(reinterpret_cast<const std::uint64_t*>(keys), n,
                                       static_cast<std::uint64_t>(bound));
    }
  }
#endif
  (void)isa;
  return prefix_less_ref(keys, n, bound);
}

template <class K>
inline std::size_t prefix_distinct_keys(const K* keys, std::size_t n,
                                        Isa isa) noexcept {
#if COSTREAM_SIMD_X86
  if constexpr (sizeof(K) == 8 && std::is_integral_v<K> && std::is_unsigned_v<K>) {
    if (isa == Isa::kAvx2) {
      return detail::prefix_distinct_avx2(
          reinterpret_cast<const std::uint64_t*>(keys), n);
    }
  }
#endif
  (void)isa;
  return prefix_distinct_ref(keys, n);
}

}  // namespace costream::simd
