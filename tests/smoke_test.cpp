// Instantiates every structure in the library against both memory models and
// runs a tiny end-to-end trace — the canary that catches template breakage.
#include <gtest/gtest.h>

#include "api/dictionary.hpp"
#include "brt/brt.hpp"
#include "btree/btree.hpp"
#include "cob/cob_tree.hpp"
#include "cola/cola.hpp"
#include "cola/deamortized_cola.hpp"
#include "cola/lookahead_array.hpp"
#include "dam/dam_mem_model.hpp"
#include "layout/fibonacci.hpp"
#include "layout/veb_static.hpp"
#include "pma/pma.hpp"
#include "shuttle/shuttle_tree.hpp"
#include "shuttle/swbst.hpp"

namespace costream {
namespace {

template <class D>
void exercise(D& d) {
  for (std::uint64_t i = 0; i < 200; ++i) d.insert(i * 7 % 211, i);
  for (std::uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(d.find(i * 7 % 211).has_value()) << i;
  }
  EXPECT_FALSE(d.find(10'000).has_value());
}

TEST(Smoke, ColaNullModel) {
  cola::Gcola<> d;
  exercise(d);
  d.check_invariants();
}

TEST(Smoke, ColaDamModel) {
  cola::Gcola<Key, Value, dam::dam_mem_model> d(cola::ColaConfig{},
                                                dam::dam_mem_model(4096, 1 << 20));
  exercise(d);
  d.check_invariants();
  EXPECT_GT(d.mm().stats().accesses, 0u);
}

TEST(Smoke, BasicCola) {
  auto d = cola::make_basic_cola<>();
  exercise(d);
  d.check_invariants();
}

TEST(Smoke, LookaheadArray) {
  auto d = cola::make_lookahead_array<>(4096, 0.5);
  exercise(d);
  d.check_invariants();
}

TEST(Smoke, DeamortizedCola) {
  cola::DeamortizedCola<> d;
  exercise(d);
  d.check_invariants();
}

TEST(Smoke, BTree) {
  btree::BTree<> d;
  exercise(d);
  d.check_invariants();
}

TEST(Smoke, Brt) {
  brt::Brt<> d;
  exercise(d);
  d.check_invariants();
}

TEST(Smoke, CobTree) {
  cob::CobTree<> d;
  exercise(d);
  d.check_invariants();
}

TEST(Smoke, ShuttleTree) {
  shuttle::ShuttleTree<> d;
  exercise(d);
  d.check_invariants();
}

TEST(Smoke, Swbst) {
  shuttle::Swbst<> d;
  exercise(d);
  d.check_invariants();
}

TEST(Smoke, Pma) {
  pma::Pma<Entry<>> p;
  auto slot = p.insert_after(pma::Pma<Entry<>>::npos, Entry<>{5, 50});
  slot = p.insert_after(slot, Entry<>{7, 70});
  p.insert_after(slot, Entry<>{9, 90});
  p.check_invariants();
  EXPECT_EQ(p.size(), 3u);
}

TEST(Smoke, VebStatic) {
  layout::VebStaticTree<Key> t;
  dam::null_mem_model mm;
  std::vector<Key> keys{1, 3, 5, 7, 9};
  t.build(keys);
  EXPECT_EQ(t.predecessor_rank(6, mm), 2);
  EXPECT_EQ(t.predecessor_rank(0, mm), -1);
}

TEST(Smoke, AnyDictionary) {
  std::vector<api::AnyDictionary> dicts;
  dicts.emplace_back("cola", cola::Gcola<>{});
  dicts.emplace_back("btree", btree::BTree<>{});
  for (auto& d : dicts) {
    d.insert(1, 10);
    EXPECT_EQ(d.find(1).value(), 10u) << d.name();
  }
}

}  // namespace
}  // namespace costream
