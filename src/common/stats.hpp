// Small statistics helpers used by the benchmark harness: running summaries
// (mean/min/max), exact percentiles over recorded samples, and rate
// formatting that matches the paper's "average inserts / second" plots.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace costream {

/// Streaming summary without storing samples (Welford mean/variance).
class RunningStats {
 public:
  void add(double x) noexcept;
  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  // sample variance, 0 if n < 2
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Records every sample; supports exact percentiles. Used for the
/// deamortization experiments, where tail latency is the entire point.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(std::size_t reserve = 0) { samples_.reserve(reserve); }

  void add(double x) { samples_.push_back(x); }
  std::size_t count() const noexcept { return samples_.size(); }
  double percentile(double p) const;  // p in [0,100]
  double max() const;
  double mean() const;
  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// "1.23M", "456k", "7.8" — compact rates for table columns.
std::string format_rate(double per_second);

/// "12.3 GiB", "4.0 KiB" — compact byte counts.
std::string format_bytes(double bytes);

}  // namespace costream
