// Sharded concurrent ingest: S single-writer dictionaries behind one
// Dictionary facade.
//
// The paper's amortized O((log N)/B) update bound is per-structure; this
// layer adds the orthogonal axis — parallelism across cores — without
// touching any structure's internals. The keyspace is RANGE-PARTITIONED by
// S-1 splitter keys (fixed-width key-prefix defaults, or quantiles learned
// from the first batch — see "Splitters" below); each shard is an
// independent dictionary (any of the seven structures, or a type-erased
// AnyDictionary) owned by exactly one worker thread. The facade's caller
// scatters normalized batches into per-shard runs and hands each run to its
// shard's worker over a bounded SPSC ring (shard/spsc_queue.hpp); the worker
// is the ONLY thread that ever mutates its shard, so no structure needs a
// single lock — the paper's single-writer amortized analysis holds verbatim
// per shard at N/S scale (dam/bounds.hpp::sharded_insert_transfer_bound).
//
// Semantics (identical to the unsharded Dictionary contract):
//   * A key lives in exactly one shard, so per-key operation order is the
//     facade's submission order: runs enter a shard's ring FIFO and the
//     single worker applies them FIFO. Newest-wins and put-vs-erase
//     shadowing inside a batch are resolved by the facade's normalization
//     pass before the scatter, exactly like every structure's own batch
//     path.
//   * Reads are DRAIN-BARRIER consistent: find() waits for its one target
//     shard's queue to empty (other shards keep ingesting); cursors, range
//     scans, and invariant checks wait for all shards. After the barrier
//     the caller reads the shard structures directly — the completed-jobs
//     counter carries the release/acquire edge, so no reader ever observes
//     a half-applied run.
//   * The facade itself is single-caller (one external thread drives it,
//     like every other structure here); the concurrency is INTERNAL. The
//     worker threads are the paper's "stream" of deferred work made
//     physical.
//
// Cursors: a sharded cursor fuses the S per-shard cursors through the
// generalized k-source loser-tree fusion (common/cursor_fusion.hpp) —
// shards are key-disjoint, so the fusion is a pure ordered merge and every
// per-shard acceleration (segment fence keys, staged views) applies
// unchanged. Every mutation of the facade bumps an epoch counter; a sharded
// cursor records the epoch at seek time and Cursor::valid() RETURNS FALSE
// once the epochs disagree — the library-wide "mutation invalidates
// cursors" contract (api/dictionary.hpp), enforced here rather than merely
// documented, because a stale sharded cursor would otherwise race the
// worker threads rather than just read stale bytes.
//
// Splitters: partition boundaries are fixed for the life of the structure
// (a key must map to the same shard forever). Three sources, first match
// wins:
//   1. explicit `ShardedConfig::splitters` (S-1 ascending keys);
//   2. learned from the FIRST mutation when it is a batch of at least
//      `learn_sample_min` operations: the normalized (sorted, deduplicated)
//      run's S-quantiles — one pass, no extra sort;
//   3. fixed-width key-prefix defaults: the unsigned key space divided into
//      S equal ranges (the top log2(S) bits of the key select the shard).
#pragma once

#include <algorithm>
#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>
#include <optional>
#include <semaphore>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/cursor_fusion.hpp"
#include "common/entry.hpp"
#include "shard/spsc_queue.hpp"

namespace costream::shard {

template <class K = Key>
struct ShardedConfig {
  std::size_t shards = 2;          // S >= 1; 1 = a single-worker baseline
  std::size_t queue_slots = 8;     // per-shard in-flight runs (ring capacity)
  std::size_t learn_sample_min = 64;  // min first-batch size to learn splitters
  std::vector<K> splitters;        // explicit boundaries (size shards - 1);
                                   // empty = learn from sample / defaults
};

struct ShardedStats {
  std::uint64_t jobs = 0;      // runs handed to workers
  std::uint64_t batches = 0;   // facade-level batch calls
  std::uint64_t singles = 0;   // facade-level single-op calls
  std::uint64_t drains = 0;    // read barriers (whole-facade or one-shard)
  std::uint64_t learned_splitters = 0;  // 1 if quantile learning fired
};

template <class Inner, class K = Key, class V = Value>
class ShardedDictionary {
 public:
  using InnerCursor = decltype(std::declval<const Inner&>().make_cursor());

  template <class Factory>
    requires std::invocable<Factory&, std::size_t>
  ShardedDictionary(ShardedConfig<K> cfg, Factory&& make_inner) : cfg_(std::move(cfg)) {
    if (cfg_.shards == 0) {
      throw std::invalid_argument("sharded: shard count must be >= 1");
    }
    if (!cfg_.splitters.empty()) {
      if (cfg_.splitters.size() != cfg_.shards - 1) {
        throw std::invalid_argument("sharded: need exactly shards-1 splitters");
      }
      for (std::size_t i = 1; i < cfg_.splitters.size(); ++i) {
        if (!(cfg_.splitters[i - 1] < cfg_.splitters[i])) {
          throw std::invalid_argument("sharded: splitters must be ascending");
        }
      }
      splitters_ = cfg_.splitters;
      frozen_ = true;
    } else if constexpr (!std::unsigned_integral<K>) {
      if (cfg_.shards > 1) {
        throw std::invalid_argument(
            "sharded: non-integral keys need explicit splitters");
      }
    }
    shards_.reserve(cfg_.shards);
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      shards_.push_back(
          std::make_unique<Shard>(make_inner(s), cfg_.queue_slots));
    }
  }

  explicit ShardedDictionary(ShardedConfig<K> cfg = ShardedConfig<K>{})
    requires std::default_initializable<Inner>
      : ShardedDictionary(std::move(cfg), [](std::size_t) { return Inner{}; }) {}

  ShardedDictionary(ShardedDictionary&&) noexcept = default;
  ShardedDictionary& operator=(ShardedDictionary&&) noexcept = default;

  // -- observers --------------------------------------------------------------

  std::size_t shard_count() const noexcept { return shards_.size(); }
  const std::vector<K>& splitters() const noexcept { return splitters_; }
  const ShardedStats& stats() const noexcept { return stats_; }
  std::uint64_t epoch() const noexcept { return epoch_; }

  /// Direct access to one shard's structure, behind that shard's drain
  /// barrier (tests and benches read per-shard stats/DAM models this way).
  const Inner& shard(std::size_t s) const {
    drain_shard(*shards_[s]);
    return shards_[s]->dict;
  }

  /// Mutable access to one shard's structure, behind its drain barrier.
  /// For tests/benches resetting DAM models or stats ONLY — mutating shard
  /// CONTENTS from the caller thread would break the single-writer
  /// invariant the facade is built on.
  Inner& shard_mut(std::size_t s) {
    drain_shard(*shards_[s]);
    return shards_[s]->dict;
  }

  /// Block until every queued run has been applied (reads do this lazily;
  /// benches call it to put the full ingest cost inside the timed region).
  void drain() const { drain_all(); }

  // -- mutators (Dictionary contract, api/dictionary.hpp) ---------------------

  void insert(const K& k, const V& v) { single(Op<K, V>::put(k, v)); }
  void erase(const K& k) { single(Op<K, V>::del(k)); }

  void insert_batch(const Entry<K, V>* data, std::size_t n) {
    if (n == 0) return;
    norm_.clear();
    norm_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      norm_.push_back(Op<K, V>::put(data[i].key, data[i].value));
    }
    apply_normalized();
  }

  void erase_batch(const K* keys, std::size_t n) {
    if (n == 0) return;
    norm_.clear();
    norm_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) norm_.push_back(Op<K, V>::del(keys[i]));
    apply_normalized();
  }

  void apply_batch(const Op<K, V>* ops, std::size_t n) {
    if (n == 0) return;
    norm_.assign(ops, ops + n);
    apply_normalized();
  }

  /// Flush every shard's deferred state (staging arenas etc.) and drain, so
  /// the caller observes the full cost of everything ingested so far.
  void flush_stage() {
    throw_if_failed();
    for (auto& sh : shards_) {
      Job* job = sh->ring.begin_push();
      job->kind = Job::Kind::kFlush;
      sh->ring.commit_push();
      ++sh->submitted;
      ++stats_.jobs;
      sh->items.release();
    }
    ++epoch_;
    drain_all();
  }

  // -- readers ----------------------------------------------------------------

  std::optional<V> find(const K& k) const {
    const Shard& sh = *shards_[shard_of(k)];
    drain_shard(sh);
    return sh.dict.find(k);
  }

  /// Resumable ordered cursor over the union of all shards (Dictionary
  /// cursor contract): the S per-shard cursors fuse through the shared
  /// loser tree; seek takes the all-shards drain barrier and snapshots the
  /// mutation epoch; valid() enforces invalidation by epoch.
  class Cursor {
   public:
    Cursor() = default;

    void seek(const K& lo) { reseek(&lo, nullptr); }
    void seek(const K& lo, const K& hi) { reseek(&lo, &hi); }
    void seek_first() { reseek(nullptr, nullptr); }

    void next() {
      if (!valid()) return;
      fused_.next();
    }

    /// False as soon as the facade has mutated past the seek's epoch —
    /// the drain-barrier invalidation contract, enforced.
    bool valid() const {
      return d_ != nullptr && epoch_ == d_->epoch_ && fused_.valid();
    }
    const Entry<K, V>& entry() const { return fused_.entry(); }

   private:
    friend class ShardedDictionary;
    explicit Cursor(const ShardedDictionary* d) : d_(d) {
      fused_.sources().reserve(d->shards_.size());
      for (const auto& sh : d->shards_) {
        fused_.sources().push_back(sh->dict.make_cursor());
      }
    }

    void reseek(const K* lo, const K* hi) {
      if (d_ == nullptr) return;
      d_->drain_all();
      epoch_ = d_->epoch_;
      if (lo == nullptr) {
        fused_.seek_first();
      } else if (hi == nullptr) {
        fused_.seek(*lo);
      } else {
        fused_.seek(*lo, *hi);
      }
    }

    const ShardedDictionary* d_ = nullptr;
    std::uint64_t epoch_ = ~0ULL;
    FusedCursorSet<InnerCursor, K, V> fused_;
  };

  Cursor make_cursor() const {
    drain_all();
    return Cursor(this);
  }

  template <class Fn>
  void range_for_each(const K& lo, const K& hi, Fn&& fn) const {
    ensure_scan();
    scan_.seek(lo, hi);
    while (scan_.valid()) {
      fn(scan_.entry().key, scan_.entry().value);
      scan_.next();
    }
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    ensure_scan();
    scan_.seek_first();
    while (scan_.valid()) {
      fn(scan_.entry().key, scan_.entry().value);
      scan_.next();
    }
  }

  /// Per-shard inner invariants plus the routing invariant: every key a
  /// shard holds lies inside that shard's splitter range.
  void check_invariants() const {
    drain_all();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const Inner& d = shards_[s]->dict;
      if constexpr (requires { d.check_invariants(); }) d.check_invariants();
      auto c = d.make_cursor();
      c.seek_first();
      while (c.valid()) {
        const K& k = c.entry().key;
        if (s > 0 && k < splitters_[s - 1]) {
          throw std::logic_error("sharded: key below its shard's range");
        }
        if (s + 1 < shards_.size() && !(k < splitters_[s])) {
          throw std::logic_error("sharded: key past its shard's range");
        }
        c.next();
      }
    }
  }

 private:
  /// One run of operations handed to a shard worker. The vector's capacity
  /// circulates through the ring (the worker clears, the producer refills
  /// in place), so steady-state dispatch allocates nothing.
  struct Job {
    enum class Kind : std::uint8_t { kApply, kFlush };
    Kind kind = Kind::kApply;
    std::vector<Op<K, V>> ops;
  };

  /// A shard: the structure, its inbox, and the worker thread that is the
  /// structure's only writer. Heap-allocated (stable address) so the facade
  /// stays movable while workers hold `this` pointers into their shard.
  struct Shard {
    Shard(Inner d, std::size_t ring_slots)
        : dict(std::move(d)), ring(ring_slots) {
      worker = std::thread([this] { run(); });
    }

    ~Shard() {
      stop.store(true, std::memory_order_release);
      items.release();
      if (worker.joinable()) worker.join();
    }

    void run() {
      for (;;) {
        items.acquire();
        Job* job = ring.peek();
        if (job == nullptr) {
          if (stop.load(std::memory_order_acquire)) return;
          continue;
        }
        // A throwing inner structure must not kill the worker (that would
        // std::terminate) and must not wedge the drain barrier: the job is
        // popped and counted NO MATTER WHAT, the first exception is kept,
        // and once failed the worker drains its queue without applying —
        // the facade rethrows on its next call (throw_if_failed).
        if (!failed.load(std::memory_order_relaxed)) {
          try {
            if (job->kind == Job::Kind::kApply) {
              dict.apply_batch(job->ops.data(), job->ops.size());
            } else {
              if constexpr (requires(Inner& d) { d.flush_stage(); }) {
                dict.flush_stage();
              }
            }
          } catch (...) {
            error = std::current_exception();
            failed.store(true, std::memory_order_release);
          }
        }
        job->ops.clear();  // keep capacity: it circulates back to the producer
        ring.pop();
        completed.fetch_add(1, std::memory_order_release);
      }
    }

    Inner dict;
    SpscRing<Job> ring;
    std::counting_semaphore<(1 << 30)> items{0};
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> completed{0};
    std::uint64_t submitted = 0;  // facade-thread-only
    // First exception the worker caught; `failed` publishes it (the store
    // is release, the facade's load acquire, so the exception_ptr write
    // happens-before any rethrow).
    std::exception_ptr error;
    std::atomic<bool> failed{false};
    std::thread worker;
  };

  /// Surface a worker's stored exception on the calling thread. Checked at
  /// the top of every facade operation: a shard whose inner structure threw
  /// has silently dropped jobs since, so no result after that point can be
  /// trusted. The failed state is sticky — every later call rethrows too.
  void throw_if_failed() const {
    for (const auto& sh : shards_) {
      if (sh->failed.load(std::memory_order_acquire)) {
        std::rethrow_exception(sh->error);
      }
    }
  }

  std::size_t shard_of(const K& k) const {
    return static_cast<std::size_t>(
        std::upper_bound(splitters_.begin(), splitters_.end(), k) -
        splitters_.begin());
  }

  void single(const Op<K, V>& o) {
    throw_if_failed();
    if (!frozen_) {
      frozen_ = true;
      if (splitters_.empty()) default_splitters();
    }
    Shard& sh = *shards_[shard_of(o.key)];
    Job* job = sh.ring.begin_push();
    job->kind = Job::Kind::kApply;
    job->ops.push_back(o);
    sh.ring.commit_push();
    ++sh.submitted;
    ++stats_.jobs;
    ++stats_.singles;
    sh.items.release();
    ++epoch_;
  }

  /// Normalize norm_ once (sort + newest-wins dedup, the shared batch
  /// discipline), learn splitters if this is the first mutation, then cut
  /// the sorted run into per-shard contiguous subranges — no per-element
  /// scatter copies, just S-1 binary searches over the run.
  void apply_normalized() {
    throw_if_failed();
    sort_dedup_newest_wins(norm_, norm_scratch_);
    if (!frozen_) freeze_from(norm_);
    const Op<K, V>* at = norm_.data();
    const Op<K, V>* end = at + norm_.size();
    for (std::size_t s = 0; s < shards_.size() && at != end; ++s) {
      const Op<K, V>* hi =
          s + 1 < shards_.size()
              ? std::lower_bound(at, end, splitters_[s],
                                 [](const Op<K, V>& o, const K& k) {
                                   return o.key < k;
                                 })
              : end;
      if (hi != at) {
        Shard& sh = *shards_[s];
        Job* job = sh.ring.begin_push();
        job->kind = Job::Kind::kApply;
        job->ops.assign(at, hi);
        sh.ring.commit_push();
        ++sh.submitted;
        ++stats_.jobs;
        sh.items.release();
      }
      at = hi;
    }
    ++stats_.batches;
    ++epoch_;
  }

  void freeze_from(const std::vector<Op<K, V>>& run) {
    frozen_ = true;
    const std::size_t S = shards_.size();
    if (S == 1) return;
    if (run.size() >= std::max<std::size_t>(cfg_.learn_sample_min, S)) {
      // Quantiles of the normalized run: keys are sorted and unique, so the
      // S-1 cut points are strictly increasing by construction.
      splitters_.reserve(S - 1);
      for (std::size_t i = 0; i + 1 < S; ++i) {
        splitters_.push_back(run[(i + 1) * run.size() / S].key);
      }
      ++stats_.learned_splitters;
    } else {
      default_splitters();
    }
  }

  void default_splitters() {
    const std::size_t S = shards_.size();
    if (S == 1) return;
    if constexpr (std::unsigned_integral<K>) {
      const K step =
          static_cast<K>(std::numeric_limits<K>::max() / S + K{1});
      splitters_.reserve(S - 1);
      for (std::size_t i = 1; i < S; ++i) {
        splitters_.push_back(static_cast<K>(step * i));
      }
    }
    // Non-integral keys without explicit splitters are rejected at
    // construction, so this branch is never reached with S > 1.
  }

  void drain_shard(const Shard& sh) const {
    throw_if_failed();
    if (sh.completed.load(std::memory_order_acquire) == sh.submitted) return;
    ++stats_.drains;
    while (sh.completed.load(std::memory_order_acquire) != sh.submitted) {
      std::this_thread::yield();
    }
  }

  void drain_all() const {
    for (const auto& sh : shards_) drain_shard(*sh);
  }

  void ensure_scan() const {
    if (scan_.d_ == this &&
        scan_.fused_.sources().size() == shards_.size()) {
      return;
    }
    scan_ = Cursor(this);
  }

  ShardedConfig<K> cfg_;
  std::vector<K> splitters_;
  bool frozen_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t epoch_ = 0;
  std::vector<Op<K, V>> norm_, norm_scratch_;  // batch normalization scratch
  mutable Cursor scan_;  // dictionary-owned scan cursor (allocation-free reuse)
  mutable ShardedStats stats_;
};

}  // namespace costream::shard
