// Background compaction engine (cola/compactor.hpp + the Gcola's pending
// fold slot): deep tiered folds defer to the shared process pool, install
// BELOW post-snapshot arrivals at a later mutation, and retire their input
// segments by dropping refs — readers, cursors, and held snapshots are
// never blocked and never observe the difference. These tests pin the
// engine's contracts directly:
//
//   * differential equivalence against the inline (sync) fold path,
//   * deterministic writer-assist when the pool cannot take the job,
//   * snapshot storms across in-flight folds + the segment leak oracle,
//   * forced tombstone folds as scheduled compactions,
//   * CompactionStats counters and the preset/naming threading,
//   * DAM bit-identity: counting models always fold inline, so modeled
//     transfers are exactly equal with the engine on or off,
//   * the COSTREAM_COMPACTION=sync escape hatch (each CI leg asserts the
//     branch that matches its environment).
//
// NOTE on ordering: the process pool is grow-only, so the writer-assist
// test (which wants exactly ONE pool worker it can block) must run before
// any test that constructs a compaction_threads=2 structure. gtest runs
// tests in declaration order within a file; keep that ordering intact.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <future>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "api/dictionary.hpp"
#include "api/presets.hpp"
#include "cola/cola.hpp"
#include "cola/compactor.hpp"
#include "common/rng.hpp"
#include "common/snapshot.hpp"
#include "dam/dam_mem_model.hpp"
#include "shard/sharded_dictionary.hpp"

namespace costream {
namespace {

using Model = std::map<Key, Value>;

bool sync_env_forced() {
  const char* e = std::getenv("COSTREAM_COMPACTION");
  return e != nullptr && std::string(e) == "sync";
}

/// Mixed mutation feed mirrored into a model: 3 upserts to 1 blind erase
/// over a bounded universe, in batches that keep the cascade busy.
template <class D>
void churn(D& d, Model& model, std::uint64_t& seed, std::size_t batches,
           std::size_t batch_len = 48, Key universe = 4'000) {
  std::vector<Op<>> ops;
  for (std::size_t b = 0; b < batches; ++b) {
    ops.clear();
    for (std::size_t i = 0; i < batch_len; ++i) {
      const std::uint64_t r = splitmix64(seed);
      const Key k = r % universe;
      if ((r >> 32) % 4 == 3) {
        ops.push_back(Op<>::del(k));
        model.erase(k);
      } else {
        ops.push_back(Op<>::put(k, r));
        model[k] = r;
      }
    }
    d.apply_batch(Span<Op<>>(ops.data(), ops.size()));
  }
}

/// Assert the dictionary reads EXACTLY the model (ordered sweep + a point
/// probe of every model key and a sample of absent keys).
template <class D>
void expect_matches(D& d, const Model& model, const char* what) {
  std::vector<std::pair<Key, Value>> got;
  d.range_for_each(Key{0}, std::numeric_limits<Key>::max(),
                   [&](const Key& k, const Value& v) { got.emplace_back(k, v); });
  ASSERT_EQ(got.size(), model.size()) << what;
  std::size_t i = 0;
  for (const auto& [k, v] : model) {
    ASSERT_EQ(got[i].first, k) << what << " pos " << i;
    ASSERT_EQ(got[i].second, v) << what << " pos " << i;
    ++i;
  }
  for (const auto& [k, v] : model) {
    const auto r = d.find(k);
    ASSERT_TRUE(r.has_value()) << what << " find(" << k << ")";
    ASSERT_EQ(*r, v) << what << " find(" << k << ")";
  }
}

// Declared first so the pool has exactly ONE worker to block (see the file
// header note on ordering). Blocks that worker with a gate task, drives a
// fold into the queue, and drains: the writer MUST claim and run the fold
// inline — a deterministic writer-assist, not a race.
TEST(Compaction, WriterAssistWhenPoolIsBusy) {
  if (sync_env_forced()) GTEST_SKIP() << "COSTREAM_COMPACTION=sync";
  cola::ColaConfig cfg = cola::ingest_tuned(2, 8);
  cfg.compaction_threads = 1;  // grows the process pool to exactly 1 worker
  cfg.unsafe_defer_install = true;  // no opportunistic install: the fold
                                    // stays pending until we drain
  cola::Gcola<> d(cfg);

  std::promise<void> gate;
  std::shared_future<void> released(gate.get_future());
  std::size_t depth = 0;
  ASSERT_TRUE(cola::compact::Pool::instance().submit(
      [released] { released.wait(); }, /*forced=*/false, &depth))
      << "pool rejected the blocker task";

  Model model;
  std::uint64_t seed = 0x5eed;
  std::size_t rounds = 0;
  while (!d.compaction_pending() && rounds < 10'000) {
    churn(d, model, seed, 1, 16);
    ++rounds;
  }
  ASSERT_TRUE(d.compaction_pending()) << "no fold ever deferred";

  // The lone worker is parked on the gate, so the queued fold is
  // unclaimed: drain_compaction() must claim it and run it on THIS thread.
  d.drain_compaction();
  gate.set_value();
  EXPECT_FALSE(d.compaction_pending());

  const cola::CompactionStats cs = d.compaction_stats();
  EXPECT_GE(cs.folds_deferred, 1u);
  EXPECT_GE(cs.writer_assists, 1u) << "writer did not assist a stuck fold";
  EXPECT_GE(cs.compaction_queue_peak, 1u);
  EXPECT_GT(cs.bg_fold_ns, 0u);

  churn(d, model, seed, 32);
  d.flush_stage();
  d.drain_compaction();
  expect_matches(d, model, "post-assist contents");
}

TEST(Compaction, BackgroundFoldsDeferAndMatchModel) {
  for (const unsigned g : {2u, 8u}) {
    cola::ColaConfig cfg = cola::ingest_tuned(g, 16);
    cfg.compaction_threads = 2;
    cola::Gcola<> d(cfg);
    Model model;
    std::uint64_t seed = 17 * g;
    churn(d, model, seed, 400);
    d.flush_stage();
    d.drain_compaction();
    d.check_invariants();
    expect_matches(d, model, "background contents");
    const cola::CompactionStats cs = d.compaction_stats();
    if (sync_env_forced()) {
      EXPECT_EQ(cs.folds_deferred, 0u) << "escape hatch did not force inline";
    } else {
      EXPECT_GT(cs.folds_deferred, 0u) << "no fold was ever deferred (g=" << g
                                       << ")";
      EXPECT_GT(cs.bg_fold_ns, 0u);
    }
  }
}

TEST(Compaction, SyncAndBackgroundConverge) {
  // The same feed through the inline path and the background path must be
  // logically indistinguishable: identical ordered contents, identical
  // point reads, identical settled item counts. (Interleaved reads are
  // covered by the fuzz/linearizability arms; this pins the settled
  // states + per-batch spot probes.)
  for (const unsigned c : {1u, 2u}) {
    cola::ColaConfig sync_cfg = cola::ingest_tuned(8, 16);
    cola::ColaConfig bg_cfg = sync_cfg;
    bg_cfg.compaction_threads = c;
    cola::Gcola<> sync_d(sync_cfg);
    cola::Gcola<> bg_d(bg_cfg);
    Model model;
    std::uint64_t seed_a = 0xabcd + c, seed_b = seed_a;
    Model model_b;
    for (std::size_t round = 0; round < 40; ++round) {
      churn(sync_d, model, seed_a, 8);
      churn(bg_d, model_b, seed_b, 8);
      // Spot probes WITHOUT draining: reads must agree while folds are
      // potentially in flight on the background instance.
      for (Key k = 0; k < 4'000; k += 397) {
        ASSERT_EQ(sync_d.find(k), bg_d.find(k)) << "round " << round;
      }
    }
    ASSERT_EQ(seed_a, seed_b);
    sync_d.flush_stage();
    bg_d.flush_stage();
    bg_d.drain_compaction();
    EXPECT_EQ(sync_d.item_count(), bg_d.item_count());
    expect_matches(sync_d, model, "sync contents");
    expect_matches(bg_d, model, "background contents");
  }
}

TEST(Compaction, SnapshotStormAcrossInFlightFoldsAndLeakOracle) {
  // Snapshots taken while folds are in flight must read their frozen stamp
  // forever; when the snapshots AND the structure are gone, every segment
  // the storm minted — fold outputs, retired fold inputs, materialized
  // incoming spans — must be freed. unsafe_defer_install maximizes the
  // window in which a finished fold coexists with post-snapshot arrivals.
  const std::int64_t baseline = snap::live_segment_count().load();
  {
    cola::ColaConfig cfg = cola::ingest_tuned(2, 8);
    cfg.compaction_threads = 2;
    cfg.unsafe_defer_install = true;
    cola::Gcola<> d(cfg);
    Model model;
    std::uint64_t seed = 0xf01d;
    struct Held {
      snap::Snapshot<> snap;
      Model frozen;
    };
    std::vector<Held> held;
    bool saw_pending = false;
    for (std::size_t round = 0; round < 120; ++round) {
      churn(d, model, seed, 4, 24);
      saw_pending = saw_pending || d.compaction_pending();
      if (round % 10 == 9) {
        held.push_back(Held{d.snapshot(), model});
        if (held.size() > 4) held.erase(held.begin());
      }
    }
    if (!sync_env_forced()) {
      EXPECT_TRUE(saw_pending) << "storm never had a fold in flight";
    }
    for (const Held& h : held) {
      Model seen;
      h.snap.for_each([&](const Key& k, const Value& v) { seen[k] = v; });
      EXPECT_EQ(seen, h.frozen) << "held snapshot drifted";
    }
    d.drain_compaction();
    d.check_invariants();
    expect_matches(d, model, "post-storm contents");
  }
  EXPECT_EQ(snap::live_segment_count().load(), baseline)
      << "fold storm leaked segments";
}

TEST(Compaction, ForcedTombstoneFoldsAreScheduled) {
  // A tight retention bound on an erase-heavy feed: forced bottom folds
  // must still fire with the engine on — as scheduled compactions (or
  // writer-assisted ones), never silently skipped.
  cola::ColaConfig cfg = cola::ingest_tuned(8, 16);
  cfg.compaction_threads = 2;
  cfg.tombstone_threshold = 0.05;
  cola::Gcola<> d(cfg);
  Model model;
  std::uint64_t seed = 0xdead;
  std::vector<Op<>> ops;
  for (std::size_t b = 0; b < 300; ++b) {
    ops.clear();
    for (std::size_t i = 0; i < 48; ++i) {
      const std::uint64_t r = splitmix64(seed);
      const Key k = r % 2'000;
      if ((r >> 32) % 2 == 0) {  // erase-heavy: 50/50
        ops.push_back(Op<>::del(k));
        model.erase(k);
      } else {
        ops.push_back(Op<>::put(k, r));
        model[k] = r;
      }
    }
    d.apply_batch(Span<Op<>>(ops.data(), ops.size()));
  }
  d.flush_stage();
  d.drain_compaction();
  EXPECT_GT(d.stats().forced_bottom_folds, 0u);
  expect_matches(d, model, "retention contents");
  // Retention held: physical slots within the configured bound's ballpark
  // of the live set (generous constant — geometry adds in-flight slack).
  EXPECT_LT(d.item_count(), model.size() * 4 + 4096);
}

TEST(Compaction, StatsAccessorIsCoherentAndMonotone) {
  cola::ColaConfig cfg = cola::ingest_tuned(2, 8);
  cfg.compaction_threads = 1;
  cola::Gcola<> d(cfg);
  Model model;
  std::uint64_t seed = 7;
  cola::CompactionStats prev;
  for (std::size_t round = 0; round < 20; ++round) {
    churn(d, model, seed, 8, 24);
    const cola::CompactionStats cur = d.compaction_stats();
    EXPECT_GE(cur.folds_deferred, prev.folds_deferred);
    EXPECT_GE(cur.writer_assists, prev.writer_assists);
    EXPECT_GE(cur.compaction_queue_peak, prev.compaction_queue_peak);
    EXPECT_GE(cur.bg_fold_ns, prev.bg_fold_ns);
    prev = cur;
  }
  d.drain_compaction();
}

TEST(Compaction, PresetThreadingAndNaming) {
  // DictConfig::compaction_threads flows through to_cola_config and the
  // "-bg<N>" name suffix ("cola-g8-bg2" style identity in bench output).
  const api::DictConfig c = api::DictConfig::background(8, 2, 16);
  EXPECT_EQ(api::to_cola_config(c).compaction_threads, 2u);
  auto d = api::make_dictionary("cola", c);
  EXPECT_EQ(d.name(), "cola-bg2");
  Model model;
  std::uint64_t seed = 99;
  churn(d, model, seed, 60);
  expect_matches(d, model, "preset contents");

  auto plain = api::make_dictionary("cola", api::DictConfig::ingest_tuned(8, 16));
  EXPECT_EQ(plain.name(), "cola");
}

TEST(Compaction, ShardsShareOneProcessPool) {
  // S shards x compaction_threads=2 must not grow the pool to S*2: the
  // pool is process-wide and sized to the max request, capped at hardware
  // concurrency.
  const std::size_t before = cola::compact::Pool::instance().threads();
  shard::ShardedConfig<> sc;
  sc.shards = 4;
  sc.splitters = {1'000, 2'000, 3'000};
  shard::ShardedDictionary<cola::Gcola<>> d(sc, [](std::size_t) {
    cola::ColaConfig cfg = cola::ingest_tuned(8, 16);
    cfg.compaction_threads = 2;
    return cola::Gcola<>(cfg);
  });
  Model model;
  std::uint64_t seed = 0x5a5a;
  churn(d, model, seed, 200);
  d.flush_stage();
  const std::size_t after = cola::compact::Pool::instance().threads();
  EXPECT_LE(after, std::max<std::size_t>(before, 2))
      << "sharded facade oversubscribed the compaction pool";
  expect_matches(d, model, "sharded contents");
}

TEST(Compaction, DamModeledTransfersBitIdenticalToSync) {
  // Counting memory models fold inline by construction (the engine
  // self-disables), so modeled transfers must be EXACTLY equal between
  // compaction_threads=0 and compaction_threads=2 — the acceptance
  // criterion "folds move the same bytes, just off-thread".
  constexpr std::uint64_t kBlock = 4096;
  constexpr std::uint64_t kMem = 1 << 19;
  cola::ColaConfig sync_cfg = cola::ingest_tuned(8, 64);
  cola::ColaConfig bg_cfg = sync_cfg;
  bg_cfg.compaction_threads = 2;
  cola::Gcola<Key, Value, dam::dam_mem_model> sync_d(
      sync_cfg, dam::dam_mem_model(kBlock, kMem));
  cola::Gcola<Key, Value, dam::dam_mem_model> bg_d(
      bg_cfg, dam::dam_mem_model(kBlock, kMem));
  std::vector<Op<>> ops;
  std::uint64_t seed = 0xda3;
  for (std::size_t b = 0; b < 256; ++b) {
    ops.clear();
    for (std::size_t i = 0; i < 64; ++i) {
      const std::uint64_t r = splitmix64(seed);
      ops.push_back((r >> 32) % 4 == 3 ? Op<>::del(r % 50'000)
                                       : Op<>::put(r % 50'000, r));
    }
    sync_d.apply_batch(Span<Op<>>(ops.data(), ops.size()));
    bg_d.apply_batch(Span<Op<>>(ops.data(), ops.size()));
  }
  sync_d.flush_stage();
  bg_d.flush_stage();
  EXPECT_FALSE(bg_d.compaction_pending())
      << "counting model must never defer a fold";
  EXPECT_EQ(bg_d.compaction_stats().folds_deferred, 0u);
  EXPECT_EQ(sync_d.mm().stats().transfers, bg_d.mm().stats().transfers);
  EXPECT_EQ(sync_d.mm().stats().sequential_transfers,
            bg_d.mm().stats().sequential_transfers);
  EXPECT_EQ(sync_d.item_count(), bg_d.item_count());
}

TEST(Compaction, EscapeHatchMatchesEnvironment) {
  // Each CI leg proves its own branch: the plain leg must defer folds, the
  // COSTREAM_COMPACTION=sync leg must keep every fold inline while the
  // rest of this suite's differential assertions still hold verbatim.
  cola::ColaConfig cfg = cola::ingest_tuned(2, 8);
  cfg.compaction_threads = 2;
  cola::Gcola<> d(cfg);
  Model model;
  std::uint64_t seed = 0xe5c;
  churn(d, model, seed, 200);
  d.flush_stage();
  d.drain_compaction();
  if (sync_env_forced()) {
    EXPECT_EQ(d.compaction_stats().folds_deferred, 0u)
        << "COSTREAM_COMPACTION=sync did not force inline folds";
  } else {
    EXPECT_GT(d.compaction_stats().folds_deferred, 0u);
  }
  expect_matches(d, model, "escape-hatch contents");
}

}  // namespace
}  // namespace costream
