// Packed-memory array (PMA) — the dynamic-layout substrate of the shuttle
// tree and of the cache-oblivious B-tree baseline (paper Section 2,
// "Maintaining layout dynamically"; original construction in Bender, Demaine,
// Farach-Colton, "Cache-oblivious B-trees").
//
// A PMA stores N elements in order in an array of Theta(N) slots, leaving
// gaps so that an insertion only needs to shift elements locally. The array
// is divided into segments of Theta(log N) slots; aligned groups of 2^d
// segments form the windows of an implicit calibration tree. Each depth has
// density thresholds, tighter toward the root:
//
//   upper: 1.00 at the leaves ... 0.75 at the root
//   lower: 0.10 at the leaves ... 0.30 at the root
//
// An insert rebalances (evenly redistributes) the smallest enclosing window
// that respects its upper threshold; if even the root is too dense the array
// doubles. Deletes mirror this against the lower thresholds and halve the
// array when the root is too sparse. This yields amortized O(log^2 N)
// element moves per update, and any n consecutive elements occupy Theta(n)
// slots — the property the shuttle tree's layout analysis relies on.
//
// The PMA is positional, not keyed: embedders (cob::CobTree) decide where an
// element goes and may register a move listener to learn when rebalances
// relocate elements — the analogue of the paper's parent-pointer updates.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "dam/mem_model.hpp"

namespace costream::pma {

/// Statistics used by the PMA benches/tests to validate the amortized
/// O(log^2 N) move bound.
struct PmaStats {
  std::uint64_t inserts = 0;
  std::uint64_t erases = 0;
  std::uint64_t rebalances = 0;
  std::uint64_t element_moves = 0;  // elements relocated by rebalances
  std::uint64_t resizes = 0;
};

template <class T, class MM = dam::null_mem_model>
class Pma {
 public:
  using slot_t = std::uint64_t;
  static constexpr slot_t npos = std::numeric_limits<slot_t>::max();

  /// `mm` is the memory-model policy used for DAM accounting; element slot s
  /// lives at logical offset s * sizeof(T).
  explicit Pma(MM mm = MM{}) : mm_(std::move(mm)) { reset_layout(kMinCapacity); }

  // -- observers --------------------------------------------------------------

  std::uint64_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::uint64_t capacity() const noexcept { return static_cast<std::uint64_t>(data_.size()); }
  std::uint64_t segment_slots() const noexcept { return seg_slots_; }
  const PmaStats& stats() const noexcept { return stats_; }
  MM& mm() noexcept { return mm_; }
  const MM& mm() const noexcept { return mm_; }

  bool occupied(slot_t s) const noexcept { return s < used_.size() && used_[s] != 0; }

  const T& at(slot_t s) const {
    assert(occupied(s));
    mm_.touch(s * sizeof(T), sizeof(T));
    return data_[s];
  }

  T& at(slot_t s) {
    assert(occupied(s));
    mm_.touch_write(s * sizeof(T), sizeof(T));
    return data_[s];
  }

  /// First occupied slot, or npos when empty.
  slot_t first() const noexcept { return scan_forward(0); }

  /// Next occupied slot after `s`, or npos. Amortized O(1): gap lengths are
  /// bounded by the lower density thresholds.
  slot_t next(slot_t s) const noexcept { return scan_forward(s + 1); }

  /// Previous occupied slot before `s`, or npos.
  slot_t prev(slot_t s) const noexcept {
    while (s-- > 0) {
      mm_.touch(s * sizeof(T), sizeof(T));
      if (used_[s]) return s;
    }
    return npos;
  }

  /// Called as listener(old_slot, new_slot) for every element a rebalance or
  /// resize relocates. Embedders use this to patch external pointers.
  /// Contract: all moves reported during one mutation refer to the slot
  /// assignment *before* that mutation (the rebalance gathers, then
  /// scatters), so listeners that maintain slot maps must apply a
  /// mutation's moves as one batch, not incrementally.
  void set_move_listener(std::function<void(slot_t, slot_t)> listener) {
    on_move_ = std::move(listener);
  }

  /// Called after each rebalance/resize finishes. One mutation can trigger
  /// more than one rebalance (a resize followed by a window rebalance), and
  /// the second batch's `from` slots refer to the post-resize layout — this
  /// hook marks the batch boundaries.
  void set_rebalance_listener(std::function<void()> listener) {
    on_rebalance_end_ = std::move(listener);
  }

  /// Slot range [lo, hi) of the most recent rebalance (embedders recompute
  /// derived data, e.g. the CO B-tree's segment leaders, over this range).
  std::pair<slot_t, slot_t> last_rebalanced_range() const noexcept {
    return {last_reb_lo_, last_reb_hi_};
  }

  /// Bumped on every capacity change; embedders compare it to detect that a
  /// full index rebuild is needed.
  std::uint64_t resize_epoch() const noexcept { return resize_epoch_; }

  // -- mutators ---------------------------------------------------------------

  /// Insert `value` immediately after the element at slot `pred` in the
  /// logical order (`pred == npos` inserts before everything). Returns the
  /// slot where the new element landed. Other elements move only through
  /// rebalances, reported via the move listener.
  slot_t insert_after(slot_t pred, T value) {
    assert(pred == npos || occupied(pred));
    ++stats_.inserts;
    const std::uint64_t home_seg = pred == npos ? 0 : pred / seg_slots_;

    // Find the smallest enclosing window that can absorb one more element.
    int depth = 0;
    std::uint64_t seg_lo = home_seg, seg_span = 1;
    while (true) {
      const std::uint64_t cnt = window_count(seg_lo, seg_span);
      const std::uint64_t slots = seg_span * seg_slots_;
      if (static_cast<double>(cnt + 1) <=
          upper_threshold(depth) * static_cast<double>(slots)) {
        return rebalance_with_insert(seg_lo, seg_span, pred, std::move(value));
      }
      if (seg_span == segments()) {
        // Even the root window is too dense: double the array. `pred`'s slot
        // changes; recover it by rank.
        const std::uint64_t pred_rank = pred == npos ? npos : rank_of(pred);
        resize_to(capacity() * 2);
        const slot_t new_pred = pred_rank == npos ? npos : slot_of_rank(pred_rank);
        return insert_after(new_pred, std::move(value));
      }
      ++depth;
      seg_span *= 2;
      seg_lo = (seg_lo / seg_span) * seg_span;
    }
  }

  /// Insert the run data[0..n) immediately after `pred` in logical order,
  /// preserving the run's order (the positional analogue of insert_batch:
  /// callers pass a sorted run and the PMA walks it with a rolling
  /// predecessor, so successive placements hit the same or adjacent
  /// segments and rebalance windows overlap). Returns the slot of the last
  /// inserted element (or `pred` when n == 0).
  slot_t insert_batch_after(slot_t pred, const T* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) pred = insert_after(pred, data[i]);
    return pred;
  }

  /// Remove the element at slot `s`.
  void erase(slot_t s) {
    assert(occupied(s));
    ++stats_.erases;
    mm_.touch_write(s * sizeof(T), sizeof(T));
    used_[s] = 0;
    --seg_count_[s / seg_slots_];
    --size_;
    rebalance_after_erase(s / seg_slots_, s / seg_slots_);
  }

  /// Remove up to `count` elements in logical order starting at occupied
  /// slot `s` — the positional analogue of insert_batch_after (stops early
  /// at the end of the array). The victims are vacated in ONE forward pass
  /// with no intermediate rebalances (a per-erase rebalance would relocate
  /// the remaining victims mid-iteration), then a single rebalance pass over
  /// the smallest window covering the vacated range restores the density
  /// invariants — batching the amortized O(log^2 N) rebalance cost the same
  /// way insert_batch_after batches placement. Returns the number erased.
  std::size_t erase_at(slot_t s, std::size_t count) {
    if (count == 0) return 0;
    assert(occupied(s));
    const std::uint64_t seg_first = s / seg_slots_;
    std::uint64_t seg_last = seg_first;
    std::size_t erased = 0;
    while (erased < count && s != npos) {
      mm_.touch_write(s * sizeof(T), sizeof(T));
      used_[s] = 0;
      --seg_count_[s / seg_slots_];
      --size_;
      ++stats_.erases;
      seg_last = s / seg_slots_;
      ++erased;
      s = erased < count ? scan_forward(s + 1) : npos;
    }
    rebalance_after_erase(seg_first, seg_last);
    return erased;
  }

  // -- verification -----------------------------------------------------------

  /// Structural invariants; throws std::logic_error on violation. Intended
  /// for tests (O(capacity)).
  void check_invariants() const {
    std::uint64_t total = 0;
    for (std::uint64_t seg = 0; seg < segments(); ++seg) {
      std::uint64_t cnt = 0;
      for (std::uint64_t s = seg * seg_slots_; s < (seg + 1) * seg_slots_; ++s) {
        if (used_[s]) ++cnt;
      }
      if (cnt != seg_count_[seg]) throw std::logic_error("PMA: segment counter drift");
      total += cnt;
    }
    if (total != size_) throw std::logic_error("PMA: size drift");
    if (capacity() % seg_slots_ != 0) throw std::logic_error("PMA: ragged segments");
    if ((capacity() & (capacity() - 1)) != 0) throw std::logic_error("PMA: capacity not pow2");
    if (size_ > capacity()) throw std::logic_error("PMA: overfull");
  }

  // -- cursor -----------------------------------------------------------------

  /// Positional cursor over the occupied slots — the PMA is positional, not
  /// keyed, so the cursor seeks by slot; keyed embedders (cob::CobTree)
  /// wrap it with their own key lookup. Any mutation invalidates the cursor
  /// (rebalances relocate elements) until the next seek.
  class Cursor {
   public:
    Cursor() = default;

    /// Position at the first occupied slot >= `s`.
    void seek_slot(slot_t s) { s_ = p_->scan_forward(s); }
    void seek_first() { s_ = p_->first(); }
    void next() {
      if (s_ != npos) s_ = p_->next(s_);
    }
    bool valid() const { return s_ != npos; }
    slot_t slot() const { return s_; }
    const T& item() const { return p_->at(s_); }

   private:
    friend class Pma;
    explicit Cursor(const Pma* p) : p_(p) {}

    const Pma* p_ = nullptr;
    slot_t s_ = npos;
  };

  Cursor make_cursor() const { return Cursor(this); }

  /// Rank of slot `s` = number of occupied slots strictly before it. O(s).
  std::uint64_t rank_of(slot_t s) const noexcept {
    std::uint64_t r = 0;
    for (std::uint64_t i = 0; i < s && i < capacity(); ++i) {
      if (used_[i]) ++r;
    }
    return r;
  }

  /// Slot holding the element of rank `r` (0-based); npos if r >= size().
  slot_t slot_of_rank(std::uint64_t r) const noexcept {
    std::uint64_t seen = 0;
    for (std::uint64_t s = 0; s < capacity(); ++s) {
      if (!used_[s]) continue;
      if (seen == r) return s;
      ++seen;
    }
    return npos;
  }

 private:
  static constexpr std::uint64_t kMinCapacity = 16;

  std::uint64_t segments() const noexcept { return capacity() / seg_slots_; }

  int levels() const noexcept {
    int l = 0;
    for (std::uint64_t s = segments(); s > 1; s >>= 1) ++l;
    return l;
  }

  double upper_threshold(int depth) const noexcept {
    const int l = levels();
    if (l == 0) return 1.0;
    return 1.0 - 0.25 * static_cast<double>(depth) / static_cast<double>(l);
  }

  double lower_threshold(int depth) const noexcept {
    const int l = levels();
    if (l == 0) return 0.0;
    return 0.10 + 0.20 * static_cast<double>(depth) / static_cast<double>(l);
  }

  std::uint64_t window_count(std::uint64_t seg_lo, std::uint64_t seg_span) const noexcept {
    std::uint64_t cnt = 0;
    for (std::uint64_t s = seg_lo; s < seg_lo + seg_span; ++s) cnt += seg_count_[s];
    return cnt;
  }

  slot_t scan_forward(slot_t s) const noexcept {
    for (; s < capacity(); ++s) {
      mm_.touch(s * sizeof(T), sizeof(T));
      if (used_[s]) return s;
    }
    return npos;
  }

  /// Segment slot count: a power of two near log2(capacity).
  static std::uint64_t pick_segment_slots(std::uint64_t cap) noexcept {
    std::uint64_t lg = 0;
    while ((1ULL << (lg + 1)) <= cap) ++lg;
    std::uint64_t seg = 1;
    while (seg < lg) seg <<= 1;
    while (seg > cap) seg >>= 1;
    return seg == 0 ? 1 : seg;
  }

  void reset_layout(std::uint64_t cap) {
    data_.assign(cap, T{});
    used_.assign(cap, 0);
    seg_slots_ = pick_segment_slots(cap);
    seg_count_.assign(cap / seg_slots_, 0);
    size_ = 0;
  }

  /// Gather the occupied elements of [slot_lo, slot_hi) in order, clearing
  /// the slots. Records the gathered index of slot `track` into *track_idx
  /// and the original slot of every gathered element into *old_slots.
  std::vector<T> gather(std::uint64_t slot_lo, std::uint64_t slot_hi, slot_t track,
                        std::uint64_t* track_idx, std::vector<slot_t>* old_slots) {
    std::vector<T> items;
    for (std::uint64_t s = slot_lo; s < slot_hi; ++s) {
      mm_.touch(s * sizeof(T), sizeof(T));
      if (!used_[s]) continue;
      if (s == track && track_idx != nullptr) *track_idx = items.size();
      if (old_slots != nullptr) old_slots->push_back(s);
      items.push_back(std::move(data_[s]));
      used_[s] = 0;
    }
    return items;
  }

  /// Evenly redistribute `items` into [slot_lo, slot_hi). `old_slots` lists
  /// the pre-gather slots of every item except the one at `new_item_idx`
  /// (pass >= items.size() for "no new item"). Fires the move listener and
  /// returns the slot given to the new item (npos if none).
  slot_t scatter(std::uint64_t slot_lo, std::uint64_t slot_hi, std::vector<T>&& items,
                 const std::vector<slot_t>& old_slots, std::uint64_t new_item_idx) {
    const std::uint64_t w = slot_hi - slot_lo;
    const std::uint64_t m = items.size();
    assert(m <= w);
    slot_t new_slot = npos;
    std::uint64_t old_i = 0;
    for (std::uint64_t i = 0; i < m; ++i) {
      const std::uint64_t target = slot_lo + i * w / m;
      assert(target < slot_hi && !used_[target]);
      mm_.touch_write(target * sizeof(T), sizeof(T));
      data_[target] = std::move(items[i]);
      used_[target] = 1;
      ++seg_count_[target / seg_slots_];
      if (i == new_item_idx) {
        new_slot = target;
      } else {
        const slot_t from = old_slots[old_i++];
        ++stats_.element_moves;
        if (on_move_ && from != target) on_move_(from, target);
      }
    }
    if (on_rebalance_end_) on_rebalance_end_();
    return new_slot;
  }

  void clear_window_counts(std::uint64_t seg_lo, std::uint64_t seg_span) noexcept {
    for (std::uint64_t s = seg_lo; s < seg_lo + seg_span; ++s) seg_count_[s] = 0;
  }

  /// Shared erase tail: starting from the smallest aligned window covering
  /// segments [seg_first, seg_last], walk up until a window satisfies its
  /// lower threshold; rebalance it so the sparse region regains its
  /// gaps-everywhere shape. At the root, halve the array as long as the
  /// occupancy justifies it (a batch erase can shrink past one halving).
  void rebalance_after_erase(std::uint64_t seg_first, std::uint64_t seg_last) {
    int depth = 0;
    std::uint64_t seg_span = 1;
    while (seg_first / seg_span != seg_last / seg_span) {
      ++depth;
      seg_span *= 2;
    }
    std::uint64_t seg_lo = (seg_first / seg_span) * seg_span;
    while (true) {
      const std::uint64_t cnt = window_count(seg_lo, seg_span);
      const std::uint64_t slots = seg_span * seg_slots_;
      if (static_cast<double>(cnt) >=
          lower_threshold(depth) * static_cast<double>(slots)) {
        if (depth > 0) rebalance_window(seg_lo, seg_span);
        return;
      }
      if (seg_span == segments()) {
        if (capacity() > kMinCapacity &&
            static_cast<double>(size_) <= 0.75 * static_cast<double>(capacity() / 2)) {
          do {
            resize_to(capacity() / 2);
          } while (capacity() > kMinCapacity &&
                   static_cast<double>(size_) <=
                       0.75 * static_cast<double>(capacity() / 2));
        } else if (cnt > 0) {
          rebalance_window(seg_lo, seg_span);
        }
        return;
      }
      ++depth;
      seg_span *= 2;
      seg_lo = (seg_lo / seg_span) * seg_span;
    }
  }

  slot_t rebalance_with_insert(std::uint64_t seg_lo, std::uint64_t seg_span, slot_t pred,
                               T value) {
    ++stats_.rebalances;
    const std::uint64_t lo = seg_lo * seg_slots_, hi = (seg_lo + seg_span) * seg_slots_;
    last_reb_lo_ = lo;
    last_reb_hi_ = hi;
    std::uint64_t pred_idx = npos;
    std::vector<slot_t> old_slots;
    std::vector<T> items = gather(lo, hi, pred, &pred_idx, &old_slots);
    clear_window_counts(seg_lo, seg_span);
    const std::uint64_t insert_at = (pred == npos || pred_idx == npos) ? 0 : pred_idx + 1;
    items.insert(items.begin() + static_cast<std::ptrdiff_t>(insert_at), std::move(value));
    ++size_;
    return scatter(lo, hi, std::move(items), old_slots, insert_at);
  }

  void rebalance_window(std::uint64_t seg_lo, std::uint64_t seg_span) {
    ++stats_.rebalances;
    const std::uint64_t lo = seg_lo * seg_slots_, hi = (seg_lo + seg_span) * seg_slots_;
    last_reb_lo_ = lo;
    last_reb_hi_ = hi;
    std::vector<slot_t> old_slots;
    std::vector<T> items = gather(lo, hi, npos, nullptr, &old_slots);
    clear_window_counts(seg_lo, seg_span);
    const std::uint64_t m = items.size();
    scatter(lo, hi, std::move(items), old_slots, m);
  }

  void resize_to(std::uint64_t new_cap) {
    ++stats_.resizes;
    ++stats_.rebalances;
    ++resize_epoch_;
    std::vector<slot_t> old_slots;
    std::vector<T> items = gather(0, capacity(), npos, nullptr, &old_slots);
    const std::uint64_t m = items.size();
    reset_layout(new_cap);
    size_ = m;
    last_reb_lo_ = 0;
    last_reb_hi_ = new_cap;
    scatter(0, new_cap, std::move(items), old_slots, m);
  }

  std::vector<T> data_;
  std::vector<std::uint8_t> used_;
  std::vector<std::uint32_t> seg_count_;
  std::uint64_t seg_slots_ = 1;
  std::uint64_t size_ = 0;
  PmaStats stats_;
  mutable MM mm_;
  std::function<void(slot_t, slot_t)> on_move_;
  std::function<void()> on_rebalance_end_;
  slot_t last_reb_lo_ = 0;
  slot_t last_reb_hi_ = 0;
  std::uint64_t resize_epoch_ = 0;
};

}  // namespace costream::pma
