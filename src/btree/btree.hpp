// B+-tree baseline — the data structure the paper's Section 4 compares the
// COLA against ("Our B-tree implementation employs blocks of size 4KiB. Key
// and value sizes were each 64 bits").
//
// Nodes are sized to a block: a 4 KiB block holds 256 leaf entries (16-byte
// key/value pairs) or ~340 router/child slots. The DAM accounting treats one
// node access as one block touch at logical offset node_id * block_bytes,
// which is exactly how the paper's memory-mapped B-tree behaves.
//
// Supports upsert, delete with full rebalancing (borrow/merge), point
// lookup, range scans over leaf links, and sorted bulk-load. O(log_{B+1} N)
// transfers per operation — optimal for searching in the DAM model, which is
// why it is the right baseline for the insert/search tradeoff.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/entry.hpp"
#include "common/snapshot.hpp"
#include "common/span.hpp"
#include "dam/mem_model.hpp"

namespace costream::btree {

struct BTreeStats {
  std::uint64_t splits = 0;
  std::uint64_t merges = 0;
  std::uint64_t borrows = 0;
};

template <class K = Key, class V = Value, class MM = dam::null_mem_model>
class BTree {
 public:
  using Ent = Entry<K, V>;
  static constexpr std::uint32_t kNull = 0xffffffffu;

  explicit BTree(std::uint64_t block_bytes = 4096, MM mm = MM{})
      : block_bytes_(block_bytes),
        leaf_cap_(std::max<std::size_t>(4, block_bytes / sizeof(Ent))),
        internal_cap_(std::max<std::size_t>(4, block_bytes / (sizeof(K) + sizeof(std::uint32_t)))),
        mm_(std::move(mm)) {
    root_ = new_node(/*leaf=*/true);
  }

  // -- observers --------------------------------------------------------------

  std::uint64_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  int height() const noexcept { return height_; }
  const BTreeStats& stats() const noexcept { return stats_; }
  MM& mm() noexcept { return mm_; }
  std::uint64_t block_bytes() const noexcept { return block_bytes_; }
  std::size_t leaf_capacity() const noexcept { return leaf_cap_; }
  std::size_t node_count() const noexcept { return nodes_.size() - free_.size(); }

  /// Mutation epoch: bumped by every mutator. Snapshots are stamped and
  /// cached against it.
  std::uint64_t mutation_epoch() const noexcept { return mutation_epoch_; }

  /// Point-in-time snapshot (contract in api/dictionary.hpp). In-place
  /// structure: the live contents materialize into one immutable segment —
  /// O(N) copy, cached per mutation epoch, so repeated acquisitions of an
  /// unmutated tree are refcount bumps. The handle (and cursors opened on
  /// it) stays valid across arbitrary later mutations.
  snap::Snapshot<K, V> snapshot() const {
    if (snap_cache_ && snap_epoch_ == mutation_epoch_) return snap_cache_;
    snap_cache_ = snap::materialize<K, V>(*this, mutation_epoch_);
    snap_epoch_ = mutation_epoch_;
    return snap_cache_;
  }

  std::optional<V> find(const K& key) const {
    std::uint32_t id = root_;
    while (true) {
      const Node& n = node(id);
      if (n.leaf) {
        const auto it = std::lower_bound(n.entries.begin(), n.entries.end(), key,
                                         EntryKeyLess{});
        if (it != n.entries.end() && it->key == key) return it->value;
        return std::nullopt;
      }
      id = n.kids[child_index(n, key)];
    }
  }

  /// Visit live entries with lo <= key <= hi in ascending order — one code
  /// path with the cursor API (bounded seek on the dictionary-owned scratch
  /// cursor; the leaf chain makes the B-tree cursor a trivial walk).
  template <class Fn>
  void range_for_each(const K& lo, const K& hi, Fn&& fn) const {
    if (hi < lo) return;
    Cursor c(this, &scan_state_);
    for (c.seek(lo, hi); c.valid(); c.next()) {
      const Ent& e = c.entry();
      fn(e.key, e.value);
    }
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    Cursor c(this, &scan_state_);
    for (c.seek_first(); c.valid(); c.next()) {
      const Ent& e = c.entry();
      fn(e.key, e.value);
    }
  }

  // -- cursor -----------------------------------------------------------------

  /// Cursor scratch: just a leaf-chain position (the in-place B-tree needs
  /// no merge, no suppression — one descent, then next() walks the chain).
  struct CursorState {
    std::uint32_t leaf = kNull;
    std::size_t idx = 0;
    bool valid = false;
    bool bounded = false;
    K hi{};
    Ent cur{};
  };

  /// Resumable ordered cursor (Dictionary cursor contract in
  /// api/dictionary.hpp). Any mutation invalidates the cursor (splits and
  /// merges relocate entries) until the next seek.
  class Cursor {
   public:
    Cursor() = default;

    void seek(const K& lo) { do_seek(&lo, nullptr); }
    void seek(const K& lo, const K& hi) {
      if (hi < lo) {
        st_->valid = false;
        return;
      }
      do_seek(&lo, &hi);
    }
    void seek_first() { do_seek(nullptr, nullptr); }

    bool valid() const { return st_->valid; }
    const Ent& entry() const { return st_->cur; }

    void next() {
      CursorState& st = *st_;
      if (!st.valid) return;
      ++st.idx;
      settle();
    }

   private:
    friend class BTree;
    explicit Cursor(const BTree* d)
        : d_(d), own_(std::make_unique<CursorState>()), st_(own_.get()) {}
    Cursor(const BTree* d, CursorState* st) : d_(d), st_(st) {}

    void do_seek(const K* lo, const K* hi) {
      CursorState& st = *st_;
      const BTree& d = *d_;
      st.bounded = hi != nullptr;
      if (hi != nullptr) st.hi = *hi;
      st.valid = false;
      std::uint32_t id = d.root_;
      while (!d.node(id).leaf) {
        const Node& n = d.nodes_[id];
        id = n.kids[lo != nullptr ? d.child_index(n, *lo) : 0];
      }
      st.leaf = id;
      const auto& entries = d.nodes_[id].entries;
      st.idx = lo != nullptr
                   ? static_cast<std::size_t>(
                         std::lower_bound(entries.begin(), entries.end(), *lo,
                                          EntryKeyLess{}) -
                         entries.begin())
                   : 0;
      settle();
    }

    /// Hop leaves past exhausted positions, apply the bound, cache the
    /// current entry.
    void settle() {
      CursorState& st = *st_;
      const BTree& d = *d_;
      while (st.leaf != kNull && st.idx >= d.node(st.leaf).entries.size()) {
        st.leaf = d.nodes_[st.leaf].next;
        st.idx = 0;
      }
      if (st.leaf == kNull) {
        st.valid = false;
        return;
      }
      const Ent& e = d.nodes_[st.leaf].entries[st.idx];
      if (st.bounded && st.hi < e.key) {
        st.valid = false;
        return;
      }
      st.cur = e;
      st.valid = true;
    }

    const BTree* d_ = nullptr;
    std::unique_ptr<CursorState> own_;
    CursorState* st_ = nullptr;
  };

  /// Detached cursor (Dictionary concept).
  Cursor make_cursor() const { return Cursor(this); }

  // -- mutators ---------------------------------------------------------------

  /// Upsert: overwrite the value if the key exists.
  void insert(const K& key, const V& value) {
    ++mutation_epoch_;
    auto split = insert_rec(root_, key, value);
    if (split) {
      const std::uint32_t new_root = new_node(/*leaf=*/false);
      Node& r = node_mut(new_root);
      r.keys.push_back(split->separator);
      r.kids.push_back(root_);
      r.kids.push_back(split->right_id);
      root_ = new_root;
      ++height_;
    }
  }

  /// Bulk upsert (batch contract in api/dictionary.hpp): normalize the run
  /// once, then insert in ascending key order — successive inserts descend
  /// into the same nodes, so the root-to-leaf path stays block-cached and
  /// dedup happens once instead of via n upsert probes.
  void insert_batch(Span<Ent> batch) {
    if (batch.empty()) return;
    std::vector<Ent>& run = batch_scratch_;
    run.assign(batch.begin(), batch.end());
    sort_dedup_newest_wins(run, batch_sort_scratch_);
    for (const Ent& e : run) insert(e.key, e.value);
  }

  /// Bulk delete (batch contract in api/dictionary.hpp): sort the keys once
  /// and erase in ascending order, so successive descents reuse the same
  /// root-to-leaf path blocks; duplicate keys collapse to one erase. The
  /// in-place structure needs no tombstones — each erase rebalances fully.
  void erase_batch(Span<K> keys) {
    if (keys.empty()) return;
    std::vector<K>& ks = erase_scratch_;
    ks.assign(keys.begin(), keys.end());
    std::sort(ks.begin(), ks.end());
    ks.erase(std::unique(ks.begin(), ks.end()), ks.end());
    for (const K& k : ks) erase(k);
  }

  /// Mixed put/erase batch: normalize once (the LAST op on a key wins,
  /// put-vs-erase included), then apply in ascending key order — upserts
  /// insert, deletes erase directly with full rebalancing.
  void apply_batch(Span<Op<K, V>> ops) {
    if (ops.empty()) return;
    std::vector<Op<K, V>>& run = op_scratch_;
    run.assign(ops.begin(), ops.end());
    sort_dedup_newest_wins(run, op_sort_scratch_);
    for (const Op<K, V>& o : run) {
      if (o.erase) {
        erase(o.key);
      } else {
        insert(o.key, o.value);
      }
    }
  }

  // Deprecated pointer-form batch shims (one release; migration note in
  // api/dictionary.hpp — CI's deprecated-api lint rejects in-repo callers).
  void insert_batch(const Ent* data, std::size_t n) {
    insert_batch(Span<Ent>(data, n));
  }
  void erase_batch(const K* keys, std::size_t n) {
    erase_batch(Span<K>(keys, n));
  }
  void apply_batch(const Op<K, V>* ops, std::size_t n) {
    apply_batch(Span<Op<K, V>>(ops, n));
  }

  /// Remove `key`; returns true if it was present.
  bool erase(const K& key) {
    ++mutation_epoch_;
    const bool removed = erase_rec(root_, key);
    Node& r = node_mut(root_);
    if (!r.leaf && r.kids.size() == 1) {
      const std::uint32_t only = r.kids[0];
      free_node(root_);
      root_ = only;
      --height_;
    }
    return removed;
  }

  /// Build from entries sorted ascending by strictly increasing key;
  /// replaces the current contents. Leaves are packed full (the layout the
  /// paper used for the search experiment's pre-built B-tree).
  void bulk_load(const std::vector<Ent>& sorted) {
    ++mutation_epoch_;
    nodes_.clear();
    free_.clear();
    size_ = 0;
    height_ = 1;
    stats_ = BTreeStats{};
    root_ = new_node(true);
    if (sorted.empty()) return;

    // Level 0: packed leaves. The tail is balanced so the last leaf never
    // falls below the underflow threshold.
    std::vector<std::uint32_t> level;
    std::vector<K> level_min;
    free_node(root_);
    std::uint32_t prev = kNull;
    for (std::size_t i = 0; i < sorted.size();) {
      std::size_t take = std::min(leaf_cap_, sorted.size() - i);
      const std::size_t remaining = sorted.size() - i;
      if (remaining > leaf_cap_ && remaining - leaf_cap_ < min_leaf()) {
        take = remaining - min_leaf();
      }
      const std::uint32_t id = new_node(true);
      Node& n = node_mut(id);
      n.entries.assign(sorted.begin() + static_cast<std::ptrdiff_t>(i),
                       sorted.begin() + static_cast<std::ptrdiff_t>(i + take));
      mm_.touch_write(offset(id), block_bytes_);
      if (prev != kNull) node_mut(prev).next = id;
      level.push_back(id);
      level_min.push_back(n.entries.front().key);
      prev = id;
      i += take;
    }
    size_ = sorted.size();

    // Upper levels until a single root remains.
    while (level.size() > 1) {
      std::vector<std::uint32_t> up;
      std::vector<K> up_min;
      for (std::size_t i = 0; i < level.size();) {
        std::size_t take = std::min(internal_cap_, level.size() - i);
        const std::size_t remaining = level.size() - i;
        if (remaining > internal_cap_ && remaining - internal_cap_ < min_internal()) {
          take = remaining - min_internal();
        }
        const std::uint32_t id = new_node(false);
        Node& n = node_mut(id);
        for (std::size_t j = 0; j < take; ++j) {
          n.kids.push_back(level[i + j]);
          if (j > 0) n.keys.push_back(level_min[i + j]);
        }
        mm_.touch_write(offset(id), block_bytes_);
        up.push_back(id);
        up_min.push_back(level_min[i]);
        i += take;
      }
      level = std::move(up);
      level_min = std::move(up_min);
      ++height_;
    }
    root_ = level[0];
  }

  // -- verification -----------------------------------------------------------

  /// Full structural check: sorted nodes, fanout bounds, uniform leaf depth,
  /// separator consistency, leaf-chain completeness. Throws on violation.
  void check_invariants() const {
    std::uint64_t counted = 0;
    int leaf_depth = -1;
    check_rec(root_, 1, nullptr, nullptr, leaf_depth, counted);
    if (counted != size_) throw std::logic_error("btree: size drift");
    // Leaf chain covers all entries in order.
    std::uint64_t chained = 0;
    const K* last = nullptr;
    K last_val{};
    for (std::uint32_t id = leftmost_leaf(); id != kNull; id = node(id).next) {
      for (const Ent& e : node(id).entries) {
        if (last != nullptr && !(last_val < e.key)) {
          throw std::logic_error("btree: leaf chain out of order");
        }
        last_val = e.key;
        last = &last_val;
        ++chained;
      }
    }
    if (chained != size_) throw std::logic_error("btree: leaf chain drift");
  }

 private:
  struct Node {
    bool leaf = true;
    std::vector<K> keys;             // internal: keys.size() + 1 == kids.size()
    std::vector<std::uint32_t> kids; // internal only
    std::vector<Ent> entries;        // leaf only
    std::uint32_t next = kNull;      // leaf chain
  };

  struct Split {
    K separator;
    std::uint32_t right_id;
  };

  std::uint64_t offset(std::uint32_t id) const noexcept {
    return static_cast<std::uint64_t>(id) * block_bytes_;
  }

  const Node& node(std::uint32_t id) const {
    mm_.touch(offset(id), block_bytes_);
    return nodes_[id];
  }

  Node& node_mut(std::uint32_t id) {
    mm_.touch_write(offset(id), block_bytes_);
    return nodes_[id];
  }

  std::uint32_t new_node(bool leaf) {
    std::uint32_t id;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
      nodes_[id] = Node{};
    } else {
      id = static_cast<std::uint32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    nodes_[id].leaf = leaf;
    return id;
  }

  void free_node(std::uint32_t id) {
    nodes_[id] = Node{};
    free_.push_back(id);
  }

  std::size_t child_index(const Node& n, const K& key) const {
    return static_cast<std::size_t>(
        std::upper_bound(n.keys.begin(), n.keys.end(), key) - n.keys.begin());
  }

  std::uint32_t leftmost_leaf() const {
    std::uint32_t id = root_;
    while (!node(id).leaf) id = node(id).kids.front();
    return id;
  }

  std::optional<Split> insert_rec(std::uint32_t id, const K& key, const V& value) {
    if (nodes_[id].leaf) {
      Node& n = node_mut(id);
      const auto it = std::lower_bound(n.entries.begin(), n.entries.end(), key,
                                       EntryKeyLess{});
      if (it != n.entries.end() && it->key == key) {
        it->value = value;  // upsert
        return std::nullopt;
      }
      n.entries.insert(it, Ent{key, value});
      ++size_;
      if (n.entries.size() <= leaf_cap_) return std::nullopt;
      return split_leaf(id);
    }
    const std::size_t ci = child_index(node(id), key);
    auto child_split = insert_rec(nodes_[id].kids[ci], key, value);
    if (!child_split) return std::nullopt;
    Node& n = node_mut(id);
    n.keys.insert(n.keys.begin() + static_cast<std::ptrdiff_t>(ci), child_split->separator);
    n.kids.insert(n.kids.begin() + static_cast<std::ptrdiff_t>(ci) + 1,
                  child_split->right_id);
    if (n.kids.size() <= internal_cap_) return std::nullopt;
    return split_internal(id);
  }

  Split split_leaf(std::uint32_t id) {
    ++stats_.splits;
    const std::uint32_t right = new_node(true);
    Node& l = node_mut(id);
    Node& r = node_mut(right);
    const std::size_t mid = l.entries.size() / 2;
    r.entries.assign(l.entries.begin() + static_cast<std::ptrdiff_t>(mid), l.entries.end());
    l.entries.resize(mid);
    r.next = l.next;
    l.next = right;
    return Split{r.entries.front().key, right};
  }

  Split split_internal(std::uint32_t id) {
    ++stats_.splits;
    const std::uint32_t right = new_node(false);
    Node& l = node_mut(id);
    Node& r = node_mut(right);
    const std::size_t mid = l.keys.size() / 2;
    const K sep = l.keys[mid];
    r.keys.assign(l.keys.begin() + static_cast<std::ptrdiff_t>(mid) + 1, l.keys.end());
    r.kids.assign(l.kids.begin() + static_cast<std::ptrdiff_t>(mid) + 1, l.kids.end());
    l.keys.resize(mid);
    l.kids.resize(mid + 1);
    return Split{sep, right};
  }

  std::size_t min_leaf() const noexcept { return leaf_cap_ / 4; }
  std::size_t min_internal() const noexcept { return internal_cap_ / 4; }  // kids

  bool erase_rec(std::uint32_t id, const K& key) {
    if (nodes_[id].leaf) {
      Node& n = node_mut(id);
      const auto it = std::lower_bound(n.entries.begin(), n.entries.end(), key,
                                       EntryKeyLess{});
      if (it == n.entries.end() || it->key != key) return false;
      n.entries.erase(it);
      --size_;
      return true;
    }
    const std::size_t ci = child_index(node(id), key);
    const bool removed = erase_rec(nodes_[id].kids[ci], key);
    if (removed) fix_child(id, ci);
    return removed;
  }

  bool underfull(std::uint32_t id) const {
    const Node& n = nodes_[id];
    return n.leaf ? n.entries.size() < min_leaf() : n.kids.size() < min_internal();
  }

  /// Restore fanout bounds for child `ci` of internal node `id` by borrowing
  /// from or merging with an adjacent sibling.
  void fix_child(std::uint32_t id, std::size_t ci) {
    if (!underfull(nodes_[id].kids[ci])) return;
    Node& p = node_mut(id);
    const std::size_t left_i = ci > 0 ? ci - 1 : ci;
    const std::size_t right_i = left_i + 1;
    if (right_i >= p.kids.size()) return;  // root with single child: handled by caller
    const std::uint32_t lid = p.kids[left_i];
    const std::uint32_t rid = p.kids[right_i];
    Node& l = node_mut(lid);
    Node& r = node_mut(rid);
    K& sep = p.keys[left_i];

    if (l.leaf) {
      if (l.entries.size() + r.entries.size() <= leaf_cap_) {
        ++stats_.merges;
        l.entries.insert(l.entries.end(), r.entries.begin(), r.entries.end());
        l.next = r.next;
        free_node(rid);
        p.keys.erase(p.keys.begin() + static_cast<std::ptrdiff_t>(left_i));
        p.kids.erase(p.kids.begin() + static_cast<std::ptrdiff_t>(right_i));
      } else if (l.entries.size() < r.entries.size()) {
        ++stats_.borrows;
        l.entries.push_back(r.entries.front());
        r.entries.erase(r.entries.begin());
        sep = r.entries.front().key;
      } else {
        ++stats_.borrows;
        r.entries.insert(r.entries.begin(), l.entries.back());
        l.entries.pop_back();
        sep = r.entries.front().key;
      }
      return;
    }

    if (l.kids.size() + r.kids.size() <= internal_cap_) {
      ++stats_.merges;
      l.keys.push_back(sep);
      l.keys.insert(l.keys.end(), r.keys.begin(), r.keys.end());
      l.kids.insert(l.kids.end(), r.kids.begin(), r.kids.end());
      free_node(rid);
      p.keys.erase(p.keys.begin() + static_cast<std::ptrdiff_t>(left_i));
      p.kids.erase(p.kids.begin() + static_cast<std::ptrdiff_t>(right_i));
    } else if (l.kids.size() < r.kids.size()) {
      ++stats_.borrows;
      l.keys.push_back(sep);
      l.kids.push_back(r.kids.front());
      sep = r.keys.front();
      r.keys.erase(r.keys.begin());
      r.kids.erase(r.kids.begin());
    } else {
      ++stats_.borrows;
      r.keys.insert(r.keys.begin(), sep);
      r.kids.insert(r.kids.begin(), l.kids.back());
      sep = l.keys.back();
      l.keys.pop_back();
      l.kids.pop_back();
    }
  }

  void check_rec(std::uint32_t id, int depth, const K* lo, const K* hi, int& leaf_depth,
                 std::uint64_t& counted) const {
    const Node& n = nodes_[id];
    if (n.leaf) {
      if (leaf_depth == -1) leaf_depth = depth;
      if (depth != leaf_depth) throw std::logic_error("btree: ragged leaves");
      if (id != root_ && n.entries.size() < min_leaf()) {
        throw std::logic_error("btree: underfull leaf");
      }
      if (n.entries.size() > leaf_cap_) throw std::logic_error("btree: overfull leaf");
      for (std::size_t i = 0; i < n.entries.size(); ++i) {
        if (i > 0 && !(n.entries[i - 1].key < n.entries[i].key)) {
          throw std::logic_error("btree: unsorted leaf");
        }
        if (lo != nullptr && n.entries[i].key < *lo) throw std::logic_error("btree: range lo");
        if (hi != nullptr && !(n.entries[i].key < *hi)) throw std::logic_error("btree: range hi");
      }
      counted += n.entries.size();
      return;
    }
    if (n.kids.size() != n.keys.size() + 1) throw std::logic_error("btree: arity");
    if (id != root_ && n.kids.size() < min_internal()) {
      throw std::logic_error("btree: underfull internal");
    }
    if (n.kids.size() > internal_cap_) throw std::logic_error("btree: overfull internal");
    for (std::size_t i = 0; i + 1 < n.keys.size(); ++i) {
      if (!(n.keys[i] < n.keys[i + 1])) throw std::logic_error("btree: unsorted routers");
    }
    for (std::size_t i = 0; i < n.kids.size(); ++i) {
      const K* clo = i == 0 ? lo : &n.keys[i - 1];
      const K* chi = i == n.keys.size() ? hi : &n.keys[i];
      check_rec(n.kids[i], depth + 1, clo, chi, leaf_depth, counted);
    }
  }

  std::uint64_t block_bytes_;
  std::size_t leaf_cap_;
  std::size_t internal_cap_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;
  std::uint32_t root_ = kNull;
  std::uint64_t size_ = 0;
  int height_ = 1;
  std::vector<Ent> batch_scratch_, batch_sort_scratch_;  // insert_batch staging, reused
  std::vector<K> erase_scratch_;                         // erase_batch staging, reused
  std::vector<Op<K, V>> op_scratch_, op_sort_scratch_;   // apply_batch staging, reused
  // Dictionary-owned cursor scratch backing range_for_each/for_each.
  mutable CursorState scan_state_;
  // Snapshot cache: one materialized segment per mutation epoch (see
  // snapshot()).
  std::uint64_t mutation_epoch_ = 0;
  mutable snap::Snapshot<K, V> snap_cache_;
  mutable std::uint64_t snap_epoch_ = 0;
  BTreeStats stats_;
  mutable MM mm_;
};

}  // namespace costream::btree
