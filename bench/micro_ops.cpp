// google-benchmark microbenchmarks: raw in-RAM operation costs for every
// dictionary in the library. These complement the figure benches (which
// model disk behavior) by showing CPU-side constants.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "brt/brt.hpp"
#include "btree/btree.hpp"
#include "cob/cob_tree.hpp"
#include "cola/cola.hpp"
#include "cola/deamortized_cola.hpp"
#include "common/rng.hpp"
#include "common/workload.hpp"
#include "shuttle/shuttle_tree.hpp"

namespace {

using namespace costream;

template <class D>
void fill(D& d, std::uint64_t n, std::uint64_t seed) {
  const KeyStream ks(KeyOrder::kRandom, n, seed);
  for (std::uint64_t i = 0; i < n; ++i) d.insert(ks.key_at(i), i);
}

template <class D>
void bm_insert_random(benchmark::State& state, D (*make)()) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const KeyStream ks(KeyOrder::kRandom, n, 42);
  for (auto _ : state) {
    D d = make();
    for (std::uint64_t i = 0; i < n; ++i) d.insert(ks.key_at(i), i);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

template <class D>
void bm_find_hit(benchmark::State& state, D (*make)()) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  D d = make();
  fill(d, n, 42);
  const KeyStream ks(KeyOrder::kRandom, n, 42);
  Xoshiro256 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.find(ks.key_at(rng.below(n))));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

template <class D>
void bm_range_100(benchmark::State& state, D (*make)()) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  D d = make();
  // Dense keys so ranges return ~100 entries.
  for (std::uint64_t i = 0; i < n; ++i) d.insert(i, i);
  Xoshiro256 rng(9);
  for (auto _ : state) {
    const Key lo = rng.below(n > 100 ? n - 100 : 1);
    std::uint64_t sum = 0;
    d.range_for_each(lo, lo + 99, [&](Key, Value v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}

cola::Gcola<> make_cola2() { return cola::Gcola<>(cola::ColaConfig{2, 0.1}); }
cola::Gcola<> make_cola4() { return cola::Gcola<>(cola::ColaConfig{4, 0.1}); }
cola::Gcola<> make_basic() { return cola::Gcola<>(cola::ColaConfig{2, 0.0}); }
cola::DeamortizedCola<> make_deam() { return cola::DeamortizedCola<>(); }
btree::BTree<> make_btree() { return btree::BTree<>(4096); }
brt::Brt<> make_brt() { return brt::Brt<>(4096); }
cob::CobTree<> make_cob() { return cob::CobTree<>(); }
shuttle::ShuttleTree<> make_shuttle() { return shuttle::ShuttleTree<>(); }

constexpr std::int64_t kSmall = 1 << 13;
constexpr std::int64_t kBig = 1 << 16;

#define REGISTER_DICT(name, maker)                                                  \
  BENCHMARK_CAPTURE(bm_insert_random, name, &maker)->Arg(kSmall)->Arg(kBig);        \
  BENCHMARK_CAPTURE(bm_find_hit, name, &maker)->Arg(kBig);                          \
  BENCHMARK_CAPTURE(bm_range_100, name, &maker)->Arg(kBig)

REGISTER_DICT(cola2, make_cola2);
REGISTER_DICT(cola4, make_cola4);
REGISTER_DICT(basic_cola, make_basic);
REGISTER_DICT(deamortized, make_deam);
REGISTER_DICT(btree, make_btree);
REGISTER_DICT(brt, make_brt);
REGISTER_DICT(cob, make_cob);
REGISTER_DICT(shuttle, make_shuttle);

}  // namespace

BENCHMARK_MAIN();
