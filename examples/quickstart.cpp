// Quickstart: the five-minute tour of the library's public API.
//
//   build/examples/quickstart
//
// Shows: creating a COLA, upserts, point lookups, blind deletes, range
// queries, the configuration knobs (growth factor / pointer density), and
// how to instrument any structure with the DAM model to count block
// transfers.
#include <cstdio>

#include "cola/cola.hpp"
#include "common/rng.hpp"
#include "dam/dam_mem_model.hpp"

using namespace costream;

int main() {
  // 1. A COLA with the paper's defaults: growth factor 2, pointer density
  //    0.1 (use ColaConfig to change them).
  cola::Gcola<> dict;

  // 2. Inserts are upserts: the newest value for a key wins.
  dict.insert(/*key=*/2001, /*value=*/1);
  dict.insert(1969, 2);
  dict.insert(2001, 3);  // overwrites value 1

  // 3. Point lookups return std::optional<Value>.
  if (const auto v = dict.find(2001)) {
    std::printf("find(2001) = %llu (expected 3)\n",
                static_cast<unsigned long long>(*v));
  }
  std::printf("find(1980) = %s (expected miss)\n",
              dict.find(1980) ? "hit" : "miss");

  // 4. Deletes are blind tombstones — O((log N)/B) amortized, no lookup.
  dict.erase(1969);
  std::printf("after erase, find(1969) = %s\n", dict.find(1969) ? "hit" : "miss");

  // 5. Bulk insert: one million keys, then a range query.
  for (std::uint64_t i = 0; i < 1'000'000; ++i) dict.insert(i * 2, i);
  std::uint64_t count = 0, sum = 0;
  dict.range_for_each(1'000, 1'100, [&](Key k, Value v) {
    ++count;
    sum += v;
    (void)k;
  });
  std::printf("range [1000, 1100] -> %llu entries, value sum %llu\n",
              static_cast<unsigned long long>(count),
              static_cast<unsigned long long>(sum));

  // 6. The same structure instrumented with the DAM model: every memory
  //    access is fed through an LRU cache of M bytes over B-byte blocks,
  //    counting block transfers — the paper's cost model.
  cola::Gcola<Key, Value, dam::dam_mem_model> measured(
      cola::ColaConfig{4, 0.1},
      dam::dam_mem_model(/*block_bytes=*/4096, /*mem_bytes=*/1 << 20));
  for (std::uint64_t i = 0; i < 100'000; ++i) measured.insert(mix64(i), i);
  const auto& st = measured.mm().stats();
  std::printf("instrumented 4-COLA: %.4f transfers/insert "
              "(%llu sequential, %llu random) — modeled disk time %.2fs\n",
              static_cast<double>(st.transfers) / 100'000.0,
              static_cast<unsigned long long>(st.sequential_transfers),
              static_cast<unsigned long long>(st.random_transfers),
              measured.mm().modeled_seconds());
  return 0;
}
