#!/usr/bin/env python3
"""Compare bench JSON runs against the committed baseline.

Used by the CI perf-regression job (see .github/workflows/ci.yml) and by
hand when investigating a regression. The baseline holds cells from BOTH
bench_batch_ingest (the write path) and bench_range_queries (the read
path: scan/seek/find/mjoin series); pass each fresh run via a repeated
``--current`` flag and the cells are merged before diffing. Two metric
families, because CI runners are not the machine the baseline was recorded
on:

* DAM metrics (``transfers_per_op``, ``modeled_rate``) are DETERMINISTIC —
  same code, same seed, same N gives bit-identical counts on any machine —
  so they are compared absolutely: a cell regresses when its transfers rise
  more than ``--threshold`` above baseline.

* Wall-clock rates are machine-dependent, so raw rates are never compared
  across machines. Instead each (structure, order) series is normalized to
  its own batch=1 cell — the batch-speedup curve — and THAT shape is
  compared. A slower runner scales every cell equally and cancels out; a
  real regression (a batch path losing its advantage) does not.

Exit status: 0 clean, 1 regression found, 2 usage/parse error.

Regenerating the baseline (after an intentional perf change)::

    cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-rel -j --target bench_batch_ingest
    REPRO_MAXN=$((1<<18)) \
    REPRO_STRUCTS=cola,cola-g2,cola-g4,cola-g8,cola-g16,cola-g8-bg1,cola-g8-bg2,cola-g8-wal,cola-g8-wal-always,cola-g8-wal-never \
        ./build-rel/bench/bench_batch_ingest \
        --json-out bench/baselines/BENCH_baseline.json

The ``cola-g8-wal*`` arms ingest through the durable tier (real WAL +
segment spills under ``$TMPDIR``); their wall rates depend on the
filesystem as well as the machine, so they are tracked for presence and
reported, never shape-compared. The ``shard-cola-g8-find`` arms (from
bench_concurrent_ingest: a find() storm racing the timed ingest) are
handled the same way — their under-ingest find rate depends on how many
cores the runner gives the reader thread, so presence is gated but the
batch curve (batch = shard count there) is excluded from the shape
comparison below. The ``*-bg<N>`` arms (background compaction,
``compaction_threads = N``) are excluded from the shape comparison for
the same reason: their wall curve depends on spare cores, not on the
merge code. Their DAM transfers ARE compared absolutely — the counting
models fold inline, so background arms must stay bit-identical to sync.

The stall gate (``--compaction-gate``) is a separate, current-run-only
check: at (random, batch=1024) the ``cola-g8-bg2`` arm must show a p99
apply_batch stall at least 5x lower than sync ``cola-g8``, wall
throughput at least 1.2x higher, and exactly equal transfers_per_op.
Enforced only on >= 4 cores — with fewer cores the pool worker just
contends with the writer and the ratios measure oversubscription.

or pass ``--update-baseline`` to this script to copy the current run over
the baseline file once you have eyeballed the report.
"""

import argparse
import json
import math
import os
import sys


def load_cells(path):
    """Load a JSON cell array from a bare file or raw bench stdout."""
    with open(path) as f:
        text = f.read()
    if "BEGIN_JSON" in text:
        text = text.split("BEGIN_JSON", 1)[1].split("END_JSON", 1)[0]
    cells = json.loads(text)
    if not isinstance(cells, list) or not cells:
        raise ValueError("no cells: empty or non-array JSON")
    out = {}
    for i, c in enumerate(cells):
        for k in ("structure", "order", "batch"):
            if k not in c:
                raise ValueError(
                    f"cell {i} lacks identity key '{k}' — truncated or "
                    f"hand-edited JSON; regenerate it (see --help)")
        out[(c["structure"], c["order"], c["batch"])] = c
    return out


def metric(cell, key, where):
    """A metric a comparison depends on; a clean exit-2 when absent.

    Cells written by an older bench binary (or trimmed by hand) can lack
    metrics the comparison needs; a bare KeyError traceback here reads as
    a broken CI script rather than what it is — a stale baseline.
    """
    if key not in cell:
        print(f"error: cell {where} lacks metric '{key}' — stale baseline or "
              f"trimmed run; regenerate the baseline (see --help)",
              file=sys.stderr)
        raise SystemExit(2)
    return cell[key]


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True, help="committed baseline JSON")
    ap.add_argument("--current", required=True, action="append",
                    help="fresh run: bare JSON or raw bench stdout "
                         "(repeatable; cells from all runs are merged)")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed relative regression (default 0.15)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="overwrite the baseline with the current run and exit")
    ap.add_argument("--compaction-gate", action="store_true",
                    help="gate cola-g8-bg2 vs cola-g8 at (random, 1024): "
                         "p99 stall >= 5x lower, wall rate >= 1.2x, "
                         "transfers bit-identical (>= 4 cores only)")
    args = ap.parse_args()

    current = {}
    for path in args.current:
        try:
            cells = load_cells(path)
        except (OSError, ValueError) as e:
            print(f"error: cannot load current run {path}: {e}", file=sys.stderr)
            return 2
        overlap = set(current) & set(cells)
        if overlap:
            print(f"error: {path} repeats cells already loaded: "
                  f"{sorted(overlap)[:4]}", file=sys.stderr)
            return 2
        current.update(cells)

    if args.update_baseline:
        cells = sorted(current.values(),
                       key=lambda c: (c["structure"], c["order"], c["batch"]))
        with open(args.baseline, "w") as f:
            json.dump(cells, f, indent=2)
            f.write("\n")
        print(f"baseline updated: {args.baseline} ({len(cells)} cells)")
        return 0

    try:
        baseline = load_cells(args.baseline)
    except (OSError, ValueError) as e:
        print(f"error: cannot load baseline: {e}", file=sys.stderr)
        return 2

    failures = []
    notes = []

    missing = sorted(set(baseline) - set(current))
    if missing:
        failures.append(f"cells missing from current run: {missing[:8]}"
                        + (" ..." if len(missing) > 8 else ""))

    # Deterministic DAM comparison, cell by cell. Guard against comparing
    # runs of different N first: transfers/op grows with N, so a baseline
    # regenerated at the headline size would silently mask regressions.
    for key in sorted(set(baseline) & set(current)):
        b, c = baseline[key], current[key]
        if b.get("n") != c.get("n"):
            print(f"error: {key}: baseline n={b.get('n')} vs current "
                  f"n={c.get('n')} — runs are not comparable", file=sys.stderr)
            return 2
        bt = metric(b, "transfers_per_op", f"baseline {key}")
        ct = metric(c, "transfers_per_op", f"current {key}")
        if bt > 0 and ct > bt * (1 + args.threshold):
            failures.append(
                f"{key}: transfers_per_op {bt:.6f} -> {ct:.6f} "
                f"(+{(ct / bt - 1) * 100:.1f}%)")
        elif bt > 0 and ct < bt * (1 - args.threshold):
            notes.append(
                f"{key}: transfers_per_op improved {bt:.6f} -> {ct:.6f}; "
                "consider refreshing the baseline")
        # Stall percentiles ride along in every batch>1 ingest cell the
        # current bench binaries write; losing them (an older binary, a
        # trimmed run) must fail loudly here rather than let the stall
        # gate below pass vacuously. Read-path cells (order scan/seek/
        # find/mjoin from bench_range_queries) never carry them.
        if (key[2] > 1 and key[1] in ("random", "sorted")
                and ("-bg" in key[0] or key[0] == "cola-g8")):
            for pk in ("p50_us", "p99_us", "p999_us"):
                metric(c, pk, f"current {key}")

    # Wall-clock shape comparison: batch-speedup curves per (structure, order),
    # aggregated as the geometric mean of per-batch ratio changes. Individual
    # cells at reduced N are noisy well past any useful threshold; a real
    # regression (a batch path losing its advantage) shifts the whole curve,
    # which the aggregate catches while single-cell jitter averages out.
    series = {}
    for (s, o, batch), cell in baseline.items():
        series.setdefault((s, o), {})[batch] = cell
    for (s, o), cells in sorted(series.items()):
        # The find-under-ingest arms DO have a batch=1 cell (batch is the
        # shard count), but their wall rate measures a reader thread racing
        # the writers — pure core-count, not code. Presence-gated above,
        # never shape-compared.
        if s.endswith("-find") and "shard" in s:
            continue
        # Background-compaction arms: the batch curve measures spare-core
        # availability (the pool worker racing the writer), not the merge
        # code. DAM transfers are compared absolutely above; the wall
        # behaviour is gated by --compaction-gate on capable runners.
        if "-bg" in s:
            continue
        base1 = cells.get(1)
        cur1 = current.get((s, o, 1))
        if not base1 or not cur1:
            continue
        base1_rate = metric(base1, "wall_rate", f"baseline ({s}, {o}, 1)")
        cur1_rate = metric(cur1, "wall_rate", f"current ({s}, {o}, 1)")
        if base1_rate <= 0 or cur1_rate <= 0:
            continue
        log_sum, count = 0.0, 0
        for batch, bcell in sorted(cells.items()):
            if batch == 1:
                continue
            ccell = current.get((s, o, batch))
            if not ccell:
                continue
            brate = metric(bcell, "wall_rate", f"baseline ({s}, {o}, {batch})")
            crate = metric(ccell, "wall_rate", f"current ({s}, {o}, {batch})")
            if brate <= 0 or crate <= 0:
                continue
            bratio = brate / base1_rate
            cratio = crate / cur1_rate
            log_sum += math.log(cratio / bratio)
            count += 1
        if count == 0:
            continue
        gm = math.exp(log_sum / count)
        if gm < 1 - args.threshold:
            failures.append(
                f"({s}, {o}): batch-speedup curve degraded {(gm - 1) * 100:.1f}% "
                f"(geomean over {count} batch sizes)")

    # Stall gate: background compaction must actually absorb the fold
    # stalls it promises. Current-run-only (both arms ran on the same
    # machine minutes apart, so raw wall numbers ARE comparable here,
    # unlike the cross-machine baseline comparison above).
    if args.compaction_gate:
        sync_key = ("cola-g8", "random", 1024)
        bg_key = ("cola-g8-bg2", "random", 1024)
        sync_c, bg_c = current.get(sync_key), current.get(bg_key)
        if not sync_c or not bg_c:
            print(f"error: --compaction-gate needs current cells {sync_key} "
                  f"and {bg_key}; run bench_batch_ingest with "
                  f"REPRO_STRUCTS=cola-g8,cola-g8-bg2 REPRO_ORDERS=random",
                  file=sys.stderr)
            return 2
        st = metric(sync_c, "transfers_per_op", f"current {sync_key}")
        gt = metric(bg_c, "transfers_per_op", f"current {bg_key}")
        sp99 = metric(sync_c, "p99_us", f"current {sync_key}")
        gp99 = metric(bg_c, "p99_us", f"current {bg_key}")
        sw = metric(sync_c, "wall_rate", f"current {sync_key}")
        gw = metric(bg_c, "wall_rate", f"current {bg_key}")
        # Transfer equality is deterministic (counting models fold inline),
        # so it is enforced on any machine.
        if gt != st:
            failures.append(
                f"compaction gate: transfers_per_op diverged — sync {st:.6f} "
                f"vs bg2 {gt:.6f} (must be bit-identical)")
        cores = os.cpu_count() or 1
        if cores >= 4:
            if gp99 <= 0 or sp99 < 5.0 * gp99:
                failures.append(
                    f"compaction gate: p99 apply_batch stall only "
                    f"{sp99 / gp99 if gp99 > 0 else float('inf'):.2f}x lower "
                    f"(sync {sp99:.1f}us vs bg2 {gp99:.1f}us; need >= 5x)")
            if gw < 1.2 * sw:
                failures.append(
                    f"compaction gate: wall throughput only {gw / sw:.2f}x "
                    f"sync ({sw:.0f} vs {gw:.0f} ops/s; need >= 1.2x)")
            if not failures:
                print(f"compaction gate OK: p99 {sp99 / gp99:.1f}x lower, "
                      f"throughput {gw / sw:.2f}x, transfers bit-identical")
        else:
            print(f"note: compaction stall/throughput gate skipped on "
                  f"{cores}-core host (needs >= 4 cores; the pool worker "
                  f"would just contend with the writer) — transfer "
                  f"equality still enforced")

    for n in notes:
        print(f"note: {n}")
    if failures:
        print(f"PERF REGRESSION ({len(failures)} finding(s), "
              f"threshold {args.threshold:.0%}):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"perf OK: {len(set(baseline) & set(current))} cells within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
