// Closed-form DAM transfer bounds for the growth-factor family — the
// quantities the theory predicts and the simulator measures.
//
// The paper's Section 3 cache-aware tradeoff (lookahead array, growth g):
//
//   insert (amortized)  O(log_g N * g / B)   transfers
//   search              O(log_g N)           transfers
//
// g = 2 is the COLA point (insert O((log N)/B), search O(log N));
// g = Theta(B^eps) is the B^eps-tree point. A staging L0 arena of S entries
// does not change the asymptotics — it divides the constant on the insert
// bound by the number of batches it absorbs and adds O(S/B) to a cold
// search, which is exactly the knob the ingest-tuned presets turn.
//
// These helpers return the bound WITHOUT the constant: callers (tests,
// benches) compare measured transfers-per-op against `c * bound` for a
// structure-specific constant c, the same shape the figure benches print.
//
// Background compaction (cola/compactor.hpp) does NOT change any bound
// here: a deferred fold moves exactly the bytes the inline fold would
// have moved, just on a pool thread. Under a counting memory model the
// Gcola runs every fold inline (the engine self-disables for non-null
// models), so modeled transfers/op are bit-identical with the engine on
// or off — transfer_bounds_test relies on that equivalence.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace costream::dam {

/// log base g of n, floored at 1 so degenerate small-n cases stay sane.
inline double log_growth(double n, double growth) noexcept {
  return std::max(1.0, std::log(std::max(2.0, n)) / std::log(std::max(2.0, growth)));
}

/// Amortized insert transfer bound for a growth-g lookahead array / COLA:
/// log_g(N) * g / B, with B measured in elements. Each of the log_g N
/// levels rewrites its contents g - 1 times before draining, so every
/// element is moved Theta(g) times per level at streaming cost 1/B each.
inline double cola_insert_transfer_bound(double n, double growth,
                                         double block_elems) noexcept {
  return log_growth(n, growth) * growth / std::max(1.0, block_elems);
}

/// Cold-search transfer bound for the same family: log_g N levels, and per
/// level one bounded window (lookahead pointers, classic mode) or up to
/// `segments_per_level` binary-searched segments (tiered mode: g - 1). A
/// staging arena of `staged_elems` adds its probe cost.
inline double cola_search_transfer_bound(double n, double growth,
                                         double block_elems,
                                         double staged_elems = 0.0,
                                         double segments_per_level = 1.0) noexcept {
  return log_growth(n, growth) * std::max(1.0, segments_per_level) +
         staged_elems / std::max(1.0, block_elems);
}

/// Cold-search transfer bound for the tiered COLA WITH per-segment fence
/// keys: of the up-to-`segments_per_level` segments a level holds, a find
/// or cursor seek binary-searches only the segments whose [min, max] fence
/// range covers the probe — the rest are skipped at zero transfers. With
/// `fence_skip_fraction` the fraction of segments skipped (measured:
/// ColaStats::fence_seg_skips / segments considered; ~0 for uniformly
/// random feeds whose segments all span the keyspace, approaching
/// (g-2)/(g-1) for time-partitioned feeds whose segments are range-
/// disjoint), each level costs 1 + (segs-1)*(1-skip) probed segments
/// instead of segs. Staging-arena runs carry the same per-run fences, so
/// `staged_elems` contributes only its unskipped streaming share; we keep
/// the full arena term as the (conservative) bound.
inline double cola_fence_search_transfer_bound(double n, double growth,
                                               double block_elems,
                                               double staged_elems,
                                               double segments_per_level,
                                               double fence_skip_fraction) noexcept {
  const double skip = std::min(1.0, std::max(0.0, fence_skip_fraction));
  const double segs = std::max(1.0, segments_per_level);
  const double probed = 1.0 + (segs - 1.0) * (1.0 - skip);
  return log_growth(n, growth) * probed +
         staged_elems / std::max(1.0, block_elems);
}

/// Cold-search transfer bound for the tiered COLA with per-segment
/// FINGERPRINT FILTERS (common/filter.hpp) layered on top of fences. A
/// filter answers "definitely absent" for (1 - fpr) of the segments the
/// fences could not rule out, so of the up-to-`segments_per_level` segments
/// a level holds, a cold find probes an expected
///
///   1 + fpr * (segs - 1)
///
/// segments — at most one true hit plus the false-positive share of the
/// rest. This is the uniform-random complement to the fence bound above:
/// fences win when segments are range-disjoint (skip fraction -> 1), filters
/// win when every segment spans the keyspace (skip fraction -> 0) — which is
/// exactly the regime the filter ablation benches measure. Pass
/// filt::kDesignFpr for `fpr` to get the design-point bound, or a measured
/// rate (ColaStats::find_seg_probes / filter_seg_skips) to validate it;
/// transfer_bounds_test.cpp checks measured probes against this form.
/// Filter blocks themselves live beside the fence keys and are charged as
/// in-memory metadata, like fences — no extra transfer term.
inline double cola_filter_search_transfer_bound(double n, double growth,
                                                double block_elems,
                                                double staged_elems,
                                                double segments_per_level,
                                                double fpr) noexcept {
  const double p = std::min(1.0, std::max(0.0, fpr));
  const double segs = std::max(1.0, segments_per_level);
  const double probed = 1.0 + (segs - 1.0) * p;
  return log_growth(n, growth) * probed +
         staged_elems / std::max(1.0, block_elems);
}

/// Amortized transfer bound for a MIXED put/erase feed (erase_batch /
/// apply_batch) on the tiered COLA with bounded tombstone retention.
/// Tombstones are insertions to the cascade — the paper's delete treatment —
/// so they pay the insert bound; the bounded-retention policy adds the
/// forced bottom folds: one full rewrite of the deepest level per
/// (threshold * |level|) tombstone arrivals, i.e. an extra
/// erase_fraction / (threshold * B) transfers per operation. The threshold
/// is the space/ingest knob: tighter bounds cost proportionally more fold
/// traffic, looser ones retain proportionally more dead slots.
inline double cola_mixed_op_transfer_bound(double n, double growth,
                                           double block_elems,
                                           double erase_fraction,
                                           double tombstone_threshold) noexcept {
  const double theta =
      std::min(1.0, std::max(0.05, tombstone_threshold));
  const double ef = std::min(1.0, std::max(0.0, erase_fraction));
  return cola_insert_transfer_bound(n, growth, block_elems) +
         ef / (theta * std::max(1.0, block_elems));
}

/// Amortized insert transfer bound for the SHARDED facade
/// (shard/sharded_dictionary.hpp): the keyspace splits into `shards` range
/// partitions, each an independent growth-g structure holding ~N/S
/// elements, so every element pays (a) one streaming scatter write of the
/// front-end splitter, O(1/B), and (b) the per-structure insert bound at
/// N/S scale. Sharding therefore shaves log_g S levels off every element's
/// cascade cost — a second-order win; the first-order win is WALL time,
/// since the S per-shard cascades run on S cores while the bound here is
/// the TOTAL transfer volume across all shards.
inline double sharded_insert_transfer_bound(double n, double shards,
                                            double growth,
                                            double block_elems) noexcept {
  const double s = std::max(1.0, shards);
  return 1.0 / std::max(1.0, block_elems) +
         cola_insert_transfer_bound(n / s, growth, block_elems);
}

/// Cold-search transfer bound for the sharded facade: a find routes to
/// exactly ONE shard (a key lives in exactly one range partition), so the
/// cost is the per-structure search bound at N/S scale — sharding never
/// multiplies point-read cost, it divides the N each probe sees.
///
/// There is NO drain term: the facade's find() is barrier-free (it never
/// waits out the target shard's queue before probing), so a point read
/// pays structural transfers only. Those transfers are realized on the
/// shard-owner side — the facade searches the worker-PUBLISHED immutable
/// view plus the acknowledged-pending overlay, both in-memory mirrors the
/// DAM model charges nothing for, while the worker's own leveled searches
/// (d.shard(s).find(k), which transfer_bounds_test measures) pay exactly
/// this bound. Staged elements are covered by the published per-staging-run
/// segments, the `staged_elems` term of the underlying COLA bound.
inline double sharded_search_transfer_bound(double n, double shards,
                                            double growth, double block_elems,
                                            double staged_elems = 0.0,
                                            double segments_per_level = 1.0) noexcept {
  const double s = std::max(1.0, shards);
  return cola_search_transfer_bound(n / s, growth, block_elems, staged_elems,
                                    segments_per_level);
}

/// Per-operation transfer bound for the write-ahead log in front of the
/// tiered COLA (storage/wal.hpp): every mutation appends one framed record
/// of `record_bytes` sequentially, a streaming cost of record_bytes / B
/// blocks, plus `syncs_per_op` forced barriers that each pay at least one
/// block regardless of how little data they cover. Group commit is exactly
/// the knob that drives syncs_per_op from 1 (kAlways) toward
/// record_bytes / group_commit_bytes (kBatch) — the WAL is asymptotically
/// free relative to the cascade's log_g(N) * g / B as long as syncs are
/// amortized, which is what the wal-on/wal-off bench arms measure.
inline double wal_append_transfer_bound(double record_bytes, double block_bytes,
                                        double syncs_per_op) noexcept {
  return record_bytes / std::max(1.0, block_bytes) +
         std::max(0.0, syncs_per_op);
}

/// Amortized checkpoint transfer bound: a checkpoint rewrites the FULL
/// dictionary (n elements of `entry_bytes` each) into an immutable segment
/// file, once every `ops_per_checkpoint` operations (the
/// checkpoint_wal_bytes policy divided by the per-op record size). Spread
/// over the interval, each operation carries n * entry_bytes /
/// (ops_per_checkpoint * B) transfers of checkpoint traffic — the term to
/// add to wal_append_transfer_bound for the durable tier's total write
/// amplification.
inline double checkpoint_transfer_bound(double n, double entry_bytes,
                                        double ops_per_checkpoint,
                                        double block_bytes) noexcept {
  return n * entry_bytes /
         (std::max(1.0, ops_per_checkpoint) * std::max(1.0, block_bytes));
}

}  // namespace costream::dam
