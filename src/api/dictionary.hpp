// The unified dictionary facade.
//
// Every structure in the library implements the same informal interface:
//
//   void insert(const K&, const V&);           // upsert, newest wins
//   void insert_batch(Span<Entry<K,V>>);       // bulk upsert (contract below)
//   void erase(const K&);                      // blind delete (tombstones in
//                                              // the write-optimized ones)
//   void erase_batch(Span<K>);                 // bulk blind delete
//   void apply_batch(Span<Op<K,V>>);           // mixed put/erase batch
//   std::optional<V> find(const K&) const;
//   Snapshot snapshot() const;                 // point-in-time read handle
//   template <class Fn> void range_for_each(const K& lo, const K& hi, Fn&&);
//   Cursor make_cursor() const;                // resumable ordered cursor
//
// Snapshot contract (snapshot(), snap::Snapshot in common/snapshot.hpp):
//   * snapshot() returns a point-in-time handle: an immutable, ref-counted
//     set of sorted segments stamped with the dictionary's mutation epoch
//     at acquisition. The handle — and every cursor opened on it — reads
//     EXACTLY that version forever, across arbitrary later mutations of
//     the dictionary. Nothing is ever invalidated; drop the handle and
//     acquire a new one to observe newer data.
//   * Acquisition is cheap: the tiered COLA pins its live segments (a
//     refcount bump per segment plus one sorted copy of the staging
//     arena), and repeated acquisitions between mutations return a cached
//     handle (pure refcount bump). In-place structures (B-tree, CO B-tree,
//     PMA-backed) materialize their contents into one segment per
//     acquisition — O(N) copy, also cached per epoch — so snapshot() on
//     them is a consistency tool, not a hot-path read primitive.
//   * Folds/merges retire replaced segments by dropping references; a
//     segment pinned by any live snapshot survives until the last handle
//     drops (deferred free by refcount — no drain barrier, no free list to
//     poll). snap::live_segment_count() observes the global census; the
//     leak tests assert it returns to baseline after snapshot churn.
//   * A detached Snapshot carries no accounting or scratch state: its
//     find()/for_each/range_for_each/make_cursor are safe to call from any
//     thread, concurrently with writer-thread mutations of the dictionary
//     it came from. (DAM transfer accounting applies only to reads issued
//     through the owning structure's own cursors and scans.)
//
// Read-concurrency contract (which calls tolerate which threads):
//   * Plain structures (COLA family, B-tree, CO B-tree, shuttle family,
//     BRT) are SINGLE-THREADED objects: one thread at a time, reads and
//     writes alike. Cross-thread reading goes through a detached Snapshot
//     (free-threaded, above).
//   * The sharded facade (shard/sharded_dictionary.hpp) splits the
//     contract in two. MUTATORS — insert/erase/insert_batch/erase_batch/
//     apply_batch/flush_stage — plus shard()/shard_mut() and
//     check_invariants() are single-caller: one external owner thread.
//     The const READ paths — find(), snapshot(), make_cursor() and its
//     seeks, for_each, range_for_each, stats(), epoch(), drain() — are
//     safe from ANY number of threads, concurrently with the owner's
//     mutations.
//   * Sharded find() is BARRIER-FREE and linearizable: it never drains a
//     shard and never waits on a writer (the old "find() drains its one
//     target shard" protocol is gone). It reflects every mutation whose
//     facade call RETURNED before the find began — reads-your-
//     acknowledged-writes, from any thread — and may additionally reflect
//     queued runs the worker has applied since; it never observes a
//     partial batch. Implementation: the worker's published immutable
//     view + the facade's acknowledged-pending overlay, revalidated
//     against a per-shard sequence (optimistic, bounded retries); the
//     linearizability hammer in tests/linearizability_test.cpp is the
//     enforcement.
//   * A sharded snapshot() from a non-owner thread still drains (it is a
//     barrier by design) and reflects, per shard, all acknowledged writes
//     plus possibly some just-applied ones; from the owner thread it is
//     an exact cut.
//
// Cursor contract (make_cursor / seek / next / valid / entry):
//   * make_cursor() returns a detached cursor object; creating it may
//     allocate once, but every seek()/next() after the cursor's scratch has
//     reached its high-water size is allocation-free — repeated scans and
//     seek-heavy workloads pay zero setup allocations (verified by the
//     operator-new-counting tests).
//   * seek(lo) positions at the smallest live key >= lo; seek(lo, hi)
//     additionally never surfaces keys past hi (structures use the bound to
//     prune whole subtrees/segments at seek time); seek_first() positions
//     at the smallest live key with no sentinel bound. After a seek,
//     valid() says whether an entry is available and entry() returns it;
//     next() advances to the next live key ascending.
//   * The stream is the SNAPSHOT AT SEEK: newest value per key as of the
//     seek, erased keys suppressed — including operations still buffered
//     in staging arenas, edge buffers, or node buffers. On the amortized
//     COLA (Gcola and its presets) and the sharded facade each seek pins
//     the then-current snapshot of ref-counted segments, so the position
//     and the remainder of the stream STAY VALID across arbitrary
//     mutations (the old "any mutation invalidates outstanding cursors"
//     rule is gone); re-seek to observe newer data. Structures without
//     segment-backed storage (B-tree, CO B-tree, shuttle family, BRT, the
//     deamortized COLAs) walk live arrays/nodes: their cursors still
//     require a re-seek after a mutation — when a scan must survive
//     concurrent writes on those structures, open it on snapshot()
//     instead, which gives the pinned semantics everywhere.
//   * Sharded dictionaries (shard/sharded_dictionary.hpp) acquire their
//     snapshot by fusing per-shard snapshots under one epoch, so a sharded
//     cursor reads one consistent cross-shard version and never races the
//     shard worker threads; the former seek-time drain barrier and
//     epoch-invalidation protocol are gone.
//   * range_for_each/for_each are implemented ON TOP of the snapshot
//     cursor in the amortized COLA (one bounded seek over a one-shot
//     internal snapshot, cached per mutation epoch) and on the native
//     ordered walk elsewhere, so the read paths cannot diverge and
//     repeated range scans are allocation-free. Scans are not reentrant:
//     do not mutate the dictionary or start another scan from inside the
//     callback.
//
// Batch contract (insert_batch / erase_batch / apply_batch):
//   * The primary signatures take costream::Span<T> (common/span.hpp) —
//     implicitly constructible from std::vector, std::array, C arrays, or
//     an explicit {ptr, len} pair.
//   * DEPRECATED (pointer-form shims): the pre-span two-argument forms
//     `insert_batch(const Entry<K,V>*, n)`, `erase_batch(const K*, n)` and
//     `apply_batch(const Op<K,V>*, n)` remain for one release as thin
//     delegating shims. Migrate `d.insert_batch(v.data(), v.size())` to
//     `d.insert_batch(v)` (or `{ptr, len}` where no container exists); the
//     repository's `deprecated-api` CI lint rejects in-repo callers of the
//     pointer forms, and the shims will be removed in the release after
//     next.
//   * The input run may be UNSORTED and may contain DUPLICATE keys; the
//     structure sorts and deduplicates internally.
//   * Within the batch the LAST operation on a key wins — for apply_batch
//     that includes put-vs-erase shadowing: {put k, erase k} erases,
//     {erase k, put k} leaves the put — and the batch as a whole is newer
//     than everything already in the dictionary. Every batch call is
//     therefore observationally equivalent to replaying its operations with
//     insert()/erase() one at a time in input order, including against
//     previously erased (tombstoned) keys.
//   * erase_batch(keys) == apply_batch of |keys| blind deletes. Erasing an
//     absent key is a no-op (the tombstone annihilates unmatched); a later
//     put of that key within the same batch or after it wins as usual.
//   * Tombstone visibility: an erase is visible to find/range_for_each/
//     for_each IMMEDIATELY after the mutator returns, even while the
//     physical tombstone is still buffered (COLA staging arena or level
//     segments, shuttle edge buffers, BRT node buffers). Readers never see
//     a tombstone as an entry and never see the shadowed older value.
//     Snapshots taken BEFORE the erase keep serving the old value — that
//     is the point of them.
//   * The write-optimized structures honor the equivalence with far fewer
//     block transfers: the COLA normalizes the whole mixed run once and
//     carries it in ONE cascaded merge (tombstones ride the cascade exactly
//     like insertions, per the paper's delete treatment), the shuttle tree
//     shuttles the run — tombstones included — down its edge buffers in one
//     pass, and the BRT appends runs to the root buffer a block at a time.
//     In-place structures (B-tree, CO B-tree) apply normalized runs
//     directly, with no tombstones. The deamortized COLAs feed the
//     normalized run through their budgeted path: tombstones count as moved
//     items, so the worst-case move bounds (g*k + 2 and (g+1)*k + 4 per
//     op, Lemma 21 / Theorem 24 generalized) hold verbatim for mixed
//     batches.
//   * An empty span is a no-op; a span's pointer may be null only when its
//     size is 0.
//
// The Dictionary concept below states that contract, and AnyDictionary
// type-erases it so examples and integration tests can drive every structure
// through one code path without templating the world.
#pragma once

#include <array>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/entry.hpp"
#include "common/loser_tree.hpp"
#include "common/snapshot.hpp"
#include "common/span.hpp"

namespace costream::api {

/// The point-in-time read handle every structure's snapshot() returns
/// (contract above; implementation in common/snapshot.hpp). One concrete
/// type across all structures — AnyDictionary needs no erasure for it.
template <class K = Key, class V = Value>
using Snapshot = snap::Snapshot<K, V>;

/// The resumable-cursor half of the Dictionary concept (contract above).
template <class C, class K = Key, class V = Value>
concept DictionaryCursor = requires(C c, const C cc, K k) {
  { c.seek(k) };
  { c.seek(k, k) };
  { c.seek_first() };
  { c.next() };
  { cc.valid() } -> std::same_as<bool>;
  { cc.entry() } -> std::same_as<const Entry<K, V>&>;
};

template <class D, class K = Key, class V = Value>
concept Dictionary = requires(D d, const D cd, K k, V v, Span<Entry<K, V>> batch,
                              Span<K> keys, Span<Op<K, V>> ops) {
  { d.insert(k, v) };
  { d.insert_batch(batch) };
  { d.erase(k) };
  { d.erase_batch(keys) };
  { d.apply_batch(ops) };
  { cd.find(k) } -> std::same_as<std::optional<V>>;
  { cd.snapshot() } -> std::convertible_to<snap::Snapshot<K, V>>;
  { cd.make_cursor() };
  requires DictionaryCursor<decltype(cd.make_cursor()), K, V>;
};

/// Inner merge-join over two dictionaries: sink(key, a_value, b_value) for
/// every key live in BOTH, ascending. Driven by the cursor API — each
/// cursor's first seek pins its side's then-current snapshot, so the join
/// reads one consistent version per side even if the dictionaries keep
/// mutating — and works across any two structures (and AnyDictionary)
/// without materializing either side. The lagging cursor leapfrogs: one
/// next(), and if still behind, a re-seek straight to the other side's key
/// — which the COLA's segment fence keys turn into whole-segment skips —
/// so sparse overlaps cost O(matches * seek) instead of O(union).
template <class DA, class DB, class Sink>
void merge_join(const DA& a, const DB& b, Sink&& sink) {
  auto ca = a.make_cursor();
  auto cb = b.make_cursor();
  ca.seek_first();
  cb.seek_first();
  while (ca.valid() && cb.valid()) {
    const auto& ea = ca.entry();
    const auto& eb = cb.entry();
    if (ea.key < eb.key) {
      ca.next();
      if (ca.valid() && ca.entry().key < eb.key) ca.seek(eb.key);
    } else if (eb.key < ea.key) {
      cb.next();
      if (cb.valid() && cb.entry().key < ea.key) cb.seek(ea.key);
    } else {
      sink(ea.key, ea.value, eb.value);
      ca.next();
      cb.next();
    }
  }
}

/// K-way inner merge-join — the leapfrog-triejoin generalization of
/// merge_join above. `merge_join_k(d0, d1, ..., dk-1, sink)` calls
/// `sink(key, values)` (values: std::array of each side's value, in
/// argument order) for every key live in ALL k dictionaries, ascending.
/// The k cursors fuse through the same cached-key LoserTree the sharded
/// scans use: the tree tracks the minimum frontier in O(log k) compares
/// per step, and whenever min < max the lagging cursor leapfrogs with one
/// re-seek straight to the frontier — segment fence keys turn that into
/// whole-segment skips, so a k-way sparse intersection costs
/// O(matches * k * seek) instead of one pass over the union per pairwise
/// stage (the k-1 materializing passes this replaces — measured in
/// bench/bench_concurrent_ingest.cpp). Mid-join re-seeks re-pin the
/// then-current snapshot on snapshot-backed cursors: against a mutating
/// side the join is a consistent prefix per seek, not one global version —
/// hold an explicit snapshot() per side when that matters.
template <class Sink, class... DS>
  requires(sizeof...(DS) >= 2)
void merge_join_k_with(Sink&& sink, const DS&... dicts) {
  constexpr std::size_t N = sizeof...(DS);
  auto curs = std::tuple(dicts.make_cursor()...);
  using E = std::remove_cvref_t<decltype(std::get<0>(curs).entry())>;
  using KT = std::remove_cvref_t<decltype(std::declval<E>().key)>;
  using VT = std::remove_cvref_t<decltype(std::declval<E>().value)>;
  std::array<KT, N> keys{};
  std::array<VT, N> vals{};
  bool all = true;
  const auto with = [&](std::size_t i, auto&& fn) {
    [&]<std::size_t... I>(std::index_sequence<I...>) {
      (void)((I == i ? (fn(std::get<I>(curs)), true) : false) || ...);
    }(std::make_index_sequence<N>{});
  };
  [&]<std::size_t... I>(std::index_sequence<I...>) {
    ((std::get<I>(curs).seek_first(),
      std::get<I>(curs).valid()
          ? void(keys[I] = std::get<I>(curs).entry().key)
          : void(all = false)),
     ...);
  }(std::make_index_sequence<N>{});
  if (!all) return;  // one side empty: the intersection is empty
  LoserTree<KT> tree;
  tree.reset(N);
  KT maxk = keys[0];
  for (std::size_t i = 0; i < N; ++i) {
    tree.declare(i, keys[i]);
    if (maxk < keys[i]) maxk = keys[i];
  }
  tree.build();
  while (all && tree.top_alive()) {
    const std::size_t i = tree.top();
    if (!(tree.top_key() < maxk)) {
      // min == max: every cursor sits on maxk — emit the joined row, then
      // advance the winning (minimum-index) cursor past the match.
      [&]<std::size_t... I>(std::index_sequence<I...>) {
        ((vals[I] = std::get<I>(curs).entry().value), ...);
      }(std::make_index_sequence<N>{});
      sink(maxk, vals);
      with(i, [&](auto& c) {
        c.next();
        c.valid() ? void(keys[i] = c.entry().key) : void(all = false);
      });
    } else {
      // Lagging side: one cheap next(); if still behind the frontier,
      // leapfrog with a re-seek straight to it (same stepping rule as the
      // pairwise merge_join — a seek costs a source rebuild, so it must
      // only pay for itself across real gaps).
      with(i, [&](auto& c) {
        c.next();
        if (c.valid() && c.entry().key < maxk) c.seek(maxk);
        c.valid() ? void(keys[i] = c.entry().key) : void(all = false);
      });
    }
    if (!all) break;  // a cursor drained: no further matches are possible
    if (maxk < keys[i]) maxk = keys[i];
    tree.replay(true, keys[i]);
  }
}

/// merge_join_k(dicts..., sink): trailing-sink spelling of the k-way join
/// (mirrors merge_join's argument order). At least two dictionaries.
template <class... Args>
  requires(sizeof...(Args) >= 3)
void merge_join_k(Args&&... args) {
  auto tup = std::forward_as_tuple(std::forward<Args>(args)...);
  constexpr std::size_t N = sizeof...(Args) - 1;
  [&]<std::size_t... I>(std::index_sequence<I...>) {
    merge_join_k_with(std::get<N>(std::move(tup)), std::get<I>(tup)...);
  }(std::make_index_sequence<N>{});
}

/// Deployment-level ingest tuning, threaded into every structure that has a
/// growth lever (api/presets.hpp maps it onto each structure's own config).
///
/// `growth` is the paper's g: the COLA family trades insert cost
/// O(log_g N * g / B) against search cost O(log_g N); the shuttle tree
/// scales its edge-buffer capacities by g/2; the deamortized variants keep
/// g arrays per level. `batch_hint` sizes the COLA's staging L0 arena at
/// g * batch_hint entries (0 disables staging). The presets g in
/// {2, 4, 8, 16} cover the query-leaning .. ingest-leaning range; pick by
/// feed shape, not hardware — the structures stay cache-oblivious.
struct DictConfig {
  unsigned growth = 2;            // g >= 2; 2 = the paper's headline geometry
  std::size_t batch_hint = 1024;  // expected ingest batch size (staging = g * hint)
  bool staging = false;           // unsorted L0 arena in front of the COLA levels
  double pointer_density = 0.1;   // COLA fractional-cascading density
  // Tombstone retention bound for the COLA's tiered levels: when a level's
  // tombstone fraction crosses this threshold, the next drain forces a real
  // bottom fold (annihilation) instead of a trivial move, and the deepest
  // level compacts in place — so a sustained erase-heavy feed keeps total
  // physical slots within ~1/(1-threshold) of the live set plus the
  // in-flight geometry. Values > 1.0 disable the forcing (retention then
  // bounded only by the trivial-move/real-fold alternation).
  double tombstone_threshold = 0.25;
  // Shard count S for the concurrent-ingest facade
  // (shard/sharded_dictionary.hpp): 1 = the plain single-writer structure;
  // S > 1 range-partitions the keyspace into S independent shards of the
  // SAME kind, each owned by one worker thread behind an SPSC queue. S
  // multiplies ingest throughput (each shard runs the per-structure bound
  // at N/S) and is orthogonal to g, which tunes the geometry INSIDE each
  // shard — note the staging arena is per shard, so the facade's deferred
  // state totals S * g * batch_hint entries.
  std::size_t shards = 1;
  // Durable crash-consistent tier (storage/durable_dict.hpp; "cola" kind
  // only). Non-empty durable_dir wraps the COLA in a DurableDictionary
  // rooted at that directory: every mutation is WAL-logged before it is
  // applied, deep folds spill checksummed segment files, and reopening the
  // same directory recovers the pre-crash state. Plain types here (no
  // storage-layer includes) keep the API layer's layering: presets.hpp
  // translates them into a DurableConfig.
  std::string durable_dir;
  int durable_fsync = 1;  // 0 = every record, 1 = group commit, 2 = never
  std::size_t spill_depth = 6;  // folds at or past this level hit storage
  // Background compaction worker count for the tiered COLA ("cola" kind).
  // 0 = all folds run inline on the mutating thread (the classical bound).
  // > 0 hands deep tiered folds to a process-wide pool of this many worker
  // threads: the writer snapshots the fold's input segments, enqueues the
  // job, and returns — the fold output later installs *below* any runs
  // that arrived meanwhile, so newest-first shadowing is preserved and
  // reads/snapshots are never blocked. Large folds are range-partitioned
  // across the pool. The pool is shared process-wide, so S shards with
  // compaction_threads = c contend for max(c over shards) workers rather
  // than S * c. Set COSTREAM_COMPACTION=sync to force inline folds at
  // runtime regardless of this knob (escape hatch; behavior identical).
  unsigned compaction_threads = 0;

  /// Ingest-tuned preset for growth factor g: staging on, arena g * hint.
  static DictConfig ingest_tuned(unsigned g, std::size_t hint = 1024) {
    DictConfig c;
    c.growth = g;
    c.batch_hint = hint;
    c.staging = true;
    return c;
  }

  /// Concurrent-ingest preset: the ingest-tuned geometry, sharded S ways.
  static DictConfig concurrent(unsigned g, std::size_t shard_count,
                               std::size_t hint = 1024) {
    DictConfig c = ingest_tuned(g, hint);
    c.shards = shard_count;
    return c;
  }

  /// Background-compaction preset: ingest-tuned geometry with deep folds
  /// handed to `workers` pool threads ("cola-g8-bg2" style names).
  static DictConfig background(unsigned g, unsigned workers,
                               std::size_t hint = 1024) {
    DictConfig c = ingest_tuned(g, hint);
    c.compaction_threads = workers;
    return c;
  }

  /// Durable preset: the ingest-tuned geometry persisted under `dir` with
  /// group-commit WAL durability (the default fsync policy).
  static DictConfig durable(unsigned g, std::string dir,
                            std::size_t hint = 1024) {
    DictConfig c = ingest_tuned(g, hint);
    c.durable_dir = std::move(dir);
    return c;
  }
};

/// Type-erased dictionary over the default Key/Value types. Virtual dispatch
/// is fine here: this wrapper exists for examples and integration tests, not
/// for the benchmarked hot paths (benches use the concrete types directly).
class AnyDictionary {
 public:
  using RangeFn = std::function<void(Key, Value)>;

  template <class D>
  AnyDictionary(std::string name, D dict)
      : name_(std::move(name)), impl_(std::make_unique<Model<D>>(std::move(dict))) {}

  const std::string& name() const noexcept { return name_; }

  /// Type-erased resumable cursor (same contract as the concrete cursors;
  /// one virtual call per operation). Valid only while the AnyDictionary
  /// it came from is alive; whether a position survives mutations follows
  /// the wrapped structure's cursor contract (snapshot-backed on the COLA
  /// family and the sharded facade, live-view on the in-place structures).
  class Cursor {
   public:
    void seek(Key lo) { c_->seek(lo); }
    void seek(Key lo, Key hi) { c_->seek_bounded(lo, hi); }
    void seek_first() { c_->seek_first(); }
    void next() { c_->next(); }
    bool valid() const { return c_->valid(); }
    const Entry<>& entry() const { return c_->entry(); }

   private:
    friend class AnyDictionary;
    struct Concept {
      virtual ~Concept() = default;
      virtual void seek(Key) = 0;
      virtual void seek_bounded(Key, Key) = 0;
      virtual void seek_first() = 0;
      virtual void next() = 0;
      virtual bool valid() const = 0;
      virtual const Entry<>& entry() const = 0;
    };
    template <class C>
    struct Model final : Concept {
      explicit Model(C cur) : c(std::move(cur)) {}
      void seek(Key lo) override { c.seek(lo); }
      void seek_bounded(Key lo, Key hi) override { c.seek(lo, hi); }
      void seek_first() override { c.seek_first(); }
      void next() override { c.next(); }
      bool valid() const override { return c.valid(); }
      const Entry<>& entry() const override { return c.entry(); }
      C c;
    };
    explicit Cursor(std::unique_ptr<Concept> c) : c_(std::move(c)) {}
    std::unique_ptr<Concept> c_;
  };

  Cursor make_cursor() const { return Cursor(impl_->make_cursor_erased()); }

  /// Point-in-time handle of the wrapped structure (contract above). The
  /// handle is the one concrete Snapshot type — no erasure, no virtual
  /// dispatch on reads through it.
  Snapshot<> snapshot() const { return impl_->snapshot(); }

  void insert(Key k, Value v) { impl_->insert(k, v); }
  void insert_batch(Span<Entry<>> batch) { impl_->insert_batch(batch); }
  void erase(Key k) { impl_->erase(k); }
  void erase_batch(Span<Key> keys) { impl_->erase_batch(keys); }
  void apply_batch(Span<Op<>> ops) { impl_->apply_batch(ops); }
  // Deprecated pointer-form batch shims (one release; migration note in the
  // header comment — CI's deprecated-api lint rejects in-repo callers).
  void insert_batch(const Entry<>* data, std::size_t n) {
    insert_batch(Span<Entry<>>(data, n));
  }
  void erase_batch(const Key* keys, std::size_t n) {
    erase_batch(Span<Key>(keys, n));
  }
  void apply_batch(const Op<>* ops, std::size_t n) {
    apply_batch(Span<Op<>>(ops, n));
  }
  std::optional<Value> find(Key k) const { return impl_->find(k); }
  void range_for_each(Key lo, Key hi, const RangeFn& fn) const {
    impl_->range_for_each(lo, hi, fn);
  }
  void for_each(const RangeFn& fn) const { impl_->for_each(fn); }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void insert(Key, Value) = 0;
    virtual void insert_batch(Span<Entry<>>) = 0;
    virtual void erase(Key) = 0;
    virtual void erase_batch(Span<Key>) = 0;
    virtual void apply_batch(Span<Op<>>) = 0;
    virtual std::optional<Value> find(Key) const = 0;
    virtual Snapshot<> snapshot() const = 0;
    virtual void range_for_each(Key, Key, const RangeFn&) const = 0;
    virtual void for_each(const RangeFn&) const = 0;
    virtual std::unique_ptr<Cursor::Concept> make_cursor_erased() const = 0;
  };

  template <class D>
  struct Model final : Concept {
    explicit Model(D d) : dict(std::move(d)) {}
    void insert(Key k, Value v) override { dict.insert(k, v); }
    void insert_batch(Span<Entry<>> batch) override { dict.insert_batch(batch); }
    void erase(Key k) override { dict.erase(k); }
    void erase_batch(Span<Key> keys) override { dict.erase_batch(keys); }
    void apply_batch(Span<Op<>> ops) override { dict.apply_batch(ops); }
    std::optional<Value> find(Key k) const override { return dict.find(k); }
    Snapshot<> snapshot() const override { return dict.snapshot(); }
    void range_for_each(Key lo, Key hi, const RangeFn& fn) const override {
      dict.range_for_each(lo, hi, fn);
    }
    void for_each(const RangeFn& fn) const override { dict.for_each(fn); }
    std::unique_ptr<Cursor::Concept> make_cursor_erased() const override {
      using C = decltype(dict.make_cursor());
      return std::make_unique<Cursor::Model<C>>(dict.make_cursor());
    }
    D dict;
  };

  std::string name_;
  std::unique_ptr<Concept> impl_;
};

}  // namespace costream::api
