// Read-path bench: range scans, cursor seeks, fence-accelerated point
// lookups, and merge-join — the series that gate the cursor subsystem in
// CI the way bench_batch_ingest gates the write path.
//
// The paper's introduction claims:
//
//   "For disk-based storage systems, range queries are likely to be faster
//    for a lookahead array than for a BRT because the data is stored
//    contiguously in arrays, taking advantage of inter-block locality,
//    rather than stored scattered on blocks across disk. This is the same
//    reason why the cache-oblivious B-tree can support range queries nearly
//    an order of magnitude faster than a traditional B-tree."
//
// Series (one JSON cell per (structure, order, batch), schema identical to
// bench_batch_ingest so bench/compare_baseline.py gates both):
//
//   scan   range_for_each over windows of L = batch elements after random
//          inserts over a dense key space. Structures: the classic 4-COLA,
//          the ingest-tuned cola-g8 (tiered + staged — the read path the
//          cursor fusion rewrote), BRT, B-tree, CO B-tree.
//   seek   ONE reused cursor, seek at a random key then drain `batch`
//          entries — the resumable-seek workload the allocation-free
//          cursor exists for. Structures: cola, cola-g8, btree.
//   find   cold point lookups on a TIME-PARTITIONED build (ascending keys
//          in batches, so tiered segments are range-disjoint) — cola-g8
//          with fence keys vs cola-g8-nofence with the fence read path
//          disabled: the fence-key acceleration, isolated. batch = 0.
//   mjoin  api::merge_join of cola-g8 against a B-tree over half-
//          overlapping key ranges; wall/modeled rates are joined rows/sec.
//          batch = 0.
//   ufind  uniform-random cold point lookups — the regime where fences
//          prune NOTHING (every tiered segment spans the keyspace) — on
//          four knob arms ablating the data-parallel read path:
//          cola-g8-fonly (fences only, scalar), cola-g8-simd (+SIMD probe
//          kernels), cola-g8-filt (+fingerprint filters, scalar), and
//          cola-g8-filt-simd (both). Cells carry probed_per_find /
//          filter_skips_per_find from ColaStats alongside the usual rates:
//          the filter arms must collapse probed segments per find toward
//          1 + FPR*(segs-1) and the SIMD arms must win wall time on the
//          same probes. batch = 0.
//   uscan  scan-under-ingest: each probe ingests a 256-entry upsert batch
//          and then drains a window of L = batch entries through a FRESH
//          snapshot cursor — the regime the ref-counted segment tier
//          exists for, where folds triggered by the interleaved ingest
//          keep retiring the very segments the scan has pinned.
//          Structures: cola-g8 (tiered + staged).
//
// Every cell runs twice: a null-memory-model run (timed, wall rates) and a
// DAM-model run (untimed, deterministic transfers) — same discipline as
// bench_batch_ingest.
//
// Environment: REPRO_MAXN (default 2^19), REPRO_FAST. --json-out PATH
// writes the bare JSON array (the CI perf job merges it with the ingest
// sweep before diffing against bench/baselines/BENCH_baseline.json).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "api/dictionary.hpp"
#include "bench/bench_common.hpp"
#include "brt/brt.hpp"
#include "btree/btree.hpp"
#include "cob/cob_tree.hpp"
#include "cola/cola.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace cb = costream::bench;
using namespace costream;

namespace {

constexpr std::uint64_t kBlock = 4096;

struct Cell {
  std::string structure;
  std::string order;
  std::uint64_t batch = 0;
  std::uint64_t n = 0;
  unsigned growth = 2;
  std::uint64_t staging = 0;
  double wall_rate = 0.0;     // queries (or joined rows) per second, wall
  double modeled_rate = 0.0;  // same, on the modeled disk
  double transfers_per_op = 0.0;
  // ufind cells only (-1 elsewhere): tiered segments binary-searched per
  // find and segments dismissed by a fingerprint filter per find.
  double probed_per_find = -1.0;
  double skips_per_find = -1.0;
};

std::vector<Cell> g_cells;

/// Ingest `keys` in chunks of 1024 (the structures' native batch path).
template <class D>
void build(D& d, const std::vector<std::uint64_t>& keys) {
  std::vector<Entry<>> chunk;
  chunk.reserve(1024);
  for (std::size_t i = 0; i < keys.size();) {
    chunk.clear();
    const std::size_t take = std::min<std::size_t>(1024, keys.size() - i);
    for (std::size_t j = 0; j < take; ++j, ++i) {
      chunk.push_back(Entry<>{keys[i], static_cast<Value>(i)});
    }
    d.insert_batch(chunk);
  }
  if constexpr (requires { d.flush_stage(); }) d.flush_stage();
}

/// Range scans of length `len`: wall on `dw` (null model), transfers on
/// `dd` (DAM model).
template <class DW, class DD>
Cell scan_cell(const std::string& name, DW& dw, DD& dd, dam::dam_mem_model& mm,
               std::uint64_t n, std::uint64_t len, std::uint64_t probes,
               unsigned growth, std::uint64_t staging) {
  Cell c;
  c.structure = name;
  c.order = "scan";
  c.batch = len;
  c.n = n;
  c.growth = growth;
  c.staging = staging;
  std::uint64_t emitted = 0;
  {
    Xoshiro256 rng(3);
    Timer t;
    for (std::uint64_t q = 0; q < probes; ++q) {
      const Key lo = rng.below(n > len ? n - len : 1);
      dw.range_for_each(lo, lo + len - 1, [&](Key, Value) { ++emitted; });
    }
    const double secs = t.seconds();
    c.wall_rate = secs > 0 ? static_cast<double>(probes) / secs : 0.0;
  }
  {
    Xoshiro256 rng(3);
    mm.clear_cache();
    mm.reset_stats();
    for (std::uint64_t q = 0; q < probes; ++q) {
      const Key lo = rng.below(n > len ? n - len : 1);
      dd.range_for_each(lo, lo + len - 1, [&](Key, Value) { ++emitted; });
    }
    const double modeled = mm.modeled_seconds();
    c.modeled_rate = modeled > 0 ? static_cast<double>(probes) / modeled : c.wall_rate;
    c.transfers_per_op =
        static_cast<double>(mm.stats().transfers) / static_cast<double>(probes);
  }
  if (emitted == 0 && n > 0) {
    std::fprintf(stderr, "warn: empty scans in %s\n", name.c_str());
  }
  return c;
}

/// Seek-heavy workload: one REUSED cursor, `probes` seeks draining `len`
/// entries each.
template <class DW, class DD>
Cell seek_cell(const std::string& name, DW& dw, DD& dd, dam::dam_mem_model& mm,
               std::uint64_t n, std::uint64_t len, std::uint64_t probes,
               unsigned growth, std::uint64_t staging) {
  Cell c;
  c.structure = name;
  c.order = "seek";
  c.batch = len;
  c.n = n;
  c.growth = growth;
  c.staging = staging;
  std::uint64_t sink = 0;
  {
    auto cur = dw.make_cursor();
    Xoshiro256 rng(5);
    Timer t;
    for (std::uint64_t q = 0; q < probes; ++q) {
      cur.seek(rng.below(n));
      for (std::uint64_t s = 0; s < len && cur.valid(); ++s) {
        sink += cur.entry().value;
        cur.next();
      }
    }
    const double secs = t.seconds();
    c.wall_rate = secs > 0 ? static_cast<double>(probes) / secs : 0.0;
  }
  {
    auto cur = dd.make_cursor();
    Xoshiro256 rng(5);
    mm.clear_cache();
    mm.reset_stats();
    for (std::uint64_t q = 0; q < probes; ++q) {
      cur.seek(rng.below(n));
      for (std::uint64_t s = 0; s < len && cur.valid(); ++s) {
        sink += cur.entry().value;
        cur.next();
      }
    }
    const double modeled = mm.modeled_seconds();
    c.modeled_rate = modeled > 0 ? static_cast<double>(probes) / modeled : c.wall_rate;
    c.transfers_per_op =
        static_cast<double>(mm.stats().transfers) / static_cast<double>(probes);
  }
  (void)sink;
  return c;
}

/// Scan-under-ingest: each probe lands a 256-entry upsert batch and then
/// drains `len` entries through a snapshot cursor taken AFTER the batch.
/// The interleaved ingest keeps folding levels while snapshots pin the
/// pre-fold segments, so the cell prices the copy-free read path plus the
/// deferred-free churn — a rate that collapses if snapshots ever degrade
/// to deep copies. Rates are probes (batch + snapshot + drain) per second.
template <class DW, class DD>
Cell uscan_cell(const std::string& name, DW& dw, DD& dd, dam::dam_mem_model& mm,
                std::uint64_t n, std::uint64_t len, std::uint64_t probes,
                unsigned growth, std::uint64_t staging) {
  Cell c;
  c.structure = name;
  c.order = "uscan";
  c.batch = len;
  c.n = n;
  c.growth = growth;
  c.staging = staging;
  std::vector<Entry<>> chunk(256);
  std::uint64_t emitted = 0;
  const auto probe = [&](auto& d, Xoshiro256& rng) {
    for (auto& e : chunk) e = Entry<>{rng.below(n), rng()};
    d.insert_batch(chunk);
    const auto snap = d.snapshot();
    auto cur = snap.make_cursor();
    const Key lo = rng.below(n > len ? n - len : 1);
    for (cur.seek(lo); cur.valid() && cur.entry().key < lo + len; cur.next()) {
      ++emitted;
    }
  };
  {
    Xoshiro256 rng(9);
    Timer t;
    for (std::uint64_t q = 0; q < probes; ++q) probe(dw, rng);
    const double secs = t.seconds();
    c.wall_rate = secs > 0 ? static_cast<double>(probes) / secs : 0.0;
  }
  {
    Xoshiro256 rng(9);
    mm.clear_cache();
    mm.reset_stats();
    for (std::uint64_t q = 0; q < probes; ++q) probe(dd, rng);
    const double modeled = mm.modeled_seconds();
    c.modeled_rate = modeled > 0 ? static_cast<double>(probes) / modeled : c.wall_rate;
    c.transfers_per_op =
        static_cast<double>(mm.stats().transfers) / static_cast<double>(probes);
  }
  if (emitted == 0 && n > 0) {
    std::fprintf(stderr, "warn: empty under-ingest scans in %s\n", name.c_str());
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    }
  }
  const BenchOptions opts = BenchOptions::from_env(1ULL << 19);
  const std::uint64_t n = opts.fast ? (1ULL << 14) : opts.max_n;
  const std::uint64_t mem = cb::scaled_memory_bytes(n);
  const std::uint64_t probes = opts.fast ? 4 : 32;
  std::vector<std::uint64_t> lengths{16, 256, 4'096, 65'536};
  if (opts.fast) lengths = {16, 256};
  std::printf("Read path: scans / seeks / fenced finds / merge-join, N=%llu, M=%s\n\n",
              static_cast<unsigned long long>(n),
              format_bytes(static_cast<double>(mem)).c_str());

  // Random *insertion order* over a dense key space.
  std::vector<std::uint64_t> keys(n);
  for (std::uint64_t i = 0; i < n; ++i) keys[i] = i;
  Xoshiro256 shuffle_rng(opts.seed);
  for (std::uint64_t i = n; i > 1; --i) {
    std::swap(keys[i - 1], keys[shuffle_rng.below(i)]);
  }

  const cola::ColaConfig g8 = cola::ingest_tuned(8, 1024);

  // -- scan + seek series ------------------------------------------------------
  {
    cola::Gcola<> w(cola::ColaConfig{4, 0.1});
    cola::Gcola<Key, Value, dam::dam_mem_model> d(cola::ColaConfig{4, 0.1},
                                                  dam::dam_mem_model(kBlock, mem));
    build(w, keys);
    build(d, keys);
    for (const std::uint64_t len : lengths) {
      g_cells.push_back(scan_cell("cola", w, d, d.mm(), n, len, probes, 4, 0));
    }
    for (const std::uint64_t len : {16ULL, 256ULL}) {
      g_cells.push_back(
          seek_cell("cola", w, d, d.mm(), n, len, 8 * probes, 4, 0));
    }
  }
  {
    cola::Gcola<> w(g8);
    cola::Gcola<Key, Value, dam::dam_mem_model> d(g8,
                                                  dam::dam_mem_model(kBlock, mem));
    build(w, keys);
    build(d, keys);
    for (const std::uint64_t len : lengths) {
      g_cells.push_back(scan_cell("cola-g8", w, d, d.mm(), n, len, probes, 8,
                                  g8.staging_capacity));
    }
    for (const std::uint64_t len : {16ULL, 256ULL}) {
      g_cells.push_back(seek_cell("cola-g8", w, d, d.mm(), n, len, 8 * probes, 8,
                                  g8.staging_capacity));
    }
    // Mutates w/d (interleaved upserts), so this series runs last in the
    // block; nothing below reuses these instances.
    for (const std::uint64_t len : {256ULL, 4'096ULL}) {
      g_cells.push_back(uscan_cell("cola-g8", w, d, d.mm(), n, len, probes, 8,
                                   g8.staging_capacity));
    }
  }
  {
    brt::Brt<> w(kBlock, 4);
    brt::Brt<Key, Value, dam::dam_mem_model> d(kBlock, 4,
                                               dam::dam_mem_model(kBlock, mem));
    build(w, keys);
    build(d, keys);
    for (const std::uint64_t len : lengths) {
      g_cells.push_back(scan_cell("brt", w, d, d.mm(), n, len, probes, 2, 0));
    }
  }
  {
    btree::BTree<> w(kBlock);
    btree::BTree<Key, Value, dam::dam_mem_model> d(kBlock,
                                                   dam::dam_mem_model(kBlock, mem));
    build(w, keys);
    build(d, keys);
    for (const std::uint64_t len : lengths) {
      g_cells.push_back(scan_cell("btree", w, d, d.mm(), n, len, probes, 2, 0));
    }
    for (const std::uint64_t len : {16ULL, 256ULL}) {
      g_cells.push_back(
          seek_cell("btree", w, d, d.mm(), n, len, 8 * probes, 2, 0));
    }
  }
  {
    cob::CobTree<> w;
    cob::CobTree<Key, Value, dam::dam_mem_model> d{dam::dam_mem_model(kBlock, mem)};
    build(w, keys);
    build(d, keys);
    for (const std::uint64_t len : lengths) {
      g_cells.push_back(scan_cell("cob", w, d, d.mm(), n, len, probes, 2, 0));
    }
  }

  // -- fence-accelerated finds (time-partitioned build) ------------------------
  for (const bool fences : {true, false}) {
    cola::ColaConfig cfg = g8;
    cfg.fence_keys = fences;
    // Filters off in BOTH arms: on this range-disjoint build they would
    // prune the same segments fences do, hiding the fence effect this
    // series isolates. The ufind series below is the filter ablation.
    cfg.filters = false;
    cola::Gcola<> w(cfg);
    cola::Gcola<Key, Value, dam::dam_mem_model> d(cfg,
                                                  dam::dam_mem_model(kBlock, mem));
    std::vector<Entry<>> chunk(1024);
    for (std::uint64_t i = 0; i < n;) {
      for (auto& e : chunk) {
        e = Entry<>{i * 3 + 1, i};  // ascending keys: range-disjoint segments
        ++i;
      }
      w.insert_batch(chunk);
      d.insert_batch(chunk);
    }
    Cell c;
    c.structure = fences ? "cola-g8" : "cola-g8-nofence";
    c.order = "find";
    c.batch = 0;
    c.n = n;
    c.growth = 8;
    c.staging = cfg.staging_capacity;
    const std::uint64_t q = 64 * probes;
    std::uint64_t hits = 0;
    {
      Xoshiro256 rng(7);
      Timer t;
      for (std::uint64_t i = 0; i < q; ++i) {
        hits += w.find(rng.below(n) * 3 + 1).has_value() ? 1 : 0;
      }
      const double secs = t.seconds();
      c.wall_rate = secs > 0 ? static_cast<double>(q) / secs : 0.0;
    }
    {
      Xoshiro256 rng(7);
      std::uint64_t transfers = 0;
      double modeled = 0.0;
      for (std::uint64_t i = 0; i < q; ++i) {
        d.mm().clear_cache();
        d.mm().reset_stats();
        hits += d.find(rng.below(n) * 3 + 1).has_value() ? 1 : 0;
        transfers += d.mm().stats().transfers;
        modeled += d.mm().modeled_seconds();
      }
      c.modeled_rate = modeled > 0 ? static_cast<double>(q) / modeled : c.wall_rate;
      c.transfers_per_op = static_cast<double>(transfers) / static_cast<double>(q);
    }
    if (hits == 0) std::fprintf(stderr, "warn: fenced finds all missed\n");
    g_cells.push_back(c);
  }

  // -- uniform-random cold finds: the filter / SIMD ablation -------------------
  // The build is a random permutation of a dense keyspace, so every tiered
  // segment spans essentially all of it and fences prune nothing: this
  // series isolates the two read-path levers fences cannot provide —
  // fingerprint filters (probe-count collapse) and the SIMD probe kernels
  // (wall time per intra-segment binary search).
  {
    struct UfindArm {
      const char* name;
      bool filters;
      bool simd;
    };
    const UfindArm arms[] = {{"cola-g8-fonly", false, false},
                             {"cola-g8-simd", false, true},
                             {"cola-g8-filt", true, false},
                             {"cola-g8-filt-simd", true, true}};
    constexpr std::size_t kArms = sizeof(arms) / sizeof(arms[0]);
    // Build every arm up front so the timed windows below can interleave
    // across arms: on a shared host, load drifts over the seconds a build
    // takes, and measuring the arms back-to-back would fold that drift
    // into the arm-vs-arm ratios this series exists to report.
    std::vector<std::unique_ptr<cola::Gcola<>>> warms;
    for (const UfindArm& arm : arms) {
      cola::ColaConfig cfg = g8;
      cfg.filters = arm.filters;
      cfg.simd = arm.simd;
      warms.push_back(std::make_unique<cola::Gcola<>>(cfg));
      build(*warms.back(), keys);
    }
    std::uint64_t hits = 0;
    // Wall: best of several windows per arm, windows interleaved
    // round-robin — these are short in-memory find loops, and on a
    // shared host any single window is jitter-bound.
    const std::uint64_t qw = 4096 * probes;
    const int kReps = 5;
    double best[kArms] = {};
    std::uint64_t probes_before[kArms];
    std::uint64_t skips_before[kArms];
    for (std::size_t a = 0; a < kArms; ++a) {
      probes_before[a] = warms[a]->stats().find_seg_probes;
      skips_before[a] = warms[a]->stats().filter_seg_skips;
    }
    for (int rep = 0; rep < kReps; ++rep) {
      for (std::size_t a = 0; a < kArms; ++a) {
        cola::Gcola<>& w = *warms[a];
        Xoshiro256 rng(13 + static_cast<std::uint64_t>(rep));
        Timer t;
        for (std::uint64_t i = 0; i < qw; ++i) {
          hits += w.find(rng.below(n)).has_value() ? 1 : 0;
        }
        const double secs = t.seconds();
        const double rate = secs > 0 ? static_cast<double>(qw) / secs : 0.0;
        if (rate > best[a]) best[a] = rate;
      }
    }
    const double walked = static_cast<double>(qw) * kReps;
    for (std::size_t a = 0; a < kArms; ++a) {
      const UfindArm& arm = arms[a];
      cola::ColaConfig cfg = g8;
      cfg.filters = arm.filters;
      cfg.simd = arm.simd;
      Cell c;
      c.structure = arm.name;
      c.order = "ufind";
      c.batch = 0;
      c.n = n;
      c.growth = 8;
      c.staging = cfg.staging_capacity;
      c.wall_rate = best[a];
      c.probed_per_find =
          static_cast<double>(warms[a]->stats().find_seg_probes -
                              probes_before[a]) /
          walked;
      c.skips_per_find =
          static_cast<double>(warms[a]->stats().filter_seg_skips -
                              skips_before[a]) /
          walked;
      warms[a].reset();
      {
        cola::Gcola<Key, Value, dam::dam_mem_model> d(
            cfg, dam::dam_mem_model(kBlock, mem));
        build(d, keys);
        const std::uint64_t q = 64 * probes;
        Xoshiro256 rng(13);
        std::uint64_t transfers = 0;
        double modeled = 0.0;
        for (std::uint64_t i = 0; i < q; ++i) {
          d.mm().clear_cache();
          d.mm().reset_stats();
          hits += d.find(rng.below(n)).has_value() ? 1 : 0;
          transfers += d.mm().stats().transfers;
          modeled += d.mm().modeled_seconds();
        }
        c.modeled_rate =
            modeled > 0 ? static_cast<double>(q) / modeled : c.wall_rate;
        c.transfers_per_op =
            static_cast<double>(transfers) / static_cast<double>(q);
      }
      g_cells.push_back(c);
    }
    if (hits == 0) std::fprintf(stderr, "warn: uniform cold finds all missed\n");
  }

  // -- merge-join --------------------------------------------------------------
  {
    cola::Gcola<> wa(g8);
    cola::Gcola<Key, Value, dam::dam_mem_model> da(g8,
                                                   dam::dam_mem_model(kBlock, mem));
    btree::BTree<> wb(kBlock);
    btree::BTree<Key, Value, dam::dam_mem_model> db(kBlock,
                                                    dam::dam_mem_model(kBlock, mem));
    build(wa, keys);
    build(da, keys);
    // The right side holds [n/2, 3n/2): the top half overlaps.
    std::vector<std::uint64_t> bkeys(n);
    for (std::uint64_t i = 0; i < n; ++i) bkeys[i] = keys[i] + n / 2;
    build(wb, bkeys);
    build(db, bkeys);
    Cell c;
    c.structure = "cola-g8";
    c.order = "mjoin";
    c.batch = 0;
    c.n = n;
    c.growth = 8;
    c.staging = g8.staging_capacity;
    std::uint64_t rows = 0;
    {
      Timer t;
      api::merge_join(wa, wb, [&](Key, Value, Value) { ++rows; });
      const double secs = t.seconds();
      c.wall_rate = secs > 0 ? static_cast<double>(rows) / secs : 0.0;
    }
    {
      da.mm().clear_cache();
      da.mm().reset_stats();
      db.mm().clear_cache();
      db.mm().reset_stats();
      std::uint64_t drows = 0;
      api::merge_join(da, db, [&](Key, Value, Value) { ++drows; });
      const double modeled = da.mm().modeled_seconds() + db.mm().modeled_seconds();
      const std::uint64_t transfers =
          da.mm().stats().transfers + db.mm().stats().transfers;
      c.modeled_rate = modeled > 0 ? static_cast<double>(drows) / modeled : c.wall_rate;
      c.transfers_per_op = drows > 0
                               ? static_cast<double>(transfers) /
                                     static_cast<double>(drows)
                               : 0.0;
      if (drows != rows) std::fprintf(stderr, "warn: join row mismatch\n");
    }
    g_cells.push_back(c);
  }

  // -- tables ------------------------------------------------------------------
  const auto cell_at = [&](const std::string& s, const std::string& o,
                           std::uint64_t b) -> const Cell* {
    for (const Cell& c : g_cells) {
      if (c.structure == s && c.order == o && c.batch == b) return &c;
    }
    return nullptr;
  };
  std::vector<std::string> scan_names;
  for (const Cell& c : g_cells) {
    if (c.order != "scan") continue;
    bool seen = false;
    for (const auto& s : scan_names) seen = seen || s == c.structure;
    if (!seen) scan_names.push_back(c.structure);
  }
  std::printf("# range scans: modeled ms/query by window length L\n");
  {
    Table t([&] {
      std::vector<std::string> headers{"L"};
      for (const auto& s : scan_names) headers.push_back(s);
      return headers;
    }());
    for (const std::uint64_t len : lengths) {
      std::vector<std::string> row{std::to_string(len)};
      for (const auto& s : scan_names) {
        const Cell* c = cell_at(s, "scan", len);
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.2f",
                      c != nullptr && c->modeled_rate > 0 ? 1e3 / c->modeled_rate
                                                          : 0.0);
        row.emplace_back(buf);
      }
      t.add_row(std::move(row));
    }
    t.print();
  }
  std::printf("\n# scan-under-ingest: wall probes/sec (256-entry batch + "
              "snapshot + drain L)\n");
  for (const std::uint64_t len : {256ULL, 4'096ULL}) {
    const Cell* c = cell_at("cola-g8", "uscan", len);
    if (c != nullptr) {
      std::printf("  cola-g8  L=%-5llu %s  (%.2f transfers/probe)\n",
                  static_cast<unsigned long long>(len),
                  format_rate(c->wall_rate).c_str(), c->transfers_per_op);
    }
  }
  std::printf("\n# cursor seek+drain: wall queries/sec (drain length = batch)\n");
  for (const auto& s : {"cola", "cola-g8", "btree"}) {
    for (const std::uint64_t len : {16ULL, 256ULL}) {
      const Cell* c = cell_at(s, "seek", len);
      if (c != nullptr) {
        std::printf("  %-8s drain %-4llu %s\n", s,
                    static_cast<unsigned long long>(len),
                    format_rate(c->wall_rate).c_str());
      }
    }
  }
  {
    const Cell* on = cell_at("cola-g8", "find", 0);
    const Cell* off = cell_at("cola-g8-nofence", "find", 0);
    if (on != nullptr && off != nullptr && on->transfers_per_op > 0) {
      std::printf("\n# fence keys on time-partitioned finds: %.4f -> %.4f "
                  "transfers/find (%.2fx fewer), wall %.2fx faster\n",
                  off->transfers_per_op, on->transfers_per_op,
                  off->transfers_per_op / on->transfers_per_op,
                  on->wall_rate / off->wall_rate);
    }
  }
  {
    const Cell* fo = cell_at("cola-g8-fonly", "ufind", 0);
    const Cell* sd = cell_at("cola-g8-simd", "ufind", 0);
    const Cell* fi = cell_at("cola-g8-filt", "ufind", 0);
    const Cell* fs = cell_at("cola-g8-filt-simd", "ufind", 0);
    if (fo != nullptr && sd != nullptr && fi != nullptr && fs != nullptr &&
        fi->probed_per_find > 0 && fo->wall_rate > 0) {
      std::printf("\n# uniform-random cold finds (fences prune nothing):\n"
                  "#   probed segs/find %.2f (fences only) -> %.2f (+filters),"
                  " a %.1fx cut (%.2f filter skips/find)\n"
                  "#   wall vs fences-only scalar: %.2fx (+simd), %.2fx"
                  " (+filters), %.2fx (+filters+simd)\n",
                  fo->probed_per_find, fi->probed_per_find,
                  fo->probed_per_find / fi->probed_per_find,
                  fi->skips_per_find, sd->wall_rate / fo->wall_rate,
                  fi->wall_rate / fo->wall_rate, fs->wall_rate / fo->wall_rate);
    }
  }
  {
    const Cell* mj = cell_at("cola-g8", "mjoin", 0);
    if (mj != nullptr) {
      std::printf("\n# merge-join cola-g8 x btree: %s rows/sec wall, "
                  "%.4f transfers/row\n",
                  format_rate(mj->wall_rate).c_str(), mj->transfers_per_op);
    }
  }
  std::printf("\nexpected shape: at large L the contiguous structures (COLA,"
              " CO B-tree) stream the range while the B-tree and BRT hop"
              " between scattered blocks — the paper's inter-block locality"
              " argument.\n");

  // -- JSON --------------------------------------------------------------------
  std::string json = "[";
  for (std::size_t i = 0; i < g_cells.size(); ++i) {
    const Cell& c = g_cells[i];
    char extra[128] = "";
    if (c.probed_per_find >= 0.0) {
      std::snprintf(extra, sizeof extra,
                    ", \"probed_per_find\": %.4f, "
                    "\"filter_skips_per_find\": %.4f",
                    c.probed_per_find, c.skips_per_find);
    }
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "%s\n  {\"structure\": \"%s\", \"order\": \"%s\", \"batch\": %llu, "
        "\"n\": %llu, \"growth\": %u, \"staging\": %llu, \"wall_rate\": %.1f, "
        "\"modeled_rate\": %.1f, \"transfers_per_op\": %.6f%s}",
        i == 0 ? "" : ",", c.structure.c_str(), c.order.c_str(),
        static_cast<unsigned long long>(c.batch),
        static_cast<unsigned long long>(c.n), c.growth,
        static_cast<unsigned long long>(c.staging), c.wall_rate, c.modeled_rate,
        c.transfers_per_op, extra);
    json += buf;
  }
  json += "\n]\n";
  std::printf("\nBEGIN_JSON\n%sEND_JSON\n", json.c_str());
  if (json_out != nullptr) {
    std::FILE* f = std::fopen(json_out, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_out);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  return 0;
}
