// Manifest: the single source of truth tying a WAL epoch to the live
// segment set. One small file, rewritten whole and installed atomically:
//
//   MANIFEST.tmp  <- encode + fsync
//   rename(MANIFEST.tmp, MANIFEST)
//   sync_dir()    <- the commit point
//
// Format:
//   [u64 magic "COSMAN01"] [u64 covered_seqno] [u64 durable_seqno]
//   [u64 next_file_no]
//   [u32 nsegs] nsegs x { u32 name_len, name, u64 seg_id, u32 level,
//                         u64 count }
//   [u32 crc32c(everything before)]
//
// covered_seqno: every op with seqno <= covered is fully represented by
// the listed segments; recovery replays only WAL records beyond it.
// durable_seqno: the WAL was fsynced through this seqno when the manifest
// was installed (every install happens right after a WAL sync barrier).
// Replay uses it to tell mid-log corruption (a CRC break below this
// boundary with intact records after it — durable data, never truncated)
// from a torn unsynced tail (safe to truncate; it was never acknowledged).
// Segments are listed in CREATION order — for this fold discipline that
// is also content-age order, so replaying them in list order with
// newest-wins semantics reconstructs the exact pre-crash merge view.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/crc32c.hpp"
#include "storage/env.hpp"

namespace costream::storage {

inline constexpr std::uint64_t kManifestMagic = 0x434f534d414e3031ULL;  // COSMAN01
inline constexpr const char* kManifestName = "MANIFEST";
inline constexpr const char* kManifestTmpName = "MANIFEST.tmp";

struct SegmentMeta {
  std::string name;
  std::uint64_t seg_id = 0;
  std::uint32_t level = 0;
  std::uint64_t count = 0;
};

struct Manifest {
  std::uint64_t covered_seqno = 0;
  std::uint64_t durable_seqno = 0;  // WAL fsynced through here at install
  std::uint64_t next_file_no = 0;  // next WAL file number to allocate
  std::vector<SegmentMeta> segments;  // creation order == content-age order
};

namespace manifest_detail {

inline void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out.append(b, 4);
}

inline void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.append(b, 8);
}

inline std::uint32_t get_u32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline std::uint64_t get_u64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace manifest_detail

inline std::string encode_manifest(const Manifest& m) {
  std::string out;
  manifest_detail::put_u64(out, kManifestMagic);
  manifest_detail::put_u64(out, m.covered_seqno);
  manifest_detail::put_u64(out, m.durable_seqno);
  manifest_detail::put_u64(out, m.next_file_no);
  manifest_detail::put_u32(out, static_cast<std::uint32_t>(m.segments.size()));
  for (const auto& s : m.segments) {
    manifest_detail::put_u32(out, static_cast<std::uint32_t>(s.name.size()));
    out += s.name;
    manifest_detail::put_u64(out, s.seg_id);
    manifest_detail::put_u32(out, s.level);
    manifest_detail::put_u64(out, s.count);
  }
  manifest_detail::put_u32(out, crc32c(out.data(), out.size()));
  return out;
}

inline Manifest decode_manifest(const std::string& data) {
  if (data.size() < 40) throw CorruptionError("manifest: truncated");
  const std::uint32_t stored =
      manifest_detail::get_u32(data.data() + data.size() - 4);
  if (crc32c(data.data(), data.size() - 4) != stored) {
    throw CorruptionError("manifest: CRC mismatch");
  }
  if (manifest_detail::get_u64(data.data()) != kManifestMagic) {
    throw CorruptionError("manifest: bad magic");
  }
  Manifest m;
  m.covered_seqno = manifest_detail::get_u64(data.data() + 8);
  m.durable_seqno = manifest_detail::get_u64(data.data() + 16);
  m.next_file_no = manifest_detail::get_u64(data.data() + 24);
  const std::uint32_t nsegs = manifest_detail::get_u32(data.data() + 32);
  std::size_t off = 36;
  m.segments.reserve(nsegs);
  for (std::uint32_t i = 0; i < nsegs; ++i) {
    if (off + 4 > data.size() - 4) throw CorruptionError("manifest: truncated");
    const std::uint32_t nlen = manifest_detail::get_u32(data.data() + off);
    off += 4;
    if (nlen > 4096 || off + nlen + 20 > data.size() - 4) {
      throw CorruptionError("manifest: truncated");
    }
    SegmentMeta s;
    s.name.assign(data.data() + off, nlen);
    off += nlen;
    s.seg_id = manifest_detail::get_u64(data.data() + off);
    s.level = manifest_detail::get_u32(data.data() + off + 8);
    s.count = manifest_detail::get_u64(data.data() + off + 12);
    off += 20;
    m.segments.push_back(std::move(s));
  }
  if (off != data.size() - 4) throw CorruptionError("manifest: trailing bytes");
  return m;
}

/// Write + fsync MANIFEST.tmp, atomically rename over MANIFEST, commit
/// the namespace. On return (no exception) the manifest is durable.
inline void install_manifest(StorageEnv& env, const Manifest& m) {
  const std::string bytes = encode_manifest(m);
  auto f = env.create(kManifestTmpName);
  f->append(bytes.data(), bytes.size());
  f->sync();
  f.reset();
  env.rename_file(kManifestTmpName, kManifestName);
  env.sync_dir();
}

/// Load the current manifest; nullopt when none exists (fresh directory).
/// CorruptionError propagates — the caller decides strict vs read-only.
inline std::optional<Manifest> load_manifest(StorageEnv& env) {
  if (!env.exists(kManifestName)) return std::nullopt;
  auto f = env.open_read(kManifestName);
  std::string data(static_cast<std::size_t>(f->size()), '\0');
  if (!data.empty()) read_fully(*f, 0, data.data(), data.size());
  return decode_manifest(data);
}

}  // namespace costream::storage
