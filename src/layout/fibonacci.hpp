// Fibonacci machinery for the shuttle tree (paper, Section 2).
//
// The shuttle tree bases its buffer sizes and its van-Emde-Boas-style layout
// on Fibonacci numbers:
//
//  * the vEB recursion splits a height-h tree at the largest Fibonacci
//    number strictly below h (above the halfway point, unlike classic vEB);
//  * the "Fibonacci factor" x(h) decides which buffers a node owns: if h is
//    Fibonacci then x(h) = h, otherwise x(h) = x(h - f) for f the largest
//    Fibonacci below h (x(h) is the smallest term of h's Zeckendorf
//    decomposition);
//  * a node whose child height h has x(h) = F_k owns buffers of heights
//    F_H(j) for j = j0..k, where H(j) = j - ceil(2 log_phi j) is the paper's
//    buffer-height-index function.
//
// H(j) is an asymptotic construct: it first goes positive around j = 12
// (tree height F_12 = 144), far beyond any laptop-scale tree. The runnable
// shuttle tree therefore accepts a configurable height-index offset
// (practical_buffer_heights) that preserves the schedule's structure —
// geometrically increasing buffer heights keyed by the Fibonacci factor —
// at reachable scales. DESIGN.md documents this substitution; the paper's
// exact H() is implemented and tested here as well.
#pragma once

#include <cstdint>
#include <vector>

namespace costream::layout {

/// Largest index k such that F_k fits in uint64 (F_93 overflows).
inline constexpr int kMaxFibIndex = 92;

/// F_k with F_0 = 0, F_1 = 1. Precondition: 0 <= k <= kMaxFibIndex.
std::uint64_t fib(int k) noexcept;

/// True iff n is a Fibonacci number (n >= 1; F_1 = F_2 = 1 counts once).
bool is_fib(std::uint64_t n) noexcept;

/// Largest Fibonacci number strictly smaller than h. Precondition: h >= 2.
/// This is the vEB split height for a height-h (sub)tree.
std::uint64_t largest_fib_below(std::uint64_t h) noexcept;

/// Index k (>= 2) of the largest Fibonacci number <= n. Precondition: n >= 1.
/// (Index 2 is returned for n in [1,2) so that fib(result) is well defined
/// and unique: we never return index 1.)
int fib_index_at_most(std::uint64_t n) noexcept;

/// The Fibonacci factor x(h) (paper, Section 2). Precondition: h >= 1.
/// Always itself a Fibonacci number; equals the smallest Zeckendorf term.
std::uint64_t fibonacci_factor(std::uint64_t h) noexcept;

/// The paper's buffer-height-index function H(j) = j - ceil(2 log_phi j).
/// May be negative for small j (meaning: no buffer at that index).
int buffer_height_index(int j) noexcept;

/// Buffer heights for a node whose child height is h, per the paper's exact
/// schedule: { F_H(j) : j0 <= j <= k, F_H(j) >= min_height } where
/// F_k = x(h). Sorted ascending, deduplicated.
std::vector<std::uint64_t> paper_buffer_heights(std::uint64_t h, int j0 = 2,
                                                std::uint64_t min_height = 2);

/// The laptop-scale schedule used by the runnable shuttle tree: identical
/// shape, but with H(j) replaced by j - delta so buffers exist at reachable
/// tree heights. delta = 2 gives largest buffer height F_{k-2} (one "double
/// step" below the subtree, mirroring the paper's F_{k - 2 ceil(log_phi k)}).
std::vector<std::uint64_t> practical_buffer_heights(std::uint64_t h, int delta = 2,
                                                    std::uint64_t min_height = 1);

}  // namespace costream::layout
