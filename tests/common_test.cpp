// Tests for the workload generators, RNG, and statistics helpers that the
// figure benches depend on — a wrong generator silently invalidates every
// experiment, so these are load-bearing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>

#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/workload.hpp"

namespace costream {
namespace {

TEST(Rng, Deterministic) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a() == b();
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowIsInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10'000; ++i) ASSERT_LT(rng.below(97), 97u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Xoshiro256 rng(7);
  int buckets[10] = {};
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++buckets[rng.below(10)];
  for (int b = 0; b < 10; ++b) {
    EXPECT_NEAR(buckets[b], n / 10, n / 100) << b;
  }
}

TEST(Rng, UnitInHalfOpenInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.unit();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Workload, AscendingDescending) {
  const KeyStream asc(KeyOrder::kAscending, 100);
  const KeyStream desc(KeyOrder::kDescending, 100);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(asc.key_at(i), i);
    EXPECT_EQ(desc.key_at(i), 99 - i);
  }
}

TEST(Workload, RandomIsReplayable) {
  const KeyStream a(KeyOrder::kRandom, 1'000, 5);
  const KeyStream b(KeyOrder::kRandom, 1'000, 5);
  for (std::uint64_t i = 0; i < 1'000; ++i) ASSERT_EQ(a.key_at(i), b.key_at(i));
}

TEST(Workload, RandomSeedsDiffer) {
  const KeyStream a(KeyOrder::kRandom, 100, 5);
  const KeyStream b(KeyOrder::kRandom, 100, 6);
  int same = 0;
  for (std::uint64_t i = 0; i < 100; ++i) same += a.key_at(i) == b.key_at(i);
  EXPECT_LT(same, 3);
}

TEST(Workload, RandomKeysMostlyDistinct) {
  const KeyStream ks(KeyOrder::kRandom, 100'000, 1);
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < ks.size(); ++i) seen.insert(ks.key_at(i));
  EXPECT_GT(seen.size(), 99'990u) << "64-bit keys should rarely collide";
}

TEST(Workload, ClusteredHasRuns) {
  const KeyStream ks(KeyOrder::kClustered, 1'000, 3);
  // Within a 256-run, keys are consecutive.
  for (std::uint64_t i = 1; i < 256; ++i) {
    EXPECT_EQ(ks.key_at(i), ks.key_at(i - 1) + 1) << i;
  }
}

TEST(Workload, TakeMatchesKeyAt) {
  const KeyStream ks(KeyOrder::kRandom, 500, 9);
  const auto v = ks.take(500);
  ASSERT_EQ(v.size(), 500u);
  for (std::uint64_t i = 0; i < 500; ++i) ASSERT_EQ(v[i], ks.key_at(i));
}

TEST(Workload, OrderRoundTrip) {
  for (KeyOrder o : {KeyOrder::kRandom, KeyOrder::kAscending, KeyOrder::kDescending,
                     KeyOrder::kClustered, KeyOrder::kZipfHot}) {
    EXPECT_EQ(key_order_from_string(to_string(o)), o);
  }
  EXPECT_THROW(key_order_from_string("bogus"), std::invalid_argument);
}

TEST(Workload, OpMixProportions) {
  const auto ops = generate_ops(100'000, 1'000, OpMix{}, 1);
  std::uint64_t counts[4] = {};
  for (const TraceOp& op : ops) ++counts[static_cast<int>(op.kind)];
  EXPECT_NEAR(counts[0], 70'000, 2'000);  // insert
  EXPECT_NEAR(counts[1], 10'000, 1'500);  // erase
  EXPECT_NEAR(counts[2], 15'000, 1'500);  // find
  EXPECT_NEAR(counts[3], 5'000, 1'000);   // range
}

TEST(Workload, OpsKeysWithinUniverse) {
  const auto ops = generate_ops(10'000, 500, OpMix{}, 2);
  for (const TraceOp& op : ops) ASSERT_LT(op.key, 500u);
}

TEST(Workload, RejectsEmptyUniverse) {
  EXPECT_THROW(generate_ops(10, 0, OpMix{}, 1), std::invalid_argument);
}

TEST(Stats, RunningBasics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, LatencyPercentiles) {
  LatencyRecorder r;
  for (int i = 1; i <= 100; ++i) r.add(static_cast<double>(i));
  EXPECT_NEAR(r.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(r.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(r.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(r.percentile(99), 99.01, 0.05);
  EXPECT_DOUBLE_EQ(r.max(), 100.0);
  EXPECT_DOUBLE_EQ(r.mean(), 50.5);
}

TEST(Stats, PercentileValidation) {
  LatencyRecorder r;
  EXPECT_THROW(r.percentile(50), std::logic_error);
  r.add(1.0);
  EXPECT_THROW(r.percentile(101), std::invalid_argument);
}

TEST(Stats, RateFormatting) {
  EXPECT_EQ(format_rate(123.0), "123.0");
  EXPECT_EQ(format_rate(1'230.0), "1.2k");
  EXPECT_EQ(format_rate(1'230'000.0), "1.23M");
  EXPECT_EQ(format_rate(2.5e9), "2.50G");
}

TEST(Stats, ByteFormatting) {
  EXPECT_EQ(format_bytes(512), "512.0 B");
  EXPECT_EQ(format_bytes(4096), "4.0 KiB");
  EXPECT_EQ(format_bytes(3.5 * 1024 * 1024), "3.5 MiB");
}

TEST(Options, EnvParsing) {
  ::setenv("COSTREAM_TEST_U64", "1234", 1);
  EXPECT_EQ(env_u64("COSTREAM_TEST_U64", 7), 1234u);
  ::unsetenv("COSTREAM_TEST_U64");
  EXPECT_EQ(env_u64("COSTREAM_TEST_U64", 7), 7u);
  ::setenv("COSTREAM_TEST_U64", "garbage", 1);
  EXPECT_EQ(env_u64("COSTREAM_TEST_U64", 7), 7u);
  ::unsetenv("COSTREAM_TEST_U64");
}

TEST(Options, FromEnvScaling) {
  ::setenv("REPRO_SCALE", "4", 1);
  const auto opts = BenchOptions::from_env(1 << 20);
  EXPECT_EQ(opts.max_n, (1u << 20) / 4);
  ::unsetenv("REPRO_SCALE");
}

}  // namespace
}  // namespace costream
