// Tests for the Fibonacci machinery underlying the shuttle tree's buffer
// schedule and layout (paper Section 2).
#include <gtest/gtest.h>

#include <cstdint>

#include "layout/fibonacci.hpp"

namespace costream::layout {
namespace {

TEST(Fibonacci, BaseValues) {
  EXPECT_EQ(fib(0), 0u);
  EXPECT_EQ(fib(1), 1u);
  EXPECT_EQ(fib(2), 1u);
  EXPECT_EQ(fib(3), 2u);
  EXPECT_EQ(fib(10), 55u);
  EXPECT_EQ(fib(20), 6765u);
}

TEST(Fibonacci, RecurrenceHoldsEverywhere) {
  for (int k = 2; k <= kMaxFibIndex; ++k) {
    EXPECT_EQ(fib(k), fib(k - 1) + fib(k - 2)) << k;
  }
}

TEST(Fibonacci, NoOverflowAtMaxIndex) {
  EXPECT_GT(fib(kMaxFibIndex), fib(kMaxFibIndex - 1));
}

TEST(Fibonacci, IsFib) {
  EXPECT_TRUE(is_fib(1));
  EXPECT_TRUE(is_fib(2));
  EXPECT_TRUE(is_fib(3));
  EXPECT_FALSE(is_fib(4));
  EXPECT_TRUE(is_fib(5));
  EXPECT_FALSE(is_fib(6));
  EXPECT_FALSE(is_fib(7));
  EXPECT_TRUE(is_fib(8));
  EXPECT_TRUE(is_fib(6765));
  EXPECT_FALSE(is_fib(6766));
}

TEST(Fibonacci, LargestFibBelow) {
  EXPECT_EQ(largest_fib_below(2), 1u);
  EXPECT_EQ(largest_fib_below(3), 2u);
  EXPECT_EQ(largest_fib_below(4), 3u);
  EXPECT_EQ(largest_fib_below(5), 3u);
  EXPECT_EQ(largest_fib_below(6), 5u);
  EXPECT_EQ(largest_fib_below(8), 5u);
  EXPECT_EQ(largest_fib_below(9), 8u);
  EXPECT_EQ(largest_fib_below(100), 89u);
}

TEST(Fibonacci, SplitIsAboveHalfway) {
  // The paper requires the vEB split height (largest Fibonacci below h) to
  // be above the halfway point h/2 — the property that distinguishes the
  // shuttle-tree layout from the classic vEB layout.
  for (std::uint64_t h = 3; h <= 10'000; ++h) {
    EXPECT_GE(2 * largest_fib_below(h), h) << h;
  }
}

TEST(Fibonacci, FibIndexAtMost) {
  EXPECT_EQ(fib_index_at_most(1), 2);
  EXPECT_EQ(fib_index_at_most(2), 3);
  EXPECT_EQ(fib_index_at_most(3), 4);
  EXPECT_EQ(fib_index_at_most(4), 4);
  EXPECT_EQ(fib_index_at_most(5), 5);
  EXPECT_EQ(fib_index_at_most(12), 6);
  EXPECT_EQ(fib_index_at_most(13), 7);
}

TEST(FibonacciFactor, FibonacciNumbersAreTheirOwnFactor) {
  for (int k = 2; k <= 30; ++k) {
    EXPECT_EQ(fibonacci_factor(fib(k)), fib(k)) << k;
  }
}

TEST(FibonacciFactor, IsAlwaysAFibonacciNumber) {
  for (std::uint64_t h = 1; h <= 20'000; ++h) {
    EXPECT_TRUE(is_fib(fibonacci_factor(h))) << h;
  }
}

TEST(FibonacciFactor, MatchesDefinitionByPeeling) {
  // x(h) = x(h - f) for f the largest Fibonacci below h.
  for (std::uint64_t h = 4; h <= 5'000; ++h) {
    if (is_fib(h)) continue;
    EXPECT_EQ(fibonacci_factor(h), fibonacci_factor(h - largest_fib_below(h))) << h;
  }
}

TEST(FibonacciFactor, SmallValues) {
  // x: 1->1, 2->2, 3->3, 4->x(1)=1, 5->5, 6->x(1)=1, 7->x(2)=2, 8->8,
  // 9->x(1)=1, 10->x(2)=2, 11->x(3)=3, 12->x(4)=1, 13->13.
  const std::uint64_t expect[] = {1, 2, 3, 1, 5, 1, 2, 8, 1, 2, 3, 1, 13};
  for (std::uint64_t h = 1; h <= 13; ++h) {
    EXPECT_EQ(fibonacci_factor(h), expect[h - 1]) << h;
  }
}

// Lemma 15: along the root-to-leaf path of a height-F_k shuttle tree, the
// number of nodes (one per height 1..F_k) with Fibonacci factor >= F_j is
// exactly F_{k-j+2}.
TEST(FibonacciFactor, Lemma15PathCounts) {
  for (int k = 3; k <= 16; ++k) {
    for (int j = 2; j <= k; ++j) {
      std::uint64_t count = 0;
      for (std::uint64_t h = 1; h <= fib(k); ++h) {
        if (fibonacci_factor(h) >= fib(j)) ++count;
      }
      EXPECT_EQ(count, fib(k - j + 2)) << "k=" << k << " j=" << j;
    }
  }
}

TEST(BufferHeightIndex, PaperValues) {
  // H(j) = j - ceil(2 log_phi j): negative/small until j ~ 12.
  EXPECT_LT(buffer_height_index(4), 1);
  EXPECT_LT(buffer_height_index(8), 1);
  EXPECT_GE(buffer_height_index(12), 1);
  // Monotone growth for large j (H(j+1) >= H(j) - allows equal).
  for (int j = 12; j < 80; ++j) {
    EXPECT_GE(buffer_height_index(j + 1), buffer_height_index(j)) << j;
  }
}

TEST(BufferHeightIndex, DominatedByJ) {
  // H(j) < j for j >= 2 (a buffer is strictly smaller than its subtree;
  // j = 1 is degenerate since log 1 = 0).
  for (int j = 2; j < 90; ++j) {
    EXPECT_LT(buffer_height_index(j), j) << j;
  }
}

TEST(BufferHeights, PaperScheduleEmptyAtSmallHeights) {
  // With the paper's exact H, laptop-height trees have no buffers at all —
  // the reason the runnable tree uses the practical offset (DESIGN.md 1.3).
  for (std::uint64_t h = 1; h <= 55; ++h) {
    EXPECT_TRUE(paper_buffer_heights(h).empty()) << h;
  }
}

TEST(BufferHeights, PaperScheduleNonEmptyAtScale) {
  // A node whose child height is F_14 = 377 owns buffers under exact H.
  EXPECT_FALSE(paper_buffer_heights(fib(14)).empty());
}

TEST(BufferHeights, PracticalScheduleKeyedByFibonacciFactor) {
  // Child height 8 = F_6: factor F_6, buffers F_{j-2} for j = 3..6:
  // heights F_1..F_4 = 1, 1, 2, 3 -> deduplicated {1, 2, 3}.
  const auto hs = practical_buffer_heights(8, 2);
  ASSERT_EQ(hs.size(), 3u);
  EXPECT_EQ(hs[0], 1u);
  EXPECT_EQ(hs[1], 2u);
  EXPECT_EQ(hs[2], 3u);
}

TEST(BufferHeights, PracticalScheduleAscendingAndGeometric) {
  for (std::uint64_t h = 1; h <= 400; ++h) {
    const auto hs = practical_buffer_heights(h, 2);
    for (std::size_t i = 1; i < hs.size(); ++i) {
      EXPECT_LT(hs[i - 1], hs[i]) << h;
    }
    // Largest buffer height stays below the Fibonacci factor itself.
    if (!hs.empty()) {
      EXPECT_LT(hs.back(), std::max<std::uint64_t>(fibonacci_factor(h), 2)) << h;
    }
  }
}

TEST(BufferHeights, NoBuffersWhenFactorTiny) {
  // x(h) = 1 (h = 4, 6, 9, ...) yields no buffers: such nodes are roots, not
  // leaves, of recursive subtrees (paper Lemma 3 discussion).
  EXPECT_TRUE(practical_buffer_heights(4, 2).empty());
  EXPECT_TRUE(practical_buffer_heights(6, 2).empty());
  EXPECT_TRUE(practical_buffer_heights(9, 2).empty());
}

}  // namespace
}  // namespace costream::layout
