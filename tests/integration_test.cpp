// Cross-structure integration tests: every dictionary in the library is
// driven through identical traces via the type-erased facade and must agree
// with the reference and with each other — the strongest end-to-end check
// that the seven structures implement the same semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "api/dictionary.hpp"
#include "brt/brt.hpp"
#include "btree/btree.hpp"
#include "cob/cob_tree.hpp"
#include "cola/cola.hpp"
#include "cola/deamortized_cola.hpp"
#include "cola/deamortized_fc_cola.hpp"
#include "cola/lookahead_array.hpp"
#include "common/workload.hpp"
#include "model_helpers.hpp"
#include "shuttle/shuttle_tree.hpp"

namespace costream {
namespace {

std::vector<api::AnyDictionary> all_dictionaries() {
  std::vector<api::AnyDictionary> ds;
  ds.emplace_back("cola-g2", cola::Gcola<>{});
  ds.emplace_back("cola-g4", cola::Gcola<>{cola::ColaConfig{4, 0.1}});
  ds.emplace_back("basic-cola", cola::make_basic_cola<>());
  ds.emplace_back("lookahead-array", cola::make_lookahead_array<>(4096, 0.5));
  ds.emplace_back("deamortized-cola", cola::DeamortizedCola<>{});
  ds.emplace_back("deamortized-fc-cola", cola::DeamortizedFcCola<>{});
  ds.emplace_back("btree", btree::BTree<>{256});
  ds.emplace_back("brt", brt::Brt<>{256});
  ds.emplace_back("cob-tree", cob::CobTree<>{});
  ds.emplace_back("shuttle", shuttle::ShuttleTree<>{});
  return ds;
}

class IntegrationSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntegrationSeeds, AllStructuresAgreeOnMixedTrace) {
  auto dicts = all_dictionaries();
  testing::RefDict ref;
  const auto ops = generate_ops(4'000, 1'000, OpMix{}, GetParam());
  std::size_t i = 0;
  for (const TraceOp& op : ops) {
    switch (op.kind) {
      case TraceOpKind::kInsert:
        for (auto& d : dicts) d.insert(op.key, op.value);
        ref.insert(op.key, op.value);
        break;
      case TraceOpKind::kErase:
        for (auto& d : dicts) d.erase(op.key);
        ref.erase(op.key);
        break;
      case TraceOpKind::kFind: {
        const auto want = ref.find(op.key);
        for (auto& d : dicts) {
          const auto got = d.find(op.key);
          ASSERT_EQ(got.has_value(), want.has_value())
              << d.name() << " op " << i << " key " << op.key;
          if (want) {
            ASSERT_EQ(*got, *want) << d.name() << " op " << i;
          }
        }
        break;
      }
      case TraceOpKind::kRange: {
        const auto want = ref.range(op.key, op.hi);
        for (auto& d : dicts) {
          std::vector<Entry<>> got;
          d.range_for_each(op.key, op.hi,
                           [&](Key k, Value v) { got.push_back(Entry<>{k, v}); });
          ASSERT_EQ(got.size(), want.size()) << d.name() << " op " << i;
          for (std::size_t j = 0; j < got.size(); ++j) {
            ASSERT_EQ(got[j].key, want[j].key) << d.name();
            ASSERT_EQ(got[j].value, want[j].value) << d.name();
          }
        }
        break;
      }
    }
    ++i;
  }
  // Final sweep: every structure agrees with the reference on every live key.
  for (const auto& [k, v] : ref.map()) {
    for (auto& d : dicts) {
      const auto got = d.find(k);
      ASSERT_TRUE(got.has_value()) << d.name() << " key " << k;
      ASSERT_EQ(*got, v) << d.name() << " key " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegrationSeeds, ::testing::Values(101, 202, 303));

TEST(Integration, InsertOnlyHeavy) {
  auto dicts = all_dictionaries();
  testing::RefDict ref;
  const KeyStream ks(KeyOrder::kRandom, 8'000, 77);
  for (std::uint64_t i = 0; i < ks.size(); ++i) {
    for (auto& d : dicts) d.insert(ks.key_at(i), i);
    ref.insert(ks.key_at(i), i);
  }
  for (const auto& [k, v] : ref.map()) {
    for (auto& d : dicts) {
      ASSERT_EQ(d.find(k).value(), v) << d.name();
    }
  }
}

TEST(Integration, FullRangeScanAgreesEverywhere) {
  auto dicts = all_dictionaries();
  testing::RefDict ref;
  const KeyStream ks(KeyOrder::kRandom, 3'000, 88);
  for (std::uint64_t i = 0; i < ks.size(); ++i) {
    const Key k = ks.key_at(i) % 10'000;
    for (auto& d : dicts) d.insert(k, i);
    ref.insert(k, i);
  }
  const auto want = ref.range(0, 10'000);
  for (auto& d : dicts) {
    std::vector<Entry<>> got;
    d.range_for_each(0, 10'000, [&](Key k, Value v) { got.push_back(Entry<>{k, v}); });
    ASSERT_EQ(got.size(), want.size()) << d.name();
    for (std::size_t j = 0; j < got.size(); ++j) {
      ASSERT_EQ(got[j].key, want[j].key) << d.name() << " pos " << j;
      ASSERT_EQ(got[j].value, want[j].value) << d.name() << " pos " << j;
    }
  }
}

}  // namespace
}  // namespace costream
