// Cached-key loser tree — the k-way fusion engine behind the cursor
// subsystem (every structure's Cursor merges its per-level / per-segment /
// per-buffer sources through one of these).
//
// The tree is externally driven: the caller owns the sources, declares each
// alive source's current key before build(), and after consuming the winning
// source's head replays the path from that leaf with the source's new state.
// Internal nodes cache their match's LOSER (key + source index + liveness),
// so a replay costs log2(n) compares on in-cache copies with no pointer
// chasing — the same trick the COLA's fold merge uses, packaged as a
// reusable object so repeated seeks are allocation-free once the node
// arrays reach their high-water size.
//
// Tie order: among equal keys the source with the SMALLER index wins.
// Cursors order their sources newest-first (the staging arena, then levels
// shallow to deep, then segments newest to oldest), so the winner of a key
// tie is always the newest copy — which is what makes newest-wins dedup and
// tombstone suppression a single "same key as last emitted?" compare in the
// consumer.
#pragma once

#include <cstdint>
#include <vector>

namespace costream {

template <class K>
class LoserTree {
 public:
  /// Prepare for `n` sources, all initially dead. O(n) and allocation-free
  /// once the arrays have reached their high-water capacity.
  void reset(std::size_t n) {
    n_ = n;
    tsize_ = 1;
    while (tsize_ < n_) tsize_ <<= 1;
    wkey_.assign(2 * tsize_, K{});
    widx_.assign(2 * tsize_, 0);
    walive_.assign(2 * tsize_, 0);
    lkey_.assign(tsize_, K{});
    lidx_.assign(tsize_, 0);
    lalive_.assign(tsize_, 0);
  }

  /// Declare source `i` alive with current head `key` (call between reset
  /// and build; sources not declared stay dead).
  void declare(std::size_t i, const K& key) {
    wkey_[tsize_ + i] = key;
    widx_[tsize_ + i] = static_cast<std::uint32_t>(i);
    walive_[tsize_ + i] = 1;
  }

  /// Bottom-up O(n) build; afterwards top()/top_key() name the winner.
  void build() {
    for (std::size_t node = tsize_; node-- > 1;) {
      const std::size_t a = 2 * node, b = 2 * node + 1;
      const bool bwins = beats(walive_[b] != 0, wkey_[b], widx_[b],
                               walive_[a] != 0, wkey_[a], widx_[a]);
      const std::size_t win = bwins ? b : a, lose = bwins ? a : b;
      wkey_[node] = wkey_[win];
      widx_[node] = widx_[win];
      walive_[node] = walive_[win];
      lkey_[node] = wkey_[lose];
      lidx_[node] = widx_[lose];
      lalive_[node] = walive_[lose];
    }
    top_alive_ = walive_[1] != 0;
    top_key_ = wkey_[1];
    top_idx_ = widx_[1];
  }

  bool top_alive() const noexcept { return top_alive_; }
  std::size_t top() const noexcept { return top_idx_; }
  const K& top_key() const noexcept { return top_key_; }

  /// After the caller advanced source top(): replay its leaf-to-root path
  /// with the source's new head (`alive` false when it drained; `key` is
  /// ignored then). log2(n) cached compares.
  void replay(bool alive, const K& key) {
    bool ca = alive;
    K ck = alive ? key : K{};
    std::uint32_t ci = top_idx_;
    for (std::size_t node = (tsize_ + ci) >> 1; node >= 1; node >>= 1) {
      if (beats(lalive_[node] != 0, lkey_[node], lidx_[node], ca, ck, ci)) {
        std::swap(ck, lkey_[node]);
        std::swap(ci, lidx_[node]);
        const bool t = ca;
        ca = lalive_[node] != 0;
        lalive_[node] = t ? 1 : 0;
      }
    }
    top_alive_ = ca;
    top_key_ = ck;
    top_idx_ = ci;
  }

 private:
  /// x must pop before y: alive, and smaller key — or the same key from a
  /// smaller (newer) source index.
  static bool beats(bool xa, const K& xk, std::uint32_t xi, bool ya, const K& yk,
                    std::uint32_t yi) {
    if (!xa) return false;
    if (!ya) return true;
    if (xk < yk) return true;
    if (yk < xk) return false;
    return xi < yi;
  }

  std::size_t n_ = 0, tsize_ = 1;
  std::vector<K> wkey_, lkey_;
  std::vector<std::uint32_t> widx_, lidx_;
  std::vector<std::uint8_t> walive_, lalive_;
  bool top_alive_ = false;
  K top_key_{};
  std::uint32_t top_idx_ = 0;
};

}  // namespace costream
