// Dictionary serialization: a compact snapshot format usable by every
// structure that offers `for_each` (dump) and `bulk_load` (restore).
//
// Format (little-endian):
//   magic   u64  'COSTRM01'
//   count   u64
//   entries count x { key u64, value u64 }
//   checksum u64  (xor-fold of all entry words, seeded)
//
// Snapshots are logical: tombstones and level/node structure are compacted
// away on save, so loading yields an equivalent dictionary in its densest
// form (for a COLA: one full level, the same state a full merge would
// reach). Cross-structure restore is supported — a B-tree snapshot can be
// loaded into a COLA and vice versa.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/entry.hpp"

namespace costream::api {

inline constexpr std::uint64_t kSnapshotMagic = 0x434f5354524d3031ULL;  // "COSTRM01"

namespace detail {

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

inline std::uint64_t fold(std::uint64_t acc, std::uint64_t v) {
  // xor-rotate fold: order-sensitive, catches swapped/dropped words.
  acc ^= v;
  return (acc << 7) | (acc >> 57);
}

}  // namespace detail

/// Snapshot the live contents of `dict` (ascending key order).
template <class D>
std::vector<std::uint8_t> snapshot(const D& dict) {
  std::vector<std::uint8_t> out;
  detail::put_u64(out, kSnapshotMagic);
  detail::put_u64(out, 0);  // count patched below
  std::uint64_t count = 0;
  std::uint64_t sum = 0x5eed;
  dict.for_each([&](Key k, Value v) {
    detail::put_u64(out, k);
    detail::put_u64(out, v);
    sum = detail::fold(sum, k);
    sum = detail::fold(sum, v);
    ++count;
  });
  // Patch the count in place.
  for (int i = 0; i < 8; ++i) out[8 + i] = static_cast<std::uint8_t>(count >> (8 * i));
  detail::put_u64(out, sum);
  return out;
}

/// Restore a snapshot into `dict` via bulk_load, replacing its contents.
/// Throws std::invalid_argument on malformed or corrupted input.
template <class D>
void restore(D& dict, const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 24) throw std::invalid_argument("snapshot: truncated header");
  if (detail::get_u64(bytes.data()) != kSnapshotMagic) {
    throw std::invalid_argument("snapshot: bad magic");
  }
  const std::uint64_t count = detail::get_u64(bytes.data() + 8);
  const std::uint64_t expect_size = 16 + count * 16 + 8;
  if (bytes.size() != expect_size) throw std::invalid_argument("snapshot: size mismatch");

  std::vector<Entry<>> entries;
  entries.reserve(count);
  std::uint64_t sum = 0x5eed;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t k = detail::get_u64(bytes.data() + 16 + i * 16);
    const std::uint64_t v = detail::get_u64(bytes.data() + 16 + i * 16 + 8);
    sum = detail::fold(sum, k);
    sum = detail::fold(sum, v);
    if (i > 0 && !(entries.back().key < k)) {
      throw std::invalid_argument("snapshot: keys not strictly ascending");
    }
    entries.push_back(Entry<>{k, v});
  }
  if (detail::get_u64(bytes.data() + 16 + count * 16) != sum) {
    throw std::invalid_argument("snapshot: checksum mismatch");
  }
  dict.bulk_load(entries);
}

}  // namespace costream::api
