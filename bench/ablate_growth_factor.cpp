// Ablation: growth factor g in wall-clock terms (the paper's Section 4
// compares 2-, 4-, and 8-COLAs and settles on 4 as the best tradeoff:
// "Given the superior tradeoff of the 4-COLAs, we use them for all
// subsequent experiments").
#include <cstdio>

#include "bench/bench_common.hpp"
#include "cola/cola.hpp"
#include "common/rng.hpp"

namespace cb = costream::bench;
using namespace costream;

int main() {
  const BenchOptions opts = BenchOptions::from_env(1ULL << 21);
  const std::uint64_t searches = opts.fast ? 1'000 : 200'000;
  std::printf("Growth-factor ablation (wall clock), N=%llu\n\n",
              static_cast<unsigned long long>(opts.max_n));

  Table t({"g", "random ins/s", "sorted ins/s", "searches/s", "levels", "merges"},
          16);
  for (const unsigned g : {2u, 4u, 8u, 16u}) {
    double rand_rate, sort_rate, search_rate;
    std::size_t levels;
    std::uint64_t merges;
    {
      cola::Gcola<> c(cola::ColaConfig{g, 0.1});
      const KeyStream ks(KeyOrder::kRandom, opts.max_n, opts.seed);
      Timer timer;
      for (std::uint64_t i = 0; i < ks.size(); ++i) c.insert(ks.key_at(i), i);
      rand_rate = static_cast<double>(ks.size()) / timer.seconds();
      levels = c.level_count();
      merges = c.stats().merges;
      Xoshiro256 rng(5);
      Timer stimer;
      for (std::uint64_t q = 0; q < searches; ++q) {
        (void)c.find(ks.key_at(rng.below(ks.size())));
      }
      search_rate = static_cast<double>(searches) / stimer.seconds();
    }
    {
      cola::Gcola<> c(cola::ColaConfig{g, 0.1});
      const KeyStream ks(KeyOrder::kDescending, opts.max_n, opts.seed);
      Timer timer;
      for (std::uint64_t i = 0; i < ks.size(); ++i) c.insert(ks.key_at(i), i);
      sort_rate = static_cast<double>(ks.size()) / timer.seconds();
    }
    t.add_row({std::to_string(g), format_rate(rand_rate), format_rate(sort_rate),
               format_rate(search_rate), std::to_string(levels),
               std::to_string(merges)});
  }
  t.print();
  std::printf("\nexpected shape: searches improve with g (fewer levels); insert"
              " throughput peaks at moderate g (the paper's 4-COLA sweet spot"
              " comes from disk prefetching, which rewards the longer sequential"
              " merges of larger g until merge fan-in costs dominate).\n");
  return 0;
}
