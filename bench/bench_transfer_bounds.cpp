// Theory-validation bench: measured block transfers per operation against
// the bounds the paper states for each structure (Section 1's comparison
// table, Lemmas 19/20, and the baselines' textbook bounds).
//
//   structure     insert (amortized)             search
//   B-tree        O(log_{B+1} N)                 O(log_{B+1} N)
//   BRT           O((log N)/B)                   O(log N)
//   COLA          O((log N)/B)                   O(log N)
//   basic COLA    O((log N)/B)                   O(log^2 N)
//   CO B-tree     O(log_{B+1}N + (log^2 N)/B)    O(log_{B+1} N)
//   shuttle tree  o(B-tree insert)               O(log_{B+1} N)
#include <cmath>
#include <cstdio>

#include "bench/bench_common.hpp"
#include "brt/brt.hpp"
#include "btree/btree.hpp"
#include "cob/cob_tree.hpp"
#include "cola/cola.hpp"
#include "common/rng.hpp"
#include "shuttle/shuttle_tree.hpp"

namespace cb = costream::bench;
using namespace costream;

namespace {

constexpr std::uint64_t kBlock = 4096;

struct Row {
  std::string name;
  double insert_tpo;
  double search_tpo;
};

template <class D>
Row measure(const std::string& name, D& d, dam::dam_mem_model& mm,
            const KeyStream& ks, std::uint64_t searches) {
  for (std::uint64_t i = 0; i < ks.size(); ++i) d.insert(ks.key_at(i), i);
  const double ins =
      static_cast<double>(mm.stats().transfers) / static_cast<double>(ks.size());
  Xoshiro256 rng(17);
  std::uint64_t total = 0;
  for (std::uint64_t q = 0; q < searches; ++q) {
    mm.clear_cache();
    mm.reset_stats();
    (void)d.find(ks.key_at(rng.below(ks.size())));
    total += mm.stats().transfers;
  }
  return Row{name, ins, static_cast<double>(total) / static_cast<double>(searches)};
}

}  // namespace

int main() {
  const BenchOptions opts = BenchOptions::from_env(1ULL << 19);
  const std::uint64_t n = opts.max_n;
  const std::uint64_t mem = cb::scaled_memory_bytes(n);
  const std::uint64_t searches = opts.fast ? 20 : 200;
  const KeyStream ks(KeyOrder::kRandom, n, opts.seed);
  const double log2n = std::log2(static_cast<double>(n));
  const double logbn = std::log(static_cast<double>(n)) / std::log(kBlock / 32.0);
  std::printf("Transfer bounds at N=%llu, B=4096 (=%d elements), M=%s\n",
              static_cast<unsigned long long>(n), 4096 / 32,
              format_bytes(static_cast<double>(mem)).c_str());
  std::printf("reference values: log2(N)=%.1f  log_B(N)=%.1f  log2(N)/B=%.4f\n\n",
              log2n, logbn, log2n / (kBlock / 32.0));

  std::vector<Row> rows;
  {
    btree::BTree<Key, Value, dam::dam_mem_model> d(kBlock, dam::dam_mem_model(kBlock, mem));
    rows.push_back(measure("B-tree", d, d.mm(), ks, searches));
  }
  {
    brt::Brt<Key, Value, dam::dam_mem_model> d(kBlock, 4, dam::dam_mem_model(kBlock, mem));
    rows.push_back(measure("BRT", d, d.mm(), ks, searches));
  }
  {
    cola::Gcola<Key, Value, dam::dam_mem_model> d(cola::ColaConfig{2, 0.1},
                                                  dam::dam_mem_model(kBlock, mem));
    rows.push_back(measure("COLA", d, d.mm(), ks, searches));
  }
  {
    cola::Gcola<Key, Value, dam::dam_mem_model> d(cola::ColaConfig{2, 0.0},
                                                  dam::dam_mem_model(kBlock, mem));
    rows.push_back(measure("basic COLA", d, d.mm(), ks, searches));
  }
  {
    cob::CobTree<Key, Value, dam::dam_mem_model> d{dam::dam_mem_model(kBlock, mem)};
    rows.push_back(measure("CO B-tree", d, d.mm(), ks, searches));
  }
  {
    shuttle::ShuttleTree<Key, Value, dam::dam_mem_model> d(
        shuttle::ShuttleConfig{}, dam::dam_mem_model(kBlock, mem));
    rows.push_back(measure("shuttle tree", d, d.mm(), ks, searches));
  }

  Table t({"structure", "insert transfers/op", "search transfers/op (cold)"}, 28);
  for (const Row& r : rows) {
    char a[32], b[32];
    std::snprintf(a, sizeof a, "%.4f", r.insert_tpo);
    std::snprintf(b, sizeof b, "%.2f", r.search_tpo);
    t.add_row({r.name, a, b});
  }
  t.print();

  std::printf("\nexpected shape: COLA/BRT inserts ~100x cheaper than B-tree;"
              " B-tree/CO B-tree/shuttle searches ~log_B N;"
              " COLA searches ~log_2 N; basic COLA worst.\n");
  return 0;
}
