// API-contract tests: the Dictionary concept is satisfied by every
// structure (compile-time), and the type-erased AnyDictionary forwards all
// operations faithfully.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "api/dictionary.hpp"
#include "brt/brt.hpp"
#include "btree/btree.hpp"
#include "cob/cob_tree.hpp"
#include "cola/cola.hpp"
#include "cola/deamortized_cola.hpp"
#include "cola/deamortized_fc_cola.hpp"
#include "shard/sharded_dictionary.hpp"
#include "shuttle/shuttle_tree.hpp"
#include "shuttle/swbst.hpp"

namespace costream::api {
namespace {

// The concept holds for every dictionary in the library — checked at
// compile time, so a signature regression fails the build here.
static_assert(Dictionary<cola::Gcola<>>);
static_assert(Dictionary<cola::DeamortizedCola<>>);
static_assert(Dictionary<cola::DeamortizedFcCola<>>);
static_assert(Dictionary<btree::BTree<>>);
static_assert(Dictionary<brt::Brt<>>);
static_assert(Dictionary<cob::CobTree<>>);
static_assert(Dictionary<shuttle::ShuttleTree<>>);
static_assert(Dictionary<shuttle::Swbst<>>);
static_assert(Dictionary<shard::ShardedDictionary<cola::Gcola<>>>);
static_assert(Dictionary<shard::ShardedDictionary<AnyDictionary>>);

TEST(AnyDictionary, ForwardsAllOperations) {
  AnyDictionary d("cola", cola::Gcola<>{});
  EXPECT_EQ(d.name(), "cola");
  d.insert(1, 10);
  d.insert(2, 20);
  d.insert(3, 30);
  d.erase(2);
  EXPECT_EQ(d.find(1).value(), 10u);
  EXPECT_FALSE(d.find(2).has_value());
  std::vector<Key> seen;
  d.range_for_each(0, 100, [&](Key k, Value) { seen.push_back(k); });
  EXPECT_EQ(seen, (std::vector<Key>{1, 3}));
}

TEST(AnyDictionary, MoveIntoContainer) {
  std::vector<AnyDictionary> dicts;
  dicts.emplace_back("a", btree::BTree<>{});
  dicts.emplace_back("b", shuttle::ShuttleTree<>{});
  for (auto& d : dicts) {
    d.insert(5, 50);
    EXPECT_EQ(d.find(5).value(), 50u) << d.name();
  }
}

TEST(AnyDictionary, UpsertThroughErasure) {
  AnyDictionary d("brt", brt::Brt<>{256});
  for (std::uint64_t i = 0; i < 1'000; ++i) d.insert(7, i);
  EXPECT_EQ(d.find(7).value(), 999u);
}

}  // namespace
}  // namespace costream::api
