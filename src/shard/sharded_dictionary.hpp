// Sharded concurrent ingest: S single-writer dictionaries behind one
// Dictionary facade.
//
// The paper's amortized O((log N)/B) update bound is per-structure; this
// layer adds the orthogonal axis — parallelism across cores — without
// touching any structure's internals. The keyspace is RANGE-PARTITIONED by
// S-1 splitter keys (fixed-width key-prefix defaults, or quantiles learned
// from the first batch — see "Splitters" below); each shard is an
// independent dictionary (any of the seven structures, or a type-erased
// AnyDictionary) owned by exactly one worker thread. The facade's caller
// scatters normalized batches into per-shard runs and hands each run to its
// shard's worker over a bounded SPSC ring (shard/spsc_queue.hpp); the worker
// is the ONLY thread that ever mutates its shard, so no structure needs a
// single lock — the paper's single-writer amortized analysis holds verbatim
// per shard at N/S scale (dam/bounds.hpp::sharded_insert_transfer_bound).
//
// Background compaction composes without oversubscription: shards with
// ColaConfig::compaction_threads > 0 all submit folds to the ONE
// process-wide pool (cola/compactor.hpp Pool::instance(), sized to the
// max requested thread count, capped at hardware concurrency), so S
// shards x c threads contend for max(c) workers, not S*c. A shard whose
// fold is rejected by the bounded queue performs it inline on its own
// worker thread (writer-assist), so per-shard FIFO semantics and the
// facade's drain barriers are unchanged.
//
// Semantics (identical to the unsharded Dictionary contract):
//   * A key lives in exactly one shard, so per-key operation order is the
//     facade's submission order: runs enter a shard's ring FIFO and the
//     single worker applies them FIFO. Newest-wins and put-vs-erase
//     shadowing inside a batch are resolved by the facade's normalization
//     pass before the scatter, exactly like every structure's own batch
//     path.
//   * find() is BARRIER-FREE and linearizable: it never drains, never
//     blocks on writers, and never touches a live shard structure. The
//     read path (see "Optimistic reads" below) combines the facade's
//     acknowledged-pending overlay with the shard worker's published
//     immutable view, so a find always reflects every mutation whose
//     facade call returned before the find began — reads-your-acknowledged
//     -writes — and may additionally reflect queued runs the worker has
//     applied since.
//   * Ordered reads are SNAPSHOT consistent: snapshot() drains all shards
//     once, pins each shard's worker-published view, and fuses them by
//     segment-reference concatenation (common/cursor_fusion.hpp::
//     fuse_snapshots — shards are key-disjoint, so concatenation preserves
//     newest-first priority). Cursors, range scans, and merge joins read
//     that frozen, ref-counted view; the snapshot handle itself is
//     free-threaded.
//   * Concurrency contract: MUTATORS (insert/erase/*_batch/flush_stage)
//     plus shard_mut() and bulk-state probes (shard(), check_invariants())
//     are single-caller — one external owner thread drives them. The const
//     READ paths — find(), snapshot(), make_cursor() + seeks, for_each,
//     range_for_each, stats(), epoch(), drain() — are safe from ANY number
//     of threads concurrently with the owner's mutations. Moves require
//     external synchronization (no concurrent calls on either object).
//
// Optimistic reads (the seqlock-shaped core, ROADMAP "Barrier-free point
// reads"): after EVERY applied job, a shard's worker republishes the
// shard's contents as an immutable ref-counted view (snap::publish_view —
// per-staging-run segments make this O(newly appended data) on the tiered
// Gcola) together with the count of jobs it has applied, then bumps the
// shard's publication sequence. The facade, on every submit, republishes
// the shard's ACKNOWLEDGED-PENDING overlay: immutable copies of the runs
// it has handed to the ring that the published view may not cover yet.
// A find loads the sequence, the overlay, then the view (that load order
// matters: the overlay is pruned against a view the facade observed
// EARLIER, so read-read coherence on the view pointer guarantees the
// reader's view covers everything pruned from the reader's overlay — no
// coverage gap), probes overlay runs newest-first and then the view, and
// re-checks the sequence — retrying on change, bounded: every published
// view is individually consistent, so the re-check buys freshness, never
// safety, and a hot writer cannot livelock a reader. No drain, no wait:
// ShardedStats::drains stays untouched by find (asserted by
// tests/linearizability_test.cpp, which hammers this path with reader
// storms against writer storms and checks every observation against the
// acknowledged-write envelope).
//
// Cursors: a sharded cursor seeks against the facade's current snapshot
// and then STAYS VALID across arbitrary mutations — the segments it reads
// are pinned by refcount, so a fold retiring them from a live shard cannot
// pull them out from under the scan (contract in api/dictionary.hpp).
//
// Splitters: partition boundaries are fixed for the life of the structure
// (a key must map to the same shard forever). Three sources, first match
// wins:
//   1. explicit `ShardedConfig::splitters` (S-1 ascending keys);
//   2. learned from the FIRST mutation when it is a batch of at least
//      `learn_sample_min` operations: the normalized (sorted, deduplicated)
//      run's S-quantiles — one pass, no extra sort;
//   3. fixed-width key-prefix defaults: the unsigned key space divided into
//      S equal ranges (the top log2(S) bits of the key select the shard).
// Readers gate on `routes_ready_`: until the first mutation freezes the
// splitters, find() answers nullopt — the only linearizable answer, since
// nothing has been acknowledged yet.
#pragma once

#include <algorithm>
#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <semaphore>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/cursor_fusion.hpp"
#include "common/entry.hpp"
#include "common/snapshot.hpp"
#include "common/span.hpp"
#include "shard/spsc_queue.hpp"

namespace costream::shard {

template <class K = Key>
struct ShardedConfig {
  std::size_t shards = 2;          // S >= 1; 1 = a single-worker baseline
  std::size_t queue_slots = 8;     // per-shard in-flight runs (ring capacity)
  std::size_t learn_sample_min = 64;  // min first-batch size to learn splitters
  std::vector<K> splitters;        // explicit boundaries (size shards - 1);
                                   // empty = learn from sample / defaults
  // TEST-ONLY planted bug (tests/linearizability_test.cpp self-test): skip
  // the acknowledged-pending overlay on the read path, so a find can miss
  // writes whose facade call already returned — exactly the freshness bug
  // the hammer's oracle must catch. Never set outside that self-test.
  bool unsafe_skip_pending_overlay = false;
};

/// Facade-level counters, all safe to read from any thread (stats() takes
/// a relaxed atomic photograph). `drains` counts read BARRIERS — snapshot
/// acquisition and direct shard access still drain; find() never does
/// (the linearizability hammer asserts the delta is zero across a pure
/// find storm). `finds`/`find_retries` count barrier-free point reads and
/// how many re-validated against a mid-read republish.
struct ShardedStats {
  std::uint64_t jobs = 0;      // runs handed to workers
  std::uint64_t batches = 0;   // facade-level batch calls
  std::uint64_t singles = 0;   // facade-level single-op calls
  std::uint64_t drains = 0;    // read barriers (whole-facade or one-shard)
  std::uint64_t learned_splitters = 0;  // 1 if quantile learning fired
  std::uint64_t finds = 0;         // barrier-free point reads served
  std::uint64_t find_retries = 0;  // sequence re-checks that looped
};

/// A published shared_ptr slot readable from any thread while one thread
/// republishes. libstdc++'s std::atomic<std::shared_ptr> guards its raw
/// pointer with a lock bit whose reader-side unlock is relaxed (GCC 12,
/// bits/shared_ptr_atomic.h), so ThreadSanitizer flags reader loads
/// racing writer stores; a plain mutex held only for the refcount bump
/// gives the ordering the optimistic-read protocol needs (per-slot
/// coherence plus acquire/release on every load/store) and stays
/// TSan-clean. The lock is never held while a job applies, so readers
/// still never wait on writers.
template <class T>
class PublishedSlot {
 public:
  std::shared_ptr<T> load() const {
    std::lock_guard<std::mutex> lock(mu_);
    return p_;
  }
  void store(std::shared_ptr<T> v) {
    // Swap under the lock, release the old value outside it: the previous
    // view may be the last reference to a deep segment list.
    std::shared_ptr<T> old;
    {
      std::lock_guard<std::mutex> lock(mu_);
      old.swap(p_);
      p_ = std::move(v);
    }
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<T> p_;
};

template <class Inner, class K = Key, class V = Value>
class ShardedDictionary {
 public:
  template <class Factory>
    requires std::invocable<Factory&, std::size_t>
  ShardedDictionary(ShardedConfig<K> cfg, Factory&& make_inner) : cfg_(std::move(cfg)) {
    if (cfg_.shards == 0) {
      throw std::invalid_argument("sharded: shard count must be >= 1");
    }
    if (!cfg_.splitters.empty()) {
      if (cfg_.splitters.size() != cfg_.shards - 1) {
        throw std::invalid_argument("sharded: need exactly shards-1 splitters");
      }
      for (std::size_t i = 1; i < cfg_.splitters.size(); ++i) {
        if (!(cfg_.splitters[i - 1] < cfg_.splitters[i])) {
          throw std::invalid_argument("sharded: splitters must be ascending");
        }
      }
      splitters_ = cfg_.splitters;
      frozen_ = true;
    } else if constexpr (!std::unsigned_integral<K>) {
      if (cfg_.shards > 1) {
        throw std::invalid_argument(
            "sharded: non-integral keys need explicit splitters");
      }
    }
    shards_.reserve(cfg_.shards);
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      shards_.push_back(
          std::make_unique<Shard>(make_inner(s), cfg_.queue_slots));
    }
    // With one shard every key routes to index 0 splitter-free; with
    // explicit splitters the routes are fixed at construction. Otherwise
    // readers wait for the first mutation to freeze them.
    routes_ready_.store(frozen_ || cfg_.shards == 1,
                        std::memory_order_release);
  }

  explicit ShardedDictionary(ShardedConfig<K> cfg = ShardedConfig<K>{})
    requires std::default_initializable<Inner>
      : ShardedDictionary(std::move(cfg), [](std::size_t) { return Inner{}; }) {}

  // Moves require external synchronization (atomics transfer by value; the
  // worker threads and their published views ride along inside shards_).
  ShardedDictionary(ShardedDictionary&& o) noexcept
      : cfg_(std::move(o.cfg_)),
        splitters_(std::move(o.splitters_)),
        frozen_(o.frozen_),
        shards_(std::move(o.shards_)),
        norm_(std::move(o.norm_)),
        norm_scratch_(std::move(o.norm_scratch_)),
        snap_cache_(std::move(o.snap_cache_)),
        snap_epoch_(o.snap_epoch_),
        snap_parts_(std::move(o.snap_parts_)) {
    routes_ready_.store(o.routes_ready_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    epoch_.store(o.epoch_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    stats_.copy_from(o.stats_);
  }

  ShardedDictionary& operator=(ShardedDictionary&& o) noexcept {
    if (this == &o) return *this;
    shards_.clear();  // join this object's workers before adopting o's
    cfg_ = std::move(o.cfg_);
    splitters_ = std::move(o.splitters_);
    frozen_ = o.frozen_;
    shards_ = std::move(o.shards_);
    norm_ = std::move(o.norm_);
    norm_scratch_ = std::move(o.norm_scratch_);
    snap_cache_ = std::move(o.snap_cache_);
    snap_epoch_ = o.snap_epoch_;
    snap_parts_ = std::move(o.snap_parts_);
    routes_ready_.store(o.routes_ready_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    epoch_.store(o.epoch_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    stats_.copy_from(o.stats_);
    return *this;
  }

  // -- observers --------------------------------------------------------------

  std::size_t shard_count() const noexcept { return shards_.size(); }
  const std::vector<K>& splitters() const noexcept { return splitters_; }

  /// Relaxed atomic photograph of the facade counters (any thread).
  ShardedStats stats() const noexcept {
    ShardedStats s;
    s.jobs = stats_.jobs.load(std::memory_order_relaxed);
    s.batches = stats_.batches.load(std::memory_order_relaxed);
    s.singles = stats_.singles.load(std::memory_order_relaxed);
    s.drains = stats_.drains.load(std::memory_order_relaxed);
    s.learned_splitters =
        stats_.learned_splitters.load(std::memory_order_relaxed);
    s.finds = stats_.finds.load(std::memory_order_relaxed);
    s.find_retries = stats_.find_retries.load(std::memory_order_relaxed);
    return s;
  }

  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Direct access to one shard's structure, behind that shard's drain
  /// barrier (tests and benches read per-shard stats/DAM models this way).
  /// Owner-thread only: the returned reference bypasses the published
  /// views the concurrent read paths are built on.
  const Inner& shard(std::size_t s) const {
    drain_shard(*shards_[s]);
    return shards_[s]->dict;
  }

  /// Mutable access to one shard's structure, behind its drain barrier.
  /// For tests/benches resetting DAM models or stats ONLY — mutating shard
  /// CONTENTS from the caller thread would break the single-writer
  /// invariant the facade is built on. Owner-thread only.
  Inner& shard_mut(std::size_t s) {
    drain_shard(*shards_[s]);
    return shards_[s]->dict;
  }

  /// Block until every queued run has been applied (ordered reads do this
  /// lazily; benches call it to put the full ingest cost inside the timed
  /// region). Safe from any thread; under a live writer it waits for the
  /// momentary queue-empty point, it does not stop the writer.
  void drain() const { drain_all(); }

  // -- mutators (Dictionary contract, api/dictionary.hpp) ---------------------

  void insert(const K& k, const V& v) { single(Op<K, V>::put(k, v)); }
  void erase(const K& k) { single(Op<K, V>::del(k)); }

  void insert_batch(Span<Entry<K, V>> batch) {
    if (batch.empty()) return;
    norm_.clear();
    norm_.reserve(batch.size());
    for (const Entry<K, V>& e : batch) {
      norm_.push_back(Op<K, V>::put(e.key, e.value));
    }
    apply_normalized();
  }

  void erase_batch(Span<K> keys) {
    if (keys.empty()) return;
    norm_.clear();
    norm_.reserve(keys.size());
    for (const K& k : keys) norm_.push_back(Op<K, V>::del(k));
    apply_normalized();
  }

  void apply_batch(Span<Op<K, V>> ops) {
    if (ops.empty()) return;
    norm_.assign(ops.begin(), ops.end());
    apply_normalized();
  }

  // Deprecated pointer-form batch shims (one release; migration note in
  // api/dictionary.hpp — CI's deprecated-api lint rejects in-repo callers).
  void insert_batch(const Entry<K, V>* data, std::size_t n) {
    insert_batch(Span<Entry<K, V>>(data, n));
  }
  void erase_batch(const K* keys, std::size_t n) {
    erase_batch(Span<K>(keys, n));
  }
  void apply_batch(const Op<K, V>* ops, std::size_t n) {
    apply_batch(Span<Op<K, V>>(ops, n));
  }

  /// Flush every shard's deferred state (staging arenas etc.) and drain, so
  /// the caller observes the full cost of everything ingested so far.
  void flush_stage() {
    throw_if_failed();
    for (auto& sh : shards_) {
      Job* job = sh->ring.begin_push();
      job->kind = Job::Kind::kFlush;
      sh->ring.commit_push();
      sh->submitted.fetch_add(1, std::memory_order_release);
      stats_.jobs.fetch_add(1, std::memory_order_relaxed);
      sh->items.release();
    }
    epoch_.fetch_add(1, std::memory_order_release);
    drain_all();
  }

  // -- readers ----------------------------------------------------------------

  /// Barrier-free linearizable point lookup (any thread, never blocks on
  /// writers, zero drains — header comment "Optimistic reads" has the full
  /// protocol and the coverage proof). Probes the acknowledged-pending
  /// overlay newest-first, then the worker-published immutable view, and
  /// re-validates against the shard's publication sequence with bounded
  /// retries: every view is self-consistent, so the loop bound caps
  /// latency without risking a torn read.
  std::optional<V> find(const K& k) const {
    throw_if_failed();
    if (!routes_ready_.load(std::memory_order_acquire)) {
      // Nothing has ever been acknowledged (the first mutation freezes the
      // routes), so absent is the only linearizable answer.
      return std::nullopt;
    }
    const Shard& sh = *shards_[shard_of(k)];
    stats_.finds.fetch_add(1, std::memory_order_relaxed);
    for (int attempt = 0;; ++attempt) {
      const std::uint64_t seq0 = sh.pub_seq.load(std::memory_order_acquire);
      // Overlay BEFORE view: the facade prunes the overlay against a view
      // it loaded before publishing, so loading in this order guarantees
      // (read-read coherence on pub_view) that our view covers every run
      // pruned from our overlay.
      const std::shared_ptr<const PendingList> pend =
          sh.pending.load();
      const std::shared_ptr<const ShardView> view =
          sh.pub_view.load();
      const std::uint64_t applied = view != nullptr ? view->jobs_applied : 0;
      std::optional<V> out;
      bool hit = false;
      if (pend != nullptr && !cfg_.unsafe_skip_pending_overlay) {
        for (std::size_t i = pend->runs.size(); i-- > 0;) {
          const PendingRun& r = pend->runs[i];
          if (r.job <= applied) break;  // older runs are all in the view
          if (const Op<K, V>* op = r.lookup(k)) {
            hit = true;
            if (!op->erase) out = op->value;
            break;
          }
        }
      }
      if (!hit && view != nullptr) {
        out = snap::Snapshot<K, V>(view->data).find(k);
      }
      if (sh.pub_seq.load(std::memory_order_acquire) == seq0 ||
          attempt >= kFindRetries) {
        return out;
      }
      stats_.find_retries.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Point-in-time snapshot of the whole facade (contract in
  /// api/dictionary.hpp): drain every shard once, pin each shard's
  /// worker-published view, and fuse them by segment-reference
  /// concatenation — the shards partition the keyspace, so each shard's
  /// newest-first order is the only priority the merged cursor needs.
  /// Cached per facade epoch behind a mutex, so any number of threads may
  /// acquire concurrently with the owner's mutations; a snapshot taken
  /// from the owner thread is an exact cut, one taken mid-mutation from
  /// another thread reflects, per shard, all acknowledged writes plus
  /// possibly some just-applied ones. The handle is free-threaded and
  /// survives arbitrary mutations.
  snap::Snapshot<K, V> snapshot() const {
    throw_if_failed();
    drain_all();
    std::lock_guard<std::mutex> lock(snap_mu_);
    const std::uint64_t e = epoch_.load(std::memory_order_acquire);
    if (snap_cache_ && snap_epoch_ == e) return snap_cache_;
    snap_parts_.clear();
    snap_parts_.reserve(shards_.size());
    for (const auto& sh : shards_) {
      const std::shared_ptr<const ShardView> view =
          sh->pub_view.load();
      snap_parts_.push_back(view != nullptr
                                ? snap::Snapshot<K, V>(view->data)
                                : snap::Snapshot<K, V>());
    }
    snap_cache_ = fuse_snapshots(snap_parts_, e);
    snap_parts_.clear();  // the fused snapshot co-owns the segments
    snap_epoch_ = e;
    return snap_cache_;
  }

  /// Resumable ordered cursor over the union of all shards (Dictionary
  /// cursor contract): every seek pins the facade's then-current snapshot,
  /// so the position and the remainder of the stream stay valid across
  /// arbitrary mutations. Re-seek to observe newer data. The cursor object
  /// is single-threaded; distinct threads use distinct cursors.
  class Cursor {
   public:
    Cursor() = default;

    void seek(const K& lo) {
      refresh();
      c_.seek(lo);
    }
    void seek(const K& lo, const K& hi) {
      refresh();
      c_.seek(lo, hi);
    }
    void seek_first() {
      refresh();
      c_.seek_first();
    }

    void next() { c_.next(); }
    bool valid() const { return c_.valid(); }
    const Entry<K, V>& entry() const { return c_.entry(); }

    /// The facade epoch of the snapshot this cursor is reading (stamped at
    /// the last seek; 0 before the first).
    std::uint64_t snapshot_epoch() const { return c_.epoch(); }

   private:
    friend class ShardedDictionary;
    explicit Cursor(const ShardedDictionary* d) : d_(d) {}

    void refresh() {
      if (d_ != nullptr) c_.attach(d_->snapshot().data());
    }

    const ShardedDictionary* d_ = nullptr;
    snap::SnapshotCursor<K, V> c_;
  };

  Cursor make_cursor() const { return Cursor(this); }

  /// Ordered scans (any thread): each call walks its own cursor over the
  /// facade snapshot — a few allocations per call, in exchange for scans
  /// that never share mutable state across threads.
  template <class Fn>
  void range_for_each(const K& lo, const K& hi, Fn&& fn) const {
    if (hi < lo) return;
    snap::SnapshotCursor<K, V> cur;
    cur.attach(snapshot().data());
    for (cur.seek(lo, hi); cur.valid(); cur.next()) {
      fn(cur.entry().key, cur.entry().value);
    }
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    snap::SnapshotCursor<K, V> cur;
    cur.attach(snapshot().data());
    for (cur.seek_first(); cur.valid(); cur.next()) {
      fn(cur.entry().key, cur.entry().value);
    }
  }

  /// Per-shard inner invariants plus the routing invariant: every key a
  /// shard holds lies inside that shard's splitter range. Owner-thread
  /// only (walks the live inner structures behind the drain barrier).
  void check_invariants() const {
    drain_all();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const Inner& d = shards_[s]->dict;
      if constexpr (requires { d.check_invariants(); }) d.check_invariants();
      auto c = d.make_cursor();
      c.seek_first();
      while (c.valid()) {
        const K& k = c.entry().key;
        if (s > 0 && k < splitters_[s - 1]) {
          throw std::logic_error("sharded: key below its shard's range");
        }
        if (s + 1 < shards_.size() && !(k < splitters_[s])) {
          throw std::logic_error("sharded: key past its shard's range");
        }
        c.next();
      }
    }
  }

 private:
  /// One run of operations handed to a shard worker. The vector's capacity
  /// circulates through the ring (the worker clears, the producer refills
  /// in place), so steady-state dispatch allocates nothing.
  struct Job {
    enum class Kind : std::uint8_t { kApply, kFlush };
    Kind kind = Kind::kApply;
    std::vector<Op<K, V>> ops;
  };

  /// What a shard worker publishes after every applied job: the shard's
  /// contents as an immutable segment view plus how many jobs it covers.
  /// Readers co-own it via atomic shared_ptr — a republish can never pull
  /// a view out from under a reader mid-probe.
  struct ShardView {
    std::shared_ptr<const snap::SnapshotData<K, V>> data;
    std::uint64_t jobs_applied = 0;
  };

  /// One acknowledged run the published view may not cover yet: either a
  /// single op or an immutable copy of a normalized batch cut. `job` is the
  /// shard's 1-based submission index, the coordinate the view's
  /// jobs_applied is pruned and filtered against.
  struct PendingRun {
    std::uint64_t job = 0;
    Op<K, V> one{};  // payload when run == nullptr
    std::shared_ptr<const std::vector<Op<K, V>>> run;

    /// The run's op for `k`, or nullptr. Runs are normalized (sorted,
    /// unique keys), so this is a binary search.
    const Op<K, V>* lookup(const K& k) const {
      if (run == nullptr) {
        return !(one.key < k) && !(k < one.key) ? &one : nullptr;
      }
      const auto it = std::lower_bound(
          run->begin(), run->end(), k,
          [](const Op<K, V>& o, const K& key) { return o.key < key; });
      return it != run->end() && !(k < it->key) ? &*it : nullptr;
    }
  };

  /// The facade's acknowledged-pending overlay for one shard: every run
  /// handed to the ring whose coverage by the published view the facade
  /// had not yet observed at publish time, job index ascending. Immutable
  /// once stored; the facade replaces the whole list on each submit.
  struct PendingList {
    std::vector<PendingRun> runs;
  };

  /// A shard: the structure, its inbox, the worker thread that is the
  /// structure's only writer, and the publication state the barrier-free
  /// readers consume. Heap-allocated (stable address) so the facade stays
  /// movable while workers hold `this` pointers into their shard.
  struct Shard {
    Shard(Inner d, std::size_t ring_slots)
        : dict(std::move(d)), ring(ring_slots) {
      // Initial publication happens on the CONSTRUCTING thread — it owns
      // the inner until the worker exists — so factory-preloaded contents
      // are visible to barrier-free readers from the first instant.
      publish(0);
      worker = std::thread([this] { run(); });
    }

    ~Shard() {
      stop.store(true, std::memory_order_release);
      items.release();
      if (worker.joinable()) worker.join();
    }

    void run() {
      std::uint64_t applied = 0;
      for (;;) {
        items.acquire();
        Job* job = ring.peek();
        if (job == nullptr) {
          if (stop.load(std::memory_order_acquire)) return;
          continue;
        }
        // A throwing inner structure must not kill the worker (that would
        // std::terminate) and must not wedge the drain barrier: the job is
        // popped and counted NO MATTER WHAT, the first exception is kept,
        // and once failed the worker drains its queue without applying —
        // the facade rethrows on its next call (throw_if_failed). A failed
        // shard also stops republishing, freezing its view at the last
        // good state (reads rethrow before they could see it).
        if (!failed.load(std::memory_order_relaxed)) {
          try {
            if (job->kind == Job::Kind::kApply) {
              dict.apply_batch(job->ops);
            } else {
              if constexpr (requires(Inner& d) { d.flush_stage(); }) {
                dict.flush_stage();
              }
            }
            publish(applied + 1);
          } catch (...) {
            error = std::current_exception();
            failed.store(true, std::memory_order_release);
          }
        }
        ++applied;
        job->ops.clear();  // keep capacity: it circulates back to the producer
        ring.pop();
        completed.fetch_add(1, std::memory_order_release);
      }
    }

    /// Republish this shard's immutable view covering `applied_jobs` jobs,
    /// then bump the sequence readers validate against. Publish-before-
    /// completed ordering lets drainers trust the view they load after
    /// observing completed == submitted.
    void publish(std::uint64_t applied_jobs) {
      auto v = std::make_shared<ShardView>();
      v->data = snap::publish_view<K, V>(dict);
      v->jobs_applied = applied_jobs;
      pub_view.store(std::move(v));
      pub_seq.fetch_add(1, std::memory_order_release);
    }

    Inner dict;
    SpscRing<Job> ring;
    std::counting_semaphore<(1 << 30)> items{0};
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> submitted{0};  // written by the owner thread
    // Publication state (header comment "Optimistic reads"): the worker's
    // immutable view + sequence, and the facade's acknowledged-pending
    // overlay. All three are read by any number of reader threads.
    std::atomic<std::uint64_t> pub_seq{0};
    PublishedSlot<const ShardView> pub_view;
    PublishedSlot<const PendingList> pending;
    // First exception the worker caught; `failed` publishes it (the store
    // is release, the facade's load acquire, so the exception_ptr write
    // happens-before any rethrow).
    std::exception_ptr error;
    std::atomic<bool> failed{false};
    std::thread worker;
  };

  /// Surface a worker's stored exception on the calling thread. Checked at
  /// the top of every facade operation: a shard whose inner structure threw
  /// has silently dropped jobs since, so no result after that point can be
  /// trusted. The failed state is sticky — every later call rethrows too.
  void throw_if_failed() const {
    for (const auto& sh : shards_) {
      if (sh->failed.load(std::memory_order_acquire)) {
        std::rethrow_exception(sh->error);
      }
    }
  }

  std::size_t shard_of(const K& k) const {
    return static_cast<std::size_t>(
        std::upper_bound(splitters_.begin(), splitters_.end(), k) -
        splitters_.begin());
  }

  /// Replace `sh`'s acknowledged-pending overlay: keep the previous runs
  /// the published view still does not cover, append the new one. Loading
  /// the view BEFORE storing the overlay is what the readers' overlay-then-
  /// view load order pairs with (coverage proof in the header comment).
  void publish_pending(Shard& sh, PendingRun&& r) {
    const std::shared_ptr<const ShardView> view =
        sh.pub_view.load();
    const std::uint64_t applied = view != nullptr ? view->jobs_applied : 0;
    const std::shared_ptr<const PendingList> prev =
        sh.pending.load();  // facade is the sole writer of this slot
    auto next = std::make_shared<PendingList>();
    if (prev != nullptr) {
      next->runs.reserve(prev->runs.size() + 1);
      for (const PendingRun& pr : prev->runs) {
        if (pr.job > applied) next->runs.push_back(pr);
      }
    }
    next->runs.push_back(std::move(r));
    sh.pending.store(std::move(next));
  }

  void single(const Op<K, V>& o) {
    throw_if_failed();
    if (!frozen_) {
      frozen_ = true;
      if (splitters_.empty()) default_splitters();
      routes_ready_.store(true, std::memory_order_release);
    }
    Shard& sh = *shards_[shard_of(o.key)];
    Job* job = sh.ring.begin_push();
    job->kind = Job::Kind::kApply;
    job->ops.push_back(o);
    sh.ring.commit_push();
    const std::uint64_t id =
        sh.submitted.fetch_add(1, std::memory_order_release) + 1;
    stats_.jobs.fetch_add(1, std::memory_order_relaxed);
    stats_.singles.fetch_add(1, std::memory_order_relaxed);
    sh.items.release();
    PendingRun pr;
    pr.job = id;
    pr.one = o;
    publish_pending(sh, std::move(pr));
    epoch_.fetch_add(1, std::memory_order_release);
  }

  /// Normalize norm_ once (sort + newest-wins dedup, the shared batch
  /// discipline), learn splitters if this is the first mutation, then cut
  /// the sorted run into per-shard contiguous subranges — no per-element
  /// scatter copies, just S-1 binary searches over the run. Each cut is
  /// also published (as an immutable copy) into its shard's acknowledged-
  /// pending overlay before this call returns: that copy IS the
  /// acknowledgment barrier-free readers read.
  void apply_normalized() {
    throw_if_failed();
    sort_dedup_newest_wins(norm_, norm_scratch_);
    if (!frozen_) {
      freeze_from(norm_);
      routes_ready_.store(true, std::memory_order_release);
    }
    const Op<K, V>* at = norm_.data();
    const Op<K, V>* end = at + norm_.size();
    for (std::size_t s = 0; s < shards_.size() && at != end; ++s) {
      const Op<K, V>* hi =
          s + 1 < shards_.size()
              ? std::lower_bound(at, end, splitters_[s],
                                 [](const Op<K, V>& o, const K& k) {
                                   return o.key < k;
                                 })
              : end;
      if (hi != at) {
        Shard& sh = *shards_[s];
        Job* job = sh.ring.begin_push();
        job->kind = Job::Kind::kApply;
        job->ops.assign(at, hi);
        sh.ring.commit_push();
        const std::uint64_t id =
            sh.submitted.fetch_add(1, std::memory_order_release) + 1;
        stats_.jobs.fetch_add(1, std::memory_order_relaxed);
        sh.items.release();
        PendingRun pr;
        pr.job = id;
        pr.run = std::make_shared<const std::vector<Op<K, V>>>(at, hi);
        publish_pending(sh, std::move(pr));
      }
      at = hi;
    }
    stats_.batches.fetch_add(1, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
  }

  void freeze_from(const std::vector<Op<K, V>>& run) {
    frozen_ = true;
    const std::size_t S = shards_.size();
    if (S == 1) return;
    if (run.size() >= std::max<std::size_t>(cfg_.learn_sample_min, S)) {
      // Quantiles of the normalized run: keys are sorted and unique, so the
      // S-1 cut points are strictly increasing by construction.
      splitters_.reserve(S - 1);
      for (std::size_t i = 0; i + 1 < S; ++i) {
        splitters_.push_back(run[(i + 1) * run.size() / S].key);
      }
      stats_.learned_splitters.fetch_add(1, std::memory_order_relaxed);
    } else {
      default_splitters();
    }
  }

  void default_splitters() {
    const std::size_t S = shards_.size();
    if (S == 1) return;
    if constexpr (std::unsigned_integral<K>) {
      const K step =
          static_cast<K>(std::numeric_limits<K>::max() / S + K{1});
      splitters_.reserve(S - 1);
      for (std::size_t i = 1; i < S; ++i) {
        splitters_.push_back(static_cast<K>(step * i));
      }
    }
    // Non-integral keys without explicit splitters are rejected at
    // construction, so this branch is never reached with S > 1.
  }

  void drain_shard(const Shard& sh) const {
    throw_if_failed();
    if (sh.completed.load(std::memory_order_acquire) ==
        sh.submitted.load(std::memory_order_acquire)) {
      return;
    }
    stats_.drains.fetch_add(1, std::memory_order_relaxed);
    while (sh.completed.load(std::memory_order_acquire) !=
           sh.submitted.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }

  void drain_all() const {
    for (const auto& sh : shards_) drain_shard(*sh);
  }

  /// Internal counters: atomics so const read paths can bump them from any
  /// thread (ShardedStats is the plain photograph stats() returns).
  struct AtomicShardedStats {
    std::atomic<std::uint64_t> jobs{0}, batches{0}, singles{0}, drains{0},
        learned_splitters{0}, finds{0}, find_retries{0};
    void copy_from(const AtomicShardedStats& o) noexcept {
      jobs.store(o.jobs.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
      batches.store(o.batches.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
      singles.store(o.singles.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
      drains.store(o.drains.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
      learned_splitters.store(
          o.learned_splitters.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      finds.store(o.finds.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      find_retries.store(o.find_retries.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    }
  };

  /// Bounded optimistic retries: the re-check buys freshness, not safety
  /// (every published view is individually consistent), so a small cap
  /// keeps find wait-free under a republishing storm.
  static constexpr int kFindRetries = 3;

  ShardedConfig<K> cfg_;
  std::vector<K> splitters_;
  bool frozen_ = false;  // owner-thread routing state; readers gate on
  std::atomic<bool> routes_ready_{false};  // ...this release-published flag
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> epoch_{0};
  std::vector<Op<K, V>> norm_, norm_scratch_;  // batch normalization scratch
  // Snapshot cache (one fusion per facade epoch) + fusion scratch, guarded:
  // concurrent acquirers serialize on snap_mu_, the handle they get back is
  // free-threaded.
  mutable std::mutex snap_mu_;
  mutable snap::Snapshot<K, V> snap_cache_;
  mutable std::uint64_t snap_epoch_ = 0;
  mutable std::vector<snap::Snapshot<K, V>> snap_parts_;
  mutable AtomicShardedStats stats_;
};

}  // namespace costream::shard
