// FaultInjectionEnv: a deterministic in-memory StorageEnv that models the
// crash semantics documented in env.hpp and injects every fault class the
// recovery protocol claims to survive:
//
//   * scheduled power cuts — after N operations the env "loses power":
//     CrashError is thrown and every subsequent operation fails until the
//     harness calls apply_crash(), which reverts the namespace to the last
//     sync_dir() and truncates each file to its synced watermark plus an
//     arbitrary rng-chosen (possibly bit-flipped) prefix of the unsynced
//     tail — exactly what a real disk leaves behind;
//   * fsync lies — sync()/sync_dir() report success without persisting,
//     so a later crash eats data the caller believed durable;
//   * transient EIO with configurable probability (thrown before the op
//     takes effect, so with_retry-wrapped callers stay exactly-once);
//   * short reads (reads randomly split, callers must loop).
//
// Determinism: one Xoshiro-style rng seeded by the harness drives every
// choice, so a failing schedule replays exactly and delta-shrinks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/env.hpp"

namespace costream::storage {

struct FaultConfig {
  /// Crash (throw CrashError) after this many env operations; 0 = never.
  std::uint64_t crash_after_ops = 0;
  /// Probability (per mille) that an operation throws TransientIOError.
  std::uint32_t eio_per_mille = 0;
  /// Probability (per mille) that a read returns fewer bytes than asked.
  std::uint32_t short_read_per_mille = 0;
  /// sync()/sync_dir() succeed without persisting anything.
  bool lie_on_sync = false;
  /// On crash, flip one byte in each kept-but-unsynced tail (torn write
  /// corruption, not just truncation).
  bool flip_torn_bytes = true;
  std::uint64_t seed = 1;
};

struct FaultStats {
  std::uint64_t ops = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t syncs = 0;
  std::uint64_t dir_syncs = 0;
  std::uint64_t reads = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t eio_injected = 0;
  std::uint64_t short_reads = 0;
  std::uint64_t sync_lies = 0;
  std::uint64_t sleeps = 0;
  std::uint64_t slept_us = 0;
  std::uint64_t crashes = 0;
};

class FaultInjectionEnv final : public StorageEnv {
  struct Node {
    std::string data;
    std::size_t persisted = 0;  // prefix made durable by sync()
  };
  using Files = std::map<std::string, std::shared_ptr<Node>>;

 public:
  explicit FaultInjectionEnv(FaultConfig cfg = {}) : cfg_(cfg), rng_(cfg.seed) {
    if (rng_ == 0) rng_ = 0x9e3779b97f4a7c15ULL;
  }

  // --- harness controls ---------------------------------------------------

  /// Re-arm the crash schedule: the env throws CrashError after `ops` more
  /// operations (0 disarms).
  void schedule_crash_after(std::uint64_t ops) {
    cfg_.crash_after_ops = ops;
    ops_until_crash_ = ops;
  }

  bool crashed() const noexcept { return crashed_; }

  /// Simulate the machine coming back up: the namespace reverts to the
  /// last committed sync_dir() snapshot, and every surviving file keeps
  /// its synced prefix plus an rng-chosen prefix of the unsynced tail
  /// (optionally with one flipped byte). Clears the crashed flag; the
  /// crash schedule stays disarmed until re-armed.
  void apply_crash() {
    live_.clear();
    for (auto& [name, node] : committed_) {
      auto kept = std::make_shared<Node>();
      kept->persisted = std::min(node->persisted, node->data.size());
      const std::size_t tail = node->data.size() - kept->persisted;
      const std::size_t keep_tail = tail == 0 ? 0 : next_below(tail + 1);
      kept->data = node->data.substr(0, kept->persisted + keep_tail);
      if (cfg_.flip_torn_bytes && keep_tail > 0 && next_below(2) == 0) {
        const std::size_t at = kept->persisted + next_below(keep_tail);
        kept->data[at] = static_cast<char>(kept->data[at] ^
                                           static_cast<char>(1 + next_below(255)));
      }
      kept->persisted = kept->data.size() < kept->persisted ? kept->data.size()
                                                            : kept->persisted;
      live_.emplace(name, kept);
    }
    // The committed snapshot now reflects the post-crash reality: the torn
    // tails ARE on the platter.
    committed_.clear();
    for (auto& [name, node] : live_) {
      auto copy = std::make_shared<Node>(*node);
      copy->persisted = copy->data.size();
      committed_.emplace(name, copy);
      node->persisted = node->data.size();
    }
    crashed_ = false;
    ops_until_crash_ = 0;
    cfg_.crash_after_ops = 0;
  }

  /// Test hook: corrupt one byte of a live file in place (bit-flip
  /// matrices for segment/manifest readers). Bypasses fault accounting.
  void poke(const std::string& name, std::uint64_t offset, std::uint8_t b) {
    auto it = live_.find(name);
    if (it == live_.end() || offset >= it->second->data.size()) {
      throw IOError("fault env poke: no byte at " + name);
    }
    it->second->data[static_cast<std::size_t>(offset)] = static_cast<char>(b);
  }

  const FaultStats& stats() const noexcept { return stats_; }
  FaultConfig& config() noexcept { return cfg_; }

  // --- StorageEnv ---------------------------------------------------------

  std::unique_ptr<WritableFile> create(const std::string& name) override {
    before_op();
    auto node = std::make_shared<Node>();
    live_[name] = node;
    return std::make_unique<Writable>(*this, node, name);
  }

  std::unique_ptr<RandomReadFile> open_read(const std::string& name) override {
    before_op();
    auto it = live_.find(name);
    if (it == live_.end()) throw IOError("fault env: no such file " + name);
    return std::make_unique<Readable>(*this, it->second, name);
  }

  bool exists(const std::string& name) override {
    before_op();
    return live_.count(name) != 0;
  }

  std::vector<std::string> list() override {
    before_op();
    std::vector<std::string> names;
    names.reserve(live_.size());
    for (const auto& [name, node] : live_) names.push_back(name);
    return names;
  }

  void rename_file(const std::string& from, const std::string& to) override {
    before_op();
    auto it = live_.find(from);
    if (it == live_.end()) throw IOError("fault env: rename missing " + from);
    live_[to] = it->second;
    live_.erase(it);
  }

  void remove_file(const std::string& name) override {
    before_op();
    if (live_.erase(name) == 0) {
      throw IOError("fault env: remove missing " + name);
    }
  }

  void truncate_file(const std::string& name, std::uint64_t size) override {
    before_op();
    auto it = live_.find(name);
    if (it == live_.end()) throw IOError("fault env: truncate missing " + name);
    Node& n = *it->second;
    if (size < n.data.size()) n.data.resize(static_cast<std::size_t>(size));
    n.persisted = std::min(n.persisted, n.data.size());
  }

  void sync_dir() override {
    before_op();
    ++stats_.dir_syncs;
    if (cfg_.lie_on_sync) {
      ++stats_.sync_lies;
      return;
    }
    committed_.clear();
    for (auto& [name, node] : live_) committed_.emplace(name, node);
  }

  void sleep_us(std::uint64_t us) override {
    ++stats_.sleeps;
    stats_.slept_us += us;  // counted, never taken — fuzz stays fast
  }

 private:
  class Writable final : public WritableFile {
   public:
    Writable(FaultInjectionEnv& env, std::shared_ptr<Node> node, std::string name)
        : env_(env), node_(std::move(node)), name_(std::move(name)) {}

    void append(const void* data, std::size_t n) override {
      env_.before_op();
      ++env_.stats_.writes;
      env_.stats_.bytes_written += n;
      node_->data.append(static_cast<const char*>(data), n);
    }

    void sync() override {
      env_.before_op();
      ++env_.stats_.syncs;
      if (env_.cfg_.lie_on_sync) {
        ++env_.stats_.sync_lies;
        return;
      }
      node_->persisted = node_->data.size();
    }

    std::uint64_t size() const noexcept override { return node_->data.size(); }

    void truncate_to(std::uint64_t size) override {
      env_.before_op();
      if (size < node_->data.size()) {
        node_->data.resize(static_cast<std::size_t>(size));
      }
      node_->persisted = std::min(node_->persisted, node_->data.size());
    }

   private:
    FaultInjectionEnv& env_;
    std::shared_ptr<Node> node_;
    std::string name_;
  };

  class Readable final : public RandomReadFile {
   public:
    Readable(FaultInjectionEnv& env, std::shared_ptr<Node> node, std::string name)
        : env_(env), node_(std::move(node)), name_(std::move(name)) {}

    std::size_t read(std::uint64_t offset, void* buf, std::size_t n) override {
      env_.before_op();
      ++env_.stats_.reads;
      const std::string& d = node_->data;
      if (offset >= d.size()) return 0;
      std::size_t avail = std::min<std::size_t>(n, d.size() - offset);
      if (avail > 1 && env_.chance(env_.cfg_.short_read_per_mille)) {
        ++env_.stats_.short_reads;
        avail = 1 + env_.next_below(avail - 1);
      }
      std::memcpy(buf, d.data() + offset, avail);
      env_.stats_.bytes_read += avail;
      return avail;
    }

    std::uint64_t size() override {
      env_.before_op();
      return node_->data.size();
    }

   private:
    FaultInjectionEnv& env_;
    std::shared_ptr<Node> node_;
    std::string name_;
  };

  friend class Writable;
  friend class Readable;

  /// Runs before every env operation: once crashed, everything fails until
  /// apply_crash(); otherwise count down to the scheduled crash and roll
  /// the transient-EIO die. EIO fires BEFORE the op takes effect, so a
  /// retried op is exactly-once.
  void before_op() {
    if (crashed_) throw CrashError("fault env: machine is down");
    ++stats_.ops;
    if (cfg_.crash_after_ops != 0) {
      if (ops_until_crash_ <= 1) {
        crashed_ = true;
        ++stats_.crashes;
        throw CrashError("fault env: scheduled power cut");
      }
      --ops_until_crash_;
    }
    if (chance(cfg_.eio_per_mille)) {
      ++stats_.eio_injected;
      throw TransientIOError("fault env: injected EIO");
    }
  }

  bool chance(std::uint32_t per_mille) {
    return per_mille != 0 && next_below(1000) < per_mille;
  }

  std::uint64_t next_u64() {
    // splitmix64 — deterministic, seed-derived, no global state.
    std::uint64_t z = (rng_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::size_t next_below(std::size_t n) {
    return n == 0 ? 0 : static_cast<std::size_t>(next_u64() % n);
  }

  FaultConfig cfg_;
  std::uint64_t rng_;
  std::uint64_t ops_until_crash_ = cfg_.crash_after_ops;
  bool crashed_ = false;
  Files live_;
  Files committed_;
  FaultStats stats_;
};

}  // namespace costream::storage
