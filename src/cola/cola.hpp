// Cache-oblivious lookahead array (COLA) — the paper's Section 3 and the
// implementation its Section 4 benchmarks (the "g-COLA" with growth factor g
// and pointer density p).
//
// Structure. Level 0 holds 1 element; level l > 0 holds up to
// 2(g-1)g^(l-1) real elements plus floor(2p(g-1)g^(l-1)) redundant elements
// (lookahead pointers sampling level l+1). Levels are stored contiguously
// and each level keeps its occupied slots right-justified (paper Section 4),
// which is what enables the "prepend" merge: when everything being merged
// into a level sorts before the level's current contents, the existing
// elements do not move — the mechanism behind Figure 5's descending-order
// advantage.
//
// Inserts. A level is full after it has received g-1 merges. An insert that
// cannot go straight into level 0 merges levels 0..t-1 plus the new element
// into the first non-full level t (one cascading pass: O(k) work and O(k/B)
// transfers for k items, Lemma 19 generalized to growth g as in the
// cache-aware tradeoff of Section 3). With g = 2 and p > 0 this is the COLA
// (O((log N)/B) amortized insert, O(log N) search, Lemmas 19-20); with p = 0
// it is the "basic COLA" (O(log^2 N) search); with g = Theta(B^eps) it
// matches the B^eps-tree bounds (see lookahead_array.hpp).
//
// Searches use fractional cascading: each level stores lookahead slots
// (key + slot index in the next level) interleaved in key order, and every
// slot knows the nearest lookahead slot at-or-left and at-or-right of it
// (the paper's "duplicate lookahead pointers" folded into the 32-byte
// element padding). A search therefore examines a constant-size window per
// level after the first.
//
// Semantics. insert() is an upsert (newest wins; older duplicates are
// discarded during merges). erase() is a blind tombstone — the paper treats
// deletes as tombstoned insertions riding the same cascade — annihilated
// when a merge reaches the deepest level. erase_batch()/apply_batch()
// extend the batch contract (api/dictionary.hpp) to deletes and mixed
// put/erase runs: one normalized run, one cascade, tombstones carried like
// insertions. Tiered levels additionally keep per-segment live/tombstone
// counts and bound retention via ColaConfig::tombstone_threshold: past the
// threshold the deepest level is folded in place (annihilating) and the
// trivial-move fast path is vetoed, so sustained erase-heavy feeds stay
// space-bounded.
//
// Staging L0 (extension). With staging_capacity > 0 the structure keeps an
// append arena in front of the levels: inserts, erases, and batches land in
// the arena in O(1) (batches are normalized on arrival, so the arena is a
// sequence of sorted runs) until it holds staging_capacity entries, at
// which point the runs are merged once (newest-wins) and carried down by
// ONE cascaded merge. This breaks the batch movement bound: a feed of
// batches of size k with an arena of g*k entries pays the deep-merge volume
// once per g batches instead of once per batch. Reads stay exact — find()
// binary-searches the arena's runs newest-first before the levels, and the
// ordered scans merge a sorted view of the arena as the newest source. The
// cost is the arena probes on a cold find, the classic write-optimization
// lever (cf. the g = Theta(B^eps) tradeoff).
//
// Tiered levels (extension, the ingest-tuned cascade core). The classic
// cascade rewrites a level's whole contents on every merge it receives, so
// a level is rewritten g-1 times before it drains and every element moves
// Theta(g) times per level — which is why large g LOSES ingest throughput
// in the classic geometry. With tiered = true each level instead holds up
// to g-1 independent sorted SEGMENTS: an arriving run is appended as a new
// segment (one sequential write, nothing rewritten), and only when a level
// is out of segments or space does a drain g-way-merge its segments into a
// single new segment one level down. Every element is then written O(1)
// times per level — O(log_g N) moves total instead of O(g log_g N) — at
// the price of searches probing up to g-1 segments per level (lookahead
// pointers assume globally sorted levels and are disabled in this mode).
// This is the LSM "size-tiered vs leveled" tradeoff inside the COLA
// geometry; ingest_tuned() presets select it.
//
// Read path (extensions). Every tiered segment and staging run carries
// min/max FENCE KEYS (O(1) to maintain on append): find() and cursor seeks
// skip sources whose range excludes the probe, which prunes most probes on
// range-disjoint (time-partitioned) feeds — the knob fence_keys gates only
// the read side, for ablations.
//
// Snapshots (the read contract since the snapshot redesign — see
// api/dictionary.hpp). Tiered segments are REF-COUNTED IMMUTABLE units
// (snap::Segment held by shared_ptr): a fold retires its sources by
// dropping the level's references, so any open snapshot keeps them alive
// until it closes — deferred free by refcount, no drain barrier.
// snapshot() stamps the current segment set plus a frozen copy of the
// staging arena (collapsed to one ephemeral segment) at the current
// mutation epoch, cached per epoch so repeated acquisitions between
// mutations are refcount bumps. Classic (non-tiered) levels are rewritten
// in place by merges, so their snapshot is copy-on-snapshot: each level's
// real entries are copied into an immutable segment. All ordered reads —
// Cursor, range_for_each, for_each — run on snap::SnapshotCursor over a
// snapshot (one loser-tree code path, newest-wins dedup + tombstone
// suppression), so they stay valid across arbitrary mutations; find()
// keeps its dedicated live probe path (fences + per-level binary search)
// because point reads never straddle a mutation. DAM accounting for scans
// rides a MemHook installed on the structure's own cursors only; detached
// Snapshot handles are free of accounting state and safe to read from
// other threads. The classic copy-on-snapshot build charges its real IO
// (stream source slots, stream-write the copy) once per mutation epoch,
// and the copies live at allocated logical addresses so hooked per-probe
// reads keep counting.
//
// Retention (tiered). Tombstones are bounded by tombstone_threshold (PR 3)
// and shadowed LIVE duplicates — the churn failure mode — by
// staleness_threshold: each fold counts its distinct duplicated keys (free
// byproduct of the merge), credits them to per-segment staleness estimates
// of the data they shadow, and past the threshold the deepest level takes
// a forced FULL compaction (levels 0..d into one segment — cross-level
// duplicates die even at g = 2, where a level holds a single segment).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "cola/compactor.hpp"
#include "cola/kernels.hpp"
#include "common/entry.hpp"
#include "common/filter.hpp"
#include "common/loser_tree.hpp"
#include "common/simd.hpp"
#include "common/snapshot.hpp"
#include "common/span.hpp"
#include "dam/mem_model.hpp"

namespace costream::cola {

struct ColaConfig {
  unsigned growth = 2;          // g >= 2
  double pointer_density = 0.1; // p in [0, 0.5]; 0 disables lookahead pointers
  bool enable_prepend = true;   // right-justified "prepend" merge fast path
                                // (paper Section 4); off only for ablations
  std::size_t staging_capacity = 0;  // L0 staging arena entries; 0 disables
  bool tiered = false;  // segmented levels (append segments, merge on drain);
                        // disables lookahead pointers
  // Tiered mode only: bound on a level's tombstone fraction. Tombstones are
  // annihilated only by folds that land past all older data, so a sustained
  // erase-heavy feed would otherwise pile them up in bottom-level segments.
  // When the deepest level's tombstone mass crosses this fraction of its
  // occupancy, the trivial-move fast path is vetoed (forcing the next drain
  // to be a real, annihilating fold) and the deepest level is compacted in
  // place. Amortized cost: one level rewrite per threshold*|level| erasures,
  // i.e. O(1/(threshold*B)) extra transfers per erase (dam/bounds.hpp).
  // Values > 1.0 disable the forcing.
  double tombstone_threshold = 0.25;
  // Tiered mode only: bound on a level's ESTIMATED shadowed-live fraction —
  // the churn analogue of tombstone_threshold. A fixed-live-set churn feed
  // retains duplicate live copies in older bottom-level segments (they are
  // annihilated only by real folds, and the trivial-move fast path defers
  // those), so each cascade fold feeds its own observed key-reuse rate into
  // a per-segment staleness estimate; when the deepest level's estimated
  // stale mass crosses this fraction of its occupancy, the same forced
  // bottom fold fires. Zero extra I/O: the estimate reuses the duplicate
  // count the fold computes anyway. Values > 1.0 disable the forcing.
  double staleness_threshold = 0.5;
  // Per-segment (and per-staging-run) min/max fence keys: maintained on
  // every append/fold at O(1) cost, and used by find and Cursor::seek to
  // skip whole segments whose key range excludes the probe. The knob only
  // gates the READ-side use (fences are always maintained), so ablations
  // can isolate the search win.
  bool fence_keys = true;
  // Tiered mode only: mint a per-segment blocked Bloom filter at every
  // fold/flush (O(1)/element, ~10 bits/key — common/filter.hpp). Fences
  // prune nothing under uniform-random feeds (every segment spans the whole
  // keyspace); filters answer "definitely absent" for ~(1 - kDesignFpr) of
  // the segments a fence cannot rule out, collapsing cold-find probes from
  // `segs` to 1 + FPR*(segs-1). Off by default (space + mint cost);
  // ingest_tuned() turns it on.
  bool filters = false;
  // Use the SIMD kernel tier (common/simd.hpp, picked at runtime per CPU)
  // for unaccounted searches and for fold merges. Off forces the scalar
  // reference kernels — the ablation/differential-testing knob; the
  // COSTREAM_SIMD env var further clamps the whole process.
  bool simd = true;
  // Background compaction (tiered mode only): deep folds run on the
  // process-shared compaction pool (cola/compactor.hpp) instead of the
  // mutating thread — the writer snapshots the fold's input segment refs,
  // enqueues, and returns; the finished output installs at the writer's
  // next mutation, BELOW any segments that arrived at the target level
  // after the snapshot point (newest-first order is preserved). 0 keeps
  // every fold inline (the historical synchronous behavior). Active only
  // under the null memory model: the counting DAM models are stateful LRU
  // simulators whose transfer counts depend on touch ORDER and which are
  // not thread-safe, so accounted builds always fold inline — which is
  // exactly what makes modeled transfers bit-identical to the sync path.
  // The COSTREAM_COMPACTION=sync env var clamps the whole process inline.
  unsigned compaction_threads = 0;
  // Fault-injection knobs for the compaction oracle self-tests (never set
  // outside tests). unsafe_break_install_order appends a finished fold's
  // output ABOVE post-snapshot arrivals instead of below them — exactly
  // the install-ordering bug the differential fuzz oracle must catch.
  // unsafe_defer_install suppresses the opportunistic install at mutator
  // entry (folds install only on writer-assist or drain), maximizing the
  // window in which arrivals stack above an in-flight fold.
  bool unsafe_break_install_order = false;
  bool unsafe_defer_install = false;
};

/// Ingest-tuned preset: growth factor g, tiered (segmented) levels, and a
/// staging arena sized to absorb g batches of `batch_hint` entries before
/// the first cascaded merge. The deployment presets are g in {2, 4, 8, 16};
/// larger g means fewer levels and bulkier, rarer drains — each element is
/// moved O(log_g N) times — while searches pay up to g-1 segment probes per
/// level plus the arena probes.
inline ColaConfig ingest_tuned(unsigned g, std::size_t batch_hint = 1024) {
  ColaConfig cfg;
  cfg.growth = g;
  cfg.staging_capacity = static_cast<std::size_t>(g) * batch_hint;
  cfg.tiered = true;
  cfg.pointer_density = 0.0;  // lookahead pointers need globally sorted levels
  cfg.filters = true;  // uniform-random cold finds are the tiered weak spot
  return cfg;
}

struct ColaStats {
  std::uint64_t merges = 0;
  std::uint64_t batch_merges = 0;     // cascades triggered by insert_batch
  std::uint64_t prepend_merges = 0;   // merges that left the target in place
  std::uint64_t entries_merged = 0;   // real entries written by merges
  std::uint64_t tombstones_dropped = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t stage_flushes = 0;    // staging-arena drains (one cascade each)
  std::uint64_t stage_absorbed = 0;   // entries that landed in the arena
  std::uint64_t forced_bottom_folds = 0;  // tombstone/staleness compactions
  std::uint64_t staleness_folds = 0;  // forced folds triggered by staleness
  std::uint64_t fence_seg_skips = 0;  // segments skipped by fence keys (reads)
  std::uint64_t fence_run_skips = 0;  // staging runs skipped by fence keys
  std::uint64_t filter_seg_skips = 0; // segments skipped by Bloom filters
  std::uint64_t find_seg_probes = 0;  // segments actually binary-searched
};

/// Background-compaction observability (tiered mode with
/// ColaConfig::compaction_threads > 0). Returned by value as a coherent
/// photograph: the internals are relaxed atomics (bg_fold_ns is written by
/// pool workers; a sharded facade's test thread may read while the shard
/// worker mutates), same pattern as the sharded facade's stats.
struct CompactionStats {
  std::uint64_t folds_deferred = 0;  // folds enqueued to the process pool
  std::uint64_t writer_assists = 0;  // folds the writer ran inline anyway
                                     // (queue saturated, overlapping
                                     // cascade, retention pressure, drain)
  std::uint64_t compaction_queue_peak = 0;  // this structure's high-water
                                            // pool queue depth at submit
  std::uint64_t bg_fold_ns = 0;  // total wall ns spent inside fold jobs
};

template <class K = Key, class V = Value, class MM = dam::null_mem_model>
class Gcola {
 public:
  static constexpr std::uint32_t kNoIdx = 0xffffffffu;

  explicit Gcola(ColaConfig cfg = ColaConfig{}, MM mm = MM{})
      : cfg_(cfg),
        isa_(cfg.simd ? simd::active_isa() : simd::Isa::kScalar),
        mm_(std::move(mm)) {
    if (cfg_.growth < 2) throw std::invalid_argument("cola: growth factor must be >= 2");
    if (cfg_.pointer_density < 0.0 || cfg_.pointer_density > 0.5) {
      throw std::invalid_argument("cola: pointer density must be in [0, 0.5]");
    }
    // Background folds only under the null memory model — the counting DAM
    // models are order-sensitive and single-threaded, so accounted builds
    // fold inline and stay transfer-identical to sync by construction.
    bg_enabled_ = cfg_.tiered && cfg_.compaction_threads > 0 &&
                  std::is_same_v<MM, dam::null_mem_model> &&
                  !compact::sync_forced();
    if (bg_enabled_) {
      compact::Pool::instance().ensure_threads(cfg_.compaction_threads);
    }
  }

  // -- observers --------------------------------------------------------------

  const ColaConfig& config() const noexcept { return cfg_; }
  const ColaStats& stats() const noexcept { return stats_; }
  MM& mm() noexcept { return mm_; }
  std::size_t level_count() const noexcept { return levels_.size(); }

  /// Atomic photograph of the background-compaction counters (safe to call
  /// from a thread other than the writer — the ShardedStats pattern).
  CompactionStats compaction_stats() const noexcept {
    CompactionStats s;
    if (cstats_ != nullptr) {
      s.folds_deferred = cstats_->folds_deferred.load(std::memory_order_relaxed);
      s.writer_assists = cstats_->writer_assists.load(std::memory_order_relaxed);
      s.compaction_queue_peak =
          cstats_->queue_peak.load(std::memory_order_relaxed);
      s.bg_fold_ns = cstats_->bg_fold_ns.load(std::memory_order_relaxed);
    }
    return s;
  }

  /// True while a background fold is in flight or awaiting install.
  bool compaction_pending() const noexcept { return pending_active_; }

  /// Complete and install any in-flight background fold (writer thread
  /// only, like every mutator). The quiesce point for checkpoints, shard
  /// drains, bulk loads, and tests that assert on settled structure.
  void drain_compaction() {
    if (pending_active_) assist_pending();
  }

  /// Physical real entries (including not-yet-annihilated tombstones and
  /// entries still staged in the L0 arena). While a background fold is in
  /// flight its input mass counts pre-dedup — the fold has not run yet, so
  /// the duplicates it will collapse are still physically present.
  std::uint64_t item_count() const noexcept {
    std::uint64_t n = stage_.size();
    for (const Level& lv : levels_) n += lv.real_count;
    if (pending_active_) n += pend_total_in_;
    return n;
  }

  /// Entries currently held in the staging arena (tests/benches).
  std::size_t staged_count() const noexcept { return stage_.size(); }

  /// Sorted runs currently in the arena; O(log occupancy) under single-op
  /// feeds thanks to the binary-counter tail merge (tests).
  std::size_t stage_run_count() const noexcept { return stage_runs_.size(); }

  /// Real entries in one level (tests).
  std::uint64_t level_real_count(std::size_t l) const noexcept {
    return l < levels_.size() ? levels_[l].real_count : 0;
  }

  /// Not-yet-annihilated tombstones held in one level's segments (tiered
  /// mode; tests and the bounded-retention policy).
  std::uint64_t level_tombstone_count(std::size_t l) const noexcept {
    return l < levels_.size() ? levels_[l].tomb_count : 0;
  }

  /// Segments currently held by one tiered level (tests/benches: the
  /// denominator for fence-skip fractions).
  std::size_t level_segment_count(std::size_t l) const noexcept {
    return l < levels_.size() ? levels_[l].segs.size() : 0;
  }

  /// Estimated shadowed-live mass in one level (tiered mode; tests and the
  /// staleness-retention policy).
  std::uint64_t level_stale_count(std::size_t l) const noexcept {
    return l < levels_.size() ? levels_[l].stale_count : 0;
  }

  /// Bytes of slot storage across all levels plus the staging arena
  /// reservation (space accounting). Tiered levels store compact items and
  /// only their occupancy.
  std::uint64_t bytes() const noexcept {
    std::uint64_t b = cfg_.staging_capacity * sizeof(TItem);
    for (const Level& lv : levels_) {
      b += lv.slots.size() * sizeof(Slot) + lv.real_count * sizeof(TItem);
      for (const SegRef& seg : lv.segs) {
        b += seg->filter.size() * sizeof(std::uint64_t);
      }
    }
    return b;
  }

  /// Live Segment objects across the process (snapshot-churn leak tests).
  static std::int64_t live_segments() noexcept {
    return snap::live_segment_count().load(std::memory_order_relaxed);
  }

  std::optional<V> find(const K& key) const {
    // The staging arena is newer than every level; probe its sorted runs
    // newest-first so the latest staged copy (or tombstone) wins. Per-run
    // fence keys skip runs whose key range excludes the probe without
    // touching the run at all.
    for (std::size_t r = stage_runs_.size(); r-- > 0;) {
      if (cfg_.fence_keys &&
          (key < stage_run_min_[r] || stage_run_max_[r] < key)) {
        ++stats_.fence_run_skips;
        continue;
      }
      const std::uint32_t b = stage_runs_[r];
      const std::uint32_t e = r + 1 < stage_runs_.size()
                                  ? stage_runs_[r + 1]
                                  : static_cast<std::uint32_t>(stage_.size());
      std::uint32_t lo;
      if constexpr (std::is_same_v<MM, dam::null_mem_model>) {
        // No accounting to preserve: the branchless kernel searches the
        // contiguous key plane directly.
        lo = b + static_cast<std::uint32_t>(
                     simd::lower_bound_keys(stage_.keys.data() + b, e - b, key, isa_));
      } else {
        std::uint32_t hi = e;
        lo = b;
        while (lo < hi) {  // manual binary search so every probe is accounted
          const std::uint32_t mid = lo + (hi - lo) / 2;
          mm_.touch(stage_base_ + static_cast<std::uint64_t>(mid) * sizeof(TItem),
                    sizeof(TItem));
          if (stage_.keys[mid] < key) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
      }
      if (lo < e && stage_.keys[lo] == key) {
        if ((stage_.flags[lo] & kFlagTombstone) != 0) return std::nullopt;
        return stage_.vals[lo];
      }
    }
    if (cfg_.tiered) return find_tiered(key);
    // Window into the level being examined; kNoIdx means "whole level".
    std::uint32_t wlo = kNoIdx, whi = kNoIdx;
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      const Level& lv = levels_[l];
      if (lv.occ_begin == lv.slots.size()) {  // empty level: reset the window
        wlo = whi = kNoIdx;
        continue;
      }
      const std::uint32_t S = lv.occ_begin;
      const std::uint32_t E = static_cast<std::uint32_t>(lv.slots.size());
      std::uint32_t lo = wlo == kNoIdx ? S : std::max(wlo, S);
      std::uint32_t hi = whi == kNoIdx ? E : std::min(whi, E);

      // First index in [lo, hi) with slot key > key.
      std::uint32_t idx = level_upper_bound(l, lo, hi, key);

      if (idx > lo) {
        const Slot& pred = lv.slots[idx - 1];
        touch_slot(l, idx - 1);
        if (!pred.is_lookahead() && pred.key == key) {
          if (pred.is_tombstone()) return std::nullopt;
          return pred.value;
        }
      }
      next_window(l, idx, lo, &wlo, &whi);
    }
    return std::nullopt;
  }

  /// Point-in-time snapshot (contract in api/dictionary.hpp): the current
  /// segment set plus a frozen staging view, stamped at the current
  /// mutation epoch. Cached per epoch — repeated acquisitions between
  /// mutations are refcount bumps. Tiered mode pins the live segments
  /// (zero copying beyond the staging arena); classic mode copies each
  /// level's real entries into an immutable segment. The returned handle
  /// stays exactly as stamped across arbitrary later mutations and is safe
  /// to read from other threads.
  snap::Snapshot<K, V> snapshot() const {
    if (snap_cache_ && snap_epoch_ == mutation_epoch_) return snap_cache_;
    auto data = std::make_shared<snap::SnapshotData<K, V>>();
    data->epoch = mutation_epoch_;
    data->fence_keys = cfg_.fence_keys;
    // The frozen staging view is the NEWEST source: a sorted, deduplicated
    // copy of the arena (tombstones kept — they must shadow deeper copies;
    // the readers suppress them). It keeps the arena's logical address so
    // hooked reads charge the (cache-hot) arena region, as the pre-snapshot
    // cursor did when it streamed the stage directly.
    if (!stage_.empty()) {
      // Each arena run is already sorted and unique, so the frozen view is
      // a pairwise newest-wins collapse of the runs — the same kernel fold
      // the flush path uses, not a from-scratch sort of the whole arena.
      snap_stage_view_.assign(stage_.view());
      snap_stage_runs_ = stage_runs_;
      std::uint64_t dups = 0;  // local: const reads must not disturb fold stats
      kern::collapse_runs(snap_stage_view_, snap_stage_runs_, snap_stage_tmp_,
                          snap_stage_runs_scratch_, isa_, &dups);
      if (snap::SegmentRef<K, V> seg = snap::make_segment(
              std::move(snap_stage_view_.keys), std::move(snap_stage_view_.vals),
              std::move(snap_stage_view_.flags), /*id=*/0, stage_base_,
              mutation_epoch_)) {
        data->segs.push_back(std::move(seg));
      }
      snap_stage_view_.clear();
    }
    if (cfg_.tiered) {
      // Levels shallow -> deep, segments newest -> oldest: exactly the
      // loser tree's priority order. Pinning is a shared_ptr copy. An
      // in-flight background fold's inputs interleave at its install level
      // in recency order (push_level_segs).
      for (std::size_t l = 0; l < levels_.size(); ++l) {
        push_level_segs(l, data->segs);
      }
    } else {
      // Classic levels are rewritten in place by merges: copy-on-snapshot.
      // Each level is one sorted run of unique real keys, shallower =
      // newer, so per-level segments slot straight into priority order.
      // The build is real IO the structure performs — stream-read the
      // occupied slots and stream-write the copy into a freshly allocated
      // logical region — charged once per mutation epoch (the cache above);
      // hooked cursor reads then charge the copy's region per probe.
      for (std::size_t l = 0; l < levels_.size(); ++l) {
        const Level& lv = levels_[l];
        if (lv.real_count == 0) continue;
        touch_region(l, lv.occ_begin,
                     lv.slots.size() - lv.occ_begin, /*write=*/false);
        snap_stage_view_.clear();
        snap_stage_view_.reserve(lv.real_count);
        for (std::uint32_t i = lv.occ_begin; i < lv.slots.size(); ++i) {
          const Slot& s = lv.slots[i];
          if (s.is_lookahead()) continue;
          snap_stage_view_.push_back(s.key, s.value,
                                     static_cast<std::uint8_t>(s.flags));
        }
        const std::uint64_t base = next_base_;
        next_base_ += snap_stage_view_.size() * sizeof(TItem);
        if (snap::SegmentRef<K, V> seg = snap::make_segment(
                std::move(snap_stage_view_.keys),
                std::move(snap_stage_view_.vals),
                std::move(snap_stage_view_.flags), /*id=*/0, base,
                mutation_epoch_)) {
          mm_.touch_write(base, seg->size() * sizeof(TItem));
          data->segs.push_back(std::move(seg));
        }
        snap_stage_view_.clear();
      }
    }
    snap_cache_ = snap::Snapshot<K, V>(std::move(data));
    snap_epoch_ = mutation_epoch_;
    return snap_cache_;
  }

  /// Lock-free publication source for the sharded facade's barrier-free
  /// read path (the shard worker republishes after every applied job): the
  /// same frozen contents snapshot() pins, built without the per-epoch
  /// cache and without collapsing the staging arena. Every staging run is
  /// already sorted and deduplicated on its own, so each run becomes its
  /// own immutable segment — minted lazily once and reused across
  /// republishes (stage_run_segs_); the binary-counter tail merge
  /// invalidates exactly the runs it rewrites. A republish after a batch
  /// append therefore costs O(appended data) plus segment-handle copies,
  /// not a sort of the whole arena. Segments land newest-first: staging
  /// runs (newest run first), then tiered levels shallow to deep. Classic
  /// (non-tiered) levels are rewritten in place by merges and have no
  /// immutable units to pin, so they fall back to the cached
  /// copy-on-snapshot path. Owner-thread only, like every const read;
  /// the RETURNED view is immutable and free-threaded. Publication is an
  /// in-memory mirror, not structural IO — it charges nothing to the DAM
  /// model (dam/bounds.hpp::sharded_search_transfer_bound).
  std::shared_ptr<const snap::SnapshotData<K, V>> publish_view() const {
    if (!cfg_.tiered) return snapshot().data();
    auto data = std::make_shared<snap::SnapshotData<K, V>>();
    data->epoch = mutation_epoch_;
    data->fence_keys = cfg_.fence_keys;
    for (std::size_t r = stage_runs_.size(); r-- > 0;) {
      if (!stage_run_segs_[r]) {
        const std::uint32_t b = stage_runs_[r];
        const std::uint32_t e = r + 1 < stage_runs_.size()
                                    ? stage_runs_[r + 1]
                                    : static_cast<std::uint32_t>(stage_.size());
        stage_run_segs_[r] = snap::make_segment(
            std::vector<K>(stage_.keys.begin() + b, stage_.keys.begin() + e),
            std::vector<V>(stage_.vals.begin() + b, stage_.vals.begin() + e),
            std::vector<std::uint8_t>(stage_.flags.begin() + b,
                                      stage_.flags.begin() + e),
            /*id=*/0,
            stage_base_ + static_cast<std::uint64_t>(b) * sizeof(TItem),
            mutation_epoch_);
      }
      data->segs.push_back(stage_run_segs_[r]);
    }
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      push_level_segs(l, data->segs);
    }
    return data;
  }

  /// Visit live entries with lo_key <= key <= hi_key ascending; newest value
  /// wins, tombstoned keys are skipped. One code path with the cursor API:
  /// a bounded seek over a one-shot internal snapshot on the
  /// dictionary-owned scratch cursor, allocation-free in steady state (the
  /// snapshot is cached per mutation epoch).
  template <class Fn>
  void range_for_each(const K& lo_key, const K& hi_key, Fn&& fn) const {
    if (hi_key < lo_key) return;
    scan_cur_.attach(snapshot().data());
    scan_cur_.set_mem_hook(read_hook());
    for (scan_cur_.seek(lo_key, hi_key); scan_cur_.valid(); scan_cur_.next()) {
      const Entry<K, V>& e = scan_cur_.entry();
      fn(e.key, e.value);
    }
  }

  /// Visit every live entry ascending. A dedicated unbounded scan, not a
  /// range query with sentinel bounds: std::numeric_limits<K>::min() is the
  /// smallest POSITIVE value for floating-point K and a default-constructed
  /// object for composite keys, either of which would silently drop entries.
  template <class Fn>
  void for_each(Fn&& fn) const {
    scan_cur_.attach(snapshot().data());
    scan_cur_.set_mem_hook(read_hook());
    for (scan_cur_.seek_first(); scan_cur_.valid(); scan_cur_.next()) {
      const Entry<K, V>& e = scan_cur_.entry();
      fn(e.key, e.value);
    }
  }

  // -- mutators ---------------------------------------------------------------

  void insert(const K& key, const V& value) { put(key, value, /*tombstone=*/false); }

  /// Blind delete (tombstone); O((log N)/B) amortized like insert.
  void erase(const K& key) { put(key, V{}, /*tombstone=*/true); }

  /// Bulk upsert (batch contract in api/dictionary.hpp): sort + dedup the
  /// run once, then execute ONE cascaded merge that carries the whole run
  /// into the shallowest level with room, instead of n independent cascades.
  /// A batch of n costs O((n + d)/B) transfers, d = displaced items — the
  /// bulk movement across block boundaries the paper's analysis is built on.
  void insert_batch(Span<Entry<K, V>> batch) {
    const Entry<K, V>* data = batch.data();
    const std::size_t n = batch.size();
    if (n == 0) return;
    ++mutation_epoch_;
    poll_install();
    // Staging path: normalize the batch while it is small and cache-hot
    // (sort + newest-wins dedup of k entries, not of the whole arena), then
    // append it as one sorted run; the cascade only runs when the arena
    // itself fills, and the flush merges presorted runs instead of sorting
    // staging_capacity entries from scratch.
    if (cfg_.staging_capacity > 0) {
      ensure_stage_base();
      // Sort in Entry form (half the bytes of a Slot) — duplicates KEPT in
      // input order — then widen into the arena planes and let the
      // vectorized keep-last kernel collapse them in place: the newest-wins
      // result is identical to sort_dedup_newest_wins (stable sort + last
      // occurrence per key), but the dedup scan runs data-parallel.
      std::vector<Entry<K, V>>& run = stage_entry_scratch_;
      run.assign(data, data + n);
      sort_by_key(run, stage_entry_sort_scratch_);
      stage_.reserve(std::max(cfg_.staging_capacity, stage_.size() + run.size()));
      const std::size_t b = stage_.size();
      stage_runs_.push_back(static_cast<std::uint32_t>(b));
      append_widened(run.data(), run.data() + run.size(), stage_);
      stats_.duplicates_dropped += kern::dedup_newest_wins(stage_, b, isa_);
      stage_run_min_.push_back(stage_.keys[b]);
      stage_run_max_.push_back(stage_.keys.back());
      stage_run_segs_.emplace_back();
      mm_.touch_write(stage_base_ + b * sizeof(TItem),
                      (stage_.size() - b) * sizeof(TItem));
      stats_.stage_absorbed += n;
      // Keep the arena's run count logarithmic under tiny-batch feeds too
      // (a size-1 insert_batch is a singleton append like put()'s).
      counter_merge_stage_tail();
      if (stage_.size() >= cfg_.staging_capacity) flush_stage();
      return;
    }
    ensure_level(0);
    if (cfg_.tiered) {
      std::vector<Entry<K, V>>& run = stage_entry_scratch_;
      run.assign(data, data + n);
      sort_by_key(run, stage_entry_sort_scratch_);
      titem_run_.clear();
      append_widened(run.data(), run.data() + run.size(), titem_run_);
      stats_.duplicates_dropped += kern::dedup_newest_wins(titem_run_, 0, isa_);
      ++stats_.batch_merges;
      incoming_spans_.assign(1, titem_run_.view());
      cascade_run_tiered(titem_run_.size());
      return;
    }
    std::vector<Slot>& run = scratch_batch_;
    run.clear();
    run.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      Slot s{};
      s.key = data[i].key;
      s.value = data[i].value;
      run.push_back(s);
    }
    const std::size_t before = run.size();
    sort_dedup_newest_wins(run, scratch_a_);
    stats_.duplicates_dropped += before - run.size();
    // A singleton run with room in level 0 is exactly a single insert.
    if (run.size() == 1 && !level_full(0)) {
      put(run[0].key, run[0].value, /*tombstone=*/false);
      return;
    }
    ++stats_.batch_merges;
    cascade_run(run);
  }

  /// Blind bulk delete (batch contract in api/dictionary.hpp): equivalent
  /// to calling erase(keys[i]) for i = 0..n-1 in order, at batch cost — the
  /// tombstones are normalized into ONE sorted run (duplicate keys collapse
  /// to a single tombstone) and ride the same staging-arena / cascade path
  /// as insert_batch. Annihilation happens where it always does: folds past
  /// all older data strip matched and unmatched tombstones alike, and the
  /// tombstone-pressure policy bounds how long they may linger (see
  /// ColaConfig::tombstone_threshold).
  void erase_batch(Span<K> keys) {
    const std::size_t n = keys.size();
    if (n == 0) return;
    std::vector<TItem>& run = titem_batch_;
    run.clear();
    run.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      TItem s{};
      s.key = keys[i];
      s.flags = kFlagTombstone;
      run.push_back(s);
    }
    apply_normalized(run, n);
  }

  /// Mixed put/erase batch (batch contract in api/dictionary.hpp): the LAST
  /// operation on a key within the batch wins — put-vs-erase included — and
  /// the whole batch is newer than everything already present. Identical in
  /// effect to replaying the ops with insert()/erase() one at a time, in one
  /// normalized run and one cascade.
  void apply_batch(Span<Op<K, V>> ops) {
    const std::size_t n = ops.size();
    if (n == 0) return;
    std::vector<TItem>& run = titem_batch_;
    run.clear();
    run.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      TItem s{};
      s.key = ops[i].key;
      s.value = ops[i].value;
      s.flags = ops[i].erase ? kFlagTombstone : 0u;
      run.push_back(s);
    }
    apply_normalized(run, n);
  }

  // Deprecated pointer-form batch shims (one release; migration note in
  // api/dictionary.hpp — CI's deprecated-api lint rejects in-repo callers).
  void insert_batch(const Entry<K, V>* data, std::size_t n) {
    insert_batch(Span<Entry<K, V>>(data, n));
  }
  void erase_batch(const K* keys, std::size_t n) {
    erase_batch(Span<K>(keys, n));
  }
  void apply_batch(const Op<K, V>* ops, std::size_t n) {
    apply_batch(Span<Op<K, V>>(ops, n));
  }

  /// Drain the staging arena into the levels (normally automatic when the
  /// arena fills; public so tests and checkpointing can force a flush).
  void flush_stage() {
    if (stage_.empty()) return;
    ++mutation_epoch_;
    poll_install();
    ensure_level(0);
    ++stats_.stage_flushes;
    ++stats_.batch_merges;
    mm_.touch(stage_base_, stage_.size() * sizeof(TItem));
    if (cfg_.tiered) {
      // Fused flush: the arena's sorted runs feed the cascade's collapse
      // directly as spans (oldest first) — no separate normalization pass.
      incoming_spans_.clear();
      for (std::size_t r = 0; r < stage_runs_.size(); ++r) {
        const std::uint32_t b = stage_runs_[r];
        const std::uint32_t e = r + 1 < stage_runs_.size()
                                    ? stage_runs_[r + 1]
                                    : static_cast<std::uint32_t>(stage_.size());
        incoming_spans_.push_back(stage_.subview(b, e));
      }
      cascade_run_tiered(stage_.size());
    } else {
      const std::size_t before = stage_.size();
      normalize_stage();
      stats_.duplicates_dropped += before - stage_.size();
      // The classic cascade consumes plane form directly — no Slot
      // widening pass between the arena and the per-level merges.
      cls_acc_.assign(stage_.view());
      cascade_run_planes();
    }
    stage_.clear();
    stage_runs_.clear();
    stage_run_min_.clear();
    stage_run_max_.clear();
    stage_run_segs_.clear();
  }

  /// Build from entries sorted ascending by strictly increasing key,
  /// replacing the current contents. Places everything in the shallowest
  /// level that fits (one sequential write, O(n/B) transfers) and rebuilds
  /// the lookahead chain — the COLA analogue of a B-tree bulk load.
  void bulk_load(const std::vector<Entry<K, V>>& sorted) {
    // A bulk load replaces the contents wholesale: land any in-flight fold
    // first so its segment refs release (then everything clears anyway).
    drain_compaction();
    ++mutation_epoch_;
    levels_.clear();
    stage_.clear();
    stage_runs_.clear();
    stage_run_min_.clear();
    stage_run_max_.clear();
    stage_run_segs_.clear();
    next_base_ = 0;
    stage_base_set_ = false;
    bottom_relocated_ = false;
    std::size_t t = 0;
    while (real_cap(t) < sorted.size()) ++t;
    ensure_level(t);
    if (cfg_.tiered) {
      Level& lv = levels_[t];
      titem_run_.clear();
      append_widened(sorted.data(), sorted.data() + sorted.size(), titem_run_);
      clear_level(lv);
      SegRef seg = new_segment(std::move(titem_run_.keys),
                               std::move(titem_run_.vals),
                               std::move(titem_run_.flags));
      titem_run_.clear();
      mm_.touch_write(seg->base_addr, seg->size() * sizeof(TItem));
      lv.segs.assign(1, std::move(seg));
      lv.seg_stale.assign(1, 0);
      lv.tomb_count = 0;  // bulk loads carry no tombstones
      lv.stale_count = 0;
    } else {
      std::vector<Slot> content;
      content.reserve(sorted.size());
      for (const Entry<K, V>& e : sorted) {
        Slot s{};
        s.key = e.key;
        s.value = e.value;
        content.push_back(s);
      }
      write_level(t, content);
      for (std::size_t l = t; l-- > 1;) rebuild_lookahead(l);
    }
    levels_[t].real_count = sorted.size();
    // Mark the level full so future merges cascade past it correctly.
    levels_[t].fills = cfg_.growth - 1;
    stats_.entries_merged += sorted.size();
  }

  // -- durable-tier hooks -----------------------------------------------------

  /// Observer of tiered folds landing at or past the spill depth: the
  /// durable tier implements this to write each such segment to storage
  /// and retire the spill files of the segments the fold consumed.
  ///
  /// Fired from inside a cascade, AFTER the in-memory structure is
  /// consistent. Implementations MUST NOT throw (a throw here would
  /// unwind through the middle of a fold; record the failure and surface
  /// it from your own API instead) and must not call back into the Gcola.
  /// `items` are the new segment's entries in key order (tombstones as
  /// erase ops); `consumed` lists the seg_ids of previously-observed
  /// segments this fold destroyed. items == nullptr with n == 0 reports a
  /// fold whose output annihilated to nothing (consumed still applies).
  class FoldObserver {
   public:
    virtual ~FoldObserver() = default;
    virtual void on_segment_spill(std::uint64_t seg_id, std::size_t level,
                                  const Op<K, V>* items, std::size_t n,
                                  const std::uint64_t* consumed,
                                  std::size_t n_consumed) = 0;
  };

  /// Attach (or detach, with nullptr) the spill observer. Folds landing in
  /// level >= spill_depth report; shallower folds stay memory-only. Tiered
  /// mode only.
  void set_fold_observer(FoldObserver* obs, std::size_t spill_depth) {
    fold_observer_ = obs;
    spill_depth_ = spill_depth;
  }

  /// Segment-id counter (durable tier: recovery seeds it past every id the
  /// manifest has seen so fresh ids never collide with on-disk names).
  /// Monotone: the counter never rewinds below ids already handed out in
  /// this process — a rewind would mint duplicate ids, and a duplicate
  /// reported as consumed retires an unrelated live on-disk segment.
  std::uint64_t next_seg_id() const noexcept { return next_seg_id_; }
  void set_next_seg_id(std::uint64_t id) noexcept {
    next_seg_id_ = std::max(next_seg_id_, id);
  }

  /// Fold EVERYTHING (staging arena + all levels) into one stripped
  /// segment placed no shallower than `min_target` — the checkpoint
  /// primitive: with an observer attached at spill_depth <= min_target the
  /// resulting segment (or the empty-output report) reaches storage and
  /// fully represents the dictionary. Returns true when a segment was
  /// produced (false for an empty dictionary). Tiered mode only.
  bool compact_all(std::size_t min_target = 0) {
    drain_compaction();
    flush_stage();
    drain_compaction();  // the flush itself may have deferred a fold
    ++mutation_epoch_;
    const std::size_t d = deepest_nonempty();
    if (levels_.empty() || item_count() == 0) {
      // Nothing to fold; still report consumed-nothing so an attached
      // observer can reset its live set for an empty dictionary.
      return false;
    }
    ++stats_.merges;
    fold_spans_.clear();
    gather_spill_consumed(d + 1);
    std::size_t total = 0;
    for (std::size_t l = d + 1; l-- > 0;) {
      const Level& lv = levels_[l];
      if (lv.real_count == 0) continue;
      for (std::size_t j = 0; j < lv.segs.size(); ++j) {  // oldest first
        const Seg& seg = *lv.segs[j];
        mm_.touch(seg.base_addr, seg.size() * sizeof(TItem));
        fold_spans_.push_back(kern::RunView<K, V>{
            seg.keys.data(), seg.vals.data(), seg.flags.data(), seg.size()});
      }
      total += lv.real_count;
    }
    collapse_fold_spans(total);
    stats_.duplicates_dropped += total - tfold_buf_.size();
    strip_tombstones(tfold_buf_);
    for (std::size_t l = 0; l <= d; ++l) clear_level(levels_[l]);
    bottom_relocated_ = false;
    if (tfold_buf_.empty()) {
      report_empty_fold(min_target);
      return false;
    }
    std::size_t target = std::max(d, min_target);
    while (real_cap(target) < tfold_buf_.size()) ++target;
    ensure_level(target);
    append_segment(target, tfold_buf_);
    return true;
  }

  // -- verification -----------------------------------------------------------

  /// Structural invariants; throws std::logic_error on violation. O(total).
  void check_invariants() const {
    if (cfg_.staging_capacity == 0 && !stage_.empty()) {
      throw std::logic_error("cola: staging disabled but arena nonempty");
    }
    if (cfg_.staging_capacity > 0 && stage_.size() >= cfg_.staging_capacity) {
      throw std::logic_error("cola: staging arena overfull (missed flush)");
    }
    if (cfg_.staging_capacity > 0) {
      if (stage_runs_.size() > stage_.size() ||
          (!stage_.empty() && (stage_runs_.empty() || stage_runs_.front() != 0))) {
        throw std::logic_error("cola: staging run boundaries inconsistent");
      }
      if (stage_run_min_.size() != stage_runs_.size() ||
          stage_run_max_.size() != stage_runs_.size()) {
        throw std::logic_error("cola: staging run fences out of step");
      }
      if (stage_run_segs_.size() != stage_runs_.size()) {
        throw std::logic_error("cola: staging run mirrors out of step");
      }
      for (std::size_t r = 0; r < stage_runs_.size(); ++r) {
        const std::uint32_t b = stage_runs_[r];
        const std::uint32_t e = r + 1 < stage_runs_.size()
                                    ? stage_runs_[r + 1]
                                    : static_cast<std::uint32_t>(stage_.size());
        if (b >= e) throw std::logic_error("cola: empty staging run");
        if (stage_run_segs_[r] != nullptr &&
            (stage_run_segs_[r]->size() != e - b ||
             stage_run_segs_[r]->keys.front() < stage_.keys[b] ||
             stage_.keys[b] < stage_run_segs_[r]->keys.front())) {
          throw std::logic_error("cola: staging run mirror stale");
        }
        for (std::uint32_t i = b + 1; i < e; ++i) {
          if (!(stage_.keys[i - 1] < stage_.keys[i])) {
            throw std::logic_error("cola: staging run unsorted");
          }
        }
        if (stage_run_min_[r] < stage_.keys[b] ||
            stage_.keys[b] < stage_run_min_[r] ||
            stage_run_max_[r] < stage_.keys[e - 1] ||
            stage_.keys[e - 1] < stage_run_max_[r]) {
          throw std::logic_error("cola: staging run fence drift");
        }
      }
    }
    if (cfg_.tiered) {
      check_invariants_tiered();
      return;
    }
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      const Level& lv = levels_[l];
      if (lv.slots.size() != real_cap(l) + la_cap(l)) {
        throw std::logic_error("cola: level array size mismatch");
      }
      if (lv.fills >= cfg_.growth) throw std::logic_error("cola: fills out of range");
      std::uint64_t reals = 0, las = 0;
      std::uint32_t last_la = kNoIdx;
      for (std::uint32_t i = lv.occ_begin; i < lv.slots.size(); ++i) {
        const Slot& s = lv.slots[i];
        if (i > lv.occ_begin) {
          const Slot& p = lv.slots[i - 1];
          if (s.key < p.key) throw std::logic_error("cola: level unsorted");
          // Equal keys: any lookahead slots (there may be two — the next
          // level can hold both a real and a lookahead with that key) must
          // precede the single real slot, i.e. nothing follows a real.
          if (s.key == p.key && !p.is_lookahead()) {
            throw std::logic_error("cola: bad duplicate ordering in level");
          }
        }
        if (s.is_lookahead()) {
          ++las;
          last_la = i;
          if (l + 1 >= levels_.size()) throw std::logic_error("cola: lookahead at last level");
          const Level& nxt = levels_[l + 1];
          const std::uint32_t tgt = s.target;
          if (tgt < nxt.occ_begin || tgt >= nxt.slots.size()) {
            throw std::logic_error("cola: lookahead target out of range");
          }
          if (nxt.slots[tgt].key != s.key) {
            throw std::logic_error("cola: lookahead key mismatch");
          }
        } else {
          ++reals;
        }
        if (s.left_la != last_la) throw std::logic_error("cola: left_la wrong");
      }
      // Validate right_la with a reverse sweep.
      std::uint32_t next_la = kNoIdx;
      for (std::uint32_t i = static_cast<std::uint32_t>(lv.slots.size()); i-- > lv.occ_begin;) {
        const Slot& s = lv.slots[i];
        if (s.is_lookahead()) next_la = i;
        if (s.right_la != next_la) throw std::logic_error("cola: right_la wrong");
      }
      if (reals != lv.real_count) throw std::logic_error("cola: real count drift");
      if (reals > real_cap(l)) throw std::logic_error("cola: level overfull");
      if (las > la_cap(l)) throw std::logic_error("cola: too many lookahead slots");
      // Real keys are unique within a level.
      for (std::uint32_t i = lv.occ_begin; i + 1 < lv.slots.size(); ++i) {
        if (!lv.slots[i].is_lookahead() && !lv.slots[i + 1].is_lookahead() &&
            lv.slots[i].key == lv.slots[i + 1].key) {
          throw std::logic_error("cola: duplicate real key in level");
        }
      }
    }
  }

 private:
  enum : std::uint32_t { kFlagLookahead = 1u, kFlagTombstone = 2u };

  /// Tiered-mode invariants: ref-counted segments each nonempty, sorted
  /// with unique keys, fences and tombstone counts consistent with their
  /// contents, no classic storage, counts consistent.
  void check_invariants_tiered() const {
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      const Level& lv = levels_[l];
      if (!lv.slots.empty()) {
        throw std::logic_error("cola: classic storage used in tiered mode");
      }
      if (lv.segs.size() > cfg_.growth - 1) {
        throw std::logic_error("cola: too many segments in level");
      }
      if (lv.seg_stale.size() != lv.segs.size()) {
        throw std::logic_error("cola: segment metadata out of step");
      }
      std::uint64_t items_total = 0, tombs_total = 0, stale_total = 0;
      for (std::size_t j = 0; j < lv.segs.size(); ++j) {
        if (lv.segs[j] == nullptr) {
          throw std::logic_error("cola: null segment reference");
        }
        const Seg& seg = *lv.segs[j];
        if (seg.size() == 0) throw std::logic_error("cola: empty segment");
        if (seg.vals.size() != seg.size() || seg.flags.size() != seg.size()) {
          throw std::logic_error("cola: segment planes out of step");
        }
        std::uint32_t tombs = 0;
        for (std::size_t i = 0; i < seg.size(); ++i) {
          if (i > 0 && !(seg.keys[i - 1] < seg.keys[i])) {
            throw std::logic_error("cola: segment unsorted");
          }
          tombs += seg.is_tombstone(i) ? 1u : 0u;
        }
        if (tombs != seg.tombs) {
          throw std::logic_error("cola: segment tombstone count drift");
        }
        if (seg.min_key < seg.keys.front() || seg.keys.front() < seg.min_key ||
            seg.max_key < seg.keys.back() || seg.keys.back() < seg.max_key) {
          throw std::logic_error("cola: segment fence keys drift");
        }
        if (lv.seg_stale[j] > seg.size()) {
          throw std::logic_error("cola: segment stale estimate exceeds size");
        }
        if (!seg.filter.empty()) {
          // Filters are advisory on the read path ONLY because this holds:
          // a present key always passes its own segment's filter.
          if (seg.filter.size() != filt::filter_words_for(seg.size())) {
            throw std::logic_error("cola: segment filter missized");
          }
          for (std::size_t i = 0; i < seg.size(); ++i) {
            if (!filt::filter_may_contain(seg.filter.data(), seg.filter.size(),
                                          filt::key_hash(seg.keys[i]))) {
              throw std::logic_error("cola: segment filter false negative");
            }
          }
        }
        items_total += seg.size();
        tombs_total += tombs;
        stale_total += lv.seg_stale[j];
      }
      if (items_total > real_cap(l)) {
        throw std::logic_error("cola: tiered level overfull");
      }
      if (items_total != lv.real_count) {
        throw std::logic_error("cola: tiered count drift");
      }
      if (tombs_total != lv.tomb_count) {
        throw std::logic_error("cola: level tombstone count drift");
      }
      if (stale_total != lv.stale_count) {
        throw std::logic_error("cola: level stale count drift");
      }
    }
    if (pending_active_) {
      if (pend_job_ == nullptr) {
        throw std::logic_error("cola: pending fold without a job");
      }
      if (pend_target_ >= levels_.size()) {
        throw std::logic_error("cola: pending fold targets missing level");
      }
      if (pend_prior_segs_ > levels_[pend_target_].segs.size()) {
        throw std::logic_error("cola: pending install point out of range");
      }
      std::uint64_t in_total = 0;
      for (const SegRef& s : pend_job_->inputs) {
        if (s == nullptr || s->size() == 0) {
          throw std::logic_error("cola: pending fold input invalid");
        }
        in_total += s->size();
      }
      if (in_total != pend_total_in_) {
        throw std::logic_error("cola: pending fold mass drift");
      }
    }
  }

  struct Slot {
    K key{};
    V value{};
    std::uint32_t left_la = kNoIdx;   // nearest lookahead slot at-or-left
    std::uint32_t right_la = kNoIdx;  // nearest lookahead slot at-or-right
    std::uint32_t flags = 0;
    std::uint32_t target = kNoIdx;    // lookahead slots: slot index in next level

    bool is_lookahead() const noexcept { return (flags & kFlagLookahead) != 0; }
    bool is_tombstone() const noexcept { return (flags & kFlagTombstone) != 0; }
  };

  /// Compact element for the tiered path (staging arena + segments): a
  /// Slot without the lookahead bookkeeping — 24 bytes against 32. Every
  /// tiered merge pass is memory- and copy-bound, so the narrower element
  /// is a flat ~25% cut on the whole ingest hot path. The shared
  /// snap::Item so snapshot segments hold the structure's native element.
  using TItem = snap::Item<K, V>;
  using Seg = snap::Segment<K, V>;
  using SegRef = snap::SegmentRef<K, V>;

  struct Level {
    std::vector<Slot> slots;      // physical array; occupied = [occ_begin, size)
    std::uint32_t occ_begin = 0;  // == slots.size() when empty
    std::uint32_t fills = 0;      // merges received since last emptied
    std::uint64_t real_count = 0;
    std::uint64_t base_offset = 0;  // logical address of slots[0]
    // Tiered mode only (`slots` stays empty): the level's sorted segments,
    // oldest first — the LAST segment is the newest. Each segment is a
    // ref-counted IMMUTABLE unit (snap::Segment: items, fence keys,
    // tombstone count, stable id, logical base address) shared with every
    // open snapshot; a fold retires its sources by dropping these
    // references, and the segments are freed when the last snapshot
    // pinning them closes. real_count is the level's total item count
    // (sum of segment sizes), tomb_count the level-wide tombstone total —
    // maintained by every fold so the bounded-retention policy reads
    // pressure in O(1).
    std::vector<SegRef> segs;
    std::uint64_t tomb_count = 0;
    // Tiered mode: estimated count of each segment's entries shadowed by
    // newer data (parallel to segs; stale_count is the level total). Lives
    // OUTSIDE the immutable segments — it is mutable bookkeeping fed by
    // the fold's own duplicate statistics, never by extra probes, and a
    // snapshot must not see it change.
    std::vector<std::uint32_t> seg_stale;
    std::uint64_t stale_count = 0;
  };

  /// Mint a fresh immutable segment owning the key/value/flag planes:
  /// stable id, a logical address region for DAM accounting (still charged
  /// per logical ELEMENT — sizeof(TItem) — so the transfer model is
  /// layout-independent), the current mutation epoch, and a Bloom filter
  /// when configured (fold/flush is the one place filters are minted;
  /// O(1)/element, amortized into the fold that writes the data anyway).
  SegRef new_segment(std::vector<K>&& keys, std::vector<V>&& vals,
                     std::vector<std::uint8_t>&& flags) {
    const std::uint64_t base = next_base_;
    next_base_ += keys.size() * sizeof(TItem);
    return snap::make_segment(std::move(keys), std::move(vals),
                              std::move(flags), next_seg_id_++, base,
                              mutation_epoch_, cfg_.filters);
  }

  // -- geometry ---------------------------------------------------------------

  std::uint64_t real_cap(std::size_t l) const noexcept {
    if (l == 0) return 1;
    std::uint64_t c = 2 * (cfg_.growth - 1);
    for (std::size_t i = 1; i < l; ++i) c *= cfg_.growth;
    return c;
  }

  // Paper Section 4: level l carries floor(2p(g-1)g^(l-1)) redundant
  // elements, which equals floor(p * real_cap(l)). Tiered levels are not
  // globally sorted, so they carry no lookahead slots.
  std::uint64_t la_cap(std::size_t l) const noexcept {
    if (cfg_.tiered) return 0;
    return static_cast<std::uint64_t>(cfg_.pointer_density *
                                      static_cast<double>(real_cap(l)));
  }

  void ensure_level(std::size_t l) {
    while (levels_.size() <= l) {
      const std::size_t i = levels_.size();
      Level lv;
      if (!cfg_.tiered) {
        lv.slots.assign(real_cap(i) + la_cap(i), Slot{});
      }
      lv.occ_begin = static_cast<std::uint32_t>(lv.slots.size());
      lv.base_offset = next_base_;
      next_base_ += (real_cap(i) + la_cap(i)) * sizeof(Slot);
      levels_.push_back(std::move(lv));
    }
  }

  bool level_full(std::size_t l) const noexcept {
    if (l >= levels_.size()) return false;
    if (l == 0) return levels_[0].real_count >= 1;
    if (cfg_.tiered) return levels_[l].segs.size() >= cfg_.growth - 1;
    return levels_[l].fills >= cfg_.growth - 1;
  }

  // -- DAM accounting ---------------------------------------------------------

  void touch_slot(std::size_t l, std::uint32_t i) const {
    mm_.touch(levels_[l].base_offset + static_cast<std::uint64_t>(i) * sizeof(Slot),
              sizeof(Slot));
  }

  void touch_region(std::size_t l, std::uint32_t i, std::uint64_t n, bool write) const {
    if (n == 0) return;
    const std::uint64_t off =
        levels_[l].base_offset + static_cast<std::uint64_t>(i) * sizeof(Slot);
    if (write) {
      mm_.touch_write(off, n * sizeof(Slot));
    } else {
      mm_.touch(off, n * sizeof(Slot));
    }
  }

  // -- search helpers ---------------------------------------------------------

  std::uint32_t level_upper_bound(std::size_t l, std::uint32_t lo, std::uint32_t hi,
                                  const K& key) const {
    const Level& lv = levels_[l];
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      touch_slot(l, mid);
      if (key < lv.slots[mid].key) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  /// Derive the next level's window from position `idx` (first slot with key
  /// greater than the probe) and the predecessor at idx-1 (if >= lo).
  void next_window(std::size_t l, std::uint32_t idx, std::uint32_t lo,
                   std::uint32_t* wlo, std::uint32_t* whi) const {
    const Level& lv = levels_[l];
    const std::uint32_t E = static_cast<std::uint32_t>(lv.slots.size());
    *wlo = *whi = kNoIdx;
    if (idx > lo) {
      const std::uint32_t la = lv.slots[idx - 1].left_la;
      if (la != kNoIdx) *wlo = lv.slots[la].target;
    }
    if (idx < E) {
      const std::uint32_t ra = lv.slots[idx].right_la;
      if (ra != kNoIdx) *whi = lv.slots[ra].target;
    }
  }

  /// Tiered find: binary-search each level's segments newest-first (the
  /// last segment is the newest); the first hit wins. Per-segment fence
  /// keys skip segments whose [min, max] range excludes the probe — for
  /// time-partitioned or otherwise range-disjoint feeds this prunes most of
  /// the up-to-(g-1)-segments-per-level probe cost the tiered geometry
  /// otherwise pays (dam/bounds.hpp: cola_fence_search_transfer_bound).
  /// Serial newest-first probe of one tiered level. Returns true when the
  /// level resolves the key (live hit or tombstone), leaving the answer in
  /// `result`; accounted builds charge each binary-search step to mm_.
  bool find_in_level(const Level& lv, const K& key, std::uint64_t h,
                     std::optional<V>& result) const {
    return find_in_segs(lv.segs.data(), lv.segs.size(), key, h, result);
  }

  /// Core of find_in_level over a raw segment array (segments ordered
  /// oldest -> newest, probed newest-first) — shared with the pending-fold
  /// interleave, which probes three disjoint segment spans per level.
  bool find_in_segs(const SegRef* segs, std::size_t n, const K& key,
                    std::uint64_t h, std::optional<V>& result) const {
    for (std::size_t j = n; j-- > 0;) {  // newest first
      const Seg& seg = *segs[j];
      if (cfg_.fence_keys && (key < seg.min_key || seg.max_key < key)) {
        ++stats_.fence_seg_skips;
        continue;
      }
      // Filter check after fences: "definitely absent" skips the whole
      // binary search (and, in an accounted build, its probe transfers —
      // the filter itself is metadata, like the fences, and charges
      // nothing; dam/bounds.hpp::cola_filter_search_transfer_bound).
      if (cfg_.filters && !seg.filter.empty() &&
          !filt::filter_may_contain(seg.filter.data(), seg.filter.size(), h)) {
        ++stats_.filter_seg_skips;
        continue;
      }
      ++stats_.find_seg_probes;
      std::size_t lo;
      if constexpr (std::is_same_v<MM, dam::null_mem_model>) {
        // Warm the next candidate's first probe line while this segment's
        // search runs: on a miss the walk goes there next, and a prefetch
        // has no architectural effect, so semantics and stats are
        // untouched even when the walk stops here. Gated with the kernel
        // tier: Isa::kScalar is the portable reference path, so it takes
        // no software prefetch either.
        if (isa_ != simd::Isa::kScalar && j > 0) {
          const Seg& nx = *segs[j - 1];
          if (nx.size() > 0)
            __builtin_prefetch(nx.keys.data() + nx.size() / 2 - 1);
        }
        lo = simd::lower_bound_keys(seg.keys.data(), seg.size(), key, isa_);
      } else {
        lo = 0;
        std::size_t hi = seg.size();
        while (lo < hi) {
          const std::size_t mid = lo + (hi - lo) / 2;
          mm_.touch(seg.base_addr + mid * sizeof(TItem), sizeof(TItem));
          if (seg.keys[mid] < key) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
      }
      if (lo < seg.size() && seg.keys[lo] == key) {
        if (seg.is_tombstone(lo)) {
          result = std::nullopt;
        } else {
          result = seg.vals[lo];
        }
        return true;
      }
    }
    return false;
  }

  std::optional<V> find_tiered(const K& key) const {
    // One hash serves every segment's filter probe on this find.
    const std::uint64_t h = cfg_.filters ? filt::key_hash(key) : 0;
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      if constexpr (std::is_same_v<MM, dam::null_mem_model>) {
        // Same trick across the level boundary: warm the next level's
        // newest segment (its first candidate) under this level's probes.
        if (isa_ != simd::Isa::kScalar && l + 1 < levels_.size() &&
            !levels_[l + 1].segs.empty()) {
          const Seg& nx = *levels_[l + 1].segs.back();
          if (nx.size() > 0)
            __builtin_prefetch(nx.keys.data() + nx.size() / 2 - 1);
        }
      }
      std::optional<V> result;
      // The pending fold's target level reads as three recency bands:
      // post-snapshot arrivals (newest), then the fold's input segments,
      // then the segments that predate the fold — the exact order the
      // install will freeze (output lands at pend_prior_segs_, below the
      // arrivals). Reads are coherent mid-flight without any barrier.
      if (pending_active_ && l == pend_target_) {
        const Level& lv = levels_[l];
        const std::size_t prior = std::min(pend_prior_segs_, lv.segs.size());
        if (find_in_segs(lv.segs.data() + prior, lv.segs.size() - prior, key,
                         h, result)) {
          return result;
        }
        if (find_in_segs(pend_job_->inputs.data(), pend_job_->inputs.size(),
                         key, h, result)) {
          return result;
        }
        if (find_in_segs(lv.segs.data(), prior, key, h, result)) return result;
        continue;
      }
      if (find_in_level(levels_[l], key, h, result)) return result;
    }
    return std::nullopt;
  }

  // -- cursors ----------------------------------------------------------------

  /// Accounting hook for THIS structure's own snapshot-backed reads: fence
  /// skips count into stats_, probes charge mm_ (installed only when a
  /// real memory model is attached — under the null model the touch slot
  /// stays empty, so scan inner loops skip the indirect call). Detached
  /// Snapshot handles never carry a hook: accounting is a property of the
  /// owner's read call, not of the shared snapshot data.
  snap::MemHook read_hook() const {
    snap::MemHook h;
    h.ctx = const_cast<void*>(static_cast<const void*>(this));
    h.seg_skip = [](void* c) {
      ++static_cast<const Gcola*>(c)->stats_.fence_seg_skips;
    };
    if constexpr (!std::is_same_v<MM, dam::null_mem_model>) {
      h.touch = [](void* c, std::uint64_t addr, std::uint64_t bytes) {
        static_cast<const Gcola*>(c)->mm_.touch(addr, bytes);
      };
    }
    return h;
  }

 public:
  /// Resumable ordered cursor (Dictionary cursor contract in
  /// api/dictionary.hpp): every seek acquires the dictionary's current
  /// snapshot — a refcount bump when the dictionary is unmutated since the
  /// last acquisition — and positions inside it. The position then stays
  /// valid across arbitrary mutations of the dictionary, streaming exactly
  /// the snapshot it seeked over; re-seek to observe newer data. Repeated
  /// seeks are allocation-free in steady state (the merge scratch keeps
  /// its high-water size).
  class Cursor {
   public:
    Cursor() = default;

    void seek(const K& lo) {
      refresh();
      c_.seek(lo);
    }
    /// Bounded seek: entries past `hi` are never surfaced (lets pruned
    /// structures skip sources entirely; an unbounded cursor can always be
    /// stopped by the caller instead).
    void seek(const K& lo, const K& hi) {
      refresh();
      c_.seek(lo, hi);
    }
    /// Position at the smallest live key (no sentinel bound needed — see
    /// for_each's note on numeric_limits sentinels).
    void seek_first() {
      refresh();
      c_.seek_first();
    }

    bool valid() const { return c_.valid(); }
    const Entry<K, V>& entry() const { return c_.entry(); }
    void next() { c_.next(); }
    /// Mutation epoch of the snapshot the last seek pinned (0 before any
    /// seek) — lets callers verify which version a scan is reading.
    std::uint64_t snapshot_epoch() const { return c_.epoch(); }

   private:
    friend class Gcola;
    explicit Cursor(const Gcola* d) : d_(d) {
      if (d_ != nullptr) c_.set_mem_hook(d_->read_hook());
    }
    void refresh() {
      if (d_ != nullptr) c_.attach(d_->snapshot().data());
    }

    const Gcola* d_ = nullptr;
    snap::SnapshotCursor<K, V> c_;
  };

  /// Detached cursor over this dictionary (Dictionary concept). Creation is
  /// cheap; each seek pins the then-current snapshot (see Cursor).
  Cursor make_cursor() const { return Cursor(this); }

 private:
  // -- insertion --------------------------------------------------------------

  /// Collapse the arena's sorted runs into one sorted, newest-wins run in
  /// stage_. Balanced rounds of pairwise merges: runs arrived oldest-first,
  /// adjacent pairs merge with the RIGHT (later, newer) run winning ties,
  /// which preserves the global recency order round over round. log2(#runs)
  /// passes — for batch feeds that is log2(g) passes over cache-resident
  /// data instead of a log2(capacity)-pass sort.
  void normalize_stage() {
    kern::collapse_runs(stage_, stage_runs_, tfold_tmp_, stage_runs_scratch_,
                        isa_, &last_collapse_final_dups_);
  }

  /// Widen an Entry run onto the plane buffer, appending to `out` — the one
  /// place that knows how an Entry maps onto the tiered element planes.
  static void append_widened(const Entry<K, V>* b, const Entry<K, V>* e,
                             kern::RunBuf<K, V>& out) {
    out.reserve(out.size() + static_cast<std::size_t>(e - b));
    for (; b != e; ++b) out.push_back(b->key, b->value, 0);
  }

  /// TItem-run form (mixed put/erase batches): tombstone flags ride along.
  static void append_widened(const TItem* b, const TItem* e,
                             kern::RunBuf<K, V>& out) {
    out.reserve(out.size() + static_cast<std::size_t>(e - b));
    for (; b != e; ++b) {
      out.push_back(b->key, b->value, static_cast<std::uint8_t>(b->flags));
    }
  }

  /// Binary-counter compaction of the staging arena's tail: after a
  /// singleton append, merge the last two runs while the older is no larger
  /// than the newer. Keeps the arena at O(log capacity) runs under
  /// single-op feeds — so find()'s run probes stay logarithmic — at an
  /// amortized O(log capacity) moves per insert, the same work the flush
  /// collapse would otherwise do all at once.
  void counter_merge_stage_tail() {
    while (stage_runs_.size() >= 2) {
      const std::uint32_t b2 = stage_runs_.back();
      const std::uint32_t b1 = stage_runs_[stage_runs_.size() - 2];
      const std::size_t older = b2 - b1;
      const std::size_t newer = stage_.size() - b2;
      if (older > newer) break;
      kern::merge_into(stage_.subview(b1, b2), stage_.subview(b2, stage_.size()),
                       tfold_tmp_, isa_);
      const std::size_t w = tfold_tmp_.size();
      std::copy_n(tfold_tmp_.keys.data(), w, stage_.keys.begin() + b1);
      std::copy_n(tfold_tmp_.vals.data(), w, stage_.vals.begin() + b1);
      std::copy_n(tfold_tmp_.flags.data(), w, stage_.flags.begin() + b1);
      stage_.resize(b1 + w);
      stage_runs_.pop_back();
      stage_run_min_.pop_back();
      stage_run_max_.pop_back();
      // The merge rewrote the surviving run in place: drop both mirrors so
      // the next publish_view() re-mints exactly this run.
      stage_run_segs_.pop_back();
      stage_run_segs_.back().reset();
      // The merged run's fences span both inputs; read them off the data.
      stage_run_min_.back() = stage_.keys[b1];
      stage_run_max_.back() = stage_.keys.back();
      stats_.duplicates_dropped += older + newer - w;
    }
  }

  /// Reserve a logical address region for the staging arena (lazy: only
  /// configs with staging pay for it).
  void ensure_stage_base() {
    if (stage_base_set_ || cfg_.staging_capacity == 0) return;
    stage_base_ = next_base_;
    next_base_ += cfg_.staging_capacity * sizeof(TItem);
    stage_base_set_ = true;
  }

  /// Shared tail of the mixed-op batch mutators: normalize `run` (sort +
  /// newest-wins dedup; tombstone flags ride along untouched) and route it
  /// the same way insert_batch routes its runs — staging-arena append,
  /// tiered cascade, or classic cascade in Slot form. `n_raw` is the
  /// pre-dedup op count (stats).
  void apply_normalized(std::vector<TItem>& run, std::size_t n_raw) {
    ++mutation_epoch_;
    poll_install();
    // Stable sort keeps input order among equal keys (duplicates KEPT); the
    // plane-form keep-last kernel then collapses them after widening — the
    // identical newest-wins result, with the dedup scan vectorized.
    sort_by_key(run, titem_batch_scratch_);
    if (cfg_.staging_capacity > 0) {
      ensure_stage_base();
      stage_.reserve(std::max(cfg_.staging_capacity, stage_.size() + run.size()));
      const std::size_t b = stage_.size();
      stage_runs_.push_back(static_cast<std::uint32_t>(b));
      append_widened(run.data(), run.data() + run.size(), stage_);
      stats_.duplicates_dropped += kern::dedup_newest_wins(stage_, b, isa_);
      stage_run_min_.push_back(stage_.keys[b]);
      stage_run_max_.push_back(stage_.keys.back());
      stage_run_segs_.emplace_back();
      mm_.touch_write(stage_base_ + b * sizeof(TItem),
                      (stage_.size() - b) * sizeof(TItem));
      stats_.stage_absorbed += n_raw;
      // Small mixed-op runs must not grow the arena's run count linearly
      // (find() probes every run): the binary-counter tail merge keeps it
      // logarithmic, exactly as the single-op put() path does.
      counter_merge_stage_tail();
      if (stage_.size() >= cfg_.staging_capacity) flush_stage();
      return;
    }
    ensure_level(0);
    titem_run_.clear();
    append_widened(run.data(), run.data() + run.size(), titem_run_);
    stats_.duplicates_dropped += kern::dedup_newest_wins(titem_run_, 0, isa_);
    // A singleton run with room in level 0 is exactly a single op.
    if (titem_run_.size() == 1 && !level_full(0)) {
      put(titem_run_.keys[0], titem_run_.vals[0],
          (titem_run_.flags[0] & kFlagTombstone) != 0);
      return;
    }
    if (cfg_.tiered) {
      ++stats_.batch_merges;
      incoming_spans_.assign(1, titem_run_.view());
      cascade_run_tiered(titem_run_.size());
      return;
    }
    ++stats_.batch_merges;
    cls_acc_.assign(titem_run_.view());
    cascade_run_planes();
  }

  /// Carry the normalized run `run` (sorted, unique keys, newest overall)
  /// into the shallowest level with room — the target walk shared by
  /// insert_batch and the staging-arena flush. Folds every level that is
  /// full or too small into the cascade until one can absorb the run plus
  /// everything displaced above it.
  void cascade_run(std::vector<Slot>& run) {
    if (run.empty()) return;
    cls_acc_.clear();
    cls_acc_.reserve(run.size());
    for (const Slot& s : run) {
      cls_acc_.push_back(s.key, s.value,
                         static_cast<std::uint8_t>(s.flags & kFlagTombstone));
    }
    cascade_run_planes();
  }

  /// Plane-form cascade entry: the incoming run is already in cls_acc_
  /// (sorted, unique keys, newest overall) — the staging flush and the
  /// mixed-op batch path land here without a Slot widening pass.
  void cascade_run_planes() {
    if (cls_acc_.empty()) return;
    const std::size_t t = select_cascade_target(cls_acc_.size());
    ensure_level(t);
    cascade_into_planes(t);
  }

  /// Shallowest level that can absorb an incoming run of `incoming` items
  /// plus everything displaced above it (full or too-small levels fold into
  /// the cascade). Pending-aware: an in-flight background fold's mass (and
  /// its one future segment) counts against its target level, so a cascade
  /// picked here can never over-commit the level the install is about to
  /// land in.
  std::size_t select_cascade_target(std::uint64_t incoming) const {
    std::uint64_t carried = incoming + level_mass(0);
    std::size_t t = 1;
    while (true) {
      if (t < levels_.size()) {
        if (!level_committed_full(t) && level_mass(t) + carried <= real_cap(t)) {
          break;
        }
        carried += level_mass(t);
        ++t;
      } else if (carried <= real_cap(t)) {
        break;
      } else {
        ++t;
      }
    }
    return t;
  }

  /// Level occupancy including the in-flight fold's (pre-dedup) mass.
  std::uint64_t level_mass(std::size_t l) const noexcept {
    std::uint64_t m = levels_[l].real_count;
    if (pending_active_ && l == pend_target_) m += pend_total_in_;
    return m;
  }

  /// level_full plus the pending fold's future segment: its install appends
  /// one segment to pend_target_, so the level reads as full one earlier.
  bool level_committed_full(std::size_t t) const noexcept {
    if (level_full(t)) return true;
    return pending_active_ && t == pend_target_ &&
           levels_[t].segs.size() + 1 >= cfg_.growth - 1;
  }

  /// Tiered cascade entry: pick the target for `incoming` staged/normalized
  /// items (prepared in incoming_spans_, oldest -> newest) and run the
  /// segment fold.
  void cascade_run_tiered(std::uint64_t incoming) {
    if (incoming == 0) return;
    std::size_t t = select_cascade_target(incoming);
    // A cascade deeper than the in-flight fold's target would consume the
    // level the install is about to land in — land the fold first (writer
    // assist when no worker has finished it yet) and re-pick the target
    // with real occupancy. This is the one ordering barrier the background
    // engine keeps: data never moves DEEPER past a pending install point.
    if (pending_active_ && t > pend_target_) {
      assist_pending();
      t = select_cascade_target(incoming);
    }
    // Trivial move: when the cascade is about to drain the deepest data
    // into virgin territory, the deepest level's segments are already
    // sorted runs older than everything else — relocating them wholesale
    // (vector swap, zero element movement) and retargeting the cascade
    // shallower skips the largest merge the structure ever does. The same
    // optimization LSM stores apply to bottom-level compactions.
    //
    // Gated to ALTERNATE with real bottom folds (bottom_relocated_): the
    // relocation skips exactly the merge that strips tombstones and dedups
    // shadowed copies, so taking it unconditionally would let a churn
    // workload (bounded live set, endless upserts/erases) grow physical
    // size without bound. Alternating keeps the pure-growth fast path —
    // one relocation per deepest-level generation — while guaranteeing
    // every other bottom drain compacts. Tombstone or staleness pressure
    // vetoes the relocation outright: past either threshold the deepest
    // level NEEDS the annihilating fold, not another deferral.
    const std::size_t deepest = deepest_nonempty();
    if (!bottom_relocated_ && !fold_pressure(deepest) && t == deepest + 1 &&
        levels_[deepest].real_count > 0) {
      ensure_level(t);
      Level& from = levels_[deepest];
      Level& to = levels_[t];
      if (to.real_count == 0) {
        to.segs.swap(from.segs);  // identities travel with the data
        to.seg_stale.swap(from.seg_stale);
        to.tomb_count = from.tomb_count;
        to.stale_count = from.stale_count;
        to.real_count = from.real_count;
        to.fills = from.fills;
        clear_level(from);
        // Segments are immutable heap units — relocation moves no bytes,
        // but the DAM model still charges the logical rewrite so modeled
        // costs stay comparable across the refcounting change.
        for (const SegRef& seg : to.segs) {
          mm_.touch_write(seg->base_addr, seg->size() * sizeof(TItem));
        }
        bottom_relocated_ = true;
        t = select_cascade_target(incoming);
      }
    }
    ensure_level(t);
    ++stats_.merges;
    if (!try_defer_fold(t)) cascade_into_tiered(t);
    maybe_fold_bottom_tombstones();
  }

  /// True when level l's tombstone mass has crossed the configured fraction
  /// of its occupancy — the signal that forces annihilating folds.
  bool tombstone_pressure(std::size_t l) const noexcept {
    if (!(cfg_.tombstone_threshold <= 1.0)) return false;  // knob disabled
    const Level& lv = levels_[l];
    return lv.tomb_count > 0 &&
           static_cast<double>(lv.tomb_count) >=
               cfg_.tombstone_threshold * static_cast<double>(lv.real_count);
  }

  /// True when level l's ESTIMATED shadowed-live mass has crossed the
  /// configured fraction of its occupancy — the churn analogue of
  /// tombstone_pressure, driving the same forced bottom folds.
  bool staleness_pressure(std::size_t l) const noexcept {
    if (!(cfg_.staleness_threshold <= 1.0)) return false;  // knob disabled
    const Level& lv = levels_[l];
    return lv.stale_count > 0 &&
           static_cast<double>(lv.stale_count) >=
               cfg_.staleness_threshold * static_cast<double>(lv.real_count);
  }

  /// Either retention signal: the deepest level needs a real, annihilating
  /// fold (tombstone mass or estimated shadowed-duplicate mass too high).
  bool fold_pressure(std::size_t l) const noexcept {
    return tombstone_pressure(l) || staleness_pressure(l);
  }

  /// Credit an estimated `est` shadowed copies to level l's segments older
  /// than the data that just arrived: `exclude_tail` newest segments are
  /// exempt — the arrival itself (sync folds append, tail = 1), or the
  /// arrival plus everything newer when a background install lands
  /// mid-level; 0 means every segment is a candidate (the deeper-level
  /// case — everything there predates the arrival). Attribution walks
  /// oldest-first, skips segments whose fence range does not intersect the
  /// new run's [lo, hi], and caps each segment's stale count at its entry
  /// count — the estimate can overstate a segment only up to "everything
  /// here is shadowed", which is exactly the bound a fold can recover.
  void add_staleness(std::size_t l, const K& lo, const K& hi, std::uint64_t est,
                     std::size_t exclude_tail) {
    Level& lv = levels_[l];
    const std::size_t nsegs =
        lv.segs.size() - std::min(lv.segs.size(), exclude_tail);
    for (std::size_t j = 0; j < nsegs && est > 0; ++j) {
      const Seg& seg = *lv.segs[j];
      if (hi < seg.min_key || seg.max_key < lo) continue;  // disjoint
      const std::uint32_t sz = static_cast<std::uint32_t>(seg.size());
      const std::uint32_t headroom = sz - std::min(sz, lv.seg_stale[j]);
      const std::uint32_t take =
          static_cast<std::uint32_t>(std::min<std::uint64_t>(headroom, est));
      lv.seg_stale[j] += take;
      lv.stale_count += take;
      est -= take;
    }
  }

  /// Bounded tombstone retention (checked after every tiered cascade): when
  /// the deepest level crosses the threshold, fold its segments into one and
  /// strip. No older copy of any key can exist below the deepest level, so
  /// every tombstone — and every shadowed duplicate — dies here. The fold
  /// is a FULL compaction (levels 0..d collapse into one deepest segment):
  /// at small g a level holds a single segment, so the shadowed copies live
  /// across LEVELS, and folding the deepest level alone would annihilate
  /// nothing. Each fold clears the structure's whole tombstone and stale
  /// mass, so the next one needs another threshold-fraction of fresh
  /// arrivals: amortized O(1/threshold) moves per erase/shadowing write.
  void maybe_fold_bottom_tombstones() {
    const std::size_t d = deepest_nonempty();
    if (levels_.empty() || levels_[d].real_count == 0) return;
    if (!fold_pressure(d)) return;
    // Retention pressure is read from LIVE segment metadata, so an
    // in-flight fold must land before the decision stands — its output may
    // clear the pressure (or move the deepest level) entirely. Re-enter
    // with the settled state; the pending slot is now free, so the second
    // pass cannot loop.
    if (pending_active_) {
      assist_pending();
      maybe_fold_bottom_tombstones();
      return;
    }
    ++stats_.merges;
    ++stats_.forced_bottom_folds;
    if (!tombstone_pressure(d)) ++stats_.staleness_folds;
    // The forced fold is the retention policy's correctness valve, but it
    // is still just a fold over immutable segments — defer it too, at
    // `forced` priority (jumps the pool queue, never rejected for depth).
    if (try_defer_forced_fold()) return;
    // Gather spans oldest -> newest: deeper level = older, within a level
    // the first segment is oldest (same order as the cascade fold).
    fold_spans_.clear();
    std::size_t total = 0;
    for (std::size_t l = d + 1; l-- > 0;) {
      const Level& lv = levels_[l];
      if (lv.real_count == 0) continue;
      for (std::size_t j = 0; j < lv.segs.size(); ++j) {  // oldest first
        const Seg& seg = *lv.segs[j];
        mm_.touch(seg.base_addr, seg.size() * sizeof(TItem));
        fold_spans_.push_back(kern::RunView<K, V>{
            seg.keys.data(), seg.vals.data(), seg.flags.data(), seg.size()});
      }
      total += lv.real_count;
    }
    collapse_fold_spans(total);
    stats_.duplicates_dropped += total - tfold_buf_.size();
    strip_tombstones(tfold_buf_);
    gather_spill_consumed(d + 1);
    for (std::size_t l = 0; l <= d; ++l) clear_level(levels_[l]);
    // Levels 0..d together hold up to g/(g-1) * real_cap(d) items, so a
    // fold that annihilates little can exceed the deepest level's own
    // capacity — place the output in the shallowest level that fits it
    // (usually d; one deeper in the adversarial no-duplicates case).
    std::size_t target = d;
    while (real_cap(target) < tfold_buf_.size()) ++target;
    ensure_level(target);
    append_segment(target, tfold_buf_);
    if (tfold_buf_.empty()) report_empty_fold(target);
    // This fold IS a bottom compaction: the next deepest-level drain may
    // take the trivial move again.
    bottom_relocated_ = false;
  }

  // -- background compaction --------------------------------------------------
  //
  // One pending fold per structure. The writer snapshots the fold's input
  // segment refs (immutable, ref-counted), clears the source levels, and
  // enqueues a FoldJob on the process pool; every mutator entry polls for
  // the finished job and installs its output segment at the recorded
  // position — BELOW any run that arrived at the target level after the
  // snapshot, so recency order is exactly what the synchronous fold would
  // have produced. Structural mutation stays single-writer throughout: the
  // job computes over its own buffers, the writer does every install.

  /// Hand the cascade fold for target `t` (levels 0..t-1 + incoming_spans_)
  /// to the background pool. Returns false when the caller must fold
  /// inline: background disabled, another fold already in flight, or the
  /// pool saturated (bounded compaction debt — writer-assist fallback).
  bool try_defer_fold(std::size_t t) {
    if (!bg_enabled_ || pending_active_) return false;
    const bool drop = t >= deepest_nonempty() && levels_[t].real_count == 0;
    return enqueue_fold(/*consumed_hi=*/t, /*provisional_target=*/t,
                        /*forced=*/false, drop, /*include_incoming=*/true);
  }

  /// Forced-priority variant for retention-pressure bottom folds: consumes
  /// levels 0..deepest, targets the shallowest level whose capacity holds
  /// the pre-dedup mass (the fold may annihilate little), always strips.
  bool try_defer_forced_fold() {
    if (!bg_enabled_ || pending_active_) return false;
    const std::size_t d = deepest_nonempty();
    return enqueue_fold(/*consumed_hi=*/d + 1, /*provisional_target=*/d,
                        /*forced=*/true, /*drop=*/true,
                        /*include_incoming=*/false);
  }

  /// Snapshot inputs, reserve the output's identity/address, clear the
  /// sources, submit. Returns false WITH THE STRUCTURE UNTOUCHED when the
  /// pool rejects the job. `consumed_hi`: levels [0, consumed_hi) feed the
  /// fold; `include_incoming` additionally materializes incoming_spans_
  /// (which alias reusable scratch) into immutable segments the job owns.
  bool enqueue_fold(std::size_t consumed_hi, std::size_t provisional_target,
                    bool forced, bool drop, bool include_incoming) {
    auto job = std::make_shared<compact::FoldJob<K, V>>();
    job->drop_tombstones = drop;
    job->mint_filter = cfg_.filters;
    job->isa = isa_;
    job->ways = cfg_.compaction_threads;
    std::uint64_t total = 0;
    for (std::size_t l = consumed_hi; l-- > 0;) {  // deeper level = older
      const Level& lv = levels_[l];
      if (lv.real_count == 0) continue;
      for (const SegRef& s : lv.segs) job->inputs.push_back(s);
      total += lv.real_count;
    }
    if (include_incoming) {
      for (const kern::RunView<K, V>& s : incoming_spans_) {
        if (s.n == 0) continue;
        job->inputs.push_back(snap::make_segment<K, V>(
            std::vector<K>(s.keys, s.keys + s.n),
            std::vector<V>(s.vals, s.vals + s.n),
            std::vector<std::uint8_t>(s.flags, s.flags + s.n),
            /*id=*/0, /*base_addr=*/0, mutation_epoch_));
        total += s.n;
      }
    }
    if (total == 0) return false;
    std::size_t target = provisional_target;
    while (real_cap(target) < total) ++target;  // pre-dedup capacity bound
    ensure_level(target);
    std::uint64_t depth = 0;
    if (!compact::Pool::instance().submit(
            [job] {
              if (job->try_claim()) job->run();
            },
            forced, &depth)) {
      return false;
    }
    pend_job_ = std::move(job);
    pending_active_ = true;
    pend_target_ = target;
    pend_consumed_hi_ = consumed_hi;
    pend_total_in_ = total;
    pend_forced_ = forced;
    // Reserve the output segment's identity and logical address region on
    // the writer thread — the job itself never touches dictionary state.
    pend_seg_id_ = next_seg_id_++;
    pend_base_addr_ = next_base_;
    next_base_ += total * sizeof(TItem);
    // Consumed spill ids for the install-time observer callback.
    pend_consumed_ids_.clear();
    if (fold_observer_ != nullptr) {
      for (std::size_t l = spill_depth_; l < consumed_hi && l < levels_.size();
           ++l) {
        for (const SegRef& s : levels_[l].segs) {
          pend_consumed_ids_.push_back(s->id);
        }
      }
    }
    for (std::size_t l = 0; l < consumed_hi; ++l) clear_level(levels_[l]);
    // After the clear so a forced fold whose target sits INSIDE the
    // consumed range records install position 0 (the fold is the oldest
    // data the level will ever hold again).
    pend_prior_segs_ = levels_[target].segs.size();
    if (drop) bottom_relocated_ = false;
    cstats_->folds_deferred.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t peak = cstats_->queue_peak.load(std::memory_order_relaxed);
    while (depth > peak && !cstats_->queue_peak.compare_exchange_weak(
                               peak, depth, std::memory_order_relaxed)) {
    }
    return true;
  }

  /// Opportunistic install point at every mutator entry: when the fold has
  /// finished, land its output now. Never blocks.
  void poll_install() {
    if (!pending_active_ || cfg_.unsafe_defer_install) return;
    if (!pend_job_->done()) return;
    install_pending();
  }

  /// Land the in-flight fold NOW: claim and run it on this thread if no
  /// worker picked it up yet (writer assist), else wait for the worker —
  /// then install. The one blocking point, and the debt bound: the writer
  /// can never race more than one fold ahead of the compactor.
  void assist_pending() {
    if (!pending_active_) return;
    if (pend_job_->try_claim()) {
      pend_job_->run();
      cstats_->writer_assists.fetch_add(1, std::memory_order_relaxed);
    } else if (!pend_job_->done()) {
      pend_job_->wait_done();
    }
    install_pending();
  }

  /// Land the finished fold's output (writer thread; job must be done).
  /// The output segment splices in at the recorded install point — BELOW
  /// every run that arrived after the enqueue snapshot, preserving recency
  /// order — and the bookkeeping the synchronous fold does inline happens
  /// here: stats mirror, spill observer (the durable tier's WAL barrier
  /// thus runs on the writer thread before any reader can see the
  /// segment), staleness credit, epoch bump. Dropping the job releases the
  /// input refs: sources retire unless a snapshot still pins them.
  void install_pending() {
    std::shared_ptr<compact::FoldJob<K, V>> job = std::move(pend_job_);
    const std::size_t target = pend_target_;
    const std::size_t prior = pend_prior_segs_;
    const std::uint64_t total_in = pend_total_in_;
    const std::uint64_t seg_id = pend_seg_id_;
    const std::uint64_t base_addr = pend_base_addr_;
    const bool forced = pend_forced_;
    pending_active_ = false;
    ++mutation_epoch_;
    cstats_->bg_fold_ns.fetch_add(job->fold_ns, std::memory_order_relaxed);
    kern::RunBuf<K, V>& out = job->out;
    // Stats mirror of the synchronous fold path.
    stats_.duplicates_dropped +=
        total_in - (out.size() + job->tombstones_dropped);
    stats_.tombstones_dropped += job->tombstones_dropped;
    last_collapse_final_dups_ = job->final_dups;
    if (out.empty()) {
      // Annihilated to nothing — the consumed spilled sources are still
      // gone; report so the observer retires them (report_empty_fold's
      // contract, with the id reserved at enqueue).
      if (fold_observer_ != nullptr && !pend_consumed_ids_.empty()) {
        fold_observer_->on_segment_spill(seg_id, target, nullptr, 0,
                                         pend_consumed_ids_.data(),
                                         pend_consumed_ids_.size());
      }
      pend_consumed_ids_.clear();
      return;
    }
    const std::size_t out_n = out.size();
    SegRef seg = snap::make_segment_prefiltered(
        std::move(out.keys), std::move(out.vals), std::move(out.flags),
        std::move(job->filter_words), seg_id, base_addr, mutation_epoch_);
    const Seg& sref = *seg;
    Level& lv = levels_[target];
    assert(lv.real_count + out_n <= real_cap(target));
    const std::size_t pos = cfg_.unsafe_break_install_order
                                ? lv.segs.size()
                                : std::min(prior, lv.segs.size());
    lv.tomb_count += sref.tombs;
    lv.segs.insert(lv.segs.begin() + static_cast<std::ptrdiff_t>(pos),
                   std::move(seg));
    lv.seg_stale.insert(lv.seg_stale.begin() + static_cast<std::ptrdiff_t>(pos),
                        0);
    lv.real_count += out_n;
    lv.fills = static_cast<std::uint32_t>(
        std::min<std::size_t>(lv.segs.size(), cfg_.growth - 1));
    stats_.entries_merged += out_n;
    if (fold_observer_ != nullptr && target >= spill_depth_) {
      spill_items_.clear();
      spill_items_.reserve(out_n);
      for (std::size_t i = 0; i < out_n; ++i) {
        spill_items_.push_back((sref.flags[i] & kFlagTombstone) != 0
                                   ? Op<K, V>::del(sref.keys[i])
                                   : Op<K, V>::put(sref.keys[i], sref.vals[i]));
      }
      fold_observer_->on_segment_spill(seg_id, target, spill_items_.data(),
                                       spill_items_.size(),
                                       pend_consumed_ids_.data(),
                                       pend_consumed_ids_.size());
    }
    pend_consumed_ids_.clear();
    // Staleness credit — the same estimator as the inline cascade; the
    // tail exclusion covers the installed segment AND every newer arrival.
    if (!forced && job->final_dups > 0) {
      const std::uint64_t est = job->final_dups;
      const K& lo = sref.min_key;
      const K& hi = sref.max_key;
      add_staleness(target, lo, hi, est,
                    /*exclude_tail=*/lv.segs.size() - pos);
      const std::size_t d = deepest_nonempty();
      if (d > target && out_n * 4 >= levels_[d].real_count) {
        add_staleness(d, lo, hi, est, /*exclude_tail=*/0);
      }
    }
  }

  /// Push level l's segments newest -> oldest (the snapshot/view priority
  /// order), splicing an in-flight fold's inputs at its install position:
  /// post-snapshot arrivals first (newest), then the fold's inputs, then
  /// the segments that predate the fold — exactly the order the install
  /// will freeze, so reads are coherent mid-flight without any barrier.
  void push_level_segs(std::size_t l, std::vector<SegRef>& out) const {
    const Level& lv = levels_[l];
    if (pending_active_ && l == pend_target_) {
      const std::size_t prior = std::min(pend_prior_segs_, lv.segs.size());
      for (std::size_t j = lv.segs.size(); j-- > prior;) {
        out.push_back(lv.segs[j]);
      }
      for (std::size_t j = pend_job_->inputs.size(); j-- > 0;) {
        out.push_back(pend_job_->inputs[j]);
      }
      for (std::size_t j = prior; j-- > 0;) out.push_back(lv.segs[j]);
      return;
    }
    for (std::size_t j = lv.segs.size(); j-- > 0;) out.push_back(lv.segs[j]);
  }

  void put(const K& key, const V& value, bool tombstone) {
    ++mutation_epoch_;
    poll_install();
    if (cfg_.staging_capacity > 0) {
      ensure_stage_base();
      if (stage_.keys.capacity() < cfg_.staging_capacity) {
        stage_.reserve(cfg_.staging_capacity);
      }
      stage_runs_.push_back(static_cast<std::uint32_t>(stage_.size()));
      stage_run_min_.push_back(key);
      stage_run_max_.push_back(key);
      stage_run_segs_.emplace_back();
      stage_.push_back(key, value,
                       static_cast<std::uint8_t>(tombstone ? kFlagTombstone : 0u));
      mm_.touch_write(stage_base_ + (stage_.size() - 1) * sizeof(TItem), sizeof(TItem));
      counter_merge_stage_tail();
      ++stats_.stage_absorbed;
      if (stage_.size() >= cfg_.staging_capacity) flush_stage();
      return;
    }
    ensure_level(0);
    if (!level_full(0)) {
      Level& l0 = levels_[0];
      if (cfg_.tiered) {
        SegRef seg = new_segment(
            std::vector<K>(1, key), std::vector<V>(1, value),
            std::vector<std::uint8_t>(
                1, static_cast<std::uint8_t>(tombstone ? kFlagTombstone : 0u)));
        mm_.touch_write(seg->base_addr, sizeof(TItem));
        l0.segs.assign(1, std::move(seg));
        l0.seg_stale.assign(1, 0);
        l0.tomb_count = tombstone ? 1 : 0;
        l0.stale_count = 0;
      } else {
        Slot s{};
        s.key = key;
        s.value = value;
        s.flags = tombstone ? kFlagTombstone : 0u;
        l0.occ_begin = static_cast<std::uint32_t>(l0.slots.size() - 1);
        l0.slots[l0.occ_begin] = s;
        touch_region(0, l0.occ_begin, 1, /*write=*/true);
      }
      l0.real_count = 1;
      l0.fills = 1;
      return;
    }

    // Tiered: the target must have segment room AND slot space; reuse the
    // capacity-aware walk with a singleton run.
    if (cfg_.tiered) {
      titem_run_.clear();
      titem_run_.push_back(
          key, value, static_cast<std::uint8_t>(tombstone ? kFlagTombstone : 0u));
      incoming_spans_.assign(1, titem_run_.view());
      cascade_run_tiered(1);
      return;
    }
    // Find the first non-full target level t; merge levels 0..t-1 + the new
    // element into it.
    std::size_t t = 1;
    while (level_full(t)) ++t;
    ensure_level(t);
    merge_into(t, key, value, tombstone);
  }

  /// Extract level l's real entries (lookahead slots skipped) onto the
  /// plane scratch cls_lvl_, so the cascade's per-level merges run on the
  /// SIMD plane kernels instead of a scalar walk over 32-byte AoS slots.
  /// Lookahead flags are shed here — the cascade re-derives the chains via
  /// rebuild_lookahead. DAM accounting is the same single read of the
  /// level's occupied region the in-place merge charged.
  void extract_level_planes(std::size_t l) {
    const Level& lv = levels_[l];
    touch_region(l, lv.occ_begin,
                 static_cast<std::uint64_t>(lv.slots.size()) - lv.occ_begin,
                 /*write=*/false);
    cls_lvl_.clear();
    cls_lvl_.reserve(lv.real_count);
    for (std::size_t i = lv.occ_begin; i < lv.slots.size(); ++i) {
      const Slot& s = lv.slots[i];
      if (s.is_lookahead()) continue;
      cls_lvl_.push_back(s.key, s.value,
                         static_cast<std::uint8_t>(s.flags & kFlagTombstone));
    }
  }

  /// Deepest level holding data — COMMITTED data included: an in-flight
  /// fold's output will land at pend_target_, so anything at least that
  /// deep counts (tombstone-drop and trivial-move decisions must treat the
  /// pending mass as already there).
  std::size_t deepest_nonempty() const noexcept {
    for (std::size_t l = levels_.size(); l-- > 0;) {
      if (levels_[l].real_count > 0) {
        return pending_active_ ? std::max(l, pend_target_) : l;
      }
    }
    return pending_active_ ? pend_target_ : 0;
  }

  void merge_into(std::size_t t, const K& key, const V& value, bool tombstone) {
    cls_acc_.clear();
    cls_acc_.push_back(
        key, value, static_cast<std::uint8_t>(tombstone ? kFlagTombstone : 0u));
    cascade_into_planes(t);
  }

  /// Tiered cascade: gather the segments of levels 0..t-1 plus `acc` as a
  /// run list ordered oldest -> newest (deeper level = older; within a
  /// level the first segment is oldest; `acc` is newest of all), collapse
  /// it with balanced pairwise rounds (log2(#runs) passes, newest-wins),
  /// clear the sources, and APPEND the result as a new segment of level t —
  /// the level's existing segments are untouched, which is the whole point:
  /// an element is written once per level it passes, not once per merge the
  /// level receives.
  void cascade_into_tiered(std::size_t t) {
    // Collect source spans oldest -> newest: deeper level = older, within a
    // level the first segment is oldest, and the incoming spans (already
    // ordered oldest -> newest by the caller) are newest of all.
    std::vector<kern::RunView<K, V>>& spans = fold_spans_;
    spans.clear();
    std::size_t total = 0;
    for (std::size_t l = t; l-- > 0;) {
      const Level& lv = levels_[l];
      if (lv.real_count == 0) continue;
      for (std::size_t j = 0; j < lv.segs.size(); ++j) {  // oldest first
        const Seg& seg = *lv.segs[j];
        mm_.touch(seg.base_addr, seg.size() * sizeof(TItem));
        spans.push_back(kern::RunView<K, V>{
            seg.keys.data(), seg.vals.data(), seg.flags.data(), seg.size()});
      }
      total += lv.real_count;
    }
    for (const kern::RunView<K, V>& s : incoming_spans_) {
      spans.push_back(s);
      total += s.n;
    }
    // Never drop while a background fold targets this level: its output is
    // OLDER than this cascade's data and installs below it, so older copies
    // can still resurface (deepest_nonempty already counts the pending
    // target; the explicit clause covers t == pend_target_ itself).
    const bool drop_tombstones =
        t >= deepest_nonempty() && levels_[t].real_count == 0 &&
        !(pending_active_ && pend_target_ == t);
    // This fold IS a bottom compaction: the next deepest-level drain may
    // take the trivial move again.
    if (drop_tombstones) bottom_relocated_ = false;
    collapse_fold_spans(total);
    const std::size_t merged = tfold_buf_.size();
    gather_spill_consumed(t);
    // Sources are cleared only after the fold — the spans read from them.
    for (std::size_t l = 0; l < t; ++l) clear_level(levels_[l]);
    stats_.duplicates_dropped += total - merged;
    // A tombstone can be discarded only when no older copy of its key can
    // exist anywhere — deepest level AND no older segments in the target.
    if (drop_tombstones) strip_tombstones(tfold_buf_);
    append_segment(t, tfold_buf_);
    if (tfold_buf_.empty()) report_empty_fold(t);
    // Staleness estimate, at zero extra I/O: the fold's final merge round
    // just counted its DISTINCT duplicated keys (last_collapse_final_dups_)
    // — a measured sample of how many distinct keys this feed rewrites. A
    // key the feed rewrites shadows its older copies in the target's older
    // segments and in deeper levels at the same rate, so credit that count
    // there. Distinct (not total) duplicates is the load-bearing choice: a
    // hot key repeated a thousand times within a fold shadows at most one
    // deep copy, and crediting total duplicate mass would force spurious
    // compactions on hot-set feeds. Pure-growth feeds measure ~0.
    if (!tfold_buf_.empty() && last_collapse_final_dups_ > 0) {
      const std::uint64_t est = last_collapse_final_dups_;
      const K& lo = tfold_buf_.keys.front();
      const K& hi = tfold_buf_.keys.back();
      add_staleness(t, lo, hi, est, /*exclude_tail=*/1);
      // The arrival also shadows deeper data. Credit the deepest level —
      // where retention is bounded only by the forced folds — so small-g
      // geometries (one segment per level) see churn pressure too. Only
      // folds COMPARABLE IN SIZE to the deepest level credit it: a shallow
      // fold re-observes the same hot keys on every drain, and crediting
      // each observation would recount one shadowed deep copy many times
      // over (spurious compactions on hot-set feeds); a fold carrying a
      // quarter of the deepest level's mass has accumulated the distinct
      // keys of a whole generation — the honest sample.
      const std::size_t d = deepest_nonempty();
      if (d > t && tfold_buf_.size() * 4 >= levels_[d].real_count) {
        add_staleness(d, lo, hi, est, /*exclude_tail=*/0);
      }
    }
  }

  /// Collapse fold_spans_ (sorted runs ordered oldest -> newest, `total`
  /// elements in all) into one sorted newest-wins run in tfold_buf_. A
  /// single span copies straight through; past the cache cutoff the one-pass
  /// loser-tree k-way merge reads and writes each element exactly once (the
  /// pairwise rounds would stream the whole fold through DRAM log2(#spans)
  /// times); in cache, balanced pairwise rounds — round zero merges adjacent
  /// span pairs straight from their source locations, so the gather pass and
  /// the first merge round are the same pass. Shared by the cascade fold and
  /// the tombstone-pressure bottom compaction.
  void collapse_fold_spans(std::size_t total) {
    const std::vector<kern::RunView<K, V>>& spans = fold_spans_;
    if (spans.size() == 1) {
      tfold_buf_.assign(spans[0]);
      last_collapse_final_dups_ = 0;
      return;
    }
    if (total >= kKwayCutoff) {
      kway_merge_spans(spans, total, tfold_buf_);
      return;
    }
    kern::RunBuf<K, V>& buf = tfold_buf_;
    std::vector<std::uint32_t>& runs = fold_runs_;
    buf.resize(total);
    runs.clear();
    std::size_t w = 0;
    for (std::size_t i = 0; i < spans.size(); i += 2) {
      runs.push_back(static_cast<std::uint32_t>(w));
      if (i + 1 >= spans.size()) {  // odd span out: carry over
        std::copy_n(spans[i].keys, spans[i].n, buf.keys.data() + w);
        std::copy_n(spans[i].vals, spans[i].n, buf.vals.data() + w);
        std::copy_n(spans[i].flags, spans[i].n, buf.flags.data() + w);
        w += spans[i].n;
        break;
      }
      w += kern::merge_pair_newest_wins(
          spans[i].keys, spans[i].vals, spans[i].flags, spans[i].n,
          spans[i + 1].keys, spans[i + 1].vals, spans[i + 1].flags,
          spans[i + 1].n, buf.keys.data() + w, buf.vals.data() + w,
          buf.flags.data() + w, isa_);
    }
    buf.resize(w);
    // Two spans: the gather round above WAS the final round.
    if (spans.size() <= 2) last_collapse_final_dups_ = total - w;
    kern::collapse_runs(buf, runs, tfold_tmp_, fold_runs_scratch_, isa_,
                        &last_collapse_final_dups_);
  }

  // Fold totals at or above this run through the one-pass k-way merge
  // instead of pairwise rounds (elements, ~1.5 MiB of TItems: past L2).
  static constexpr std::size_t kKwayCutoff = std::size_t{1} << 16;

  /// One-pass k-way merge of the sorted source spans (ordered oldest ->
  /// newest) into `out`, newest-wins on duplicate keys. A loser tree with
  /// KEYS CACHED in the internal nodes: each emitted element costs one
  /// source deref plus log2(#spans) compares on in-cache key copies — no
  /// pointer chasing on the replay path, which is what makes the big
  /// DRAM-resident drains bandwidth-bound instead of latency-bound. Ties
  /// order the NEWER (higher-index) span first, so duplicates of a key pop
  /// newest-first and dedup is a last-emitted-key compare.
  void kway_merge_spans(const std::vector<kern::RunView<K, V>>& spans,
                        std::size_t total, kern::RunBuf<K, V>& out) {
    out.resize(total);
    const std::size_t ns = spans.size();
    kway_pos_.assign(ns, 0);
    std::size_t tsize = 1;
    while (tsize < ns) tsize <<= 1;
    // x beats y when it must pop first: alive, and smaller key — or the
    // same key from a newer span.
    const auto beats = [](bool xa, const K& xk, std::uint32_t xi, bool ya,
                          const K& yk, std::uint32_t yi) {
      if (!xa) return false;
      if (!ya) return true;
      if (xk < yk) return true;
      if (yk < xk) return false;
      return xi > yi;
    };
    // Bottom-up init: winner arrays over 2*tsize nodes; internal node n
    // keeps its match's LOSER cached in loser_*_[n].
    wkey_.assign(2 * tsize, K{});
    widx_.assign(2 * tsize, 0);
    walive_.assign(2 * tsize, 0);
    loser_key_.assign(tsize, K{});
    loser_idx_.assign(tsize, 0);
    loser_alive_.assign(tsize, 0);
    for (std::size_t i = 0; i < ns; ++i) {
      if (spans[i].n == 0) continue;
      wkey_[tsize + i] = spans[i].keys[0];
      widx_[tsize + i] = static_cast<std::uint32_t>(i);
      walive_[tsize + i] = 1;
    }
    for (std::size_t n2 = tsize; n2-- > 1;) {
      const std::size_t a = 2 * n2, b = 2 * n2 + 1;
      const bool bwins =
          beats(walive_[b] != 0, wkey_[b], widx_[b], walive_[a] != 0, wkey_[a], widx_[a]);
      const std::size_t win = bwins ? b : a, lose = bwins ? a : b;
      wkey_[n2] = wkey_[win];
      widx_[n2] = widx_[win];
      walive_[n2] = walive_[win];
      loser_key_[n2] = wkey_[lose];
      loser_idx_[n2] = widx_[lose];
      loser_alive_[n2] = walive_[lose];
    }
    bool wa = walive_[1] != 0;
    std::uint32_t wi = widx_[1];
    K* wk = out.keys.data();
    V* wv = out.vals.data();
    std::uint8_t* wf = out.flags.data();
    std::size_t w = 0;
    // Distinct duplicated keys (a key's drops count once) — the staleness
    // estimator's input; copies of one key pop adjacently here.
    std::uint64_t distinct_dups = 0;
    bool cur_key_dropped = false;
    while (wa) {
      const std::size_t p = kway_pos_[wi];
      const K& k = spans[wi].keys[p];
      if (w == 0 || wk[w - 1] < k) {
        wk[w] = k;
        wv[w] = spans[wi].vals[p];
        wf[w] = spans[wi].flags[p];
        ++w;
        cur_key_dropped = false;
      } else {  // older duplicate of the key just emitted — dropped
        if (!cur_key_dropped) {
          ++distinct_dups;
          cur_key_dropped = true;
        }
      }
      ++kway_pos_[wi];
      // Replay the path from this leaf: the new head (or "drained") plays
      // each cached loser on the way to the root.
      bool ca = kway_pos_[wi] != spans[wi].n;
      K ck = ca ? spans[wi].keys[kway_pos_[wi]] : K{};
      std::uint32_t ci = wi;
      for (std::size_t n2 = (tsize + wi) >> 1; n2 >= 1; n2 >>= 1) {
        if (beats(loser_alive_[n2] != 0, loser_key_[n2], loser_idx_[n2], ca, ck, ci)) {
          std::swap(ck, loser_key_[n2]);
          std::swap(ci, loser_idx_[n2]);
          const bool t = ca;
          ca = loser_alive_[n2] != 0;
          loser_alive_[n2] = t ? 1 : 0;
        }
      }
      wa = ca;
      wi = ci;
    }
    out.resize(w);
    last_collapse_final_dups_ = distinct_dups;
  }

  /// Append `content` as the new (last) segment of level l. Tiered levels
  /// are left-justified and grow on demand, so this is one amortized
  /// sequential write with no rewrite of the level's existing segments.
  /// Landing at or past the spill depth reports the segment (and the
  /// consumed ids gathered by the fold) to the attached observer.
  void append_segment(std::size_t l, const kern::RunBuf<K, V>& content) {
    if (content.empty()) return;
    Level& lv = levels_[l];
    assert(lv.real_count + content.size() <= real_cap(l));
    SegRef seg = new_segment(std::vector<K>(content.keys),
                             std::vector<V>(content.vals),
                             std::vector<std::uint8_t>(content.flags));
    const std::uint64_t seg_id = seg->id;
    mm_.touch_write(seg->base_addr, content.size() * sizeof(TItem));
    lv.tomb_count += seg->tombs;
    lv.segs.push_back(std::move(seg));
    lv.seg_stale.push_back(0);
    lv.real_count += content.size();
    lv.fills = static_cast<std::uint32_t>(
        std::min<std::size_t>(lv.segs.size(), cfg_.growth - 1));
    stats_.entries_merged += content.size();
    if (fold_observer_ != nullptr && l >= spill_depth_) {
      spill_items_.clear();
      spill_items_.reserve(content.size());
      for (std::size_t i = 0; i < content.size(); ++i) {
        spill_items_.push_back(
            (content.flags[i] & kFlagTombstone) != 0
                ? Op<K, V>::del(content.keys[i])
                : Op<K, V>::put(content.keys[i], content.vals[i]));
      }
      fold_observer_->on_segment_spill(seg_id, l, spill_items_.data(),
                                       spill_items_.size(),
                                       spill_consumed_.data(),
                                       spill_consumed_.size());
    }
    spill_consumed_.clear();
  }

  /// Collect the seg_ids of every segment in levels [spill_depth_, n) —
  /// the previously-observed segments an imminent fold of levels 0..n-1
  /// will destroy — into spill_consumed_ for the observer callback.
  void gather_spill_consumed(std::size_t n) {
    spill_consumed_.clear();
    if (fold_observer_ == nullptr) return;
    for (std::size_t l = spill_depth_; l < n && l < levels_.size(); ++l) {
      for (const SegRef& s : levels_[l].segs) spill_consumed_.push_back(s->id);
    }
  }

  /// A fold whose output annihilated to nothing still destroyed its spilled
  /// sources — report that (items == nullptr) so the observer retires them.
  void report_empty_fold(std::size_t level) {
    if (fold_observer_ != nullptr && !spill_consumed_.empty()) {
      fold_observer_->on_segment_spill(next_seg_id_++, level, nullptr, 0,
                                       spill_consumed_.data(),
                                       spill_consumed_.size());
    }
    spill_consumed_.clear();
  }

  /// Drop the level's segment references. Segments pinned by a live
  /// snapshot survive until its last handle drops (deferred free via the
  /// shared_ptr refcount); unpinned ones free here.
  static void clear_level(Level& lv) {
    lv.segs.clear();
    lv.seg_stale.clear();
    lv.real_count = 0;
    lv.tomb_count = 0;
    lv.stale_count = 0;
    lv.fills = 0;
  }

  /// Merge cls_acc_ (the newest run: sorted, unique keys, PLANE form)
  /// together with levels 0..t-1 into level t — the shared engine behind
  /// the single-op cascade, insert_batch, and the staging flush. The
  /// per-level folds run on the vectorized plane kernels (newest-wins
  /// merge_pair dispatch); only the final write into the target's slot
  /// array returns to Slot form, because that is where the lookahead
  /// chains live.
  void cascade_into_planes(std::size_t t) {
    ++stats_.merges;
    // Cascade: fold in levels 0..t-1 from newest to oldest. CPU cost O(k);
    // transfer cost: each source level is read once, the target written once
    // (the paper's merge pattern).
    for (std::size_t l = 0; l < t; ++l) {
      if (levels_[l].real_count == 0) continue;
      extract_level_planes(l);
      stats_.duplicates_dropped +=
          kern::merge_into(cls_lvl_.view(), cls_acc_.view(), cls_tmp_, isa_);
      cls_acc_.swap(cls_tmp_);
    }

    Level& target = levels_[t];
    // Tombstones can be discarded once no older copy of their key can exist,
    // i.e. when merging into (or past) the deepest level holding real data.
    const bool drop_tombstones = t >= deepest_nonempty();

    // Prepend fast path: everything incoming sorts strictly before the
    // target's current occupied region, so nothing in the target moves.
    if (cfg_.enable_prepend && target.occ_begin < target.slots.size() &&
        !cls_acc_.empty() &&
        cls_acc_.keys.back() < target.slots[target.occ_begin].key &&
        cls_acc_.size() <= target.occ_begin) {
      prepend_into(t, cls_acc_, drop_tombstones);
    } else {
      full_merge_into(t, cls_acc_, drop_tombstones);
    }

    // Fullness tracks merge count AND occupancy: a batch cascade can deliver
    // several merges' worth of items at once, so a level must also read as
    // full once another worst-case single-op cascade (< real_cap/(g-1)
    // items) could overflow it. For pure single-op streams the occupancy
    // term never exceeds the merge count, so behavior is unchanged there.
    const std::uint64_t cap = real_cap(t);
    const std::uint64_t occ_fills =
        (target.real_count * (cfg_.growth - 1) + cap - 1) / cap;
    target.fills = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        cfg_.growth - 1,
        std::max<std::uint64_t>(target.fills + 1, occ_fills)));

    // Clear the drained levels and rebuild their lookahead-only contents.
    for (std::size_t l = 0; l < t; ++l) {
      Level& lv = levels_[l];
      lv.occ_begin = static_cast<std::uint32_t>(lv.slots.size());
      lv.fills = 0;
      lv.real_count = 0;
    }
    for (std::size_t l = t; l-- > 1;) rebuild_lookahead(l);
  }

  /// Drop tombstones from `run` in place (used when merging into the deepest
  /// data so no older copy can resurface). Works on Slot and TItem runs.
  template <class T>
  void strip_tombstones(std::vector<T>& run) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < run.size(); ++r) {
      if (run[r].is_tombstone()) {
        ++stats_.tombstones_dropped;
        continue;
      }
      run[w++] = run[r];
    }
    run.resize(w);
  }

  /// Plane-form overload for the tiered fold buffers.
  void strip_tombstones(kern::RunBuf<K, V>& run) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < run.size(); ++r) {
      if ((run.flags[r] & kFlagTombstone) != 0) {
        ++stats_.tombstones_dropped;
        continue;
      }
      run.keys[w] = run.keys[r];
      run.vals[w] = run.vals[r];
      run.flags[w] = run.flags[r];
      ++w;
    }
    run.resize(w);
  }

  /// Write `incoming` (plane form) immediately left of the target's
  /// occupied region.
  void prepend_into(std::size_t t, kern::RunBuf<K, V>& incoming,
                    bool drop_tombstones) {
    if (drop_tombstones) strip_tombstones(incoming);
    ++stats_.prepend_merges;
    Level& lv = levels_[t];
    const std::uint32_t new_begin =
        lv.occ_begin - static_cast<std::uint32_t>(incoming.size());
    // The first lookahead at-or-right of the new region is the old region's
    // leading lookahead chain head.
    const std::uint32_t old_first_ra =
        lv.occ_begin < lv.slots.size() ? lv.slots[lv.occ_begin].right_la : kNoIdx;
    std::uint32_t i = new_begin;
    for (std::size_t r = 0; r < incoming.size(); ++r) {
      Slot s{};
      s.key = incoming.keys[r];
      s.value = incoming.vals[r];
      s.flags = incoming.flags[r] & kFlagTombstone;
      s.left_la = kNoIdx;  // no lookahead slots among the incoming entries
      s.right_la = old_first_ra;
      lv.slots[i++] = s;
    }
    touch_region(t, new_begin, incoming.size(), /*write=*/true);
    lv.occ_begin = new_begin;
    lv.real_count += incoming.size();
    stats_.entries_merged += incoming.size();
  }

  /// Full rewrite of the target level: merge incoming entries with the
  /// target's existing real entries, keep its existing lookahead slots
  /// (their targets in level t+1 are unchanged), and re-justify right. One
  /// fused pass over the target's slot array — the old slots are sorted with
  /// lookahead slots interleaved before equal-key reals, so a sequential
  /// walk merges reals and re-emits lookahead slots in their final order
  /// without the extract / merge / interleave copies.
  void full_merge_into(std::size_t t, const kern::RunBuf<K, V>& incoming,
                       bool drop_tombstones) {
    Level& lv = levels_[t];
    touch_region(t, lv.occ_begin,
                 static_cast<std::uint64_t>(lv.slots.size()) - lv.occ_begin,
                 /*write=*/false);
    std::vector<Slot>& content = scratch_content_;
    content.clear();
    content.reserve((lv.slots.size() - lv.occ_begin) + incoming.size());
    std::uint64_t reals = 0;
    std::size_t a = 0;
    std::uint32_t i = lv.occ_begin;
    const std::uint32_t E = static_cast<std::uint32_t>(lv.slots.size());
    const auto push_real = [&](const Slot& s) {
      if (drop_tombstones && s.is_tombstone()) {
        ++stats_.tombstones_dropped;
        return;
      }
      content.push_back(s);
      ++reals;
    };
    const auto push_incoming = [&] {
      Slot s{};
      s.key = incoming.keys[a];
      s.value = incoming.vals[a];
      s.flags = incoming.flags[a] & kFlagTombstone;
      ++a;
      push_real(s);
    };
    while (i < E && a < incoming.size()) {
      const Slot& s = lv.slots[i];
      if (s.is_lookahead()) {
        // Equal keys keep the lookahead before the real it shadows.
        if (s.key <= incoming.keys[a]) {
          content.push_back(s);
          ++i;
        } else {
          push_incoming();
        }
      } else if (incoming.keys[a] < s.key) {
        push_incoming();
      } else if (s.key < incoming.keys[a]) {
        push_real(s);
        ++i;
      } else {
        push_incoming();
        ++i;  // shadowed older copy
        ++stats_.duplicates_dropped;
      }
    }
    for (; i < E; ++i) {
      const Slot& s = lv.slots[i];
      if (s.is_lookahead()) {
        content.push_back(s);
      } else {
        push_real(s);
      }
    }
    while (a < incoming.size()) push_incoming();

    write_level(t, content);
    lv.real_count = reals;
    stats_.entries_merged += reals;
  }

  /// Right-justify `content` into level l's array and recompute the
  /// left_la/right_la chains.
  void write_level(std::size_t l, const std::vector<Slot>& content) {
    Level& lv = levels_[l];
    assert(content.size() <= lv.slots.size());
    const std::uint32_t begin =
        static_cast<std::uint32_t>(lv.slots.size() - content.size());
    std::uint32_t last_la = kNoIdx;
    for (std::uint32_t i = 0; i < content.size(); ++i) {
      Slot s = content[i];
      if (s.is_lookahead()) last_la = begin + i;
      s.left_la = last_la;
      lv.slots[begin + i] = s;
    }
    std::uint32_t next_la = kNoIdx;
    for (std::uint32_t i = static_cast<std::uint32_t>(lv.slots.size()); i-- > begin;) {
      if (lv.slots[i].is_lookahead()) next_la = i;
      lv.slots[i].right_la = next_la;
    }
    lv.occ_begin = begin;
    touch_region(l, begin, content.size(), /*write=*/true);
  }

  /// Rebuild level l as lookahead-only samples of level l+1 (level l's real
  /// contents have just been drained by a merge).
  void rebuild_lookahead(std::size_t l) {
    Level& lv = levels_[l];
    assert(lv.real_count == 0);
    const std::uint64_t cap = la_cap(l);
    if (cap == 0 || l + 1 >= levels_.size()) {
      lv.occ_begin = static_cast<std::uint32_t>(lv.slots.size());
      return;
    }
    const Level& nxt = levels_[l + 1];
    const std::uint64_t navail =
        static_cast<std::uint64_t>(nxt.slots.size()) - nxt.occ_begin;
    if (navail == 0) {
      lv.occ_begin = static_cast<std::uint32_t>(lv.slots.size());
      return;
    }
    const std::uint64_t take = std::min<std::uint64_t>(cap, navail);
    const std::uint64_t stride = navail / take;
    std::vector<Slot>& content = scratch_content_;
    content.clear();
    content.reserve(take);
    for (std::uint64_t i = 0; i < take; ++i) {
      const std::uint32_t tgt =
          nxt.occ_begin + static_cast<std::uint32_t>(i * stride + stride - 1);
      touch_slot(l + 1, tgt);
      Slot s{};
      s.key = nxt.slots[tgt].key;
      s.target = tgt;
      s.flags = kFlagLookahead;
      content.push_back(s);
    }
    write_level(l, content);
  }

  ColaConfig cfg_;
  std::vector<Level> levels_;
  // mutable: the classic-mode copy-on-snapshot path (snapshot() const)
  // allocates logical regions for its per-epoch level copies.
  mutable std::uint64_t next_base_ = 0;
  // Bumped by every mutator; cursor states compare it to reuse their
  // materialized staged view across seeks on an unmutated dictionary.
  std::uint64_t mutation_epoch_ = 0;
  // Mutable: the const read paths (find, Cursor::seek) count their fence
  // skips — observability, not state the reads depend on.
  mutable ColaStats stats_;
  // Kernel dispatch tier resolved once at construction: the process-wide
  // active ISA, or scalar when the simd knob is off (ablations).
  simd::Isa isa_ = simd::Isa::kScalar;
  mutable MM mm_;
  // Staging L0 arena, plane form: a sequence of sorted runs (batches
  // normalized on arrival; single ops are 1-entry runs), flushed as one
  // cascade when full.
  kern::RunBuf<K, V> stage_;
  std::vector<std::uint32_t> stage_runs_;  // begin offset of each run
  std::vector<std::uint32_t> stage_runs_scratch_;
  // Per-run fence keys (parallel to stage_runs_): min/max key of each run,
  // O(1) to maintain, used by find and the cursors to skip runs.
  std::vector<K> stage_run_min_, stage_run_max_;
  // Lazily minted immutable mirrors of the staging runs (parallel to
  // stage_runs_; nullptr = not minted yet). publish_view() fills the gaps
  // and reuses minted mirrors across republishes: appends only add new
  // runs, and the binary-counter tail merge invalidates exactly the runs
  // it rewrites — so a republish costs O(new data), not an arena sort.
  // Mutable: minting happens inside const publish_view().
  mutable std::vector<snap::SegmentRef<K, V>> stage_run_segs_;
  // Tiered cascade scratch: incoming run spans (prepared by callers of
  // cascade_run_tiered), gathered source spans, run boundaries, fold
  // buffers, and the singleton/unstaged run.
  std::vector<kern::RunView<K, V>> incoming_spans_, fold_spans_;
  std::vector<std::uint32_t> fold_runs_, fold_runs_scratch_;
  kern::RunBuf<K, V> tfold_buf_, tfold_tmp_, titem_run_;
  // Distinct duplicated keys observed by the most recent collapse's final
  // merge round — the staleness estimator's measured input.
  std::uint64_t last_collapse_final_dups_ = 0;
  // k-way merge state (per-span positions + loser-tree node caches).
  std::vector<std::size_t> kway_pos_;
  std::vector<K> wkey_, loser_key_;
  std::vector<std::uint32_t> widx_, loser_idx_;
  std::vector<std::uint8_t> walive_, loser_alive_;
  // Staged-batch normalization scratch (Entry-sized: the narrowest form).
  std::vector<Entry<K, V>> stage_entry_scratch_, stage_entry_sort_scratch_;
  // Mixed-op batch normalization scratch (TItem-sized: tombstone flags ride
  // through the sort), reused across erase_batch/apply_batch calls.
  std::vector<TItem> titem_batch_, titem_batch_scratch_;
  std::uint64_t stage_base_ = 0;
  bool stage_base_set_ = false;
  // Trivial-move alternation flag: set when the deepest level is relocated
  // unmerged, cleared by the next true bottom fold (see cascade_run_tiered).
  bool bottom_relocated_ = false;
  // Durable-tier spill hooks: segment identity counter, the attached
  // observer (nullptr = memory-only), the depth at which folds report, and
  // scratch for the consumed-id list and the Op-form segment contents.
  std::uint64_t next_seg_id_ = 1;
  FoldObserver* fold_observer_ = nullptr;
  std::size_t spill_depth_ = 0;
  std::vector<std::uint64_t> spill_consumed_;
  std::vector<Op<K, V>> spill_items_;
  // Snapshot cache: snapshot() is a refcount bump while the dictionary is
  // unmutated (snap_epoch_ == mutation_epoch_); the first acquisition after
  // a mutation rebuilds. The stage-view vectors are the frozen-L0 scratch
  // (reused across rebuilds, so steady-state snapshots cost one segment
  // allocation, not a per-call sort buffer).
  mutable snap::Snapshot<K, V> snap_cache_;
  mutable std::uint64_t snap_epoch_ = 0;
  mutable kern::RunBuf<K, V> snap_stage_view_, snap_stage_tmp_;
  mutable std::vector<std::uint32_t> snap_stage_runs_, snap_stage_runs_scratch_;
  // Dictionary-owned scan cursor backing range_for_each/for_each, so the
  // scan paths reuse one warm merge scratch across calls (mutable: scans
  // are const and the cursor is pure scratch; scans are not reentrant).
  mutable snap::SnapshotCursor<K, V> scan_cur_;
  // Merge scratch, reused across inserts so the steady-state insert and
  // batch paths perform zero heap allocations (capacities grow to the
  // high-water mark of the deepest cascade seen, then stay).
  std::vector<Slot> scratch_a_, scratch_content_, scratch_batch_;
  // Classic-cascade plane scratch: the widened incoming run (cls_acc_),
  // the current level's extracted reals (cls_lvl_), and the merge target
  // (cls_tmp_) — the per-level folds run on the SIMD plane kernels, only
  // the final target write returns to Slot form.
  kern::RunBuf<K, V> cls_acc_, cls_lvl_, cls_tmp_;
  // -- background compaction state --------------------------------------------
  // Aggregated compaction counters, relaxed atomics behind a shared_ptr:
  // benches read them while workers add fold time, and the indirection
  // keeps Gcola movable (the factory-return paths) where atomic members
  // would not.
  struct AtomicCompactionStats {
    std::atomic<std::uint64_t> folds_deferred{0};
    std::atomic<std::uint64_t> writer_assists{0};
    std::atomic<std::uint64_t> queue_peak{0};
    std::atomic<std::uint64_t> bg_fold_ns{0};
  };
  // Resolved at construction: tiered + compaction_threads > 0 + null
  // memory model + no COSTREAM_COMPACTION=sync override.
  bool bg_enabled_ = false;
  // The single pending-fold slot. pend_target_ is the install level,
  // pend_prior_segs_ the install index (segments below it predate the
  // fold), pend_consumed_hi_ the exclusive top of the consumed level
  // range, pend_total_in_ the PRE-dedup input mass (capacity accounting
  // and item_count both need the physically-present figure).
  bool pending_active_ = false;
  std::shared_ptr<compact::FoldJob<K, V>> pend_job_;
  std::size_t pend_target_ = 0;
  std::size_t pend_prior_segs_ = 0;
  std::size_t pend_consumed_hi_ = 0;
  std::uint64_t pend_total_in_ = 0;
  std::uint64_t pend_seg_id_ = 0;
  std::uint64_t pend_base_addr_ = 0;
  bool pend_forced_ = false;
  std::vector<std::uint64_t> pend_consumed_ids_;
  std::shared_ptr<AtomicCompactionStats> cstats_ =
      std::make_shared<AtomicCompactionStats>();
};

/// The paper's headline configuration: growth 2, pointer density 0.1.
template <class K = Key, class V = Value, class MM = dam::null_mem_model>
using Cola = Gcola<K, V, MM>;

/// Basic COLA (Section 3 before fractional cascading): no lookahead
/// pointers, O(log^2 N) searches.
template <class K = Key, class V = Value, class MM = dam::null_mem_model>
Gcola<K, V, MM> make_basic_cola(unsigned growth = 2, MM mm = MM{}) {
  return Gcola<K, V, MM>(ColaConfig{growth, 0.0}, std::move(mm));
}

}  // namespace costream::cola
