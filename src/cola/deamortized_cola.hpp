// Deamortized (basic) COLA — paper Section 3, Lemma 21 / Theorem 22.
//
// The amortized COLA occasionally performs a merge that touches the entire
// structure (Theta(N) work on one unlucky insert). The deamortization bounds
// every insert by O(log N) moves while keeping the O((log N)/B) amortized
// transfer cost:
//
//  * every level k keeps TWO arrays of capacity 2^k;
//  * a level is "unsafe" while it holds items in both arrays; unsafe levels
//    are merged incrementally into an empty array of the next level;
//  * each insert places its item into level 0 and then spends a move budget
//    of m = 2k+2 (k = number of levels) advancing merges, scanning unsafe
//    levels left to right;
//  * Lemma 21: with this budget two adjacent levels are never simultaneously
//    unsafe, so a merge always finds an empty target array.
//
// Queries see only completed ("full") arrays: an in-progress merge copies
// items, sources stay visible until the merge completes, and the partially
// filled target is hidden — so a query never observes a half-merged level.
// (This is the basic deamortization; the lookahead-pointer variant with
// shadow/visible arrays, Theorem 24, is in deamortized_fc_cola.hpp.)
//
// Same upsert/tombstone semantics as Gcola. Arrays carry fill sequence
// numbers so "newest wins" is well defined across the two arrays of a level.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/entry.hpp"
#include "dam/mem_model.hpp"

namespace costream::cola {

struct DeamortizedStats {
  std::uint64_t inserts = 0;
  std::uint64_t merges_started = 0;
  std::uint64_t merges_completed = 0;
  std::uint64_t total_moves = 0;
  std::uint64_t max_moves_per_insert = 0;  // the worst-case bound under test
};

template <class K = Key, class V = Value, class MM = dam::null_mem_model>
class DeamortizedCola {
 public:
  explicit DeamortizedCola(MM mm = MM{}) : mm_(std::move(mm)) { ensure_level(0); }

  const DeamortizedStats& stats() const noexcept { return stats_; }
  MM& mm() noexcept { return mm_; }
  std::size_t level_count() const noexcept { return levels_.size(); }

  /// Physical items currently held in full (queryable) arrays plus items in
  /// unsafe sources not yet superseded. (Copies in in-progress merge targets
  /// are not double counted: targets are invisible until completion.)
  std::uint64_t item_count() const noexcept {
    std::uint64_t n = 0;
    for (const Level& lv : levels_) {
      for (int a = 0; a < 2; ++a) {
        if (lv.state[a] == State::kFull) n += lv.arr[a].size();
      }
    }
    return n;
  }

  void insert(const K& key, const V& value) { put(key, value, false); }
  void erase(const K& key) { put(key, V{}, true); }

  /// Bulk upsert (batch contract in api/dictionary.hpp). The deamortized
  /// machinery moves a budgeted number of items per operation — a batch
  /// cannot shortcut the level walk without breaking the worst-case move
  /// bound — so the batch is normalized once (sort + newest-wins dedup) and
  /// fed through the budgeted path: duplicates are collapsed up front and
  /// the incremental merges see sorted, cache-friendly input.
  void insert_batch(const Entry<K, V>* data, std::size_t n) {
    if (n == 0) return;
    std::vector<Entry<K, V>>& run = batch_scratch_;
    run.assign(data, data + n);
    sort_dedup_newest_wins(run, batch_sort_scratch_);
    for (const Entry<K, V>& e : run) put(e.key, e.value, false);
  }

  std::optional<V> find(const K& key) const {
    // Newest wins: scan levels from the smallest, and within a level check
    // the more recently filled array first.
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      const Level& lv = levels_[l];
      int order[2] = {0, 1};
      if (lv.state[1] == State::kFull &&
          (lv.state[0] != State::kFull || lv.seq[1] > lv.seq[0])) {
        order[0] = 1;
        order[1] = 0;
      }
      for (int oi = 0; oi < 2; ++oi) {
        const int a = order[oi];
        if (lv.state[a] != State::kFull) continue;
        const auto& arr = lv.arr[a];
        touch_binary_search(l, a, arr.size());
        const auto it =
            std::lower_bound(arr.begin(), arr.end(), key,
                             [](const Item& e, const K& k) { return e.key < k; });
        if (it != arr.end() && it->key == key) {
          if (it->tombstone) return std::nullopt;
          return it->value;
        }
      }
    }
    return std::nullopt;
  }

  /// Visit live entries in [lo, hi] ascending, newest value per key.
  template <class Fn>
  void range_for_each(const K& lo, const K& hi, Fn&& fn) const {
    if (hi < lo) return;
    struct Cursor {
      const std::vector<Item>* arr;
      std::size_t i;
      std::size_t level;
      std::uint64_t seq;
    };
    std::vector<Cursor> cs;
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      const Level& lv = levels_[l];
      for (int a = 0; a < 2; ++a) {
        if (lv.state[a] != State::kFull) continue;
        const auto& arr = lv.arr[a];
        const auto it = std::lower_bound(arr.begin(), arr.end(), lo,
                                         [](const Item& e, const K& k) { return e.key < k; });
        cs.push_back(Cursor{&arr, static_cast<std::size_t>(it - arr.begin()), l, lv.seq[a]});
      }
    }
    while (true) {
      std::size_t best = cs.size();
      for (std::size_t c = 0; c < cs.size(); ++c) {
        if (cs[c].i >= cs[c].arr->size()) continue;
        const K& k = (*cs[c].arr)[cs[c].i].key;
        if (hi < k) {
          cs[c].i = cs[c].arr->size();
          continue;
        }
        if (best == cs.size()) {
          best = c;
          continue;
        }
        const K& bk = (*cs[best].arr)[cs[best].i].key;
        // Newest-wins tiebreak: copies only travel toward deeper levels, so
        // the shallower level holds the newer copy; within a level the more
        // recently filled array does. (Global fill sequence alone is NOT a
        // freshness order: an old copy gets a fresh sequence each time a
        // merge rewrites the array holding it.)
        if (k < bk ||
            (k == bk && (cs[c].level < cs[best].level ||
                         (cs[c].level == cs[best].level && cs[c].seq > cs[best].seq)))) {
          best = c;
        }
      }
      if (best == cs.size()) return;
      const Item& item = (*cs[best].arr)[cs[best].i];
      const K k = item.key;
      if (!item.tombstone) fn(k, item.value);
      for (Cursor& c : cs) {
        while (c.i < c.arr->size() && (*c.arr)[c.i].key == k) ++c.i;
      }
    }
  }

  /// Lemma 21 under test: no two adjacent unsafe levels; unsafe levels have
  /// a consistent in-progress merge; arrays sorted with unique keys.
  void check_invariants() const {
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      const Level& lv = levels_[l];
      if (lv.unsafe && l + 1 < levels_.size() && levels_[l + 1].unsafe) {
        throw std::logic_error("deamortized cola: adjacent unsafe levels");
      }
      if (lv.unsafe) {
        if (lv.state[0] != State::kFull || lv.state[1] != State::kFull) {
          throw std::logic_error("deamortized cola: unsafe level without two full arrays");
        }
        if (l + 1 >= levels_.size()) {
          throw std::logic_error("deamortized cola: unsafe level without target level");
        }
        const Level& nxt = levels_[l + 1];
        if (nxt.state[lv.target_arr] != State::kFilling) {
          throw std::logic_error("deamortized cola: merge target not filling");
        }
      }
      for (int a = 0; a < 2; ++a) {
        if (lv.state[a] == State::kEmpty && !lv.arr[a].empty()) {
          throw std::logic_error("deamortized cola: nonempty empty array");
        }
        if (lv.arr[a].size() > (1ULL << l)) {
          throw std::logic_error("deamortized cola: array overfull");
        }
        for (std::size_t i = 1; i < lv.arr[a].size(); ++i) {
          if (!(lv.arr[a][i - 1].key < lv.arr[a][i].key)) {
            throw std::logic_error("deamortized cola: array unsorted");
          }
        }
      }
    }
  }

 private:
  struct Item {
    K key;
    V value;
    bool tombstone;
  };

  enum class State : std::uint8_t { kEmpty, kFull, kFilling };

  struct Level {
    std::vector<Item> arr[2];
    State state[2] = {State::kEmpty, State::kEmpty};
    std::uint64_t seq[2] = {0, 0};  // fill sequence; larger = newer
    std::uint64_t base[2] = {0, 0}; // logical offsets for DAM accounting
    // In-progress merge of THIS level's two arrays into the next level:
    bool unsafe = false;
    std::size_t pos_a = 0, pos_b = 0;  // cursors into arr[0] / arr[1]
    int target_arr = 0;                // which array of level l+1 receives
    bool drop_tombstones = false;      // decided when the merge starts
  };

  void ensure_level(std::size_t l) {
    while (levels_.size() <= l) {
      Level lv;
      const std::uint64_t cap = 1ULL << levels_.size();
      lv.base[0] = next_base_;
      next_base_ += cap * sizeof(Item);
      lv.base[1] = next_base_;
      next_base_ += cap * sizeof(Item);
      levels_.push_back(std::move(lv));
    }
  }

  void touch_binary_search(std::size_t l, int a, std::size_t n) const {
    // Account ~log2(n) probes of one Item each.
    std::size_t probes = 1;
    for (std::size_t m = n; m > 1; m >>= 1) ++probes;
    for (std::size_t i = 0; i < probes; ++i) {
      mm_.touch(levels_[l].base[a] + (n >> (i + 1)) * sizeof(Item), sizeof(Item));
    }
  }

  void put(const K& key, const V& value, bool tombstone) {
    ++stats_.inserts;
    ensure_level(0);
    Level& l0 = levels_[0];
    int slot = -1;
    for (int a = 0; a < 2; ++a) {
      if (l0.state[a] == State::kEmpty) {
        slot = a;
        break;
      }
    }
    // With budget m = 2k+2 >= 6, an unsafe level 0 always finishes its merge
    // within one insert (2 moves), so a free array must exist here.
    if (slot < 0) throw std::logic_error("deamortized cola: level 0 has no free array");
    l0.arr[slot].clear();
    l0.arr[slot].push_back(Item{key, value, tombstone});
    l0.state[slot] = State::kFull;
    l0.seq[slot] = ++seq_counter_;
    mm_.touch_write(l0.base[slot], sizeof(Item));
    maybe_start_merge(0);

    // Spend the move budget on unsafe levels, left to right.
    std::uint64_t budget = 2 * levels_.size() + 2;
    std::uint64_t moves = 0;
    for (std::size_t l = 0; l < levels_.size() && budget > 0; ++l) {
      if (!levels_[l].unsafe) continue;
      moves += advance_merge(l, &budget);
    }
    stats_.total_moves += moves;
    stats_.max_moves_per_insert = std::max(stats_.max_moves_per_insert, moves);
  }

  /// If level l now holds items in both arrays, begin merging them into an
  /// empty array of level l+1.
  void maybe_start_merge(std::size_t l) {
    if (levels_[l].unsafe) return;
    if (levels_[l].state[0] != State::kFull || levels_[l].state[1] != State::kFull) return;
    ensure_level(l + 1);  // may reallocate levels_: take references only after
    Level& lv = levels_[l];
    Level& nxt = levels_[l + 1];
    int tgt = -1;
    for (int a = 0; a < 2; ++a) {
      if (nxt.state[a] == State::kEmpty) {
        tgt = a;
        break;
      }
    }
    // Lemma 21: adjacent levels are never simultaneously unsafe, so an empty
    // target must exist.
    if (tgt < 0) throw std::logic_error("deamortized cola: no empty target array");
    lv.unsafe = true;
    lv.pos_a = lv.pos_b = 0;
    lv.target_arr = tgt;
    nxt.state[tgt] = State::kFilling;
    nxt.arr[tgt].clear();
    nxt.arr[tgt].reserve(lv.arr[0].size() + lv.arr[1].size());
    // Tombstones may be discarded iff nothing deeper can hold their key:
    // every level > l+1 empty and the sibling array at l+1 empty.
    bool deeper_data = false;
    for (std::size_t j = l + 1; j < levels_.size() && !deeper_data; ++j) {
      for (int a = 0; a < 2; ++a) {
        if (j == l + 1 && a == tgt) continue;
        if (levels_[j].state[a] != State::kEmpty) deeper_data = true;
      }
    }
    lv.drop_tombstones = !deeper_data;
    ++stats_.merges_started;
  }

  /// Move up to *budget items of level l's merge; decrements *budget by the
  /// moves performed and returns them. Completes the merge (and possibly
  /// cascades a new unsafe level) when the sources drain.
  std::uint64_t advance_merge(std::size_t l, std::uint64_t* budget) {
    Level& lv = levels_[l];
    Level& nxt = levels_[l + 1];
    auto& a = lv.arr[0];
    auto& b = lv.arr[1];
    auto& out = nxt.arr[lv.target_arr];
    // Which source is newer decides duplicate survival.
    const bool a_newer = lv.seq[0] > lv.seq[1];
    std::uint64_t moves = 0;

    while (*budget > 0 && (lv.pos_a < a.size() || lv.pos_b < b.size())) {
      Item item{};
      if (lv.pos_a < a.size() && lv.pos_b < b.size() &&
          a[lv.pos_a].key == b[lv.pos_b].key) {
        item = a_newer ? a[lv.pos_a] : b[lv.pos_b];
        ++lv.pos_a;
        ++lv.pos_b;
        mm_.touch(lv.base[0] + lv.pos_a * sizeof(Item), sizeof(Item));
        mm_.touch(lv.base[1] + lv.pos_b * sizeof(Item), sizeof(Item));
      } else if (lv.pos_b >= b.size() ||
                 (lv.pos_a < a.size() && a[lv.pos_a].key < b[lv.pos_b].key)) {
        item = a[lv.pos_a++];
        mm_.touch(lv.base[0] + lv.pos_a * sizeof(Item), sizeof(Item));
      } else {
        item = b[lv.pos_b++];
        mm_.touch(lv.base[1] + lv.pos_b * sizeof(Item), sizeof(Item));
      }
      if (!(item.tombstone && lv.drop_tombstones)) {
        out.push_back(item);
        mm_.touch_write(nxt.base[lv.target_arr] + out.size() * sizeof(Item), sizeof(Item));
      }
      --*budget;
      ++moves;
    }

    if (lv.pos_a >= a.size() && lv.pos_b >= b.size()) {
      // Merge complete: sources become empty, target becomes visible.
      a.clear();
      b.clear();
      lv.state[0] = lv.state[1] = State::kEmpty;
      lv.unsafe = false;
      nxt.state[lv.target_arr] = State::kFull;
      nxt.seq[lv.target_arr] = ++seq_counter_;
      ++stats_.merges_completed;
      maybe_start_merge(l + 1);
    }
    return moves;
  }

  std::vector<Level> levels_;
  std::uint64_t next_base_ = 0;
  std::uint64_t seq_counter_ = 0;
  std::vector<Entry<K, V>> batch_scratch_, batch_sort_scratch_;  // batch staging, reused
  DeamortizedStats stats_;
  mutable MM mm_;
};

}  // namespace costream::cola
