// Ablation: pointer density p (the fraction of each level spent on
// lookahead pointers; the paper fixes p = 0.1 for all experiments).
//
//   p = 0      basic COLA: no cascading, O(log^2 N) searches, zero overhead
//   p grows    search windows shrink toward O(1) per level; space and merge
//              overhead grow with p
#include <cmath>
#include <cstdio>

#include "bench/bench_common.hpp"
#include "cola/cola.hpp"
#include "common/rng.hpp"

namespace cb = costream::bench;
using namespace costream;

int main() {
  const BenchOptions opts = BenchOptions::from_env(1ULL << 19);
  // Avoid power-of-two N: it leaves the basic COLA with a single occupied
  // level (binary representation 100..0), which hides the cascading effect.
  const std::uint64_t n = opts.max_n - opts.max_n / 5 - 3;
  const std::uint64_t mem = cb::scaled_memory_bytes(n);
  const std::uint64_t searches = opts.fast ? 50 : 2'000;
  const KeyStream ks(KeyOrder::kRandom, n, opts.seed);
  std::printf("Pointer-density ablation, N=%llu (paper uses p=0.1)\n\n",
              static_cast<unsigned long long>(n));

  Table t({"p", "insert transfers/op", "search slots/op", "search transfers/op",
           "bytes/item"},
          22);
  for (const double p : {0.0, 0.05, 0.1, 0.25, 0.5}) {
    cola::Gcola<Key, Value, dam::dam_mem_model> c(cola::ColaConfig{2, p},
                                                  dam::dam_mem_model(4096, mem));
    Timer build;
    for (std::uint64_t i = 0; i < ks.size(); ++i) c.insert(ks.key_at(i), i);
    const double ins = static_cast<double>(c.mm().stats().transfers) /
                       static_cast<double>(ks.size());
    // Warm-cache slot probes (CPU-side search effort).
    c.mm().reset_stats();
    Xoshiro256 rng(3);
    for (std::uint64_t q = 0; q < searches; ++q) {
      (void)c.find(ks.key_at(rng.below(ks.size())));
    }
    const double slots = static_cast<double>(c.mm().stats().accesses) /
                         static_cast<double>(searches);
    // Cold-cache transfers.
    std::uint64_t cold_total = 0;
    const std::uint64_t cold_probes = opts.fast ? 20 : 100;
    for (std::uint64_t q = 0; q < cold_probes; ++q) {
      c.mm().clear_cache();
      c.mm().reset_stats();
      (void)c.find(ks.key_at(rng.below(ks.size())));
      cold_total += c.mm().stats().transfers;
    }
    const double bytes_per_item =
        static_cast<double>(c.bytes()) / static_cast<double>(c.item_count());
    char pa[16], a[32], b[32], cc[32], dd[32];
    std::snprintf(pa, sizeof pa, "%.2f", p);
    std::snprintf(a, sizeof a, "%.4f", ins);
    std::snprintf(b, sizeof b, "%.1f", slots);
    std::snprintf(cc, sizeof cc, "%.2f",
                  static_cast<double>(cold_total) / static_cast<double>(cold_probes));
    std::snprintf(dd, sizeof dd, "%.1f", bytes_per_item);
    t.add_row({pa, a, b, cc, dd});
  }
  t.print();
  std::printf("\nexpected shape: search slot probes drop steeply from p=0 to"
              " p=0.1 then flatten; insert cost and space grow mildly with p —"
              " the paper's p=0.1 sits at the knee.\n");
  return 0;
}
