// A miniature persistent key/value store on top of the COLA — demonstrates
// the snapshot/restore API and the write-optimized ingest path end to end.
//
//   build/examples/kv_store <dbfile> put <key> <value>
//   build/examples/kv_store <dbfile> get <key>
//   build/examples/kv_store <dbfile> del <key>
//   build/examples/kv_store <dbfile> range <lo> <hi>
//   build/examples/kv_store <dbfile> fill <n>        # bulk synthetic load
//   build/examples/kv_store <dbfile> stats
//
// The store loads a checksummed snapshot on start and writes one back after
// mutations. (A production system would keep a write-ahead log between
// snapshots; the snapshot format is the point being demonstrated here.)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "api/serialize.hpp"
#include "cola/cola.hpp"
#include "common/rng.hpp"

using namespace costream;

namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

int usage() {
  std::fprintf(stderr,
               "usage: kv_store <dbfile> put <key> <value> | get <key> | del <key>"
               " | range <lo> <hi> | fill <n> | stats\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string dbfile = argv[1];
  const std::string cmd = argv[2];

  cola::Gcola<> db(cola::ColaConfig{4, 0.1});
  const auto existing = read_file(dbfile);
  if (!existing.empty()) {
    try {
      api::restore(db, existing);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s is not a valid snapshot (%s)\n",
                   dbfile.c_str(), e.what());
      return 1;
    }
  }

  bool mutated = false;
  if (cmd == "put" && argc == 5) {
    db.insert(std::strtoull(argv[3], nullptr, 0), std::strtoull(argv[4], nullptr, 0));
    mutated = true;
  } else if (cmd == "get" && argc == 4) {
    const auto v = db.find(std::strtoull(argv[3], nullptr, 0));
    if (v) {
      std::printf("%llu\n", static_cast<unsigned long long>(*v));
    } else {
      std::printf("(nil)\n");
    }
  } else if (cmd == "del" && argc == 4) {
    db.erase(std::strtoull(argv[3], nullptr, 0));
    mutated = true;
  } else if (cmd == "range" && argc == 5) {
    db.range_for_each(std::strtoull(argv[3], nullptr, 0),
                      std::strtoull(argv[4], nullptr, 0), [](Key k, Value v) {
                        std::printf("%llu -> %llu\n",
                                    static_cast<unsigned long long>(k),
                                    static_cast<unsigned long long>(v));
                      });
  } else if (cmd == "fill" && argc == 4) {
    // Bulk loads go through the batch path: one cascaded merge per chunk
    // instead of a cascade per key (see the batch contract in
    // api/dictionary.hpp).
    const std::uint64_t n = std::strtoull(argv[3], nullptr, 0);
    std::vector<Entry<>> chunk;
    chunk.reserve(4096);
    for (std::uint64_t i = 0; i < n;) {
      chunk.clear();
      for (; i < n && chunk.size() < 4096; ++i) chunk.push_back(Entry<>{mix64(i), i});
      db.insert_batch(chunk);
    }
    std::printf("inserted %llu synthetic entries in batches of 4096\n",
                static_cast<unsigned long long>(n));
    mutated = true;
  } else if (cmd == "stats" && argc == 3) {
    std::printf("items: %llu (incl. pending tombstones)\nlevels: %zu\n"
                "merges: %llu (prepend fast path: %llu)\nslot bytes: %llu\n",
                static_cast<unsigned long long>(db.item_count()), db.level_count(),
                static_cast<unsigned long long>(db.stats().merges),
                static_cast<unsigned long long>(db.stats().prepend_merges),
                static_cast<unsigned long long>(db.bytes()));
  } else {
    return usage();
  }

  if (mutated) {
    write_file(dbfile, api::snapshot(db));
  }
  return 0;
}
