// Range-query bench — the paper's introduction claims:
//
//   "For disk-based storage systems, range queries are likely to be faster
//    for a lookahead array than for a BRT because the data is stored
//    contiguously in arrays, taking advantage of inter-block locality,
//    rather than stored scattered on blocks across disk. This is the same
//    reason why the cache-oblivious B-tree can support range queries nearly
//    an order of magnitude faster than a traditional B-tree."
//
// We measure modeled disk time for range scans of L = 2^4..2^16 elements on
// the COLA (contiguous levels), the BRT (scattered nodes + buffers), the
// B-tree (leaf chain; nodes allocated in insert order, so a range hops
// across the disk after random inserts), and the CO B-tree (PMA: fully
// contiguous). Structures are built from random inserts — the layout that
// scatters B-tree leaves.
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "brt/brt.hpp"
#include "btree/btree.hpp"
#include "cob/cob_tree.hpp"
#include "cola/cola.hpp"
#include "common/rng.hpp"

namespace cb = costream::bench;
using namespace costream;

namespace {

constexpr std::uint64_t kBlock = 4096;

template <class D>
std::vector<double> measure_ranges(D& d, dam::dam_mem_model& mm, std::uint64_t n,
                                   const std::vector<std::uint64_t>& lengths,
                                   std::uint64_t probes) {
  std::vector<double> seconds_per_query;
  Xoshiro256 rng(3);
  for (const std::uint64_t len : lengths) {
    mm.clear_cache();
    mm.reset_stats();
    std::uint64_t emitted = 0;
    for (std::uint64_t q = 0; q < probes; ++q) {
      // Dense key space [0, n): a window of `len` keys returns ~len entries.
      const Key lo = rng.below(n > len ? n - len : 1);
      d.range_for_each(lo, lo + len - 1, [&](Key, Value) { ++emitted; });
    }
    seconds_per_query.push_back(mm.modeled_seconds() / static_cast<double>(probes));
  }
  return seconds_per_query;
}

}  // namespace

int main() {
  const BenchOptions opts = BenchOptions::from_env(1ULL << 19);
  const std::uint64_t n = opts.max_n;
  const std::uint64_t mem = cb::scaled_memory_bytes(n);
  const std::uint64_t probes = opts.fast ? 4 : 32;
  const std::vector<std::uint64_t> lengths{16, 256, 4'096, 65'536};
  std::printf("Range queries of L elements after random inserts, N=%llu, M=%s\n\n",
              static_cast<unsigned long long>(n),
              format_bytes(static_cast<double>(mem)).c_str());

  // Random *insertion order* over a dense key space.
  std::vector<std::uint64_t> keys(n);
  for (std::uint64_t i = 0; i < n; ++i) keys[i] = i;
  Xoshiro256 shuffle_rng(opts.seed);
  for (std::uint64_t i = n; i > 1; --i) {
    std::swap(keys[i - 1], keys[shuffle_rng.below(i)]);
  }

  std::vector<std::pair<std::string, std::vector<double>>> rows;
  {
    cola::Gcola<Key, Value, dam::dam_mem_model> d(cola::ColaConfig{4, 0.1},
                                                  dam::dam_mem_model(kBlock, mem));
    for (std::uint64_t i = 0; i < n; ++i) d.insert(keys[i], i);
    rows.emplace_back("4-COLA", measure_ranges(d, d.mm(), n, lengths, probes));
  }
  {
    brt::Brt<Key, Value, dam::dam_mem_model> d(kBlock, 4,
                                               dam::dam_mem_model(kBlock, mem));
    for (std::uint64_t i = 0; i < n; ++i) d.insert(keys[i], i);
    rows.emplace_back("BRT", measure_ranges(d, d.mm(), n, lengths, probes));
  }
  {
    btree::BTree<Key, Value, dam::dam_mem_model> d(kBlock,
                                                   dam::dam_mem_model(kBlock, mem));
    for (std::uint64_t i = 0; i < n; ++i) d.insert(keys[i], i);
    rows.emplace_back("B-tree", measure_ranges(d, d.mm(), n, lengths, probes));
  }
  {
    cob::CobTree<Key, Value, dam::dam_mem_model> d{dam::dam_mem_model(kBlock, mem)};
    for (std::uint64_t i = 0; i < n; ++i) d.insert(keys[i], i);
    rows.emplace_back("CO B-tree", measure_ranges(d, d.mm(), n, lengths, probes));
  }

  std::vector<std::string> headers{"L"};
  for (const auto& [name, _] : rows) headers.push_back(name + " (ms/query)");
  Table t(std::move(headers), 22);
  for (std::size_t r = 0; r < lengths.size(); ++r) {
    std::vector<std::string> row{std::to_string(lengths[r])};
    for (const auto& [name, vals] : rows) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f", vals[r] * 1e3);
      row.emplace_back(buf);
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("\nexpected shape: at large L the contiguous structures (COLA,"
              " CO B-tree) stream the range while the B-tree and BRT hop"
              " between scattered blocks — the paper's inter-block locality"
              " argument.\n");
  return 0;
}
