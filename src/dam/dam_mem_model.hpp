// The DAM-model instrumentation backend: an LRU cache of M bytes over B-byte
// blocks on a structure's logical address space, plus a disk-time model that
// distinguishes sequential from random transfers.
//
// The disk-time model reproduces the economics of the paper's testbed
// (software RAID-0 of two 2007-era SATA drives, 120 MiB/s raw bandwidth):
//   random transfer      costs seek + B/bandwidth
//   sequential transfer  costs B/bandwidth          (block id follows the
//                                                    previous miss)
// Writes dirty their block; evicting (or flushing) a dirty block is a
// writeback — also a transfer. Without writeback accounting a structure
// that writes each block exactly once (a B-tree filling leaves in sorted
// order) would look free, which is not how the paper's memory-mapped
// structures behaved.
//
// This asymmetry is what makes the COLA-vs-B-tree gap visible: out-of-core
// B-tree inserts pay ~1 random transfer each, while COLA merges stream at
// full bandwidth. Figures 2-4 are regenerated from these modeled times.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "dam/mem_model.hpp"

namespace costream::dam {

struct DiskParams {
  double seek_seconds = 0.008;                    // 2007 SATA average seek
  double bandwidth_bytes_per_second = 120.0 * (1 << 20);  // paper: 120 MiB/s
  // Concurrent sequential streams the I/O path can keep cheap (OS readahead
  // + the disk elevator coalescing writebacks). A COLA merge reads several
  // level-sized runs while writing another; the paper notes that exactly
  // this prefetching "significantly helps COLAs".
  int sequential_streams = 8;
};

struct DamStats {
  std::uint64_t accesses = 0;              // touch() calls
  std::uint64_t blocks_touched = 0;        // block-granular probes
  std::uint64_t transfers = 0;             // misses + writebacks
  std::uint64_t sequential_transfers = 0;  // transfer follows the previous one
  std::uint64_t random_transfers = 0;      // all other transfers
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;            // dirty blocks written out

  /// Disk-bound time this access trace would take on the modeled disk.
  double modeled_seconds(std::uint64_t block_bytes, const DiskParams& disk) const {
    const double transfer_s =
        static_cast<double>(block_bytes) / disk.bandwidth_bytes_per_second;
    return static_cast<double>(random_transfers) * disk.seek_seconds +
           static_cast<double>(transfers) * transfer_s;
  }
};

/// LRU block cache + transfer accounting. Not thread-safe (each benchmarked
/// structure owns its own model, as each run in the paper owned the machine).
class dam_mem_model {
 public:
  static constexpr bool kCounting = true;

  /// `block_bytes` is B, `mem_bytes` is M. M is rounded down to a whole
  /// number of blocks, minimum one block.
  dam_mem_model(std::uint64_t block_bytes, std::uint64_t mem_bytes,
                DiskParams disk = DiskParams{});

  void touch(std::uint64_t offset, std::uint64_t len) {
    access(offset, len, /*write=*/false);
  }
  void touch_write(std::uint64_t offset, std::uint64_t len) {
    access(offset, len, /*write=*/true);
  }

  const DamStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = DamStats{}; }

  /// Write out all dirty blocks and drop the cache — the equivalent of the
  /// paper's "we remounted the RAID array's file system before every test to
  /// clear the file cache". The flush's writebacks are charged to the
  /// current stats; reset_stats() afterwards if the next phase should start
  /// from zero.
  void clear_cache();

  std::uint64_t block_bytes() const noexcept { return block_bytes_; }
  std::uint64_t mem_bytes() const noexcept { return capacity_blocks_ * block_bytes_; }
  std::uint64_t cached_blocks() const noexcept { return lru_.size(); }
  const DiskParams& disk() const noexcept { return disk_; }

  double modeled_seconds() const { return stats_.modeled_seconds(block_bytes_, disk_); }

 private:
  struct CacheEntry {
    std::uint64_t block;
    bool dirty;
  };

  void access(std::uint64_t offset, std::uint64_t len, bool write);
  void fault(std::uint64_t block, bool write);
  void count_transfer(std::uint64_t block);
  void write_back(std::uint64_t block);

  std::uint64_t block_bytes_;
  std::uint64_t capacity_blocks_;
  DiskParams disk_;
  DamStats stats_;

  // LRU: most-recently-used at the front.
  std::list<CacheEntry> lru_;
  std::unordered_map<std::uint64_t, std::list<CacheEntry>::iterator> index_;
  // Tails of the most recent sequential streams (see
  // DiskParams::sequential_streams); round-robin replacement on miss.
  std::vector<std::uint64_t> stream_tails_;
  std::size_t stream_victim_ = 0;
};

static_assert(MemModel<dam_mem_model>);

}  // namespace costream::dam
