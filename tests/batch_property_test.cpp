// Differential property test for the batch ingestion path: every structure
// is driven through the same interleaved trace of insert_batch / insert /
// erase / find / range_for_each operations and compared against a std::map
// model with the library's semantics. Batches deliberately contain internal
// duplicate keys (last occurrence must win) and keys that were previously
// erased (tombstoned), and structural invariants are checked after every
// batch — the batch contract of api/dictionary.hpp under adversarial input.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "api/dictionary.hpp"
#include "brt/brt.hpp"
#include "btree/btree.hpp"
#include "cob/cob_tree.hpp"
#include "cola/cola.hpp"
#include "cola/deamortized_cola.hpp"
#include "cola/deamortized_fc_cola.hpp"
#include "common/entry.hpp"
#include "common/rng.hpp"
#include "model_helpers.hpp"
#include "pma/pma.hpp"
#include "shuttle/shuttle_tree.hpp"
#include "shuttle/swbst.hpp"

namespace costream {
namespace {

using testing::RefDict;
using testing::collect_range;

/// A bounded key universe so duplicates, overwrites, re-inserts of erased
/// keys, and range hits all occur with high probability.
constexpr std::uint64_t kUniverse = 1024;

template <class D, class Checker>
void run_batch_trace(D& dict, Checker&& check, std::uint64_t seed,
                     std::size_t rounds = 600) {
  RefDict ref;
  Xoshiro256 rng(seed);
  std::vector<Key> erased_pool;  // recently tombstoned keys, fed back into batches
  std::uint64_t stamp = 1;       // unique values so newest-wins mismatches surface

  for (std::size_t r = 0; r < rounds; ++r) {
    const std::uint64_t roll = rng.below(100);
    if (roll < 40) {
      // Batch insert: unsorted, with internal duplicates and (when
      // available) previously erased keys.
      const std::size_t len = 1 + rng.below(64);
      std::vector<Entry<>> batch;
      batch.reserve(len);
      for (std::size_t i = 0; i < len; ++i) {
        Key k;
        if (!erased_pool.empty() && rng.below(4) == 0) {
          k = erased_pool[rng.below(erased_pool.size())];  // tombstoned key
        } else if (i > 0 && rng.below(4) == 0) {
          k = batch[rng.below(i)].key;  // internal duplicate
        } else {
          k = rng.below(kUniverse);
        }
        batch.push_back(Entry<>{k, stamp++});
      }
      dict.insert_batch(batch);
      for (const Entry<>& e : batch) ref.insert(e.key, e.value);
      ASSERT_NO_THROW(check()) << "after batch, round " << r;
    } else if (roll < 60) {
      const Key k = rng.below(kUniverse);
      dict.insert(k, stamp);
      ref.insert(k, stamp);
      ++stamp;
    } else if (roll < 75) {
      const Key k = rng.below(kUniverse);
      dict.erase(k);
      ref.erase(k);
      erased_pool.push_back(k);
      if (erased_pool.size() > 64) erased_pool.erase(erased_pool.begin());
    } else if (roll < 90) {
      const Key k = rng.below(kUniverse);
      const auto got = dict.find(k);
      const auto want = ref.find(k);
      ASSERT_EQ(got.has_value(), want.has_value()) << "round " << r << " key " << k;
      if (want) {
        ASSERT_EQ(*got, *want) << "round " << r << " key " << k;
      }
    } else {
      const Key lo = rng.below(kUniverse);
      const Key hi = lo + rng.below(kUniverse / 4);
      const auto got = collect_range(dict, lo, hi);
      const auto want = ref.range(lo, hi);
      ASSERT_EQ(got.size(), want.size()) << "round " << r;
      for (std::size_t j = 0; j < got.size(); ++j) {
        ASSERT_EQ(got[j].key, want[j].key) << "round " << r << " pos " << j;
        ASSERT_EQ(got[j].value, want[j].value) << "round " << r << " pos " << j;
      }
    }
  }

  // Final verification: invariants plus point lookups over the whole model.
  ASSERT_NO_THROW(check());
  for (const auto& [k, v] : ref.map()) {
    const auto got = dict.find(k);
    ASSERT_TRUE(got.has_value()) << "final key " << k;
    ASSERT_EQ(*got, v) << "final key " << k;
  }
}

TEST(BatchDifferential, Cola) {
  cola::Gcola<> d;
  run_batch_trace(d, [&] { d.check_invariants(); }, /*seed=*/1);
}

TEST(BatchDifferential, BasicColaGrowth4) {
  cola::Gcola<> d(cola::ColaConfig{4, 0.0});
  run_batch_trace(d, [&] { d.check_invariants(); }, /*seed=*/2);
}

TEST(BatchDifferential, LookaheadArrayGrowth8) {
  cola::Gcola<> d(cola::ColaConfig{8, 0.2});
  run_batch_trace(d, [&] { d.check_invariants(); }, /*seed=*/3);
}

TEST(BatchDifferential, DeamortizedCola) {
  cola::DeamortizedCola<> d;
  run_batch_trace(d, [&] { d.check_invariants(); }, /*seed=*/4);
}

TEST(BatchDifferential, DeamortizedFcCola) {
  cola::DeamortizedFcCola<> d;
  run_batch_trace(d, [&] { d.check_invariants(); }, /*seed=*/5);
}

TEST(BatchDifferential, BTree) {
  btree::BTree<> d(512);
  run_batch_trace(d, [&] { d.check_invariants(); }, /*seed=*/6);
}

TEST(BatchDifferential, Brt) {
  brt::Brt<> d(256);
  run_batch_trace(d, [&] { d.check_invariants(); }, /*seed=*/7);
}

TEST(BatchDifferential, CobTree) {
  cob::CobTree<> d;
  run_batch_trace(d, [&] { d.check_invariants(); }, /*seed=*/8);
}

TEST(BatchDifferential, ShuttleTree) {
  shuttle::ShuttleTree<> d;
  run_batch_trace(d, [&] { d.check_invariants(); }, /*seed=*/9);
}

TEST(BatchDifferential, ShuttleTreeSmallFanout) {
  shuttle::ShuttleTree<> d(shuttle::ShuttleConfig{2, 2, true, 1ULL << 22});
  run_batch_trace(d, [&] { d.check_invariants(); }, /*seed=*/10);
}

TEST(BatchDifferential, Swbst) {
  shuttle::Swbst<> d;
  run_batch_trace(d, [&] { d.check_invariants(); }, /*seed=*/11);
}

// Focused corner cases that random traces may not pin down precisely.

TEST(BatchContract, EmptyBatchIsNoop) {
  cola::Gcola<> d;
  d.insert(1, 10);
  d.insert_batch(costream::Span<costream::Entry<>>(nullptr, 0));
  d.check_invariants();
  EXPECT_EQ(d.find(1).value(), 10u);
}

TEST(BatchContract, LastDuplicateWinsWithinBatch) {
  std::vector<Entry<>> batch;
  for (std::uint64_t i = 0; i < 100; ++i) batch.push_back(Entry<>{7, i});
  cola::Gcola<> c;
  c.insert_batch(batch);
  EXPECT_EQ(c.find(7).value(), 99u);
  shuttle::ShuttleTree<> s;
  s.insert_batch(batch);
  EXPECT_EQ(s.find(7).value(), 99u);
  brt::Brt<> b;
  b.insert_batch(batch);
  EXPECT_EQ(b.find(7).value(), 99u);
}

TEST(BatchContract, BatchIsNewerThanExistingContents) {
  cola::Gcola<> d;
  for (std::uint64_t k = 0; k < 256; ++k) d.insert(k, 1);
  std::vector<Entry<>> batch;
  for (std::uint64_t k = 0; k < 256; k += 2) batch.push_back(Entry<>{k, 2});
  d.insert_batch(batch);
  d.check_invariants();
  for (std::uint64_t k = 0; k < 256; ++k) {
    EXPECT_EQ(d.find(k).value(), k % 2 == 0 ? 2u : 1u) << k;
  }
}

TEST(BatchContract, BatchResurrectsTombstonedKeys) {
  cola::Gcola<> d;
  for (std::uint64_t k = 0; k < 64; ++k) d.insert(k, 1);
  for (std::uint64_t k = 0; k < 64; ++k) d.erase(k);
  std::vector<Entry<>> batch;
  for (std::uint64_t k = 0; k < 64; ++k) batch.push_back(Entry<>{k, 9});
  d.insert_batch(batch);
  d.check_invariants();
  for (std::uint64_t k = 0; k < 64; ++k) {
    ASSERT_TRUE(d.find(k).has_value()) << k;
    EXPECT_EQ(d.find(k).value(), 9u) << k;
  }
}

TEST(BatchContract, LargeBatchIntoEmptyCola) {
  // A batch far larger than the shallow levels lands in one deep level via a
  // single cascade (one batch merge, not n of them).
  cola::Gcola<> d;
  std::vector<Entry<>> batch;
  for (std::uint64_t i = 0; i < 10'000; ++i) batch.push_back(Entry<>{mix64(i), i});
  d.insert_batch(batch);
  d.check_invariants();
  EXPECT_EQ(d.stats().batch_merges, 1u);
  EXPECT_EQ(d.stats().merges, 1u);
  for (std::uint64_t i = 0; i < 10'000; i += 97) {
    EXPECT_EQ(d.find(mix64(i)).value(), i);
  }
}

TEST(BatchContract, MixedBatchAndSingleOpsKeepColaGeometry) {
  // Alternating batch and single-op cascades must preserve the level
  // occupancy invariants (the occupancy-aware fills accounting).
  cola::Gcola<> d;
  std::uint64_t s = 42;
  for (std::uint64_t round = 0; round < 200; ++round) {
    std::vector<Entry<>> batch;
    const std::size_t len = 1 + (splitmix64(s) % 50);
    for (std::size_t i = 0; i < len; ++i) batch.push_back(Entry<>{splitmix64(s) % 4096, round});
    d.insert_batch(batch);
    for (int j = 0; j < 5; ++j) d.insert(splitmix64(s) % 4096, round);
    d.check_invariants();
  }
}

TEST(BatchContract, AnyDictionaryForwardsBatches) {
  std::vector<api::AnyDictionary> dicts;
  dicts.emplace_back("cola", cola::Gcola<>{});
  dicts.emplace_back("btree", btree::BTree<>{});
  dicts.emplace_back("brt", brt::Brt<>{});
  dicts.emplace_back("cob", cob::CobTree<>{});
  dicts.emplace_back("shuttle", shuttle::ShuttleTree<>{});
  dicts.emplace_back("deam", cola::DeamortizedCola<>{});
  dicts.emplace_back("fc-deam", cola::DeamortizedFcCola<>{});
  std::vector<Entry<>> batch;
  for (std::uint64_t i = 0; i < 500; ++i) batch.push_back(Entry<>{i % 100, i});
  for (auto& d : dicts) {
    d.insert_batch(batch);
    for (std::uint64_t k = 0; k < 100; ++k) {
      ASSERT_TRUE(d.find(k).has_value()) << d.name() << " key " << k;
      EXPECT_EQ(d.find(k).value(), 400 + k) << d.name();
    }
  }
}

TEST(BatchContract, PmaSortedRunBatch) {
  pma::Pma<Entry<>> p;
  std::vector<Entry<>> run;
  for (std::uint64_t i = 0; i < 500; ++i) run.push_back(Entry<>{i * 2, i});
  p.insert_batch_after(pma::Pma<Entry<>>::npos, run.data(), run.size());
  p.check_invariants();
  EXPECT_EQ(p.size(), 500u);
  // Order preserved: walk the slots and compare.
  std::uint64_t expect = 0;
  for (auto s = p.first(); s != pma::Pma<Entry<>>::npos; s = p.next(s)) {
    EXPECT_EQ(p.at(s).key, expect * 2);
    ++expect;
  }
}

}  // namespace
}  // namespace costream
