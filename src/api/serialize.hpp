// Dictionary serialization: a compact snapshot format usable by every
// structure that offers `for_each` (dump) and `bulk_load` (restore).
//
// Format (little-endian):
//   magic    u64  'COSTRM02'
//   count    u64
//   entries  count x { key u64, value u64 }
//   checksum u64  (CRC32C of header + entries, in the low 32 bits)
//
// The checksum is the library-wide CRC32C (common/crc32c.hpp — the same
// polynomial guarding WAL records and segment blocks), computed over
// everything before the checksum field, so a flipped bit anywhere in the
// buffer — header, count, keys, values — fails restore() with a typed
// CorruptionError. The magic bumped 01 -> 02 with the checksum change:
// old xor-fold snapshots are rejected up front as bad magic rather than
// failing checksum validation with a misleading error.
//
// Snapshots are logical: tombstones and level/node structure are compacted
// away on save, so loading yields an equivalent dictionary in its densest
// form (for a COLA: one full level, the same state a full merge would
// reach). Cross-structure restore is supported — a B-tree snapshot can be
// loaded into a COLA and vice versa.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/crc32c.hpp"
#include "common/entry.hpp"
#include "common/error.hpp"

namespace costream::api {

inline constexpr std::uint64_t kSnapshotMagic = 0x434f5354524d3032ULL;  // "COSTRM02"

namespace detail {

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace detail

/// Snapshot the live contents of `dict` (ascending key order).
template <class D>
std::vector<std::uint8_t> snapshot(const D& dict) {
  std::vector<std::uint8_t> out;
  detail::put_u64(out, kSnapshotMagic);
  detail::put_u64(out, 0);  // count patched below
  std::uint64_t count = 0;
  dict.for_each([&](Key k, Value v) {
    detail::put_u64(out, k);
    detail::put_u64(out, v);
    ++count;
  });
  // Patch the count in place.
  for (int i = 0; i < 8; ++i) out[8 + i] = static_cast<std::uint8_t>(count >> (8 * i));
  detail::put_u64(out, crc32c(out.data(), out.size()));
  return out;
}

/// Restore a snapshot into `dict` via bulk_load, replacing its contents.
/// Throws CorruptionError on malformed, truncated, or bit-flipped input —
/// every byte of the buffer is covered by the CRC, so corruption anywhere
/// is a typed error, never UB.
template <class D>
void restore(D& dict, const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 24) throw CorruptionError("snapshot: truncated header");
  if (detail::get_u64(bytes.data()) != kSnapshotMagic) {
    throw CorruptionError("snapshot: bad magic");
  }
  const std::uint64_t count = detail::get_u64(bytes.data() + 8);
  // Overflow-safe size check: reject counts the buffer cannot possibly hold
  // before computing count * 16.
  if (count > (bytes.size() - 24) / 16) {
    throw CorruptionError("snapshot: size mismatch");
  }
  const std::uint64_t expect_size = 16 + count * 16 + 8;
  if (bytes.size() != expect_size) throw CorruptionError("snapshot: size mismatch");
  const std::uint64_t stored = detail::get_u64(bytes.data() + 16 + count * 16);
  if (crc32c(bytes.data(), bytes.size() - 8) != stored) {
    throw CorruptionError("snapshot: checksum mismatch");
  }

  std::vector<Entry<>> entries;
  entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t k = detail::get_u64(bytes.data() + 16 + i * 16);
    const std::uint64_t v = detail::get_u64(bytes.data() + 16 + i * 16 + 8);
    if (i > 0 && !(entries.back().key < k)) {
      throw CorruptionError("snapshot: keys not strictly ascending");
    }
    entries.push_back(Entry<>{k, v});
  }
  dict.bulk_load(entries);
}

}  // namespace costream::api
