// PMA bench: amortized element moves per insert as N grows — the
// O(log^2 N) bound the shuttle tree's layout maintenance (Lemma 10 / the
// PMA citation [6]) relies on — plus rebalance/resize counts and transfer
// behavior for sequential vs random insertion patterns.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.hpp"
#include "common/entry.hpp"
#include "common/rng.hpp"
#include "pma/pma.hpp"

namespace cb = costream::bench;
using namespace costream;

namespace {

struct Probe {
  std::uint64_t n;
  double moves_per_insert;
  double log2n_sq;
  std::uint64_t rebalances;
  std::uint64_t resizes;
};

}  // namespace

int main() {
  const BenchOptions opts = BenchOptions::from_env(1ULL << 19);
  std::printf("PMA: amortized moves/insert vs N (bound: O(log^2 N))\n\n");

  // Appends (rank order): the classic PMA stress.
  std::vector<Probe> probes;
  {
    pma::Pma<Entry<>> p;
    auto s = p.insert_after(pma::Pma<Entry<>>::npos, Entry<>{0, 0});
    std::uint64_t next_mark = 1024;
    for (std::uint64_t i = 1; i < opts.max_n; ++i) {
      s = p.insert_after(s, Entry<>{i, i});
      if (i + 1 == next_mark) {
        const double l = std::log2(static_cast<double>(i + 1));
        probes.push_back(Probe{i + 1,
                               static_cast<double>(p.stats().element_moves) /
                                   static_cast<double>(i + 1),
                               l * l, p.stats().rebalances, p.stats().resizes});
        next_mark *= 2;
      }
    }
  }
  Table t({"N", "moves/insert", "log2(N)^2", "rebalances", "resizes"}, 16);
  for (const Probe& pr : probes) {
    char a[32], b[32];
    std::snprintf(a, sizeof a, "%.2f", pr.moves_per_insert);
    std::snprintf(b, sizeof b, "%.1f", pr.log2n_sq);
    t.add_row({pow2_label(pr.n), a, b, std::to_string(pr.rebalances),
               std::to_string(pr.resizes)});
  }
  t.print();

  // Random-position inserts: cheaper than the worst case (inserts spread out).
  {
    pma::Pma<Entry<>> p;
    Xoshiro256 rng(opts.seed);
    p.insert_after(pma::Pma<Entry<>>::npos, Entry<>{0, 0});
    const std::uint64_t n = opts.max_n / 4;
    for (std::uint64_t i = 1; i < n; ++i) {
      const auto slot = p.slot_of_rank(rng.below(p.size()));
      p.insert_after(slot, Entry<>{rng(), i});
    }
    std::printf("\nrandom-position inserts (N=%llu): %.2f moves/insert\n",
                static_cast<unsigned long long>(n),
                static_cast<double>(p.stats().element_moves) / static_cast<double>(n));
  }

  // Transfer accounting for the append pattern.
  {
    pma::Pma<Entry<>, dam::dam_mem_model> p{dam::dam_mem_model(4096, 1 << 22)};
    auto s = p.insert_after(pma::Pma<Entry<>, dam::dam_mem_model>::npos, Entry<>{0, 0});
    for (std::uint64_t i = 1; i < opts.max_n; ++i) s = p.insert_after(s, Entry<>{i, i});
    std::printf("append transfers/insert: %.4f (amortized O((log^2 N)/B))\n",
                static_cast<double>(p.mm().stats().transfers) /
                    static_cast<double>(opts.max_n));
  }
  return 0;
}
