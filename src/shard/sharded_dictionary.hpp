// Sharded concurrent ingest: S single-writer dictionaries behind one
// Dictionary facade.
//
// The paper's amortized O((log N)/B) update bound is per-structure; this
// layer adds the orthogonal axis — parallelism across cores — without
// touching any structure's internals. The keyspace is RANGE-PARTITIONED by
// S-1 splitter keys (fixed-width key-prefix defaults, or quantiles learned
// from the first batch — see "Splitters" below); each shard is an
// independent dictionary (any of the seven structures, or a type-erased
// AnyDictionary) owned by exactly one worker thread. The facade's caller
// scatters normalized batches into per-shard runs and hands each run to its
// shard's worker over a bounded SPSC ring (shard/spsc_queue.hpp); the worker
// is the ONLY thread that ever mutates its shard, so no structure needs a
// single lock — the paper's single-writer amortized analysis holds verbatim
// per shard at N/S scale (dam/bounds.hpp::sharded_insert_transfer_bound).
//
// Semantics (identical to the unsharded Dictionary contract):
//   * A key lives in exactly one shard, so per-key operation order is the
//     facade's submission order: runs enter a shard's ring FIFO and the
//     single worker applies them FIFO. Newest-wins and put-vs-erase
//     shadowing inside a batch are resolved by the facade's normalization
//     pass before the scatter, exactly like every structure's own batch
//     path.
//   * find() is drain-barrier consistent: it waits for its one target
//     shard's queue to empty (other shards keep ingesting) and probes the
//     shard structure directly — the completed-jobs counter carries the
//     release/acquire edge, so no reader ever observes a half-applied run.
//   * Ordered reads are SNAPSHOT consistent: snapshot() drains all shards
//     once, pins each shard's own snapshot, and fuses them by segment-
//     reference concatenation (common/cursor_fusion.hpp::fuse_snapshots —
//     shards are key-disjoint, so concatenation preserves newest-first
//     priority). Cursors, range scans, and merge joins read that frozen,
//     ref-counted view; the snapshot handle itself is free-threaded.
//   * The facade itself is single-caller (one external thread drives it,
//     like every other structure here); the concurrency is INTERNAL. The
//     worker threads are the paper's "stream" of deferred work made
//     physical.
//
// Cursors: a sharded cursor seeks against the facade's current snapshot
// and then STAYS VALID across arbitrary mutations — the segments it reads
// are pinned by refcount, so a fold retiring them from a live shard cannot
// pull them out from under the scan (contract in api/dictionary.hpp). This
// replaces the old epoch-invalidation protocol, which carried a real race:
// a seek stamped the facade epoch, then read live shard structures, and a
// mutation landing between the stamp and the read could fold a level the
// fused cursor was standing on. With snapshot pinning there is no window —
// the seek reads only immutable data it co-owns.
//
// Splitters: partition boundaries are fixed for the life of the structure
// (a key must map to the same shard forever). Three sources, first match
// wins:
//   1. explicit `ShardedConfig::splitters` (S-1 ascending keys);
//   2. learned from the FIRST mutation when it is a batch of at least
//      `learn_sample_min` operations: the normalized (sorted, deduplicated)
//      run's S-quantiles — one pass, no extra sort;
//   3. fixed-width key-prefix defaults: the unsigned key space divided into
//      S equal ranges (the top log2(S) bits of the key select the shard).
#pragma once

#include <algorithm>
#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>
#include <optional>
#include <semaphore>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/cursor_fusion.hpp"
#include "common/entry.hpp"
#include "common/snapshot.hpp"
#include "common/span.hpp"
#include "shard/spsc_queue.hpp"

namespace costream::shard {

template <class K = Key>
struct ShardedConfig {
  std::size_t shards = 2;          // S >= 1; 1 = a single-worker baseline
  std::size_t queue_slots = 8;     // per-shard in-flight runs (ring capacity)
  std::size_t learn_sample_min = 64;  // min first-batch size to learn splitters
  std::vector<K> splitters;        // explicit boundaries (size shards - 1);
                                   // empty = learn from sample / defaults
};

struct ShardedStats {
  std::uint64_t jobs = 0;      // runs handed to workers
  std::uint64_t batches = 0;   // facade-level batch calls
  std::uint64_t singles = 0;   // facade-level single-op calls
  std::uint64_t drains = 0;    // read barriers (whole-facade or one-shard)
  std::uint64_t learned_splitters = 0;  // 1 if quantile learning fired
};

template <class Inner, class K = Key, class V = Value>
class ShardedDictionary {
 public:
  template <class Factory>
    requires std::invocable<Factory&, std::size_t>
  ShardedDictionary(ShardedConfig<K> cfg, Factory&& make_inner) : cfg_(std::move(cfg)) {
    if (cfg_.shards == 0) {
      throw std::invalid_argument("sharded: shard count must be >= 1");
    }
    if (!cfg_.splitters.empty()) {
      if (cfg_.splitters.size() != cfg_.shards - 1) {
        throw std::invalid_argument("sharded: need exactly shards-1 splitters");
      }
      for (std::size_t i = 1; i < cfg_.splitters.size(); ++i) {
        if (!(cfg_.splitters[i - 1] < cfg_.splitters[i])) {
          throw std::invalid_argument("sharded: splitters must be ascending");
        }
      }
      splitters_ = cfg_.splitters;
      frozen_ = true;
    } else if constexpr (!std::unsigned_integral<K>) {
      if (cfg_.shards > 1) {
        throw std::invalid_argument(
            "sharded: non-integral keys need explicit splitters");
      }
    }
    shards_.reserve(cfg_.shards);
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      shards_.push_back(
          std::make_unique<Shard>(make_inner(s), cfg_.queue_slots));
    }
  }

  explicit ShardedDictionary(ShardedConfig<K> cfg = ShardedConfig<K>{})
    requires std::default_initializable<Inner>
      : ShardedDictionary(std::move(cfg), [](std::size_t) { return Inner{}; }) {}

  ShardedDictionary(ShardedDictionary&&) noexcept = default;
  ShardedDictionary& operator=(ShardedDictionary&&) noexcept = default;

  // -- observers --------------------------------------------------------------

  std::size_t shard_count() const noexcept { return shards_.size(); }
  const std::vector<K>& splitters() const noexcept { return splitters_; }
  const ShardedStats& stats() const noexcept { return stats_; }
  std::uint64_t epoch() const noexcept { return epoch_; }

  /// Direct access to one shard's structure, behind that shard's drain
  /// barrier (tests and benches read per-shard stats/DAM models this way).
  const Inner& shard(std::size_t s) const {
    drain_shard(*shards_[s]);
    return shards_[s]->dict;
  }

  /// Mutable access to one shard's structure, behind its drain barrier.
  /// For tests/benches resetting DAM models or stats ONLY — mutating shard
  /// CONTENTS from the caller thread would break the single-writer
  /// invariant the facade is built on.
  Inner& shard_mut(std::size_t s) {
    drain_shard(*shards_[s]);
    return shards_[s]->dict;
  }

  /// Block until every queued run has been applied (reads do this lazily;
  /// benches call it to put the full ingest cost inside the timed region).
  void drain() const { drain_all(); }

  // -- mutators (Dictionary contract, api/dictionary.hpp) ---------------------

  void insert(const K& k, const V& v) { single(Op<K, V>::put(k, v)); }
  void erase(const K& k) { single(Op<K, V>::del(k)); }

  void insert_batch(Span<Entry<K, V>> batch) {
    if (batch.empty()) return;
    norm_.clear();
    norm_.reserve(batch.size());
    for (const Entry<K, V>& e : batch) {
      norm_.push_back(Op<K, V>::put(e.key, e.value));
    }
    apply_normalized();
  }

  void erase_batch(Span<K> keys) {
    if (keys.empty()) return;
    norm_.clear();
    norm_.reserve(keys.size());
    for (const K& k : keys) norm_.push_back(Op<K, V>::del(k));
    apply_normalized();
  }

  void apply_batch(Span<Op<K, V>> ops) {
    if (ops.empty()) return;
    norm_.assign(ops.begin(), ops.end());
    apply_normalized();
  }

  // Deprecated pointer-form batch shims (one release; migration note in
  // api/dictionary.hpp — CI's deprecated-api lint rejects in-repo callers).
  void insert_batch(const Entry<K, V>* data, std::size_t n) {
    insert_batch(Span<Entry<K, V>>(data, n));
  }
  void erase_batch(const K* keys, std::size_t n) {
    erase_batch(Span<K>(keys, n));
  }
  void apply_batch(const Op<K, V>* ops, std::size_t n) {
    apply_batch(Span<Op<K, V>>(ops, n));
  }

  /// Flush every shard's deferred state (staging arenas etc.) and drain, so
  /// the caller observes the full cost of everything ingested so far.
  void flush_stage() {
    throw_if_failed();
    for (auto& sh : shards_) {
      Job* job = sh->ring.begin_push();
      job->kind = Job::Kind::kFlush;
      sh->ring.commit_push();
      ++sh->submitted;
      ++stats_.jobs;
      sh->items.release();
    }
    ++epoch_;
    drain_all();
  }

  // -- readers ----------------------------------------------------------------

  std::optional<V> find(const K& k) const {
    const Shard& sh = *shards_[shard_of(k)];
    drain_shard(sh);
    return sh.dict.find(k);
  }

  /// Point-in-time snapshot of the whole facade (contract in
  /// api/dictionary.hpp): drain every shard once, pin each shard's own
  /// snapshot, and fuse them by segment-reference concatenation — the
  /// shards partition the keyspace, so each shard's newest-first order is
  /// the only priority the merged cursor needs. Cached per facade epoch;
  /// the handle is free-threaded and survives arbitrary mutations.
  snap::Snapshot<K, V> snapshot() const {
    throw_if_failed();
    drain_all();
    if (snap_cache_ && snap_epoch_ == epoch_) return snap_cache_;
    snap_parts_.clear();
    snap_parts_.reserve(shards_.size());
    for (const auto& sh : shards_) snap_parts_.push_back(sh->dict.snapshot());
    snap_cache_ = fuse_snapshots(snap_parts_, epoch_);
    snap_parts_.clear();  // the fused snapshot co-owns the segments
    snap_epoch_ = epoch_;
    return snap_cache_;
  }

  /// Resumable ordered cursor over the union of all shards (Dictionary
  /// cursor contract): every seek pins the facade's then-current snapshot,
  /// so the position and the remainder of the stream stay valid across
  /// arbitrary mutations — the old epoch-invalidation protocol (and its
  /// stamp-then-read race against the shard workers) is gone. Re-seek to
  /// observe newer data.
  class Cursor {
   public:
    Cursor() = default;

    void seek(const K& lo) {
      refresh();
      c_.seek(lo);
    }
    void seek(const K& lo, const K& hi) {
      refresh();
      c_.seek(lo, hi);
    }
    void seek_first() {
      refresh();
      c_.seek_first();
    }

    void next() { c_.next(); }
    bool valid() const { return c_.valid(); }
    const Entry<K, V>& entry() const { return c_.entry(); }

    /// The facade epoch of the snapshot this cursor is reading (stamped at
    /// the last seek; 0 before the first).
    std::uint64_t snapshot_epoch() const { return c_.epoch(); }

   private:
    friend class ShardedDictionary;
    explicit Cursor(const ShardedDictionary* d) : d_(d) {}

    void refresh() {
      if (d_ != nullptr) c_.attach(d_->snapshot().data());
    }

    const ShardedDictionary* d_ = nullptr;
    snap::SnapshotCursor<K, V> c_;
  };

  Cursor make_cursor() const { return Cursor(this); }

  template <class Fn>
  void range_for_each(const K& lo, const K& hi, Fn&& fn) const {
    if (hi < lo) return;
    scan_cur_.attach(snapshot().data());
    for (scan_cur_.seek(lo, hi); scan_cur_.valid(); scan_cur_.next()) {
      fn(scan_cur_.entry().key, scan_cur_.entry().value);
    }
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    scan_cur_.attach(snapshot().data());
    for (scan_cur_.seek_first(); scan_cur_.valid(); scan_cur_.next()) {
      fn(scan_cur_.entry().key, scan_cur_.entry().value);
    }
  }

  /// Per-shard inner invariants plus the routing invariant: every key a
  /// shard holds lies inside that shard's splitter range.
  void check_invariants() const {
    drain_all();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const Inner& d = shards_[s]->dict;
      if constexpr (requires { d.check_invariants(); }) d.check_invariants();
      auto c = d.make_cursor();
      c.seek_first();
      while (c.valid()) {
        const K& k = c.entry().key;
        if (s > 0 && k < splitters_[s - 1]) {
          throw std::logic_error("sharded: key below its shard's range");
        }
        if (s + 1 < shards_.size() && !(k < splitters_[s])) {
          throw std::logic_error("sharded: key past its shard's range");
        }
        c.next();
      }
    }
  }

 private:
  /// One run of operations handed to a shard worker. The vector's capacity
  /// circulates through the ring (the worker clears, the producer refills
  /// in place), so steady-state dispatch allocates nothing.
  struct Job {
    enum class Kind : std::uint8_t { kApply, kFlush };
    Kind kind = Kind::kApply;
    std::vector<Op<K, V>> ops;
  };

  /// A shard: the structure, its inbox, and the worker thread that is the
  /// structure's only writer. Heap-allocated (stable address) so the facade
  /// stays movable while workers hold `this` pointers into their shard.
  struct Shard {
    Shard(Inner d, std::size_t ring_slots)
        : dict(std::move(d)), ring(ring_slots) {
      worker = std::thread([this] { run(); });
    }

    ~Shard() {
      stop.store(true, std::memory_order_release);
      items.release();
      if (worker.joinable()) worker.join();
    }

    void run() {
      for (;;) {
        items.acquire();
        Job* job = ring.peek();
        if (job == nullptr) {
          if (stop.load(std::memory_order_acquire)) return;
          continue;
        }
        // A throwing inner structure must not kill the worker (that would
        // std::terminate) and must not wedge the drain barrier: the job is
        // popped and counted NO MATTER WHAT, the first exception is kept,
        // and once failed the worker drains its queue without applying —
        // the facade rethrows on its next call (throw_if_failed).
        if (!failed.load(std::memory_order_relaxed)) {
          try {
            if (job->kind == Job::Kind::kApply) {
              dict.apply_batch(job->ops);
            } else {
              if constexpr (requires(Inner& d) { d.flush_stage(); }) {
                dict.flush_stage();
              }
            }
          } catch (...) {
            error = std::current_exception();
            failed.store(true, std::memory_order_release);
          }
        }
        job->ops.clear();  // keep capacity: it circulates back to the producer
        ring.pop();
        completed.fetch_add(1, std::memory_order_release);
      }
    }

    Inner dict;
    SpscRing<Job> ring;
    std::counting_semaphore<(1 << 30)> items{0};
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> completed{0};
    std::uint64_t submitted = 0;  // facade-thread-only
    // First exception the worker caught; `failed` publishes it (the store
    // is release, the facade's load acquire, so the exception_ptr write
    // happens-before any rethrow).
    std::exception_ptr error;
    std::atomic<bool> failed{false};
    std::thread worker;
  };

  /// Surface a worker's stored exception on the calling thread. Checked at
  /// the top of every facade operation: a shard whose inner structure threw
  /// has silently dropped jobs since, so no result after that point can be
  /// trusted. The failed state is sticky — every later call rethrows too.
  void throw_if_failed() const {
    for (const auto& sh : shards_) {
      if (sh->failed.load(std::memory_order_acquire)) {
        std::rethrow_exception(sh->error);
      }
    }
  }

  std::size_t shard_of(const K& k) const {
    return static_cast<std::size_t>(
        std::upper_bound(splitters_.begin(), splitters_.end(), k) -
        splitters_.begin());
  }

  void single(const Op<K, V>& o) {
    throw_if_failed();
    if (!frozen_) {
      frozen_ = true;
      if (splitters_.empty()) default_splitters();
    }
    Shard& sh = *shards_[shard_of(o.key)];
    Job* job = sh.ring.begin_push();
    job->kind = Job::Kind::kApply;
    job->ops.push_back(o);
    sh.ring.commit_push();
    ++sh.submitted;
    ++stats_.jobs;
    ++stats_.singles;
    sh.items.release();
    ++epoch_;
  }

  /// Normalize norm_ once (sort + newest-wins dedup, the shared batch
  /// discipline), learn splitters if this is the first mutation, then cut
  /// the sorted run into per-shard contiguous subranges — no per-element
  /// scatter copies, just S-1 binary searches over the run.
  void apply_normalized() {
    throw_if_failed();
    sort_dedup_newest_wins(norm_, norm_scratch_);
    if (!frozen_) freeze_from(norm_);
    const Op<K, V>* at = norm_.data();
    const Op<K, V>* end = at + norm_.size();
    for (std::size_t s = 0; s < shards_.size() && at != end; ++s) {
      const Op<K, V>* hi =
          s + 1 < shards_.size()
              ? std::lower_bound(at, end, splitters_[s],
                                 [](const Op<K, V>& o, const K& k) {
                                   return o.key < k;
                                 })
              : end;
      if (hi != at) {
        Shard& sh = *shards_[s];
        Job* job = sh.ring.begin_push();
        job->kind = Job::Kind::kApply;
        job->ops.assign(at, hi);
        sh.ring.commit_push();
        ++sh.submitted;
        ++stats_.jobs;
        sh.items.release();
      }
      at = hi;
    }
    ++stats_.batches;
    ++epoch_;
  }

  void freeze_from(const std::vector<Op<K, V>>& run) {
    frozen_ = true;
    const std::size_t S = shards_.size();
    if (S == 1) return;
    if (run.size() >= std::max<std::size_t>(cfg_.learn_sample_min, S)) {
      // Quantiles of the normalized run: keys are sorted and unique, so the
      // S-1 cut points are strictly increasing by construction.
      splitters_.reserve(S - 1);
      for (std::size_t i = 0; i + 1 < S; ++i) {
        splitters_.push_back(run[(i + 1) * run.size() / S].key);
      }
      ++stats_.learned_splitters;
    } else {
      default_splitters();
    }
  }

  void default_splitters() {
    const std::size_t S = shards_.size();
    if (S == 1) return;
    if constexpr (std::unsigned_integral<K>) {
      const K step =
          static_cast<K>(std::numeric_limits<K>::max() / S + K{1});
      splitters_.reserve(S - 1);
      for (std::size_t i = 1; i < S; ++i) {
        splitters_.push_back(static_cast<K>(step * i));
      }
    }
    // Non-integral keys without explicit splitters are rejected at
    // construction, so this branch is never reached with S > 1.
  }

  void drain_shard(const Shard& sh) const {
    throw_if_failed();
    if (sh.completed.load(std::memory_order_acquire) == sh.submitted) return;
    ++stats_.drains;
    while (sh.completed.load(std::memory_order_acquire) != sh.submitted) {
      std::this_thread::yield();
    }
  }

  void drain_all() const {
    for (const auto& sh : shards_) drain_shard(*sh);
  }

  ShardedConfig<K> cfg_;
  std::vector<K> splitters_;
  bool frozen_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t epoch_ = 0;
  std::vector<Op<K, V>> norm_, norm_scratch_;  // batch normalization scratch
  // Snapshot cache (one fusion per facade epoch) + fusion scratch.
  mutable snap::Snapshot<K, V> snap_cache_;
  mutable std::uint64_t snap_epoch_ = 0;
  mutable std::vector<snap::Snapshot<K, V>> snap_parts_;
  // Dictionary-owned scan cursor backing range_for_each/for_each.
  mutable snap::SnapshotCursor<K, V> scan_cur_;
  mutable ShardedStats stats_;
};

}  // namespace costream::shard
