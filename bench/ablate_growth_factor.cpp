// Ablation: growth factor g in wall-clock terms (the paper's Section 4
// compares 2-, 4-, and 8-COLAs and settles on 4 as the best tradeoff:
// "Given the superior tradeoff of the 4-COLAs, we use them for all
// subsequent experiments").
#include <cstdio>

#include "bench/bench_common.hpp"
#include "cola/cola.hpp"
#include "common/rng.hpp"

namespace cb = costream::bench;
using namespace costream;

int main() {
  const BenchOptions opts = BenchOptions::from_env(1ULL << 21);
  const std::uint64_t searches = opts.fast ? 1'000 : 200'000;
  std::printf("Growth-factor ablation (wall clock), N=%llu\n\n",
              static_cast<unsigned long long>(opts.max_n));

  Table t({"g", "random ins/s", "sorted ins/s", "searches/s", "levels", "merges"},
          16);
  for (const unsigned g : {2u, 4u, 8u, 16u}) {
    double rand_rate, sort_rate, search_rate;
    std::size_t levels;
    std::uint64_t merges;
    {
      cola::Gcola<> c(cola::ColaConfig{g, 0.1});
      const KeyStream ks(KeyOrder::kRandom, opts.max_n, opts.seed);
      Timer timer;
      for (std::uint64_t i = 0; i < ks.size(); ++i) c.insert(ks.key_at(i), i);
      rand_rate = static_cast<double>(ks.size()) / timer.seconds();
      levels = c.level_count();
      merges = c.stats().merges;
      Xoshiro256 rng(5);
      Timer stimer;
      for (std::uint64_t q = 0; q < searches; ++q) {
        (void)c.find(ks.key_at(rng.below(ks.size())));
      }
      search_rate = static_cast<double>(searches) / stimer.seconds();
    }
    {
      cola::Gcola<> c(cola::ColaConfig{g, 0.1});
      const KeyStream ks(KeyOrder::kDescending, opts.max_n, opts.seed);
      Timer timer;
      for (std::uint64_t i = 0; i < ks.size(); ++i) c.insert(ks.key_at(i), i);
      sort_rate = static_cast<double>(ks.size()) / timer.seconds();
    }
    t.add_row({std::to_string(g), format_rate(rand_rate), format_rate(sort_rate),
               format_rate(search_rate), std::to_string(levels),
               std::to_string(merges)});
  }
  t.print();
  std::printf("\nexpected shape: searches improve with g (fewer levels); insert"
              " throughput peaks at moderate g (the paper's 4-COLA sweet spot"
              " comes from disk prefetching, which rewards the longer sequential"
              " merges of larger g until merge fan-in costs dominate).\n");

  // Staging/tiering ablation: batch ingest (k=1024) across three arms per
  // growth factor so each lever's contribution is isolated —
  //   classic   the classic cascade (level rewrites, lookahead pointers);
  //   tiered    segmented levels, NO staging arena (tiered geometry alone);
  //   tiered+L0 the full ingest_tuned preset (tiered + g*1024 arena).
  std::printf("\nStaging L0 / tiered ablation, batch k=1024, N=%llu\n\n",
              static_cast<unsigned long long>(opts.max_n));
  Table st({"g", "classic ins/s", "tiered ins/s", "tiered+L0 ins/s", "L0 gain",
            "total gain"},
           16);
  for (const unsigned g : {2u, 4u, 8u, 16u}) {
    const KeyStream ks(KeyOrder::kRandom, opts.max_n, opts.seed);
    auto run_batches = [&](const cola::ColaConfig& cfg) {
      cola::Gcola<> c(cfg);
      std::vector<Entry<>> chunk(1024);
      Timer timer;
      for (std::uint64_t i = 0; i < ks.size();) {
        const std::uint64_t take =
            std::min<std::uint64_t>(chunk.size(), ks.size() - i);
        for (std::uint64_t j = 0; j < take; ++j, ++i) {
          chunk[j] = Entry<>{ks.key_at(i), i};
        }
        c.insert_batch({chunk.data(), take});
      }
      c.flush_stage();
      return static_cast<double>(ks.size()) / timer.seconds();
    };
    const double classic = run_batches(cola::ColaConfig{g, 0.1});
    cola::ColaConfig tiered_only = cola::ingest_tuned(g, 1024);
    tiered_only.staging_capacity = 0;
    const double tiered = run_batches(tiered_only);
    const double full = run_batches(cola::ingest_tuned(g, 1024));
    char l0[32], total[32];
    std::snprintf(l0, sizeof l0, "%.2fx", full / tiered);
    std::snprintf(total, sizeof total, "%.2fx", full / classic);
    st.add_row({std::to_string(g), format_rate(classic), format_rate(tiered),
                format_rate(full), l0, total});
  }
  st.print();

  // Sorted-run detection datapoint: identical batch content, presorted vs
  // shuffled feed. The O(n) sortedness check skips the merge sort for the
  // former; the ratio is the normalization cost the skip saves.
  {
    const std::uint64_t n = opts.fast ? (1ULL << 16) : (1ULL << 20);
    std::vector<Entry<>> sorted_feed(n), shuffled(n);
    for (std::uint64_t i = 0; i < n; ++i) sorted_feed[i] = Entry<>{i * 3 + 1, i};
    shuffled = sorted_feed;
    Xoshiro256 rng(7);
    for (std::size_t i = shuffled.size(); i-- > 1;) {
      std::swap(shuffled[i], shuffled[rng.below(i + 1)]);
    }
    auto run_feed = [&](const std::vector<Entry<>>& feed) {
      cola::Gcola<> c;
      Timer timer;
      for (std::uint64_t i = 0; i < n; i += 4096) {
        c.insert_batch({feed.data() + i,
                        std::min<std::uint64_t>(4096, n - i)});
      }
      return static_cast<double>(n) / timer.seconds();
    };
    const double presorted_rate = run_feed(sorted_feed);
    const double shuffled_rate = run_feed(shuffled);
    std::printf("\nSorted-run detection (batch k=4096, N=%llu): presorted %s/s"
                " vs shuffled %s/s -> %.2fx from skipping the merge sort\n",
                static_cast<unsigned long long>(n),
                format_rate(presorted_rate).c_str(),
                format_rate(shuffled_rate).c_str(),
                presorted_rate / shuffled_rate);
  }
  return 0;
}
