// Tombstone retention bounds under sustained erase/churn traffic — the
// regression suite for the bug PR 2 documented: tiered levels annihilate
// tombstones only when a fold lands in an empty deepest level, so an
// erase-heavy feed used to accumulate them without bound in bottom-level
// segments. The bounded-retention policy (ColaConfig::tombstone_threshold:
// per-segment live/tombstone counts, trivial-move veto, forced in-place
// bottom folds) must keep total allocated slots within a small constant of
// the live set — asserted here against item_count(), which counts every
// physical entry including tombstones and the staging arena.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cola/cola.hpp"
#include "cola/deamortized_cola.hpp"
#include "cola/deamortized_fc_cola.hpp"
#include "common/entry.hpp"

namespace costream::cola {
namespace {

/// Fixed live set, endless churn: erase a rotating quarter via erase_batch,
/// reinsert it via insert_batch. Physical slots must stay under ~4x the
/// live set for EVERY preset growth factor. At small g the retained mass is
/// duplicate live copies spread across single-segment levels — exactly the
/// shape the per-segment staleness counter (distinct-duplicate estimate per
/// fold, forced full bottom compaction past staleness_threshold) exists to
/// bound; before it, the trivial-move/real-fold alternation alone retained
/// up to ~11x live here.
TEST(TombstoneSpace, ChurnAtFixedLiveSetStaysLinear) {
  const std::uint64_t live = 4096;
  for (const unsigned g : {2u, 4u, 8u, 16u}) {
    Gcola<> c(ingest_tuned(g, 64));
    std::vector<Entry<>> batch;
    std::vector<Key> keys;
    for (std::uint64_t k = 0; k < live; ++k) batch.push_back(Entry<>{k, k});
    c.insert_batch(batch);
    std::uint64_t peak = 0;
    for (int round = 0; round < 400; ++round) {
      const std::uint64_t base = (round % 4) * (live / 4);
      keys.clear();
      batch.clear();
      for (std::uint64_t k = base; k < base + live / 4; ++k) keys.push_back(k);
      c.erase_batch(keys);
      for (std::uint64_t k = base; k < base + live / 4; ++k) {
        batch.push_back(Entry<>{k, k + static_cast<Value>(round)});
      }
      c.insert_batch(batch);
      peak = std::max(peak, c.item_count());
    }
    EXPECT_LT(peak, 4 * live) << "g=" << g << ": churn garbage exceeds ~4x live";
    if (g <= 4) {
      EXPECT_GT(c.stats().staleness_folds, 0u)
          << "g=" << g << ": staleness policy never engaged";
    }
    c.check_invariants();
    for (std::uint64_t k = 0; k < live; ++k) {
      ASSERT_TRUE(c.find(k).has_value()) << "g=" << g << " key " << k;
    }
  }
}

/// The staleness knob gates the churn bound: with it disabled (> 1.0) the
/// same fixed-live-set churn feed at small g retains several times more
/// physical slots (only the trivial-move/real-fold alternation bounds it) —
/// the regression the staleness counter closes.
TEST(TombstoneSpace, StalenessKnobGatesChurnRetention) {
  const std::uint64_t live = 4096;
  const auto peak_with = [&](unsigned g, double threshold) {
    ColaConfig cfg = ingest_tuned(g, 64);
    cfg.staleness_threshold = threshold;
    Gcola<> c(cfg);
    std::vector<Entry<>> batch;
    std::vector<Key> keys;
    for (std::uint64_t k = 0; k < live; ++k) batch.push_back(Entry<>{k, k});
    c.insert_batch(batch);
    std::uint64_t peak = 0;
    for (int round = 0; round < 300; ++round) {
      const std::uint64_t base = (round % 4) * (live / 4);
      keys.clear();
      batch.clear();
      for (std::uint64_t k = base; k < base + live / 4; ++k) keys.push_back(k);
      c.erase_batch(keys);
      for (std::uint64_t k = base; k < base + live / 4; ++k) {
        batch.push_back(Entry<>{k, k});
      }
      c.insert_batch(batch);
      peak = std::max(peak, c.item_count());
    }
    c.check_invariants();
    return peak;
  };
  for (const unsigned g : {2u, 4u}) {
    const std::uint64_t bounded = peak_with(g, 0.5);
    const std::uint64_t unbounded = peak_with(g, 2.0);  // disabled
    EXPECT_LT(bounded, 4 * live) << "g=" << g;
    EXPECT_GT(unbounded, 2 * bounded)
        << "g=" << g << ": staleness knob has no effect (bounded=" << bounded
        << " unbounded=" << unbounded << ")";
  }
}

/// The shape that was actually unbounded: a sustained blind-erase feed
/// (tombstones for keys with no live match) on top of a small live set.
/// Every tombstone survives pairwise merges — only the forced bottom folds
/// can kill them — so this pins the threshold mechanism directly, including
/// that the folds fire (stats) and that reads stay exact throughout.
TEST(TombstoneSpace, EraseHeavyFeedStaysBounded) {
  const std::uint64_t live = 1024;
  ColaConfig cfg = ingest_tuned(8, 64);
  Gcola<> c(cfg);
  std::vector<Entry<>> batch;
  for (std::uint64_t k = 0; k < live; ++k) batch.push_back(Entry<>{k, k});
  c.insert_batch(batch);
  std::uint64_t peak = 0;
  std::vector<Key> keys;
  for (int round = 0; round < 400; ++round) {
    keys.clear();
    for (std::uint64_t j = 0; j < 256; ++j) {
      keys.push_back(1'000'000 + static_cast<Key>(round) * 256 + j);  // absent
    }
    c.erase_batch(keys);
    peak = std::max(peak, c.item_count());
    if (round % 25 == 24) {
      ASSERT_TRUE(c.find(live / 2).has_value()) << "round " << round;
      ASSERT_FALSE(c.find(1'000'000 + static_cast<Key>(round) * 256).has_value());
    }
  }
  // 102400 tombstones fed; retention must stay a small constant of live.
  EXPECT_LT(peak, 4 * live) << "erase-heavy feed accumulates tombstones";
  EXPECT_GT(c.stats().forced_bottom_folds, 0u)
      << "threshold policy never engaged";
  EXPECT_GT(c.stats().tombstones_dropped, 90'000u)
      << "tombstones retained instead of annihilated";
  c.check_invariants();
}

/// The knob gates the behavior: with the threshold disabled (> 1.0) the
/// same erase-heavy feed retains at least an order of magnitude more
/// physical slots than the default — the regression the policy closes.
TEST(TombstoneSpace, ThresholdKnobGatesRetention) {
  const std::uint64_t live = 1024;
  const auto peak_with = [&](double threshold) {
    ColaConfig cfg = ingest_tuned(8, 64);
    cfg.tombstone_threshold = threshold;
    Gcola<> c(cfg);
    std::vector<Entry<>> batch;
    for (std::uint64_t k = 0; k < live; ++k) batch.push_back(Entry<>{k, k});
    c.insert_batch(batch);
    std::uint64_t peak = 0;
    std::vector<Key> keys;
    for (int round = 0; round < 300; ++round) {
      keys.clear();
      for (std::uint64_t j = 0; j < 256; ++j) {
        keys.push_back(1'000'000 + static_cast<Key>(round) * 256 + j);
      }
      c.erase_batch(keys);
      peak = std::max(peak, c.item_count());
    }
    c.check_invariants();
    return peak;
  };
  const std::uint64_t bounded = peak_with(0.25);
  const std::uint64_t unbounded = peak_with(2.0);  // disabled
  EXPECT_GT(unbounded, 10 * bounded)
      << "threshold knob has no effect (bounded=" << bounded
      << " unbounded=" << unbounded << ")";
}

/// A tighter threshold buys a tighter space bound (more fold traffic) —
/// the knob is monotone in the direction the docs promise.
TEST(TombstoneSpace, TighterThresholdTightensTheBound) {
  const std::uint64_t live = 1024;
  const auto run = [&](double threshold) {
    ColaConfig cfg = ingest_tuned(8, 64);
    cfg.tombstone_threshold = threshold;
    Gcola<> c(cfg);
    std::vector<Entry<>> batch;
    for (std::uint64_t k = 0; k < live; ++k) batch.push_back(Entry<>{k, k});
    c.insert_batch(batch);
    std::uint64_t peak = 0;
    std::vector<Key> keys;
    for (int round = 0; round < 200; ++round) {
      keys.clear();
      for (std::uint64_t j = 0; j < 256; ++j) {
        keys.push_back(1'000'000 + static_cast<Key>(round) * 256 + j);
      }
      c.erase_batch(keys);
      peak = std::max(peak, c.item_count());
    }
    return std::pair<std::uint64_t, std::uint64_t>(peak,
                                                   c.stats().forced_bottom_folds);
  };
  const auto [peak_tight, folds_tight] = run(0.1);
  const auto [peak_loose, folds_loose] = run(0.5);
  EXPECT_LE(peak_tight, peak_loose);
  EXPECT_GE(folds_tight, folds_loose) << "tighter threshold must fold at least as often";
}

/// The deamortized variants' worst-case move budgets must hold verbatim for
/// tombstone-carrying batches: erase_batch/apply_batch feed the budgeted
/// path per normalized op, tombstones count as moved items, so
/// max_moves_per_insert never exceeds g*k + 2 (basic) or (g+1)*k + 4 (fc).
TEST(TombstoneSpace, DeamortizedMixedBatchKeepsWorstCaseMoveBound) {
  for (const unsigned g : {2u, 8u}) {
    DeamortizedCola<> d(g);
    DeamortizedFcCola<> f(g);
    std::vector<Op<>> ops;
    for (int round = 0; round < 60; ++round) {
      ops.clear();
      for (std::uint64_t j = 0; j < 64; ++j) {
        const Key k = (static_cast<Key>(round) * 17 + j * 13) % 1500;
        if (j % 3 == 0) {
          ops.push_back(Op<>::del(k));
        } else {
          ops.push_back(Op<>::put(k, j));
        }
      }
      d.apply_batch(ops);
      f.apply_batch(ops);
    }
    d.check_invariants();
    f.check_invariants();
    EXPECT_LE(d.stats().max_moves_per_insert,
              static_cast<std::uint64_t>(g) * d.level_count() + 2)
        << "g=" << g;
    EXPECT_LE(f.stats().max_moves_per_insert,
              static_cast<std::uint64_t>(g + 1) * f.level_count() + 4)
        << "g=" << g;
  }
}

}  // namespace
}  // namespace costream::cola
