// Genericity tests: the structures are templated on key/value types; prove
// they work with a non-trivial ordered key (composite) and a non-POD value.
// This guards against accidental uint64_t assumptions creeping into the
// implementations (e.g. the COLA's lookahead machinery must not depend on
// the value type, since targets moved to a dedicated field).
#include <gtest/gtest.h>

#include <compare>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "brt/brt.hpp"
#include "btree/btree.hpp"
#include "cola/cola.hpp"
#include "cola/deamortized_cola.hpp"
#include "shuttle/shuttle_tree.hpp"

namespace costream {
namespace {

// A composite key: (shard, sequence). Ordered lexicographically.
struct ShardKey {
  std::uint32_t shard = 0;
  std::uint64_t seq = 0;
  friend constexpr auto operator<=>(const ShardKey&, const ShardKey&) = default;
};

// A value with real copy semantics.
struct Payload {
  std::string body;
  friend bool operator==(const Payload& a, const Payload& b) { return a.body == b.body; }
};

ShardKey key_of(std::uint64_t i) {
  return ShardKey{static_cast<std::uint32_t>(i % 7), i * 2654435761u};
}

Payload value_of(std::uint64_t i) { return Payload{"v" + std::to_string(i)}; }

template <class D>
void exercise_generic(D& d) {
  std::map<ShardKey, Payload> ref;
  for (std::uint64_t i = 0; i < 3'000; ++i) {
    const ShardKey k = key_of(i);
    const Payload v = value_of(i);
    d.insert(k, v);
    ref[k] = v;
  }
  for (const auto& [k, v] : ref) {
    const auto got = d.find(k);
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(*got, v);
  }
  ASSERT_FALSE(d.find(ShardKey{99, 0}).has_value());
  // Overwrite a band of keys.
  for (std::uint64_t i = 0; i < 100; ++i) {
    d.insert(key_of(i), Payload{"updated"});
  }
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_EQ(d.find(key_of(i)).value().body, "updated");
  }
}

TEST(GenericTypes, Cola) {
  cola::Gcola<ShardKey, Payload> d;
  exercise_generic(d);
  d.check_invariants();
}

TEST(GenericTypes, BasicCola) {
  cola::Gcola<ShardKey, Payload> d(cola::ColaConfig{4, 0.0});
  exercise_generic(d);
  d.check_invariants();
}

TEST(GenericTypes, DeamortizedCola) {
  cola::DeamortizedCola<ShardKey, Payload> d;
  exercise_generic(d);
  d.check_invariants();
}

TEST(GenericTypes, BTree) {
  btree::BTree<ShardKey, Payload> d(512);
  exercise_generic(d);
  d.check_invariants();
}

TEST(GenericTypes, Brt) {
  brt::Brt<ShardKey, Payload> d(512);
  exercise_generic(d);
  d.check_invariants();
}

TEST(GenericTypes, Shuttle) {
  shuttle::ShuttleTree<ShardKey, Payload> d;
  exercise_generic(d);
  d.check_invariants();
}

TEST(GenericTypes, ColaRangeOverComposite) {
  cola::Gcola<ShardKey, Payload> d;
  for (std::uint64_t i = 0; i < 1'000; ++i) {
    d.insert(ShardKey{static_cast<std::uint32_t>(i % 4), i}, value_of(i));
  }
  // Range = everything in shard 2.
  std::uint64_t count = 0;
  d.range_for_each(ShardKey{2, 0}, ShardKey{2, ~0ULL}, [&](const ShardKey& k, const Payload&) {
    ASSERT_EQ(k.shard, 2u);
    ++count;
  });
  EXPECT_EQ(count, 250u);
}

// Regression: for_each used std::numeric_limits<K>::min() as the scan's low
// bound, which is the smallest POSITIVE value for floating-point K (and a
// default-constructed object for composite keys) — negative keys were
// silently dropped. for_each now uses a dedicated unbounded scan.
TEST(GenericTypes, ColaForEachVisitsNegativeDoubleKeys) {
  cola::Gcola<double, std::uint64_t> d;
  d.insert(-7.5, 1);
  d.insert(-1.25, 2);
  d.insert(0.0, 3);
  d.insert(3.5, 4);
  std::vector<double> seen;
  d.for_each([&](double k, std::uint64_t) { seen.push_back(k); });
  EXPECT_EQ(seen, (std::vector<double>{-7.5, -1.25, 0.0, 3.5}));
}

TEST(GenericTypes, ShuttleForEachVisitsNegativeDoubleKeys) {
  shuttle::ShuttleTree<double, std::uint64_t> d;
  for (int i = -50; i < 50; ++i) d.insert(i * 1.5, static_cast<std::uint64_t>(i + 50));
  std::vector<double> seen;
  d.for_each([&](double k, std::uint64_t) { seen.push_back(k); });
  ASSERT_EQ(seen.size(), 100u);
  for (int i = -50; i < 50; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i + 50)], i * 1.5);
  }
}

// Composite keys have no numeric_limits specialization at all (min() and
// max() both default-construct), so the old for_each visited nothing.
TEST(GenericTypes, ForEachVisitsAllCompositeKeys) {
  cola::Gcola<ShardKey, Payload> c;
  shuttle::ShuttleTree<ShardKey, Payload> s;
  for (std::uint64_t i = 0; i < 500; ++i) {
    c.insert(key_of(i), value_of(i));
    s.insert(key_of(i), value_of(i));
  }
  std::size_t cn = 0, sn = 0;
  c.for_each([&](const ShardKey&, const Payload&) { ++cn; });
  s.for_each([&](const ShardKey&, const Payload&) { ++sn; });
  EXPECT_EQ(cn, 500u);
  EXPECT_EQ(sn, 500u);
}

TEST(GenericTypes, InsertBatchOverCompositeKeys) {
  cola::Gcola<ShardKey, Payload> d;
  std::vector<Entry<ShardKey, Payload>> batch;
  for (std::uint64_t i = 0; i < 800; ++i) {
    batch.push_back(Entry<ShardKey, Payload>{key_of(i), value_of(i)});
  }
  d.insert_batch(batch);
  d.check_invariants();
  for (std::uint64_t i = 0; i < 800; i += 13) {
    ASSERT_EQ(d.find(key_of(i)).value(), value_of(i));
  }
}

TEST(GenericTypes, BTreeEraseComposite) {
  btree::BTree<ShardKey, Payload> d(512);
  for (std::uint64_t i = 0; i < 2'000; ++i) d.insert(key_of(i), value_of(i));
  for (std::uint64_t i = 0; i < 2'000; i += 2) {
    ASSERT_TRUE(d.erase(key_of(i)));
  }
  d.check_invariants();
  for (std::uint64_t i = 0; i < 2'000; ++i) {
    EXPECT_EQ(d.find(key_of(i)).has_value(), i % 2 == 1) << i;
  }
}

}  // namespace
}  // namespace costream
