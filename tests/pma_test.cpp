// Packed-memory array tests: order preservation, density-driven rebalances,
// resize behavior, the move listener, and the amortized move bound the
// shuttle tree's analysis relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "dam/dam_mem_model.hpp"

#include "common/entry.hpp"
#include "common/rng.hpp"
#include "pma/pma.hpp"

namespace costream::pma {
namespace {

using P = Pma<std::uint64_t>;

std::vector<std::uint64_t> contents(const P& p) {
  std::vector<std::uint64_t> out;
  for (auto s = p.first(); s != P::npos; s = p.next(s)) out.push_back(p.at(s));
  return out;
}

TEST(Pma, StartsEmpty) {
  P p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.first(), P::npos);
  p.check_invariants();
}

TEST(Pma, SingleInsert) {
  P p;
  const auto s = p.insert_after(P::npos, 42);
  EXPECT_TRUE(p.occupied(s));
  EXPECT_EQ(p.at(s), 42u);
  EXPECT_EQ(p.size(), 1u);
  p.check_invariants();
}

TEST(Pma, AppendChainPreservesOrder) {
  P p;
  auto s = p.insert_after(P::npos, 0);
  for (std::uint64_t i = 1; i < 500; ++i) s = p.insert_after(s, i);
  const auto got = contents(p);
  ASSERT_EQ(got.size(), 500u);
  for (std::uint64_t i = 0; i < 500; ++i) EXPECT_EQ(got[i], i);
  p.check_invariants();
}

TEST(Pma, PrependChainPreservesOrder) {
  P p;
  for (std::uint64_t i = 0; i < 300; ++i) p.insert_after(P::npos, 299 - i);
  const auto got = contents(p);
  ASSERT_EQ(got.size(), 300u);
  for (std::uint64_t i = 0; i < 300; ++i) EXPECT_EQ(got[i], i);
  p.check_invariants();
}

TEST(Pma, GrowsUnderLoad) {
  P p;
  auto s = p.insert_after(P::npos, 0);
  for (std::uint64_t i = 1; i < 10'000; ++i) s = p.insert_after(s, i);
  EXPECT_GE(p.capacity(), 10'000u);
  EXPECT_GT(p.stats().resizes, 0u);
  p.check_invariants();
}

TEST(Pma, AnyPrefixUsesLinearSpace) {
  // "any n consecutive elements use only Theta(n) space" — root density is
  // bounded below by 0.25 after inserts (root upper threshold 0.75 with
  // doubling), so capacity = O(size).
  P p;
  auto s = p.insert_after(P::npos, 0);
  for (std::uint64_t i = 1; i < 20'000; ++i) s = p.insert_after(s, i);
  EXPECT_LE(p.capacity(), 8 * p.size());
}

TEST(Pma, RandomPositionInsertsStaySorted) {
  P p;
  Xoshiro256 rng(7);
  std::vector<std::uint64_t> ref;
  for (int i = 0; i < 4'000; ++i) {
    const std::uint64_t v = rng();
    const auto pos = std::lower_bound(ref.begin(), ref.end(), v) - ref.begin();
    // Find the PMA slot of the predecessor by rank.
    const auto pred = pos == 0 ? P::npos : p.slot_of_rank(static_cast<std::uint64_t>(pos - 1));
    p.insert_after(pred, v);
    ref.insert(ref.begin() + pos, v);
    if (i % 512 == 0) {
      ASSERT_EQ(contents(p), ref);
      p.check_invariants();
    }
  }
  EXPECT_EQ(contents(p), ref);
  p.check_invariants();
}

TEST(Pma, EraseMaintainsOrderAndShrinks) {
  P p;
  auto s = p.insert_after(P::npos, 0);
  for (std::uint64_t i = 1; i < 5'000; ++i) s = p.insert_after(s, i);
  const auto cap_full = p.capacity();
  // Erase everything but a handful, front to back.
  for (int round = 0; round < 4'990; ++round) p.erase(p.first());
  EXPECT_EQ(p.size(), 10u);
  EXPECT_LT(p.capacity(), cap_full);
  const auto got = contents(p);
  ASSERT_EQ(got.size(), 10u);
  for (std::size_t i = 1; i < got.size(); ++i) EXPECT_LT(got[i - 1], got[i]);
  p.check_invariants();
}

TEST(Pma, EraseToEmptyAndReuse) {
  P p;
  auto s = p.insert_after(P::npos, 1);
  p.insert_after(s, 2);
  while (p.size() > 0) p.erase(p.first());
  EXPECT_TRUE(p.empty());
  p.check_invariants();
  p.insert_after(P::npos, 9);
  EXPECT_EQ(contents(p), std::vector<std::uint64_t>{9});
}

TEST(Pma, MoveListenerTracksEveryRelocation) {
  // All moves reported during one mutation refer to pre-mutation slots, so
  // the tracker applies each mutation's moves as a batch (see the listener
  // contract in pma.hpp).
  P p;
  std::map<std::uint64_t, std::uint64_t> slot_to_value;
  std::vector<std::pair<P::slot_t, P::slot_t>> pending;
  bool batch_ok = true;
  // Two-phase batch apply at every rebalance boundary: clear every source
  // slot, then fill every target from the pre-rebalance snapshot.
  const auto flush = [&] {
    std::map<std::uint64_t, std::uint64_t> next = slot_to_value;
    for (const auto& [from, to] : pending) {
      if (!slot_to_value.count(from)) {
        batch_ok = false;
        return;
      }
      next.erase(from);
    }
    for (const auto& [from, to] : pending) next[to] = slot_to_value.at(from);
    slot_to_value = std::move(next);
    pending.clear();
  };
  p.set_move_listener([&](P::slot_t from, P::slot_t to) { pending.emplace_back(from, to); });
  p.set_rebalance_listener(flush);
  P::slot_t s = P::npos;
  for (std::uint64_t i = 0; i < 600; ++i) {
    s = p.insert_after(s, i);
    ASSERT_TRUE(batch_ok) << "move from unknown slot at i=" << i;
    slot_to_value[s] = i;
  }
  for (const auto& [slot, v] : slot_to_value) {
    ASSERT_TRUE(p.occupied(slot)) << v;
    EXPECT_EQ(p.at(slot), v);
  }
}

TEST(Pma, AmortizedMovesPerInsertAreWellBelowLinear) {
  // The bound is O(log^2 N) amortized moves per insert; assert the measured
  // average for 30k sequential inserts is far below sqrt(N) and not absurd.
  P p;
  auto s = p.insert_after(P::npos, 0);
  const std::uint64_t n = 30'000;
  for (std::uint64_t i = 1; i < n; ++i) s = p.insert_after(s, i);
  const double moves_per_insert =
      static_cast<double>(p.stats().element_moves) / static_cast<double>(n);
  const double log2n = std::log2(static_cast<double>(n));
  EXPECT_LT(moves_per_insert, 4.0 * log2n * log2n);
}

TEST(Pma, LastRebalancedRangeCoversInsertPoint) {
  P p;
  auto s = p.insert_after(P::npos, 1);
  const auto [lo, hi] = p.last_rebalanced_range();
  EXPECT_LE(lo, s);
  EXPECT_GT(hi, s);
}

TEST(Pma, ResizeEpochBumpsOnGrow) {
  P p;
  const auto before = p.resize_epoch();
  auto s = p.insert_after(P::npos, 0);
  for (std::uint64_t i = 1; i < 100; ++i) s = p.insert_after(s, i);
  EXPECT_GT(p.resize_epoch(), before);
}

TEST(Pma, RankAndSlotRoundTrip) {
  P p;
  auto s = p.insert_after(P::npos, 0);
  for (std::uint64_t i = 1; i < 200; ++i) s = p.insert_after(s, i);
  for (std::uint64_t r = 0; r < 200; r += 17) {
    const auto slot = p.slot_of_rank(r);
    ASSERT_NE(slot, P::npos);
    EXPECT_EQ(p.rank_of(slot), r);
    EXPECT_EQ(p.at(slot), r);
  }
}

TEST(Pma, DamAccountingSeesSequentialAppends) {
  Pma<Entry<>, dam::dam_mem_model> p{dam::dam_mem_model(4096, 1 << 22)};
  auto s = p.insert_after(Pma<Entry<>, dam::dam_mem_model>::npos, Entry<>{0, 0});
  for (std::uint64_t i = 1; i < 20'000; ++i) {
    s = p.insert_after(s, Entry<>{i, i});
  }
  // Appends rebalance locally; transfers should be a small multiple of the
  // data size over the block size, not one per insert.
  const auto& st = p.mm().stats();
  EXPECT_LT(st.transfers, 20'000u);
  EXPECT_GT(st.accesses, 0u);
}

// erase_at: vacating a logical run in one pass plus ONE rebalance must
// leave exactly the state a per-element erase loop leaves (same survivors,
// same order, invariants intact) while paying fewer rebalances.
TEST(Pma, BatchEraseMatchesEraseLoop) {
  const std::uint64_t n = 600;
  P batch, loop;
  P::slot_t bt = P::npos, lt = P::npos;
  for (std::uint64_t i = 0; i < n; ++i) {
    bt = batch.insert_after(bt, i);
    lt = loop.insert_after(lt, i);
  }
  // Erase 200 elements starting at logical position 150, both ways.
  auto at_rank = [](const P& p, std::uint64_t r) { return p.slot_of_rank(r); };
  const std::size_t erased = batch.erase_at(at_rank(batch, 150), 200);
  EXPECT_EQ(erased, 200u);
  for (int i = 0; i < 200; ++i) loop.erase(at_rank(loop, 150));
  EXPECT_EQ(contents(batch), contents(loop));
  batch.check_invariants();
  loop.check_invariants();
  EXPECT_LT(batch.stats().rebalances, loop.stats().rebalances)
      << "batch erase must batch the rebalance cost";
}

TEST(Pma, BatchEraseShrinksAndStopsAtEnd) {
  P p;
  P::slot_t tail = P::npos;
  for (std::uint64_t i = 0; i < 512; ++i) tail = p.insert_after(tail, i);
  const std::uint64_t cap_before = p.capacity();
  // Ask for more than remain from the middle: stops at the array end.
  const std::size_t erased = p.erase_at(p.slot_of_rank(100), 1'000);
  EXPECT_EQ(erased, 412u);
  EXPECT_EQ(p.size(), 100u);
  EXPECT_LT(p.capacity(), cap_before) << "batch erase must trigger halving";
  p.check_invariants();
  const auto left = contents(p);
  ASSERT_EQ(left.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(left[i], i);
}

}  // namespace
}  // namespace costream::pma
