// Crash-recovery fuzz: randomized mutation traces against a
// DurableDictionary over the FaultInjectionEnv, with scheduled power cuts
// (including cuts DURING recovery), torn/bit-flipped unsynced tails,
// transient EIO, and — in the lying arm — fsyncs that report success
// without persisting.
//
// The oracle after every crash + reopen:
//   * r = last_recovered_seqno() never exceeds the ops actually attempted;
//   * on truthful-fsync arms, r >= the durability watermark the harness
//     observed (durable_seqno() after each completed call) — nothing the
//     store called durable is ever lost;
//   * the recovered contents EXACTLY equal a model std::map replaying the
//     op trace prefix [1, r] — no phantom future data, no regressions;
//   * truthful-fsync arms never degrade to read-only; the lying arm may
//     (detected corruption), which ends that lifecycle cleanly.
//
// Ops are recorded by the seqno the store assigned them (read back through
// seqno() deltas), so calls that fail with injected EIO mid-append are
// classified exactly. A call interrupted by the power cut (or wedged on a
// poisoned WAL epoch) is MAYBE-applied — its framed record may or may not
// survive the torn tail — so its ops are recorded provisionally and the
// post-recovery resync (truncating the record to last_recovered_seqno)
// settles which branch reality took. Every run is deterministic from its
// seed; failures
// delta-shrink the call trace (chunked removal with full re-run) before
// printing. A planted-failure self-test runs the truthful oracle over a
// secretly lying env and requires the harness to flag it.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/entry.hpp"
#include "common/rng.hpp"
#include "storage/durable_dict.hpp"
#include "storage/fault_env.hpp"

namespace costream::storage {
namespace {

struct CrashCall {
  enum class Kind { kMutate, kSync, kCheckpoint, kFlushStage };
  Kind kind = Kind::kMutate;
  std::vector<Op<>> ops;  // kMutate payload (normalized puts/deletes)
};

std::vector<CrashCall> make_crash_trace(std::uint64_t seed, std::size_t calls,
                                        Key universe) {
  Xoshiro256 rng(seed);
  std::vector<CrashCall> trace;
  trace.reserve(calls);
  const auto key = [&] { return static_cast<Key>(rng.below(universe)); };
  for (std::size_t i = 0; i < calls; ++i) {
    CrashCall c;
    const std::uint64_t pick = rng.below(100);
    if (pick < 90) {
      c.kind = CrashCall::Kind::kMutate;
      const std::size_t n = pick < 40 ? 1 : 1 + rng.below(32);
      c.ops.reserve(n);
      for (std::size_t j = 0; j < n; ++j) {
        if (rng.below(100) < 30) {
          c.ops.push_back(Op<>::del(key()));
        } else {
          c.ops.push_back(Op<>::put(key(), 1 + rng.below(1u << 20)));
        }
      }
    } else if (pick < 95) {
      c.kind = CrashCall::Kind::kSync;
    } else if (pick < 97) {
      c.kind = CrashCall::Kind::kCheckpoint;
    } else {
      c.kind = CrashCall::Kind::kFlushStage;
    }
    trace.push_back(std::move(c));
  }
  return trace;
}

std::string dump_trace(const std::vector<CrashCall>& trace) {
  std::ostringstream os;
  std::size_t shown = 0;
  for (const CrashCall& c : trace) {
    if (++shown > 200) {
      os << "  ... (" << trace.size() - 200 << " more calls)\n";
      break;
    }
    switch (c.kind) {
      case CrashCall::Kind::kMutate:
        os << "  mutate";
        for (const Op<>& o : c.ops) {
          if (o.erase) {
            os << " del:" << o.key;
          } else {
            os << " put:" << o.key << ":" << o.value;
          }
        }
        os << "\n";
        break;
      case CrashCall::Kind::kSync:
        os << "  sync\n";
        break;
      case CrashCall::Kind::kCheckpoint:
        os << "  checkpoint\n";
        break;
      case CrashCall::Kind::kFlushStage:
        os << "  flush_stage\n";
        break;
    }
  }
  return os.str();
}

struct ArmConfig {
  FsyncPolicy policy = FsyncPolicy::kBatch;
  bool env_lies = false;         // the device's fsyncs lie
  bool oracle_truthful = true;   // the oracle asserts r >= durable watermark
  const char* name = "batch";
};

DurableConfig fuzz_dict_config(FsyncPolicy policy) {
  DurableConfig cfg;
  cfg.inner = cola::ingest_tuned(4, 64);
  cfg.fsync_policy = policy;
  cfg.group_commit_bytes = 4u << 10;
  cfg.wal_segment_bytes = 32u << 10;
  cfg.checkpoint_wal_bytes = 64u << 10;
  cfg.spill_depth = 1;
  cfg.segment_block_bytes = 512;
  cfg.block_cache_bytes = 64u << 10;
  return cfg;
}

/// One full lifecycle for (arm, seed, trace): run calls, crash on the
/// env's schedule, reopen (sometimes crashing recovery too), verify, and
/// resume until the trace is consumed — then one final forced crash +
/// verify. Returns a failure description, or nullopt; `cycles` counts
/// successful injected-crash reopen verifications.
std::optional<std::string> run_crash_sessions(const ArmConfig& arm,
                                              std::uint64_t seed,
                                              const std::vector<CrashCall>& trace,
                                              std::size_t& cycles) {
  FaultConfig fc;
  fc.seed = seed * 2654435761u + 7;
  fc.lie_on_sync = arm.env_lies;
  fc.eio_per_mille = 2;
  fc.short_read_per_mille = 5;
  FaultInjectionEnv env(fc);
  Xoshiro256 hrng(seed ^ 0x9e3779b97f4a7c15ULL);
  const DurableConfig cfg = fuzz_dict_config(arm.policy);

  std::vector<Op<>> by_seqno;  // by_seqno[s - 1] = the op seqno s applied
  std::uint64_t watermark = 0;  // highest durable_seqno() observed
  std::optional<DurableDictionary> d;
  d.emplace(env, cfg);

  const auto verify_after_reopen = [&]() -> std::optional<std::string> {
    const std::uint64_t r = d->last_recovered_seqno();
    if (r > by_seqno.size()) {
      return "recovered seqno " + std::to_string(r) + " beyond the " +
             std::to_string(by_seqno.size()) + " ops attempted";
    }
    if (arm.oracle_truthful && r < watermark) {
      return "lost durable data: recovered to " + std::to_string(r) +
             " but durable watermark was " + std::to_string(watermark);
    }
    std::map<Key, Value> model;
    for (std::uint64_t s = 0; s < r; ++s) {
      const Op<>& o = by_seqno[static_cast<std::size_t>(s)];
      if (o.erase) {
        model.erase(o.key);
      } else {
        model[o.key] = o.value;
      }
    }
    std::vector<Entry<>> got;
    d->for_each([&](Key k, Value v) { got.push_back({k, v}); });
    if (got.size() != model.size()) {
      return "recovered " + std::to_string(got.size()) +
             " entries, model prefix at " + std::to_string(r) + " has " +
             std::to_string(model.size());
    }
    std::size_t j = 0;
    for (const auto& [k, v] : model) {
      if (got[j].key != k || got[j].value != v) {
        return "recovered entry " + std::to_string(got[j].key) + ":" +
               std::to_string(got[j].value) + " at pos " + std::to_string(j) +
               ", model prefix at " + std::to_string(r) + " says " +
               std::to_string(k) + ":" + std::to_string(v);
      }
      ++j;
    }
    try {
      d->check_invariants();
    } catch (const std::logic_error& e) {
      return std::string("invariant violation after recovery: ") + e.what();
    }
    watermark = r;  // replayed WAL files survive the next crash too
    // Ops past r did not survive (lost tail or a maybe-applied record that
    // never reached the device); the store reassigns their seqnos to the
    // next calls, so the trace must forget them too.
    by_seqno.resize(static_cast<std::size_t>(r));
    return std::nullopt;
  };

  // Reopen after env.apply_crash(), occasionally power-cutting recovery
  // itself; returns false when the lying arm degraded to read-only (a
  // legal terminal state — the lifecycle ends there).
  const auto reopen = [&]() -> std::optional<std::string> {
    d.reset();
    env.apply_crash();
    for (int attempt = 0;; ++attempt) {
      if (attempt < 3 && hrng.below(100) < 25) {
        env.schedule_crash_after(5 + hrng.below(300));
      }
      try {
        d.emplace(env, cfg);
        env.schedule_crash_after(0);  // disarm any unspent recovery cut
        return std::nullopt;
      } catch (const CrashError&) {
        env.apply_crash();
      } catch (const TransientIOError&) {
        env.schedule_crash_after(0);
      }
    }
  };

  std::size_t i = 0;
  bool final_forced_crash_done = false;
  while (true) {
    env.schedule_crash_after(30 + hrng.below(500));
    bool crashed = false;
    while (i < trace.size()) {
      const CrashCall& c = trace[i];
      const std::uint64_t seq_before = d->seqno();
      try {
        switch (c.kind) {
          case CrashCall::Kind::kMutate:
            d->apply_batch(c.ops);
            break;
          case CrashCall::Kind::kSync:
            d->sync();
            break;
          case CrashCall::Kind::kCheckpoint:
            d->checkpoint();
            break;
          case CrashCall::Kind::kFlushStage:
            d->flush_stage();
            break;
        }
      } catch (const CrashError&) {
        crashed = true;
      } catch (const IOError&) {
        // Transient EIO (or a checkpoint that failed on one): the call
        // may or may not have assigned seqnos — the delta below decides.
      }
      const std::uint64_t seq_after = d->seqno();  // pure memory read
      if (seq_after != seq_before) {
        if (c.kind != CrashCall::Kind::kMutate ||
            seq_after != seq_before + c.ops.size()) {
          return "seqno advanced " + std::to_string(seq_after - seq_before) +
               " for a call of " + std::to_string(c.ops.size()) + " ops";
        }
        for (const Op<>& o : c.ops) by_seqno.push_back(o);
      }
      if (crashed || env.crashed()) {
        // A mutate cut down mid-append is MAYBE-applied: the store never
        // acknowledged it (no seqno delta), but its framed record may sit
        // in the torn tail and replay intact at exactly the next seqnos.
        // Record it provisionally; verify's resize-to-r settles its fate.
        if (c.kind == CrashCall::Kind::kMutate && seq_after == seq_before) {
          for (const Op<>& o : c.ops) by_seqno.push_back(o);
        }
        crashed = true;
        break;
      }
      if (d->wal_poisoned()) {
        // A failed append could not be unwound from the device: exactly
        // this call's record may survive to replay even though the call
        // failed. The epoch is wedged (every write throws), so treat the
        // ops as maybe-applied and end the lifecycle with a power cut.
        if (c.kind == CrashCall::Kind::kMutate && seq_after == seq_before) {
          for (const Op<>& o : c.ops) by_seqno.push_back(o);
        }
        env.schedule_crash_after(1);
        try {
          (void)env.list();
        } catch (const CrashError&) {
        }
        crashed = true;
        break;
      }
      if (arm.oracle_truthful) {
        watermark = std::max(watermark, d->durable_seqno());
      }
      ++i;
    }
    if (!crashed) {
      if (final_forced_crash_done) break;
      // Trace exhausted without a pending cut: force one last power cut so
      // every (arm, seed) pays at least one full crash/recover cycle.
      env.schedule_crash_after(1);
      try {
        (void)env.list();
      } catch (const CrashError&) {
      }
      final_forced_crash_done = true;
    }
    if (auto fail = reopen()) return fail;
    if (d->read_only()) {
      if (!arm.env_lies) {
        return "read-only degradation without a lying fsync: " +
               d->corruption_detail();
      }
      ++cycles;  // detected corruption under lies: a legal terminal state
      return std::nullopt;
    }
    if (auto fail = verify_after_reopen()) return fail;
    ++cycles;
    if (final_forced_crash_done) break;
  }
  return std::nullopt;
}

std::size_t seed_corpus_size() {
  const char* env = std::getenv("CRASH_FUZZ_SEEDS");
  if (env == nullptr || *env == '\0') return 3;
  const long v = std::atol(env);
  return v > 0 ? static_cast<std::size_t>(v) : 3;
}

/// Chunked delta-shrink: re-runs the whole deterministic lifecycle per
/// candidate, keeping any smaller trace that still fails the oracle.
std::vector<CrashCall> shrink_crash_trace(const ArmConfig& arm,
                                          std::uint64_t seed,
                                          std::vector<CrashCall> t) {
  const auto fails = [&](const std::vector<CrashCall>& cand) {
    std::size_t cycles = 0;
    return run_crash_sessions(arm, seed, cand, cycles).has_value();
  };
  for (std::size_t chunk = t.size() / 2; chunk >= 1; chunk /= 2) {
    for (std::size_t at = 0; at + chunk <= t.size();) {
      std::vector<CrashCall> candidate;
      candidate.reserve(t.size() - chunk);
      candidate.insert(candidate.end(), t.begin(),
                       t.begin() + static_cast<std::ptrdiff_t>(at));
      candidate.insert(candidate.end(),
                       t.begin() + static_cast<std::ptrdiff_t>(at + chunk),
                       t.end());
      if (fails(candidate)) {
        t = std::move(candidate);
      } else {
        at += chunk;
      }
    }
    if (chunk == 1) break;
  }
  return t;
}

void run_arm(const ArmConfig& arm) {
  const std::size_t seeds = seed_corpus_size();
  std::size_t cycles = 0;
  for (std::size_t s = 0; s < seeds; ++s) {
    // A few lifecycles per seed: fresh traces keep crash points diverse.
    for (std::uint64_t round = 0; round < 6; ++round) {
      const std::uint64_t seed = s * 131 + round * 7919 + 1;
      const std::vector<CrashCall> trace = make_crash_trace(seed, 500, 256);
      auto fail = run_crash_sessions(arm, seed, trace, cycles);
      if (!fail) continue;
      const std::vector<CrashCall> minimal =
          shrink_crash_trace(arm, seed, trace);
      FAIL() << arm.name << " arm failed (seed " << seed << "): " << *fail
             << "\nminimal replay (" << minimal.size() << " calls):\n"
             << dump_trace(minimal);
    }
  }
  std::cout << "[crash-fuzz] arm=" << arm.name << " seeds=" << seeds
            << " injected-crash reopen cycles=" << cycles << "\n";
  EXPECT_GE(cycles, seeds);  // at least the forced final cut per lifecycle
}

TEST(CrashRecoveryFuzz, GroupCommitTruthfulFsync) {
  run_arm({FsyncPolicy::kBatch, /*env_lies=*/false, /*oracle_truthful=*/true,
           "batch"});
}

TEST(CrashRecoveryFuzz, PerRecordTruthfulFsync) {
  run_arm({FsyncPolicy::kAlways, /*env_lies=*/false, /*oracle_truthful=*/true,
           "always"});
}

TEST(CrashRecoveryFuzz, NoFsync) {
  run_arm({FsyncPolicy::kNever, /*env_lies=*/false, /*oracle_truthful=*/true,
           "never"});
}

TEST(CrashRecoveryFuzz, GroupCommitLyingFsync) {
  run_arm({FsyncPolicy::kBatch, /*env_lies=*/true, /*oracle_truthful=*/false,
           "batch-lying"});
}

// Oracle self-test: a secretly lying device run under the TRUTHFUL oracle
// must be flagged — either as lost durable data (the store reported
// durable seqnos the device never persisted) or as an unexplained
// read-only degradation. Proves the watermark and degradation checks are
// not vacuous.
TEST(CrashRecoveryFuzz, HarnessFlagsLyingDeviceUnderTruthfulOracle) {
  const ArmConfig dishonest{FsyncPolicy::kAlways, /*env_lies=*/true,
                            /*oracle_truthful=*/true, "self-test"};
  bool flagged = false;
  for (std::uint64_t seed = 1; seed <= 8 && !flagged; ++seed) {
    const auto trace = make_crash_trace(seed, 400, 256);
    std::size_t cycles = 0;
    flagged = run_crash_sessions(dishonest, seed, trace, cycles).has_value();
  }
  EXPECT_TRUE(flagged) << "truthful oracle failed to flag a lying device";
}

}  // namespace
}  // namespace costream::storage
