// Shuttle tree tests: SWBST weight invariants, the Fibonacci buffer
// schedule, shuttling semantics (newest-wins across buffers), the Figure-1
// layout pass, and differential testing — plus the no-buffer ablation arm.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <tuple>

#include "common/rng.hpp"
#include "common/workload.hpp"
#include "dam/dam_mem_model.hpp"
#include "model_helpers.hpp"
#include "shuttle/shuttle_tree.hpp"
#include "shuttle/swbst.hpp"

namespace costream::shuttle {
namespace {

TEST(Shuttle, EmptyFind) {
  ShuttleTree<> t;
  EXPECT_FALSE(t.find(1).has_value());
  t.check_invariants();
}

TEST(Shuttle, SingleInsert) {
  ShuttleTree<> t;
  t.insert(5, 50);
  EXPECT_EQ(t.find(5).value(), 50u);
  t.check_invariants();
}

TEST(Shuttle, UpsertAcrossBufferDepths) {
  ShuttleTree<> t;
  // Old values sink toward the leaves; fresh overwrites must shadow them.
  for (std::uint64_t i = 0; i < 20'000; ++i) t.insert(i % 500, 1);
  for (std::uint64_t i = 0; i < 500; ++i) t.insert(i, 2);
  for (std::uint64_t i = 0; i < 500; ++i) ASSERT_EQ(t.find(i).value(), 2u) << i;
  t.check_invariants();
}

struct ShuttleParam {
  unsigned fanout;
  bool buffers;
  KeyOrder order;
};

class ShuttleConfigs : public ::testing::TestWithParam<ShuttleParam> {};

TEST_P(ShuttleConfigs, BulkInsertFindAll) {
  const auto [c, buffers, order] = GetParam();
  ShuttleConfig cfg;
  cfg.fanout = c;
  cfg.use_buffers = buffers;
  ShuttleTree<> t(cfg);
  const KeyStream ks(order, 30'000, 19);
  std::map<Key, Value> ref;
  for (std::uint64_t i = 0; i < ks.size(); ++i) {
    t.insert(ks.key_at(i), i);
    ref[ks.key_at(i)] = i;
    if (i % 8'192 == 0) t.check_invariants();
  }
  t.check_invariants();
  for (const auto& [k, v] : ref) ASSERT_EQ(t.find(k).value(), v) << k;
  EXPECT_GE(t.height(), 3);
}

std::string shuttle_param_name(const ::testing::TestParamInfo<ShuttleParam>& info) {
  return "c" + std::to_string(info.param.fanout) +
         (info.param.buffers ? "_buf_" : "_nobuf_") + to_string(info.param.order);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShuttleConfigs,
    ::testing::Values(ShuttleParam{4, true, KeyOrder::kRandom},
                      ShuttleParam{4, true, KeyOrder::kAscending},
                      ShuttleParam{4, true, KeyOrder::kDescending},
                      ShuttleParam{4, false, KeyOrder::kRandom},
                      ShuttleParam{2, true, KeyOrder::kRandom},
                      ShuttleParam{8, true, KeyOrder::kClustered},
                      ShuttleParam{8, false, KeyOrder::kDescending}),
    shuttle_param_name);

TEST(Shuttle, BuffersActuallyHoldItems) {
  ShuttleTree<> t;
  for (std::uint64_t i = 0; i < 50'000; ++i) t.insert(mix64(i), i);
  EXPECT_GT(t.buffered_items(), 0u) << "items should pause in buffers";
  EXPECT_GT(t.stats().buffer_flushes, 0u);
  // Everything is still reachable.
  for (std::uint64_t i = 0; i < 50'000; i += 997) {
    ASSERT_TRUE(t.find(mix64(i)).has_value()) << i;
  }
}

TEST(Shuttle, NoBufferModeShuttlesNothing) {
  ShuttleConfig cfg;
  cfg.use_buffers = false;
  ShuttleTree<> t(cfg);
  for (std::uint64_t i = 0; i < 10'000; ++i) t.insert(mix64(i), i);
  EXPECT_EQ(t.buffered_items(), 0u);
  EXPECT_EQ(t.stats().buffer_flushes, 0u);
  EXPECT_EQ(t.leaf_entries(), 10'000u);
}

TEST(Shuttle, SwbstWeightInvariant) {
  // The SWBST invariant w(v) = Theta(c^h(v)) — check_invariants enforces the
  // upper bound after every operation; height growth implies the lower side.
  Swbst<> t(4);
  for (std::uint64_t i = 0; i < 50'000; ++i) {
    t.insert(mix64(i), i);
    if (i % 10'000 == 0) t.check_invariants();
  }
  t.check_invariants();
  // Height must be Theta(log_c N): for c=4, N=50k -> ~8-9 levels.
  EXPECT_GE(t.height(), 6);
  EXPECT_LE(t.height(), 14);
}

class ShuttleModel : public ::testing::TestWithParam<std::tuple<bool, std::uint64_t>> {};

TEST_P(ShuttleModel, MixedTraceMatchesReference) {
  const auto [buffers, seed] = GetParam();
  ShuttleConfig cfg;
  cfg.use_buffers = buffers;
  ShuttleTree<> t(cfg);
  const auto ops = generate_ops(5'000, 1'200, OpMix{}, seed);
  testing::run_model_trace(t, ops, [&] { t.check_invariants(); });
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShuttleModel,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Values(51u, 52u, 53u)));

TEST(Shuttle, TombstonesAnnihilateAtLeaves) {
  ShuttleTree<> t;
  for (std::uint64_t i = 0; i < 5'000; ++i) t.insert(i, i);
  for (std::uint64_t i = 0; i < 5'000; i += 2) t.erase(i);
  for (std::uint64_t i = 0; i < 5'000; ++i) {
    if (i % 2 == 0) {
      ASSERT_FALSE(t.find(i).has_value()) << i;
    } else {
      ASSERT_EQ(t.find(i).value(), i) << i;
    }
  }
  t.check_invariants();
}

TEST(Shuttle, RangeMatchesReference) {
  ShuttleTree<> t;
  testing::RefDict ref;
  Xoshiro256 rng(77);
  for (int i = 0; i < 15'000; ++i) {
    const Key k = rng.below(60'000);
    t.insert(k, static_cast<Value>(i));
    ref.insert(k, static_cast<Value>(i));
  }
  for (int q = 0; q < 100; ++q) {
    const Key lo = rng.below(60'000);
    const Key hi = lo + rng.below(3'000);
    const auto got = testing::collect_range(t, lo, hi);
    const auto want = ref.range(lo, hi);
    ASSERT_EQ(got.size(), want.size()) << q;
    for (std::size_t j = 0; j < got.size(); ++j) {
      ASSERT_EQ(got[j].key, want[j].key);
      ASSERT_EQ(got[j].value, want[j].value);
    }
  }
}

TEST(Shuttle, RelayoutPreservesContents) {
  ShuttleTree<> t;
  std::map<Key, Value> ref;
  for (std::uint64_t i = 0; i < 20'000; ++i) {
    const Key k = mix64(i);
    t.insert(k, i);
    ref[k] = i;
  }
  EXPECT_GT(t.stats().relayouts, 0u) << "automatic relayout on doubling";
  t.relayout();  // and an explicit one
  t.check_invariants();
  for (const auto& [k, v] : ref) ASSERT_EQ(t.find(k).value(), v);
}

TEST(Shuttle, LayoutImprovesSearchLocality) {
  // The point of the Figure-1 layout: after relayout, root-to-leaf searches
  // touch fewer distinct blocks than when nodes sit at creation-order
  // addresses spread over the fresh region.
  ShuttleConfig cfg;
  ShuttleTree<Key, Value, dam::dam_mem_model> t(cfg, dam::dam_mem_model(4096, 1 << 22));
  const std::uint64_t n = 1 << 16;
  for (std::uint64_t i = 0; i < n; ++i) t.insert(mix64(i), i);
  t.relayout();
  Xoshiro256 rng(88);
  std::uint64_t laid_out = 0;
  const int probes = 200;
  for (int q = 0; q < probes; ++q) {
    t.mm().clear_cache();
    t.mm().reset_stats();
    t.find(mix64(rng.below(n)));
    laid_out += t.mm().stats().transfers;
  }
  // log_B bound sanity: a height-9ish tree should need well under height
  // transfers once multiple small nodes share blocks.
  EXPECT_LT(static_cast<double>(laid_out) / probes,
            static_cast<double>(t.height()) + 4.0);
}

TEST(Shuttle, BufferScheduleMatchesFibonacciFactors) {
  // White-box-ish: insert enough for height >= 4 and verify via invariants
  // (buffer heights ascending per edge, capacities respected) plus the
  // schedule function itself.
  ShuttleTree<> t;
  for (std::uint64_t i = 0; i < 200'000; ++i) t.insert(mix64(i), i);
  t.check_invariants();
  EXPECT_GE(t.height(), 5);
}

TEST(Shuttle, DescendingThenAscendingStress) {
  ShuttleTree<> t;
  for (std::uint64_t i = 0; i < 10'000; ++i) t.insert(1'000'000 - i, i);
  for (std::uint64_t i = 0; i < 10'000; ++i) t.insert(2'000'000 + i, i);
  t.check_invariants();
  EXPECT_TRUE(t.find(1'000'000).has_value());
  EXPECT_TRUE(t.find(2'000'000).has_value());
  EXPECT_FALSE(t.find(1'500'000).has_value());
}

}  // namespace
}  // namespace costream::shuttle
