// Cursor subsystem tests: boundary seeks, tombstone suppression through
// unflushed buffers, the merge-join building block, differential coverage
// against a std::map model for every structure, and — with this binary's
// counting operator new/delete — the allocation-free steady-state contract
// for repeated seeks and rewritten range_for_each scans.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <map>
#include <new>
#include <vector>

#include "api/presets.hpp"
#include "brt/brt.hpp"
#include "btree/btree.hpp"
#include "cob/cob_tree.hpp"
#include "cola/cola.hpp"
#include "cola/deamortized_cola.hpp"
#include "cola/deamortized_fc_cola.hpp"
#include "common/rng.hpp"
#include "pma/pma.hpp"
#include "shuttle/shuttle_tree.hpp"

namespace {
// Plain (non-atomic) counter: single-threaded tests, and the counter must
// itself stay allocation-free.
std::uint64_t g_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocs;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}

// The nothrow forms too: libstdc++'s std::stable_sort temporary buffer
// allocates through operator new(nothrow), and leaving it unreplaced pairs
// the default (sanitizer-tagged) new with this binary's free — an ASan
// alloc-dealloc mismatch.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(size ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(size ? size : 1);
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace costream {
namespace {

template <class Fn>
std::uint64_t count_allocs(Fn&& fn) {
  const std::uint64_t before = g_allocs;
  fn();
  return g_allocs - before;
}

constexpr Key kMaxKey = std::numeric_limits<Key>::max();

/// Build a dictionary + model with a mixed history: inserts, overwrites,
/// erases of present and absent keys, batches. Keys are spread so levels,
/// segments, buffers, and (staged configs) the arena all hold data.
template <class D>
std::map<Key, Value> populate(D& d, std::uint64_t n, std::uint64_t seed) {
  std::map<Key, Value> model;
  Xoshiro256 rng(seed);
  std::vector<Entry<>> batch;
  std::vector<Key> erases;
  for (std::uint64_t i = 0; i < n; ++i) {
    const Key k = rng.below(3 * n);
    if (rng.below(10) < 7) {
      d.insert(k, i);
      model[k] = i;
    } else {
      d.erase(k);
      model.erase(k);
    }
    if (i % 97 == 96) {
      batch.clear();
      for (int j = 0; j < 24; ++j) {
        batch.push_back(Entry<>{rng.below(3 * n), i + static_cast<Value>(j)});
      }
      d.insert_batch(batch);
      for (const Entry<>& e : batch) model[e.key] = e.value;
    }
    if (i % 131 == 130) {
      erases.clear();
      for (int j = 0; j < 16; ++j) erases.push_back(rng.below(3 * n));
      d.erase_batch(erases);
      for (Key k2 : erases) model.erase(k2);
    }
  }
  return model;
}

/// Drain `cur` from its current position and compare against the model
/// range [from, hi] (hi inclusive; kMaxKey = unbounded).
template <class C>
void expect_drain_matches(C& cur, const std::map<Key, Value>& model, Key from,
                          Key hi) {
  auto it = model.lower_bound(from);
  while (it != model.end() && it->first <= hi) {
    ASSERT_TRUE(cur.valid()) << "cursor ended early before key " << it->first;
    ASSERT_EQ(cur.entry().key, it->first);
    ASSERT_EQ(cur.entry().value, it->second);
    cur.next();
    ++it;
  }
  ASSERT_FALSE(cur.valid()) << "cursor returned extra key " << cur.entry().key;
}

/// The full differential battery for one dictionary: full drains, boundary
/// seeks, missing keys, bounded seeks, repeated re-seek without teardown.
template <class D>
void exercise_cursor(D& d, const std::map<Key, Value>& model, std::uint64_t n,
                     std::uint64_t seed) {
  auto cur = d.make_cursor();

  // Full drain from the smallest live key.
  cur.seek_first();
  expect_drain_matches(cur, model, 0, kMaxKey);

  // seek(0) is the same full drain (boundary: minimum key).
  cur.seek(Key{0});
  expect_drain_matches(cur, model, 0, kMaxKey);

  // Boundary: seek at the maximum key.
  cur.seek(kMaxKey);
  if (model.count(kMaxKey) != 0) {
    ASSERT_TRUE(cur.valid());
    EXPECT_EQ(cur.entry().key, kMaxKey);
  } else {
    EXPECT_FALSE(cur.valid());
  }

  // Seeks at random points — present, missing, and past-the-end keys —
  // reusing ONE cursor (re-seek without teardown).
  Xoshiro256 rng(seed ^ 0x5eedULL);
  for (int q = 0; q < 40; ++q) {
    const Key lo = rng.below(4 * n);
    cur.seek(lo);
    auto it = model.lower_bound(lo);
    if (it == model.end()) {
      ASSERT_FALSE(cur.valid()) << "seek(" << lo << ")";
    } else {
      ASSERT_TRUE(cur.valid()) << "seek(" << lo << ")";
      ASSERT_EQ(cur.entry().key, it->first);
      ASSERT_EQ(cur.entry().value, it->second);
      // Step a few entries forward.
      for (int s = 0; s < 5 && cur.valid(); ++s) {
        ASSERT_EQ(cur.entry().key, it->first);
        ASSERT_EQ(cur.entry().value, it->second);
        cur.next();
        ++it;
        if (it == model.end()) {
          ASSERT_FALSE(cur.valid());
          break;
        }
      }
    }
  }

  // Bounded seeks never surface keys past hi.
  for (int q = 0; q < 20; ++q) {
    const Key lo = rng.below(3 * n);
    const Key hi = lo + rng.below(n);
    cur.seek(lo, hi);
    expect_drain_matches(cur, model, lo, hi);
  }

  // Inverted bound is an empty stream.
  cur.seek(Key{100}, Key{5});
  EXPECT_FALSE(cur.valid());
}

template <class MakeDict>
void run_cursor_battery(MakeDict make, std::uint64_t n = 4000,
                        std::uint64_t seed = 42) {
  auto d = make();
  const std::map<Key, Value> model = populate(d, n, seed);
  exercise_cursor(d, model, n, seed);
}

TEST(Cursor, ColaClassic) {
  run_cursor_battery([] { return cola::Gcola<>(cola::ColaConfig{2, 0.1}); });
  run_cursor_battery([] { return cola::Gcola<>(cola::ColaConfig{8, 0.1}); });
}

TEST(Cursor, ColaTiered) {
  for (const unsigned g : {2u, 4u, 8u}) {
    run_cursor_battery([g] {
      cola::ColaConfig cfg;
      cfg.growth = g;
      cfg.pointer_density = 0.0;
      cfg.tiered = true;
      return cola::Gcola<>(cfg);
    });
  }
}

TEST(Cursor, ColaStaged) {
  for (const unsigned g : {2u, 8u}) {
    run_cursor_battery([g] { return cola::Gcola<>(cola::ingest_tuned(g, 64)); });
  }
}

TEST(Cursor, ColaStagedNoFences) {
  // Fence keys accelerate seeks but must never change results.
  cola::ColaConfig cfg = cola::ingest_tuned(8, 64);
  cfg.fence_keys = false;
  run_cursor_battery([cfg] { return cola::Gcola<>(cfg); });
}

TEST(Cursor, Deamortized) {
  run_cursor_battery([] { return cola::DeamortizedCola<>(2); }, 2000);
  run_cursor_battery([] { return cola::DeamortizedCola<>(8); }, 2000);
}

TEST(Cursor, DeamortizedFc) {
  run_cursor_battery([] { return cola::DeamortizedFcCola<>(2); }, 2000);
  run_cursor_battery([] { return cola::DeamortizedFcCola<>(8); }, 2000);
}

TEST(Cursor, Shuttle) {
  run_cursor_battery([] { return shuttle::ShuttleTree<>(); });
}

TEST(Cursor, Brt) {
  run_cursor_battery([] { return brt::Brt<>(512); });
}

TEST(Cursor, BTree) {
  run_cursor_battery([] { return btree::BTree<>(512); });
}

TEST(Cursor, CobTree) {
  run_cursor_battery([] { return cob::CobTree<>(); }, 2500);
}

TEST(Cursor, AnyDictionaryAllKinds) {
  for (const char* kind :
       {"cola", "shuttle", "deam", "fc-deam", "btree", "brt", "cob"}) {
    run_cursor_battery(
        [kind] {
          return api::make_dictionary(kind, api::DictConfig::ingest_tuned(4, 32));
        },
        1500);
  }
}

TEST(Cursor, EmptyDictionary) {
  cola::Gcola<> empty_cola(cola::ingest_tuned(4, 64));
  auto c = empty_cola.make_cursor();
  c.seek_first();
  EXPECT_FALSE(c.valid());
  c.seek(Key{0});
  EXPECT_FALSE(c.valid());
  c.seek(kMaxKey);
  EXPECT_FALSE(c.valid());

  btree::BTree<> empty_btree;
  auto cb = empty_btree.make_cursor();
  cb.seek_first();
  EXPECT_FALSE(cb.valid());

  cob::CobTree<> empty_cob;
  auto cc = empty_cob.make_cursor();
  cc.seek(Key{7});
  EXPECT_FALSE(cc.valid());
}

// Tombstone suppression through UNFLUSHED staging runs: erases that still
// sit in the L0 arena (and mixed put-over-erase rewrites) must shape the
// cursor stream exactly like flushed ones.
TEST(Cursor, StagedTombstonesSuppressUnflushed) {
  cola::Gcola<> d(cola::ingest_tuned(4, 1024));  // arena: 4096 entries
  std::vector<Entry<>> batch;
  for (Key k = 0; k < 500; ++k) batch.push_back(Entry<>{k, k});
  d.insert_batch(batch);
  d.flush_stage();  // everything below the arena
  // Erase every third key; the tombstones stay staged (arena far from full).
  std::vector<Key> dead;
  for (Key k = 0; k < 500; k += 3) dead.push_back(k);
  d.erase_batch(dead);
  // Rewrite a band through the arena too (newest copy must win).
  batch.clear();
  for (Key k = 100; k < 140; ++k) batch.push_back(Entry<>{k, 9000 + k});
  d.insert_batch(batch);
  ASSERT_GT(d.staged_count(), 0u) << "test premise: arena must be unflushed";

  std::map<Key, Value> model;
  for (Key k = 0; k < 500; ++k) model[k] = k;
  for (Key k : dead) model.erase(k);
  for (Key k = 100; k < 140; ++k) model[k] = 9000 + k;

  auto c = d.make_cursor();
  c.seek_first();
  expect_drain_matches(c, model, 0, kMaxKey);
  // And through a bounded mid-stream seek.
  c.seek(Key{90}, Key{150});
  expect_drain_matches(c, model, 90, 150);
}

// Pma positional cursor: occupied-slot walk with seek_slot.
TEST(Cursor, PmaPositionalCursor) {
  pma::Pma<Entry<>> p;
  auto s = p.make_cursor();
  s.seek_first();
  EXPECT_FALSE(s.valid());
  typename pma::Pma<Entry<>>::slot_t pred = pma::Pma<Entry<>>::npos;
  for (Key k = 0; k < 300; ++k) pred = p.insert_after(pred, Entry<>{k, k * 2});
  s = p.make_cursor();
  s.seek_first();
  Key expect = 0;
  while (s.valid()) {
    ASSERT_EQ(s.item().key, expect);
    ASSERT_EQ(s.item().value, expect * 2);
    ++expect;
    s.next();
  }
  EXPECT_EQ(expect, 300u);
  // seek_slot resumes mid-array.
  s.seek_slot(p.capacity() / 2);
  ASSERT_TRUE(s.valid());
  EXPECT_GE(s.slot(), p.capacity() / 2);
}

// merge_join: inner join across two different structures, checked against
// the maps' intersection; also through the type-erased facade.
TEST(Cursor, MergeJoinDifferential) {
  cola::Gcola<> a(cola::ingest_tuned(8, 64));
  btree::BTree<> b(512);
  std::map<Key, Value> ma, mb;
  Xoshiro256 rng(7);
  for (int i = 0; i < 5000; ++i) {
    const Key ka = rng.below(4000);
    a.insert(ka, i);
    ma[ka] = i;
    const Key kb = rng.below(4000) + 2000;  // overlap in [2000, 4000)
    b.insert(kb, i);
    mb[kb] = i;
  }
  // Erase a band from `a` so suppressed keys cannot join.
  std::vector<Key> dead;
  for (Key k = 2500; k < 2600; ++k) dead.push_back(k);
  a.erase_batch(dead);
  for (Key k : dead) ma.erase(k);

  std::vector<std::pair<Key, std::pair<Value, Value>>> expect;
  for (const auto& [k, va] : ma) {
    const auto it = mb.find(k);
    if (it != mb.end()) expect.push_back({k, {va, it->second}});
  }
  std::vector<std::pair<Key, std::pair<Value, Value>>> got;
  api::merge_join(a, b, [&](Key k, Value va, Value vb) {
    got.push_back({k, {va, vb}});
  });
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expect[i]) << "join row " << i;
  }

  // Same join through AnyDictionary cursors.
  api::AnyDictionary ea("cola", std::move(a));
  api::AnyDictionary eb("btree", std::move(b));
  got.clear();
  api::merge_join(ea, eb, [&](Key k, Value va, Value vb) {
    got.push_back({k, {va, vb}});
  });
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expect[i]) << "erased join row " << i;
  }
}

TEST(Cursor, MergeJoinDisjointAndEmpty) {
  cola::Gcola<> a, b;
  for (Key k = 0; k < 100; ++k) a.insert(k, k);
  std::size_t rows = 0;
  api::merge_join(a, b, [&](Key, Value, Value) { ++rows; });
  EXPECT_EQ(rows, 0u) << "join with empty right side";
  for (Key k = 1000; k < 1100; ++k) b.insert(k, k);
  api::merge_join(a, b, [&](Key, Value, Value) { ++rows; });
  EXPECT_EQ(rows, 0u) << "join of disjoint key ranges";
  b.insert(50, 7);
  api::merge_join(a, b, [&](Key k, Value va, Value vb) {
    EXPECT_EQ(k, 50u);
    EXPECT_EQ(va, 50u);
    EXPECT_EQ(vb, 7u);
    ++rows;
  });
  EXPECT_EQ(rows, 1u);
}

// -- allocation-free steady state ---------------------------------------------

TEST(CursorAlloc, ColaRepeatedScansAllocFree) {
  for (const bool staged : {false, true}) {
    cola::Gcola<> d(staged ? cola::ingest_tuned(8, 64)
                           : cola::ColaConfig{2, 0.1});
    std::uint64_t s = 17;
    for (std::uint64_t i = 0; i < 60'000; ++i) d.insert(splitmix64(s), i);
    std::uint64_t sink = 0;
    // Warm one scan so every cursor scratch vector reaches high water.
    d.range_for_each(0, kMaxKey / 2, [&](Key, Value v) { sink += v; });
    const std::uint64_t allocs = count_allocs([&] {
      for (int r = 0; r < 20; ++r) {
        d.range_for_each(static_cast<Key>(r) << 40, kMaxKey / 2,
                         [&](Key, Value v) { sink += v; });
      }
    });
    EXPECT_EQ(allocs, 0u) << (staged ? "staged" : "classic")
                          << " repeated range_for_each allocates";
    ASSERT_NE(sink, 0u);
  }
}

TEST(CursorAlloc, ColaSeekHeavyCursorAllocFree) {
  cola::Gcola<> d(cola::ingest_tuned(8, 64));
  std::uint64_t s = 23;
  for (std::uint64_t i = 0; i < 60'000; ++i) d.insert(splitmix64(s), i);
  auto cur = d.make_cursor();  // creation may allocate; seeks must not
  cur.seek_first();
  std::uint64_t sink = 0;
  const std::uint64_t allocs = count_allocs([&] {
    std::uint64_t q = 99;
    for (int r = 0; r < 2'000; ++r) {
      cur.seek(splitmix64(q));
      for (int st = 0; st < 8 && cur.valid(); ++st) {
        sink += cur.entry().value;
        cur.next();
      }
    }
  });
  EXPECT_EQ(allocs, 0u) << "seek-heavy cursor reuse allocates";
  ASSERT_NE(sink, 0u);
}

TEST(CursorAlloc, ShuttleRepeatedScansAllocFree) {
  shuttle::ShuttleTree<> d;
  for (std::uint64_t k = 0; k < 4'096; ++k) d.insert(k, k);
  std::uint64_t s = 29;
  for (std::uint64_t i = 0; i < 60'000; ++i) d.insert(splitmix64(s) % 4'096, i);
  std::uint64_t sink = 0;
  d.range_for_each(0, 4'096, [&](Key, Value v) { sink += v; });
  const std::uint64_t allocs = count_allocs([&] {
    for (int r = 0; r < 20; ++r) {
      d.range_for_each(static_cast<Key>(r * 64), 4'096,
                       [&](Key, Value v) { sink += v; });
    }
  });
  EXPECT_EQ(allocs, 0u) << "shuttle repeated range_for_each allocates";
  ASSERT_NE(sink, 0u);
}

TEST(CursorAlloc, BrtRepeatedScansAllocFree) {
  brt::Brt<> d;
  std::uint64_t s = 31;
  for (std::uint64_t i = 0; i < 100'000; ++i) d.insert(splitmix64(s) % 20'000, i);
  std::uint64_t sink = 0;
  d.range_for_each(0, 20'000, [&](Key, Value v) { sink += v; });
  const std::uint64_t allocs = count_allocs([&] {
    for (int r = 0; r < 10; ++r) {
      d.range_for_each(static_cast<Key>(r * 512), 20'000,
                       [&](Key, Value v) { sink += v; });
    }
  });
  EXPECT_EQ(allocs, 0u) << "brt repeated range_for_each allocates";
  ASSERT_NE(sink, 0u);
}

TEST(CursorAlloc, BTreeRepeatedScansAllocFree) {
  btree::BTree<> d;
  std::uint64_t s = 37;
  for (std::uint64_t i = 0; i < 50'000; ++i) d.insert(splitmix64(s), i);
  std::uint64_t sink = 0;
  const std::uint64_t allocs = count_allocs([&] {
    for (int r = 0; r < 20; ++r) {
      d.range_for_each(static_cast<Key>(r) << 40, kMaxKey / 2,
                       [&](Key, Value v) { sink += v; });
    }
  });
  EXPECT_EQ(allocs, 0u) << "btree repeated range_for_each allocates";
  ASSERT_NE(sink, 0u);
}

}  // namespace
}  // namespace costream
