// Config threading: map the deployment-level DictConfig onto each
// structure's own config type, and build type-erased dictionaries from a
// (kind, config) pair — the one place that knows every structure's
// constructor shape, so examples, integration tests, and benches can sweep
// growth presets without repeating it.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "api/dictionary.hpp"
#include "brt/brt.hpp"
#include "btree/btree.hpp"
#include "cob/cob_tree.hpp"
#include "cola/cola.hpp"
#include "cola/deamortized_cola.hpp"
#include "cola/deamortized_fc_cola.hpp"
#include "shard/sharded_dictionary.hpp"
#include "shuttle/shuttle_tree.hpp"
#include "storage/durable_dict.hpp"
#include "storage/posix_env.hpp"

namespace costream::api {

/// DictConfig -> the COLA family's config. Staging presets delegate to
/// cola::ingest_tuned() — the single source of the arena-sizing/tiered/
/// pointer-density mapping — so the two construction paths cannot diverge.
inline cola::ColaConfig to_cola_config(const DictConfig& c) {
  if (c.staging) {
    cola::ColaConfig cfg = cola::ingest_tuned(c.growth, c.batch_hint);
    cfg.tombstone_threshold = c.tombstone_threshold;
    cfg.compaction_threads = c.compaction_threads;
    return cfg;
  }
  cola::ColaConfig cfg;
  cfg.growth = c.growth;
  cfg.pointer_density = c.pointer_density;
  cfg.tombstone_threshold = c.tombstone_threshold;
  cfg.compaction_threads = c.compaction_threads;
  return cfg;
}

/// DictConfig -> the shuttle tree's config (growth scales buffer sizing).
inline shuttle::ShuttleConfig to_shuttle_config(const DictConfig& c) {
  shuttle::ShuttleConfig cfg;
  cfg.growth = c.growth;
  return cfg;
}

/// Build a type-erased dictionary of the named kind with the config's
/// growth tuning applied. Kinds: "cola", "shuttle", "deam", "fc-deam",
/// "btree", "brt", "cob" (the last three have no growth lever and ignore
/// the config). Throws std::invalid_argument on an unknown kind.
///
/// With cfg.shards > 1 the kind is built S times and wrapped in the
/// concurrent-ingest facade (shard/sharded_dictionary.hpp): each shard is
/// an independent single-writer instance of the SAME kind/config, behind
/// one Dictionary interface with worker-thread ingest and snapshot-fused
/// sharded reads. Splitters are learned from the first batch (or key-prefix
/// defaults); pass explicit boundaries by constructing ShardedDictionary
/// directly.
inline AnyDictionary make_dictionary(const std::string& kind,
                                     const DictConfig& cfg = DictConfig{}) {
  if (cfg.shards > 1) {
    DictConfig inner_cfg = cfg;
    inner_cfg.shards = 1;
    shard::ShardedConfig<Key> sc;
    sc.shards = cfg.shards;
    return AnyDictionary(
        kind + "-s" + std::to_string(cfg.shards),
        shard::ShardedDictionary<AnyDictionary>(
            std::move(sc), [&kind, &inner_cfg](std::size_t) {
              return make_dictionary(kind, inner_cfg);
            }));
  }
  if (kind == "cola") {
    if (!cfg.durable_dir.empty()) {
      storage::DurableConfig dc;
      dc.inner = to_cola_config(cfg);
      dc.fsync_policy = static_cast<storage::FsyncPolicy>(cfg.durable_fsync);
      dc.spill_depth = cfg.spill_depth;
      return AnyDictionary(
          kind + "-durable",
          storage::DurableDictionary(
              std::make_unique<storage::PosixEnv>(cfg.durable_dir), dc));
    }
    std::string name = kind;
    if (cfg.compaction_threads > 0) {
      name += "-bg" + std::to_string(cfg.compaction_threads);
    }
    return AnyDictionary(std::move(name), cola::Gcola<>(to_cola_config(cfg)));
  }
  if (kind == "shuttle") {
    return AnyDictionary(kind, shuttle::ShuttleTree<>(to_shuttle_config(cfg)));
  }
  if (kind == "deam") return AnyDictionary(kind, cola::DeamortizedCola<>(cfg.growth));
  if (kind == "fc-deam") {
    return AnyDictionary(kind, cola::DeamortizedFcCola<>(cfg.growth));
  }
  if (kind == "btree") return AnyDictionary(kind, btree::BTree<>{});
  if (kind == "brt") return AnyDictionary(kind, brt::Brt<>{});
  if (kind == "cob") return AnyDictionary(kind, cob::CobTree<>{});
  throw std::invalid_argument("make_dictionary: unknown kind " + kind);
}

}  // namespace costream::api
