// The insert/search tradeoff curve (paper Section 3, "Cache-aware
// update/query tradeoff"; Brodal-Fagerberg B^eps-tree bounds).
//
// Sweeping the lookahead array's growth factor g traces the curve from the
// BRT point (g = 2: cheapest inserts, log2 N searches) toward the B-tree
// point (g = B: log_{B+1} N searches, one transfer per insert). The BRT and
// B-tree rows bracket the sweep.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.hpp"
#include "brt/brt.hpp"
#include "btree/btree.hpp"
#include "cola/cola.hpp"
#include "cola/lookahead_array.hpp"
#include "common/rng.hpp"

namespace cb = costream::bench;
using namespace costream;

namespace {

constexpr std::uint64_t kBlock = 4096;

struct Point {
  std::string name;
  double insert_tpo;
  double search_tpo;
  std::size_t levels;
};

template <class D>
Point measure(const std::string& name, D& d, dam::dam_mem_model& mm,
              const KeyStream& ks, std::uint64_t searches, std::size_t levels) {
  for (std::uint64_t i = 0; i < ks.size(); ++i) d.insert(ks.key_at(i), i);
  const double ins =
      static_cast<double>(mm.stats().transfers) / static_cast<double>(ks.size());
  Xoshiro256 rng(13);
  std::uint64_t total = 0;
  for (std::uint64_t q = 0; q < searches; ++q) {
    mm.clear_cache();
    mm.reset_stats();
    (void)d.find(ks.key_at(rng.below(ks.size())));
    total += mm.stats().transfers;
  }
  return Point{name, ins, static_cast<double>(total) / static_cast<double>(searches),
               levels};
}

}  // namespace

int main() {
  const BenchOptions opts = BenchOptions::from_env(1ULL << 19);
  const std::uint64_t mem = cb::scaled_memory_bytes(opts.max_n);
  const std::uint64_t searches = opts.fast ? 20 : 200;
  const KeyStream ks(KeyOrder::kRandom, opts.max_n, opts.seed);
  const double b_elems = kBlock / 32.0;
  std::printf("Insert/search tradeoff, N=%llu, B=%d elements\n",
              static_cast<unsigned long long>(opts.max_n), static_cast<int>(b_elems));
  std::printf("eps values map to growth factors: eps=0 -> g=2, eps=0.5 -> g=%u,"
              " eps=1 -> g=%u\n\n",
              cola::lookahead_growth(kBlock, 0.5), cola::lookahead_growth(kBlock, 1.0));

  std::vector<Point> points;
  for (const unsigned g : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    cola::Gcola<Key, Value, dam::dam_mem_model> d(cola::ColaConfig{g, 0.1},
                                                  dam::dam_mem_model(kBlock, mem));
    points.push_back(measure("LA g=" + std::to_string(g), d, d.mm(), ks, searches,
                             d.level_count()));
    points.back().levels = d.level_count();
  }
  {
    brt::Brt<Key, Value, dam::dam_mem_model> d(kBlock, 4,
                                               dam::dam_mem_model(kBlock, mem));
    points.push_back(measure("BRT", d, d.mm(), ks, searches, 0));
  }
  {
    btree::BTree<Key, Value, dam::dam_mem_model> d(kBlock,
                                                   dam::dam_mem_model(kBlock, mem));
    points.push_back(measure("B-tree", d, d.mm(), ks, searches, 0));
  }

  Table t({"structure", "insert transfers/op", "search transfers/op", "levels"}, 24);
  for (const Point& p : points) {
    char a[32], b[32];
    std::snprintf(a, sizeof a, "%.4f", p.insert_tpo);
    std::snprintf(b, sizeof b, "%.2f", p.search_tpo);
    t.add_row({p.name, a, b, p.levels ? std::to_string(p.levels) : "-"});
  }
  t.print();
  std::printf("\nexpected shape: inserts get more expensive and searches cheaper"
              " monotonically as g grows; g=B approaches the B-tree row.\n");
  return 0;
}
