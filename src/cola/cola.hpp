// Cache-oblivious lookahead array (COLA) — the paper's Section 3 and the
// implementation its Section 4 benchmarks (the "g-COLA" with growth factor g
// and pointer density p).
//
// Structure. Level 0 holds 1 element; level l > 0 holds up to
// 2(g-1)g^(l-1) real elements plus floor(2p(g-1)g^(l-1)) redundant elements
// (lookahead pointers sampling level l+1). Levels are stored contiguously
// and each level keeps its occupied slots right-justified (paper Section 4),
// which is what enables the "prepend" merge: when everything being merged
// into a level sorts before the level's current contents, the existing
// elements do not move — the mechanism behind Figure 5's descending-order
// advantage.
//
// Inserts. A level is full after it has received g-1 merges. An insert that
// cannot go straight into level 0 merges levels 0..t-1 plus the new element
// into the first non-full level t (one cascading pass: O(k) work and O(k/B)
// transfers for k items, Lemma 19 generalized to growth g as in the
// cache-aware tradeoff of Section 3). With g = 2 and p > 0 this is the COLA
// (O((log N)/B) amortized insert, O(log N) search, Lemmas 19-20); with p = 0
// it is the "basic COLA" (O(log^2 N) search); with g = Theta(B^eps) it
// matches the B^eps-tree bounds (see lookahead_array.hpp).
//
// Searches use fractional cascading: each level stores lookahead slots
// (key + slot index in the next level) interleaved in key order, and every
// slot knows the nearest lookahead slot at-or-left and at-or-right of it
// (the paper's "duplicate lookahead pointers" folded into the 32-byte
// element padding). A search therefore examines a constant-size window per
// level after the first.
//
// Semantics. insert() is an upsert (newest wins; older duplicates are
// discarded during merges). erase() is a blind tombstone — an extension the
// paper does not cover — annihilated when a merge reaches the deepest level.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/entry.hpp"
#include "dam/mem_model.hpp"

namespace costream::cola {

struct ColaConfig {
  unsigned growth = 2;          // g >= 2
  double pointer_density = 0.1; // p in [0, 0.5]; 0 disables lookahead pointers
  bool enable_prepend = true;   // right-justified "prepend" merge fast path
                                // (paper Section 4); off only for ablations
};

struct ColaStats {
  std::uint64_t merges = 0;
  std::uint64_t batch_merges = 0;     // cascades triggered by insert_batch
  std::uint64_t prepend_merges = 0;   // merges that left the target in place
  std::uint64_t entries_merged = 0;   // real entries written by merges
  std::uint64_t tombstones_dropped = 0;
  std::uint64_t duplicates_dropped = 0;
};

template <class K = Key, class V = Value, class MM = dam::null_mem_model>
class Gcola {
 public:
  static constexpr std::uint32_t kNoIdx = 0xffffffffu;

  explicit Gcola(ColaConfig cfg = ColaConfig{}, MM mm = MM{})
      : cfg_(cfg), mm_(std::move(mm)) {
    if (cfg_.growth < 2) throw std::invalid_argument("cola: growth factor must be >= 2");
    if (cfg_.pointer_density < 0.0 || cfg_.pointer_density > 0.5) {
      throw std::invalid_argument("cola: pointer density must be in [0, 0.5]");
    }
  }

  // -- observers --------------------------------------------------------------

  const ColaConfig& config() const noexcept { return cfg_; }
  const ColaStats& stats() const noexcept { return stats_; }
  MM& mm() noexcept { return mm_; }
  std::size_t level_count() const noexcept { return levels_.size(); }

  /// Physical real entries (including not-yet-annihilated tombstones).
  std::uint64_t item_count() const noexcept {
    std::uint64_t n = 0;
    for (const Level& lv : levels_) n += lv.real_count;
    return n;
  }

  /// Real entries in one level (tests).
  std::uint64_t level_real_count(std::size_t l) const noexcept {
    return l < levels_.size() ? levels_[l].real_count : 0;
  }

  /// Bytes of slot storage across all levels (space accounting).
  std::uint64_t bytes() const noexcept {
    std::uint64_t b = 0;
    for (const Level& lv : levels_) b += lv.slots.size() * sizeof(Slot);
    return b;
  }

  std::optional<V> find(const K& key) const {
    // Window into the level being examined; kNoIdx means "whole level".
    std::uint32_t wlo = kNoIdx, whi = kNoIdx;
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      const Level& lv = levels_[l];
      if (lv.occ_begin == lv.slots.size()) {  // empty level: reset the window
        wlo = whi = kNoIdx;
        continue;
      }
      const std::uint32_t S = lv.occ_begin;
      const std::uint32_t E = static_cast<std::uint32_t>(lv.slots.size());
      std::uint32_t lo = wlo == kNoIdx ? S : std::max(wlo, S);
      std::uint32_t hi = whi == kNoIdx ? E : std::min(whi, E);

      // First index in [lo, hi) with slot key > key.
      std::uint32_t idx = level_upper_bound(l, lo, hi, key);

      if (idx > lo) {
        const Slot& pred = lv.slots[idx - 1];
        touch_slot(l, idx - 1);
        if (!pred.is_lookahead() && pred.key == key) {
          if (pred.is_tombstone()) return std::nullopt;
          return pred.value;
        }
      }
      next_window(l, idx, lo, &wlo, &whi);
    }
    return std::nullopt;
  }

  /// Visit live entries with lo_key <= key <= hi_key ascending; newest value
  /// wins, tombstoned keys are skipped.
  template <class Fn>
  void range_for_each(const K& lo_key, const K& hi_key, Fn&& fn) const {
    if (hi_key < lo_key) return;
    scan(&lo_key, &hi_key, static_cast<Fn&&>(fn));
  }

  /// Visit every live entry ascending. A dedicated unbounded scan, not a
  /// range query with sentinel bounds: std::numeric_limits<K>::min() is the
  /// smallest POSITIVE value for floating-point K and a default-constructed
  /// object for composite keys, either of which would silently drop entries.
  template <class Fn>
  void for_each(Fn&& fn) const {
    scan(nullptr, nullptr, static_cast<Fn&&>(fn));
  }

  // -- mutators ---------------------------------------------------------------

  void insert(const K& key, const V& value) { put(key, value, /*tombstone=*/false); }

  /// Blind delete (tombstone); O((log N)/B) amortized like insert.
  void erase(const K& key) { put(key, V{}, /*tombstone=*/true); }

  /// Bulk upsert (batch contract in api/dictionary.hpp): sort + dedup the
  /// run once, then execute ONE cascaded merge that carries the whole run
  /// into the shallowest level with room, instead of n independent cascades.
  /// A batch of n costs O((n + d)/B) transfers, d = displaced items — the
  /// bulk movement across block boundaries the paper's analysis is built on.
  void insert_batch(const Entry<K, V>* data, std::size_t n) {
    if (n == 0) return;
    ensure_level(0);
    std::vector<Slot>& run = scratch_batch_;
    run.clear();
    run.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      Slot s{};
      s.key = data[i].key;
      s.value = data[i].value;
      run.push_back(s);
    }
    const std::size_t before = run.size();
    sort_dedup_newest_wins(run, scratch_a_);
    stats_.duplicates_dropped += before - run.size();
    // A singleton run with room in level 0 is exactly a single insert.
    if (run.size() == 1 && !level_full(0)) {
      put(run[0].key, run[0].value, /*tombstone=*/false);
      return;
    }
    // Target selection generalizes the single-op rule: walk down from level
    // 1, folding every level that is full or too small into the cascade,
    // until a level can absorb the run plus everything displaced above it.
    std::uint64_t carried = run.size() + levels_[0].real_count;
    std::size_t t = 1;
    while (true) {
      if (t < levels_.size()) {
        if (!level_full(t) && levels_[t].real_count + carried <= real_cap(t)) break;
        carried += levels_[t].real_count;
        ++t;
      } else if (carried <= real_cap(t)) {
        break;
      } else {
        ++t;
      }
    }
    ensure_level(t);
    ++stats_.batch_merges;
    cascade_into(t, run);
  }

  /// Build from entries sorted ascending by strictly increasing key,
  /// replacing the current contents. Places everything in the shallowest
  /// level that fits (one sequential write, O(n/B) transfers) and rebuilds
  /// the lookahead chain — the COLA analogue of a B-tree bulk load.
  void bulk_load(const std::vector<Entry<K, V>>& sorted) {
    levels_.clear();
    next_base_ = 0;
    std::size_t t = 0;
    while (real_cap(t) < sorted.size()) ++t;
    ensure_level(t);
    std::vector<Slot> content;
    content.reserve(sorted.size());
    for (const Entry<K, V>& e : sorted) {
      Slot s{};
      s.key = e.key;
      s.value = e.value;
      content.push_back(s);
    }
    write_level(t, content);
    levels_[t].real_count = sorted.size();
    // Mark the level full so future merges cascade past it correctly.
    levels_[t].fills = cfg_.growth - 1;
    for (std::size_t l = t; l-- > 1;) rebuild_lookahead(l);
    stats_.entries_merged += sorted.size();
  }

  // -- verification -----------------------------------------------------------

  /// Structural invariants; throws std::logic_error on violation. O(total).
  void check_invariants() const {
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      const Level& lv = levels_[l];
      if (lv.slots.size() != real_cap(l) + la_cap(l)) {
        throw std::logic_error("cola: level array size mismatch");
      }
      if (lv.fills >= cfg_.growth) throw std::logic_error("cola: fills out of range");
      std::uint64_t reals = 0, las = 0;
      std::uint32_t last_la = kNoIdx;
      for (std::uint32_t i = lv.occ_begin; i < lv.slots.size(); ++i) {
        const Slot& s = lv.slots[i];
        if (i > lv.occ_begin) {
          const Slot& p = lv.slots[i - 1];
          if (s.key < p.key) throw std::logic_error("cola: level unsorted");
          // Equal keys: any lookahead slots (there may be two — the next
          // level can hold both a real and a lookahead with that key) must
          // precede the single real slot, i.e. nothing follows a real.
          if (s.key == p.key && !p.is_lookahead()) {
            throw std::logic_error("cola: bad duplicate ordering in level");
          }
        }
        if (s.is_lookahead()) {
          ++las;
          last_la = i;
          if (l + 1 >= levels_.size()) throw std::logic_error("cola: lookahead at last level");
          const Level& nxt = levels_[l + 1];
          const std::uint32_t tgt = s.target;
          if (tgt < nxt.occ_begin || tgt >= nxt.slots.size()) {
            throw std::logic_error("cola: lookahead target out of range");
          }
          if (nxt.slots[tgt].key != s.key) {
            throw std::logic_error("cola: lookahead key mismatch");
          }
        } else {
          ++reals;
        }
        if (s.left_la != last_la) throw std::logic_error("cola: left_la wrong");
      }
      // Validate right_la with a reverse sweep.
      std::uint32_t next_la = kNoIdx;
      for (std::uint32_t i = static_cast<std::uint32_t>(lv.slots.size()); i-- > lv.occ_begin;) {
        const Slot& s = lv.slots[i];
        if (s.is_lookahead()) next_la = i;
        if (s.right_la != next_la) throw std::logic_error("cola: right_la wrong");
      }
      if (reals != lv.real_count) throw std::logic_error("cola: real count drift");
      if (reals > real_cap(l)) throw std::logic_error("cola: level overfull");
      if (las > la_cap(l)) throw std::logic_error("cola: too many lookahead slots");
      // Real keys are unique within a level.
      for (std::uint32_t i = lv.occ_begin; i + 1 < lv.slots.size(); ++i) {
        if (!lv.slots[i].is_lookahead() && !lv.slots[i + 1].is_lookahead() &&
            lv.slots[i].key == lv.slots[i + 1].key) {
          throw std::logic_error("cola: duplicate real key in level");
        }
      }
    }
  }

 private:
  enum : std::uint32_t { kFlagLookahead = 1u, kFlagTombstone = 2u };

  struct Slot {
    K key{};
    V value{};
    std::uint32_t left_la = kNoIdx;   // nearest lookahead slot at-or-left
    std::uint32_t right_la = kNoIdx;  // nearest lookahead slot at-or-right
    std::uint32_t flags = 0;
    std::uint32_t target = kNoIdx;    // lookahead slots: slot index in next level

    bool is_lookahead() const noexcept { return (flags & kFlagLookahead) != 0; }
    bool is_tombstone() const noexcept { return (flags & kFlagTombstone) != 0; }
  };

  struct Level {
    std::vector<Slot> slots;      // physical array; occupied = [occ_begin, size)
    std::uint32_t occ_begin = 0;  // == slots.size() when empty
    std::uint32_t fills = 0;      // merges received since last emptied
    std::uint64_t real_count = 0;
    std::uint64_t base_offset = 0;  // logical address of slots[0]
  };

  // -- geometry ---------------------------------------------------------------

  std::uint64_t real_cap(std::size_t l) const noexcept {
    if (l == 0) return 1;
    std::uint64_t c = 2 * (cfg_.growth - 1);
    for (std::size_t i = 1; i < l; ++i) c *= cfg_.growth;
    return c;
  }

  // Paper Section 4: level l carries floor(2p(g-1)g^(l-1)) redundant
  // elements, which equals floor(p * real_cap(l)).
  std::uint64_t la_cap(std::size_t l) const noexcept {
    return static_cast<std::uint64_t>(cfg_.pointer_density *
                                      static_cast<double>(real_cap(l)));
  }

  void ensure_level(std::size_t l) {
    while (levels_.size() <= l) {
      const std::size_t i = levels_.size();
      Level lv;
      lv.slots.assign(real_cap(i) + la_cap(i), Slot{});
      lv.occ_begin = static_cast<std::uint32_t>(lv.slots.size());
      lv.base_offset = next_base_;
      next_base_ += lv.slots.size() * sizeof(Slot);
      levels_.push_back(std::move(lv));
    }
  }

  bool level_full(std::size_t l) const noexcept {
    if (l >= levels_.size()) return false;
    if (l == 0) return levels_[0].real_count >= 1;
    return levels_[l].fills >= cfg_.growth - 1;
  }

  // -- DAM accounting ---------------------------------------------------------

  void touch_slot(std::size_t l, std::uint32_t i) const {
    mm_.touch(levels_[l].base_offset + static_cast<std::uint64_t>(i) * sizeof(Slot),
              sizeof(Slot));
  }

  void touch_region(std::size_t l, std::uint32_t i, std::uint64_t n, bool write) const {
    if (n == 0) return;
    const std::uint64_t off =
        levels_[l].base_offset + static_cast<std::uint64_t>(i) * sizeof(Slot);
    if (write) {
      mm_.touch_write(off, n * sizeof(Slot));
    } else {
      mm_.touch(off, n * sizeof(Slot));
    }
  }

  // -- search helpers ---------------------------------------------------------

  std::uint32_t level_upper_bound(std::size_t l, std::uint32_t lo, std::uint32_t hi,
                                  const K& key) const {
    const Level& lv = levels_[l];
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      touch_slot(l, mid);
      if (key < lv.slots[mid].key) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  /// Derive the next level's window from position `idx` (first slot with key
  /// greater than the probe) and the predecessor at idx-1 (if >= lo).
  void next_window(std::size_t l, std::uint32_t idx, std::uint32_t lo,
                   std::uint32_t* wlo, std::uint32_t* whi) const {
    const Level& lv = levels_[l];
    const std::uint32_t E = static_cast<std::uint32_t>(lv.slots.size());
    *wlo = *whi = kNoIdx;
    if (idx > lo) {
      const std::uint32_t la = lv.slots[idx - 1].left_la;
      if (la != kNoIdx) *wlo = lv.slots[la].target;
    }
    if (idx < E) {
      const std::uint32_t ra = lv.slots[idx].right_la;
      if (ra != kNoIdx) *whi = lv.slots[ra].target;
    }
  }

  /// First real (non-lookahead) slot at index >= i; kNoIdx past the end.
  std::uint32_t advance_real(std::size_t l, std::uint32_t i) const {
    const Level& lv = levels_[l];
    for (; i < lv.slots.size(); ++i) {
      touch_slot(l, i);
      if (i >= lv.occ_begin && !lv.slots[i].is_lookahead()) return i;
    }
    return kNoIdx;
  }

  /// Ordered multi-level scan; null bounds mean unbounded on that side.
  template <class Fn>
  void scan(const K* lo_key, const K* hi_key, Fn&& fn) const {
    // Per-level cursors positioned at the first real slot with key >= lo_key
    // (or the first real slot overall when unbounded below).
    std::vector<std::uint32_t> cur(levels_.size());
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      const Level& lv = levels_[l];
      const std::uint32_t S = lv.occ_begin;
      const std::uint32_t E = static_cast<std::uint32_t>(lv.slots.size());
      std::uint32_t a = S, b = E;
      while (lo_key != nullptr && a < b) {
        const std::uint32_t mid = a + (b - a) / 2;
        touch_slot(l, mid);
        if (lv.slots[mid].key < *lo_key) {
          a = mid + 1;
        } else {
          b = mid;
        }
      }
      cur[l] = advance_real(l, a);
    }
    while (true) {
      // Pick the smallest key among cursors; ties resolved to the smallest
      // level index (the newest copy).
      std::size_t best = levels_.size();
      for (std::size_t l = 0; l < levels_.size(); ++l) {
        if (cur[l] == kNoIdx) continue;
        const K& k = levels_[l].slots[cur[l]].key;
        if (hi_key != nullptr && *hi_key < k) {
          cur[l] = kNoIdx;
          continue;
        }
        if (best == levels_.size() || k < levels_[best].slots[cur[best]].key) best = l;
      }
      if (best == levels_.size()) return;
      const Slot& s = levels_[best].slots[cur[best]];
      const K k = s.key;
      if (!s.is_tombstone()) fn(k, s.value);
      // Consume this key from every level (older copies are shadowed).
      for (std::size_t l = 0; l < levels_.size(); ++l) {
        if (cur[l] != kNoIdx && levels_[l].slots[cur[l]].key == k) {
          cur[l] = advance_real(l, cur[l] + 1);
        }
      }
    }
  }

  // -- insertion --------------------------------------------------------------

  void put(const K& key, const V& value, bool tombstone) {
    ensure_level(0);
    if (!level_full(0)) {
      Level& l0 = levels_[0];
      l0.occ_begin = static_cast<std::uint32_t>(l0.slots.size() - 1);
      Slot& s = l0.slots[l0.occ_begin];
      s = Slot{};
      s.key = key;
      s.value = value;
      s.flags = tombstone ? kFlagTombstone : 0u;
      l0.real_count = 1;
      l0.fills = 1;
      touch_region(0, l0.occ_begin, 1, /*write=*/true);
      return;
    }

    // Find the first non-full target level t; merge levels 0..t-1 + the new
    // element into it.
    std::size_t t = 1;
    while (level_full(t)) ++t;
    ensure_level(t);
    merge_into(t, key, value, tombstone);
  }

  /// Merge `newer` (takes precedence) with level l's real entries — read in
  /// place, lookahead slots skipped inline, no extraction copy — into `out`.
  void merge_level_into(const std::vector<Slot>& newer, std::size_t l,
                        std::vector<Slot>& out) {
    const Level& lv = levels_[l];
    touch_region(l, lv.occ_begin,
                 static_cast<std::uint64_t>(lv.slots.size()) - lv.occ_begin,
                 /*write=*/false);
    out.clear();
    out.reserve(newer.size() + lv.real_count);
    std::size_t a = 0;
    std::uint32_t i = lv.occ_begin;
    const std::uint32_t E = static_cast<std::uint32_t>(lv.slots.size());
    while (true) {
      while (i < E && lv.slots[i].is_lookahead()) ++i;
      if (i >= E || a >= newer.size()) break;
      const Slot& s = lv.slots[i];
      if (newer[a].key < s.key) {
        out.push_back(newer[a++]);
      } else if (s.key < newer[a].key) {
        out.push_back(s);
        ++i;
      } else {
        out.push_back(newer[a++]);
        ++i;  // shadowed older copy
        ++stats_.duplicates_dropped;
      }
    }
    while (a < newer.size()) out.push_back(newer[a++]);
    for (; i < E; ++i) {
      if (!lv.slots[i].is_lookahead()) out.push_back(lv.slots[i]);
    }
  }

  std::size_t deepest_nonempty() const noexcept {
    for (std::size_t l = levels_.size(); l-- > 0;) {
      if (levels_[l].real_count > 0) return l;
    }
    return 0;
  }

  void merge_into(std::size_t t, const K& key, const V& value, bool tombstone) {
    std::vector<Slot>& acc = scratch_a_;
    acc.clear();
    Slot s{};
    s.key = key;
    s.value = value;
    s.flags = tombstone ? kFlagTombstone : 0u;
    acc.push_back(s);
    cascade_into(t, acc);
  }

  /// Merge `acc` (the newest run: sorted, unique keys) together with levels
  /// 0..t-1 into level t — the shared engine behind the single-op cascade
  /// and insert_batch. `acc` must not alias scratch_b_ (the cascade's merge
  /// target) or scratch_content_ (full_merge_into's output).
  void cascade_into(std::size_t t, std::vector<Slot>& acc) {
    ++stats_.merges;
    // Cascade: fold in levels 0..t-1 from newest to oldest. CPU cost O(k);
    // transfer cost: each source level is read once, the target written once
    // (the paper's merge pattern).
    std::vector<Slot>& tmp = scratch_b_;
    for (std::size_t l = 0; l < t; ++l) {
      if (levels_[l].real_count == 0) continue;
      merge_level_into(acc, l, tmp);
      acc.swap(tmp);
    }

    Level& target = levels_[t];
    // Tombstones can be discarded once no older copy of their key can exist,
    // i.e. when merging into (or past) the deepest level holding real data.
    const bool drop_tombstones = t >= deepest_nonempty();

    // Prepend fast path: everything incoming sorts strictly before the
    // target's current occupied region, so nothing in the target moves.
    if (cfg_.enable_prepend && target.occ_begin < target.slots.size() && !acc.empty() &&
        acc.back().key < target.slots[target.occ_begin].key &&
        acc.size() <= target.occ_begin) {
      prepend_into(t, acc, drop_tombstones);
    } else {
      full_merge_into(t, acc, drop_tombstones);
    }

    // Fullness tracks merge count AND occupancy: a batch cascade can deliver
    // several merges' worth of items at once, so a level must also read as
    // full once another worst-case single-op cascade (< real_cap/(g-1)
    // items) could overflow it. For pure single-op streams the occupancy
    // term never exceeds the merge count, so behavior is unchanged there.
    const std::uint64_t cap = real_cap(t);
    const std::uint64_t occ_fills =
        (target.real_count * (cfg_.growth - 1) + cap - 1) / cap;
    target.fills = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        cfg_.growth - 1,
        std::max<std::uint64_t>(target.fills + 1, occ_fills)));

    // Clear the drained levels and rebuild their lookahead-only contents.
    for (std::size_t l = 0; l < t; ++l) {
      Level& lv = levels_[l];
      lv.occ_begin = static_cast<std::uint32_t>(lv.slots.size());
      lv.fills = 0;
      lv.real_count = 0;
    }
    for (std::size_t l = t; l-- > 1;) rebuild_lookahead(l);
  }

  /// Drop tombstones from `run` in place (used when merging into the deepest
  /// data so no older copy can resurface).
  void strip_tombstones(std::vector<Slot>& run) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < run.size(); ++r) {
      if (run[r].is_tombstone()) {
        ++stats_.tombstones_dropped;
        continue;
      }
      run[w++] = run[r];
    }
    run.resize(w);
  }

  /// Write `incoming` immediately left of the target's occupied region.
  void prepend_into(std::size_t t, std::vector<Slot>& incoming, bool drop_tombstones) {
    if (drop_tombstones) strip_tombstones(incoming);
    ++stats_.prepend_merges;
    Level& lv = levels_[t];
    const std::uint32_t new_begin = lv.occ_begin - static_cast<std::uint32_t>(incoming.size());
    // The first lookahead at-or-right of the new region is the old region's
    // leading lookahead chain head.
    const std::uint32_t old_first_ra =
        lv.occ_begin < lv.slots.size() ? lv.slots[lv.occ_begin].right_la : kNoIdx;
    std::uint32_t i = new_begin;
    for (Slot& s : incoming) {
      s.flags &= ~kFlagLookahead;
      s.left_la = kNoIdx;  // no lookahead slots among the incoming entries
      s.right_la = old_first_ra;
      lv.slots[i++] = s;
    }
    touch_region(t, new_begin, incoming.size(), /*write=*/true);
    lv.occ_begin = new_begin;
    lv.real_count += incoming.size();
    stats_.entries_merged += incoming.size();
  }

  /// Full rewrite of the target level: merge incoming entries with the
  /// target's existing real entries, keep its existing lookahead slots
  /// (their targets in level t+1 are unchanged), and re-justify right. One
  /// fused pass over the target's slot array — the old slots are sorted with
  /// lookahead slots interleaved before equal-key reals, so a sequential
  /// walk merges reals and re-emits lookahead slots in their final order
  /// without the extract / merge / interleave copies.
  void full_merge_into(std::size_t t, std::vector<Slot>& incoming, bool drop_tombstones) {
    Level& lv = levels_[t];
    touch_region(t, lv.occ_begin,
                 static_cast<std::uint64_t>(lv.slots.size()) - lv.occ_begin,
                 /*write=*/false);
    std::vector<Slot>& content = scratch_content_;
    content.clear();
    content.reserve((lv.slots.size() - lv.occ_begin) + incoming.size());
    std::uint64_t reals = 0;
    std::size_t a = 0;
    std::uint32_t i = lv.occ_begin;
    const std::uint32_t E = static_cast<std::uint32_t>(lv.slots.size());
    const auto push_real = [&](const Slot& s) {
      if (drop_tombstones && s.is_tombstone()) {
        ++stats_.tombstones_dropped;
        return;
      }
      content.push_back(s);
      ++reals;
    };
    while (i < E && a < incoming.size()) {
      const Slot& s = lv.slots[i];
      if (s.is_lookahead()) {
        // Equal keys keep the lookahead before the real it shadows.
        if (s.key <= incoming[a].key) {
          content.push_back(s);
          ++i;
        } else {
          push_real(incoming[a++]);
        }
      } else if (incoming[a].key < s.key) {
        push_real(incoming[a++]);
      } else if (s.key < incoming[a].key) {
        push_real(s);
        ++i;
      } else {
        push_real(incoming[a++]);
        ++i;  // shadowed older copy
        ++stats_.duplicates_dropped;
      }
    }
    for (; i < E; ++i) {
      const Slot& s = lv.slots[i];
      if (s.is_lookahead()) {
        content.push_back(s);
      } else {
        push_real(s);
      }
    }
    while (a < incoming.size()) push_real(incoming[a++]);

    write_level(t, content);
    lv.real_count = reals;
    stats_.entries_merged += reals;
  }

  /// Right-justify `content` into level l's array and recompute the
  /// left_la/right_la chains.
  void write_level(std::size_t l, const std::vector<Slot>& content) {
    Level& lv = levels_[l];
    assert(content.size() <= lv.slots.size());
    const std::uint32_t begin =
        static_cast<std::uint32_t>(lv.slots.size() - content.size());
    std::uint32_t last_la = kNoIdx;
    for (std::uint32_t i = 0; i < content.size(); ++i) {
      Slot s = content[i];
      if (s.is_lookahead()) last_la = begin + i;
      s.left_la = last_la;
      lv.slots[begin + i] = s;
    }
    std::uint32_t next_la = kNoIdx;
    for (std::uint32_t i = static_cast<std::uint32_t>(lv.slots.size()); i-- > begin;) {
      if (lv.slots[i].is_lookahead()) next_la = i;
      lv.slots[i].right_la = next_la;
    }
    lv.occ_begin = begin;
    touch_region(l, begin, content.size(), /*write=*/true);
  }

  /// Rebuild level l as lookahead-only samples of level l+1 (level l's real
  /// contents have just been drained by a merge).
  void rebuild_lookahead(std::size_t l) {
    Level& lv = levels_[l];
    assert(lv.real_count == 0);
    const std::uint64_t cap = la_cap(l);
    if (cap == 0 || l + 1 >= levels_.size()) {
      lv.occ_begin = static_cast<std::uint32_t>(lv.slots.size());
      return;
    }
    const Level& nxt = levels_[l + 1];
    const std::uint64_t navail =
        static_cast<std::uint64_t>(nxt.slots.size()) - nxt.occ_begin;
    if (navail == 0) {
      lv.occ_begin = static_cast<std::uint32_t>(lv.slots.size());
      return;
    }
    const std::uint64_t take = std::min<std::uint64_t>(cap, navail);
    const std::uint64_t stride = navail / take;
    std::vector<Slot>& content = scratch_content_;
    content.clear();
    content.reserve(take);
    for (std::uint64_t i = 0; i < take; ++i) {
      const std::uint32_t tgt =
          nxt.occ_begin + static_cast<std::uint32_t>(i * stride + stride - 1);
      touch_slot(l + 1, tgt);
      Slot s{};
      s.key = nxt.slots[tgt].key;
      s.target = tgt;
      s.flags = kFlagLookahead;
      content.push_back(s);
    }
    write_level(l, content);
  }

  ColaConfig cfg_;
  std::vector<Level> levels_;
  std::uint64_t next_base_ = 0;
  ColaStats stats_;
  mutable MM mm_;
  // Merge scratch, reused across inserts so the steady-state insert and
  // batch paths perform zero heap allocations (capacities grow to the
  // high-water mark of the deepest cascade seen, then stay).
  std::vector<Slot> scratch_a_, scratch_b_, scratch_content_, scratch_batch_;
};

/// The paper's headline configuration: growth 2, pointer density 0.1.
template <class K = Key, class V = Value, class MM = dam::null_mem_model>
using Cola = Gcola<K, V, MM>;

/// Basic COLA (Section 3 before fractional cascading): no lookahead
/// pointers, O(log^2 N) searches.
template <class K = Key, class V = Value, class MM = dam::null_mem_model>
Gcola<K, V, MM> make_basic_cola(unsigned growth = 2, MM mm = MM{}) {
  return Gcola<K, V, MM>(ColaConfig{growth, 0.0}, std::move(mm));
}

}  // namespace costream::cola
