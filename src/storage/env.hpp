// StorageEnv: the abstract file-system surface the durable tier is written
// against. One directory of flat files; the operations are exactly the
// primitives the WAL / segment / manifest protocols need, with POSIX crash
// semantics spelled out so the fault-injection env can model them:
//
//   * append(file) makes bytes VISIBLE but not DURABLE; sync() on the file
//     makes every byte appended so far durable (unless the device lies).
//     After a crash a file keeps its synced prefix plus an arbitrary —
//     possibly torn, possibly bit-flipped — prefix of the unsynced tail.
//   * create / rename_file / remove_file / truncate_file change the
//     NAMESPACE, and the namespace is durable only up to the last
//     sync_dir(): a crash reverts un-synced name operations (a renamed
//     manifest snaps back to its temp name, an un-synced create vanishes).
//   * read() may return fewer bytes than asked (short read) — use
//     read_fully. Any operation may throw TransientIOError; with_retry
//     wraps an operation in bounded retry + exponential backoff, sleeping
//     through the env so the fault env can count instead of wait.
//
// Implementations: PosixEnv (posix_env.hpp, the production path) and
// FaultInjectionEnv (fault_env.hpp, the deterministic crash/fault model
// the recovery fuzz drives).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace costream::storage {

class WritableFile {
 public:
  virtual ~WritableFile() = default;
  /// Append `n` bytes; visible to readers on return, durable only after
  /// sync(). Throws IOError / TransientIOError / CrashError.
  virtual void append(const void* data, std::size_t n) = 0;
  /// fsync: every byte appended so far is durable on return — unless the
  /// env is configured to lie (fault injection), which is precisely the
  /// failure mode the recovery protocol must survive.
  virtual void sync() = 0;
  /// Bytes appended so far (writer-side bookkeeping, no device access).
  virtual std::uint64_t size() const noexcept = 0;
  /// Shrink the file to `size` bytes — the WAL's exactly-once unwind for a
  /// record whose append/sync failed after bytes reached the file. Only
  /// ever called with a size <= the current size.
  virtual void truncate_to(std::uint64_t size) = 0;
};

class RandomReadFile {
 public:
  virtual ~RandomReadFile() = default;
  /// Read up to `n` bytes at `offset`; returns bytes read (0 at EOF).
  /// Short reads are legal — callers loop (read_fully).
  virtual std::size_t read(std::uint64_t offset, void* buf, std::size_t n) = 0;
  virtual std::uint64_t size() = 0;
};

class StorageEnv {
 public:
  virtual ~StorageEnv() = default;

  /// Create (truncating if present) a file for appending. The NAME is
  /// durable only after sync_dir().
  virtual std::unique_ptr<WritableFile> create(const std::string& name) = 0;
  virtual std::unique_ptr<RandomReadFile> open_read(const std::string& name) = 0;
  virtual bool exists(const std::string& name) = 0;
  /// All file names in the directory, unordered.
  virtual std::vector<std::string> list() = 0;
  /// Atomic replace (POSIX rename). Durable after sync_dir().
  virtual void rename_file(const std::string& from, const std::string& to) = 0;
  virtual void remove_file(const std::string& name) = 0;
  /// Shrink a file to `size` bytes (recovery discarding a torn WAL tail).
  virtual void truncate_file(const std::string& name, std::uint64_t size) = 0;
  /// Commit every namespace operation so far (fsync of the directory).
  virtual void sync_dir() = 0;
  /// Backoff hook for with_retry: real envs sleep, the fault env counts.
  virtual void sleep_us(std::uint64_t /*us*/) {}
};

/// Read exactly `n` bytes at `offset`, looping over short reads. Throws
/// CorruptionError on EOF before `n` bytes — every caller is decoding a
/// structure whose length it already knows, so a short file IS corruption.
inline void read_fully(RandomReadFile& f, std::uint64_t offset, void* buf,
                       std::size_t n) {
  unsigned char* p = static_cast<unsigned char*>(buf);
  while (n > 0) {
    const std::size_t got = f.read(offset, p, n);
    if (got == 0) throw CorruptionError("storage: unexpected end of file");
    p += got;
    offset += got;
    n -= got;
  }
}

/// Run `fn`, retrying on TransientIOError with exponential backoff (via
/// env.sleep_us, so fault injection counts the sleeps instead of taking
/// them). Rethrows the last transient error once `attempts` are exhausted;
/// every other exception propagates immediately.
template <class Fn>
auto with_retry(StorageEnv& env, Fn&& fn, int attempts = 6) {
  std::uint64_t backoff_us = 100;
  for (int a = 0;; ++a) {
    try {
      return fn();
    } catch (const TransientIOError&) {
      if (a + 1 >= attempts) throw;
      env.sleep_us(backoff_us);
      backoff_us *= 2;
    }
  }
}

}  // namespace costream::storage
