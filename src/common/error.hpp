// Typed error hierarchy for the durable tier and the serialization layer.
//
// The split matters operationally: CorruptionError means bytes failed an
// integrity check (a CRC, magic, or structural validation) — retrying will
// not help and the caller must decide between strict failure and read-only
// degradation; IOError means the device said no; TransientIOError is the
// retryable subset (storage::with_retry backs off and retries those);
// CrashError is the fault-injection env's scheduled power-cut, and
// ReadOnlyError is the surface a degraded dictionary presents to mutators.
#pragma once

#include <stdexcept>
#include <string>

namespace costream {

/// Data failed an integrity check: bad magic, CRC mismatch, truncation,
/// or structurally invalid content. Never retryable.
class CorruptionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A storage operation failed permanently (or exhausted its retries).
class IOError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A storage operation failed transiently (EIO-style); the caller may
/// retry with backoff — see storage::with_retry.
class TransientIOError : public IOError {
 public:
  using IOError::IOError;
};

/// The fault-injection environment reached its scheduled crash point: the
/// simulated machine has lost power. Every subsequent operation on that
/// env throws until the harness applies the crash and reopens.
class CrashError : public IOError {
 public:
  using IOError::IOError;
};

/// The dictionary recovered in read-only mode after unrecoverable
/// corruption; mutations are rejected with this error, reads still work.
class ReadOnlyError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace costream
