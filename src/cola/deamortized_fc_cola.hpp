// Deamortized COLA with lookahead pointers — paper Section 3,
// Lemma 23 / Theorem 24 — generalized to a runtime growth factor g.
//
// The basic deamortization (deamortized_cola.hpp) bounds every insert by
// O(g log_g N) moves but loses fractional cascading: its queries binary-
// search every array of every level. Theorem 24 restores O(1)-probe-per-
// level queries by maintaining lookahead pointers *incrementally*, using
// shadow arrays so that "from the viewpoint of a query, no level will appear
// to be in the middle of a merge":
//
//  * merges copy the g full arrays of level k into a hidden array of level
//    k+1, a budgeted number of items per insert;
//  * when a merge completes, lookahead pointers (every 8th element) are
//    copied back into level k — also budgeted, also into a hidden buffer;
//  * each completed artifact flips visible atomically; until the fresh
//    pointer buffer is ready, queries keep using the previous one (or fall
//    back to a plain binary search for that level), never a partial one.
//
// The per-insert budget covers merged items plus copied pointers, so the
// worst-case insert stays O(g log_g N) moves (Theorem 24 at g = 2), and
// searches probe O(1) cells in each level whose pointer buffer is current.
//
// Documented deviation from the paper's construction: lookahead pointers
// live in per-level side buffers (double-buffered, epoch-validated) rather
// than being interleaved into the item arrays as the amortized
// implementation does. Interleaving under incremental rebuilding is exactly
// what the paper's three-array shadow dance accomplishes; the side-buffer
// form preserves the observable guarantees — bounded windows into the next
// level's item arrays, atomic visibility — with simpler state. DESIGN.md
// records this substitution.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/entry.hpp"
#include "common/loser_tree.hpp"
#include "common/snapshot.hpp"
#include "common/span.hpp"
#include "dam/mem_model.hpp"

namespace costream::cola {

struct DeamortizedFcStats {
  std::uint64_t inserts = 0;
  std::uint64_t merges_completed = 0;
  std::uint64_t pointer_copies = 0;
  std::uint64_t total_moves = 0;           // merged items + copied pointers
  std::uint64_t max_moves_per_insert = 0;  // Theorem 24's bound under test
  std::uint64_t windowed_level_searches = 0;
  std::uint64_t full_level_searches = 0;
};

template <class K = Key, class V = Value, class MM = dam::null_mem_model>
class DeamortizedFcCola {
 public:
  static constexpr int kSampleStride = 8;  // paper: every eighth element

  explicit DeamortizedFcCola(unsigned growth = 2, MM mm = MM{})
      : growth_(growth), mm_(std::move(mm)) {
    if (growth_ < 2 || growth_ > 256) {
      throw std::invalid_argument("fc-deam: growth must be in [2, 256]");
    }
    ensure_level(0);
  }
  explicit DeamortizedFcCola(MM mm) : DeamortizedFcCola(2, std::move(mm)) {}

  unsigned growth() const noexcept { return growth_; }
  const DeamortizedFcStats& stats() const noexcept { return stats_; }
  MM& mm() noexcept { return mm_; }
  std::size_t level_count() const noexcept { return levels_.size(); }

  void insert(const K& key, const V& value) { put(key, value, false); }
  void erase(const K& key) { put(key, V{}, true); }

  /// Bulk upsert (batch contract in api/dictionary.hpp). As with the basic
  /// deamortized COLA, the worst-case move budget forbids shortcutting the
  /// level walk, so the batch is normalized once (sort + newest-wins dedup)
  /// and fed through the budgeted path.
  void insert_batch(Span<Entry<K, V>> batch) {
    if (batch.empty()) return;
    std::vector<Entry<K, V>>& run = batch_scratch_;
    run.assign(batch.begin(), batch.end());
    sort_dedup_newest_wins(run, batch_sort_scratch_);
    for (const Entry<K, V>& e : run) put(e.key, e.value, false);
  }

  /// Bulk blind delete (batch contract in api/dictionary.hpp). Tombstones
  /// are items to the budgeted machinery: each normalized op pays the same
  /// (g+1)*k + 4 budget covering merged items AND copied pointers, so
  /// Theorem 24's worst-case move bound is unchanged for erase-heavy feeds.
  void erase_batch(Span<K> keys) {
    if (keys.empty()) return;
    std::vector<Op<K, V>>& run = op_scratch_;
    run.clear();
    run.reserve(keys.size());
    for (const K& k : keys) run.push_back(Op<K, V>::del(k));
    sort_dedup_newest_wins(run, op_sort_scratch_);
    for (const Op<K, V>& o : run) put(o.key, o.value, true);
  }

  /// Mixed put/erase batch: normalize once (the LAST op on a key wins),
  /// then feed the budgeted path op by op — the worst-case bound forbids
  /// shortcutting the level walk, so batching buys dedup and sorted input.
  void apply_batch(Span<Op<K, V>> ops) {
    if (ops.empty()) return;
    std::vector<Op<K, V>>& run = op_scratch_;
    run.assign(ops.begin(), ops.end());
    sort_dedup_newest_wins(run, op_sort_scratch_);
    for (const Op<K, V>& o : run) put(o.key, o.value, o.erase);
  }

  // Deprecated pointer-form batch shims (one release; migration note in
  // api/dictionary.hpp — CI's deprecated-api lint rejects in-repo callers).
  void insert_batch(const Entry<K, V>* data, std::size_t n) {
    insert_batch(Span<Entry<K, V>>(data, n));
  }
  void erase_batch(const K* keys, std::size_t n) {
    erase_batch(Span<K>(keys, n));
  }
  void apply_batch(const Op<K, V>* ops, std::size_t n) {
    apply_batch(Span<Op<K, V>>(ops, n));
  }

  /// Mutation epoch: bumped by every mutator (see snapshot()).
  std::uint64_t mutation_epoch() const noexcept { return mutation_epoch_; }

  /// Point-in-time snapshot (contract in api/dictionary.hpp). The shadow/
  /// visible arrays are recycled in place by the incremental machinery, so
  /// the live contents materialize into one immutable segment, cached per
  /// mutation epoch; the handle stays valid across mutations.
  snap::Snapshot<K, V> snapshot() const {
    if (snap_cache_ && snap_epoch_ == mutation_epoch_) return snap_cache_;
    snap_cache_ = snap::materialize<K, V>(*this, mutation_epoch_);
    snap_epoch_ = mutation_epoch_;
    return snap_cache_;
  }

  std::optional<V> find(const K& key) const {
    // Per-array windows for the level being examined; refreshed from the
    // previous level's pointer buffer when it is current. The window vectors
    // are mutable scratch sized to g.
    std::vector<Window>& win = win_cur_;
    std::vector<Window>& next = win_next_;
    win.assign(growth_, Window{});
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      const Level& lv = levels_[l];
      next.assign(growth_, Window{});
      // Search arrays newest-first within the level: collect the full
      // arrays once and sort by descending seq — O(g log g), not the
      // O(g^2) of a repeated arg-max.
      auto& order = find_order_scratch_;
      order.clear();
      for (std::size_t i = 0; i < lv.arr.size(); ++i) {
        if (lv.state[i] == State::kFull) {
          order.emplace_back(lv.seq[i], static_cast<std::uint32_t>(i));
        }
      }
      std::sort(order.begin(), order.end(),
                [](const auto& x, const auto& y) { return x.first > y.first; });
      for (const auto& ord : order) {
        const std::size_t a = ord.second;
        const auto& arr = lv.arr[a];
        std::size_t lo = 0, hi = arr.size();
        if (win[a].valid && win[a].seq == lv.seq[a]) {
          lo = std::min<std::size_t>(win[a].lo, arr.size());
          hi = std::min<std::size_t>(win[a].hi, arr.size());
          ++stats_mut().windowed_level_searches;
        } else {
          ++stats_mut().full_level_searches;
        }
        touch_search(l, a, lo, hi);
        const auto first = arr.begin() + static_cast<std::ptrdiff_t>(lo);
        const auto last = arr.begin() + static_cast<std::ptrdiff_t>(hi);
        const auto it = std::lower_bound(
            first, last, key, [](const Item& e, const K& k) { return e.key < k; });
        if (it != last && it->key == key) {
          if (it->tombstone) return std::nullopt;
          return it->value;
        }
      }
      if (l + 1 < levels_.size()) derive_windows(l, key, next);
      win.swap(next);
    }
    return std::nullopt;
  }

  /// Visit live entries in [lo, hi] ascending, newest copy per key — one
  /// code path with the cursor API (bounded seek on the dictionary-owned
  /// scratch cursor, allocation-free in steady state).
  template <class Fn>
  void range_for_each(const K& lo, const K& hi, Fn&& fn) const {
    if (hi < lo) return;
    Cursor c(this, &scan_state_);
    for (c.seek(lo, hi); c.valid(); c.next()) {
      const Entry<K, V>& e = c.entry();
      fn(e.key, e.value);
    }
  }

  /// Visit every live entry ascending (dedicated unbounded scan; sentinel
  /// bounds would drop entries for floating-point or composite keys).
  template <class Fn>
  void for_each(Fn&& fn) const {
    Cursor c(this, &scan_state_);
    for (c.seek_first(); c.valid(); c.next()) {
      const Entry<K, V>& e = c.entry();
      fn(e.key, e.value);
    }
  }

  /// Lemma 21/23 invariants plus pointer-buffer consistency.
  void check_invariants() const {
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      const Level& lv = levels_[l];
      if (lv.unsafe && l + 1 < levels_.size() && levels_[l + 1].unsafe) {
        throw std::logic_error("fc-deam: adjacent unsafe levels");
      }
      for (std::size_t a = 0; a < lv.arr.size(); ++a) {
        for (std::size_t i = 1; i < lv.arr[a].size(); ++i) {
          if (!(lv.arr[a][i - 1].key < lv.arr[a][i].key)) {
            throw std::logic_error("fc-deam: array unsorted");
          }
        }
        if (lv.arr[a].size() > array_cap(l)) throw std::logic_error("fc-deam: overfull");
      }
      // Active pointer buffer, when valid, must reference a current array
      // and be sorted with in-range indices.
      const La& la = lv.la[lv.active_la];
      if (la.valid && l + 1 < levels_.size()) {
        const Level& nxt = levels_[l + 1];
        for (std::size_t i = 0; i < la.entries.size(); ++i) {
          const LaEntry& e = la.entries[i];
          if (i > 0 && la.entries[i - 1].key > e.key) {
            throw std::logic_error("fc-deam: pointer buffer unsorted");
          }
          if (e.target_array >= nxt.arr.size()) {
            throw std::logic_error("fc-deam: bad target array");
          }
          if (la.target_seq[e.target_array] == nxt.seq[e.target_array] &&
              nxt.state[e.target_array] == State::kFull) {
            if (e.index >= nxt.arr[e.target_array].size()) {
              throw std::logic_error("fc-deam: pointer index out of range");
            }
            if (nxt.arr[e.target_array][e.index].key != e.key) {
              throw std::logic_error("fc-deam: pointer key mismatch");
            }
          }
        }
      }
    }
  }

 private:
  static constexpr std::uint64_t kNoSeq = ~0ULL;

  struct Item {
    K key;
    V value;
    bool tombstone;
  };

  struct LaEntry {
    K key;
    std::uint32_t target_array;  // which array of the next level
    std::uint32_t index;         // position within that array
  };

  /// A lookahead pointer buffer into the next level. Double-buffered per
  /// level; `valid` flips only when a budgeted rebuild completes, and the
  /// buffer self-invalidates when its target arrays' sequence numbers move.
  struct La {
    std::vector<LaEntry> entries;
    std::vector<std::uint64_t> target_seq;  // per target array; kNoSeq = unset
    bool valid = false;
  };

  enum class State : std::uint8_t { kEmpty, kFull, kFilling };

  struct Window {
    bool valid = false;
    std::uint64_t seq = 0;
    std::size_t lo = 0, hi = 0;
    // Scan bookkeeping for derive_windows: whether each bound has been
    // tightened by a pointer already. Explicit flags, not sentinel values —
    // a legitimate boundary pointer (predecessor at index 0, successor at
    // the array end) must not be mistaken for "not found yet".
    bool lo_set = false, hi_set = false;
  };

  struct Level {
    std::vector<std::vector<Item>> arr;  // g arrays
    std::vector<State> state;
    std::vector<std::uint64_t> seq;
    std::vector<std::uint64_t> base;
    // In-progress g-way merge into the next level.
    bool unsafe = false;
    std::vector<std::size_t> pos;
    std::size_t target_arr = 0;
    bool drop_tombstones = false;
    // Lookahead buffers (double-buffered); rebuild state for the hidden one.
    La la[2];
    int active_la = 0;
    bool la_building = false;
    std::vector<std::size_t> la_src_pos;  // sample cursors into next level arrays
  };

  // -- cursors ----------------------------------------------------------------

  struct CurSrc {
    const Item* at = nullptr;
    const Item* end = nullptr;
  };

  /// Reusable cursor scratch; sources ordered (level ascending, fill
  /// sequence descending within a level) so the loser tree's smaller-index
  /// tie rule is exactly newest-wins.
  struct CursorState {
    std::vector<CurSrc> srcs;
    LoserTree<K> tree;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> order;
    Entry<K, V> cur{};
    bool valid = false;
    bool bounded = false;
    K hi{};
    K last{};
    bool have_last = false;
  };

 public:
  /// Resumable ordered cursor (Dictionary cursor contract in
  /// api/dictionary.hpp) over the full (queryable) arrays — the shadow
  /// machinery guarantees a cursor never observes a half-merged level, the
  /// same atomic-visibility property queries get. Any mutation invalidates
  /// the cursor until the next seek.
  class Cursor {
   public:
    Cursor() = default;

    void seek(const K& lo) { do_seek(&lo, nullptr); }
    void seek(const K& lo, const K& hi) {
      if (hi < lo) {
        st_->valid = false;
        return;
      }
      do_seek(&lo, &hi);
    }
    void seek_first() { do_seek(nullptr, nullptr); }

    bool valid() const { return st_->valid; }
    const Entry<K, V>& entry() const { return st_->cur; }

    void next() {
      CursorState& st = *st_;
      if (!st.valid) return;
      CurSrc& s = st.srcs[st.tree.top()];
      ++s.at;
      st.tree.replay(s.at != s.end, s.at != s.end ? s.at->key : K{});
      advance_to_live();
    }

   private:
    friend class DeamortizedFcCola;
    explicit Cursor(const DeamortizedFcCola* d)
        : d_(d), own_(std::make_unique<CursorState>()), st_(own_.get()) {}
    Cursor(const DeamortizedFcCola* d, CursorState* st) : d_(d), st_(st) {}

    void do_seek(const K* lo, const K* hi) {
      CursorState& st = *st_;
      const DeamortizedFcCola& d = *d_;
      st.bounded = hi != nullptr;
      if (hi != nullptr) st.hi = *hi;
      st.have_last = false;
      st.valid = false;
      st.srcs.clear();
      for (std::size_t l = 0; l < d.levels_.size(); ++l) {
        const Level& lv = d.levels_[l];
        auto& order = st.order;
        order.clear();
        for (std::size_t a = 0; a < lv.arr.size(); ++a) {
          if (lv.state[a] == State::kFull && !lv.arr[a].empty()) {
            order.emplace_back(lv.seq[a], static_cast<std::uint32_t>(a));
          }
        }
        std::sort(order.begin(), order.end(),
                  [](const auto& x, const auto& y) { return x.first > y.first; });
        for (const auto& ord : order) {
          const auto& arr = lv.arr[ord.second];
          const Item* b = arr.data();
          const Item* e = b + arr.size();
          if (lo != nullptr) {
            b = std::lower_bound(
                b, e, *lo, [](const Item& s, const K& k) { return s.key < k; });
          }
          if (b != e) st.srcs.push_back(CurSrc{b, e});
        }
      }
      st.tree.reset(st.srcs.size());
      for (std::size_t i = 0; i < st.srcs.size(); ++i) {
        st.tree.declare(i, st.srcs[i].at->key);
      }
      st.tree.build();
      advance_to_live();
    }

    void advance_to_live() {
      CursorState& st = *st_;
      while (st.tree.top_alive()) {
        CurSrc& s = st.srcs[st.tree.top()];
        const K& k = s.at->key;
        if (st.bounded && st.hi < k) break;
        const bool dup = st.have_last && !(st.last < k);
        if (!dup) {
          st.last = k;
          st.have_last = true;
          if (!s.at->tombstone) {
            st.cur.key = k;
            st.cur.value = s.at->value;
            st.valid = true;
            return;
          }
        }
        ++s.at;
        st.tree.replay(s.at != s.end, s.at != s.end ? s.at->key : K{});
      }
      st.valid = false;
    }

    const DeamortizedFcCola* d_ = nullptr;
    std::unique_ptr<CursorState> own_;
    CursorState* st_ = nullptr;
  };

  /// Detached cursor (Dictionary concept); creation allocates once, steady-
  /// state seeks and nexts allocate nothing.
  Cursor make_cursor() const { return Cursor(this); }

 private:

  DeamortizedFcStats& stats_mut() const { return const_cast<DeamortizedFcStats&>(stats_); }

  /// Capacity of one array of level l: g^l (saturating).
  std::uint64_t array_cap(std::size_t l) const noexcept {
    std::uint64_t c = 1;
    for (std::size_t i = 0; i < l; ++i) {
      if (c > (std::uint64_t{1} << 58) / growth_) return std::uint64_t{1} << 58;
      c *= growth_;
    }
    return c;
  }

  void ensure_level(std::size_t l) {
    while (levels_.size() <= l) {
      Level lv;
      const std::uint64_t cap = array_cap(levels_.size());
      lv.arr.resize(growth_);
      lv.state.assign(growth_, State::kEmpty);
      lv.seq.assign(growth_, 0);
      lv.base.resize(growth_);
      lv.pos.assign(growth_, 0);
      lv.la_src_pos.assign(growth_, 0);
      lv.la[0].target_seq.assign(growth_, kNoSeq);
      lv.la[1].target_seq.assign(growth_, kNoSeq);
      for (unsigned a = 0; a < growth_; ++a) {
        lv.base[a] = next_base_;
        next_base_ += cap * sizeof(Item);
      }
      levels_.push_back(std::move(lv));
    }
  }

  void touch_search(std::size_t l, std::size_t a, std::size_t lo, std::size_t hi) const {
    std::size_t probes = 1;
    for (std::size_t m = hi - lo; m > 1; m >>= 1) ++probes;
    for (std::size_t i = 0; i < probes; ++i) {
      mm_.touch(levels_[l].base[a] + (lo + ((hi - lo) >> (i + 1))) * sizeof(Item),
                sizeof(Item));
    }
  }

  /// Bound the next level's arrays from this level's pointer buffer:
  /// predecessor pointer -> window start, successor pointer -> window end
  /// (+stride slack, since pointers sample every 8th element).
  void derive_windows(std::size_t l, const K& key, std::vector<Window>& next) const {
    const Level& lv = levels_[l];
    const La& la = lv.la[lv.active_la];
    if (!la.valid || la.entries.empty()) return;
    const Level& nxt = levels_[l + 1];
    // Validate the buffer against the next level's current arrays.
    for (std::size_t a = 0; a < nxt.arr.size(); ++a) {
      if (la.target_seq[a] != kNoSeq &&
          (nxt.state[a] != State::kFull || la.target_seq[a] != nxt.seq[a])) {
        return;  // stale: caller falls back to full binary search
      }
    }
    const auto it = std::upper_bound(
        la.entries.begin(), la.entries.end(), key,
        [](const K& k, const LaEntry& e) { return k < e.key; });
    // Predecessor pointers give inclusive lower bounds per target array;
    // successor pointers give exclusive upper bounds.
    for (std::size_t a = 0; a < nxt.arr.size(); ++a) {
      next[a].valid = la.target_seq[a] != kNoSeq;
      next[a].seq = nxt.seq[a];
      next[a].lo = 0;
      next[a].hi = nxt.arr[a].size();
    }
    // Nearest pointer per target array on each side of the probe. Scans are
    // bounded: entries for the g arrays interleave, so the nearest one is
    // almost always within a few steps per array; an unbounded miss just
    // leaves the (safe) full-array bound in place.
    const int scan_limit = 16 * static_cast<int>(growth_);
    // Early-exit counters track only windows that CAN be satisfied (valid
    // targets); counting unsampled/empty arrays would force every scan to
    // run to scan_limit while a level refills.
    std::size_t satisfiable = 0;
    for (std::size_t a = 0; a < nxt.arr.size(); ++a) {
      if (next[a].valid) ++satisfiable;
    }
    std::size_t lo_missing = satisfiable;
    int scanned = 0;
    for (auto back = it; back != la.entries.begin() && scanned < scan_limit &&
                         lo_missing > 0;
         ++scanned) {
      --back;
      Window& w = next[back->target_array];
      if (w.valid && !w.lo_set) {
        w.lo = back->index;
        w.lo_set = true;
        --lo_missing;
      }
    }
    std::size_t hi_found = 0;
    scanned = 0;
    for (auto fwd = it; fwd != la.entries.end() && scanned < scan_limit &&
                        hi_found < satisfiable;
         ++fwd, ++scanned) {
      Window& w = next[fwd->target_array];
      if (w.valid && !w.hi_set) {
        w.hi = std::min<std::size_t>(w.hi, static_cast<std::size_t>(fwd->index) + 1);
        w.hi_set = true;
        ++hi_found;
      }
    }
  }

  void put(const K& key, const V& value, bool tombstone) {
    ++mutation_epoch_;
    ++stats_.inserts;
    ensure_level(0);
    Level& l0 = levels_[0];
    std::size_t slot = l0.arr.size();
    for (std::size_t a = 0; a < l0.arr.size(); ++a) {
      if (l0.state[a] == State::kEmpty) {
        slot = a;
        break;
      }
    }
    if (slot == l0.arr.size()) {
      throw std::logic_error("fc-deam: level 0 has no free array");
    }
    l0.arr[slot].clear();
    l0.arr[slot].push_back(Item{key, value, tombstone});
    l0.state[slot] = State::kFull;
    l0.seq[slot] = ++seq_counter_;
    mm_.touch_write(l0.base[slot], sizeof(Item));
    maybe_start_merge(0);

    // Theorem 24's budget covers merged items AND copied pointers. The
    // constant is one level-multiple larger than the basic COLA's g*k + 2
    // because each merge completion also schedules a pointer copy of 1/8 the
    // merged size.
    std::uint64_t budget = (growth_ + 1) * levels_.size() + 4;
    std::uint64_t moves = 0;
    for (std::size_t l = 0; l < levels_.size() && budget > 0; ++l) {
      if (levels_[l].unsafe) moves += advance_merge(l, &budget);
      if (budget > 0 && levels_[l].la_building) moves += advance_la(l, &budget);
    }
    stats_.total_moves += moves;
    stats_.max_moves_per_insert = std::max(stats_.max_moves_per_insert, moves);
  }

  void maybe_start_merge(std::size_t l) {
    if (levels_[l].unsafe) return;
    for (std::size_t a = 0; a < levels_[l].arr.size(); ++a) {
      if (levels_[l].state[a] != State::kFull) return;
    }
    ensure_level(l + 1);  // may reallocate levels_: take references only after
    Level& lv = levels_[l];
    Level& nxt = levels_[l + 1];
    std::size_t tgt = nxt.arr.size();
    for (std::size_t a = 0; a < nxt.arr.size(); ++a) {
      if (nxt.state[a] == State::kEmpty) {
        tgt = a;
        break;
      }
    }
    if (tgt == nxt.arr.size()) throw std::logic_error("fc-deam: no empty target array");
    lv.unsafe = true;
    std::fill(lv.pos.begin(), lv.pos.end(), std::size_t{0});
    lv.target_arr = tgt;
    nxt.state[tgt] = State::kFilling;
    nxt.arr[tgt].clear();
    std::size_t total = 0;
    for (const auto& src : lv.arr) total += src.size();
    nxt.arr[tgt].reserve(total);
    bool deeper_data = false;
    for (std::size_t j = l + 1; j < levels_.size() && !deeper_data; ++j) {
      for (std::size_t a = 0; a < levels_[j].arr.size(); ++a) {
        if (j == l + 1 && a == tgt) continue;
        if (levels_[j].state[a] != State::kEmpty) deeper_data = true;
      }
    }
    lv.drop_tombstones = !deeper_data;
  }

  std::uint64_t advance_merge(std::size_t l, std::uint64_t* budget) {
    Level& lv = levels_[l];
    Level& nxt = levels_[l + 1];
    auto& out = nxt.arr[lv.target_arr];
    std::uint64_t moves = 0;

    while (*budget > 0) {
      std::size_t win = lv.arr.size();
      for (std::size_t a = 0; a < lv.arr.size(); ++a) {
        if (lv.pos[a] >= lv.arr[a].size()) continue;
        if (win == lv.arr.size()) {
          win = a;
          continue;
        }
        const K& ka = lv.arr[a][lv.pos[a]].key;
        const K& kw = lv.arr[win][lv.pos[win]].key;
        if (ka < kw || (ka == kw && lv.seq[a] > lv.seq[win])) win = a;
      }
      if (win == lv.arr.size()) break;
      const Item item = lv.arr[win][lv.pos[win]];
      for (std::size_t a = 0; a < lv.arr.size(); ++a) {
        if (lv.pos[a] < lv.arr[a].size() && lv.arr[a][lv.pos[a]].key == item.key) {
          ++lv.pos[a];
          mm_.touch(lv.base[a] + lv.pos[a] * sizeof(Item), sizeof(Item));
        }
      }
      if (!(item.tombstone && lv.drop_tombstones)) {
        out.push_back(item);
        mm_.touch_write(nxt.base[lv.target_arr] + out.size() * sizeof(Item),
                        sizeof(Item));
      }
      --*budget;
      ++moves;
    }

    bool drained = true;
    for (std::size_t a = 0; a < lv.arr.size(); ++a) {
      if (lv.pos[a] < lv.arr[a].size()) drained = false;
    }
    if (drained) {
      for (std::size_t a = 0; a < lv.arr.size(); ++a) {
        lv.arr[a].clear();
        lv.state[a] = State::kEmpty;
      }
      lv.unsafe = false;
      // This level's arrays changed identity: its own pointer buffers (into
      // level l+1) survive, but the PREVIOUS level's buffers into l go stale
      // naturally via sequence validation.
      nxt.state[lv.target_arr] = State::kFull;
      nxt.seq[lv.target_arr] = ++seq_counter_;
      ++stats_.merges_completed;
      // Schedule the budgeted pointer copy from the freshly visible array
      // back into this level (Lemma 23's "linked" array, double-buffered).
      start_la_build(l);
      maybe_start_merge(l + 1);
    }
    return moves;
  }

  void start_la_build(std::size_t l) {
    Level& lv = levels_[l];
    La& hidden = lv.la[1 - lv.active_la];
    hidden.entries.clear();
    hidden.valid = false;
    std::fill(hidden.target_seq.begin(), hidden.target_seq.end(), kNoSeq);
    lv.la_building = true;
    std::fill(lv.la_src_pos.begin(), lv.la_src_pos.end(), std::size_t{0});
  }

  /// Copy up to *budget pointers (every kSampleStride-th element of each
  /// full array of the next level) into the hidden buffer; flip on
  /// completion.
  std::uint64_t advance_la(std::size_t l, std::uint64_t* budget) {
    Level& lv = levels_[l];
    if (l + 1 >= levels_.size()) {
      lv.la_building = false;
      return 0;
    }
    Level& nxt = levels_[l + 1];
    La& hidden = lv.la[1 - lv.active_la];
    std::uint64_t moves = 0;
    for (std::size_t a = 0; a < nxt.arr.size() && *budget > 0; ++a) {
      if (nxt.state[a] != State::kFull) continue;
      const auto& arr = nxt.arr[a];
      std::size_t& pos = lv.la_src_pos[a];
      while (pos < arr.size() && *budget > 0) {
        hidden.entries.push_back(LaEntry{arr[pos].key, static_cast<std::uint32_t>(a),
                                         static_cast<std::uint32_t>(pos)});
        mm_.touch(nxt.base[a] + pos * sizeof(Item), sizeof(Item));
        pos += kSampleStride;
        --*budget;
        ++moves;
        ++stats_.pointer_copies;
      }
      hidden.target_seq[a] = nxt.seq[a];
    }
    bool done = true;
    for (std::size_t a = 0; a < nxt.arr.size(); ++a) {
      if (nxt.state[a] == State::kFull && lv.la_src_pos[a] < nxt.arr[a].size()) {
        done = false;
      }
    }
    if (done) {
      // Entries were appended per-array; merge-sort them by key.
      std::stable_sort(hidden.entries.begin(), hidden.entries.end(),
                       [](const LaEntry& x, const LaEntry& y) { return x.key < y.key; });
      hidden.valid = true;
      lv.active_la = 1 - lv.active_la;
      lv.la_building = false;
    }
    return moves;
  }

  unsigned growth_;
  std::vector<Level> levels_;
  std::uint64_t next_base_ = 0;
  std::uint64_t seq_counter_ = 0;
  std::vector<Entry<K, V>> batch_scratch_, batch_sort_scratch_;  // batch staging, reused
  std::vector<Op<K, V>> op_scratch_, op_sort_scratch_;  // mixed-op staging, reused
  // Window scratch for find() (const hot path; avoids per-call allocation
  // once the vectors reach capacity g).
  mutable std::vector<Window> win_cur_, win_next_;
  // find() array-ordering scratch (mutable: find is const, scratch reused).
  mutable std::vector<std::pair<std::uint64_t, std::uint32_t>> find_order_scratch_;
  // Dictionary-owned cursor scratch backing range_for_each/for_each.
  mutable CursorState scan_state_;
  // Snapshot cache: one materialized segment per mutation epoch (see snapshot()).
  std::uint64_t mutation_epoch_ = 0;
  mutable snap::Snapshot<K, V> snap_cache_;
  mutable std::uint64_t snap_epoch_ = 0;
  DeamortizedFcStats stats_;
  mutable MM mm_;
};

}  // namespace costream::cola
