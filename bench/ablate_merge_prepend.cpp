// Ablation: the right-justified "prepend" merge (paper Section 4's
// alternating merge placement; the mechanism behind Figure 5's
// descending-order advantage). Toggling it off forces every merge to
// rewrite the target level.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "cola/cola.hpp"

namespace cb = costream::bench;
using namespace costream;

int main() {
  const BenchOptions opts = BenchOptions::from_env(1ULL << 21);
  const std::uint64_t mem = cb::scaled_memory_bytes(opts.max_n);
  std::printf("Prepend-merge ablation on the 4-COLA, N=%llu\n\n",
              static_cast<unsigned long long>(opts.max_n));

  Table t({"order", "prepend", "ins/s (wall)", "transfers/op", "entries merged"}, 18);
  for (const KeyOrder order : {KeyOrder::kDescending, KeyOrder::kAscending,
                               KeyOrder::kRandom}) {
    for (const bool prepend : {true, false}) {
      cola::ColaConfig cfg{4, 0.1};
      cfg.enable_prepend = prepend;
      cola::Gcola<Key, Value, dam::dam_mem_model> c(cfg,
                                                    dam::dam_mem_model(4096, mem));
      const KeyStream ks(order, opts.max_n, opts.seed);
      Timer timer;
      for (std::uint64_t i = 0; i < ks.size(); ++i) c.insert(ks.key_at(i), i);
      const double rate = static_cast<double>(ks.size()) / timer.seconds();
      char tpo[32];
      std::snprintf(tpo, sizeof tpo, "%.4f",
                    static_cast<double>(c.mm().stats().transfers) /
                        static_cast<double>(ks.size()));
      t.add_row({to_string(order), prepend ? "on" : "off", format_rate(rate), tpo,
                 std::to_string(c.stats().entries_merged)});
    }
  }
  t.print();
  std::printf("\nexpected shape: prepend=on reduces entries merged (and thus"
              " transfers) for descending inserts, is a no-op for ascending,"
              " and helps random inserts occasionally.\n");
  return 0;
}
