#!/usr/bin/env python3
"""Compare bench JSON runs against the committed baseline.

Used by the CI perf-regression job (see .github/workflows/ci.yml) and by
hand when investigating a regression. The baseline holds cells from BOTH
bench_batch_ingest (the write path) and bench_range_queries (the read
path: scan/seek/find/mjoin series); pass each fresh run via a repeated
``--current`` flag and the cells are merged before diffing. Two metric
families, because CI runners are not the machine the baseline was recorded
on:

* DAM metrics (``transfers_per_op``, ``modeled_rate``) are DETERMINISTIC —
  same code, same seed, same N gives bit-identical counts on any machine —
  so they are compared absolutely: a cell regresses when its transfers rise
  more than ``--threshold`` above baseline.

* Wall-clock rates are machine-dependent, so raw rates are never compared
  across machines. Instead each (structure, order) series is normalized to
  its own batch=1 cell — the batch-speedup curve — and THAT shape is
  compared. A slower runner scales every cell equally and cancels out; a
  real regression (a batch path losing its advantage) does not.

Exit status: 0 clean, 1 regression found, 2 usage/parse error.

Regenerating the baseline (after an intentional perf change)::

    cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-rel -j --target bench_batch_ingest
    REPRO_MAXN=$((1<<18)) \
    REPRO_STRUCTS=cola,cola-g2,cola-g4,cola-g8,cola-g16,cola-g8-wal,cola-g8-wal-always,cola-g8-wal-never \
        ./build-rel/bench/bench_batch_ingest \
        --json-out bench/baselines/BENCH_baseline.json

The ``cola-g8-wal*`` arms ingest through the durable tier (real WAL +
segment spills under ``$TMPDIR``); their wall rates depend on the
filesystem as well as the machine, so they are tracked for presence and
reported, never shape-compared. The ``shard-cola-g8-find`` arms (from
bench_concurrent_ingest: a find() storm racing the timed ingest) are
handled the same way — their under-ingest find rate depends on how many
cores the runner gives the reader thread, so presence is gated but the
batch curve (batch = shard count there) is excluded from the shape
comparison below.

or pass ``--update-baseline`` to this script to copy the current run over
the baseline file once you have eyeballed the report.
"""

import argparse
import json
import math
import sys


def load_cells(path):
    """Load a JSON cell array from a bare file or raw bench stdout."""
    with open(path) as f:
        text = f.read()
    if "BEGIN_JSON" in text:
        text = text.split("BEGIN_JSON", 1)[1].split("END_JSON", 1)[0]
    cells = json.loads(text)
    if not isinstance(cells, list) or not cells:
        raise ValueError("no cells: empty or non-array JSON")
    out = {}
    for i, c in enumerate(cells):
        for k in ("structure", "order", "batch"):
            if k not in c:
                raise ValueError(
                    f"cell {i} lacks identity key '{k}' — truncated or "
                    f"hand-edited JSON; regenerate it (see --help)")
        out[(c["structure"], c["order"], c["batch"])] = c
    return out


def metric(cell, key, where):
    """A metric a comparison depends on; a clean exit-2 when absent.

    Cells written by an older bench binary (or trimmed by hand) can lack
    metrics the comparison needs; a bare KeyError traceback here reads as
    a broken CI script rather than what it is — a stale baseline.
    """
    if key not in cell:
        print(f"error: cell {where} lacks metric '{key}' — stale baseline or "
              f"trimmed run; regenerate the baseline (see --help)",
              file=sys.stderr)
        raise SystemExit(2)
    return cell[key]


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True, help="committed baseline JSON")
    ap.add_argument("--current", required=True, action="append",
                    help="fresh run: bare JSON or raw bench stdout "
                         "(repeatable; cells from all runs are merged)")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed relative regression (default 0.15)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="overwrite the baseline with the current run and exit")
    args = ap.parse_args()

    current = {}
    for path in args.current:
        try:
            cells = load_cells(path)
        except (OSError, ValueError) as e:
            print(f"error: cannot load current run {path}: {e}", file=sys.stderr)
            return 2
        overlap = set(current) & set(cells)
        if overlap:
            print(f"error: {path} repeats cells already loaded: "
                  f"{sorted(overlap)[:4]}", file=sys.stderr)
            return 2
        current.update(cells)

    if args.update_baseline:
        cells = sorted(current.values(),
                       key=lambda c: (c["structure"], c["order"], c["batch"]))
        with open(args.baseline, "w") as f:
            json.dump(cells, f, indent=2)
            f.write("\n")
        print(f"baseline updated: {args.baseline} ({len(cells)} cells)")
        return 0

    try:
        baseline = load_cells(args.baseline)
    except (OSError, ValueError) as e:
        print(f"error: cannot load baseline: {e}", file=sys.stderr)
        return 2

    failures = []
    notes = []

    missing = sorted(set(baseline) - set(current))
    if missing:
        failures.append(f"cells missing from current run: {missing[:8]}"
                        + (" ..." if len(missing) > 8 else ""))

    # Deterministic DAM comparison, cell by cell. Guard against comparing
    # runs of different N first: transfers/op grows with N, so a baseline
    # regenerated at the headline size would silently mask regressions.
    for key in sorted(set(baseline) & set(current)):
        b, c = baseline[key], current[key]
        if b.get("n") != c.get("n"):
            print(f"error: {key}: baseline n={b.get('n')} vs current "
                  f"n={c.get('n')} — runs are not comparable", file=sys.stderr)
            return 2
        bt = metric(b, "transfers_per_op", f"baseline {key}")
        ct = metric(c, "transfers_per_op", f"current {key}")
        if bt > 0 and ct > bt * (1 + args.threshold):
            failures.append(
                f"{key}: transfers_per_op {bt:.6f} -> {ct:.6f} "
                f"(+{(ct / bt - 1) * 100:.1f}%)")
        elif bt > 0 and ct < bt * (1 - args.threshold):
            notes.append(
                f"{key}: transfers_per_op improved {bt:.6f} -> {ct:.6f}; "
                "consider refreshing the baseline")

    # Wall-clock shape comparison: batch-speedup curves per (structure, order),
    # aggregated as the geometric mean of per-batch ratio changes. Individual
    # cells at reduced N are noisy well past any useful threshold; a real
    # regression (a batch path losing its advantage) shifts the whole curve,
    # which the aggregate catches while single-cell jitter averages out.
    series = {}
    for (s, o, batch), cell in baseline.items():
        series.setdefault((s, o), {})[batch] = cell
    for (s, o), cells in sorted(series.items()):
        # The find-under-ingest arms DO have a batch=1 cell (batch is the
        # shard count), but their wall rate measures a reader thread racing
        # the writers — pure core-count, not code. Presence-gated above,
        # never shape-compared.
        if s.endswith("-find") and "shard" in s:
            continue
        base1 = cells.get(1)
        cur1 = current.get((s, o, 1))
        if not base1 or not cur1:
            continue
        base1_rate = metric(base1, "wall_rate", f"baseline ({s}, {o}, 1)")
        cur1_rate = metric(cur1, "wall_rate", f"current ({s}, {o}, 1)")
        if base1_rate <= 0 or cur1_rate <= 0:
            continue
        log_sum, count = 0.0, 0
        for batch, bcell in sorted(cells.items()):
            if batch == 1:
                continue
            ccell = current.get((s, o, batch))
            if not ccell:
                continue
            brate = metric(bcell, "wall_rate", f"baseline ({s}, {o}, {batch})")
            crate = metric(ccell, "wall_rate", f"current ({s}, {o}, {batch})")
            if brate <= 0 or crate <= 0:
                continue
            bratio = brate / base1_rate
            cratio = crate / cur1_rate
            log_sum += math.log(cratio / bratio)
            count += 1
        if count == 0:
            continue
        gm = math.exp(log_sum / count)
        if gm < 1 - args.threshold:
            failures.append(
                f"({s}, {o}): batch-speedup curve degraded {(gm - 1) * 100:.1f}% "
                f"(geomean over {count} batch sizes)")

    for n in notes:
        print(f"note: {n}")
    if failures:
        print(f"PERF REGRESSION ({len(failures)} finding(s), "
              f"threshold {args.threshold:.0%}):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"perf OK: {len(set(baseline) & set(current))} cells within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
