// Figure 4 reproduction: "COLA vs B-tree (Random Searches)" — average
// searches/second vs number of searches performed, on structures built from
// the Figure-3 (sorted-insert) data, starting with a cold cache (the paper
// remounted the RAID before the search test).
//
// Paper result: at N = 2^30 - 1, the 4-COLA performs 2^15 searches 3.5x
// slower than the B-tree; early searches are slow for everyone because the
// cache is empty, so both curves climb as hot blocks accumulate.
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "btree/btree.hpp"
#include "cola/cola.hpp"
#include "common/rng.hpp"

namespace cb = costream::bench;
using namespace costream;

namespace {

struct SearchSeries {
  std::string name;
  std::vector<std::uint64_t> searches;
  std::vector<double> modeled_rate;
  std::vector<double> transfers_per_search;
};

template <class D>
SearchSeries run_search_series(const std::string& name, const D& d,
                               dam::dam_mem_model& mm, const KeyStream& built,
                               std::uint64_t num_searches, std::uint64_t seed) {
  SearchSeries s;
  s.name = name;
  Xoshiro256 rng(seed);
  mm.clear_cache();  // the paper's "remount before the search test"
  mm.reset_stats();
  for (std::uint64_t q = 1; q <= num_searches; ++q) {
    const Key k = built.key_at(rng.below(built.size()));
    (void)d.find(k);
    if ((q & (q - 1)) == 0) {
      const double modeled = mm.modeled_seconds();
      s.searches.push_back(q);
      s.modeled_rate.push_back(modeled > 0 ? static_cast<double>(q) / modeled
                                           : static_cast<double>(q));
      s.transfers_per_search.push_back(static_cast<double>(mm.stats().transfers) /
                                       static_cast<double>(q));
    }
  }
  return s;
}

}  // namespace

int main() {
  const BenchOptions opts = BenchOptions::from_env(1ULL << 20);
  const std::uint64_t num_searches = std::min<std::uint64_t>(1ULL << 15, opts.max_n);
  const std::uint64_t mem = cb::scaled_memory_bytes(opts.max_n);
  const KeyStream ks(KeyOrder::kDescending, opts.max_n, opts.seed);
  std::printf("Fig 4: %llu random searches on N=%llu (sorted build), cold cache\n",
              static_cast<unsigned long long>(num_searches),
              static_cast<unsigned long long>(opts.max_n));

  std::vector<SearchSeries> series;
  for (const unsigned g : {2u, 4u, 8u}) {
    cola::Gcola<Key, Value, dam::dam_mem_model> c(cola::ColaConfig{g, 0.1},
                                                  dam::dam_mem_model(4096, mem));
    for (std::uint64_t i = 0; i < ks.size(); ++i) c.insert(ks.key_at(i), i);
    series.push_back(run_search_series(std::to_string(g) + "-COLA", c, c.mm(), ks,
                                       num_searches, opts.seed + 1));
  }
  {
    btree::BTree<Key, Value, dam::dam_mem_model> b(4096, dam::dam_mem_model(4096, mem));
    for (std::uint64_t i = 0; i < ks.size(); ++i) b.insert(ks.key_at(i), i);
    series.push_back(
        run_search_series("B-tree", b, b.mm(), ks, num_searches, opts.seed + 1));
  }

  std::printf("\n# modeled disk-bound searches/sec (paper-comparable)\n");
  {
    std::vector<std::string> headers{"searches"};
    for (const auto& s : series) headers.push_back(s.name);
    Table t(std::move(headers));
    for (std::size_t r = 0; r < series.front().searches.size(); ++r) {
      std::vector<std::string> row{pow2_label(series.front().searches[r])};
      for (const auto& s : series) row.push_back(format_rate(s.modeled_rate[r]));
      t.add_row(std::move(row));
    }
    t.print();
  }
  std::printf("\n# block transfers per search (cumulative)\n");
  {
    std::vector<std::string> headers{"searches"};
    for (const auto& s : series) headers.push_back(s.name);
    Table t(std::move(headers));
    for (std::size_t r = 0; r < series.front().searches.size(); ++r) {
      std::vector<std::string> row{pow2_label(series.front().searches[r])};
      for (const auto& s : series) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.3f", s.transfers_per_search[r]);
        row.emplace_back(buf);
      }
      t.add_row(std::move(row));
    }
    t.print();
  }

  std::printf("\nheadline: B-tree vs 4-COLA searches (modeled): %.2fx faster"
              " (paper: 3.5x)\n",
              series[3].modeled_rate.back() / series[1].modeled_rate.back());
  std::printf("headline: 4-COLA vs 2-COLA searches: %.2fx (paper: 1.4x)\n",
              series[1].modeled_rate.back() / series[0].modeled_rate.back());

  // -- beyond the paper: tiered-g8 uniform-random cold finds, filter arm ------
  // The figure above searches the classic (lookahead) COLA. The tiered
  // cascade trades that for per-level segment lists, and under a UNIFORM-
  // RANDOM build its fence keys prune nothing — the exact weak spot the
  // per-segment fingerprint filters exist for. Same cold-cache protocol,
  // ingest-tuned g=8, fences-only vs +filters, with the probe-count
  // collapse measured straight from ColaStats.
  {
    std::printf("\n# tiered g=8, uniform-random build, cold finds: filter ablation\n");
    const std::uint64_t q = std::min<std::uint64_t>(1ULL << 12, num_searches);
    for (const bool filters : {false, true}) {
      cola::ColaConfig cfg = cola::ingest_tuned(8, 1024);
      cfg.filters = filters;
      cola::Gcola<Key, Value, dam::dam_mem_model> c(cfg,
                                                    dam::dam_mem_model(4096, mem));
      Xoshiro256 build_rng(opts.seed + 9);
      std::vector<Entry<>> chunk(1024);
      for (std::uint64_t i = 0; i < opts.max_n;) {
        for (auto& e : chunk) {
          e = Entry<>{build_rng(), i};
          ++i;
        }
        c.insert_batch(chunk);
      }
      c.flush_stage();
      Xoshiro256 rng(opts.seed + 10);
      c.mm().clear_cache();
      c.mm().reset_stats();
      const std::uint64_t probes_before = c.stats().find_seg_probes;
      const std::uint64_t skips_before = c.stats().filter_seg_skips;
      for (std::uint64_t i = 0; i < q; ++i) (void)c.find(rng());
      const double probed =
          static_cast<double>(c.stats().find_seg_probes - probes_before) /
          static_cast<double>(q);
      const double skipped =
          static_cast<double>(c.stats().filter_seg_skips - skips_before) /
          static_cast<double>(q);
      const double modeled = c.mm().modeled_seconds();
      std::printf("  %-12s %s searches/sec modeled, %.2f segs probed/find"
                  " (%.2f filter-skipped), %.3f transfers/find\n",
                  filters ? "+filters" : "fences-only",
                  format_rate(modeled > 0 ? static_cast<double>(q) / modeled
                                          : static_cast<double>(q))
                      .c_str(),
                  probed, skipped,
                  static_cast<double>(c.mm().stats().transfers) /
                      static_cast<double>(q));
    }
  }
  return 0;
}
